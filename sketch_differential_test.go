package fastrak

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/host"
	"repro/internal/packet"
)

// firstOffloadWave builds one deployment — exact or sketch-mode flow
// accounting — drives a seed-dependent mix of service flows through it,
// and returns the first non-empty offloaded pattern set.
//
// The comparison point is the first wave deliberately: until the first
// placer redirect, the sketch feed is byte-identical to the exact
// datapath walk (the accountant accrues the same packet/byte increments
// the exact-cache statistics get, and space-saving with k larger than
// the live pattern count holds exact counts), so both deployments run
// the same event sequence and must decide identically. After a redirect
// the feeds legitimately diverge by a few packets: invalidating the
// exact cache forgets counts accrued during the placer-programming
// window, while the sketch is cumulative — strictly more accurate, but
// enough to shift later demote timing in marginal scenarios.
func firstOffloadWave(t *testing.T, seed int64, sketchMode bool) []string {
	t.Helper()
	d, err := NewDeployment(Options{
		Servers:          2,
		Seed:             seed,
		SketchAccounting: sketchMode,
		SketchTopK:       256,
		Controller: ControllerOptions{
			Epoch:    100 * time.Millisecond,
			MinScore: 1500,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	client, err := d.AddVM(0, 3, "10.0.0.1", VMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	server, err := d.AddVM(1, 3, "10.0.0.2", VMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ports := []uint16{8080, 8081, 8082, 8083}
	for _, port := range ports {
		server.BindApp(port, host.AppFunc(func(*host.VM, *packet.Packet) {}))
	}
	// One flow per service. Rates are octaves apart so ranking and the
	// MinScore eligibility cut both have margin; which service gets
	// which rate, and each flow's phase, is the seed-dependent part.
	rng := rand.New(rand.NewSource(seed))
	intervals := []time.Duration{
		250 * time.Microsecond, 500 * time.Microsecond,
		time.Millisecond, 4 * time.Millisecond,
	}
	rng.Shuffle(len(intervals), func(i, j int) {
		intervals[i], intervals[j] = intervals[j], intervals[i]
	})
	d.Start()
	defer d.Stop()
	for i, port := range ports {
		port := port
		srcPort := uint16(40000 + i)
		start := time.Duration(rng.Intn(1000)) * time.Microsecond
		every := intervals[i]
		d.Cluster.Eng.After(start, func() {
			d.Cluster.Eng.Every(every, func() {
				client.Send(server.Key.IP, srcPort, port, 64, host.SendOptions{}, nil)
			})
		})
	}
	for d.Now() < 3*time.Second {
		d.Run(50 * time.Millisecond)
		if wave := d.Offloaded(); len(wave) > 0 {
			sort.Strings(wave)
			return wave
		}
	}
	t.Fatalf("sketch=%v: nothing offloaded within 3s", sketchMode)
	return nil
}

// TestSketchDifferentialOffloadDecisions is the oracle for the streaming
// accounting path: across 200 seeds, a deployment measuring demand
// through the count-min + space-saving accountant and deciding through
// the incremental re-rank engine must produce exactly the offload wave
// the exact per-flow path produces. The top-k (256) covers every live
// pattern, so any divergence would have to come from the wiring itself —
// a missed accrual, a mis-keyed pattern, or an incremental-rank bug.
func TestSketchDifferentialOffloadDecisions(t *testing.T) {
	seeds := 200
	if testing.Short() {
		seeds = 10
	}
	for s := 1; s <= seeds; s++ {
		s := s
		t.Run(fmt.Sprintf("seed=%d", s), func(t *testing.T) {
			t.Parallel()
			exact := firstOffloadWave(t, int64(s), false)
			sk := firstOffloadWave(t, int64(s), true)
			if !reflect.DeepEqual(exact, sk) {
				t.Errorf("offload waves diverge:\n exact:  %v\n sketch: %v", exact, sk)
			}
		})
	}
}
