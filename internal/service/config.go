package service

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
)

// Duration is a time.Duration that marshals as a Go duration string
// ("500ms", "2s") in JSON config files, with bare numbers accepted as
// nanoseconds for round-tripping.
type Duration time.Duration

// MarshalJSON renders the duration string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "500ms"-style strings or nanosecond numbers.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	switch x := v.(type) {
	case string:
		dd, err := time.ParseDuration(x)
		if err != nil {
			return fmt.Errorf("service: bad duration %q: %w", x, err)
		}
		*d = Duration(dd)
	case float64:
		*d = Duration(time.Duration(x))
	default:
		return fmt.Errorf("service: bad duration value %v", v)
	}
	return nil
}

// D is the plain time.Duration value.
func (d Duration) D() time.Duration { return time.Duration(d) }

// ControllerConfig is the subset of the rule-manager tuning exposed in
// daemon config files. Zero values take the paper-prototype defaults of
// core.DefaultConfig.
type ControllerConfig struct {
	// Epoch is the ME measurement period T.
	Epoch Duration `json:"epoch,omitempty"`
	// SampleGap is t, the spacing of the ME's paired counter samples
	// (default: Epoch/5 when Epoch is set, else the prototype default).
	SampleGap Duration `json:"sample_gap,omitempty"`
	// EpochsPerInterval is N: a control interval is T×N.
	EpochsPerInterval int `json:"epochs_per_interval,omitempty"`
	// HistoryIntervals is M, the median-history depth.
	HistoryIntervals int `json:"history_intervals,omitempty"`
	// MaxOffloads caps simultaneous hardware patterns (0 = TCAM-bound).
	MaxOffloads int `json:"max_offloads,omitempty"`
	// MinScore filters flows not worth a hardware entry.
	MinScore float64 `json:"min_score,omitempty"`
	// LeaseTTL > 0 enables lease-expiring fail-safe hardware rules.
	LeaseTTL Duration `json:"lease_ttl,omitempty"`
}

func (cc ControllerConfig) coreConfig() core.Config {
	cfg := core.DefaultConfig()
	if cc.Epoch > 0 {
		cfg.Measure.Epoch = cc.Epoch.D()
		// Keep the paired samples inside the epoch when the operator
		// shortens T below the prototype's default 100ms gap.
		cfg.Measure.SampleGap = cc.Epoch.D() / 5
	}
	if cc.SampleGap > 0 {
		cfg.Measure.SampleGap = cc.SampleGap.D()
	}
	if cc.EpochsPerInterval > 0 {
		cfg.Measure.EpochsPerInterval = cc.EpochsPerInterval
	}
	if cc.HistoryIntervals > 0 {
		cfg.Measure.HistoryIntervals = cc.HistoryIntervals
	}
	cfg.MaxOffloads = cc.MaxOffloads
	cfg.MinScore = cc.MinScore
	cfg.HA.LeaseTTL = cc.LeaseTTL.D()
	return cfg
}

// TordConfig configures the fastrak-tord daemon.
type TordConfig struct {
	// ListenControl is the TCP address agents connect to (default
	// 127.0.0.1:6653, the classic OpenFlow port).
	ListenControl string `json:"listen_control,omitempty"`
	// ListenAdmin is the HTTP admin/metrics address (default
	// 127.0.0.1:9653). Empty string "none" disables the admin server.
	ListenAdmin string `json:"listen_admin,omitempty"`
	// TCAMCapacity is the ToR hardware rule budget (default 2000).
	TCAMCapacity int `json:"tcam_capacity,omitempty"`
	// Seed drives tie-breaking randomness (default 1).
	Seed int64 `json:"seed,omitempty"`
	// SampleInterval is the telemetry registry-walk period (default
	// 100ms, negative disables the sampler).
	SampleInterval Duration `json:"sample_interval,omitempty"`
	// Controller tunes the decision engine.
	Controller ControllerConfig `json:"controller,omitempty"`
}

func (c *TordConfig) normalize() {
	if c.ListenControl == "" {
		c.ListenControl = "127.0.0.1:6653"
	}
	if c.ListenAdmin == "" {
		c.ListenAdmin = "127.0.0.1:9653"
	}
	if c.TCAMCapacity <= 0 {
		c.TCAMCapacity = 2000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.SampleInterval == 0 {
		c.SampleInterval = Duration(100 * time.Millisecond)
	}
}

// AgentConfig configures the fastrak-agentd daemon.
type AgentConfig struct {
	// ServerID identifies this host to the ToR controller; reports and
	// acks carry it. Must be unique per rack.
	ServerID uint32 `json:"server_id"`
	// TORAddr is the fastrak-tord control address to dial (default
	// 127.0.0.1:6653).
	TORAddr string `json:"tor_addr,omitempty"`
	// ListenAdmin is the HTTP admin/metrics address (default
	// 127.0.0.1:9654). "none" disables the admin server.
	ListenAdmin string `json:"listen_admin,omitempty"`
	// TCAMCapacity sizes the host-side express-lane rule mirror
	// (default 2000, matching the ToR).
	TCAMCapacity int `json:"tcam_capacity,omitempty"`
	// SmartNICCapacity > 0 equips the host with a SmartNIC offload tier.
	SmartNICCapacity int `json:"smartnic_capacity,omitempty"`
	// Seed drives tie-breaking randomness (default 1).
	Seed int64 `json:"seed,omitempty"`
	// DialTimeout bounds each connection attempt (default 2s).
	DialTimeout Duration `json:"dial_timeout,omitempty"`
	// ReconnectAttempts is the redial budget after a connection drop
	// (default 8; each successful reconnect resets it).
	ReconnectAttempts int `json:"reconnect_attempts,omitempty"`
	// ReconnectBackoff is the initial redial backoff, doubling per
	// attempt up to the protocol cap (default 50ms).
	ReconnectBackoff Duration `json:"reconnect_backoff,omitempty"`
	// SampleInterval is the telemetry registry-walk period (default
	// 100ms, negative disables the sampler).
	SampleInterval Duration `json:"sample_interval,omitempty"`
	// Controller tunes the local controller's measurement cadence. The
	// epoch settings must match the ToR's for interval bookkeeping to
	// line up.
	Controller ControllerConfig `json:"controller,omitempty"`
}

func (c *AgentConfig) normalize() {
	if c.ServerID == 0 {
		c.ServerID = 1
	}
	if c.TORAddr == "" {
		c.TORAddr = "127.0.0.1:6653"
	}
	if c.ListenAdmin == "" {
		c.ListenAdmin = "127.0.0.1:9654"
	}
	if c.TCAMCapacity <= 0 {
		c.TCAMCapacity = 2000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = Duration(2 * time.Second)
	}
	if c.ReconnectAttempts <= 0 {
		c.ReconnectAttempts = 8
	}
	if c.ReconnectBackoff <= 0 {
		c.ReconnectBackoff = Duration(50 * time.Millisecond)
	}
	if c.SampleInterval == 0 {
		c.SampleInterval = Duration(100 * time.Millisecond)
	}
}

// LoadConfig reads a JSON config file into cfg (a *TordConfig or
// *AgentConfig). Unknown fields are rejected so typos fail loudly at
// startup instead of silently running defaults.
func LoadConfig(path string, cfg any) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("service: open config: %w", err)
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	if err := dec.Decode(cfg); err != nil {
		return fmt.Errorf("service: parse config %s: %w", path, err)
	}
	return nil
}
