package service

import (
	"sync"
	"time"

	"repro/internal/sim"
)

// maxIdleSleep bounds how long the runtime loop sleeps when the engine
// has no pending events (or only far-future ones). It is the staleness
// bound on clock re-polling, not a scheduling quantum: wake-ups from Post
// cut any sleep short.
const maxIdleSleep = 250 * time.Millisecond

// Runtime drives a simulation engine with a real clock. It adopts the
// engine (typically cluster.New's) rather than creating one: everything
// already scheduled keeps running, just against wall time.
//
// The engine stays single-threaded — exactly one goroutine executes
// events, as in simulation — so none of the controller code needs locks.
// The price is that every external touch of engine-owned state must go
// through Post (asynchronous, from network read loops) or Do
// (synchronous, from admin handlers). Calling controller methods directly
// from another goroutine is a data race.
type Runtime struct {
	mu    sync.Mutex // guards eng and closed
	eng   *sim.Engine
	clock Clock

	wake   chan struct{} // buffered(1): Post nudges the loop
	done   chan struct{} // closed by Close: loop exits
	closed bool
	wg     sync.WaitGroup
}

// NewRuntime starts driving eng against clock. Callers hand over the
// engine: from here on, all access to it (and to any state its events
// touch) must go through Post/Do until Close returns.
func NewRuntime(eng *sim.Engine, clock Clock) *Runtime {
	rt := &Runtime{
		eng:   eng,
		clock: clock,
		wake:  make(chan struct{}, 1),
		done:  make(chan struct{}),
	}
	rt.wg.Add(1)
	go rt.loop()
	return rt
}

// loop advances the engine to the clock's now, then sleeps until the
// earliest pending event is due (or maxIdleSleep), waking early when Post
// schedules new work.
func (rt *Runtime) loop() {
	defer rt.wg.Done()
	timer := time.NewTimer(maxIdleSleep)
	defer timer.Stop()
	for {
		rt.mu.Lock()
		now := rt.clock.Now()
		rt.eng.RunUntil(now)
		next, ok := rt.eng.NextAt()
		rt.mu.Unlock()

		// RunUntil executed everything ≤ now, so next (if any) is
		// strictly in the future; the subtraction is positive.
		sleep := maxIdleSleep
		if ok {
			if d := next - now; d < sleep {
				sleep = d
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(sleep)

		select {
		case <-timer.C:
		case <-rt.wake:
		case <-rt.done:
			return
		}
	}
}

// Post schedules fn onto the engine thread at the current virtual time
// and returns immediately. Safe from any goroutine; after Close it is a
// no-op (a late network read must not resurrect a drained engine).
func (rt *Runtime) Post(fn func()) {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return
	}
	rt.eng.CallSoon(fn)
	rt.mu.Unlock()
	select {
	case rt.wake <- struct{}{}:
	default:
	}
}

// Do runs fn on the engine timeline and waits for it. The calling
// goroutine executes fn itself while holding the engine lock, so fn may
// freely touch controller state; any same-time work fn schedules
// (CallSoon chains, announce batches) is flushed before Do returns.
//
// Do must not be called from code already running on the engine (it
// would self-deadlock); engine-side code just calls functions directly.
// After Close, Do still works — the drained engine runs fn inline —
// so admin handlers never hang on a daemon that is shutting down.
func (rt *Runtime) Do(fn func()) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.eng.CallSoon(fn)
	rt.eng.RunUntil(rt.eng.Now())
}

// Now reports the engine's current virtual time.
func (rt *Runtime) Now() time.Duration {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.eng.Now()
}

// Close stops the driver loop and flushes same-time work already queued
// (a Post racing with Close either runs in this flush or is dropped —
// never left dangling). Pending future events are abandoned: a drain is
// "run what was promised for now, schedule nothing new". Idempotent.
func (rt *Runtime) Close() {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return
	}
	rt.closed = true
	rt.mu.Unlock()
	close(rt.done)
	rt.wg.Wait()
	rt.mu.Lock()
	rt.eng.RunUntil(rt.eng.Now())
	rt.mu.Unlock()
}
