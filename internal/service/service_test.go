package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/adminapi"
)

// testControllerCfg compresses the control cadence so an offload wave
// lands within a couple of wall-clock seconds.
func testControllerCfg() ControllerConfig {
	return ControllerConfig{
		Epoch:             Duration(50 * time.Millisecond),
		EpochsPerInterval: 2,
		HistoryIntervals:  2,
	}
}

func startPair(t *testing.T) (*Tord, *Agentd) {
	t.Helper()
	tord, err := StartTord(TordConfig{
		ListenControl: "127.0.0.1:0",
		ListenAdmin:   "127.0.0.1:0",
		Controller:    testControllerCfg(),
	}, nil)
	if err != nil {
		t.Fatalf("StartTord: %v", err)
	}
	t.Cleanup(func() { tord.Close() })
	agent, err := StartAgentd(AgentConfig{
		ServerID:    1,
		TORAddr:     tord.ControlAddr(),
		ListenAdmin: "127.0.0.1:0",
		Controller:  testControllerCfg(),
	}, nil)
	if err != nil {
		t.Fatalf("StartAgentd: %v", err)
	}
	t.Cleanup(func() { agent.Close() })
	return tord, agent
}

func apiGet(t *testing.T, addr, path string, out any) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s: %s", path, resp.Status, body)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("GET %s: decode: %v", path, err)
		}
	}
}

func apiSend(t *testing.T, method, addr, path string, body any) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(method, "http://"+addr+path, bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	rb, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s %s: %s: %s", method, path, resp.Status, rb)
	}
}

// TestSplitDeploymentOffloadWave is the acceptance path: two real
// in-process daemons on TCP loopback complete tenant onboarding → demand
// reports → a barrier-confirmed offload wave, with /metrics live-scraped
// mid-run, then shut down cleanly.
func TestSplitDeploymentOffloadWave(t *testing.T) {
	tord, agent := startPair(t)

	// The agent registers with the ToR on its first demand report.
	waitFor(t, 10*time.Second, func() bool {
		var h adminapi.Health
		apiGet(t, tord.AdminAddr(), "/healthz", &h)
		return len(h.Agents) == 1 && h.Agents[0] == 1
	})

	// Tenant onboarding through the admin API.
	apiSend(t, "POST", agent.AdminAddr(), "/v1/vms",
		adminapi.VMRequest{Tenant: 3, IP: "10.0.0.1"})
	apiSend(t, "POST", agent.AdminAddr(), "/v1/vms",
		adminapi.VMRequest{Tenant: 3, IP: "10.0.0.2"})
	var vms []adminapi.VMInfo
	apiGet(t, agent.AdminAddr(), "/v1/vms", &vms)
	if len(vms) != 2 {
		t.Fatalf("onboarded %d VMs, want 2", len(vms))
	}

	// Drive a hot flow until the DE offloads it.
	apiSend(t, "POST", agent.AdminAddr(), "/v1/traffic", adminapi.TrafficRequest{
		Tenant: 3, Src: "10.0.0.1", Dst: "10.0.0.2",
		SrcPort: 40000, DstPort: 8080, IntervalUS: 200,
	})

	offloaded := func() bool {
		var ps []adminapi.Placement
		apiGet(t, tord.AdminAddr(), "/v1/placements", &ps)
		for _, p := range ps {
			if p.State == "offloaded" {
				return true
			}
		}
		return false
	}
	waitFor(t, 30*time.Second, offloaded)

	// The agent's placer mirrors the decision...
	waitFor(t, 10*time.Second, func() bool {
		var ps []adminapi.Placement
		apiGet(t, agent.AdminAddr(), "/v1/placements", &ps)
		return len(ps) > 0
	})
	// ...and the ToR's TCAM holds a barrier-confirmed rule.
	var rules adminapi.RulesReply
	apiGet(t, tord.AdminAddr(), "/v1/rules", &rules)
	if len(rules.Rules) == 0 || rules.TCAMUsed == 0 {
		t.Fatalf("no hardware rules after offload wave: %+v", rules)
	}

	// Live mid-run scrape of both daemons.
	for _, addr := range []string{tord.AdminAddr(), agent.AdminAddr()} {
		resp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			t.Fatalf("scrape: %v", err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != adminapi.PrometheusContentType {
			t.Fatalf("metrics content-type = %q", ct)
		}
		if !strings.Contains(string(body), "# TYPE") {
			t.Fatalf("metrics exposition missing TYPE lines:\n%.400s", body)
		}
	}
	var metrics string
	{
		resp, err := http.Get("http://" + tord.AdminAddr() + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		metrics = string(b)
	}
	if !strings.Contains(metrics, "fastrak_torctl_installs") {
		t.Fatalf("tord metrics missing controller counters:\n%.400s", metrics)
	}

	// The time-series endpoint carries sampled history.
	resp, err := http.Get("http://" + tord.AdminAddr() + "/series.csv")
	if err != nil {
		t.Fatal(err)
	}
	csv, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(csv), "fastrak_") {
		t.Fatalf("series.csv has no samples:\n%.200s", csv)
	}

	// Clean shutdown: agent first (detaches at the ToR), then the ToR.
	if err := agent.Close(); err != nil {
		t.Fatalf("agent close: %v", err)
	}
	waitFor(t, 5*time.Second, func() bool {
		var h adminapi.Health
		apiGet(t, tord.AdminAddr(), "/healthz", &h)
		return len(h.Agents) == 0
	})
	if err := tord.Close(); err != nil {
		t.Fatalf("tord close: %v", err)
	}
}

// TestAgentReconnect drops the control connection out from under the
// agent and verifies it redials, re-registers, and keeps reporting.
func TestAgentReconnect(t *testing.T) {
	tord, agent := startPair(t)
	waitFor(t, 10*time.Second, func() bool {
		var h adminapi.Health
		apiGet(t, tord.AdminAddr(), "/healthz", &h)
		return len(h.Agents) == 1
	})

	// Kill the server side of the control connection.
	tord.mu.Lock()
	for ac := range tord.conns {
		ac.nc.Close()
	}
	tord.mu.Unlock()

	// The agent must come back on a fresh stream and re-register via its
	// next report.
	waitFor(t, 15*time.Second, func() bool {
		var h adminapi.Health
		apiGet(t, tord.AdminAddr(), "/healthz", &h)
		return len(h.Agents) == 1 && agent.Connected()
	})
}

// TestTordRuleCRUD exercises admin pin/unpin against the live install
// machinery.
func TestTordRuleCRUD(t *testing.T) {
	tord, agent := startPair(t)
	waitFor(t, 10*time.Second, func() bool {
		var h adminapi.Health
		apiGet(t, tord.AdminAddr(), "/healthz", &h)
		return len(h.Agents) == 1
	})
	_ = agent

	spec := adminapi.PatternSpec{Tenant: 7, Dst: "10.0.7.1", DstPort: 443}
	apiSend(t, "POST", tord.AdminAddr(), "/v1/rules", spec)
	waitFor(t, 10*time.Second, func() bool {
		var rep adminapi.RulesReply
		apiGet(t, tord.AdminAddr(), "/v1/rules", &rep)
		return rep.TCAMUsed > 0
	})
	apiSend(t, "DELETE", tord.AdminAddr(), "/v1/rules", spec)
	waitFor(t, 10*time.Second, func() bool {
		var rep adminapi.RulesReply
		apiGet(t, tord.AdminAddr(), "/v1/rules", &rep)
		return rep.TCAMUsed == 0
	})
}

// TestConfigRoundTrip covers the JSON duration forms and unknown-field
// rejection.
func TestConfigRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/tord.json"
	if err := writeFile(path, `{
		"listen_control": "127.0.0.1:7001",
		"tcam_capacity": 128,
		"sample_interval": "250ms",
		"controller": {"epoch": "50ms", "lease_ttl": "2s"}
	}`); err != nil {
		t.Fatal(err)
	}
	var cfg TordConfig
	if err := LoadConfig(path, &cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.ListenControl != "127.0.0.1:7001" || cfg.TCAMCapacity != 128 {
		t.Fatalf("bad config: %+v", cfg)
	}
	if cfg.SampleInterval.D() != 250*time.Millisecond ||
		cfg.Controller.Epoch.D() != 50*time.Millisecond ||
		cfg.Controller.LeaseTTL.D() != 2*time.Second {
		t.Fatalf("durations mis-parsed: %+v", cfg)
	}

	bad := dir + "/bad.json"
	if err := writeFile(bad, `{"listen_ctrl": "oops"}`); err != nil {
		t.Fatal(err)
	}
	if err := LoadConfig(bad, &cfg); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
