package service

import (
	"bufio"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestDaemonProcesses builds the real fastrak-tord / fastrak-agentd /
// fastrak-ctl binaries and runs the full operator workflow against two
// live OS processes: ready-line handshake, tenant onboarding through
// ctl, traffic until an offload decision lands, a /metrics scrape, and a
// SIGTERM drain on both.
func TestDaemonProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("process test skipped in -short")
	}
	bin := t.TempDir()
	repoRoot, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fastrak-tord", "fastrak-agentd", "fastrak-ctl"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(bin, name), "./cmd/"+name)
		cmd.Dir = repoRoot
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, out)
		}
	}

	// fastrak-tord, ephemeral ports.
	tord := exec.Command(filepath.Join(bin, "fastrak-tord"),
		"-listen-control", "127.0.0.1:0", "-listen-admin", "127.0.0.1:0")
	tordOut := startDaemon(t, tord)
	ready := waitLine(t, tordOut, "fastrak-tord ready", 20*time.Second)
	controlAddr := fieldValue(t, ready, "control")
	tordAdmin := fieldValue(t, ready, "admin")

	// fastrak-agentd dialing it.
	agentd := exec.Command(filepath.Join(bin, "fastrak-agentd"),
		"-server-id", "1", "-tor", controlAddr, "-listen-admin", "127.0.0.1:0")
	agentOut := startDaemon(t, agentd)
	ready = waitLine(t, agentOut, "fastrak-agentd ready", 20*time.Second)
	agentAdmin := fieldValue(t, ready, "admin")

	ctl := func(addr string, args ...string) string {
		cmd := exec.Command(filepath.Join(bin, "fastrak-ctl"),
			append([]string{"-addr", addr}, args...)...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("ctl %v: %v\n%s", args, err, out)
		}
		return string(out)
	}

	// Onboard a tenant and light up a hot flow through the CLI.
	ctl(agentAdmin, "tenant", "add", "-tenant", "3", "-ip", "10.0.0.1")
	ctl(agentAdmin, "tenant", "add", "-tenant", "3", "-ip", "10.0.0.2")
	if out := ctl(agentAdmin, "tenant", "list"); !strings.Contains(out, "10.0.0.1") {
		t.Fatalf("tenant list missing VM:\n%s", out)
	}
	ctl(agentAdmin, "traffic", "-tenant", "3", "-src", "10.0.0.1", "-dst", "10.0.0.2",
		"-src-port", "40000", "-dst-port", "8080", "-pps", "5000")

	// Default cadence: epoch 500ms, interval 1s — the decision needs a
	// few intervals of demand history.
	deadline := time.Now().Add(60 * time.Second)
	var placements string
	for {
		placements = ctl(tordAdmin, "placements")
		if strings.Contains(placements, "offloaded") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no offload decision landed; placements:\n%s\nhealth:\n%s",
				placements, ctl(tordAdmin, "health"))
		}
		time.Sleep(250 * time.Millisecond)
	}

	metrics := ctl(tordAdmin, "metrics")
	if !strings.Contains(metrics, "fastrak_torctl_installs") || !strings.Contains(metrics, "# TYPE") {
		t.Fatalf("metrics scrape incomplete:\n%.400s", metrics)
	}
	if out := ctl(tordAdmin, "rules", "list"); !strings.Contains(out, "tcam:") {
		t.Fatalf("rules list:\n%s", out)
	}

	// SIGTERM drain, agent first.
	stopDaemon(t, agentd, agentOut, "fastrak-agentd stopped")
	stopDaemon(t, tord, tordOut, "fastrak-tord stopped")
}

// startDaemon launches cmd with stdout piped and stderr surfaced into
// the test log, and registers a kill-on-cleanup backstop.
func startDaemon(t *testing.T, cmd *exec.Cmd) *bufio.Reader {
	t.Helper()
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", cmd.Path, err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	})
	return bufio.NewReader(stdout)
}

func waitLine(t *testing.T, r *bufio.Reader, prefix string, timeout time.Duration) string {
	t.Helper()
	type res struct {
		line string
		err  error
	}
	ch := make(chan res, 1)
	go func() {
		for {
			line, err := r.ReadString('\n')
			if strings.Contains(line, prefix) || err != nil {
				ch <- res{strings.TrimSpace(line), err}
				return
			}
		}
	}()
	select {
	case rr := <-ch:
		if rr.err != nil && !strings.Contains(rr.line, prefix) {
			t.Fatalf("waiting for %q: %v", prefix, rr.err)
		}
		return rr.line
	case <-time.After(timeout):
		t.Fatalf("timed out waiting for %q", prefix)
		return ""
	}
}

// fieldValue extracts v from a "k=v" token on the ready line.
func fieldValue(t *testing.T, line, key string) string {
	t.Helper()
	for _, tok := range strings.Fields(line) {
		if v, ok := strings.CutPrefix(tok, key+"="); ok {
			return v
		}
	}
	t.Fatalf("ready line %q missing %s=", line, key)
	return ""
}

func stopDaemon(t *testing.T, cmd *exec.Cmd, out *bufio.Reader, wantLine string) {
	t.Helper()
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("signal: %v", err)
	}
	sawStop := false
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		line, err := out.ReadString('\n')
		if strings.Contains(line, wantLine) {
			sawStop = true
			break
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("drain output: %v", err)
		}
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("%s exit: %v", filepath.Base(cmd.Path), err)
		}
	case <-time.After(20 * time.Second):
		t.Fatalf("%s did not exit after SIGTERM", filepath.Base(cmd.Path))
	}
	if !sawStop {
		t.Fatalf("%s never printed %q", filepath.Base(cmd.Path), wantLine)
	}
}
