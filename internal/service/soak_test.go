package service

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"repro/internal/adminapi"
)

// countFDs reports the process's open file descriptors (-1 when the
// platform has no /proc).
func countFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	return len(ents)
}

// TestSoakTenantChurn runs a live daemon pair under continuous tenant
// churn — onboard, drive traffic, tear down, repeat — and asserts the
// process neither accretes goroutines nor leaks fds/conns after
// shutdown. FASTRAK_SOAK_SECONDS extends the default ~3s churn window
// for real soaking.
func TestSoakTenantChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short")
	}
	soakFor := 3 * time.Second
	if s := os.Getenv("FASTRAK_SOAK_SECONDS"); s != "" {
		secs, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("FASTRAK_SOAK_SECONDS=%q: %v", s, err)
		}
		soakFor = time.Duration(secs) * time.Second
	}

	baseGoroutines := runtime.NumGoroutine()
	baseFDs := countFDs()

	tord, agent := startPair(t)
	waitFor(t, 10*time.Second, func() bool {
		var h adminapi.Health
		apiGet(t, tord.AdminAddr(), "/healthz", &h)
		return len(h.Agents) == 1
	})

	end := time.Now().Add(soakFor)
	var peakGoroutines, rounds int
	for time.Now().Before(end) {
		rounds++
		// Two fresh VMs per round, same tenant space cycling over 8 IPs
		// so tunnel/VLAN state is exercised for reuse, not just growth.
		tenant := uint32(2 + rounds%4)
		ipA := fmt.Sprintf("10.9.%d.1", rounds%8)
		ipB := fmt.Sprintf("10.9.%d.2", rounds%8)
		apiSend(t, "POST", agent.AdminAddr(), "/v1/vms",
			adminapi.VMRequest{Tenant: tenant, IP: ipA, EgressBps: 1e9})
		apiSend(t, "POST", agent.AdminAddr(), "/v1/vms",
			adminapi.VMRequest{Tenant: tenant, IP: ipB})
		apiSend(t, "POST", agent.AdminAddr(), "/v1/traffic", adminapi.TrafficRequest{
			Tenant: tenant, Src: ipA, Dst: ipB,
			SrcPort: 41000, DstPort: 8080, IntervalUS: 500, DurationMS: 40,
		})
		time.Sleep(60 * time.Millisecond)
		apiSend(t, "DELETE", agent.AdminAddr(), "/v1/vms",
			adminapi.VMKeySpec{Tenant: tenant, IP: ipA})
		apiSend(t, "DELETE", agent.AdminAddr(), "/v1/vms",
			adminapi.VMKeySpec{Tenant: tenant, IP: ipB})
		if g := runtime.NumGoroutine(); g > peakGoroutines {
			peakGoroutines = g
		}
	}
	if rounds < 2 {
		t.Fatalf("soak made only %d churn rounds", rounds)
	}
	// A daemon pair is a fixed set of loops: two runtimes, two HTTP
	// servers, accept/serve loops, one control connection. Churn must
	// not scale goroutines with rounds.
	if peakGoroutines > baseGoroutines+40 {
		t.Fatalf("goroutines grew with churn: base %d, peak %d after %d rounds",
			baseGoroutines, peakGoroutines, rounds)
	}

	var vms []adminapi.VMInfo
	apiGet(t, agent.AdminAddr(), "/v1/vms", &vms)
	if len(vms) != 0 {
		t.Fatalf("%d VMs survived churn teardown", len(vms))
	}

	if err := agent.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tord.Close(); err != nil {
		t.Fatal(err)
	}

	// Everything the pair spawned must unwind.
	waitFor(t, 10*time.Second, func() bool {
		return runtime.NumGoroutine() <= baseGoroutines+2
	})
	if baseFDs >= 0 {
		waitFor(t, 10*time.Second, func() bool {
			// TIME_WAIT etc. don't hold fds; allow a little slack for
			// test-framework incidentals.
			return countFDs() <= baseFDs+3
		})
	}
}

// TestShutdownReleasesResources is the fast (non-soak) leak guard run in
// every test invocation: one full daemon-pair lifecycle must return the
// process to its baseline goroutine and fd counts.
func TestShutdownReleasesResources(t *testing.T) {
	baseGoroutines := runtime.NumGoroutine()
	baseFDs := countFDs()

	tord, agent := startPair(t)
	waitFor(t, 10*time.Second, func() bool {
		var h adminapi.Health
		apiGet(t, tord.AdminAddr(), "/healthz", &h)
		return len(h.Agents) == 1
	})
	if err := agent.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tord.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, func() bool {
		return runtime.NumGoroutine() <= baseGoroutines+2
	})
	if baseFDs >= 0 {
		waitFor(t, 10*time.Second, func() bool {
			return countFDs() <= baseFDs+3
		})
	}
	// Closing twice stays clean (ctl + SIGTERM racing).
	if err := agent.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tord.Close(); err != nil {
		t.Fatal(err)
	}
}
