package service

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"

	"repro/internal/adminapi"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/openflow"
	"repro/internal/telemetry"
)

// Tord is the fastrak-tord daemon: the ToR decision engine as a
// long-lived process. Agents (fastrak-agentd) dial its control listener
// and speak the openflow wire protocol; operators talk to the admin
// HTTP listener.
type Tord struct {
	Cfg TordConfig

	rt      *Runtime
	cluster *cluster.Cluster
	svc     *core.TORService

	rec     *telemetry.Recorder
	reg     *telemetry.Registry
	sampler *telemetry.Sampler

	controlLn net.Listener
	adminLn   net.Listener
	httpSrv   *http.Server

	mu      sync.Mutex // guards conns/closing (daemon lifecycle, not engine state)
	conns   map[*agentConn]struct{}
	closing bool
	wg      sync.WaitGroup // accept loop + per-connection read loops
	httpWg  sync.WaitGroup
}

// agentConn is one connected fastrak-agentd. serverID/registered belong
// to the engine thread: they are touched only inside Runtime closures,
// so the lazy registration below needs no extra locking.
type agentConn struct {
	nc         net.Conn
	conn       *openflow.Conn
	tr         *openflow.Transport
	serverID   uint32
	registered bool
}

// StartTord builds the daemon and starts serving. On success the control
// and admin listeners are bound (check ControlAddr/AdminAddr for the
// resolved ports when the config used :0) and the decision cadence is
// running on wall time.
func StartTord(cfg TordConfig, clock Clock) (*Tord, error) {
	cfg.normalize()
	if clock == nil {
		clock = NewWallClock()
	}

	// The ToR process models only the switch: one placeholder server
	// keeps the testbed graph well-formed, all real hosts live in agent
	// processes and attach over TCP.
	c := cluster.New(cluster.Config{
		Servers:      1,
		TCAMCapacity: cfg.TCAMCapacity,
		Seed:         cfg.Seed,
	})
	svc := core.NewTORService(c, cfg.Controller.coreConfig())

	t := &Tord{
		Cfg:     cfg,
		cluster: c,
		svc:     svc,
		conns:   make(map[*agentConn]struct{}),
	}
	t.attachTelemetry()

	controlLn, err := net.Listen("tcp", cfg.ListenControl)
	if err != nil {
		return nil, fmt.Errorf("service: tord control listen: %w", err)
	}
	t.controlLn = controlLn

	if cfg.ListenAdmin != "none" {
		adminLn, err := net.Listen("tcp", cfg.ListenAdmin)
		if err != nil {
			controlLn.Close()
			return nil, fmt.Errorf("service: tord admin listen: %w", err)
		}
		t.adminLn = adminLn
	}

	// Everything scheduled so far (sampler ticks) sits at virtual time
	// 0; the runtime takes over and replays it against the wall.
	t.rt = NewRuntime(c.Eng, clock)
	t.rt.Do(svc.Start)

	t.wg.Add(1)
	go t.acceptLoop()
	if t.adminLn != nil {
		t.httpSrv = &http.Server{Handler: adminapi.New(t.adminHooks())}
		t.httpWg.Add(1)
		go func() {
			defer t.httpWg.Done()
			_ = t.httpSrv.Serve(t.adminLn)
		}()
	}
	return t, nil
}

// ControlAddr is the bound control listener address.
func (t *Tord) ControlAddr() string { return t.controlLn.Addr().String() }

// AdminAddr is the bound admin listener address ("" when disabled).
func (t *Tord) AdminAddr() string {
	if t.adminLn == nil {
		return ""
	}
	return t.adminLn.Addr().String()
}

func (t *Tord) attachTelemetry() {
	eng := t.cluster.Eng
	t.rec = telemetry.NewRecorder(eng.Now, telemetry.Config{})
	t.reg = telemetry.NewRegistry()
	t.cluster.AttachTelemetry(t.rec, t.reg)
	t.svc.M.AttachTelemetry(t.rec, t.reg)
	if iv := t.Cfg.SampleInterval.D(); iv > 0 {
		t.sampler = telemetry.NewSampler(t.reg, iv)
		t.sampler.Tick(eng.Now())
		eng.Every(iv, func() { t.sampler.Tick(eng.Now()) })
	}
}

func (t *Tord) acceptLoop() {
	defer t.wg.Done()
	for {
		nc, err := t.controlLn.Accept()
		if err != nil {
			return // listener closed: shutting down
		}
		t.mu.Lock()
		if t.closing {
			t.mu.Unlock()
			nc.Close()
			return
		}
		ac := &agentConn{nc: nc, conn: openflow.NewConn(nc)}
		t.conns[ac] = struct{}{}
		t.wg.Add(1)
		t.mu.Unlock()
		go t.serveAgent(ac)
	}
}

// serveAgent runs one agent connection's read loop. The agent identifies
// itself lazily: the first message carrying a ServerID (a demand report,
// sync ack or overload hint) attaches it to the decision engine; a read
// error detaches it and releases its ack-gating state.
func (t *Tord) serveAgent(ac *agentConn) {
	defer t.wg.Done()
	defer func() {
		t.mu.Lock()
		delete(t.conns, ac)
		t.mu.Unlock()
		ac.nc.Close()
	}()
	if err := ac.conn.Handshake(); err != nil {
		return
	}
	for {
		msg, xid, err := ac.conn.Recv()
		if err != nil {
			break
		}
		t.rt.Post(func() { t.handleFromAgent(ac, msg, xid) })
	}
	t.rt.Post(func() {
		if ac.registered {
			ac.registered = false
			t.svc.DetachLocal(ac.serverID)
		}
	})
}

// handleFromAgent runs on the engine thread.
func (t *Tord) handleFromAgent(ac *agentConn, msg openflow.Message, xid uint32) {
	if !ac.registered {
		if id, ok := serverIDOf(msg); ok {
			ac.serverID = id
			ac.registered = true
			// Outbound transport: encode + count exactly as in-sim, then
			// write whole frames onto this agent's stream.
			ac.tr = openflow.NewRemoteTransport(ac.conn.WriteFrame)
			t.svc.AttachLocal(id, ac.tr)
		}
	}
	t.svc.TC.HandleMessage(msg, xid, func(m openflow.Message, x uint32) {
		_ = ac.conn.SendXID(m, x) // best-effort: a lost reply is a lost frame
	})
}

// serverIDOf extracts the sender identity from the message kinds local
// controllers originate.
func serverIDOf(msg openflow.Message) (uint32, bool) {
	switch m := msg.(type) {
	case *openflow.DemandReport:
		return m.ServerID, true
	case *openflow.SyncAck:
		return m.ServerID, true
	case *openflow.OverloadHint:
		return m.ServerID, true
	}
	return 0, false
}

func (t *Tord) adminHooks() adminapi.Hooks {
	return adminapi.Hooks{
		Health: func() adminapi.Health {
			var agents []uint32
			t.rt.Do(func() { agents = t.svc.AgentIDs() })
			return adminapi.Health{
				Role:   "tord",
				NowUS:  t.rt.Now().Microseconds(),
				Agents: agents,
			}
		},
		WriteMetrics: func(w io.Writer) error {
			var err error
			t.rt.Do(func() { err = telemetry.WritePrometheus(w, t.reg) })
			return err
		},
		WriteSeriesCSV: func(w io.Writer) error {
			if t.sampler == nil {
				return nil
			}
			var err error
			t.rt.Do(func() { err = telemetry.WriteSeriesCSV(w, t.sampler) })
			return err
		},
		Placements: func() []adminapi.Placement {
			var out []adminapi.Placement
			t.rt.Do(func() {
				for _, p := range t.svc.Placements() {
					out = append(out, adminapi.Placement{
						Pattern:  p.Pattern.String(),
						State:    p.State,
						Attempts: p.Attempts,
					})
				}
			})
			return out
		},
		Rules: func() adminapi.RulesReply {
			var rep adminapi.RulesReply
			t.rt.Do(func() {
				for _, hr := range t.svc.HardwareRules() {
					rep.Rules = append(rep.Rules, adminapi.HardwareRule{
						Pattern:  hr.Pattern.String(),
						Priority: hr.Priority,
						Queue:    hr.Queue,
						Packets:  hr.Packets,
						Bytes:    hr.Bytes,
					})
				}
				rep.TCAMUsed, rep.TCAMCap = t.svc.TCAMUsage()
			})
			return rep
		},
		PinRule: func(ps adminapi.PatternSpec) error {
			p, err := ps.Pattern()
			if err != nil {
				return err
			}
			t.rt.Do(func() { t.svc.Pin(p) })
			return nil
		},
		UnpinRule: func(ps adminapi.PatternSpec) error {
			p, err := ps.Pattern()
			if err != nil {
				return err
			}
			t.rt.Do(func() { t.svc.Unpin(p) })
			return nil
		},
	}
}

// Close drains the daemon: stop accepting admin and control traffic,
// drop agent connections, halt the decision cadence on the engine
// thread, then stop the clock driver. Safe to call more than once.
func (t *Tord) Close() error {
	t.mu.Lock()
	if t.closing {
		t.mu.Unlock()
		return nil
	}
	t.closing = true
	conns := make([]*agentConn, 0, len(t.conns))
	for ac := range t.conns {
		conns = append(conns, ac)
	}
	t.mu.Unlock()

	if t.httpSrv != nil {
		_ = t.httpSrv.Close()
		t.httpWg.Wait()
	}
	t.controlLn.Close()
	for _, ac := range conns {
		ac.nc.Close() // unblocks the read loops, which post their detach
	}
	t.wg.Wait()
	t.rt.Do(t.svc.Stop)
	t.rt.Close()
	return nil
}
