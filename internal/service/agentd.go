package service

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adminapi"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/host"
	"repro/internal/model"
	"repro/internal/openflow"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/smartnic"
	"repro/internal/telemetry"
	"repro/internal/vswitch"
)

// Agentd is the fastrak-agentd daemon: one host's local controller plus
// its full data-plane model (vswitch, flow placers, optional SmartNIC,
// express-lane rule mirror) as a long-lived process. It dials the
// fastrak-tord control listener and keeps redialing through the
// openflow.Conn reconnect path when the connection drops.
type Agentd struct {
	Cfg AgentConfig

	rt      *Runtime
	cluster *cluster.Cluster
	svc     *core.AgentService

	rec     *telemetry.Recorder
	reg     *telemetry.Registry
	sampler *telemetry.Sampler

	conn      *openflow.Conn
	connected atomic.Bool
	stopping  atomic.Bool
	stop      chan struct{} // interrupts redial backoff sleeps

	// netMu guards nc, the current TCP stream, swapped on reconnect.
	netMu sync.Mutex
	nc    net.Conn

	adminLn net.Listener
	httpSrv *http.Server
	httpWg  sync.WaitGroup
	wg      sync.WaitGroup // control-connection serve loop

	// tickers belong to the engine thread: synthetic traffic streams to
	// stop on shutdown.
	tickers []*sim.Ticker
}

// StartAgentd builds the daemon, dials the ToR controller (retrying with
// the configured backoff budget) and starts the measurement cadence on
// wall time.
func StartAgentd(cfg AgentConfig, clock Clock) (*Agentd, error) {
	cfg.normalize()
	if clock == nil {
		clock = NewWallClock()
	}

	var nicCfg *smartnic.Config
	if cfg.SmartNICCapacity > 0 {
		def := smartnic.DefaultConfig()
		def.Capacity = cfg.SmartNICCapacity
		nicCfg = &def
	}
	c := cluster.New(cluster.Config{
		Servers:      1,
		TCAMCapacity: cfg.TCAMCapacity,
		Seed:         cfg.Seed,
		VSwitchCfg:   model.VSwitchConfig{Tunneling: true},
		SmartNIC:     nicCfg,
	})

	a := &Agentd{Cfg: cfg, cluster: c, stop: make(chan struct{})}

	// Initial dial, with the same backoff budget as reconnects: at boot
	// the ToR daemon may simply not be up yet.
	nc, err := a.dialRetry()
	if err != nil {
		return nil, err
	}
	a.setNetConn(nc)
	a.conn = openflow.NewConn(nc)
	a.conn.SetDialer(a.dialOnce)
	if err := a.conn.Handshake(); err != nil {
		nc.Close()
		return nil, fmt.Errorf("service: agentd handshake: %w", err)
	}
	a.connected.Store(true)

	// The server's ID is its rack-wide wire identity: demand reports and
	// sync acks carry it, and the ToR daemon attaches/acks-gates by it.
	// Must be set before the controller is built (the ME snapshots it).
	c.Servers[0].ID = int(cfg.ServerID)
	toTOR := openflow.NewRemoteTransport(a.conn.WriteFrame)
	a.svc = core.NewAgentService(c, cfg.Controller.coreConfig(), toTOR)
	a.attachTelemetry()

	if cfg.ListenAdmin != "none" {
		adminLn, lerr := net.Listen("tcp", cfg.ListenAdmin)
		if lerr != nil {
			nc.Close()
			return nil, fmt.Errorf("service: agentd admin listen: %w", lerr)
		}
		a.adminLn = adminLn
	}

	a.rt = NewRuntime(c.Eng, clock)
	a.rt.Do(a.svc.Start)

	a.wg.Add(1)
	go a.serveLoop()
	if a.adminLn != nil {
		a.httpSrv = &http.Server{Handler: adminapi.New(a.adminHooks())}
		a.httpWg.Add(1)
		go func() {
			defer a.httpWg.Done()
			_ = a.httpSrv.Serve(a.adminLn)
		}()
	}
	return a, nil
}

// AdminAddr is the bound admin listener address ("" when disabled).
func (a *Agentd) AdminAddr() string {
	if a.adminLn == nil {
		return ""
	}
	return a.adminLn.Addr().String()
}

// Connected reports whether the control connection is currently up.
func (a *Agentd) Connected() bool { return a.connected.Load() }

func (a *Agentd) setNetConn(nc net.Conn) {
	a.netMu.Lock()
	a.nc = nc
	a.netMu.Unlock()
}

// dialOnce is the openflow.Dialer: one attempt, fail-fast while the
// daemon is stopping so a shutdown never blocks on a dead controller.
func (a *Agentd) dialOnce() (io.ReadWriter, error) {
	if a.stopping.Load() {
		return nil, fmt.Errorf("service: agentd stopping")
	}
	nc, err := net.DialTimeout("tcp", a.Cfg.TORAddr, a.Cfg.DialTimeout.D())
	if err != nil {
		return nil, err
	}
	a.setNetConn(nc)
	return nc, nil
}

func (a *Agentd) dialRetry() (net.Conn, error) {
	var lastErr error
	for i := 0; i < a.Cfg.ReconnectAttempts; i++ {
		nc, err := net.DialTimeout("tcp", a.Cfg.TORAddr, a.Cfg.DialTimeout.D())
		if err == nil {
			return nc, nil
		}
		lastErr = err
		time.Sleep(openflow.ReconnectDelay(a.Cfg.ReconnectBackoff.D(), i))
	}
	return nil, fmt.Errorf("service: agentd dial %s: %w", a.Cfg.TORAddr, lastErr)
}

func (a *Agentd) attachTelemetry() {
	eng := a.cluster.Eng
	a.rec = telemetry.NewRecorder(eng.Now, telemetry.Config{})
	a.reg = telemetry.NewRegistry()
	a.cluster.AttachTelemetry(a.rec, a.reg)
	a.svc.M.AttachTelemetry(a.rec, a.reg)
	if iv := a.Cfg.SampleInterval.D(); iv > 0 {
		a.sampler = telemetry.NewSampler(a.reg, iv)
		a.sampler.Tick(eng.Now())
		eng.Every(iv, func() { a.sampler.Tick(eng.Now()) })
	}
}

// serveLoop reads control messages and dispatches them onto the engine
// thread; on connection failure it redials through Conn.Reconnect with
// the clamped exponential backoff, checking for shutdown between
// attempts. It exits when the redial budget is exhausted or the daemon
// stops.
func (a *Agentd) serveLoop() {
	defer a.wg.Done()
	for {
		// Serve's error is discarded deliberately: unlike ServeReconnect,
		// io.EOF is NOT an orderly end here — a ToR daemon restart closes
		// the stream cleanly and the agent must still redial. The only
		// orderly exit is our own shutdown.
		_ = openflow.Serve(a.conn, agentHandler{a})
		a.connected.Store(false)
		if a.stopping.Load() {
			return
		}
		recovered := false
		for i := 0; i < a.Cfg.ReconnectAttempts; i++ {
			select {
			case <-a.stop:
				return
			case <-time.After(openflow.ReconnectDelay(a.Cfg.ReconnectBackoff.D(), i)):
			}
			if a.conn.Reconnect() == nil {
				recovered = true
				break
			}
		}
		if !recovered {
			return
		}
		a.connected.Store(true)
	}
}

// agentHandler bridges the reader goroutine onto the engine thread.
type agentHandler struct{ a *Agentd }

func (h agentHandler) HandleMessage(msg openflow.Message, xid uint32, _ openflow.ReplyFunc) {
	a := h.a
	a.rt.Post(func() {
		a.svc.LC.HandleMessage(msg, xid, func(m openflow.Message, x uint32) {
			_ = a.conn.SendXID(m, x) // best-effort: a lost reply is a lost frame
		})
	})
}

func (a *Agentd) adminHooks() adminapi.Hooks {
	return adminapi.Hooks{
		Health: func() adminapi.Health {
			connected := a.connected.Load()
			return adminapi.Health{
				Role:      "agentd",
				NowUS:     a.rt.Now().Microseconds(),
				ServerID:  a.Cfg.ServerID,
				Connected: &connected,
			}
		},
		WriteMetrics: func(w io.Writer) error {
			var err error
			a.rt.Do(func() { err = telemetry.WritePrometheus(w, a.reg) })
			return err
		},
		WriteSeriesCSV: func(w io.Writer) error {
			if a.sampler == nil {
				return nil
			}
			var err error
			a.rt.Do(func() { err = telemetry.WriteSeriesCSV(w, a.sampler) })
			return err
		},
		Placements: func() []adminapi.Placement {
			var out []adminapi.Placement
			a.rt.Do(func() {
				for _, p := range a.svc.LC.Placements() {
					out = append(out, adminapi.Placement{Pattern: p.String(), State: "installed"})
				}
			})
			return out
		},
		VMs:      a.listVMs,
		AddVM:    a.addVM,
		RemoveVM: a.removeVM,
		Traffic:  a.startTraffic,
	}
}

func (a *Agentd) listVMs() []adminapi.VMInfo {
	var out []adminapi.VMInfo
	a.rt.Do(func() {
		for key, vm := range a.cluster.Servers[0].VMs {
			out = append(out, adminapi.VMInfo{
				Tenant: uint32(key.Tenant),
				IP:     key.IP.String(),
				VCPUs:  vm.CPU.Slots(),
			})
		}
	})
	sortVMs(out)
	return out
}

func sortVMs(vms []adminapi.VMInfo) {
	for i := 1; i < len(vms); i++ {
		for j := i; j > 0; j-- {
			a, b := vms[j-1], vms[j]
			if a.Tenant < b.Tenant || (a.Tenant == b.Tenant && a.IP <= b.IP) {
				break
			}
			vms[j-1], vms[j] = b, a
		}
	}
}

func (a *Agentd) addVM(req adminapi.VMRequest) error {
	ip, err := packet.ParseIP(req.IP)
	if err != nil {
		return err
	}
	tenant := packet.TenantID(req.Tenant)
	var addErr error
	a.rt.Do(func() {
		if _, addErr = a.cluster.AddVM(0, tenant, ip, req.VCPUs, nil); addErr != nil {
			return
		}
		if req.EgressBps > 0 || req.IngressBps > 0 {
			a.svc.SetVMLimit(vswitch.VMKey{Tenant: tenant, IP: ip}, req.EgressBps, req.IngressBps)
		}
	})
	return addErr
}

func (a *Agentd) removeVM(key adminapi.VMKeySpec) error {
	ip, err := packet.ParseIP(key.IP)
	if err != nil {
		return err
	}
	var rmErr error
	a.rt.Do(func() {
		rmErr = a.svc.RemoveVM(vswitch.VMKey{Tenant: packet.TenantID(key.Tenant), IP: ip})
	})
	return rmErr
}

// startTraffic begins a constant-rate synthetic stream between two local
// VMs — the service-mode stand-in for a tenant workload, used by the
// smoke test and fastrak-ctl to light up the offload path.
func (a *Agentd) startTraffic(req adminapi.TrafficRequest) error {
	src, err := packet.ParseIP(req.Src)
	if err != nil {
		return fmt.Errorf("src: %w", err)
	}
	dst, err := packet.ParseIP(req.Dst)
	if err != nil {
		return fmt.Errorf("dst: %w", err)
	}
	if req.SrcPort == 0 || req.DstPort == 0 {
		return fmt.Errorf("src_port and dst_port are required (0 wildcards in patterns)")
	}
	size := req.SizeBytes
	if size <= 0 {
		size = 64
	}
	interval := time.Duration(req.IntervalUS) * time.Microsecond
	if interval <= 0 {
		interval = time.Millisecond
	}
	tenant := packet.TenantID(req.Tenant)
	var trErr error
	a.rt.Do(func() {
		srcVM, ok := a.cluster.FindVM(tenant, src)
		if !ok {
			trErr = fmt.Errorf("no VM t%d/%s", req.Tenant, req.Src)
			return
		}
		dstVM, ok := a.cluster.FindVM(tenant, dst)
		if !ok {
			trErr = fmt.Errorf("no VM t%d/%s", req.Tenant, req.Dst)
			return
		}
		dstVM.BindApp(req.DstPort, host.AppFunc(func(*host.VM, *packet.Packet) {}))
		ticker := a.cluster.Eng.Every(interval, func() {
			srcVM.Send(dst, req.SrcPort, req.DstPort, size, host.SendOptions{}, nil)
		})
		a.tickers = append(a.tickers, ticker)
		if req.DurationMS > 0 {
			a.cluster.Eng.After(time.Duration(req.DurationMS)*time.Millisecond, ticker.Stop)
		}
	})
	return trErr
}

// Close drains the daemon: admin first, then the control connection and
// its serve loop, then the controller cadence and traffic streams on the
// engine thread, then the clock driver.
func (a *Agentd) Close() error {
	if a.stopping.Swap(true) {
		return nil
	}
	close(a.stop)
	if a.httpSrv != nil {
		_ = a.httpSrv.Close()
		a.httpWg.Wait()
	}
	a.netMu.Lock()
	if a.nc != nil {
		a.nc.Close() // unblocks the serve loop's Recv
	}
	a.netMu.Unlock()
	a.wg.Wait()
	a.rt.Do(func() {
		for _, t := range a.tickers {
			t.Stop()
		}
		a.svc.Stop()
	})
	a.rt.Close()
	return nil
}
