// Package service is the long-lived daemon runtime: it drives the
// deterministic simulation engine of internal/sim with wall-clock time so
// the unchanged controllers of internal/core run as real processes
// (fastrak-tord, fastrak-agentd) speaking the internal/openflow wire
// protocol over TCP.
//
// The design splits into three small pieces:
//
//   - Clock (this file): where "now" comes from. Daemons use WallClock;
//     tests use ManualClock to step virtual time precisely. Simulation
//     binaries never touch this package at all, which is what keeps sim
//     runs byte-identical: the engine cannot tell who advances it.
//   - Runtime: the single-threaded driver loop that advances the engine
//     to the clock's now, sleeps until the next scheduled event, and
//     serializes all external access (network reads, admin requests)
//     onto the engine thread via Post/Do.
//   - Tord / Agentd: the two daemon assemblies on top.
package service

import (
	"sync"
	"time"
)

// Clock supplies the virtual deadline the engine may advance to. Now must
// be monotonically non-decreasing across calls; the Runtime polls it once
// per loop iteration and after every wake-up.
type Clock interface {
	Now() time.Duration
}

// WallClock maps elapsed wall time since construction onto the virtual
// timeline, so one virtual second is one real second. This is the daemon
// clock: controller cadences (measurement epochs, decision intervals,
// lease TTLs) keep the meanings they have in simulation.
type WallClock struct {
	start time.Time
}

// NewWallClock starts counting now.
func NewWallClock() *WallClock { return &WallClock{start: time.Now()} }

// Now returns the elapsed wall time since construction.
func (w *WallClock) Now() time.Duration { return time.Since(w.start) }

// ManualClock is a test clock advanced explicitly. The zero value starts
// at 0.
type ManualClock struct {
	mu  sync.Mutex
	now time.Duration
}

// Now returns the current manual time.
func (m *ManualClock) Now() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Advance moves the clock forward by d. It never moves backward; a
// negative d panics.
func (m *ManualClock) Advance(d time.Duration) {
	if d < 0 {
		panic("service: ManualClock.Advance negative")
	}
	m.mu.Lock()
	m.now += d
	m.mu.Unlock()
}
