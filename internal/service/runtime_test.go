package service

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sim"
)

func waitFor(t *testing.T, deadline time.Duration, cond func() bool) {
	t.Helper()
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("condition not met within %v", deadline)
}

func TestWallClockAdvancesEngine(t *testing.T) {
	eng := sim.NewEngine(1)
	var fired atomic.Bool
	eng.After(5*time.Millisecond, func() { fired.Store(true) })
	rt := NewRuntime(eng, NewWallClock())
	defer rt.Close()
	waitFor(t, 2*time.Second, fired.Load)
}

func TestManualClockGatesEvents(t *testing.T) {
	eng := sim.NewEngine(1)
	var fired atomic.Bool
	eng.After(time.Hour, func() { fired.Store(true) })
	clock := &ManualClock{}
	rt := NewRuntime(eng, clock)
	defer rt.Close()

	time.Sleep(20 * time.Millisecond)
	if fired.Load() {
		t.Fatal("event fired before the clock reached it")
	}
	clock.Advance(2 * time.Hour)
	waitFor(t, 2*time.Second, fired.Load)
	if got := rt.Now(); got != 2*time.Hour {
		t.Fatalf("engine time = %v, want clock time 2h", got)
	}
}

func TestPostRunsOnEngineTimeline(t *testing.T) {
	eng := sim.NewEngine(1)
	rt := NewRuntime(eng, NewWallClock())
	defer rt.Close()
	var ran atomic.Bool
	rt.Post(func() { ran.Store(true) })
	waitFor(t, 2*time.Second, ran.Load)
}

func TestDoIsSynchronous(t *testing.T) {
	eng := sim.NewEngine(1)
	rt := NewRuntime(eng, NewWallClock())
	defer rt.Close()
	v := 0
	rt.Do(func() { v = 42 })
	if v != 42 {
		t.Fatalf("Do returned before running fn (v=%d)", v)
	}
}

func TestDoFlushesSameTimeChains(t *testing.T) {
	eng := sim.NewEngine(1)
	rt := NewRuntime(eng, NewWallClock())
	defer rt.Close()
	chain := 0
	rt.Do(func() {
		// A CallSoon scheduled by the closure itself (the announce-batch
		// idiom in the controllers) must complete before Do returns.
		eng.CallSoon(func() { chain = 1 })
	})
	if chain != 1 {
		t.Fatal("same-time chain did not flush before Do returned")
	}
}

func TestCloseIsIdempotentAndDoStillWorks(t *testing.T) {
	eng := sim.NewEngine(1)
	rt := NewRuntime(eng, NewWallClock())
	rt.Close()
	rt.Close()
	// Post after close is a silent no-op...
	rt.Post(func() { t.Error("post ran after close") })
	// ...but Do still executes inline so shutdown-path inspection and
	// admin handlers never hang.
	ran := false
	rt.Do(func() { ran = true })
	if !ran {
		t.Fatal("Do did not run after Close")
	}
	time.Sleep(10 * time.Millisecond)
}

func TestRuntimeManyPosts(t *testing.T) {
	eng := sim.NewEngine(1)
	rt := NewRuntime(eng, NewWallClock())
	defer rt.Close()
	var n atomic.Int64
	const posts = 1000
	for i := 0; i < posts; i++ {
		rt.Post(func() { n.Add(1) })
	}
	waitFor(t, 5*time.Second, func() bool { return n.Load() == posts })
}
