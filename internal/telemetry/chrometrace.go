// Chrome trace-event JSON exporter and reader. The output loads directly
// into Perfetto (ui.perfetto.dev) / chrome://tracing as a timeline: one
// process, one named thread per recorder scope, instant events for the
// flow/rule lifecycle, async spans for migration episodes, and counter
// tracks from the time-series sampler. The same file is the interchange
// format fastrak-trace parses back, so TraceEvent carries the full
// structured payload in args.
package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/packet"
	"repro/internal/rules"
)

// TraceArgs is the structured payload of one exported event. JSON field
// order (struct order) is fixed, keeping exports byte-deterministic.
type TraceArgs struct {
	Seq    uint64  `json:"seq"`
	Kind   string  `json:"kind"`
	Cause  string  `json:"cause,omitempty"`
	Tenant uint32  `json:"tenant,omitempty"`
	Src    string  `json:"src,omitempty"`
	Dst    string  `json:"dst,omitempty"`
	SPort  uint16  `json:"sport,omitempty"`
	DPort  uint16  `json:"dport,omitempty"`
	Proto  uint8   `json:"proto,omitempty"`
	Pat    string  `json:"pat,omitempty"`
	V1     float64 `json:"v1,omitempty"`
	V2     float64 `json:"v2,omitempty"`
}

// TraceEvent is one Chrome trace-event JSON object. Only the fields the
// testbed uses are modeled. On the wire all three payload variants live
// under the standard "args" key (what Perfetto expects); the phase selects
// which one: instant/span events carry Args, metadata ("M") MetaArgs, and
// counters ("C") CtrArgs.
type TraceEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat,omitempty"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	S    string  `json:"s,omitempty"`
	ID   string  `json:"id,omitempty"`
	// Args is the structured flight-recorder payload (ph "i"/"b"/"e").
	Args *TraceArgs `json:"-"`
	// MetaArgs carries metadata-event payloads (ph "M").
	MetaArgs map[string]string `json:"-"`
	// CtrArgs carries counter-event payloads (ph "C").
	CtrArgs map[string]float64 `json:"-"`
}

// traceEventWire is the on-disk shape: identical fields, with the payload
// as raw JSON under "args".
type traceEventWire struct {
	Name string          `json:"name"`
	Cat  string          `json:"cat,omitempty"`
	Ph   string          `json:"ph"`
	Ts   float64         `json:"ts"`
	Pid  int             `json:"pid"`
	Tid  int             `json:"tid"`
	S    string          `json:"s,omitempty"`
	ID   string          `json:"id,omitempty"`
	Args json.RawMessage `json:"args,omitempty"`
}

// MarshalJSON renders the event with its phase-appropriate payload under
// "args". encoding/json sorts map keys, so output stays deterministic.
func (te TraceEvent) MarshalJSON() ([]byte, error) {
	w := traceEventWire{Name: te.Name, Cat: te.Cat, Ph: te.Ph, Ts: te.Ts,
		Pid: te.Pid, Tid: te.Tid, S: te.S, ID: te.ID}
	var payload any
	switch {
	case te.Args != nil:
		payload = te.Args
	case te.MetaArgs != nil:
		payload = te.MetaArgs
	case te.CtrArgs != nil:
		payload = te.CtrArgs
	}
	if payload != nil {
		b, err := json.Marshal(payload)
		if err != nil {
			return nil, err
		}
		w.Args = b
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes the wire shape, routing "args" by phase.
func (te *TraceEvent) UnmarshalJSON(b []byte) error {
	var w traceEventWire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*te = TraceEvent{Name: w.Name, Cat: w.Cat, Ph: w.Ph, Ts: w.Ts,
		Pid: w.Pid, Tid: w.Tid, S: w.S, ID: w.ID}
	if len(w.Args) == 0 {
		return nil
	}
	switch w.Ph {
	case "M":
		return json.Unmarshal(w.Args, &te.MetaArgs)
	case "C":
		return json.Unmarshal(w.Args, &te.CtrArgs)
	default:
		te.Args = new(TraceArgs)
		return json.Unmarshal(w.Args, te.Args)
	}
}

// traceFile is the top-level JSON object format.
type traceFile struct {
	TraceEvents     []json.RawMessage `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
}

// eventArgs converts a recorder Event into its structured trace payload.
func eventArgs(e Event) *TraceArgs {
	a := &TraceArgs{
		Seq:    e.Seq,
		Kind:   e.Kind.String(),
		Cause:  e.Cause,
		Tenant: uint32(e.Tenant),
		V1:     e.V1,
		V2:     e.V2,
	}
	if e.Flow != (packet.FlowKey{}) {
		a.Src = e.Flow.Src.String()
		a.Dst = e.Flow.Dst.String()
		a.SPort = e.Flow.SrcPort
		a.DPort = e.Flow.DstPort
		a.Proto = e.Flow.Proto
		if a.Tenant == 0 {
			a.Tenant = uint32(e.Flow.Tenant)
		}
	}
	if e.Pat != (rules.Pattern{}) {
		a.Pat = e.Pat.String()
	}
	return a
}

// WriteChromeTrace renders the recorder's merged events (plus, when
// sampler is non-nil, its series as counter tracks) as Chrome trace-event
// JSON. Events are emitted in Seq order; one pid, one tid per scope.
func WriteChromeTrace(w io.Writer, rec *Recorder, sampler *Sampler) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(te TraceEvent) error {
		b, err := json.Marshal(te)
		if err != nil {
			return err
		}
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err = bw.Write(b)
		return err
	}

	// Metadata: process name and one named thread per scope.
	if err := emit(TraceEvent{Name: "process_name", Ph: "M", Pid: 1, Tid: 0,
		MetaArgs: map[string]string{"name": "fastrak"}}); err != nil {
		return err
	}
	tids := map[string]int{}
	for i, name := range rec.Scopes() {
		tids[name] = i + 1
		if err := emit(TraceEvent{Name: "thread_name", Ph: "M", Pid: 1, Tid: i + 1,
			MetaArgs: map[string]string{"name": name}}); err != nil {
			return err
		}
	}

	// Flight-recorder events in global Seq order. Migration episodes
	// become async spans so Perfetto draws them as bars; everything else
	// is a thread-scoped instant.
	var werr error
	migID := 0
	rec.Events(func(e Event) {
		if werr != nil {
			return
		}
		te := TraceEvent{
			Name: e.Kind.String(),
			Cat:  "fastrak",
			Ph:   "i",
			S:    "t",
			Ts:   usec(e.At),
			Pid:  1,
			Tid:  tids[e.Comp],
			Args: eventArgs(e),
		}
		switch e.Kind {
		case KindMigrationStart:
			migID++
			te.Ph, te.S, te.Cat = "b", "", "migration"
			te.ID = fmt.Sprintf("mig%d", migID)
		case KindMigrationEnd:
			te.Ph, te.S, te.Cat = "e", "", "migration"
			te.ID = fmt.Sprintf("mig%d", migID)
		}
		werr = emit(te)
	})
	if werr != nil {
		return werr
	}

	// Sampled series as counter tracks.
	if sampler != nil {
		sampler.EachSeries(func(sr *Series) {
			if werr != nil {
				return
			}
			name := sr.Metric.id()
			for i := range sr.At {
				if werr = emit(TraceEvent{Name: name, Ph: "C", Ts: usec(sr.At[i]),
					Pid: 1, Tid: 0, CtrArgs: map[string]float64{"value": sr.Value[i]}}); werr != nil {
					return
				}
			}
		})
		if werr != nil {
			return werr
		}
	}

	if _, err := bw.WriteString("\n],\"displayTimeUnit\":\"ns\"}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadChromeTrace parses a trace file written by WriteChromeTrace,
// returning its events (all phases, file order) and the tid→scope-name
// mapping from thread_name metadata.
func ReadChromeTrace(r io.Reader) ([]TraceEvent, map[int]string, error) {
	var tf traceFile
	if err := json.NewDecoder(r).Decode(&tf); err != nil {
		return nil, nil, fmt.Errorf("telemetry: parse trace: %w", err)
	}
	events := make([]TraceEvent, 0, len(tf.TraceEvents))
	threads := map[int]string{}
	for _, raw := range tf.TraceEvents {
		var te TraceEvent
		if err := json.Unmarshal(raw, &te); err != nil {
			return nil, nil, fmt.Errorf("telemetry: parse trace event: %w", err)
		}
		if te.Ph == "M" && te.Name == "thread_name" && te.MetaArgs != nil {
			threads[te.Tid] = te.MetaArgs["name"]
		}
		events = append(events, te)
	}
	return events, threads, nil
}

// ReadChromeTraceFile is ReadChromeTrace over a file path.
func ReadChromeTraceFile(path string) ([]TraceEvent, map[int]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return ReadChromeTrace(f)
}
