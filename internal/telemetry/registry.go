// Metric registry: the central catalogue the time-series sampler and the
// Prometheus exporter walk. Packages register named read-callbacks over
// their existing counters — registration is cheap and read-only, so the
// dataplane keeps its plain uint64 counters and pays nothing per packet.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// MetricType distinguishes monotonically increasing counters from
// point-in-time gauges in exports.
type MetricType uint8

const (
	// TypeCounter only ever increases (packet counts, drops, installs).
	TypeCounter MetricType = iota
	// TypeGauge can move both ways (occupancy, queue depth, rates).
	TypeGauge
)

func (t MetricType) String() string {
	if t == TypeGauge {
		return "gauge"
	}
	return "counter"
}

// Metric is one registered series: a Prometheus-style name, fixed labels,
// and a read callback evaluated at sample/export time.
type Metric struct {
	// Name follows the fastrak_<component>_<what>[_total] convention.
	Name string
	// Help is the one-line description emitted as # HELP.
	Help string
	// Type is counter or gauge.
	Type MetricType
	// Labels are fixed "key=value" pairs, kept sorted for deterministic
	// output (e.g. server="3", rack="0").
	Labels []string
	// Read returns the current value.
	Read func() float64
}

// id is the unique series identity: name plus rendered label set.
func (m *Metric) id() string {
	if len(m.Labels) == 0 {
		return m.Name
	}
	return m.Name + "{" + strings.Join(m.Labels, ",") + "}"
}

// PromID renders the Prometheus sample line identity: name{k="v",...}.
func (m *Metric) PromID() string {
	if len(m.Labels) == 0 {
		return m.Name
	}
	parts := make([]string, len(m.Labels))
	for i, l := range m.Labels {
		k, v, ok := strings.Cut(l, "=")
		if !ok {
			k, v = l, ""
		}
		parts[i] = fmt.Sprintf("%s=%q", k, v)
	}
	return m.Name + "{" + strings.Join(parts, ",") + "}"
}

// Registry is the central metric catalogue. A nil *Registry accepts (and
// discards) registrations, so instrumented packages register
// unconditionally.
type Registry struct {
	metrics []*Metric
	byID    map[string]int
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[string]int)}
}

// Register adds a series. Duplicate (name, labels) registrations replace
// the prior callback — re-attachment after controller restart is the
// normal case, not an error. No-op on nil registry or nil Read.
func (r *Registry) Register(m Metric) {
	if r == nil || m.Read == nil {
		return
	}
	sort.Strings(m.Labels)
	cp := m
	if i, ok := r.byID[cp.id()]; ok {
		r.metrics[i] = &cp
		return
	}
	r.byID[cp.id()] = len(r.metrics)
	r.metrics = append(r.metrics, &cp)
}

// Counter is shorthand for registering a counter over a *uint64.
func (r *Registry) Counter(name, help string, v *uint64, labels ...string) {
	if r == nil || v == nil {
		return
	}
	r.Register(Metric{Name: name, Help: help, Type: TypeCounter, Labels: labels,
		Read: func() float64 { return float64(*v) }})
}

// Gauge is shorthand for registering a gauge callback.
func (r *Registry) Gauge(name, help string, read func() float64, labels ...string) {
	if r == nil {
		return
	}
	r.Register(Metric{Name: name, Help: help, Type: TypeGauge, Labels: labels, Read: read})
}

// Len returns the number of registered series.
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	return len(r.metrics)
}

// sortedMetrics returns the series sorted by name then label identity —
// the deterministic walk order every exporter uses.
func (r *Registry) sortedMetrics() []*Metric {
	if r == nil {
		return nil
	}
	ms := make([]*Metric, len(r.metrics))
	copy(ms, r.metrics)
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Name != ms[j].Name {
			return ms[i].Name < ms[j].Name
		}
		return ms[i].id() < ms[j].id()
	})
	return ms
}

// Each walks the series in deterministic order with their current values.
func (r *Registry) Each(fn func(m *Metric, value float64)) {
	for _, m := range r.sortedMetrics() {
		fn(m, m.Read())
	}
}

// Series is one sampled time series: the metric identity plus aligned
// (At, Value) points.
type Series struct {
	Metric Metric
	At     []time.Duration
	Value  []float64
}

// Sampler walks the registry on a fixed sim-clock interval, appending to
// in-memory series. Drive it from the sim engine via Tick.
type Sampler struct {
	reg      *Registry
	Interval time.Duration
	series   map[string]*Series
	order    []string
}

// NewSampler builds a sampler over reg with the given interval (the
// interval is advisory — the caller owns scheduling — but is recorded for
// export headers).
func NewSampler(reg *Registry, interval time.Duration) *Sampler {
	return &Sampler{reg: reg, Interval: interval, series: make(map[string]*Series)}
}

// Tick samples every registered series at sim time now. New series
// registered since the last tick join with their first point at now.
func (s *Sampler) Tick(now time.Duration) {
	if s == nil {
		return
	}
	s.reg.Each(func(m *Metric, v float64) {
		id := m.id()
		sr, ok := s.series[id]
		if !ok {
			sr = &Series{Metric: *m}
			s.series[id] = sr
			s.order = append(s.order, id)
		}
		sr.At = append(sr.At, now)
		sr.Value = append(sr.Value, v)
	})
}

// Samples returns the number of ticks taken (longest series length).
func (s *Sampler) Samples() int {
	if s == nil {
		return 0
	}
	n := 0
	for _, sr := range s.series {
		if len(sr.At) > n {
			n = len(sr.At)
		}
	}
	return n
}

// EachSeries walks the sampled series sorted by metric name then identity.
func (s *Sampler) EachSeries(fn func(*Series)) {
	if s == nil {
		return
	}
	ids := make([]string, len(s.order))
	copy(ids, s.order)
	sort.Slice(ids, func(i, j int) bool {
		a, b := s.series[ids[i]], s.series[ids[j]]
		if a.Metric.Name != b.Metric.Name {
			return a.Metric.Name < b.Metric.Name
		}
		return ids[i] < ids[j]
	})
	for _, id := range ids {
		fn(s.series[id])
	}
}
