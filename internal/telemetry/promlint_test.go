package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

func lintString(s string) error { return LintPrometheus(strings.NewReader(s)) }

func TestLintAcceptsConformantExposition(t *testing.T) {
	good := `# HELP fastrak_torctl_installs Barrier-confirmed hardware installs.
# TYPE fastrak_torctl_installs counter
fastrak_torctl_installs{rack="0"} 12
fastrak_torctl_installs{rack="1"} 3
# TYPE fastrak_vswitch_occupancy gauge
fastrak_vswitch_occupancy 0.25
# TYPE odd_values untyped
odd_values{k="a\\\\b",esc="say \"hi\"\n"} +Inf
odd_values 1e-9 1700000000000
`
	if err := lintString(good); err != nil {
		t.Fatalf("conformant text rejected: %v", err)
	}
	if err := lintString(""); err != nil {
		t.Fatalf("empty exposition rejected: %v", err)
	}
}

func TestLintRejectsViolations(t *testing.T) {
	cases := map[string]string{
		"missing trailing newline": "# TYPE a counter\na 1",
		"sample before TYPE":       "a 1\n",
		"unknown type":             "# TYPE a meter\na 1\n",
		"duplicate TYPE":           "# TYPE a counter\n# TYPE a counter\na 1\n",
		"duplicate series":         "# TYPE a counter\na{x=\"1\"} 1\na{x=\"1\"} 2\n",
		"bad metric name":          "# TYPE 1a counter\n1a 1\n",
		"bad label name":           "# TYPE a counter\na{1x=\"v\"} 1\n",
		"reserved label name":      "# TYPE a counter\na{__x=\"v\"} 1\n",
		"unquoted label value":     "# TYPE a counter\na{x=v} 1\n",
		"illegal escape":           "# TYPE a counter\na{x=\"\\t\"} 1\n",
		"unterminated value":       "# TYPE a counter\na{x=\"v} 1\n",
		"bad sample value":         "# TYPE a counter\na one\n",
		"bad timestamp":            "# TYPE a counter\na 1 soon\n",
		"split sample group":       "# TYPE a counter\n# TYPE b counter\na 1\nb 1\na{x=\"2\"} 2\n",
	}
	for what, text := range cases {
		if err := lintString(text); err == nil {
			t.Errorf("%s: accepted:\n%s", what, text)
		}
	}
}

// TestWritePrometheusConforms holds the real exporter to the linter,
// including label values that need escaping.
func TestWritePrometheusConforms(t *testing.T) {
	reg := NewRegistry()
	var c uint64 = 42
	reg.Counter("fastrak_test_events_total", "Events seen.", &c, `path=a\b`, `note=say "hi"`)
	reg.Gauge("fastrak_test_depth", "Queue depth.", func() float64 { return 1.5 }, "queue=q0")
	reg.Gauge("fastrak_test_depth", "Queue depth.", func() float64 { return 2.5 }, "queue=q1")

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg); err != nil {
		t.Fatal(err)
	}
	if err := LintPrometheus(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("exporter output fails lint: %v\n%s", err, buf.String())
	}
}
