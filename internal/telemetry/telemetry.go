// Package telemetry is the testbed's flight recorder and metric registry:
// the observability subsystem a production FasTrak deployment would ship
// with instead of end-of-run printf snapshots.
//
// Three pieces:
//
//   - A flight recorder (Recorder): sharded, fixed-capacity ring buffers of
//     structured Events — first-packet upcalls, exact/megaflow cache
//     install/hit/invalidation, offload and demote decisions with their
//     score inputs, FLOW_MOD sends and barrier confirms, TCAM rejects,
//     migration start/end, and every intentional drop with its cause. Each
//     event carries the sim timestamp, tenant/FlowKey, and a globally
//     monotonic sequence number so causality survives the shard merge.
//
//   - A metric Registry: a central catalogue of named counters/gauges that
//     dataplane and control-plane packages register read-callbacks into,
//     walked by a sim-clock Sampler into in-memory time series.
//
//   - Exporters (export.go, chrometrace.go): Prometheus text exposition,
//     Chrome trace-event JSON (Perfetto-loadable), and CSV.
//
// The whole package is built around a nil-able handle: every method on
// *Scoped and *Registry is safe on a nil receiver, and hot paths guard
// with a single pointer test, so the telemetry-disabled fast path costs
// one predictable branch and zero allocations. Events are fixed-size value
// types written into preallocated rings; the enabled path allocates only
// when a ring grows to its configured capacity.
package telemetry

import (
	"sort"
	"time"

	"repro/internal/packet"
	"repro/internal/rules"
)

// Kind identifies what happened. The taxonomy covers the full packet and
// rule lifecycle the paper's figures are drawn from.
type Kind uint8

const (
	// KindUpcall: a first packet missed the fast path and was queued for
	// slow-path classification (V1 = queue depth after admit).
	KindUpcall Kind = iota
	// KindExactInstall: slow path installed an exact-match fast-path entry.
	KindExactInstall
	// KindExactHit: sampled exact-match fast-path hit (every Nth; V1 = N).
	KindExactHit
	// KindMegaflowInstall: a megaflow (wildcard) cache entry was installed.
	KindMegaflowInstall
	// KindMegaflowHit: sampled megaflow cache hit (every Nth; V1 = N).
	KindMegaflowHit
	// KindInvalidate: a rule change invalidated cached entries
	// (V1 = exact entries removed, V2 = megaflow entries removed).
	KindInvalidate
	// KindDrop: a packet was intentionally discarded; Cause names the
	// DropCounters bucket (shape, upcall-queue, clamp, acl, rate, no-vrf,
	// unrouted, steer-miss, link-down, link-loss, queue-full, ...).
	KindDrop
	// KindOverload: the slow-path overload governor changed state
	// (Cause = enter/exit, V1 = miss rate, V2 = queue depth).
	KindOverload
	// KindOffloadDecision: the DE chose a flow/pattern for hardware
	// (V1 = score/pps input, V2 = rank or threshold).
	KindOffloadDecision
	// KindDemoteDecision: the DE evicted a pattern from hardware
	// (V1 = score, V2 = hysteresis threshold).
	KindDemoteDecision
	// KindFlowModSend: controller sent a FLOW_MOD (V1 = xid).
	KindFlowModSend
	// KindBarrierConfirm: barrier reply confirmed an install (V1 = xid,
	// V2 = attempts used).
	KindBarrierConfirm
	// KindTCAMInstall: the ToR accepted an ACL into TCAM (V1 = occupancy).
	KindTCAMInstall
	// KindTCAMReject: the ToR refused an ACL (Cause = full/fault).
	KindTCAMReject
	// KindTCAMRemove: an ACL was removed from TCAM (V1 = occupancy).
	KindTCAMRemove
	// KindInstallRetry: an unconfirmed install was retried (V1 = attempt).
	KindInstallRetry
	// KindInstallGiveUp: install abandoned after max attempts.
	KindInstallGiveUp
	// KindRepair: reconciliation reinstalled a missing rule.
	KindRepair
	// KindOrphanSweep: reconciliation removed an unknown hardware rule.
	KindOrphanSweep
	// KindMigrationStart: a VM migration episode began (Cause = tenant:ip,
	// V1 = from-server, V2 = to-server).
	KindMigrationStart
	// KindMigrationEnd: the migration episode finished.
	KindMigrationEnd
	// KindReportSent: the measurement engine shipped a stats report
	// (V1 = flows in report).
	KindReportSent
	// KindHint: local controller sent an overload hint (Cause = state).
	KindHint
	// KindCrash: a controller crashed.
	KindCrash
	// KindRestart: a controller restarted and re-adopted state.
	KindRestart
	// KindTCP: bridged tcpmodel trace point (Cause = data/retransmit/
	// fast-retransmit/timeout/ack, V1 = sequence number). These re-express
	// Fig. 12's packet-level migration trace as flight-recorder events.
	KindTCP
	// KindNICInstall: a SmartNIC accepted a rule into its match-action
	// table (V1 = occupancy after insert).
	KindNICInstall
	// KindNICRemove: a rule was removed from a SmartNIC table
	// (V1 = occupancy after remove).
	KindNICRemove
	// KindNICHit: sampled SmartNIC egress fast-path hit (every Nth; V1 = N).
	KindNICHit
	// KindNICReject: a SmartNIC refused a rule install
	// (Cause = full/quota/fault).
	KindNICReject
	// KindNICReset: a NIC fault cleared table state
	// (Cause = reset/corrupt, V1 = rules lost).
	KindNICReset
	// KindPlacementChange: the tiered placement engine moved a pattern
	// between tiers (Cause = "<from>-><to>", V1 = score, V2 = target
	// server for NIC placements).
	KindPlacementChange
	// KindElection: a TOR DE replica's leadership changed (Cause =
	// elect/step-down/resume-follower, V1 = term, V2 = replica id).
	KindElection
	// KindFenceReject: an epoch-fenced element refused a message from a
	// stale term (Cause = flowmod/decision/sync, V1 = stale term,
	// V2 = newest term seen).
	KindFenceReject
	// KindLeaseExpire: an unrefreshed rule lease lapsed and the rule
	// fell back to the software path (Cause = tcam/nic/placer/hw-stale,
	// V1 = rules expired).
	KindLeaseExpire
	// KindSketchReport: a local controller emitted a sketch-derived
	// top-k demand report (V1 = patterns reported, V2 = space-saving
	// floor — the demand bound on anything the report omits).
	KindSketchReport

	numKinds
)

var kindNames = [numKinds]string{
	KindUpcall:          "upcall",
	KindExactInstall:    "exact-install",
	KindExactHit:        "exact-hit",
	KindMegaflowInstall: "megaflow-install",
	KindMegaflowHit:     "megaflow-hit",
	KindInvalidate:      "invalidate",
	KindDrop:            "drop",
	KindOverload:        "overload",
	KindOffloadDecision: "offload-decision",
	KindDemoteDecision:  "demote-decision",
	KindFlowModSend:     "flowmod-send",
	KindBarrierConfirm:  "barrier-confirm",
	KindTCAMInstall:     "tcam-install",
	KindTCAMReject:      "tcam-reject",
	KindTCAMRemove:      "tcam-remove",
	KindInstallRetry:    "install-retry",
	KindInstallGiveUp:   "install-giveup",
	KindRepair:          "repair",
	KindOrphanSweep:     "orphan-sweep",
	KindMigrationStart:  "migration-start",
	KindMigrationEnd:    "migration-end",
	KindReportSent:      "report-sent",
	KindHint:            "hint",
	KindCrash:           "crash",
	KindRestart:         "restart",
	KindTCP:             "tcp",
	KindNICInstall:      "nic-install",
	KindNICRemove:       "nic-remove",
	KindNICHit:          "nic-hit",
	KindNICReject:       "nic-reject",
	KindNICReset:        "nic-reset",
	KindPlacementChange: "placement-change",
	KindElection:        "election",
	KindFenceReject:     "fence-reject",
	KindLeaseExpire:     "lease-expire",
	KindSketchReport:    "sketch-report",
}

// String returns the stable wire name of the kind (used in exports and
// parsed back by fastrak-trace).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// KindFromString inverts String; ok is false for unknown names.
func KindFromString(s string) (Kind, bool) {
	for k, n := range kindNames {
		if n == s {
			return Kind(k), true
		}
	}
	return 0, false
}

// Event is one flight-recorder record. It is a fixed-size value type:
// recording copies it into a preallocated ring slot, so the enabled hot
// path performs no heap allocation. Comp and Cause must be constant (or
// otherwise long-lived) strings — call sites pass literals.
type Event struct {
	// Seq is the globally monotonic sequence number: merge order across
	// shards, and the causality tiebreaker for equal timestamps.
	Seq uint64
	// At is the sim-clock timestamp.
	At time.Duration
	// Kind classifies the event.
	Kind Kind
	// Comp names the emitting component scope ("vswitch/0", "torctl/0").
	Comp string
	// Cause carries the kind-specific discriminator (drop cause, overload
	// transition, TCP trace kind, ...). Empty when not applicable.
	Cause string
	// Tenant is the owning tenant, 0 when not attributable.
	Tenant packet.TenantID
	// Flow is the 5-tuple+tenant the event concerns (zero when the event
	// is not flow-scoped).
	Flow packet.FlowKey
	// Pat is the rule pattern for rule-lifecycle events (zero otherwise).
	Pat rules.Pattern
	// V1, V2 are kind-specific numeric payloads (scores, xids, depths).
	V1, V2 float64
}

// ring is one shard's fixed-capacity circular buffer. When full, the
// oldest events are overwritten (flight-recorder semantics: the tail of
// history survives, like a crashed plane's last N minutes).
type ring struct {
	buf   []Event
	next  int    // next write index
	wrap  bool   // true once the ring has overwritten
	total uint64 // events ever written to this ring
}

func (r *ring) push(e Event) {
	r.buf[r.next] = e
	r.next++
	r.total++
	if r.next == len(r.buf) {
		r.next = 0
		r.wrap = true
	}
}

// snapshot appends the ring's live events (oldest first) to dst.
func (r *ring) snapshot(dst []Event) []Event {
	if r.wrap {
		dst = append(dst, r.buf[r.next:]...)
	}
	return append(dst, r.buf[:r.next]...)
}

func (r *ring) len() int {
	if r.wrap {
		return len(r.buf)
	}
	return r.next
}

// Config sizes the recorder.
type Config struct {
	// ShardCapacity is each scope's ring size in events. Zero selects
	// DefaultShardCapacity.
	ShardCapacity int
	// HitSampleEvery records every Nth cache hit (exact and megaflow);
	// hits are the only per-packet-steady-state event class, so sampling
	// keeps the ring from drowning in them. Zero selects
	// DefaultHitSampleEvery; 1 records every hit.
	HitSampleEvery int
}

// DefaultShardCapacity is each component ring's default size.
const DefaultShardCapacity = 4096

// DefaultHitSampleEvery is the default cache-hit sampling period.
const DefaultHitSampleEvery = 1024

// Clock supplies sim time to the recorder (satisfied by *sim.Engine's Now
// via a closure; kept as a func to avoid an import cycle with sim users).
type Clock func() time.Duration

// Recorder is the flight recorder: a set of per-component ring shards
// sharing one monotonic sequence counter. A nil *Recorder is a valid
// "telemetry disabled" recorder: Scope returns nil, and all *Scoped
// methods on nil are no-ops.
type Recorder struct {
	now    Clock
	cfg    Config
	seq    uint64
	scopes []*Scoped
}

// NewRecorder builds a flight recorder reading timestamps from now.
func NewRecorder(now Clock, cfg Config) *Recorder {
	if cfg.ShardCapacity <= 0 {
		cfg.ShardCapacity = DefaultShardCapacity
	}
	if cfg.HitSampleEvery <= 0 {
		cfg.HitSampleEvery = DefaultHitSampleEvery
	}
	if now == nil {
		now = func() time.Duration { return 0 }
	}
	return &Recorder{now: now, cfg: cfg}
}

// Scope allocates (or returns, on name collision) the named component's
// shard. Returns nil on a nil recorder, so call sites can hold a nil
// *Scoped when telemetry is off.
func (r *Recorder) Scope(name string) *Scoped {
	if r == nil {
		return nil
	}
	for _, s := range r.scopes {
		if s.name == name {
			return s
		}
	}
	s := &Scoped{
		rec:      r,
		name:     name,
		ring:     ring{buf: make([]Event, r.cfg.ShardCapacity)},
		hitEvery: uint64(r.cfg.HitSampleEvery),
	}
	r.scopes = append(r.scopes, s)
	return s
}

// Scopes returns the registered scope names in creation order.
func (r *Recorder) Scopes() []string {
	if r == nil {
		return nil
	}
	names := make([]string, len(r.scopes))
	for i, s := range r.scopes {
		names[i] = s.name
	}
	return names
}

// Recorded returns total events written and total retained (retained ≤
// written once rings wrap).
func (r *Recorder) Recorded() (written, retained uint64) {
	if r == nil {
		return 0, 0
	}
	for _, s := range r.scopes {
		written += s.ring.total
		retained += uint64(s.ring.len())
	}
	return written, retained
}

// Events merges all shards' retained events in sequence order and calls
// fn for each. The merge is stable and deterministic: Seq is globally
// unique and monotonic.
func (r *Recorder) Events(fn func(Event)) {
	if r == nil {
		return
	}
	for _, e := range r.Snapshot() {
		fn(e)
	}
}

// Snapshot returns the merged, Seq-ordered retained events.
func (r *Recorder) Snapshot() []Event {
	if r == nil {
		return nil
	}
	var n int
	for _, s := range r.scopes {
		n += s.ring.len()
	}
	all := make([]Event, 0, n)
	for _, s := range r.scopes {
		all = s.ring.snapshot(all)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Seq < all[j].Seq })
	return all
}

// Scoped is one component's handle into the recorder. All methods are
// safe on a nil receiver (the telemetry-disabled case); hot call sites
// additionally guard with `if s != nil` to skip Event construction
// entirely.
type Scoped struct {
	rec  *Recorder
	name string
	ring ring

	hitEvery uint64
	hits     uint64
}

// Name returns the scope name ("" on nil).
func (s *Scoped) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Record writes one event, filling Seq, At, and Comp. The Event's other
// fields are taken from e. No-op on nil.
func (s *Scoped) Record(e Event) {
	if s == nil {
		return
	}
	e.Seq = s.rec.seq
	s.rec.seq++
	e.At = s.rec.now()
	e.Comp = s.name
	s.ring.push(e)
}

// Emit is shorthand for flow-scoped events.
func (s *Scoped) Emit(k Kind, t packet.TenantID, f packet.FlowKey, cause string, v1, v2 float64) {
	if s == nil {
		return
	}
	s.Record(Event{Kind: k, Tenant: t, Flow: f, Cause: cause, V1: v1, V2: v2})
}

// EmitPattern is shorthand for rule-lifecycle events.
func (s *Scoped) EmitPattern(k Kind, t packet.TenantID, p rules.Pattern, cause string, v1, v2 float64) {
	if s == nil {
		return
	}
	s.Record(Event{Kind: k, Tenant: t, Pat: p, Cause: cause, V1: v1, V2: v2})
}

// Hit records a sampled cache hit: every hitEvery-th call emits one event
// of kind k carrying the sampling period in V1 (so consumers can rescale
// to true hit counts). No-op on nil.
func (s *Scoped) Hit(k Kind, t packet.TenantID, f packet.FlowKey) {
	if s == nil {
		return
	}
	s.hits++
	if s.hits%s.hitEvery != 0 {
		return
	}
	s.Record(Event{Kind: k, Tenant: t, Flow: f, V1: float64(s.hitEvery)})
}

// Drop records an intentional packet discard with its cause.
func (s *Scoped) Drop(t packet.TenantID, f packet.FlowKey, cause string) {
	if s == nil {
		return
	}
	s.Record(Event{Kind: KindDrop, Tenant: t, Flow: f, Cause: cause})
}
