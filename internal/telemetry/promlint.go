package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// LintPrometheus strictly validates Prometheus text exposition format
// v0.0.4: metric and label name character sets, label value escaping
// (only \\, \" and \n are legal escapes), HELP/TYPE comment shape, TYPE
// appearing exactly once and before the first sample of its metric, no
// duplicate series, parseable sample values, and a trailing newline.
// It returns the first violation found, or nil for conformant output.
//
// The exporter (WritePrometheus) is deliberately simple; this linter is
// the conformance oracle the tests hold it — and the daemons' /metrics
// endpoints — against, so format drift fails loudly rather than
// surfacing as a scrape error in someone's Prometheus.
func LintPrometheus(r io.Reader) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return nil // an empty exposition is valid (no metrics registered)
	}
	if data[len(data)-1] != '\n' {
		return fmt.Errorf("promlint: missing trailing newline")
	}

	sc := bufio.NewScanner(strings.NewReader(string(data)))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	typeOf := make(map[string]string)
	helpSeen := make(map[string]bool)
	sampleSeen := make(map[string]bool)
	typeClosed := make(map[string]bool) // TYPE group interrupted by another name
	lastName := ""
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		switch {
		case line == "":
			// Blank lines are tolerated by the format.
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, _ := strings.Cut(rest, " ")
			if !validMetricName(name) {
				return fmt.Errorf("promlint: line %d: bad metric name %q in HELP", lineNo, name)
			}
			if helpSeen[name] {
				return fmt.Errorf("promlint: line %d: duplicate HELP for %s", lineNo, name)
			}
			helpSeen[name] = true
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				return fmt.Errorf("promlint: line %d: TYPE without a type", lineNo)
			}
			if !validMetricName(name) {
				return fmt.Errorf("promlint: line %d: bad metric name %q in TYPE", lineNo, name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("promlint: line %d: unknown type %q for %s", lineNo, typ, name)
			}
			if _, dup := typeOf[name]; dup {
				return fmt.Errorf("promlint: line %d: duplicate TYPE for %s", lineNo, name)
			}
			typeOf[name] = typ
			lastName = name
		case strings.HasPrefix(line, "#"):
			// Other comments are legal and ignored.
		default:
			name, err := lintSample(line)
			if err != nil {
				return fmt.Errorf("promlint: line %d: %w", lineNo, err)
			}
			if _, ok := typeOf[name]; !ok {
				return fmt.Errorf("promlint: line %d: sample %s before its TYPE line", lineNo, name)
			}
			if name != lastName {
				if typeClosed[name] {
					return fmt.Errorf("promlint: line %d: samples of %s not contiguous with its TYPE group", lineNo, name)
				}
				typeClosed[lastName] = true
				lastName = name
			}
			if sampleSeen[line[:sampleIDEnd(line)]] {
				return fmt.Errorf("promlint: line %d: duplicate series %s", lineNo, line[:sampleIDEnd(line)])
			}
			sampleSeen[line[:sampleIDEnd(line)]] = true
		}
	}
	return sc.Err()
}

// sampleIDEnd returns the end of the series identity (name + label set)
// in a sample line — the prefix before the value.
func sampleIDEnd(line string) int {
	if i := strings.Index(line, "} "); i >= 0 {
		return i + 1
	}
	if i := strings.IndexByte(line, ' '); i >= 0 {
		return i
	}
	return len(line)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, c := range s {
		alpha := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// lintSample validates one sample line and returns its metric name.
func lintSample(line string) (string, error) {
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' {
		i++
	}
	name := line[:i]
	if !validMetricName(name) {
		return "", fmt.Errorf("bad metric name %q", name)
	}
	if i < len(line) && line[i] == '{' {
		var err error
		i, err = lintLabels(line, i+1)
		if err != nil {
			return name, err
		}
	}
	if i >= len(line) || line[i] != ' ' {
		return name, fmt.Errorf("missing value separator in %q", line)
	}
	rest := line[i+1:]
	value, timestamp, hasTS := strings.Cut(rest, " ")
	switch value {
	case "+Inf", "-Inf", "NaN", "Nan": // Nan per the v0.0.4 spec examples
	default:
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return name, fmt.Errorf("bad sample value %q", value)
		}
	}
	if hasTS {
		if _, err := strconv.ParseInt(timestamp, 10, 64); err != nil {
			return name, fmt.Errorf("bad timestamp %q", timestamp)
		}
	}
	return name, nil
}

// lintLabels validates the label pairs starting just inside '{' and
// returns the index just past the closing '}'.
func lintLabels(line string, i int) (int, error) {
	for {
		start := i
		for i < len(line) && line[i] != '=' {
			i++
		}
		if i >= len(line) {
			return i, fmt.Errorf("unterminated label in %q", line)
		}
		if !validLabelName(line[start:i]) {
			return i, fmt.Errorf("bad label name %q", line[start:i])
		}
		i++ // '='
		if i >= len(line) || line[i] != '"' {
			return i, fmt.Errorf("unquoted label value in %q", line)
		}
		i++
		for i < len(line) && line[i] != '"' {
			if line[i] == '\\' {
				if i+1 >= len(line) {
					return i, fmt.Errorf("dangling escape in %q", line)
				}
				switch line[i+1] {
				case '\\', '"', 'n':
				default:
					return i, fmt.Errorf("illegal escape \\%c in label value", line[i+1])
				}
				i++
			}
			i++
		}
		if i >= len(line) {
			return i, fmt.Errorf("unterminated label value in %q", line)
		}
		i++ // closing '"'
		if i < len(line) && line[i] == ',' {
			i++
			continue
		}
		if i < len(line) && line[i] == '}' {
			return i + 1, nil
		}
		return i, fmt.Errorf("malformed label list in %q", line)
	}
}
