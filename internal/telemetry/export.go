// Prometheus text-exposition and CSV exporters. Both are byte-for-byte
// deterministic for a given registry/sampler state: series are walked in
// sorted order and floats are rendered with strconv's shortest-round-trip
// formatting, so identical seeds yield identical files (the determinism
// guard hashes these exports).
package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"time"
)

// formatValue renders a float deterministically: integers without an
// exponent, others with shortest round-trip formatting.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registry's current values in the Prometheus
// text exposition format (v0.0.4): # HELP / # TYPE headers grouped per
// metric name, samples sorted by label identity.
func WritePrometheus(w io.Writer, reg *Registry) error {
	bw := bufio.NewWriter(w)
	lastName := ""
	var werr error
	reg.Each(func(m *Metric, v float64) {
		if werr != nil {
			return
		}
		if m.Name != lastName {
			if m.Help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", m.Name, m.Help)
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", m.Name, m.Type)
			lastName = m.Name
		}
		if _, err := fmt.Fprintf(bw, "%s %s\n", m.PromID(), formatValue(v)); err != nil {
			werr = err
		}
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// WriteSeriesCSV renders the sampler's time series as long-format CSV:
// one row per (metric, sample): name,labels,type,at_us,value. Long format
// survives series joining mid-run (no ragged columns).
func WriteSeriesCSV(w io.Writer, s *Sampler) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "metric,labels,type,at_us,value"); err != nil {
		return err
	}
	var werr error
	s.EachSeries(func(sr *Series) {
		if werr != nil {
			return
		}
		labels := ""
		for i, l := range sr.Metric.Labels {
			if i > 0 {
				labels += ";"
			}
			labels += l
		}
		for i := range sr.At {
			_, err := fmt.Fprintf(bw, "%s,%s,%s,%d,%s\n",
				sr.Metric.Name, labels, sr.Metric.Type,
				sr.At[i].Microseconds(), formatValue(sr.Value[i]))
			if err != nil {
				werr = err
				return
			}
		}
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// WriteFile atomically-ish writes render output to path, creating parent
// directories (the exporters drop files into results/).
func WriteFile(path string, render func(io.Writer) error) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// usec converts a sim timestamp to Chrome-trace microseconds.
func usec(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e3
}
