package telemetry

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/rules"
)

func testFlow() packet.FlowKey {
	return packet.FlowKey{
		Src: packet.MakeIP(10, 1, 0, 1), Dst: packet.MakeIP(10, 1, 0, 2),
		SrcPort: 1234, DstPort: 80, Proto: 6, Tenant: 7,
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var rec *Recorder
	s := rec.Scope("vswitch/0")
	if s != nil {
		t.Fatalf("nil recorder Scope = %v, want nil", s)
	}
	// All of these must be no-ops, not panics.
	s.Record(Event{Kind: KindUpcall})
	s.Emit(KindDrop, 1, testFlow(), "shape", 0, 0)
	s.EmitPattern(KindOffloadDecision, 1, rules.Pattern{}, "", 1, 2)
	s.Hit(KindExactHit, 1, testFlow())
	s.Drop(1, testFlow(), "clamp")
	if got := s.Name(); got != "" {
		t.Fatalf("nil scope Name = %q", got)
	}
	rec.Events(func(Event) { t.Fatal("nil recorder must have no events") })
	if w, r := rec.Recorded(); w != 0 || r != 0 {
		t.Fatalf("nil recorder Recorded = %d,%d", w, r)
	}

	var reg *Registry
	reg.Register(Metric{Name: "x", Read: func() float64 { return 1 }})
	var c uint64
	reg.Counter("y", "h", &c)
	reg.Gauge("z", "h", func() float64 { return 0 })
	if reg.Len() != 0 {
		t.Fatal("nil registry must stay empty")
	}
	reg.Each(func(*Metric, float64) { t.Fatal("nil registry must not walk") })
}

func TestSeqOrderAcrossScopes(t *testing.T) {
	now := time.Duration(0)
	rec := NewRecorder(func() time.Duration { return now }, Config{ShardCapacity: 16})
	a := rec.Scope("a")
	b := rec.Scope("b")
	// Interleave writes across shards.
	for i := 0; i < 10; i++ {
		now = time.Duration(i) * time.Microsecond
		if i%2 == 0 {
			a.Record(Event{Kind: KindUpcall, V1: float64(i)})
		} else {
			b.Record(Event{Kind: KindDrop, V1: float64(i)})
		}
	}
	var seqs []uint64
	var order []float64
	rec.Events(func(e Event) {
		seqs = append(seqs, e.Seq)
		order = append(order, e.V1)
	})
	if len(seqs) != 10 {
		t.Fatalf("got %d events, want 10", len(seqs))
	}
	for i, s := range seqs {
		if s != uint64(i) {
			t.Fatalf("seq[%d] = %d, want %d (merge must restore global order)", i, s, i)
		}
		if order[i] != float64(i) {
			t.Fatalf("payload[%d] = %v, want %d", i, order[i], i)
		}
	}
	if rec.Scope("a") != a {
		t.Fatal("Scope must be idempotent per name")
	}
}

func TestRingWrapKeepsTail(t *testing.T) {
	rec := NewRecorder(nil, Config{ShardCapacity: 4})
	s := rec.Scope("x")
	for i := 0; i < 10; i++ {
		s.Record(Event{V1: float64(i)})
	}
	written, retained := rec.Recorded()
	if written != 10 || retained != 4 {
		t.Fatalf("Recorded = %d,%d, want 10,4", written, retained)
	}
	var got []float64
	rec.Events(func(e Event) { got = append(got, e.V1) })
	want := []float64{6, 7, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("retained %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("retained %v, want %v (flight recorder keeps the newest tail)", got, want)
		}
	}
}

func TestHitSampling(t *testing.T) {
	rec := NewRecorder(nil, Config{ShardCapacity: 64, HitSampleEvery: 10})
	s := rec.Scope("x")
	for i := 0; i < 100; i++ {
		s.Hit(KindExactHit, 1, testFlow())
	}
	n := 0
	rec.Events(func(e Event) {
		n++
		if e.Kind != KindExactHit {
			t.Fatalf("kind = %v", e.Kind)
		}
		if e.V1 != 10 {
			t.Fatalf("sampled hit must carry period in V1, got %v", e.V1)
		}
	})
	if n != 10 {
		t.Fatalf("100 hits at 1-in-10 sampling recorded %d events, want 10", n)
	}
}

func TestKindNamesRoundTrip(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		name := k.String()
		if name == "" || name == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
		back, ok := KindFromString(name)
		if !ok || back != k {
			t.Fatalf("KindFromString(%q) = %v,%v, want %v", name, back, ok, k)
		}
	}
	if _, ok := KindFromString("no-such-kind"); ok {
		t.Fatal("unknown name must not resolve")
	}
}

func TestRegistryAndSampler(t *testing.T) {
	reg := NewRegistry()
	var drops uint64
	reg.Counter("fastrak_vswitch_drops_total", "total drops", &drops, "server=1")
	depth := 3.0
	reg.Gauge("fastrak_vswitch_queue_depth", "upcall queue depth", func() float64 { return depth }, "server=1")
	// Duplicate registration replaces, not duplicates.
	reg.Counter("fastrak_vswitch_drops_total", "total drops", &drops, "server=1")
	if reg.Len() != 2 {
		t.Fatalf("Len = %d, want 2", reg.Len())
	}

	sam := NewSampler(reg, time.Millisecond)
	sam.Tick(0)
	drops = 5
	depth = 1
	sam.Tick(time.Millisecond)
	if sam.Samples() != 2 {
		t.Fatalf("Samples = %d, want 2", sam.Samples())
	}
	var names []string
	sam.EachSeries(func(sr *Series) {
		names = append(names, sr.Metric.Name)
		if len(sr.At) != 2 || len(sr.Value) != 2 {
			t.Fatalf("series %s has %d/%d points", sr.Metric.Name, len(sr.At), len(sr.Value))
		}
	})
	if len(names) != 2 || names[0] != "fastrak_vswitch_drops_total" || names[1] != "fastrak_vswitch_queue_depth" {
		t.Fatalf("series order %v not sorted", names)
	}
}

func TestPrometheusExport(t *testing.T) {
	reg := NewRegistry()
	var a, b uint64 = 5, 7
	reg.Counter("fastrak_tor_acl_drops_total", "ACL drops", &a, "rack=0")
	reg.Counter("fastrak_tor_acl_drops_total", "ACL drops", &b, "rack=1")
	reg.Gauge("fastrak_tor_tcam_occupancy", "TCAM entries", func() float64 { return 2.5 })

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP fastrak_tor_acl_drops_total ACL drops\n",
		"# TYPE fastrak_tor_acl_drops_total counter\n",
		"fastrak_tor_acl_drops_total{rack=\"0\"} 5\n",
		"fastrak_tor_acl_drops_total{rack=\"1\"} 7\n",
		"# TYPE fastrak_tor_tcam_occupancy gauge\n",
		"fastrak_tor_tcam_occupancy 2.5\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// HELP/TYPE must appear once per metric name, not per series.
	if strings.Count(out, "# TYPE fastrak_tor_acl_drops_total") != 1 {
		t.Fatalf("TYPE header repeated:\n%s", out)
	}
}

func TestCSVExport(t *testing.T) {
	reg := NewRegistry()
	var c uint64
	reg.Counter("fastrak_x_total", "x", &c, "server=0")
	sam := NewSampler(reg, time.Millisecond)
	sam.Tick(0)
	c = 9
	sam.Tick(2 * time.Millisecond)

	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, sam); err != nil {
		t.Fatal(err)
	}
	want := "metric,labels,type,at_us,value\n" +
		"fastrak_x_total,server=0,counter,0,0\n" +
		"fastrak_x_total,server=0,counter,2000,9\n"
	if buf.String() != want {
		t.Fatalf("csv:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	now := time.Duration(0)
	rec := NewRecorder(func() time.Duration { return now }, Config{ShardCapacity: 32})
	sw := rec.Scope("vswitch/0")
	ctl := rec.Scope("torctl/0")
	f := testFlow()

	now = 10 * time.Microsecond
	sw.Emit(KindUpcall, f.Tenant, f, "", 1, 0)
	now = 20 * time.Microsecond
	ctl.EmitPattern(KindOffloadDecision, f.Tenant, rules.ExactPattern(f), "", 123.5, 1)
	now = 30 * time.Microsecond
	ctl.Record(Event{Kind: KindMigrationStart, Cause: "7:10.1.0.1", V1: 0, V2: 1})
	now = 40 * time.Microsecond
	ctl.Record(Event{Kind: KindMigrationEnd, Cause: "7:10.1.0.1"})

	reg := NewRegistry()
	var c uint64 = 3
	reg.Counter("fastrak_x_total", "x", &c)
	sam := NewSampler(reg, time.Millisecond)
	sam.Tick(15 * time.Microsecond)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, rec, sam); err != nil {
		t.Fatal(err)
	}

	events, threads, err := ReadChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("trace must parse back: %v\n%s", err, buf.String())
	}
	if threads[1] != "vswitch/0" || threads[2] != "torctl/0" {
		t.Fatalf("thread map %v", threads)
	}

	var kinds []string
	var phases []string
	for _, te := range events {
		if te.Args == nil {
			continue
		}
		kinds = append(kinds, te.Args.Kind)
		phases = append(phases, te.Ph)
	}
	wantKinds := []string{"upcall", "offload-decision", "migration-start", "migration-end"}
	if len(kinds) != len(wantKinds) {
		t.Fatalf("kinds %v, want %v", kinds, wantKinds)
	}
	for i := range wantKinds {
		if kinds[i] != wantKinds[i] {
			t.Fatalf("kinds %v, want %v (causal Seq order)", kinds, wantKinds)
		}
	}
	if phases[2] != "b" || phases[3] != "e" {
		t.Fatalf("migration phases %v, want async b/e span", phases)
	}

	// The upcall event must carry the structured flow.
	var up TraceEvent
	for _, te := range events {
		if te.Args != nil && te.Args.Kind == "upcall" {
			up = te
		}
	}
	if up.Args == nil {
		t.Fatal("upcall event missing")
	}
	if up.Args.Src != "10.1.0.1" || up.Args.Dst != "10.1.0.2" || up.Args.DPort != 80 || up.Args.Tenant != 7 {
		t.Fatalf("upcall args = %+v", up.Args)
	}
	if up.Ts != 10 {
		t.Fatalf("upcall ts = %v µs, want 10", up.Ts)
	}

	// Counter track present.
	foundCtr := false
	for _, te := range events {
		if te.Ph == "C" && te.Name == "fastrak_x_total" && te.CtrArgs["value"] == 3 {
			foundCtr = true
		}
	}
	if !foundCtr {
		t.Fatalf("missing counter track:\n%s", buf.String())
	}
}

func TestChromeTraceDeterministic(t *testing.T) {
	build := func() []byte {
		rec := NewRecorder(nil, Config{ShardCapacity: 8})
		s := rec.Scope("x")
		s.Emit(KindUpcall, 1, testFlow(), "", 0, 0)
		s.Drop(1, testFlow(), "shape")
		reg := NewRegistry()
		var c uint64 = 42
		reg.Counter("fastrak_a_total", "a", &c, "server=0")
		sam := NewSampler(reg, time.Millisecond)
		sam.Tick(0)
		var buf bytes.Buffer
		if err := WriteChromeTrace(&buf, rec, sam); err != nil {
			t.Fatal(err)
		}
		var pbuf bytes.Buffer
		if err := WritePrometheus(&pbuf, reg); err != nil {
			t.Fatal(err)
		}
		return append(buf.Bytes(), pbuf.Bytes()...)
	}
	if !bytes.Equal(build(), build()) {
		t.Fatal("exports must be byte-identical across identical runs")
	}
}

// TestDisabledPathAllocs is the telemetry-compiled-in-but-disabled alloc
// gate at the package level: nil-scope calls must not allocate.
func TestDisabledPathAllocs(t *testing.T) {
	var s *Scoped
	f := testFlow()
	if n := testing.AllocsPerRun(100, func() {
		s.Hit(KindExactHit, f.Tenant, f)
		s.Drop(f.Tenant, f, "shape")
		s.Emit(KindUpcall, f.Tenant, f, "", 0, 0)
	}); n != 0 {
		t.Fatalf("disabled telemetry path allocates %v/op, want 0", n)
	}
}

// TestEnabledPathAllocs: steady-state recording into a warm ring must not
// allocate either — events are value types copied into preallocated slots.
func TestEnabledPathAllocs(t *testing.T) {
	rec := NewRecorder(nil, Config{ShardCapacity: 64})
	s := rec.Scope("x")
	f := testFlow()
	if n := testing.AllocsPerRun(1000, func() {
		s.Emit(KindUpcall, f.Tenant, f, "", 1, 2)
	}); n != 0 {
		t.Fatalf("enabled telemetry ring write allocates %v/op, want 0", n)
	}
}

func BenchmarkRecordDisabled(b *testing.B) {
	var s *Scoped
	f := testFlow()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Emit(KindUpcall, f.Tenant, f, "", 0, 0)
	}
}

func BenchmarkRecordEnabled(b *testing.B) {
	rec := NewRecorder(nil, Config{ShardCapacity: 4096})
	s := rec.Scope("x")
	f := testFlow()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Emit(KindUpcall, f.Tenant, f, "", 1, 2)
	}
}

func BenchmarkHitSampled(b *testing.B) {
	rec := NewRecorder(nil, Config{ShardCapacity: 4096, HitSampleEvery: 1024})
	s := rec.Scope("x")
	f := testFlow()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Hit(KindExactHit, f.Tenant, f)
	}
}

func BenchmarkSamplerTick(b *testing.B) {
	reg := NewRegistry()
	var c [64]uint64
	for i := range c {
		reg.Counter("fastrak_bench_total", "bench", &c[i], "server="+string(rune('a'+i%26)), "idx="+string(rune('A'+i%26)))
	}
	sam := NewSampler(reg, time.Millisecond)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sam.Tick(time.Duration(i) * time.Millisecond)
	}
}
