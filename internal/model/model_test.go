package model

import (
	"testing"
	"time"
)

func TestSegments(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 1}, {1, 1}, {64, 1}, {1448, 1}, {1449, 2}, {2896, 2}, {32000, 23},
	}
	for _, c := range cases {
		if got := Segments(c.n); got != c.want {
			t.Errorf("Segments(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestGuestOpCostScalesWithSize(t *testing.T) {
	m := Default()
	small := m.GuestOpCost(64)
	large := m.GuestOpCost(32000)
	if large <= small {
		t.Error("guest cost does not grow with size")
	}
	if small < m.GuestPerOp {
		t.Error("guest cost below per-op floor")
	}
}

func TestVSwitchBaselineUsesTSO(t *testing.T) {
	m := Default()
	// With TSO, a 32000-byte message is one traversal: cost must be far
	// below 23 per-segment traversals.
	withTSO := m.VSwitchUnitCost(32000, VSwitchConfig{})
	m.TSO = false
	withoutTSO := m.VSwitchUnitCost(32000, VSwitchConfig{})
	if withTSO >= withoutTSO {
		t.Errorf("TSO did not reduce cost: %v vs %v", withTSO, withoutTSO)
	}
	if withoutTSO < 20*withTSO/10 {
		t.Errorf("per-segment cost %v implausibly close to TSO cost %v", withoutTSO, withTSO)
	}
}

func TestTunnelingDefeatsTSOAndDominates(t *testing.T) {
	m := Default()
	base := m.VSwitchUnitCost(32000, VSwitchConfig{})
	tun := m.VSwitchUnitCost(32000, VSwitchConfig{Tunneling: true})
	if tun < 10*base {
		t.Errorf("tunneling cost %v not dominating baseline %v (paper: tunneling caps at 2 Gbps)", tun, base)
	}
	// Anchor check: at 1448 B, sustaining ~2 Gbps (≈169 kpps) should
	// take roughly 2.4–3.5 logical CPUs of vswitch work (§3.2.1: 2.9).
	perSeg := m.VSwitchUnitCost(1448, VSwitchConfig{Tunneling: true})
	cpus := 169e3 * perSeg.Seconds()
	if cpus < 2.0 || cpus > 4.0 {
		t.Errorf("tunneling at 2 Gbps needs %.2f CPUs, want ~2.9", cpus)
	}
}

func TestPathLatencyOrdering(t *testing.T) {
	m := Default()
	base := m.PathLatency(VSwitchConfig{})
	tun := m.PathLatency(VSwitchConfig{Tunneling: true})
	rl := m.PathLatency(VSwitchConfig{RateLimitBps: 1e9})
	all := m.PathLatency(VSwitchConfig{Tunneling: true, RateLimitBps: 1e9})
	if !(base < rl && rl < tun && tun < all) {
		t.Errorf("latency ordering broken: base=%v rl=%v tun=%v all=%v", base, rl, tun, all)
	}
	if base <= m.VFLatency {
		t.Error("VIF floor must exceed VF floor (Fig. 3b)")
	}
}

func TestCPURatioAnchor(t *testing.T) {
	// Fig. 4(a): SR-IOV CPU is 0.4–0.7× baseline OVS at the same
	// throughput. Check the per-message totals across sizes.
	m := Default()
	for _, n := range AppDataSizes {
		vif := m.GuestOpCost(n) + m.VSwitchUnitCost(n, VSwitchConfig{})
		vf := m.GuestOpCost(n) + m.VFHostPerInterrupt
		ratio := vf.Seconds() / vif.Seconds()
		if ratio < 0.3 || ratio > 0.75 {
			t.Errorf("size %d: VF/VIF CPU ratio %.2f outside [0.3,0.75]", n, ratio)
		}
	}
}

func TestSerializationDelay(t *testing.T) {
	m := Default()
	// 1250 bytes at 10 Gbps = 1 µs.
	if got := m.SerializationDelay(1250); got != time.Microsecond {
		t.Errorf("SerializationDelay = %v, want 1µs", got)
	}
}

func TestSlowPathCostScalesWithRules(t *testing.T) {
	m := Default()
	if m.SlowPathCost(10000) <= m.SlowPathCost(0) {
		t.Error("slow path cost ignores rule count")
	}
	// But 10k rules must stay a one-time cost in the µs–ms range, not
	// a steady-state throughput limiter (§3.2: "no measurable
	// difference" with 10,000 rules).
	if m.SlowPathCost(10000) > 2*time.Millisecond {
		t.Errorf("slow path with 10k rules = %v, implausibly large", m.SlowPathCost(10000))
	}
}
