// Package model defines the testbed's calibrated cost model: the CPU time
// and latency each data-path element charges per packet and per byte.
// Every constant is anchored to a measurement the paper itself reports in
// Section 3 (microbenchmarks) — the goal is that the *shape* of the
// paper's figures (who wins, by what factor, how the gap scales with
// application data size) emerges from these parameters plus queueing,
// rather than being hard-coded per experiment.
package model

import "time"

// Workload application data sizes used throughout the paper's
// microbenchmarks (§3.1: "measured with four different application data
// sizes: 64, 600, 1448, 32000 bytes").
var AppDataSizes = []int{64, 600, 1448, 32000}

// MSS is the TCP maximum segment size with a 1500-byte MTU (§3.1: "MTU set
// to 1500 bytes (which is the normal setting in data centers)").
const MSS = 1448

// CostModel parameterizes the emulated testbed. The defaults (see
// Default) reproduce the paper's Section 3 shapes; ablation benches vary
// individual fields.
type CostModel struct {
	// ---- Guest VM stack (applies on both paths) ----

	// GuestPerOp is the VM-side CPU cost of one socket send or receive
	// operation: syscall, TCP/IP stack, driver. Both paths pay it.
	GuestPerOp time.Duration
	// GuestPerKB is the VM-side cost per kibibyte (checksum, touch).
	GuestPerKB time.Duration

	// ---- Hypervisor (VIF) path ----
	// Anchors: baseline OVS host CPU spends 96% of time in network I/O
	// and up to 55% copying (§3.2); SR-IOV needs 0.4–0.7× the CPU of
	// baseline OVS (Fig. 4a).

	// VSwitchPerUnit is the host-side cost per processed unit (a TSO
	// super-segment when offloads apply, else a wire segment): kernel
	// crossing, fast-path hash lookup, virtio kick.
	VSwitchPerUnit time.Duration
	// VSwitchPerKB is the host-side copy cost per kibibyte (the "up to
	// 55% of time copying data" component).
	VSwitchPerKB time.Duration
	// SlowPathBase and SlowPathPerRule price the user-space upcall for
	// the first packet of a flow: linear rule-table scan plus fast-path
	// install (§2.2). With 10,000 rules the paper measured no change in
	// *steady-state* overhead, because only first packets pay this.
	SlowPathBase    time.Duration
	SlowPathPerRule time.Duration

	// TunnelPerSegment is the added host cost per wire segment for
	// software VXLAN encap/decap. Anchor: supporting 1.96 Gbps of
	// 1448-byte traffic takes 2.9 logical CPUs (§3.2.1) → ≈17 µs per
	// segment all-in; tunneling also defeats NIC TSO/LRO ("UDP VXLAN
	// packets do not currently benefit from NIC offload capabilities"),
	// so the cost applies per MSS segment, not per super-segment.
	TunnelPerSegment time.Duration
	// TunnelPerKB is the added per-kibibyte cost of the extra
	// encapsulation copy.
	TunnelPerKB time.Duration

	// HTBPerPacket is the qdisc enqueue/dequeue cost for `tc` rate
	// limiting on the VIF. It executes under the qdisc lock, so it is
	// charged on a single serialized station: that serialization — not
	// raw cost — is why rate limiting cannot reach line rate with four
	// netperf threads (§3.2.2) and cuts burst TPS to 85–88% of baseline.
	HTBPerPacket time.Duration

	// ---- SR-IOV (VF) path ----

	// VFHostPerInterrupt is the only host-side work on the VF path:
	// interrupt isolation ("VF Interrupts ... are first delivered to
	// the hypervisor", §2.2). Anchor: host 59% idle under SR-IOV, 23%
	// of time servicing interrupts (§3.2).
	VFHostPerInterrupt time.Duration

	// ---- Path latency floors (one-way, excluding queueing and wire) ----
	// Anchors: Fig. 3(b)/(c) — SR-IOV delivers roughly half the
	// closed-loop latency of baseline OVS; tunneling and rate limiting
	// add more.

	// VIFLatency is the hypervisor path's one-way latency floor
	// (vswitch traversal, softirq wakeups, virtio notification).
	VIFLatency time.Duration
	// VFLatency is the SR-IOV path's one-way floor (DMA, doorbell,
	// interrupt delivery through the hypervisor).
	VFLatency time.Duration
	// TunnelLatency is added one-way when software tunneling.
	TunnelLatency time.Duration
	// HTBLatency is added one-way by qdisc queueing machinery.
	HTBLatency time.Duration

	// SoftJitterMean is the mean of the exponential jitter on the
	// software path (scheduler noise); it produces the long 99th
	// percentile tail of Fig. 3(c). HWJitterMean is the (much smaller)
	// hardware path jitter — "more predictable delays than software"
	// (§3.2.4).
	SoftJitterMean time.Duration
	HWJitterMean   time.Duration

	// ---- Fabric ----

	// LinkBps is the line rate of every link (10 GbE testbed).
	LinkBps float64
	// TORLatency is the switch's port-to-port forwarding latency.
	TORLatency time.Duration
	// PropDelay is per-link propagation (in-rack cabling).
	PropDelay time.Duration

	// ---- Host resources ----

	// HostNetCPUs is the number of logical CPUs available to the host
	// kernel for network processing (vswitch, softirq). The testbed
	// servers have 16 logical CPUs (2× E5520); a slice serves the VMs'
	// I/O.
	HostNetCPUs int
	// TSO reports whether NIC segmentation offload applies on the
	// non-tunneled software path ("TSO and LRO enabled", §3.1).
	TSO bool
}

// Default returns the calibrated model. See each field's anchor comment;
// EXPERIMENTS.md records the shapes this produces against the paper's.
func Default() CostModel {
	return CostModel{
		GuestPerOp: 1200 * time.Nanosecond,
		GuestPerKB: 150 * time.Nanosecond, // ~6.8 GB/s touch/checksum

		VSwitchPerUnit:  2300 * time.Nanosecond,
		VSwitchPerKB:    200 * time.Nanosecond, // ~5 GB/s copy; dominates at large sizes (§3.2)
		SlowPathBase:    50 * time.Microsecond,
		SlowPathPerRule: 40 * time.Nanosecond,

		TunnelPerSegment: 2600 * time.Nanosecond, // fixed VXLAN encap/decap/upcall share
		TunnelPerKB:      10 * time.Microsecond,  // slow VXLAN byte path → ~2 Gbps cap at 1448 B (§3.2.1)

		HTBPerPacket: 660 * time.Nanosecond, // serialized qdisc lock → TPS 85–88% of baseline (§3.2.2)

		VFHostPerInterrupt: 300 * time.Nanosecond,

		VIFLatency:    18 * time.Microsecond,
		VFLatency:     8 * time.Microsecond,
		TunnelLatency: 9 * time.Microsecond,
		HTBLatency:    4 * time.Microsecond,

		SoftJitterMean: 5 * time.Microsecond,
		HWJitterMean:   500 * time.Nanosecond,

		LinkBps:    10e9,
		TORLatency: 1 * time.Microsecond,
		PropDelay:  500 * time.Nanosecond,

		HostNetCPUs: 4,
		TSO:         true,
	}
}

// Segments returns the number of MSS wire segments a payload of n bytes
// occupies (minimum 1, for bare ACK-sized messages).
func Segments(n int) int {
	if n <= MSS {
		return 1
	}
	return (n + MSS - 1) / MSS
}

// GuestOpCost returns the VM-side cost of sending or receiving one message
// of n payload bytes.
func (m *CostModel) GuestOpCost(n int) time.Duration {
	return m.GuestPerOp + perBytes(n, m.GuestPerKB)
}

// VSwitchConfig selects which software network-virtualization functions
// the vswitch applies — the microbenchmark configurations of §2.2/§3.2.
type VSwitchConfig struct {
	// SecurityRules is the number of installed ACL rules (0 = baseline).
	SecurityRules int
	// Tunneling enables VXLAN encap/decap ("OVS+Tunneling").
	Tunneling bool
	// RateLimitBps, if nonzero, applies an htb rate limit per VIF
	// ("OVS+Rate limiting").
	RateLimitBps float64
}

// VSwitchUnitCost returns the host-side cost for the vswitch to process
// one message of n payload bytes under cfg, excluding the serialized HTB
// charge (which the caller places on the qdisc station).
func (m *CostModel) VSwitchUnitCost(n int, cfg VSwitchConfig) time.Duration {
	if cfg.Tunneling || !m.TSO {
		// No segmentation offload: fixed cost per wire segment plus
		// per-byte cost over the actual payload.
		segs := Segments(n)
		perSeg := m.VSwitchPerUnit
		if cfg.Tunneling {
			perSeg += m.TunnelPerSegment
		}
		cost := time.Duration(segs)*perSeg + perBytes(n, m.VSwitchPerKB)
		if cfg.Tunneling {
			cost += perBytes(n, m.TunnelPerKB)
		}
		return cost
	}
	// TSO/LRO: one traversal for the whole message; copy cost scales
	// with bytes.
	return m.VSwitchPerUnit + perBytes(n, m.VSwitchPerKB)
}

// SlowPathCost returns the user-space upcall cost for the first packet of
// a flow against a table of ruleCount rules.
func (m *CostModel) SlowPathCost(ruleCount int) time.Duration {
	return m.SlowPathBase + time.Duration(ruleCount)*m.SlowPathPerRule
}

// PathLatency returns the one-way latency floor for a message on the
// software path under cfg.
func (m *CostModel) PathLatency(cfg VSwitchConfig) time.Duration {
	d := m.VIFLatency
	if cfg.Tunneling {
		d += m.TunnelLatency
	}
	if cfg.RateLimitBps > 0 {
		d += m.HTBLatency
	}
	return d
}

// SerializationDelay returns the wire time of n bytes at the link rate.
func (m *CostModel) SerializationDelay(wireBytes int) time.Duration {
	return time.Duration(float64(wireBytes) * 8 / m.LinkBps * float64(time.Second))
}

// perBytes scales a per-kibibyte cost to n bytes.
func perBytes(n int, perKB time.Duration) time.Duration {
	return time.Duration(int64(n) * int64(perKB) / 1024)
}
