package fps

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestSplitterProportional(t *testing.T) {
	s := NewSplitter(1e9) // 1 Gbps aggregate
	s.EWMA = 0            // no smoothing for determinism
	lim := s.Adjust(Demand{RateBps: 300e6}, Demand{RateBps: 700e6})
	if math.Abs(lim.SoftwareBps-300e6) > 1e6 || math.Abs(lim.HardwareBps-700e6) > 1e6 {
		t.Errorf("split = %v / %v, want 300M/700M", lim.SoftwareBps, lim.HardwareBps)
	}
	if lim.SoftwareBps+lim.HardwareBps != 1e9 {
		t.Error("shares do not sum to aggregate")
	}
}

func TestSplitterOverflow(t *testing.T) {
	s := NewSplitter(1e9)
	s.EWMA = 0
	lim := s.Adjust(Demand{RateBps: 500e6}, Demand{RateBps: 500e6})
	if lim.SoftwareWithOverflow <= lim.SoftwareBps || lim.HardwareWithOverflow <= lim.HardwareBps {
		t.Error("overflow allowance not added")
	}
	if got := lim.SoftwareWithOverflow - lim.SoftwareBps; math.Abs(got-s.OverflowBps) > 1 {
		t.Errorf("overflow = %v, want %v", got, s.OverflowBps)
	}
}

func TestSplitterNoDemandEvenSplit(t *testing.T) {
	s := NewSplitter(1e9)
	lim := s.Adjust(Demand{}, Demand{})
	if lim.SoftwareBps != 500e6 || lim.HardwareBps != 500e6 {
		t.Errorf("idle split = %v/%v, want even", lim.SoftwareBps, lim.HardwareBps)
	}
}

func TestSplitterNoDemandFlowWeighted(t *testing.T) {
	s := NewSplitter(1e9)
	lim := s.Adjust(Demand{Flows: 3}, Demand{Flows: 1})
	if lim.SoftwareBps <= lim.HardwareBps {
		t.Errorf("flow-weighted split ignored flow counts: %v/%v", lim.SoftwareBps, lim.HardwareBps)
	}
}

func TestSplitterMinimumShare(t *testing.T) {
	s := NewSplitter(1e9)
	s.EWMA = 0
	lim := s.Adjust(Demand{RateBps: 0}, Demand{RateBps: 900e6})
	if lim.SoftwareBps < 0.10*1e9-1 {
		t.Errorf("software share %v below 10%% floor", lim.SoftwareBps)
	}
}

func TestSplitterMaxedOutGrows(t *testing.T) {
	s := NewSplitter(1e9)
	s.EWMA = 0
	// Hardware is clipped at its limit (maxed out): its share must grow
	// relative to a non-maxed reading of the same rate.
	base := s2limits(1e9, Demand{RateBps: 500e6}, Demand{RateBps: 500e6})
	grown := s2limits(1e9, Demand{RateBps: 500e6}, Demand{RateBps: 500e6, MaxedOut: true})
	if grown.HardwareBps <= base.HardwareBps {
		t.Errorf("maxed-out hardware share did not grow: %v vs %v", grown.HardwareBps, base.HardwareBps)
	}
}

func s2limits(agg float64, sw, hw Demand) Limits {
	s := NewSplitter(agg)
	s.EWMA = 0
	return s.Adjust(sw, hw)
}

func TestConvergence(t *testing.T) {
	// True demand 100 Mbps software, 800 Mbps hardware under a 600 Mbps
	// aggregate. After convergence the hardware limit should approach
	// its proportional share (~500 Mbps+) and software near its demand.
	s := NewSplitter(600e6)
	lim := s.ConvergeSteps(50, 100e6, 800e6, 100*time.Millisecond)
	if lim.HardwareBps < 350e6 {
		t.Errorf("hardware share %v did not converge upward", lim.HardwareBps)
	}
	if lim.SoftwareBps+lim.HardwareBps > 600e6+1 {
		t.Error("converged shares exceed aggregate")
	}
}

// Property: shares are non-negative, respect the floor, and always sum to
// the aggregate, for any demands.
func TestSplitterInvariants(t *testing.T) {
	f := func(dsRaw, dhRaw uint32, flowsS, flowsH uint8, maxS, maxH bool) bool {
		agg := 1e9
		s := NewSplitter(agg)
		lim := s.Adjust(
			Demand{RateBps: float64(dsRaw), Flows: int(flowsS), MaxedOut: maxS},
			Demand{RateBps: float64(dhRaw), Flows: int(flowsH), MaxedOut: maxH},
		)
		if lim.SoftwareBps < 0 || lim.HardwareBps < 0 {
			return false
		}
		if math.Abs(lim.SoftwareBps+lim.HardwareBps-agg) > 1 {
			return false
		}
		floor := s.MinShareFraction*agg - 1
		return lim.SoftwareBps >= floor && lim.HardwareBps >= floor
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: performance isolation (§1 objective 2) — the installed limits
// exceed the aggregate only by the fixed overflow allowance on each side,
// never unboundedly.
func TestOverflowBoundProperty(t *testing.T) {
	f := func(ds, dh uint32) bool {
		agg := 500e6
		s := NewSplitter(agg)
		lim := s.Adjust(Demand{RateBps: float64(ds)}, Demand{RateBps: float64(dh)})
		return lim.SoftwareWithOverflow+lim.HardwareWithOverflow <= agg+2*s.OverflowBps+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
