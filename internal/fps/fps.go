// Package fps implements the Flow Proportional Share rate-allocation
// algorithm from "Cloud Control with Distributed Rate Limiting" (Raghavan
// et al., SIGCOMM 2007), in the form FasTrak uses it (§4.1.4, §4.3.2):
// splitting one VM's purchased aggregate rate limit between its two
// interfaces — the software VIF and the hardware SR-IOV VF — in proportion
// to measured demand, and re-adjusting as demand shifts.
//
// FasTrak adds an overflow allowance O on top of each computed limit
// (Rs = Ls + O, Rh = Lh + O): when an interface maxes out its limit, that
// is the signal its share is too small, and the next adjustment grows it.
package fps

import "time"

// Demand is one interface's measured traffic over the last control
// interval.
type Demand struct {
	// RateBps is the measured throughput in bits per second.
	RateBps float64
	// Flows is the number of active flows on the interface; FPS weights
	// bottlenecked interfaces by flow count, approximating TCP max-min
	// fairness across limiters.
	Flows int
	// MaxedOut reports whether the interface saturated its current
	// limit (detected via the overflow allowance, §4.3.2).
	MaxedOut bool
	// Stale marks a measurement that is carried over rather than fresh:
	// the control interval's stats report was lost or delayed, so
	// RateBps/Flows reflect an earlier interval. The splitter holds its
	// smoothed estimates instead of blending a stale value in — one lost
	// report must not walk the split toward an out-of-date demand mix.
	Stale bool
}

// Splitter computes per-interface limits that sum to (at most) the
// aggregate. The zero value is not usable; use NewSplitter.
type Splitter struct {
	// AggregateBps is the tenant-purchased rate for the VM direction
	// (transmit or receive).
	AggregateBps float64
	// OverflowBps is FasTrak's overflow allowance O.
	OverflowBps float64
	// MinShareFraction guarantees each interface a floor fraction of
	// the aggregate so a currently-idle path can start flows without
	// waiting a full control interval.
	MinShareFraction float64
	// EWMA smooths demand estimates across intervals (0 = no history,
	// 1 = frozen). Matches the original FPS estimate-smoothing.
	EWMA float64

	estS, estH float64 // smoothed demand estimates
	init       bool
}

// NewSplitter returns a splitter with FasTrak's defaults: 5% overflow, 10%
// minimum share, 0.3 smoothing.
func NewSplitter(aggregateBps float64) *Splitter {
	return &Splitter{
		AggregateBps:     aggregateBps,
		OverflowBps:      0.05 * aggregateBps,
		MinShareFraction: 0.10,
		EWMA:             0.3,
	}
}

// Limits is the outcome of one FPS adjustment.
type Limits struct {
	// SoftwareBps (Ls) and HardwareBps (Lh) are the proportional
	// shares; they sum to AggregateBps.
	SoftwareBps, HardwareBps float64
	// SoftwareWithOverflow (Rs = Ls + O) and HardwareWithOverflow
	// (Rh = Lh + O) are the limits actually installed on the
	// interfaces.
	SoftwareWithOverflow, HardwareWithOverflow float64
}

// Adjust computes new limits from the latest demand measurements. A maxed-
// out interface's true demand is unobservable (it is clipped by its own
// limit), so FPS inflates its estimate: the interface wants more than it
// got.
func (s *Splitter) Adjust(sw, hw Demand) Limits {
	ds := effectiveDemand(sw)
	dh := effectiveDemand(hw)

	if !s.init {
		s.estS, s.estH = ds, dh
		s.init = true
	} else {
		// Stale inputs hold the estimate: blending a carried-over value
		// would double-count the past against the present.
		if !sw.Stale {
			s.estS = s.EWMA*s.estS + (1-s.EWMA)*ds
		}
		if !hw.Stale {
			s.estH = s.EWMA*s.estH + (1-s.EWMA)*dh
		}
	}

	total := s.estS + s.estH
	var fracS float64
	switch {
	case total <= 0:
		// No demand anywhere: split by flow count if known, else
		// evenly, so whichever path wakes first has headroom.
		if sw.Flows+hw.Flows > 0 {
			fracS = float64(sw.Flows) / float64(sw.Flows+hw.Flows)
		} else {
			fracS = 0.5
		}
	default:
		fracS = s.estS / total
	}

	// Apply the minimum-share floor to both sides.
	min := s.MinShareFraction
	if fracS < min {
		fracS = min
	}
	if fracS > 1-min {
		fracS = 1 - min
	}

	ls := fracS * s.AggregateBps
	lh := s.AggregateBps - ls
	return Limits{
		SoftwareBps:          ls,
		HardwareBps:          lh,
		SoftwareWithOverflow: ls + s.OverflowBps,
		HardwareWithOverflow: lh + s.OverflowBps,
	}
}

// effectiveDemand returns the demand estimate used for proportioning. A
// maxed-out interface is bottlenecked by its limit, so its demand is
// inflated (here: by 50%, the original FPS uses a comparable multiplicative
// probe) to let its share grow until it stops maxing out.
func effectiveDemand(d Demand) float64 {
	if d.MaxedOut {
		return d.RateBps * 1.5
	}
	return d.RateBps
}

// ConvergeSteps is a helper for tests and the ablation bench: it runs
// Adjust for n intervals against fixed true demands and reports the final
// limits. demandFn models the clipping an installed limit imposes on
// observable demand.
func (s *Splitter) ConvergeSteps(n int, trueSwBps, trueHwBps float64, interval time.Duration) Limits {
	lim := s.Adjust(Demand{RateBps: trueSwBps}, Demand{RateBps: trueHwBps})
	for i := 0; i < n; i++ {
		obsS := clip(trueSwBps, lim.SoftwareWithOverflow)
		obsH := clip(trueHwBps, lim.HardwareWithOverflow)
		lim = s.Adjust(
			Demand{RateBps: obsS, MaxedOut: obsS >= lim.SoftwareWithOverflow*0.95},
			Demand{RateBps: obsH, MaxedOut: obsH >= lim.HardwareWithOverflow*0.95},
		)
	}
	return lim
}

func clip(v, limit float64) float64 {
	if v > limit {
		return limit
	}
	return v
}
