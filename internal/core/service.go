// Split-service constructors: the halves of the rule manager that
// internal/service promotes to separate long-lived processes.
//
// Attach wires every controller over one cluster with in-simulation
// transports. A split deployment instead builds
//
//   - a TORService (fastrak-tord): one TOR decision engine plus its
//     switch agent over a host-less cluster standing in for the physical
//     ToR. Local controllers attach over the network as their demand
//     reports arrive and detach when their connection drops;
//   - an AgentService (fastrak-agentd): one local controller plus the
//     full host data plane (vswitch, placers, optional SmartNIC) over a
//     single-server cluster, talking to the ToR through a remote-mode
//     openflow.Transport.
//
// Both reuse the exact controller implementations — the only new code is
// topology assembly and the host-side stand-ins for state that lives on
// the other side of the wire (the express-lane ACL mirror and the
// hardware-counter report augmentation below).
package core

import (
	"sort"

	"repro/internal/cluster"
	"repro/internal/openflow"
	"repro/internal/rules"
	"repro/internal/sim"
	"repro/internal/tor"
	"repro/internal/vswitch"
)

// TORService is the ToR half of a split rule manager: the decision
// engine, its switch agent, and the TCAM model they program. All methods
// must run on the goroutine (or service runtime loop) that owns the
// cluster's engine.
type TORService struct {
	M  *Manager
	TC *TORController

	agent *switchAgent
}

// NewTORService builds the ToR decision engine over c's first ToR. The
// cluster is typically host-light (its TCAM model stands in for the
// physical switch); local controllers are not built here — they attach
// remotely via AttachLocal.
func NewTORService(c *cluster.Cluster, cfg Config) *TORService {
	cfg = normalizeConfig(cfg)
	m := &Manager{
		Cluster: c,
		Cfg:     cfg,
		limits:  make(map[vswitch.VMKey]aggregateLimit),
	}
	t := c.TORs[0]
	if cfg.HA.LeaseTTL > 0 {
		t.SetLeaseTTL(cfg.HA.LeaseTTL)
	}
	agent := newSwitchAgent(t)
	tc := newTORController(m, t)
	tc.agent = agent
	if m.haEnabled() {
		tc.term = 1
	}
	tc.isLeader = true
	// The controller ↔ switch-agent connection stays in-process (in a
	// real rack they share the switch's management plane): installs keep
	// round-tripping real wire encoding and stay barrier-confirmed.
	tc.toSwitch, tc.fromSwitch = openflow.Pair(c.Eng, cfg.ControlDelay, tc, agent)
	m.RackCtls = [][]*TORController{{tc}}
	m.TORCtls = []*TORController{tc}
	m.TORCtl = tc
	m.agents = []*switchAgent{agent}
	return &TORService{M: m, TC: tc, agent: agent}
}

// AttachLocal registers a connected local controller: decisions and
// RuleSyncs start flowing to tr, and the server's acks gate removals.
// Reattaching an already-known server (an agent reconnect) just swaps the
// transport. A full RuleSync goes out immediately so the newcomer
// converges without waiting for the anti-entropy cadence.
func (s *TORService) AttachLocal(serverID uint32, tr *openflow.Transport) {
	tc := s.TC
	if _, ok := tc.toLocalByID[serverID]; ok {
		for i, id := range tc.localIDs {
			if id == serverID {
				tc.toLocals[i] = tr
			}
		}
		tc.toLocalByID[serverID] = tr
		tc.publish()
		return
	}
	tc.localIDs = append(tc.localIDs, serverID)
	tc.toLocals = append(tc.toLocals, tr)
	tc.toLocalByID[serverID] = tr
	tc.publish()
}

// DetachLocal removes a departed local controller. Its cached demand
// report and ack state go too: a dead server must neither feed stale
// demand into decisions nor gate ACL removals forever (minAckedSeq runs
// over exactly the attached set). Removals waiting on its ack are
// re-evaluated right away.
func (s *TORService) DetachLocal(serverID uint32) {
	tc := s.TC
	if _, ok := tc.toLocalByID[serverID]; !ok {
		return
	}
	ids := tc.localIDs[:0]
	trs := tc.toLocals[:0]
	for i, id := range tc.localIDs {
		if id == serverID {
			continue
		}
		ids = append(ids, id)
		trs = append(trs, tc.toLocals[i])
	}
	tc.localIDs = ids
	tc.toLocals = trs
	delete(tc.toLocalByID, serverID)
	delete(tc.ackedSeq, serverID)
	delete(tc.reports, serverID)
	delete(tc.lastInterval, serverID)
	delete(tc.lastReportAt, serverID)
	delete(tc.nicReported, serverID)
	delete(tc.nicFree, serverID)
	delete(tc.nicSeen, serverID)
	tc.tryRemovals()
}

// AgentIDs returns the currently attached servers, sorted.
func (s *TORService) AgentIDs() []uint32 {
	out := append([]uint32(nil), s.TC.localIDs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Start begins the decision cadence; Stop halts it.
func (s *TORService) Start() { s.M.Start() }
func (s *TORService) Stop()  { s.M.Stop() }

// PlacementView is one pattern's position in the install/remove machinery
// — the admin API's placement inspection payload.
type PlacementView struct {
	Pattern rules.Pattern
	// State is "offloaded" (barrier-confirmed, announced to placers),
	// "installing" (FlowMod sent, barrier pending) or "removing" (demoted,
	// ACL removal gated on acks and grace).
	State string
	// Attempts counts install sends so far (installing only).
	Attempts int
}

// Placements reports every pattern the DE currently tracks in hardware
// or on its way in/out, sorted by state then pattern.
func (s *TORService) Placements() []PlacementView {
	tc := s.TC
	out := make([]PlacementView, 0, len(tc.offloaded)+len(tc.installing)+len(tc.removing))
	for p := range tc.offloaded {
		out = append(out, PlacementView{Pattern: p, State: "offloaded"})
	}
	for p, st := range tc.installing {
		out = append(out, PlacementView{Pattern: p, State: "installing", Attempts: st.attempts})
	}
	for p := range tc.removing {
		out = append(out, PlacementView{Pattern: p, State: "removing"})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].State != out[j].State {
			return out[i].State < out[j].State
		}
		return out[i].Pattern.String() < out[j].Pattern.String()
	})
	return out
}

// HardwareRuleView is one installed TCAM entry with its counters.
type HardwareRuleView struct {
	Pattern  rules.Pattern
	Priority int
	Queue    int
	Packets  uint64
	Bytes    uint64
}

// HardwareRules snapshots the TCAM in deterministic order, merging the
// per-rule hit counters.
func (s *TORService) HardwareRules() []HardwareRuleView {
	stats := make(map[rules.Pattern]tor.ACLStats)
	for _, st := range s.TC.tor.Stats() {
		stats[st.Pattern] = st
	}
	ris := s.TC.tor.Rules()
	out := make([]HardwareRuleView, 0, len(ris))
	for _, ri := range ris {
		st := stats[ri.Pattern]
		out = append(out, HardwareRuleView{
			Pattern: ri.Pattern, Priority: ri.Priority, Queue: ri.Queue,
			Packets: st.Packets, Bytes: st.Bytes,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Priority != out[j].Priority {
			return out[i].Priority > out[j].Priority
		}
		return out[i].Pattern.String() < out[j].Pattern.String()
	})
	return out
}

// TCAMUsage reports used and total TCAM capacity.
func (s *TORService) TCAMUsage() (used, capacity int) {
	return s.TC.tor.TCAMUsed(), s.TC.tor.TCAMUsed() + s.TC.tor.TCAMFree()
}

// Pin force-starts the confirm-then-announce install sequence for a
// pattern (admin rule CRUD). The rule enters the normal machinery, so a
// later DE tick may demote it again if it carries no demand.
func (s *TORService) Pin(p rules.Pattern) {
	tc := s.TC
	if tc.offloaded[p] || tc.installing[p] != nil {
		return
	}
	tc.startInstall(p)
}

// Unpin demotes a pattern through the gated removal path (admin rule
// CRUD) — placers are redirected first, the ACL goes only after acks and
// the in-flight grace, exactly like a DE-decided demotion.
func (s *TORService) Unpin(p rules.Pattern) {
	tc := s.TC
	now := tc.mgr.Cluster.Eng.Now()
	switch {
	case tc.offloaded[p]:
		tc.beginRemove(p)
		tc.announce(openflow.OffloadAction{Pattern: p, Offload: false})
		tc.damper.ForceState(p, false, now)
		tc.publish()
	case tc.installing[p] != nil:
		tc.abortInstall(p)
		tc.damper.ForceState(p, false, now)
	}
}

// AgentService is the per-host half of a split rule manager: one local
// controller over a single-server cluster carrying the real data plane.
// All methods must run on the goroutine (or service runtime loop) that
// owns the cluster's engine.
type AgentService struct {
	M  *Manager
	LC *LocalController

	// prevHW/prevHWBytes/prevHWAt hold the last report's express-lane
	// counter snapshot for the pps/bps deltas fed back to the ToR.
	prevHW      map[rules.Pattern]uint64
	prevHWBytes map[rules.Pattern]uint64
	prevHWAt    sim.Time
}

// NewAgentService builds the local controller for c's single server,
// reporting to the ToR over toTOR (a remote-mode transport in daemons, an
// in-sim one in tests).
//
// Two host-side stand-ins close the loop the single-process manager gets
// for free from its shared TOR model:
//
//   - the express-lane ACL mirror: when a placer starts steering a
//     pattern to the VF, the matching Allow ACL is installed in the local
//     cluster's ToR model (which carries this host's data path), so
//     redirected packets are forwarded instead of hitting default-deny;
//   - report augmentation: offloaded flows bypass the vswitch, so their
//     demand would vanish from reports and the remote DE — which cannot
//     read this host's ToR counters — would demote them. The mirror ToR's
//     per-pattern counters are appended to each demand report instead,
//     playing the role of the TOR ME's hardware counter poll.
func NewAgentService(c *cluster.Cluster, cfg Config, toTOR *openflow.Transport) *AgentService {
	cfg = normalizeConfig(cfg)
	m := &Manager{
		Cluster: c,
		Cfg:     cfg,
		limits:  make(map[vswitch.VMKey]aggregateLimit),
	}
	srv := c.Servers[0]
	lc := newLocalController(m, srv)
	lc.rack = 0
	lc.toTORs = []*openflow.Transport{toTOR}
	lc.toTOR = toTOR
	m.Locals = []*LocalController{lc}
	s := &AgentService{
		M: m, LC: lc,
		prevHW:      make(map[rules.Pattern]uint64),
		prevHWBytes: make(map[rules.Pattern]uint64),
	}
	lc.OnPlacement = s.mirrorPlacement
	lc.AugmentReport = s.augmentReport
	return s
}

// Start begins measurement and placer programming; Stop halts them.
func (s *AgentService) Start() { s.M.Start() }
func (s *AgentService) Stop()  { s.M.Stop() }

// mirrorPlacement keeps the host-side ToR model's ACLs in lockstep with
// the placer redirects, standing in for the physical switch the remote
// controller programs (see NewAgentService).
func (s *AgentService) mirrorPlacement(p rules.Pattern, installed bool) {
	t := s.M.Cluster.TOR
	t.RemoveACL(p)
	if installed {
		_ = t.InstallACL(&rules.TCAMEntry{Pattern: p, Action: rules.Allow, Priority: hwPriority})
	} else {
		delete(s.prevHW, p)
		delete(s.prevHWBytes, p)
	}
}

// augmentReport appends express-lane counter deltas to an outgoing
// demand report and applies the FPS hardware-side splits to the local ToR
// model (the physical enforcement point on this host's path).
func (s *AgentService) augmentReport(rep *openflow.DemandReport) {
	t := s.M.Cluster.TOR
	for _, sp := range rep.Splits {
		t.SetVFLimit(sp.Tenant, sp.VMIP, tor.Egress, sp.EgressHardBps)
		t.SetVFLimit(sp.Tenant, sp.VMIP, tor.Ingress, sp.IngressHardBps)
	}
	now := s.M.Cluster.Eng.Now()
	elapsed := now - s.prevHWAt
	if s.prevHWAt > 0 && elapsed > 0 {
		epochs := uint32(s.M.Cfg.Measure.EpochsPerInterval)
		if epochs == 0 {
			epochs = 1
		}
		stats := t.Stats()
		sort.Slice(stats, func(i, j int) bool {
			return stats[i].Pattern.String() < stats[j].Pattern.String()
		})
		for _, st := range stats {
			if !s.LC.installed[st.Pattern] {
				continue // not our mirror rule
			}
			prevP, prevB := s.prevHW[st.Pattern], s.prevHWBytes[st.Pattern]
			if st.Packets > prevP {
				// Express-lane traffic passes the ToR ACL twice (VF
				// ingress and tunnel termination); halve for wire rate —
				// the same convention as the TOR ME's counter poll.
				secs := elapsed.Seconds()
				pps := float64(st.Packets-prevP) / 2 / secs
				bps := float64(st.Bytes-prevB) / 2 / secs * 8
				rep.Entries = append(rep.Entries, openflow.DemandEntry{
					Pattern: st.Pattern, PPS: pps, BPS: bps,
					Epoch: rep.Interval, MedianPPS: pps, MedianBPS: bps,
					ActiveEpochs: epochs,
				})
			}
			s.prevHW[st.Pattern] = st.Packets
			s.prevHWBytes[st.Pattern] = st.Bytes
		}
	} else {
		for _, st := range t.Stats() {
			s.prevHW[st.Pattern] = st.Packets
			s.prevHWBytes[st.Pattern] = st.Bytes
		}
	}
	s.prevHWAt = now
}

// SetVMLimit registers a VM's purchased aggregate rates (see
// Manager.SetVMLimit).
func (s *AgentService) SetVMLimit(tenant vswitch.VMKey, egressBps, ingressBps float64) {
	s.M.SetVMLimit(tenant.Tenant, tenant.IP, egressBps, ingressBps)
}

// RemoveVM tears down a tenant VM and every piece of controller state
// keyed on it. Placer rules covering the VM are cleaned up by the next
// RuleSync sweep; in-flight packets drain through the normal paths.
func (s *AgentService) RemoveVM(key vswitch.VMKey) error {
	if err := s.M.Cluster.RemoveVM(0, key.Tenant, key.IP); err != nil {
		return err
	}
	delete(s.LC.limiters, key)
	delete(s.LC.lastHW, key)
	delete(s.M.limits, key)
	return nil
}
