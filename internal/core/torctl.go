package core

import (
	"sort"
	"time"

	"repro/internal/decision"
	"repro/internal/host"
	"repro/internal/openflow"
	"repro/internal/packet"
	"repro/internal/rules"
	"repro/internal/sim"
	"repro/internal/tor"
	"repro/internal/vswitch"
)

// TORController manages one ToR switch (§4.3): its ME polls offloaded-
// flow counters in hardware, its DE merges them with the local
// controllers' demand reports, picks the offload set within the TCAM
// budget, installs/removes the hardware rules, and distributes decisions.
type TORController struct {
	mgr      *Manager
	tor      *tor.TOR
	toLocals []*openflow.Transport

	reports map[uint32]openflow.DemandReport

	offloaded map[rules.Pattern]bool
	// prevHW holds last interval's TCAM counters for pps computation.
	prevHW   map[rules.Pattern]uint64
	prevHWAt sim.Time

	// installedHW tracks hardware rate limits currently installed, for
	// maxed-out detection.
	installedHW map[vswitch.VMKey]openflow.RateSplit
	// pendingRemove holds scheduled ACL removals for demoted patterns:
	// the hardware rule outlives the placer redirect so in-flight
	// express-lane packets are not blackholed (§4.1.2 orders pull-backs
	// the same way: software first, then hardware).
	pendingRemove map[rules.Pattern]*sim.Event

	ticker  *sim.Ticker
	stopped bool

	// Decisions counts DE runs (controller-cost experiment).
	Decisions uint64
}

func newTORController(m *Manager, t *tor.TOR) *TORController {
	return &TORController{
		mgr:           m,
		tor:           t,
		reports:       make(map[uint32]openflow.DemandReport),
		offloaded:     make(map[rules.Pattern]bool),
		prevHW:        make(map[rules.Pattern]uint64),
		installedHW:   make(map[vswitch.VMKey]openflow.RateSplit),
		pendingRemove: make(map[rules.Pattern]*sim.Event),
	}
}

// controlInterval is C = T × N (§4.3.1).
func (tc *TORController) controlInterval() time.Duration {
	return tc.mgr.Cfg.Measure.Epoch * time.Duration(tc.mgr.Cfg.Measure.EpochsPerInterval)
}

func (tc *TORController) start() {
	tc.stopped = false
	// Offset the DE ticks so each interval's demand reports (epoch
	// boundary + sample gap + control delay) have arrived.
	offset := tc.mgr.Cfg.Measure.SampleGap + 4*tc.mgr.Cfg.ControlDelay + time.Millisecond
	eng := tc.mgr.Cluster.Eng
	eng.After(offset, func() {
		if tc.stopped {
			return
		}
		tc.ticker = eng.Every(tc.controlInterval(), tc.tick)
	})
}

func (tc *TORController) stop() {
	tc.stopped = true
	if tc.ticker != nil {
		tc.ticker.Stop()
	}
}

// HandleMessage implements openflow.Handler for local → TOR messages.
func (tc *TORController) HandleMessage(msg openflow.Message, xid uint32, reply openflow.ReplyFunc) {
	switch m := msg.(type) {
	case *openflow.DemandReport:
		if cur, ok := tc.reports[m.ServerID]; ok && cur.Interval == m.Interval {
			// A continuation chunk of this interval's report.
			cur.Entries = append(cur.Entries, m.Entries...)
			tc.reports[m.ServerID] = cur
		} else {
			tc.reports[m.ServerID] = *m
		}
		tc.applySplits(m.Splits)
	case openflow.EchoRequest:
		reply(openflow.EchoReply{}, xid)
	}
}

// applySplits installs the hardware-side limits local DEs computed
// ("rate limits on the SR-IOV VF are applied at the TOR", §4.1.4).
func (tc *TORController) applySplits(splits []openflow.RateSplit) {
	for _, s := range splits {
		tc.tor.SetVFLimit(s.Tenant, s.VMIP, tor.Egress, s.EgressHardBps)
		tc.tor.SetVFLimit(s.Tenant, s.VMIP, tor.Ingress, s.IngressHardBps)
		tc.installedHW[vswitch.VMKey{Tenant: s.Tenant, IP: s.VMIP}] = s
	}
}

// tick is one DE run: measure hardware flows, decide, apply, distribute.
func (tc *TORController) tick() {
	if tc.stopped {
		return
	}
	tc.Decisions++
	eng := tc.mgr.Cluster.Eng

	// TOR ME: pps of offloaded entries from TCAM counter deltas.
	hwPPS := make(map[rules.Pattern]float64)
	elapsed := eng.Now() - tc.prevHWAt
	if elapsed > 0 {
		for _, st := range tc.tor.Stats() {
			prev := tc.prevHW[st.Pattern]
			if st.Packets > prev {
				// Offloaded traffic passes the ACL twice (VF
				// ingress and GRE termination); halve to get
				// wire pps.
				hwPPS[st.Pattern] = float64(st.Packets-prev) / 2 / elapsed.Seconds()
			}
			tc.prevHW[st.Pattern] = st.Packets
		}
	}
	tc.prevHWAt = eng.Now()

	// Budget: free TCAM space plus what offloaded entries would free.
	budget := tc.tor.TCAMFree() + len(tc.offloaded)
	if tc.mgr.Cfg.MaxOffloads > 0 && budget > tc.mgr.Cfg.MaxOffloads {
		budget = tc.mgr.Cfg.MaxOffloads
	}

	reports := make([]openflow.DemandReport, 0, len(tc.reports))
	ids := make([]uint32, 0, len(tc.reports))
	for id := range tc.reports {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		reports = append(reports, tc.reports[id])
	}

	cands := decision.CandidatesFromReports(reports, hwPPS, tc.mgr.Cfg.PriorityOf)
	d := decision.Decide(decision.Config{
		Budget:          budget,
		MinScore:        tc.mgr.Cfg.MinScore,
		HysteresisRatio: tc.mgr.Cfg.HysteresisRatio,
		Groups:          tc.mgr.Cfg.Groups,
	}, cands, tc.offloaded)

	var actions []openflow.OffloadAction
	for _, p := range d.Demote {
		tc.removeHW(p)
		actions = append(actions, openflow.OffloadAction{Pattern: p, Offload: false})
	}
	for _, p := range d.Offload {
		if tc.offloaded[p] {
			continue // already in hardware
		}
		if tc.installHW(p) {
			actions = append(actions, openflow.OffloadAction{Pattern: p, Offload: true})
		}
	}

	dec := &openflow.OffloadDecision{
		Interval: uint32(tc.Decisions),
		Actions:  actions,
		HWRates:  tc.hwRates(),
	}
	for _, tr := range tc.toLocals {
		tr.Send(dec)
	}
}

// installHW constructs the most specific rule defining the policy for the
// offloaded pattern and places it in the TCAM (§4.3). The verdict and QoS
// queue come from the owning VM's rule set — the controllers "are aware
// of all rules (and their priorities, in the case of conflicts)
// associated with the VMs they control".
func (tc *TORController) installHW(p rules.Pattern) bool {
	action, queue := tc.policyFor(p)
	if action != rules.Allow {
		// Denied traffic gains nothing from hardware offload; the
		// vswitch (or ToR default rule) already drops it.
		return false
	}
	if ev, ok := tc.pendingRemove[p]; ok {
		// Re-offloaded before the demotion's ACL removal fired: keep
		// the existing hardware rule.
		ev.Cancel()
		delete(tc.pendingRemove, p)
		tc.offloaded[p] = true
		return true
	}
	err := tc.tor.InstallACL(&rules.TCAMEntry{
		Pattern:  p,
		Action:   rules.Allow,
		Priority: 100,
		Queue:    queue,
	})
	if err != nil {
		return false
	}
	tc.offloaded[p] = true
	return true
}

// removeHW demotes a pattern: it leaves the unified set's hardware side
// immediately (so budgets and decisions see the slot as free) but the ACL
// itself is removed only after the placer redirects have landed, keeping
// in-flight express-lane packets deliverable.
func (tc *TORController) removeHW(p rules.Pattern) {
	delete(tc.offloaded, p)
	delete(tc.prevHW, p)
	if _, ok := tc.pendingRemove[p]; ok {
		return
	}
	grace := 4 * tc.mgr.Cfg.ControlDelay
	tc.pendingRemove[p] = tc.mgr.Cluster.Eng.After(grace, func() {
		delete(tc.pendingRemove, p)
		tc.tor.RemoveACL(p)
	})
}

// policyFor evaluates the tenant policy covering the pattern against
// every rule-bearing VM the pattern's flows could touch: the pinned
// endpoints, plus — when an endpoint is wildcarded — every tenant VM with
// security rules, since any of them could be the far end. The offloaded
// rule is Allow only if all of them allow the representative flow; this
// keeps the hardware rule compliant with configured policy (§4.3: "The
// offloaded flow rules must comply with configured policy") and closes
// the bypass a blanket hardware Allow would open for VF traffic, which
// never revisits the destination vswitch's ACLs.
func (tc *TORController) policyFor(p rules.Pattern) (rules.Action, int) {
	k := representativeKey(p)
	queue := 0
	srcPinned, dstPinned := p.SrcPrefix == 32, p.DstPrefix == 32

	check := func(vm *host.VM) rules.Action {
		if vm == nil || len(vm.Rules.Security) == 0 {
			return rules.Allow
		}
		if q := vm.Rules.QueueFor(k); q > queue {
			queue = q
		}
		return vm.Rules.Evaluate(k)
	}

	if srcPinned {
		if vm, ok := tc.mgr.Cluster.FindVM(p.Tenant, p.Src); ok {
			if check(vm) != rules.Allow {
				return rules.Deny, 0
			}
		}
	}
	if dstPinned {
		if vm, ok := tc.mgr.Cluster.FindVM(p.Tenant, p.Dst); ok {
			if check(vm) != rules.Allow {
				return rules.Deny, 0
			}
		}
	}
	if !srcPinned || !dstPinned {
		// A wildcarded endpoint: any tenant VM with rules could be
		// covered; all of them must allow the representative flow.
		for _, srv := range tc.mgr.Cluster.Servers {
			for _, vm := range srv.VMs {
				if vm.Key.Tenant != p.Tenant || len(vm.Rules.Security) == 0 {
					continue
				}
				if check(vm) != rules.Allow {
					return rules.Deny, 0
				}
			}
		}
	}
	return rules.Allow, queue
}

func representativeKey(p rules.Pattern) packet.FlowKey {
	return packet.FlowKey{
		Src: p.Src, Dst: p.Dst,
		SrcPort: p.SrcPort, DstPort: p.DstPort,
		Proto: p.Proto, Tenant: p.Tenant,
	}
}

// hwRates builds the per-VM hardware-path observations for local FPS.
func (tc *TORController) hwRates() []openflow.VMRate {
	keys := make([]vswitch.VMKey, 0, len(tc.installedHW))
	for k := range tc.installedHW {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Tenant != keys[j].Tenant {
			return keys[i].Tenant < keys[j].Tenant
		}
		return keys[i].IP < keys[j].IP
	})
	out := make([]openflow.VMRate, 0, len(keys))
	for _, k := range keys {
		inst := tc.installedHW[k]
		eg := tc.tor.VFRate(k.Tenant, k.IP, tor.Egress)
		in := tc.tor.VFRate(k.Tenant, k.IP, tor.Ingress)
		out = append(out, openflow.VMRate{
			Tenant: k.Tenant, VMIP: k.IP,
			EgressBps: eg, IngressBps: in,
			EgressMaxed:  inst.EgressHardBps > 0 && eg >= inst.EgressHardBps*0.95,
			IngressMaxed: inst.IngressHardBps > 0 && in >= inst.IngressHardBps*0.95,
		})
	}
	return out
}

// demoteVM pulls back every offloaded rule touching a VM — the pre-
// migration step of §4.1.2 ("any offloaded flows must be returned back to
// the VM's hypervisor before the migration can occur").
func (tc *TORController) demoteVM(tenant packet.TenantID, vmIP packet.IP) {
	var actions []openflow.OffloadAction
	for p := range tc.offloaded {
		if p.Tenant != tenant {
			continue
		}
		touches := (p.SrcPrefix == 32 && p.Src == vmIP) || (p.DstPrefix == 32 && p.Dst == vmIP)
		if !touches {
			continue
		}
		tc.removeHW(p)
		actions = append(actions, openflow.OffloadAction{Pattern: p, Offload: false})
	}
	if len(actions) == 0 {
		return
	}
	sort.Slice(actions, func(i, j int) bool {
		return actions[i].Pattern.String() < actions[j].Pattern.String()
	})
	dec := &openflow.OffloadDecision{Actions: actions}
	for _, tr := range tc.toLocals {
		tr.Send(dec)
	}
}

// LatestReports returns the most recent demand report from each server —
// exposed for experiment instrumentation.
func (tc *TORController) LatestReports() []openflow.DemandReport {
	ids := make([]uint32, 0, len(tc.reports))
	for id := range tc.reports {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]openflow.DemandReport, 0, len(ids))
	for _, id := range ids {
		out = append(out, tc.reports[id])
	}
	return out
}

// offloadedList returns current hardware patterns, sorted.
func (tc *TORController) offloadedList() []rules.Pattern {
	out := make([]rules.Pattern, 0, len(tc.offloaded))
	for p := range tc.offloaded {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}
