package core

import (
	"sort"
	"time"

	"repro/internal/decision"
	"repro/internal/host"
	"repro/internal/openflow"
	"repro/internal/packet"
	"repro/internal/rules"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/tor"
	"repro/internal/vswitch"
)

// hwPriority is the TCAM priority of controller-installed offload ACLs.
// Reconciliation and restart-time adoption recognise the controller's own
// rules by it.
const hwPriority = 100

// syncRefreshTicks and reconcileTicks pace the anti-entropy machinery:
// a full RuleSync goes to every local, and a TableRequest to the switch
// agent, at least once per this many decision intervals (more often when
// state changes). Keeping them off the per-tick hot path preserves the
// paper's "negligible" controller overhead (§6.2.2).
const (
	syncRefreshTicks = 4
	reconcileTicks   = 4
)

// urgentBoost multiplies the tenant preference c of a tenant flagged by an
// OverloadHint: its aggregates jump the score ordering so the miss storm
// moves to hardware ahead of merely-busy flows. The boost expires after
// urgentTTLIntervals control intervals without a refreshed hint — hints
// are advisory and must not pin priority forever if the recovery signal
// is lost.
const (
	urgentBoost        = 8.0
	urgentTTLIntervals = 4
)

// staleIntervals is how many control intervals a server's stats path may
// stay silent before its cached demand report is excluded from decisions.
// Excluded candidates are not dropped to zero: the decision smoother
// carries them on a decaying estimate (see internal/decision/damper.go),
// so one lost report cannot demote a hot flow, while a genuinely dead
// reporter fades out within a few intervals.
const staleIntervals = 2

// installState tracks one in-flight hardware install: the FlowMod has
// been sent to the switch agent but the barrier confirming it has not
// come back. Placers are NOT redirected until confirmation — an express
// lane is announced only once the hardware acknowledged the ACL, so a
// rejected or lost install can never blackhole packets.
type installState struct {
	attempts int
	queue    int
	failed   bool
	flowXID  uint32
	barXID   uint32
	timer    *sim.Event
}

// removeState tracks one demoted pattern whose ACL is still installed.
// The ACL is removed only after (a) every local controller has acked a
// RuleSync that excludes the pattern — so all placers have redirected the
// flow back to the software path — and (b) a grace period has passed for
// express-lane packets already in flight.
type removeState struct {
	// needSeq is the first RuleSync sequence excluding the pattern;
	// every local must ack ≥ needSeq before the ACL may go.
	needSeq uint32
	// readyAt is the in-flight grace deadline.
	readyAt sim.Time
	// orphan marks rules found in hardware but owned by nobody
	// (remnants of a crash or a lost delete); they skip announcement.
	orphan     bool
	deleteSent bool
	timer      *sim.Event
}

// TORController manages one ToR switch (§4.3): its ME polls offloaded-
// flow counters in hardware, its DE merges them with the local
// controllers' demand reports, picks the offload set within the TCAM
// budget, installs/removes the hardware rules, and distributes decisions.
//
// Hardware state is managed asynchronously through the switch agent's
// control connection (internal/faults can drop, delay or sever it, and
// the hardware can reject installs):
//
//   - installs are barrier-confirmed and retried with exponential backoff
//     before the controller degrades the flow to the software path;
//   - removals are gated on every local controller acknowledging a
//     RuleSync that excludes the pattern, plus an in-flight grace;
//   - a per-interval TableRequest reconciles desired against reported
//     hardware state, repairing divergence in both directions;
//   - Crash/Restart model controller failure: all volatile state is lost
//     and the restarted controller adopts the hardware's installed rules
//     as its desired set (removing them blind would blackhole flows whose
//     placers still steer to the express lane).
type TORController struct {
	mgr      *Manager
	tor      *tor.TOR
	toLocals []*openflow.Transport
	// localIDs are the rack's server IDs, for counting RuleSync acks.
	localIDs []uint32
	// toSwitch/fromSwitch is the control connection to the switch agent.
	toSwitch   *openflow.Transport
	fromSwitch *openflow.Transport

	reports map[uint32]openflow.DemandReport
	// lastInterval and lastReportAt track each server's report stream
	// for gap and staleness detection: skipped interval sequence numbers
	// are counted in StatsGaps, and a server silent for staleIntervals
	// control intervals has its cached report excluded from decisions.
	lastInterval map[uint32]uint32
	lastReportAt map[uint32]sim.Time

	// smoother carries per-candidate EWMA estimates across intervals and
	// synthesizes decaying candidates for patterns whose stats went
	// missing; damper vetoes offload/demote flapping with BGP-style
	// penalty decay. Both are volatile (reset on Crash).
	smoother *decision.Smoother
	damper   *decision.FlapDamper

	// inc is the incremental re-rank engine, non-nil only in sketch
	// accounting mode: it carries the ranked candidate order across
	// control intervals so each cycle re-sorts only candidates whose
	// effective score changed. With band 0 its decisions are identical
	// to DecideTiered by construction. Volatile (reset on Crash) — the
	// cache is a pure ordering optimization, so losing it is always safe.
	inc *decision.IncrementalTiered

	// urgent maps tenants flagged by OverloadHints to the sim time their
	// priority boost expires.
	urgent map[packet.TenantID]sim.Time

	// offloaded holds barrier-confirmed hardware patterns — the set
	// announced to placers.
	offloaded map[rules.Pattern]bool
	// installing holds patterns sent to hardware but not yet confirmed.
	installing map[rules.Pattern]*installState
	// removing holds demoted patterns whose ACL removal is still gated.
	removing map[rules.Pattern]*removeState

	// nicDesired maps each NIC-tier pattern to the server whose SmartNIC
	// should carry it (NIC rules are per-host; the middle rung of the
	// software → SmartNIC → TCAM ladder). nicReported and nicFree cache
	// each server's latest NIC report section; nicSeen marks servers that
	// ever reported a SmartNIC. nicDamper is the NIC tier's own flap
	// damper — transitions on one tier must not penalize the other. All
	// volatile (reset on Crash): a restarted controller does not adopt NIC
	// rules the way it adopts TCAM rules, because a swept NIC rule costs
	// only a software spell (the NIC tier structurally falls back to the
	// vswitch), never a blackhole.
	nicDesired  map[rules.Pattern]uint32
	nicReported map[uint32]map[rules.Pattern]bool
	nicFree     map[uint32]uint32
	nicSeen     map[uint32]bool
	nicDamper   *decision.FlapDamper
	// toLocalByID routes per-server NIC actions (TCAM actions broadcast).
	toLocalByID map[uint32]*openflow.Transport

	// pendingBarrier maps a BarrierRequest xid to its continuation.
	pendingBarrier map[uint32]func()
	// pendingInstall maps a FlowMod xid to its pattern so an ErrorMsg
	// (echoing that xid) marks the attempt failed.
	pendingInstall map[uint32]rules.Pattern

	// syncSeq numbers RuleSyncs; ackedSeq records each server's latest
	// ack. syncSeq survives Crash (a restarted controller must not
	// reuse sequence numbers locals already acked).
	syncSeq  uint32
	ackedSeq map[uint32]uint32
	// lastPublished is the desired set of the latest RuleSync;
	// sincePublish counts ticks since. Syncs go out on change or every
	// syncRefreshTicks as anti-entropy (§6.2.2 keeps steady-state
	// control traffic to a few messages per interval).
	lastPublished []rules.Pattern
	sincePublish  int

	// prevHW holds last interval's TCAM counters for pps computation.
	prevHW   map[rules.Pattern]uint64
	prevHWAt sim.Time

	// installedHW tracks hardware rate limits currently installed, for
	// maxed-out detection.
	installedHW map[vswitch.VMKey]openflow.RateSplit

	// pendingAnnounce batches offload/demote announcements accumulated
	// within one event window (e.g. many installs confirmed by barriers
	// carried on the same control RTT) into a single OffloadDecision
	// per local, keeping controller chatter at "a handful of messages
	// per interval" (§6.2.2).
	pendingAnnounce []openflow.OffloadAction
	announceQueued  bool

	ticker  *sim.Ticker
	stopped bool
	crashed bool

	// ---- control-plane HA state ----

	// replicaID identifies this replica within its rack's controller
	// group (0 is the bootstrap leader); toPeers carries election
	// heartbeats and term gossip to the other replicas; agent is the
	// rack's shared switch agent (fencing counters live there).
	replicaID int
	toPeers   map[int]*openflow.Transport
	agent     *switchAgent
	// term is the current leadership epoch. 0 means HA is disabled and
	// the controller behaves exactly like the original single-instance
	// manager. Terms are partitioned across replicas — replica i only
	// claims terms with (term-1) mod Replicas == i — so two replicas can
	// never lead under the same term; the switch agent fences stale
	// terms, leaving election a pure liveness mechanism.
	term     uint32
	isLeader bool
	// leaderID is the replica this follower believes leads; with
	// followingHigherSince (-1 when not following a higher id) it drives
	// the lowest-id-alive preemption after partitions heal.
	leaderID             int
	followingHigherSince sim.Time
	lastHeartbeatAt      sim.Time
	// justElected forces a full refresh+publish+reconcile on the first
	// DE tick after a takeover.
	justElected bool
	// lastTableReplyAt is the last proof the switch hardware was
	// reachable. With leases enabled, a leader silent of TableReplies for
	// half a TTL enters degraded mode: every offload is pulled back to
	// software *before* the unrefreshable TCAM rules expire under
	// still-steering placers.
	lastTableReplyAt sim.Time
	degraded         bool
	// paused models a frozen (SIGSTOP) process: state survives, but the
	// process misses heartbeats and drops arriving messages.
	paused      bool
	electTicker *sim.Ticker

	// rec is the flight-recorder scope; nil when telemetry is disabled.
	rec *telemetry.Scoped

	// Decisions counts DE runs (controller-cost experiment). The
	// remaining counters instrument the recovery machinery.
	Decisions uint64
	// Installs counts barrier-confirmed hardware installs.
	Installs uint64
	// Retries counts install re-sends after a rejection or timeout.
	Retries uint64
	// GiveUps counts installs abandoned after MaxInstallAttempts — the
	// flow stays on the software path (graceful degradation).
	GiveUps uint64
	// Repairs counts desired rules reconciliation found missing from
	// hardware and re-asserted.
	Repairs uint64
	// Orphans counts hardware rules reconciliation found unowned and
	// removed.
	Orphans uint64
	// Crashes counts Crash() invocations.
	Crashes uint64
	// Demotes counts confirmed patterns entering the removal path.
	Demotes uint64
	// StatsGaps counts skipped demand-report interval sequence numbers —
	// reports the stats fault surface (or a congested control path) ate.
	StatsGaps uint64
	// Hints counts OverloadHints received from local controllers.
	Hints uint64
	// NICPlacements and NICDemotes count NIC-tier rule placements and
	// retirements; NICReasserts counts desired NIC rules re-asserted after
	// dropping out of a server's report (reset/corruption faults, lost
	// installs); NICOrphans counts reported NIC rules nobody owned.
	NICPlacements uint64
	NICDemotes    uint64
	NICReasserts  uint64
	NICOrphans    uint64
	// Elections counts leadership takeovers by this replica; StepDowns
	// counts leaderships abandoned (superseded, fenced, paused).
	Elections uint64
	StepDowns uint64
	// FencedOut counts ErrCodeStaleTerm rejections received from the
	// switch agent — each one is a deposed leader caught acting.
	FencedOut uint64
	// Pauses counts Pause() invocations (faults.ControllerPause).
	Pauses uint64
	// LeaseRefreshes counts re-asserted FlowAdds sent to extend rule
	// leases; DegradedDemotes counts offloads pulled back by the
	// hardware-staleness guard.
	LeaseRefreshes  uint64
	DegradedDemotes uint64
}

func newTORController(m *Manager, t *tor.TOR) *TORController {
	var inc *decision.IncrementalTiered
	if m.Cfg.SketchAccounting {
		inc = decision.NewIncrementalTiered(0)
	}
	return &TORController{
		inc:            inc,
		mgr:            m,
		tor:            t,
		reports:        make(map[uint32]openflow.DemandReport),
		lastInterval:   make(map[uint32]uint32),
		lastReportAt:   make(map[uint32]sim.Time),
		smoother:       decision.NewSmoother(m.Cfg.Smoother),
		damper:         decision.NewFlapDamper(m.Cfg.Damper),
		nicDesired:     make(map[rules.Pattern]uint32),
		nicReported:    make(map[uint32]map[rules.Pattern]bool),
		nicFree:        make(map[uint32]uint32),
		nicSeen:        make(map[uint32]bool),
		nicDamper:      decision.NewFlapDamper(m.Cfg.Damper),
		toLocalByID:    make(map[uint32]*openflow.Transport),
		urgent:         make(map[packet.TenantID]sim.Time),
		offloaded:      make(map[rules.Pattern]bool),
		installing:     make(map[rules.Pattern]*installState),
		removing:       make(map[rules.Pattern]*removeState),
		pendingBarrier: make(map[uint32]func()),
		pendingInstall: make(map[uint32]rules.Pattern),
		ackedSeq:       make(map[uint32]uint32),
		prevHW:         make(map[rules.Pattern]uint64),
		installedHW:    make(map[vswitch.VMKey]openflow.RateSplit),

		toPeers:              make(map[int]*openflow.Transport),
		isLeader:             true,
		followingHigherSince: -1,
	}
}

// controlInterval is C = T × N (§4.3.1).
func (tc *TORController) controlInterval() time.Duration {
	return tc.mgr.Cfg.Measure.Epoch * time.Duration(tc.mgr.Cfg.Measure.EpochsPerInterval)
}

// ---- HA parameters ----

func (tc *TORController) replicas() int {
	if n := tc.mgr.Cfg.HA.Replicas; n > 1 {
		return n
	}
	return 1
}

// haReplicated reports whether this controller has standby peers.
func (tc *TORController) haReplicated() bool { return tc.replicas() > 1 }

func (tc *TORController) heartbeatEvery() time.Duration {
	if d := tc.mgr.Cfg.HA.HeartbeatEvery; d > 0 {
		return d
	}
	return tc.controlInterval() / 2
}

// electionTimeout staggers by replica id so the lowest-id alive replica
// claims first (its claim's heartbeats reset everyone else's timers well
// before their own timeouts fire).
func (tc *TORController) electionTimeout() time.Duration {
	base := tc.mgr.Cfg.HA.ElectionTimeout
	if base <= 0 {
		base = 2 * tc.controlInterval()
	}
	return base + time.Duration(tc.replicaID)*tc.heartbeatEvery()
}

// nextTerm is the smallest term above the current one in this replica's
// residue class — the structural guarantee that no two replicas ever
// share a term.
func (tc *TORController) nextTerm() uint32 {
	n := uint32(tc.replicas())
	t := tc.term + 1
	for (t-1)%n != uint32(tc.replicaID) {
		t++
	}
	return t
}

func (tc *TORController) start() {
	tc.stopped = false
	eng := tc.mgr.Cluster.Eng
	tc.lastHeartbeatAt = eng.Now()
	tc.lastTableReplyAt = eng.Now()
	// Offset the DE ticks so each interval's demand reports (epoch
	// boundary + sample gap + control delay) have arrived.
	offset := tc.mgr.Cfg.Measure.SampleGap + 4*tc.mgr.Cfg.ControlDelay + time.Millisecond
	eng.After(offset, func() {
		if tc.stopped || tc.crashed {
			return
		}
		tc.ticker = eng.Every(tc.controlInterval(), tc.tick)
	})
	if tc.haReplicated() {
		tc.electTicker = eng.Every(tc.heartbeatEvery(), tc.electionTick)
	}
}

func (tc *TORController) stop() {
	tc.stopped = true
	if tc.ticker != nil {
		tc.ticker.Stop()
	}
	if tc.electTicker != nil {
		tc.electTicker.Stop()
		tc.electTicker = nil
	}
}

// Crash models the controller process dying (faults.ControllerCrash):
// the decision ticker stops, every piece of volatile state — demand
// reports, in-flight installs and removals, pending confirmations, the
// desired offload set itself — is lost, and control messages arriving
// while down are dropped. Hardware keeps forwarding with the rules it
// has; placers keep their last programming. Implements faults.Controller.
func (tc *TORController) Crash() {
	if tc.crashed {
		return
	}
	tc.crashed = true
	tc.Crashes++
	if tc.rec != nil {
		tc.rec.Record(telemetry.Event{Kind: telemetry.KindCrash,
			V1: float64(len(tc.offloaded)), V2: float64(len(tc.installing))})
	}
	if tc.ticker != nil {
		tc.ticker.Stop()
		tc.ticker = nil
	}
	if tc.electTicker != nil {
		tc.electTicker.Stop()
		tc.electTicker = nil
	}
	// A crashed replica is no leader; its term dies with it and the
	// standbys elect a successor. (Single-instance deployments keep the
	// legacy behavior: the restarted process resumes directly.)
	if tc.haReplicated() {
		tc.isLeader = false
	}
	tc.degraded = false
	tc.justElected = false
	for _, st := range tc.installing {
		if st.timer != nil {
			st.timer.Cancel()
		}
	}
	for _, st := range tc.removing {
		if st.timer != nil {
			st.timer.Cancel()
		}
	}
	tc.reports = make(map[uint32]openflow.DemandReport)
	tc.lastInterval = make(map[uint32]uint32)
	tc.lastReportAt = make(map[uint32]sim.Time)
	tc.smoother = decision.NewSmoother(tc.mgr.Cfg.Smoother)
	tc.damper = decision.NewFlapDamper(tc.mgr.Cfg.Damper)
	if tc.inc != nil {
		tc.inc.Reset()
	}
	tc.urgent = make(map[packet.TenantID]sim.Time)
	tc.offloaded = make(map[rules.Pattern]bool)
	tc.installing = make(map[rules.Pattern]*installState)
	tc.removing = make(map[rules.Pattern]*removeState)
	// NIC-tier desired state dies with the process. After Restart the
	// locals' reports re-surface the installed rules; with no owner they
	// are swept as orphans and re-placed by the DE — a transient software
	// spell for the affected flows, never a blackhole (NIC misses fall
	// back to the vswitch by construction).
	tc.nicDesired = make(map[rules.Pattern]uint32)
	tc.nicReported = make(map[uint32]map[rules.Pattern]bool)
	tc.nicFree = make(map[uint32]uint32)
	tc.nicSeen = make(map[uint32]bool)
	tc.nicDamper = decision.NewFlapDamper(tc.mgr.Cfg.Damper)
	tc.pendingBarrier = make(map[uint32]func())
	tc.pendingInstall = make(map[uint32]rules.Pattern)
	tc.ackedSeq = make(map[uint32]uint32)
	tc.prevHW = make(map[rules.Pattern]uint64)
	tc.installedHW = make(map[vswitch.VMKey]openflow.RateSplit)
	tc.pendingAnnounce = nil
	tc.lastPublished = nil
	tc.sincePublish = 0
}

// Restart brings a crashed controller back. It adopts the hardware's
// installed offload rules (the boot-time table dump) as its desired set:
// placers may still be steering those flows through the express lane, so
// starting from an empty desired set — and reconciling the "extra"
// hardware rules away — would blackhole them. Adopted rules re-enter the
// normal decision process and are demoted cleanly if no longer worth a
// TCAM slot. Implements faults.Controller.
func (tc *TORController) Restart() {
	if !tc.crashed {
		return
	}
	tc.crashed = false
	// A replicated controller restarts as a follower and adopts nothing:
	// the acting leader owns the hardware state, and this replica would
	// only claim (and adopt at that point) if the whole group went quiet.
	if !tc.haReplicated() {
		tc.adoptHardware()
	}
	if tc.rec != nil {
		// V1 is the number of hardware rules adopted as the desired set.
		tc.rec.Record(telemetry.Event{Kind: telemetry.KindRestart,
			V1: float64(len(tc.offloaded))})
	}
	if tc.mgr.started && !tc.stopped {
		tc.start()
	}
}

// adoptHardware imports the switch's installed offload rules as the
// desired set and re-seeds counter baselines so the first interval after
// a restart/takeover does not see the whole uptime's packets as one
// delta. Placers may still steer through those rules, so starting from an
// empty desired set — and reconciling the "extra" hardware rules away —
// would blackhole them.
func (tc *TORController) adoptHardware() {
	for _, ri := range tc.tor.Rules() {
		if ri.Priority == hwPriority {
			tc.offloaded[ri.Pattern] = true
		}
	}
	for _, st := range tc.tor.Stats() {
		tc.prevHW[st.Pattern] = st.Packets
	}
	tc.prevHWAt = tc.mgr.Cluster.Eng.Now()
}

// ---- leader election (hot-standby HA) ----

// electionTick runs every heartbeat period on every live replica: leaders
// heartbeat their peers; followers claim the rack when the leader goes
// silent past the (id-staggered) election timeout, or preempt a
// higher-id leader once they have been healthy followers long enough —
// restoring lowest-id-alive leadership after partitions heal.
func (tc *TORController) electionTick() {
	if tc.stopped || tc.crashed || tc.paused {
		return
	}
	now := tc.mgr.Cluster.Eng.Now()
	if tc.isLeader {
		tc.sendHeartbeats()
		return
	}
	if now-tc.lastHeartbeatAt > tc.electionTimeout() {
		tc.becomeLeader("timeout")
		return
	}
	if tc.leaderID > tc.replicaID && tc.followingHigherSince >= 0 &&
		now-tc.followingHigherSince > tc.electionTimeout() {
		tc.becomeLeader("preempt")
	}
}

func (tc *TORController) sendHeartbeats() {
	hb := &openflow.LeaderHeartbeat{Term: tc.term, LeaderID: uint32(tc.replicaID)}
	ids := make([]int, 0, len(tc.toPeers))
	for id := range tc.toPeers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		tc.toPeers[id].Send(hb)
	}
}

// handleHeartbeat processes a peer's view of leadership. Heartbeats only
// carry liveness and term ordering — safety never depends on them (the
// switch agent fences stale terms regardless of what replicas believe).
func (tc *TORController) handleHeartbeat(m *openflow.LeaderHeartbeat) {
	now := tc.mgr.Cluster.Eng.Now()
	switch {
	case m.Term < tc.term:
		// A stale leader still announcing itself (asymmetric partition,
		// or one healing): gossip the newer term back so it steps down
		// even before the switch agent fences its next install.
		if tr, ok := tc.toPeers[int(m.LeaderID)]; ok {
			tr.Send(&openflow.LeaderHeartbeat{Term: tc.term, LeaderID: uint32(tc.leaderID)})
		}
	case m.Term == tc.term:
		if !tc.isLeader && int(m.LeaderID) == tc.leaderID {
			tc.lastHeartbeatAt = now
		}
	default: // m.Term > tc.term
		if tc.isLeader {
			tc.stepDown("superseded")
		}
		tc.term = m.Term
		tc.setFollowing(int(m.LeaderID), now)
		tc.lastHeartbeatAt = now
	}
}

func (tc *TORController) setFollowing(id int, now sim.Time) {
	tc.leaderID = id
	if id > tc.replicaID {
		if tc.followingHigherSince < 0 {
			tc.followingHigherSince = now
		}
	} else {
		tc.followingHigherSince = -1
	}
}

// becomeLeader claims the rack under a fresh term from this replica's
// residue class. The claim does not need to be "right": if a healthier
// leader exists under a higher term, this replica's first hardware
// mutation is fenced and it steps straight back down — election provides
// liveness, fencing provides safety.
func (tc *TORController) becomeLeader(cause string) {
	tc.term = tc.nextTerm()
	tc.isLeader = true
	tc.leaderID = tc.replicaID
	tc.followingHigherSince = -1
	tc.Elections++
	// Adopt the hardware's installed rules as the desired set: placers
	// may still steer through them (same reasoning as Restart).
	tc.adoptHardware()
	// Fresh term, fresh ack space: each leadership numbers RuleSyncs
	// independently and trusts only same-term acks.
	tc.ackedSeq = make(map[uint32]uint32)
	tc.lastTableReplyAt = tc.mgr.Cluster.Eng.Now()
	tc.degraded = false
	tc.justElected = true
	tc.lastPublished = nil
	if tc.rec != nil {
		tc.rec.Record(telemetry.Event{Kind: telemetry.KindElection, Cause: cause,
			V1: float64(tc.term), V2: float64(tc.replicaID)})
	}
	// Immediate heartbeats: standbys with later timeouts stand down now.
	tc.sendHeartbeats()
}

// stepDown abandons leadership: all in-flight install/remove machinery is
// cancelled and the desired set dropped — the next leader adopts hardware
// state directly, so carrying a view here would only invite split-brain
// writes. Demand reports, the smoother and the dampers stay warm; that is
// what makes the standby "hot".
func (tc *TORController) stepDown(cause string) {
	if !tc.isLeader {
		return
	}
	tc.isLeader = false
	tc.StepDowns++
	tc.followingHigherSince = -1
	tc.lastHeartbeatAt = tc.mgr.Cluster.Eng.Now()
	for _, st := range tc.installing {
		if st.timer != nil {
			st.timer.Cancel()
		}
	}
	for _, st := range tc.removing {
		if st.timer != nil {
			st.timer.Cancel()
		}
	}
	tc.installing = make(map[rules.Pattern]*installState)
	tc.removing = make(map[rules.Pattern]*removeState)
	tc.offloaded = make(map[rules.Pattern]bool)
	tc.prevHW = make(map[rules.Pattern]uint64)
	tc.pendingBarrier = make(map[uint32]func())
	tc.pendingInstall = make(map[uint32]rules.Pattern)
	tc.pendingAnnounce = nil
	tc.lastPublished = nil
	tc.sincePublish = 0
	tc.nicDesired = make(map[rules.Pattern]uint32)
	tc.degraded = false
	tc.justElected = false
	if tc.rec != nil {
		tc.rec.Record(telemetry.Event{Kind: telemetry.KindElection, Cause: "step-down-" + cause,
			V1: float64(tc.term), V2: float64(tc.replicaID)})
	}
}

// Pause freezes the controller process (faults.ControllerPause). Unlike a
// crash, in-memory state survives — which is exactly why it is a distinct
// fault surface: the process resumes believing its pre-pause term, and
// only fencing stops it from acting on that stale belief. A paused leader
// steps down internally (its in-flight machinery is dead on arrival by
// resume time); messages arriving while frozen are dropped. Implements
// faults.Pausable.
func (tc *TORController) Pause() {
	if tc.paused || tc.crashed {
		return
	}
	tc.paused = true
	tc.Pauses++
	tc.stepDown("pause")
}

// Resume unfreezes the process. A single-instance deployment resumes
// leadership directly, re-adopting hardware state like a restart; a
// replicated one resumes as a follower — if no successor emerged while it
// was frozen, its election timeout re-elects it. Implements
// faults.Pausable.
func (tc *TORController) Resume() {
	if !tc.paused {
		return
	}
	tc.paused = false
	now := tc.mgr.Cluster.Eng.Now()
	tc.lastHeartbeatAt = now
	tc.lastTableReplyAt = now
	if !tc.haReplicated() {
		tc.isLeader = true
		tc.adoptHardware()
	}
	if tc.rec != nil {
		tc.rec.Record(telemetry.Event{Kind: telemetry.KindElection, Cause: "resume",
			V1: float64(tc.term), V2: float64(tc.replicaID)})
	}
}

// ---- lease refresh and degraded mode ----

// refreshLeases re-asserts every confirmed offload rule on the reconcile
// cadence. The switch agent treats an identical FlowAdd as an idempotent
// no-op that extends the rule's lease, and the TableRequest that follows
// on the same FIFO channel refreshes whatever an individual lost FlowAdd
// missed — so with a healthy path a desired rule can never expire
// (HAConfig.LeaseTTL must exceed two reconcile periods). A rule that went
// missing from hardware is reinstalled as a side effect, making the
// refresh double as fast repair.
func (tc *TORController) refreshLeases() {
	if tc.mgr.Cfg.HA.LeaseTTL <= 0 {
		return
	}
	for _, p := range tc.offloadedList() {
		action, queue := tc.policyFor(p)
		if action != rules.Allow {
			continue // policy changed; let the lease lapse
		}
		tc.toSwitch.Send(&openflow.FlowMod{
			Command: openflow.FlowAdd, Pattern: p, Priority: hwPriority,
			Cookie: uint64(queue), Term: tc.term, Origin: uint32(tc.replicaID),
		})
		tc.LeaseRefreshes++
	}
}

// enterDegraded is the leader-side anti-blackhole guard for the lease
// fail-safe: no TableReply for half a LeaseTTL means the switch agent is
// unreachable, the TCAM leases cannot be refreshed, and the hardware
// rules will expire under placers this leader also cannot re-route
// afterwards. Pull every express lane back to software NOW — demotions
// announced to placers, ACL removal gated as usual (and covered by lease
// expiry if the deletes cannot be delivered either) — and stop offloading
// until the hardware answers again.
func (tc *TORController) enterDegraded() {
	tc.degraded = true
	var aborts []rules.Pattern
	for p := range tc.installing {
		aborts = append(aborts, p)
	}
	sort.Slice(aborts, func(i, j int) bool { return aborts[i].String() < aborts[j].String() })
	for _, p := range aborts {
		tc.abortInstall(p)
	}
	ps := tc.offloadedList()
	now := tc.mgr.Cluster.Eng.Now()
	for _, p := range ps {
		tc.beginRemove(p)
		tc.announce(openflow.OffloadAction{Pattern: p, Offload: false})
		tc.damper.ForceState(p, false, now)
		tc.DegradedDemotes++
	}
	if tc.rec != nil {
		tc.rec.Record(telemetry.Event{Kind: telemetry.KindLeaseExpire, Cause: "hw-stale",
			V1: float64(len(ps)), V2: float64(tc.term)})
	}
	if len(ps) > 0 {
		tc.publish()
	}
}

// HandleMessage implements openflow.Handler for messages from local
// controllers (DemandReport, SyncAck) and from the switch agent
// (BarrierReply, ErrorMsg, TableReply).
func (tc *TORController) HandleMessage(msg openflow.Message, xid uint32, reply openflow.ReplyFunc) {
	if tc.crashed || tc.paused {
		// Process down or frozen; messages are lost (a paused process's
		// socket overflows — anti-entropy re-delivers state on resume).
		return
	}
	switch m := msg.(type) {
	case *openflow.DemandReport:
		if cur, ok := tc.reports[m.ServerID]; ok && cur.Interval == m.Interval {
			// A continuation chunk of this interval's report.
			cur.Entries = append(cur.Entries, m.Entries...)
			tc.reports[m.ServerID] = cur
		} else {
			// Gap detection: interval sequence numbers that never arrived
			// mean lost (or badly delayed) reports on this server's stats
			// path. The count is diagnostic; the smoother handles the
			// estimation side.
			if last, ok := tc.lastInterval[m.ServerID]; ok && m.Interval > last+1 {
				tc.StatsGaps += uint64(m.Interval - last - 1)
			}
			tc.reports[m.ServerID] = *m
			// The NIC table section rides the first chunk only; a server
			// without a SmartNIC reports zero free entries and no patterns
			// and never trips nicSeen.
			nicSet := make(map[rules.Pattern]bool, len(m.NICPatterns))
			for _, p := range m.NICPatterns {
				nicSet[p] = true
			}
			tc.nicReported[m.ServerID] = nicSet
			tc.nicFree[m.ServerID] = m.NICFree
			if m.NICFree > 0 || len(m.NICPatterns) > 0 {
				tc.nicSeen[m.ServerID] = true
			}
		}
		if m.Interval > tc.lastInterval[m.ServerID] {
			tc.lastInterval[m.ServerID] = m.Interval
		}
		tc.lastReportAt[m.ServerID] = tc.mgr.Cluster.Eng.Now()
		// Standbys keep their demand view warm but must not touch the
		// (shared) hardware limiters — only the acting leader applies.
		if tc.isLeader {
			tc.applySplits(m.Splits)
		}
	case *openflow.OverloadHint:
		tc.Hints++
		if tc.rec != nil {
			cause := "recovered"
			if m.Overloaded {
				cause = "overloaded"
			}
			tc.rec.Record(telemetry.Event{Kind: telemetry.KindHint, Cause: cause,
				Tenant: m.Tenant, V1: float64(m.ServerID), V2: m.MissPPS})
		}
		if m.Overloaded && m.Tenant != 0 {
			// Boost the offending tenant for a bounded spell; a lost
			// recovery hint must not pin the boost forever.
			tc.urgent[m.Tenant] = tc.mgr.Cluster.Eng.Now() +
				sim.Time(urgentTTLIntervals)*tc.controlInterval()
		} else if !m.Overloaded && m.Tenant != 0 {
			delete(tc.urgent, m.Tenant)
		}
	case *openflow.SyncAck:
		if m.Term != tc.term {
			// Each leadership term numbers its RuleSyncs independently;
			// an ack scoped to another epoch must not un-gate removals.
			return
		}
		if m.Seq > tc.ackedSeq[m.ServerID] {
			tc.ackedSeq[m.ServerID] = m.Seq
		}
		tc.tryRemovals()
	case *openflow.LeaderHeartbeat:
		tc.handleHeartbeat(m)
	case *openflow.BarrierReply:
		if fn, ok := tc.pendingBarrier[xid]; ok {
			delete(tc.pendingBarrier, xid)
			fn()
		}
	case *openflow.ErrorMsg:
		if m.Code == openflow.ErrCodeStaleTerm {
			// The switch fenced us: a higher term exists, so another
			// replica took over while we still thought we led.
			tc.FencedOut++
			tc.stepDown("fenced")
			return
		}
		if p, ok := tc.pendingInstall[xid]; ok {
			delete(tc.pendingInstall, xid)
			if st := tc.installing[p]; st != nil && st.flowXID == xid {
				st.failed = true
			}
		}
	case *openflow.TableReply:
		tc.lastTableReplyAt = tc.mgr.Cluster.Eng.Now()
		tc.degraded = false
		if tc.isLeader {
			tc.reconcile(m)
		}
	case openflow.EchoRequest:
		reply(openflow.EchoReply{}, xid)
	}
}

// applySplits installs the hardware-side limits local DEs computed
// ("rate limits on the SR-IOV VF are applied at the TOR", §4.1.4).
func (tc *TORController) applySplits(splits []openflow.RateSplit) {
	for _, s := range splits {
		tc.tor.SetVFLimit(s.Tenant, s.VMIP, tor.Egress, s.EgressHardBps)
		tc.tor.SetVFLimit(s.Tenant, s.VMIP, tor.Ingress, s.IngressHardBps)
		tc.installedHW[vswitch.VMKey{Tenant: s.Tenant, IP: s.VMIP}] = s
	}
}

// tick is one DE run: measure hardware flows, decide, apply, distribute,
// reconcile.
func (tc *TORController) tick() {
	if tc.stopped || tc.crashed || tc.paused {
		return
	}
	if !tc.isLeader {
		return // hot standby: demand view stays warm, DE stays quiet
	}
	tc.Decisions++
	eng := tc.mgr.Cluster.Eng

	// Hardware-staleness guard (leases only): if the switch agent has
	// been unreachable for half a TTL, degrade before the TCAM rules
	// expire under still-steering placers.
	if ttl := tc.mgr.Cfg.HA.LeaseTTL; ttl > 0 && !tc.degraded &&
		eng.Now()-tc.lastTableReplyAt > sim.Time(ttl)/2 {
		tc.enterDegraded()
	}

	// TOR ME: pps of offloaded entries from TCAM counter deltas.
	hwPPS := make(map[rules.Pattern]float64)
	elapsed := eng.Now() - tc.prevHWAt
	if elapsed > 0 {
		for _, st := range tc.tor.Stats() {
			prev := tc.prevHW[st.Pattern]
			if st.Packets > prev {
				// Offloaded traffic passes the ACL twice (VF
				// ingress and GRE termination); halve to get
				// wire pps.
				hwPPS[st.Pattern] = float64(st.Packets-prev) / 2 / elapsed.Seconds()
			}
			tc.prevHW[st.Pattern] = st.Packets
		}
	}
	tc.prevHWAt = eng.Now()

	// Budget: free TCAM space plus what confirmed offloads would free.
	// In-flight installs hold their slot conservatively.
	budget := tc.tor.TCAMFree() + len(tc.offloaded)
	if tc.mgr.Cfg.MaxOffloads > 0 && budget > tc.mgr.Cfg.MaxOffloads {
		budget = tc.mgr.Cfg.MaxOffloads
	}

	reports := make([]openflow.DemandReport, 0, len(tc.reports))
	ids := make([]uint32, 0, len(tc.reports))
	for id := range tc.reports {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	staleAfter := sim.Time(staleIntervals) * tc.controlInterval()
	for _, id := range ids {
		// A server silent past the staleness bound has a dead or
		// partitioned stats path; acting on its frozen report would make
		// decisions from arbitrarily old data. Excluding it here hands
		// its candidates to the smoother, which decays them gracefully.
		if at, ok := tc.lastReportAt[id]; ok && eng.Now()-at > staleAfter {
			continue
		}
		reports = append(reports, tc.reports[id])
	}

	// Decisions are made against the union of confirmed and in-flight
	// installs so an install awaiting its barrier is neither re-proposed
	// nor silently double-counted.
	current := make(map[rules.Pattern]bool, len(tc.offloaded)+len(tc.installing))
	for p := range tc.offloaded {
		current[p] = true
	}
	for p := range tc.installing {
		current[p] = true
	}

	cands := decision.CandidatesFromReports(reports, hwPPS, tc.priorityOf)
	cands = tc.smoother.Advance(cands, current)
	// N-level placement: the TCAM tier inside DecideTiered is the
	// unchanged 2-level Decide over the same inputs, so with no SmartNICs
	// reporting (nicStates nil) this tick is byte-identical to the 2-level
	// controller. The NIC tier then places the candidates the TCAM did
	// not take onto each sourcing host's SmartNIC.
	nicStates, hostOf := tc.nicInputs()
	tcfg := decision.TieredConfig{
		TCAM: decision.Config{
			Budget:          budget,
			MinScore:        tc.mgr.Cfg.MinScore,
			HysteresisRatio: tc.mgr.Cfg.HysteresisRatio,
			Groups:          tc.mgr.Cfg.Groups,
		},
		NICMinScore:        tc.mgr.Cfg.NICMinScore,
		NICHysteresisRatio: tc.mgr.Cfg.NICHysteresisRatio,
		NICTenantQuota:     tc.mgr.Cfg.NICTenantQuota,
	}
	var td decision.TieredDecision
	if tc.inc != nil {
		// Sketch mode: incremental re-rank over the carried order —
		// identical output to DecideTiered (band 0), without the full
		// sort when most scores are unchanged.
		td = tc.inc.Decide(tcfg, cands, current, nicStates, hostOf)
	} else {
		td = decision.DecideTiered(tcfg, cands, current, nicStates, hostOf)
	}
	// Flap damping on top of score hysteresis: a pattern whose offload
	// state flipped repeatedly in quick succession is pinned to its
	// current state until the penalty decays (internal/decision/damper.go).
	d := tc.damper.Apply(td.TCAM, current, eng.Now())

	// The decision events carry the score inputs: V1 is the candidate's
	// score, V2 the TCAM budget the DE worked against.
	var scores map[rules.Pattern]float64
	if tc.rec != nil {
		scores = make(map[rules.Pattern]float64, len(cands))
		for _, c := range cands {
			scores[c.Pattern] = c.Score()
		}
	}

	var actions []openflow.OffloadAction
	for _, p := range d.Demote {
		if tc.offloaded[p] {
			if tc.rec != nil {
				tc.rec.EmitPattern(telemetry.KindDemoteDecision, p.Tenant, p, "score", scores[p], float64(budget))
			}
			tc.beginRemove(p)
			actions = append(actions, openflow.OffloadAction{Pattern: p, Offload: false})
		} else if tc.installing[p] != nil {
			if tc.rec != nil {
				tc.rec.EmitPattern(telemetry.KindDemoteDecision, p.Tenant, p, "abort-install", scores[p], float64(budget))
			}
			tc.abortInstall(p)
		}
	}
	for _, p := range d.Offload {
		if tc.degraded {
			break // hardware unreachable; no new express lanes
		}
		if tc.offloaded[p] || tc.installing[p] != nil {
			continue // already in hardware or on its way
		}
		if tc.rec != nil {
			tc.rec.EmitPattern(telemetry.KindOffloadDecision, p.Tenant, p, "score", scores[p], float64(budget))
		}
		// No action is announced here: placers redirect to the express
		// lane only after the hardware confirms the install.
		tc.startInstall(p)
	}

	// The middle tier: runs after beginRemove so a TCAM→NIC demotion is
	// recognizable (the pattern is in `removing` now), and before the
	// broadcast so NIC actions ride their own per-server decisions.
	tc.applyNICTier(td, scores)

	dec := &openflow.OffloadDecision{
		Interval: uint32(tc.Decisions),
		Actions:  actions,
		HWRates:  tc.hwRates(),
		Term:     tc.term,
		Origin:   uint32(tc.replicaID),
	}
	for _, tr := range tc.toLocals {
		tr.Send(dec)
	}
	if tc.justElected {
		// Full sync under the new term right away: locals adopt the term
		// (resetting their ack space) and reconcile placements against
		// the adopted desired set.
		tc.publish()
	} else {
		tc.maybePublish()
	}

	// Anti-entropy: periodically read back the hardware table and
	// reconcile on reply; the NIC tier reconciles against the cached
	// report sections on the same cadence. Lease refreshes ride the same
	// cadence, strictly before the TableRequest on the FIFO channel (the
	// read-back doubles as a bulk refresh at the agent).
	if tc.Decisions%reconcileTicks == 0 || tc.justElected {
		tc.justElected = false
		tc.refreshLeases()
		tc.toSwitch.Send(&openflow.TableRequest{Term: tc.term, Origin: uint32(tc.replicaID)})
		tc.nicReconcile()
	}
}

// priorityOf is the tenant preference c fed to the DE: the configured
// multiplier, further boosted while an OverloadHint for the tenant is in
// force. Expired boosts are dropped lazily on lookup.
func (tc *TORController) priorityOf(t packet.TenantID) float64 {
	p := 1.0
	if f := tc.mgr.Cfg.PriorityOf; f != nil {
		p = f(t)
	}
	if exp, ok := tc.urgent[t]; ok {
		if tc.mgr.Cluster.Eng.Now() < exp {
			p *= urgentBoost
		} else {
			delete(tc.urgent, t)
		}
	}
	return p
}

// FlapStats exposes the damper's counters: penalized offload-state
// transitions and vetoed ones.
func (tc *TORController) FlapStats() (transitions, suppressions uint64) {
	return tc.damper.Transitions, tc.damper.Suppressions
}

// maybePublish sends a RuleSync when the desired set changed since the
// last one, or as a periodic refresh (covering lost syncs and acks).
func (tc *TORController) maybePublish() {
	tc.sincePublish++
	desired := tc.offloadedList()
	if tc.sincePublish < syncRefreshTicks && patternsEqual(desired, tc.lastPublished) &&
		!tc.removalsNeedSync() {
		return
	}
	tc.publishSet(desired)
}

// removalsNeedSync reports whether a gated removal is waiting on a
// RuleSync sequence that has not been published yet. Content-deduping
// alone would miss this case: a pattern installed and demoted entirely
// between two publishes leaves the desired set equal to the last
// published one, yet its placers were steering per announcements the
// published sync never covered — the removal must not wait for the
// periodic refresh to learn they have stopped.
func (tc *TORController) removalsNeedSync() bool {
	for _, st := range tc.removing {
		if st.needSeq > tc.syncSeq {
			return true
		}
	}
	return false
}

// publish sends the full desired offload set (confirmed patterns only) to
// every local controller. Locals ack with the sequence number; removals
// gate on those acks.
func (tc *TORController) publish() { tc.publishSet(tc.offloadedList()) }

func (tc *TORController) publishSet(desired []rules.Pattern) {
	tc.syncSeq++
	tc.lastPublished = desired
	tc.sincePublish = 0
	sync := &openflow.RuleSync{Seq: tc.syncSeq, Patterns: desired,
		Term: tc.term, Origin: uint32(tc.replicaID)}
	for _, tr := range tc.toLocals {
		tr.Send(sync)
	}
}

func patternsEqual(a, b []rules.Pattern) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ---- install path ----

func (tc *TORController) retryBase() time.Duration      { return tc.mgr.Cfg.RetryBase }
func (tc *TORController) installTimeout() time.Duration { return tc.mgr.Cfg.InstallTimeout }
func (tc *TORController) demoteGrace() time.Duration    { return tc.mgr.Cfg.DemoteGrace }

// backoff returns the delay before attempt n+1: exponential in the number
// of attempts already made, capped, with seeded jitter so many
// controllers retrying after one fault don't synchronise.
func (tc *TORController) backoff(attempts int) time.Duration {
	base := tc.retryBase()
	d := base << uint(attempts-1)
	if max := 32 * base; d > max {
		d = max
	}
	jitter := time.Duration(tc.mgr.Cluster.Eng.Rand().Int63n(int64(base)))
	return d + jitter
}

// startInstall begins the confirm-then-announce install sequence for a
// pattern the DE selected.
func (tc *TORController) startInstall(p rules.Pattern) {
	action, queue := tc.policyFor(p)
	if action != rules.Allow {
		// Denied traffic gains nothing from hardware offload; the
		// vswitch (or ToR default rule) already drops it.
		return
	}
	if st, ok := tc.removing[p]; ok {
		// Re-offloaded while a demotion was still draining: supersede
		// the removal. If its FlowDelete is already on the wire the
		// FIFO channel guarantees the fresh FlowAdd lands after it.
		if st.timer != nil {
			st.timer.Cancel()
		}
		delete(tc.removing, p)
	}
	st := &installState{queue: queue}
	tc.installing[p] = st
	tc.sendInstall(p, st)
}

// sendInstall (re)issues the FlowMod + barrier for one attempt.
func (tc *TORController) sendInstall(p rules.Pattern, st *installState) {
	st.attempts++
	st.failed = false
	delete(tc.pendingInstall, st.flowXID)
	delete(tc.pendingBarrier, st.barXID)
	if st.timer != nil {
		st.timer.Cancel()
	}
	// The QoS queue rides in the cookie (controller bookkeeping field).
	mod := &openflow.FlowMod{Command: openflow.FlowAdd, Pattern: p, Priority: hwPriority,
		Cookie: uint64(st.queue), Term: tc.term, Origin: uint32(tc.replicaID)}
	st.flowXID = tc.toSwitch.Send(mod)
	tc.pendingInstall[st.flowXID] = p
	if tc.rec != nil {
		tc.rec.EmitPattern(telemetry.KindFlowModSend, p.Tenant, p, "flow-add",
			float64(st.flowXID), float64(st.attempts))
	}
	st.barXID = tc.toSwitch.Send(&openflow.BarrierRequest{})
	tc.pendingBarrier[st.barXID] = func() { tc.installConfirmed(p, st) }
	st.timer = tc.mgr.Cluster.Eng.After(tc.installTimeout(), func() {
		// Barrier reply lost or very late: retry (the agent's upsert is
		// idempotent, so a duplicate FlowAdd is harmless).
		if tc.installing[p] == st && !tc.crashed {
			tc.installRetry(p, st)
		}
	})
}

// installConfirmed runs when the install's barrier comes back: either the
// hardware accepted the rule (announce the express lane) or an ErrorMsg
// preceded the barrier (retry or degrade).
func (tc *TORController) installConfirmed(p rules.Pattern, st *installState) {
	if tc.installing[p] != st {
		return // superseded
	}
	if st.failed {
		tc.installRetry(p, st)
		return
	}
	if st.timer != nil {
		st.timer.Cancel()
	}
	delete(tc.pendingInstall, st.flowXID)
	delete(tc.installing, p)
	tc.offloaded[p] = true
	tc.Installs++
	if tc.rec != nil {
		tc.rec.EmitPattern(telemetry.KindBarrierConfirm, p.Tenant, p, "",
			float64(st.barXID), float64(st.attempts))
	}
	// Hardware state acknowledged — now, and only now, redirect placers.
	tc.announce(openflow.OffloadAction{Pattern: p, Offload: true})
	// NIC→TCAM promotion completes here: the SmartNIC rule is held until
	// the TCAM install is barrier-confirmed so the flow graduates without
	// a software spell in between (and can never blackhole — a NIC miss
	// after the removal lands on the vswitch, a hit before it reaches the
	// now-installed TCAM ACL either way).
	if s, ok := tc.nicDesired[p]; ok {
		tc.nicRemove(p, s, "nic->tcam", 0)
		tc.sendNICActions(s, []openflow.OffloadAction{{Pattern: p, Offload: false, Tier: openflow.TierNIC}})
		tc.nicDamper.ForceState(p, false, tc.mgr.Cluster.Eng.Now())
	}
}

// announce queues one action and flushes the batch at the end of the
// current event window (CallSoon runs after every already-scheduled event
// at this instant, so all barriers confirmed on one RTT coalesce).
func (tc *TORController) announce(a openflow.OffloadAction) {
	tc.pendingAnnounce = append(tc.pendingAnnounce, a)
	if tc.announceQueued {
		return
	}
	tc.announceQueued = true
	tc.mgr.Cluster.Eng.CallSoon(func() {
		tc.announceQueued = false
		acts := tc.pendingAnnounce
		tc.pendingAnnounce = nil
		if tc.crashed || tc.paused || !tc.isLeader || len(acts) == 0 {
			return
		}
		sort.Slice(acts, func(i, j int) bool {
			return acts[i].Pattern.String() < acts[j].Pattern.String()
		})
		dec := &openflow.OffloadDecision{Actions: acts,
			Term: tc.term, Origin: uint32(tc.replicaID)}
		for _, tr := range tc.toLocals {
			tr.Send(dec)
		}
	})
}

// installRetry backs off and re-sends, or gives up after the attempt
// budget: the flow simply stays on the software path (no blackhole, rate
// caps still enforced by the VIF limiter) and the DE may try again in a
// later interval.
func (tc *TORController) installRetry(p rules.Pattern, st *installState) {
	delete(tc.pendingInstall, st.flowXID)
	delete(tc.pendingBarrier, st.barXID)
	if st.timer != nil {
		st.timer.Cancel()
	}
	if st.attempts >= tc.mgr.Cfg.MaxInstallAttempts {
		delete(tc.installing, p)
		tc.GiveUps++
		if tc.rec != nil {
			tc.rec.EmitPattern(telemetry.KindInstallGiveUp, p.Tenant, p, "attempt-budget",
				float64(st.attempts), 0)
		}
		return
	}
	tc.Retries++
	if tc.rec != nil {
		cause := "timeout"
		if st.failed {
			cause = "rejected"
		}
		tc.rec.EmitPattern(telemetry.KindInstallRetry, p.Tenant, p, cause,
			float64(st.attempts), 0)
	}
	st.timer = tc.mgr.Cluster.Eng.After(tc.backoff(st.attempts), func() {
		if tc.installing[p] == st && !tc.crashed {
			tc.sendInstall(p, st)
		}
	})
}

// abortInstall cancels an unconfirmed install (decision changed before
// the barrier returned). Nothing was announced, so no placer redirects
// exist; the best-effort delete below cleans hardware, and reconciliation
// sweeps the rule as an orphan if the delete is lost.
func (tc *TORController) abortInstall(p rules.Pattern) {
	st := tc.installing[p]
	if st == nil {
		return
	}
	if st.timer != nil {
		st.timer.Cancel()
	}
	delete(tc.pendingInstall, st.flowXID)
	delete(tc.pendingBarrier, st.barXID)
	delete(tc.installing, p)
	tc.toSwitch.Send(&openflow.FlowMod{Command: openflow.FlowDelete, Pattern: p,
		Term: tc.term, Origin: uint32(tc.replicaID)})
}

// ---- remove path ----

// beginRemove demotes a confirmed pattern: it leaves the unified set's
// hardware side immediately (budgets and decisions see the slot as free,
// placers are told to fall back to software) but the ACL itself is
// removed only once every local acks a RuleSync excluding the pattern and
// the in-flight grace passes — §4.1.2 orders pull-backs the same way:
// software first, then hardware.
func (tc *TORController) beginRemove(p rules.Pattern) {
	delete(tc.offloaded, p)
	delete(tc.prevHW, p)
	if _, ok := tc.removing[p]; ok {
		return
	}
	tc.Demotes++
	eng := tc.mgr.Cluster.Eng
	st := &removeState{
		// The caller publishes a RuleSync (excluding p) in this same
		// event; it will carry syncSeq+1.
		needSeq: tc.syncSeq + 1,
		readyAt: eng.Now() + tc.demoteGrace(),
	}
	tc.removing[p] = st
	eng.After(tc.demoteGrace(), tc.tryRemovals)
}

// beginOrphanRemove schedules removal of a hardware rule nobody owns.
// Orphans are excluded from every RuleSync by construction, so gating on
// the current sequence plus grace guarantees placers (which only steer
// per announced state) are off the rule before it goes.
func (tc *TORController) beginOrphanRemove(p rules.Pattern) {
	if _, ok := tc.removing[p]; ok {
		return
	}
	eng := tc.mgr.Cluster.Eng
	st := &removeState{
		needSeq: tc.syncSeq,
		readyAt: eng.Now() + tc.demoteGrace(),
		orphan:  true,
	}
	tc.removing[p] = st
	tc.Orphans++
	if tc.rec != nil {
		tc.rec.EmitPattern(telemetry.KindOrphanSweep, p.Tenant, p, "", 0, 0)
	}
	eng.After(tc.demoteGrace(), tc.tryRemovals)
}

// minAckedSeq is the lowest RuleSync sequence any local has confirmed.
func (tc *TORController) minAckedSeq() uint32 {
	min := ^uint32(0)
	for _, id := range tc.localIDs {
		if a := tc.ackedSeq[id]; a < min {
			min = a
		}
	}
	if len(tc.localIDs) == 0 {
		return ^uint32(0)
	}
	return min
}

// tryRemovals issues FlowDeletes for every gated removal whose conditions
// are now met. Called on ack receipt and on grace expiry.
func (tc *TORController) tryRemovals() {
	if tc.crashed || len(tc.removing) == 0 {
		return
	}
	ps := make([]rules.Pattern, 0, len(tc.removing))
	for p := range tc.removing {
		ps = append(ps, p)
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].String() < ps[j].String() })
	min := tc.minAckedSeq()
	now := tc.mgr.Cluster.Eng.Now()
	for _, p := range ps {
		st := tc.removing[p]
		if st.deleteSent || now < st.readyAt || min < st.needSeq {
			continue
		}
		tc.sendDelete(p, st)
	}
}

// sendDelete issues the barrier-confirmed ACL removal; a lost
// confirmation re-arms the removal after a timeout.
func (tc *TORController) sendDelete(p rules.Pattern, st *removeState) {
	st.deleteSent = true
	tc.toSwitch.Send(&openflow.FlowMod{Command: openflow.FlowDelete, Pattern: p,
		Term: tc.term, Origin: uint32(tc.replicaID)})
	bx := tc.toSwitch.Send(&openflow.BarrierRequest{})
	tc.pendingBarrier[bx] = func() {
		if tc.removing[p] == st {
			if st.timer != nil {
				st.timer.Cancel()
			}
			delete(tc.removing, p)
		}
	}
	st.timer = tc.mgr.Cluster.Eng.After(tc.installTimeout(), func() {
		if tc.removing[p] == st && st.deleteSent && !tc.crashed {
			st.deleteSent = false
			delete(tc.pendingBarrier, bx)
			tc.tryRemovals()
		}
	})
}

// ---- reconciliation ----

// reconcile compares the agent's reported hardware table against the
// controller's desired state and repairs divergence in both directions:
//
//   - a desired pattern missing from hardware is immediately degraded to
//     the software path (placers redirected — express-lane packets would
//     otherwise hit the default-deny TCAM) and re-installed through the
//     normal confirm-then-announce sequence;
//   - a reported rule nobody owns (crash remnant, lost delete) is swept
//     through the gated removal path.
//
// The snapshot is one control delay old; a pattern confirmed after the
// snapshot was taken is in `installing` or was just announced, and both
// sets are excluded from the orphan sweep, so a healthy FIFO channel
// never yields a false repair. Under injected delay faults reordering can
// produce a false positive — the cost is a spell on the software path,
// never a blackhole.
func (tc *TORController) reconcile(rep *openflow.TableReply) {
	reported := make(map[rules.Pattern]bool, len(rep.Rules))
	for _, r := range rep.Rules {
		if int(r.Priority) == hwPriority {
			reported[r.Pattern] = true
		}
	}

	var lost []rules.Pattern
	for p := range tc.offloaded {
		if !reported[p] {
			lost = append(lost, p)
		}
	}
	sort.Slice(lost, func(i, j int) bool { return lost[i].String() < lost[j].String() })
	for _, p := range lost {
		delete(tc.offloaded, p)
		delete(tc.prevHW, p)
		tc.Repairs++
		if tc.rec != nil {
			tc.rec.EmitPattern(telemetry.KindRepair, p.Tenant, p, "missing-from-hw", 0, 0)
		}
		tc.announce(openflow.OffloadAction{Pattern: p, Offload: false})
		tc.startInstall(p)
	}
	if len(lost) > 0 {
		tc.publish()
	}

	var orphans []rules.Pattern
	for p := range reported {
		if !tc.offloaded[p] && tc.installing[p] == nil {
			if _, rem := tc.removing[p]; !rem {
				orphans = append(orphans, p)
			}
		}
	}
	sort.Slice(orphans, func(i, j int) bool { return orphans[i].String() < orphans[j].String() })
	for _, p := range orphans {
		tc.beginOrphanRemove(p)
	}
}

// ---- policy ----

// policyFor evaluates the tenant policy covering the pattern against
// every rule-bearing VM the pattern's flows could touch: the pinned
// endpoints, plus — when an endpoint is wildcarded — every tenant VM with
// security rules, since any of them could be the far end. The offloaded
// rule is Allow only if all of them allow the representative flow; this
// keeps the hardware rule compliant with configured policy (§4.3: "The
// offloaded flow rules must comply with configured policy") and closes
// the bypass a blanket hardware Allow would open for VF traffic, which
// never revisits the destination vswitch's ACLs.
func (tc *TORController) policyFor(p rules.Pattern) (rules.Action, int) {
	k := representativeKey(p)
	queue := 0
	srcPinned, dstPinned := p.SrcPrefix == 32, p.DstPrefix == 32

	check := func(vm *host.VM) rules.Action {
		if vm == nil || len(vm.Rules.Security) == 0 {
			return rules.Allow
		}
		if q := vm.Rules.QueueFor(k); q > queue {
			queue = q
		}
		return vm.Rules.Evaluate(k)
	}

	if srcPinned {
		if vm, ok := tc.mgr.Cluster.FindVM(p.Tenant, p.Src); ok {
			if check(vm) != rules.Allow {
				return rules.Deny, 0
			}
		}
	}
	if dstPinned {
		if vm, ok := tc.mgr.Cluster.FindVM(p.Tenant, p.Dst); ok {
			if check(vm) != rules.Allow {
				return rules.Deny, 0
			}
		}
	}
	if !srcPinned || !dstPinned {
		// A wildcarded endpoint: any tenant VM with rules could be
		// covered; all of them must allow the representative flow.
		for _, srv := range tc.mgr.Cluster.Servers {
			for _, vm := range srv.VMs {
				if vm.Key.Tenant != p.Tenant || len(vm.Rules.Security) == 0 {
					continue
				}
				if check(vm) != rules.Allow {
					return rules.Deny, 0
				}
			}
		}
	}
	return rules.Allow, queue
}

func representativeKey(p rules.Pattern) packet.FlowKey {
	return packet.FlowKey{
		Src: p.Src, Dst: p.Dst,
		SrcPort: p.SrcPort, DstPort: p.DstPort,
		Proto: p.Proto, Tenant: p.Tenant,
	}
}

// hwRates builds the per-VM hardware-path observations for local FPS.
func (tc *TORController) hwRates() []openflow.VMRate {
	keys := make([]vswitch.VMKey, 0, len(tc.installedHW))
	for k := range tc.installedHW {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Tenant != keys[j].Tenant {
			return keys[i].Tenant < keys[j].Tenant
		}
		return keys[i].IP < keys[j].IP
	})
	out := make([]openflow.VMRate, 0, len(keys))
	for _, k := range keys {
		inst := tc.installedHW[k]
		eg := tc.tor.VFRate(k.Tenant, k.IP, tor.Egress)
		in := tc.tor.VFRate(k.Tenant, k.IP, tor.Ingress)
		out = append(out, openflow.VMRate{
			Tenant: k.Tenant, VMIP: k.IP,
			EgressBps: eg, IngressBps: in,
			EgressMaxed:  inst.EgressHardBps > 0 && eg >= inst.EgressHardBps*0.95,
			IngressMaxed: inst.IngressHardBps > 0 && in >= inst.IngressHardBps*0.95,
		})
	}
	return out
}

// demoteVM pulls back every offloaded rule touching a VM — the pre-
// migration step of §4.1.2 ("any offloaded flows must be returned back to
// the VM's hypervisor before the migration can occur").
func (tc *TORController) demoteVM(tenant packet.TenantID, vmIP packet.IP) {
	if tc.crashed || tc.paused || !tc.isLeader {
		return
	}
	touches := func(p rules.Pattern) bool {
		if p.Tenant != tenant {
			return false
		}
		return (p.SrcPrefix == 32 && p.Src == vmIP) || (p.DstPrefix == 32 && p.Dst == vmIP)
	}
	var actions []openflow.OffloadAction
	for p := range tc.offloaded {
		if touches(p) {
			actions = append(actions, openflow.OffloadAction{Pattern: p, Offload: false})
		}
	}
	var aborts []rules.Pattern
	for p := range tc.installing {
		if touches(p) {
			aborts = append(aborts, p)
		}
	}
	// NIC placements touching the VM are pulled back too: the rule lives
	// on the source host's SmartNIC and would be stranded by the move.
	var nicPulls []rules.Pattern
	for p := range tc.nicDesired {
		if touches(p) {
			nicPulls = append(nicPulls, p)
		}
	}
	if len(actions) == 0 && len(aborts) == 0 && len(nicPulls) == 0 {
		return
	}
	sort.Slice(actions, func(i, j int) bool {
		return actions[i].Pattern.String() < actions[j].Pattern.String()
	})
	sort.Slice(aborts, func(i, j int) bool { return aborts[i].String() < aborts[j].String() })
	now := tc.mgr.Cluster.Eng.Now()
	for _, a := range actions {
		tc.beginRemove(a.Pattern)
		// Migration pull-back is a correctness path: the damper must not
		// veto it (ForceState bypasses the penalty machinery) but its view
		// of the pattern's state has to follow, so the re-offload at the
		// destination is recognized as a real transition.
		tc.damper.ForceState(a.Pattern, false, now)
	}
	for _, p := range aborts {
		tc.abortInstall(p)
		tc.damper.ForceState(p, false, now)
	}
	sort.Slice(nicPulls, func(i, j int) bool { return nicPulls[i].String() < nicPulls[j].String() })
	for _, p := range nicPulls {
		s := tc.nicDesired[p]
		tc.nicRemove(p, s, "nic->software", 0)
		tc.sendNICActions(s, []openflow.OffloadAction{{Pattern: p, Offload: false, Tier: openflow.TierNIC}})
		tc.nicDamper.ForceState(p, false, now)
	}
	if len(actions) > 0 {
		dec := &openflow.OffloadDecision{Actions: actions,
			Term: tc.term, Origin: uint32(tc.replicaID)}
		for _, tr := range tc.toLocals {
			tr.Send(dec)
		}
	}
	tc.publish()
}

// LatestReports returns the most recent demand report from each server —
// exposed for experiment instrumentation.
func (tc *TORController) LatestReports() []openflow.DemandReport {
	ids := make([]uint32, 0, len(tc.reports))
	for id := range tc.reports {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]openflow.DemandReport, 0, len(ids))
	for _, id := range ids {
		out = append(out, tc.reports[id])
	}
	return out
}

// Term returns the replica's current leadership epoch (0 with HA off).
func (tc *TORController) Term() uint32 { return tc.term }

// IsLeader reports whether this replica is currently acting as leader
// (believes it holds the leadership and is neither crashed nor paused).
func (tc *TORController) IsLeader() bool { return tc.isLeader && !tc.crashed && !tc.paused }

// ReplicaID returns this replica's index within its rack's group.
func (tc *TORController) ReplicaID() int { return tc.replicaID }

// offloadedList returns current confirmed hardware patterns, sorted.
func (tc *TORController) offloadedList() []rules.Pattern {
	out := make([]rules.Pattern, 0, len(tc.offloaded))
	for p := range tc.offloaded {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}
