package core

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/host"
	"repro/internal/model"
	"repro/internal/packet"
)

// TestPerformanceIsolationAcrossPaths verifies the paper's second
// objective (§1): "Regardless of whether traffic is subject to rule
// processing in the hypervisor or in hardware, the aggregate traffic rate
// of each tenant's VM should not exceed its limits" — even while FasTrak
// moves flows between the paths and FPS re-splits the limit.
func TestPerformanceIsolationAcrossPaths(t *testing.T) {
	cfg := fastCfg()
	c := cluster.New(cluster.Config{Servers: 2, VSwitchCfg: model.VSwitchConfig{Tunneling: true}, Seed: 31})
	cl, err := c.AddVM(0, 3, clientIP, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	sv, err := c.AddVM(1, 3, serverIP, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	mgr := Attach(c, cfg)

	const limitBps = 200e6
	mgr.SetVMLimit(3, clientIP, limitBps, limitBps)

	var rxBytes uint64
	var rxSince time.Duration
	sv.BindApp(9000, host.AppFunc(func(vm *host.VM, p *packet.Packet) {
		if c.Eng.Now() >= rxSince {
			rxBytes += uint64(p.WireLen())
		}
	}))
	// Offered load far above the limit: 1448-byte messages at ~3 Gbps
	// across two flows (so both an offloaded and a software flow exist).
	c.Eng.Every(8*time.Microsecond, func() {
		cl.Send(serverIP, 40000, 9000, 1448, host.SendOptions{}, nil)
	})
	c.Eng.Every(9*time.Microsecond, func() {
		cl.Send(serverIP, 40001, 9000, 1448, host.SendOptions{}, nil)
	})

	mgr.Start()
	// Let FPS and the offload decisions converge, then measure.
	warm := 3 * time.Second
	c.Eng.RunUntil(warm)
	rxSince = warm
	rxBytes = 0
	const window = 2 * time.Second
	c.Eng.RunUntil(warm + window)
	mgr.Stop()

	achieved := float64(rxBytes) * 8 / window.Seconds()
	// The installed limits are Rs = Ls + O and Rh = Lh + O with O = 5%
	// of the aggregate each (§4.3.2), so the hard ceiling is L + 2O.
	ceiling := limitBps * 1.12
	if achieved > ceiling {
		t.Errorf("tenant exceeded purchased rate: %.1f Mbps > %.1f Mbps ceiling",
			achieved/1e6, ceiling/1e6)
	}
	// The limit must also actually bind: offered ~3 Gbps, so achieving
	// well under half the offered load proves enforcement, and the VM
	// should be able to use most of what it paid for.
	if achieved < 0.5*limitBps {
		t.Errorf("tenant throttled far below its limit: %.1f Mbps of %.1f Mbps",
			achieved/1e6, limitBps/1e6)
	}
}

// TestIsolationBetweenTenants verifies that one tenant saturating its VM
// limits does not stop another tenant's traffic from flowing ("No single
// tenant should be able to monopolize network resources", I3).
func TestIsolationBetweenTenants(t *testing.T) {
	cfg := fastCfg()
	c := cluster.New(cluster.Config{Servers: 2, VSwitchCfg: model.VSwitchConfig{Tunneling: true}, Seed: 32})
	hogCl, _ := c.AddVM(0, 3, clientIP, 4, nil)
	hogSv, _ := c.AddVM(1, 3, serverIP, 4, nil)
	quietCl, _ := c.AddVM(0, 4, clientIP, 4, nil)
	quietSv, _ := c.AddVM(1, 4, serverIP, 4, nil)
	mgr := Attach(c, cfg)
	mgr.SetVMLimit(3, clientIP, 500e6, 500e6)

	hogSv.BindApp(9000, host.AppFunc(func(*host.VM, *packet.Packet) {}))
	quietReceived := 0
	quietSv.BindApp(9000, host.AppFunc(func(*host.VM, *packet.Packet) { quietReceived++ }))

	c.Eng.Every(5*time.Microsecond, func() { // hog: ~2.3 Gbps offered
		hogCl.Send(serverIP, 40000, 9000, 1448, host.SendOptions{}, nil)
	})
	c.Eng.Every(time.Millisecond, func() { // quiet tenant: 1000 msg/s
		quietCl.Send(serverIP, 41000, 9000, 200, host.SendOptions{}, nil)
	})
	mgr.Start()
	c.Eng.RunUntil(2 * time.Second)
	mgr.Stop()

	if quietReceived < 1500 {
		t.Errorf("quiet tenant delivered only %d of ~2000 messages under a hog neighbor", quietReceived)
	}
}
