// NIC-tier placement for the TOR controller: the middle rung of the
// software → SmartNIC → TCAM ladder. The controller tracks a desired
// per-server NIC rule set (nicDesired) against what each server's demand
// report says its SmartNIC actually holds, and repairs divergence the
// same way the TCAM path does — with one structural simplification: a
// SmartNIC miss always falls back to the host's vswitch, so NIC installs
// need no barrier/announce handshake and NIC removals need no ack gating.
// The worst a lost, swept or faulted NIC rule can cost is a spell on the
// software path.
package core

import (
	"sort"

	"repro/internal/decision"
	"repro/internal/openflow"
	"repro/internal/rules"
	"repro/internal/telemetry"
)

// nicInputs assembles the per-host placement inputs for DecideTiered from
// the controller's cached NIC report sections: each NIC-bearing server's
// budget (reported free entries plus entries its desired incumbents hold,
// the same convention as the TCAM budget) and its desired pattern set,
// plus the hostOf resolver mapping a pattern to the server that sources
// its traffic. Returns (nil, nil) when no server has reported a SmartNIC
// — the tiered engine then degenerates to the 2-level one.
func (tc *TORController) nicInputs() (map[int]decision.NICState, func(rules.Pattern) (int, bool)) {
	if len(tc.nicSeen) == 0 {
		return nil, nil
	}
	desiredBy := make(map[uint32]map[rules.Pattern]bool)
	for p, s := range tc.nicDesired {
		m := desiredBy[s]
		if m == nil {
			m = make(map[rules.Pattern]bool)
			desiredBy[s] = m
		}
		m[p] = true
	}
	states := make(map[int]decision.NICState, len(tc.nicSeen))
	for id := range tc.nicSeen {
		placed := desiredBy[id]
		budget := int(tc.nicFree[id])
		for p := range placed {
			if tc.nicReported[id][p] {
				budget++ // the incumbent's entry frees if it is demoted
			}
		}
		states[int(id)] = decision.NICState{Budget: budget, Placed: placed}
	}

	// A SmartNIC rule only ever matches traffic its own host transmits, so
	// a pattern is NIC-placeable exactly when it pins the source VM (/32
	// src — exact flows and egress aggregates) and that VM's host carries
	// a SmartNIC. Wildcard-src patterns (ingress aggregates) have no
	// single sourcing host and stay on the software/TCAM rungs; both
	// flow endpoints report the same aggregate at the same rate, so a
	// report-rate vote cannot distinguish the transmitter anyway. The
	// controller tracks VM placement (it drives migration), so the
	// resolver follows a migrating VM to its new host automatically.
	hostOf := func(p rules.Pattern) (int, bool) {
		if p.AnyTenant || p.SrcPrefix != 32 {
			return 0, false
		}
		vm, ok := tc.mgr.Cluster.FindVM(p.Tenant, p.Src)
		if !ok {
			return 0, false
		}
		id := uint32(vm.Server().ID)
		if !tc.nicSeen[id] {
			return 0, false
		}
		return int(id), true
	}
	return states, hostOf
}

// applyNICTier turns the per-host NIC decisions into SmartNIC programming
// actions, each damped by the NIC tier's own flap damper. Ordering rules:
//
//   - a NIC→TCAM promotion holds the NIC rule until the TCAM install is
//     barrier-confirmed (see installConfirmed), so graduation never
//     detours through the software path;
//   - a TCAM→NIC demotion installs the NIC rule in the same tick the
//     TCAM removal is gated, so the flow lands on the NIC as soon as its
//     placer falls back;
//   - a host move (the dominant reporter changed) pulls the rule from the
//     old owner before installing on the new one.
func (tc *TORController) applyNICTier(td decision.TieredDecision, scores map[rules.Pattern]float64) {
	if len(td.NIC) == 0 {
		return
	}
	eng := tc.mgr.Cluster.Eng
	servers := make([]int, 0, len(td.NIC))
	for s := range td.NIC {
		servers = append(servers, s)
	}
	sort.Ints(servers)
	for _, s := range servers {
		id := uint32(s)
		cur := make(map[rules.Pattern]bool)
		for p, owner := range tc.nicDesired {
			if owner == id {
				cur[p] = true
			}
		}
		d := tc.nicDamper.Apply(td.NIC[s], cur, eng.Now())
		var acts []openflow.OffloadAction
		for _, p := range d.Demote {
			if owner, ok := tc.nicDesired[p]; !ok || owner != id {
				continue
			}
			if tc.installing[p] != nil {
				// NIC→TCAM promotion in flight: keep forwarding from the
				// NIC until the TCAM ACL is confirmed.
				continue
			}
			tc.nicRemove(p, id, "nic->software", scores[p])
			acts = append(acts, openflow.OffloadAction{Pattern: p, Offload: false, Tier: openflow.TierNIC})
		}
		for _, p := range d.Offload {
			if owner, ok := tc.nicDesired[p]; ok {
				if owner == id {
					continue // incumbent, already desired here
				}
				// The sourcing host moved: pull the stranded rule first.
				tc.nicRemove(p, owner, "nic->software", scores[p])
				tc.sendNICActions(owner, []openflow.OffloadAction{{Pattern: p, Offload: false, Tier: openflow.TierNIC}})
			}
			// The same compliance gate as the TCAM tier: a SmartNIC hit
			// bypasses the vswitch ACLs, so only Allow traffic may be
			// placed (§4.3's policy-compliance requirement).
			if action, _ := tc.policyFor(p); action != rules.Allow {
				continue
			}
			cause := "software->nic"
			if tc.removing[p] != nil {
				cause = "tcam->nic" // demoted out of the TCAM this tick
			}
			tc.nicDesired[p] = id
			tc.NICPlacements++
			if tc.rec != nil {
				tc.rec.EmitPattern(telemetry.KindPlacementChange, p.Tenant, p, cause, scores[p], float64(s))
			}
			acts = append(acts, openflow.OffloadAction{Pattern: p, Offload: true, Tier: openflow.TierNIC})
		}
		tc.sendNICActions(id, acts)
	}
}

// nicRemove retires p's NIC-tier placement on server s and emits the
// placement-change event; the caller sends (or batches) the removal
// action to the owning local.
func (tc *TORController) nicRemove(p rules.Pattern, s uint32, cause string, score float64) {
	delete(tc.nicDesired, p)
	tc.NICDemotes++
	if tc.rec != nil {
		tc.rec.EmitPattern(telemetry.KindPlacementChange, p.Tenant, p, cause, score, float64(s))
	}
}

// sendNICActions delivers NIC-tier actions to one server's local
// controller. NIC rules are strictly per-host — broadcasting them the way
// TCAM actions are broadcast would program every SmartNIC in the rack.
func (tc *TORController) sendNICActions(server uint32, acts []openflow.OffloadAction) {
	if len(acts) == 0 {
		return
	}
	if tr, ok := tc.toLocalByID[server]; ok {
		tr.Send(&openflow.OffloadDecision{Actions: acts,
			Term: tc.term, Origin: uint32(tc.replicaID)})
	}
}

// nicReconcile is the NIC tier's anti-entropy sweep, run on the same
// cadence as the TCAM TableRequest but against the report sections the
// locals already push (no extra control messages): desired rules missing
// from their owner's report are re-asserted (a reset or corruption fault
// wipes SmartNIC entries without telling anyone; installs are idempotent
// so a report that was merely in flight costs nothing), and reported
// rules nobody owns — crash remnants, moved patterns, lost removals —
// are swept.
func (tc *TORController) nicReconcile() {
	perServer := make(map[uint32][]openflow.OffloadAction)

	ps := make([]rules.Pattern, 0, len(tc.nicDesired))
	for p := range tc.nicDesired {
		ps = append(ps, p)
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].String() < ps[j].String() })
	for _, p := range ps {
		s := tc.nicDesired[p]
		rep, ok := tc.nicReported[s]
		if !ok || rep[p] {
			continue // no report yet, or confirmed present
		}
		tc.NICReasserts++
		if tc.rec != nil {
			tc.rec.EmitPattern(telemetry.KindRepair, p.Tenant, p, "missing-from-nic", 0, float64(s))
		}
		perServer[s] = append(perServer[s], openflow.OffloadAction{Pattern: p, Offload: true, Tier: openflow.TierNIC})
	}

	ids := make([]uint32, 0, len(tc.nicReported))
	for id := range tc.nicReported {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		var orphans []rules.Pattern
		for p := range tc.nicReported[id] {
			if owner, ok := tc.nicDesired[p]; !ok || owner != id {
				orphans = append(orphans, p)
			}
		}
		sort.Slice(orphans, func(i, j int) bool { return orphans[i].String() < orphans[j].String() })
		for _, p := range orphans {
			tc.NICOrphans++
			if tc.rec != nil {
				tc.rec.EmitPattern(telemetry.KindOrphanSweep, p.Tenant, p, "nic", 0, float64(id))
			}
			perServer[id] = append(perServer[id], openflow.OffloadAction{Pattern: p, Offload: false, Tier: openflow.TierNIC})
		}
	}

	sids := make([]uint32, 0, len(perServer))
	for id := range perServer {
		sids = append(sids, id)
	}
	sort.Slice(sids, func(i, j int) bool { return sids[i] < sids[j] })
	for _, id := range sids {
		tc.sendNICActions(id, perServer[id])
	}
}

// nicDesiredList returns the NIC tier's desired placements, sorted —
// exposed for experiments and tests.
func (tc *TORController) nicDesiredList() []rules.Pattern {
	out := make([]rules.Pattern, 0, len(tc.nicDesired))
	for p := range tc.nicDesired {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// NICPlacedPatterns returns the union of NIC-tier desired patterns across
// all ToRs of the manager, sorted and de-duplicated.
func (m *Manager) NICPlacedPatterns() []rules.Pattern {
	seen := make(map[rules.Pattern]bool)
	var out []rules.Pattern
	for _, tc := range m.TORCtls {
		for _, p := range tc.nicDesiredList() {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}
