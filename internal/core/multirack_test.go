package core

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/host"
	"repro/internal/model"
	"repro/internal/packet"
)

// multiRig builds a 2-rack testbed (2 servers per rack) with a client VM
// in rack 0 and a server VM in rack 1.
func multiRig(t *testing.T) (*cluster.Cluster, *host.VM, *host.VM) {
	t.Helper()
	c := cluster.NewMulti(cluster.MultiConfig{
		Racks: 2, ServersPerRack: 2,
		VSwitchCfg: model.VSwitchConfig{Tunneling: true},
		Seed:       41,
	})
	cl, err := c.AddVM(0, 3, clientIP, 4, nil) // rack 0
	if err != nil {
		t.Fatal(err)
	}
	sv, err := c.AddVM(2, 3, serverIP, 4, nil) // rack 1 (servers rack-major)
	if err != nil {
		t.Fatal(err)
	}
	return c, cl, sv
}

func TestMultiRackSoftwarePath(t *testing.T) {
	c, cl, sv := multiRig(t)
	received := 0
	sv.BindApp(8080, host.AppFunc(func(*host.VM, *packet.Packet) { received++ }))
	cl.Send(serverIP, 40000, 8080, 640, host.SendOptions{}, nil)
	c.Eng.Run()
	if received != 1 {
		t.Fatalf("cross-rack VXLAN delivery = %d", received)
	}
}

func TestMultiRackExpressLane(t *testing.T) {
	// Cross-rack express lane under FasTrak: both racks' TOR
	// controllers independently offload the hot service (each sees the
	// demand from its side), and GRE carries the traffic ToR-to-ToR.
	cfg := fastCfg()
	c, cl, sv := multiRig(t)
	mgr := Attach(c, cfg)
	if len(mgr.TORCtls) != 2 {
		t.Fatalf("TOR controllers = %d, want one per rack", len(mgr.TORCtls))
	}
	sv.BindApp(11211, host.AppFunc(func(vm *host.VM, p *packet.Packet) {
		vm.Send(p.IP.Src, 11211, p.TCP.SrcPort, 600, host.SendOptions{Seq: p.Meta.Seq}, nil)
	}))
	c.Eng.Every(300*time.Microsecond, func() {
		cl.Send(serverIP, 40000, 11211, 100, host.SendOptions{}, nil)
	})
	mgr.Start()
	c.Eng.RunUntil(4 * time.Second)
	mgr.Stop()

	// Both ToRs hold hardware rules for the conversation.
	if got := len(mgr.TORCtls[0].offloadedList()); got == 0 {
		t.Error("rack 0 offloaded nothing")
	}
	if got := len(mgr.TORCtls[1].offloadedList()); got == 0 {
		t.Error("rack 1 offloaded nothing")
	}
	// Express-lane traffic crossed the fabric: both ToRs saw GRE.
	_, _, _, _, greRx0, greTx0 := c.TORs[0].Counters()
	_, _, _, _, greRx1, greTx1 := c.TORs[1].Counters()
	if greTx0 == 0 || greRx1 == 0 || greTx1 == 0 || greRx0 == 0 {
		t.Errorf("GRE counters: rack0 tx=%d rx=%d, rack1 tx=%d rx=%d",
			greTx0, greRx0, greTx1, greRx1)
	}
	// And the endpoints observed express-lane arrivals.
	if sv.LatencyVF.Count() == 0 || cl.LatencyVF.Count() == 0 {
		t.Errorf("VF arrivals: server=%d client=%d", sv.LatencyVF.Count(), cl.LatencyVF.Count())
	}
	// The VF path still beats the cross-rack VIF path.
	if sv.LatencyVIF.Count() > 0 && sv.LatencyVF.Mean() >= sv.LatencyVIF.Mean() {
		t.Errorf("cross-rack express lane not faster: vf=%v vif=%v",
			sv.LatencyVF.Mean(), sv.LatencyVIF.Mean())
	}
}

func TestMultiRackMigrationAcrossRacks(t *testing.T) {
	// §4.3.3: "As VMs are migrated to servers attached to other TORs,
	// only the associated TOR controllers need to recompute offloading
	// decisions."
	cfg := fastCfg()
	c, cl, sv := multiRig(t)
	mgr := Attach(c, cfg)
	sv.BindApp(11211, host.AppFunc(func(vm *host.VM, p *packet.Packet) {
		vm.Send(p.IP.Src, 11211, p.TCP.SrcPort, 600, host.SendOptions{Seq: p.Meta.Seq}, nil)
	}))
	c.Eng.Every(300*time.Microsecond, func() {
		cl.Send(serverIP, 40000, 11211, 100, host.SendOptions{}, nil)
	})
	mgr.Start()
	c.Eng.RunUntil(2 * time.Second)
	if len(mgr.OffloadedPatterns()) == 0 {
		t.Fatal("precondition: nothing offloaded")
	}
	// Migrate the server VM from rack 1 (server 2) to rack 0 (server 1).
	if err := mgr.MigrateVM(2, 1, 3, serverIP); err != nil {
		t.Fatal(err)
	}
	moved, ok := c.FindVM(3, serverIP)
	if !ok || c.RackOf(moved.Server().ID) != 0 {
		t.Fatal("VM not homed in rack 0 after migration")
	}
	moved.BindApp(11211, host.AppFunc(func(vm *host.VM, p *packet.Packet) {
		vm.Send(p.IP.Src, 11211, p.TCP.SrcPort, 600, host.SendOptions{Seq: p.Meta.Seq}, nil)
	}))
	before, _, _, _ := moved.Counters()
	c.Eng.RunUntil(c.Eng.Now() + 2*time.Second)
	mgr.Stop()
	_, rxAfter, _, _ := moved.Counters()
	if rxAfter <= before {
		t.Error("no traffic delivered after cross-rack migration")
	}
	// The service re-offloads; now intra-rack, rack 0's controller owns
	// all the state.
	if len(mgr.OffloadedPatterns()) == 0 {
		t.Error("service not re-offloaded at the destination rack")
	}
	if got := len(mgr.TORCtls[1].offloadedList()); got != 0 {
		t.Errorf("rack 1 still holds %d offloaded patterns for a migrated VM", got)
	}
}

func TestMultiRackBudgetsAreIndependent(t *testing.T) {
	// Each ToR has its own TCAM; filling rack 0's budget must not
	// consume rack 1's (§4.3.3's scalability argument).
	c := cluster.NewMulti(cluster.MultiConfig{
		Racks: 2, ServersPerRack: 1,
		VSwitchCfg:   model.VSwitchConfig{Tunneling: true},
		TCAMCapacity: 4,
		Seed:         43,
	})
	cfg := fastCfg()
	// Rack-local service pairs: both VMs of each pair in the same rack.
	mk := func(serverIdx int, tenant packet.TenantID) (*host.VM, *host.VM) {
		a, err := c.AddVM(serverIdx, tenant, packet.MakeIP(10, byte(tenant), 0, 1), 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := c.AddVM(serverIdx, tenant, packet.MakeIP(10, byte(tenant), 0, 2), 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		b.BindApp(9000, host.AppFunc(func(vm *host.VM, p *packet.Packet) {
			vm.Send(p.IP.Src, 9000, p.TCP.SrcPort, 200, host.SendOptions{Seq: p.Meta.Seq}, nil)
		}))
		return a, b
	}
	a0, b0 := mk(0, 5) // rack 0
	a1, b1 := mk(1, 6) // rack 1
	mgr := Attach(c, cfg)
	c.Eng.Every(250*time.Microsecond, func() {
		a0.Send(b0.Key.IP, 40000, 9000, 100, host.SendOptions{}, nil)
		a1.Send(b1.Key.IP, 40000, 9000, 100, host.SendOptions{}, nil)
	})
	mgr.Start()
	c.Eng.RunUntil(3 * time.Second)
	mgr.Stop()
	if got := c.TORs[0].TCAMUsed(); got == 0 {
		t.Error("rack 0 TCAM unused")
	}
	if got := c.TORs[1].TCAMUsed(); got == 0 {
		t.Error("rack 1 TCAM unused")
	}
	// Intra-rack traffic never installs state on the other rack's ToR.
	for _, p := range mgr.TORCtls[0].offloadedList() {
		if p.Tenant == 6 {
			t.Errorf("rack 0 holds rack 1's pattern %v", p)
		}
	}
	for _, p := range mgr.TORCtls[1].offloadedList() {
		if p.Tenant == 5 {
			t.Errorf("rack 1 holds rack 0's pattern %v", p)
		}
	}
}
