package core

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/host"
	"repro/internal/measure"
	"repro/internal/model"
	"repro/internal/packet"
	"repro/internal/rules"
)

var (
	clientIP = packet.MustParseIP("10.0.0.1")
	serverIP = packet.MustParseIP("10.0.0.2")
)

// fastCfg shrinks the control timing so integration tests converge in a
// few simulated seconds.
func fastCfg() Config {
	cfg := DefaultConfig()
	cfg.Measure = measure.Config{
		SampleGap:         50 * time.Millisecond,
		Epoch:             250 * time.Millisecond,
		EpochsPerInterval: 2,
		HistoryIntervals:  4,
		Aggregate:         true,
	}
	return cfg
}

// testbed builds 2 servers with a client VM and a server VM, an echo app
// on the given port, and periodic request traffic at the given rate.
type testbed struct {
	c      *cluster.Cluster
	mgr    *Manager
	client *host.VM
	server *host.VM
}

func newTestbed(t *testing.T, cfg Config) *testbed {
	t.Helper()
	c := cluster.New(cluster.Config{
		Servers:    2,
		VSwitchCfg: model.VSwitchConfig{Tunneling: true},
		Seed:       7,
	})
	cl, err := c.AddVM(0, 3, clientIP, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	sv, err := c.AddVM(1, 3, serverIP, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	mgr := Attach(c, cfg)
	return &testbed{c: c, mgr: mgr, client: cl, server: sv}
}

// echo binds a responder on the server VM that answers every request.
func (tb *testbed) echo(port uint16, respSize int) *uint64 {
	served := new(uint64)
	tb.server.BindApp(port, host.AppFunc(func(vm *host.VM, p *packet.Packet) {
		*served++
		vm.Send(p.IP.Src, port, p.TCP.SrcPort, respSize, host.SendOptions{Seq: p.Meta.Seq}, nil)
	}))
	return served
}

// drive sends requests from the client at the given per-second rate.
func (tb *testbed) drive(srcPort, dstPort uint16, rate float64, size int) {
	period := time.Duration(float64(time.Second) / rate)
	tb.c.Eng.Every(period, func() {
		tb.client.Send(serverIP, srcPort, dstPort, size, host.SendOptions{}, nil)
	})
}

func TestOffloadsHighPPSFlow(t *testing.T) {
	// The Table 4 selection: memcached (~5 kpps) wins the single
	// hardware slot over scp (~135 pps).
	cfg := fastCfg()
	cfg.MaxOffloads = 1
	tb := newTestbed(t, cfg)
	tb.echo(11211, 600)
	tb.echo(22, 1448)
	tb.drive(40000, 11211, 3000, 100)
	tb.drive(40022, 22, 135, 1448)
	tb.mgr.Start()
	tb.c.Eng.RunUntil(3 * time.Second)
	tb.mgr.Stop()

	off := tb.mgr.OffloadedPatterns()
	if len(off) != 1 {
		t.Fatalf("offloaded %d patterns, want 1: %v", len(off), off)
	}
	// Any aggregate of the memcached conversation (requests to 11211 or
	// responses back to the client's 40000) may win the slot; the scp
	// conversation (ports 22/40022) must not.
	p := off[0]
	memcachedPorts := map[uint16]bool{11211: true, 40000: true}
	if !memcachedPorts[p.SrcPort] && !memcachedPorts[p.DstPort] {
		t.Errorf("offloaded %v, want a memcached aggregate", p)
	}
	// Traffic actually moved: VF latency samples exist at the client
	// (responses) and hardware counters advanced.
	if tb.client.LatencyVF.Count() == 0 && tb.server.LatencyVF.Count() == 0 {
		t.Error("no traffic observed on the express lane after offload")
	}
	if used := tb.c.TOR.TCAMUsed(); used != 1 {
		t.Errorf("TCAM used = %d", used)
	}
}

func TestOffloadBothDirectionsWithCapacity(t *testing.T) {
	cfg := fastCfg()
	tb := newTestbed(t, cfg)
	tb.echo(11211, 600)
	tb.drive(40000, 11211, 3000, 100)
	tb.mgr.Start()
	tb.c.Eng.RunUntil(3 * time.Second)
	tb.mgr.Stop()
	// With room, both the request (ingress) and response (egress)
	// aggregates offload, giving a bidirectional express lane.
	off := tb.mgr.OffloadedPatterns()
	if len(off) < 2 {
		t.Fatalf("offloaded %v, want both directions", off)
	}
	if tb.client.LatencyVF.Count() == 0 {
		t.Error("responses not on express lane")
	}
	if tb.server.LatencyVF.Count() == 0 {
		t.Error("requests not on express lane")
	}
}

func TestDemotionWhenTrafficStops(t *testing.T) {
	cfg := fastCfg()
	tb := newTestbed(t, cfg)
	tb.echo(11211, 600)
	stopAt := time.Second
	period := time.Second / 3000
	var tick func()
	next := func(at time.Duration) {
		if at >= stopAt {
			return
		}
		tb.c.Eng.At(at, tick)
	}
	tick = func() {
		tb.client.Send(serverIP, 40000, 11211, 100, host.SendOptions{}, nil)
		next(tb.c.Eng.Now() + period)
	}
	next(0)
	tb.mgr.Start()
	tb.c.Eng.RunUntil(time.Second)
	if len(tb.mgr.OffloadedPatterns()) == 0 {
		t.Fatal("flow not offloaded while hot")
	}
	// After the history window drains with no traffic, the DE demotes.
	tb.c.Eng.RunUntil(8 * time.Second)
	tb.mgr.Stop()
	if n := len(tb.mgr.OffloadedPatterns()); n != 0 {
		t.Errorf("%d patterns still offloaded after traffic stopped", n)
	}
	if tb.c.TOR.TCAMUsed() != 0 {
		t.Errorf("TCAM entries leaked: %d", tb.c.TOR.TCAMUsed())
	}
}

func TestTenantPriorityBiasesSelection(t *testing.T) {
	cfg := fastCfg()
	cfg.MaxOffloads = 2 // room for one bidirectional service
	cfg.PriorityOf = func(tn packet.TenantID) float64 {
		if tn == 4 {
			return 100 // tenant 4 pays for performance
		}
		return 1
	}
	c := cluster.New(cluster.Config{Servers: 2, VSwitchCfg: model.VSwitchConfig{Tunneling: true}, Seed: 7})
	// Tenant 3: hot flow; tenant 4: cooler flow but high priority.
	cl3, _ := c.AddVM(0, 3, clientIP, 4, nil)
	sv3, _ := c.AddVM(1, 3, serverIP, 4, nil)
	cl4, _ := c.AddVM(0, 4, clientIP, 4, nil)
	sv4, _ := c.AddVM(1, 4, serverIP, 4, nil)
	for _, sv := range []*host.VM{sv3, sv4} {
		sv := sv
		sv.BindApp(11211, host.AppFunc(func(vm *host.VM, p *packet.Packet) {
			vm.Send(p.IP.Src, 11211, p.TCP.SrcPort, 600, host.SendOptions{Seq: p.Meta.Seq}, nil)
		}))
	}
	mgr := Attach(c, cfg)
	c.Eng.Every(time.Millisecond, func() { // 1000/s tenant 3
		cl3.Send(serverIP, 40000, 11211, 100, host.SendOptions{}, nil)
	})
	c.Eng.Every(4*time.Millisecond, func() { // 250/s tenant 4
		cl4.Send(serverIP, 40000, 11211, 100, host.SendOptions{}, nil)
	})
	mgr.Start()
	c.Eng.RunUntil(3 * time.Second)
	mgr.Stop()
	off := mgr.OffloadedPatterns()
	if len(off) == 0 {
		t.Fatal("nothing offloaded")
	}
	for _, p := range off {
		if p.Tenant != 4 {
			t.Errorf("offloaded %v; priority tenant should win the slots", p)
		}
	}
}

func TestMigrationPullsBackAndReoffloads(t *testing.T) {
	cfg := fastCfg()
	tb := newTestbed(t, cfg)
	tb.echo(11211, 600)
	tb.drive(40000, 11211, 3000, 100)
	tb.mgr.Start()
	tb.c.Eng.RunUntil(2 * time.Second)
	if len(tb.mgr.OffloadedPatterns()) == 0 {
		t.Fatal("precondition: nothing offloaded")
	}
	// Migrate the server VM from server 1 to server 0.
	var migErr error
	tb.c.Eng.At(tb.c.Eng.Now(), func() {
		migErr = tb.mgr.MigrateVM(1, 0, 3, serverIP)
		// Immediately after the pull-back, nothing touching the VM
		// remains in hardware (§4.1.2).
		for _, p := range tb.mgr.OffloadedPatterns() {
			touches := (p.SrcPrefix == 32 && p.Src == serverIP) || (p.DstPrefix == 32 && p.Dst == serverIP)
			if touches {
				t.Errorf("pattern %v still offloaded during migration", p)
			}
		}
	})
	tb.c.Eng.RunUntil(tb.c.Eng.Now() + 3*time.Second)
	tb.mgr.Stop()
	if migErr != nil {
		t.Fatal(migErr)
	}
	// The flow re-offloads at the destination. Note both VMs are now on
	// server 0, so traffic is intra-host; the ingress aggregate may
	// stay hot via the demand profile.
	if vm, ok := tb.c.FindVM(3, serverIP); !ok || vm.Server().ID != 0 {
		t.Error("VM not on destination server")
	}
}

func TestRateSplitsInstalled(t *testing.T) {
	cfg := fastCfg()
	tb := newTestbed(t, cfg)
	tb.echo(11211, 600)
	tb.drive(40000, 11211, 2000, 1000)
	tb.mgr.SetVMLimit(3, clientIP, 1e9, 1e9)
	tb.mgr.Start()
	tb.c.Eng.RunUntil(3 * time.Second)
	tb.mgr.Stop()
	// FPS ran: the TOR controller has installed hardware limits for
	// the client VM.
	found := false
	for key := range tb.mgr.TORCtl.installedHW {
		if key.IP == clientIP && key.Tenant == 3 {
			found = true
		}
	}
	if !found {
		t.Error("no hardware rate split installed for limited VM")
	}
}

func TestControlStatsAccumulate(t *testing.T) {
	cfg := fastCfg()
	tb := newTestbed(t, cfg)
	tb.echo(11211, 600)
	tb.drive(40000, 11211, 1000, 100)
	tb.mgr.Start()
	tb.c.Eng.RunUntil(2 * time.Second)
	tb.mgr.Stop()
	msgs, bytes, samples := tb.mgr.ControlStats()
	if msgs == 0 || bytes == 0 || samples == 0 {
		t.Errorf("control stats empty: msgs=%d bytes=%d samples=%d", msgs, bytes, samples)
	}
	// Controller overhead stays modest: a few messages per interval
	// per server (§6.2.2 "controllers use negligible CPU").
	intervals := uint64(2 * time.Second / (cfg.Measure.Epoch * time.Duration(cfg.Measure.EpochsPerInterval)))
	if msgs > (intervals+2)*uint64(len(tb.c.Servers))*4 {
		t.Errorf("control messages %d implausibly high for %d intervals", msgs, intervals)
	}
}

func TestOffloadRespectsDestinationACLs(t *testing.T) {
	// A tenant VM with explicit-allow rules must not be reachable over
	// the express lane for denied ports: the TOR controller must refuse
	// to construct a blanket hardware Allow for wildcard-destination
	// aggregates when any tenant VM carries rules.
	cfg := fastCfg()
	c := cluster.New(cluster.Config{Servers: 2, VSwitchCfg: model.VSwitchConfig{Tunneling: true}, Seed: 9})
	cl, _ := c.AddVM(0, 3, clientIP, 4, nil)
	r := &rules.VMRules{Tenant: 3, VMIP: serverIP}
	r.Security = append(r.Security, rules.SecurityRule{
		Pattern: rules.Pattern{Tenant: 3, DstPort: 8080}, Action: rules.Allow, Priority: 1,
	})
	sv, _ := c.AddVM(1, 3, serverIP, 4, r)
	mgr := Attach(c, cfg)

	web, ssh := 0, 0
	sv.BindApp(8080, host.AppFunc(func(vm *host.VM, p *packet.Packet) {
		web++
		vm.Send(p.IP.Src, 8080, p.TCP.SrcPort, 200, host.SendOptions{Seq: p.Meta.Seq}, nil)
	}))
	sv.BindApp(22, host.AppFunc(func(*host.VM, *packet.Packet) { ssh++ }))
	c.Eng.Every(300*time.Microsecond, func() {
		cl.Send(serverIP, 40000, 8080, 64, host.SendOptions{}, nil)
		cl.Send(serverIP, 40001, 22, 64, host.SendOptions{}, nil)
	})
	mgr.Start()
	c.Eng.RunUntil(3 * time.Second)
	mgr.Stop()

	if ssh != 0 {
		t.Errorf("denied port delivered %d times via express lane", ssh)
	}
	if web == 0 {
		t.Fatal("allowed service received nothing")
	}
	// The allowed service's ingress aggregate still offloads: the
	// express lane works for compliant traffic.
	found := false
	for _, p := range mgr.OffloadedPatterns() {
		if p.DstPort == 8080 && p.DstPrefix == 32 {
			found = true
		}
		if p.DstPort == 22 || p.SrcPort == 40001 {
			t.Errorf("denied traffic's aggregate %v offloaded", p)
		}
	}
	if !found {
		t.Error("allowed service ingress aggregate not offloaded")
	}
}
