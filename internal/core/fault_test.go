package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/rules"
)

// hwPatterns returns the controller-priority patterns currently in the
// ToR's TCAM.
func (tb *testbed) hwPatterns() map[rules.Pattern]bool {
	out := make(map[rules.Pattern]bool)
	for _, ri := range tb.c.TOR.Rules() {
		if ri.Priority == hwPriority {
			out[ri.Pattern] = true
		}
	}
	return out
}

// TestInstallRetriesAfterTransientReject: the hardware rejects the first
// install attempts; the controller retries with backoff and the offload
// completes once the fault clears — placers are only ever redirected
// after a confirmed install.
func TestInstallRetriesAfterTransientReject(t *testing.T) {
	tb := newTestbed(t, fastCfg())
	tb.echo(11211, 600)
	tb.drive(40000, 11211, 3000, 100)

	rejects := 0
	tb.c.TOR.SetInstallFault(func() error {
		if rejects < 2 {
			rejects++
			return errors.New("transient hardware rejection")
		}
		return nil
	})

	tb.mgr.Start()
	tb.c.Eng.RunUntil(3 * time.Second)
	tb.mgr.Stop()

	tc := tb.mgr.TORCtl
	if rejects != 2 {
		t.Fatalf("install fault consulted %d times, want 2", rejects)
	}
	if tc.Retries == 0 {
		t.Error("no install retries recorded despite rejections")
	}
	if tc.Installs == 0 {
		t.Error("no confirmed installs after the fault cleared")
	}
	off := tb.mgr.OffloadedPatterns()
	if len(off) == 0 {
		t.Fatal("nothing offloaded after transient rejections cleared")
	}
	// The announced set and the hardware agree.
	hw := tb.hwPatterns()
	for _, p := range off {
		if !hw[p] {
			t.Errorf("announced pattern %v missing from hardware", p)
		}
	}
}

// TestInstallGivesUpOnPermanentReject: with the hardware permanently
// rejecting installs the controller degrades gracefully — the flow stays
// on the software path, traffic keeps flowing, and nothing is ever
// announced as offloaded.
func TestInstallGivesUpOnPermanentReject(t *testing.T) {
	tb := newTestbed(t, fastCfg())
	served := tb.echo(11211, 600)
	tb.drive(40000, 11211, 3000, 100)
	tb.c.TOR.SetInstallFault(func() error { return errors.New("permanent hardware rejection") })

	tb.mgr.Start()
	tb.c.Eng.RunUntil(3 * time.Second)
	tb.mgr.Stop()

	tc := tb.mgr.TORCtl
	if tc.GiveUps == 0 {
		t.Error("controller never gave up despite a permanent install fault")
	}
	if tb.c.TOR.InstallRejects() == 0 {
		t.Error("no rejects recorded at the hardware")
	}
	if off := tb.mgr.OffloadedPatterns(); len(off) != 0 {
		t.Errorf("announced offloads %v with hardware rejecting every install", off)
	}
	if len(tb.hwPatterns()) != 0 {
		t.Error("hardware holds offload rules despite rejecting installs")
	}
	// Graceful degradation: the software path carried the workload.
	if *served < 5000 {
		t.Errorf("echo served only %d requests; software path impaired", *served)
	}
}

// TestCrashRestartAdoptsHardware: a controller crash loses all volatile
// state while the hardware keeps forwarding; the restarted controller
// adopts the installed rules as its desired set instead of blindly
// removing them (which would blackhole flows placers still steer to the
// express lane).
func TestCrashRestartAdoptsHardware(t *testing.T) {
	tb := newTestbed(t, fastCfg())
	served := tb.echo(11211, 600)
	tb.drive(40000, 11211, 3000, 100)
	tb.mgr.Start()
	eng := tb.c.Eng
	eng.RunUntil(2 * time.Second)

	tc := tb.mgr.TORCtl
	before := tb.hwPatterns()
	if len(before) == 0 {
		t.Fatal("nothing offloaded before the crash")
	}
	servedBefore := *served

	tc.Crash()
	eng.RunUntil(3 * time.Second)
	// Hardware keeps forwarding while the controller is down.
	if *served <= servedBefore {
		t.Error("traffic stopped during the controller outage")
	}
	if len(tb.mgr.OffloadedPatterns()) != 0 {
		t.Error("crashed controller still reports offloaded patterns")
	}
	for p := range before {
		if !tb.hwPatterns()[p] {
			t.Errorf("hardware rule %v vanished during the crash (nobody removed it)", p)
		}
	}

	tc.Restart()
	// Adoption is immediate: the boot-time table dump becomes the desired
	// set.
	after := make(map[rules.Pattern]bool)
	for _, p := range tb.mgr.OffloadedPatterns() {
		after[p] = true
	}
	for p := range before {
		if !after[p] {
			t.Errorf("restarted controller did not adopt hardware rule %v", p)
		}
	}
	// And the control loop resumes: the adopted set keeps serving, and
	// the hardware still matches the desired set later on.
	eng.RunUntil(5 * time.Second)
	tb.mgr.Stop()
	if tc.Decisions == 0 {
		t.Error("decision ticker did not resume after restart")
	}
	hw := tb.hwPatterns()
	for _, p := range tb.mgr.OffloadedPatterns() {
		if !hw[p] {
			t.Errorf("desired pattern %v missing from hardware after recovery", p)
		}
	}
}

// TestRemovalWaitsForAcks: a demoted pattern's hardware ACL must survive
// until every local controller acknowledges a RuleSync excluding it — if
// the control channels are down, removal is parked (placers may still be
// steering into the express lane) and completes only after the channels
// heal and the periodic refresh collects the acks.
func TestRemovalWaitsForAcks(t *testing.T) {
	tb := newTestbed(t, fastCfg())
	tb.echo(11211, 600)
	tb.drive(40000, 11211, 3000, 100)
	tb.mgr.Start()
	eng := tb.c.Eng
	eng.RunUntil(2 * time.Second)

	tc := tb.mgr.TORCtl
	before := tb.hwPatterns()
	if len(before) == 0 {
		t.Fatal("nothing offloaded")
	}

	// Stop proposing new offloads, sever every local control channel,
	// then demote everything touching the server VM.
	tb.mgr.Cfg.MinScore = 1e18
	for _, lc := range tb.mgr.Locals {
		lc.toTOR.SetDown(true)
		lc.fromTOR.SetDown(true)
	}
	tc.demoteVM(3, serverIP)
	if len(tc.removing) == 0 {
		t.Fatal("demoteVM queued no removals")
	}

	eng.RunUntil(3 * time.Second)
	// Acks cannot arrive: the ACLs must still be installed.
	hw := tb.hwPatterns()
	for p := range tc.removing {
		if !hw[p] {
			t.Errorf("ACL %v removed while locals were unreachable (unacked)", p)
		}
	}

	// Heal the channels; the periodic RuleSync refresh collects acks and
	// the gated removals complete.
	for _, lc := range tb.mgr.Locals {
		lc.toTOR.SetDown(false)
		lc.fromTOR.SetDown(false)
	}
	eng.RunUntil(7 * time.Second)
	tb.mgr.Stop()
	if n := len(tc.removing); n != 0 {
		t.Errorf("%d removals still pending after channels healed", n)
	}
	for p := range before {
		if tb.hwPatterns()[p] {
			t.Errorf("ACL %v still in hardware after acked demotion", p)
		}
	}
}
