package core

import (
	"errors"
	"sort"

	"repro/internal/openflow"
	"repro/internal/rules"
	"repro/internal/telemetry"
	"repro/internal/tor"
)

// switchAgent is the ToR switch's management endpoint: it terminates the
// TOR controller's OpenFlow-style connection and applies rule operations
// to the hardware tables. Putting a wire protocol between the controller
// and the TCAM is what makes hardware state *asynchronous* — installs can
// be rejected (ErrorMsg), messages can be lost on a faulted channel, and
// the controller only learns the outcome through barrier confirmations
// and table read-back, exactly the failure surface internal/faults
// injects.
//
// With controller replication the agent is shared by the whole replica
// group and is where epoch fencing lives: it remembers the newest
// leadership term it has witnessed and rejects rule operations from older
// terms with ErrCodeStaleTerm, so a deposed leader — however convinced it
// still owns the rack — cannot mutate hardware.
type switchAgent struct {
	tor *tor.TOR

	// highestTerm is the newest leadership term witnessed; term 0 is the
	// HA-disabled legacy protocol and is never fenced.
	highestTerm uint32
	// actedInTerm records which replica issued FlowMods under each term.
	// Terms are partitioned across replicas ((term-1) mod N == replica
	// id), so a second origin inside one term means the fencing invariant
	// broke; TermConflicts counts such cases and must stay zero.
	actedInTerm map[uint32]uint32
	// FencedInstalls counts stale-term messages rejected.
	FencedInstalls uint64
	// TermConflicts counts terms in which two distinct origins acted.
	TermConflicts uint64

	// rec is the flight-recorder scope; nil when telemetry is disabled
	// (and in legacy deployments, which never fence).
	rec *telemetry.Scoped
}

func newSwitchAgent(t *tor.TOR) *switchAgent {
	return &switchAgent{tor: t, actedInTerm: make(map[uint32]uint32)}
}

// admitTerm applies epoch fencing to one controller message. acts marks
// messages that mutate hardware (FlowMods): those additionally record the
// term→origin binding for the split-brain invariant.
func (a *switchAgent) admitTerm(term, origin uint32, acts bool, cause string, reply openflow.ReplyFunc, xid uint32) bool {
	if term < a.highestTerm {
		a.FencedInstalls++
		if a.rec != nil {
			a.rec.Record(telemetry.Event{Kind: telemetry.KindFenceReject, Cause: cause,
				V1: float64(term), V2: float64(a.highestTerm)})
		}
		reply(&openflow.ErrorMsg{Code: openflow.ErrCodeStaleTerm}, xid)
		return false
	}
	if term > a.highestTerm {
		a.highestTerm = term
	}
	if acts && term > 0 {
		if prev, ok := a.actedInTerm[term]; !ok {
			a.actedInTerm[term] = origin
		} else if prev != origin {
			a.TermConflicts++
		}
	}
	return true
}

// HandleMessage implements openflow.Handler.
//
// FlowMod semantics are upsert/delete on the shared TCAM. A FlowAdd for a
// pattern already installed with identical priority and queue is an
// idempotent no-op — deliberately so: retries and reconciliation re-assert
// desired rules without churning the entry (and without a remove+insert
// window in which an injected install rejection could strand the table
// with the rule missing).
func (a *switchAgent) HandleMessage(msg openflow.Message, xid uint32, reply openflow.ReplyFunc) {
	switch m := msg.(type) {
	case *openflow.FlowMod:
		if !a.admitTerm(m.Term, m.Origin, true, "flowmod", reply, xid) {
			return
		}
		switch m.Command {
		case openflow.FlowAdd:
			if err := a.upsert(m); err != nil {
				code := openflow.ErrCodeRejected
				if errors.Is(err, rules.ErrTCAMFull) {
					code = openflow.ErrCodeTableFull
				}
				reply(&openflow.ErrorMsg{Code: code}, xid)
			}
		case openflow.FlowDelete:
			a.tor.RemoveACL(m.Pattern)
		}
	case *openflow.BarrierRequest:
		reply(&openflow.BarrierReply{}, xid)
	case *openflow.TableRequest:
		if !a.admitTerm(m.Term, m.Origin, false, "table-request", reply, xid) {
			return
		}
		// A table read from the live leader doubles as a liveness proof
		// for every installed rule: refresh all leases, so TCAM entries
		// expire only when the leader (or the path to it) is truly gone,
		// not when an individual refresh FlowAdd was lost.
		a.tor.RefreshAllLeases()
		reply(a.tableReply(), xid)
	case openflow.EchoRequest:
		reply(openflow.EchoReply{}, xid)
	}
}

// upsert installs the FlowMod's rule, treating an identical existing
// entry as success. The QoS queue travels in the FlowMod cookie (the
// controller's bookkeeping field) so the wire format is unchanged.
func (a *switchAgent) upsert(m *openflow.FlowMod) error {
	prio, queue := int(m.Priority), int(m.Cookie)
	for _, ri := range a.tor.Rules() {
		if ri.Pattern == m.Pattern && ri.Priority == prio && ri.Queue == queue {
			// An idempotent re-assert is exactly what a lease refresh
			// looks like: extend the entry's lease without churning it.
			a.tor.RefreshLease(m.Pattern)
			return nil
		}
	}
	// Replace any stale variant (different priority/queue) of the
	// pattern before inserting, so the table never holds duplicates.
	a.tor.RemoveACL(m.Pattern)
	return a.tor.InstallACL(&rules.TCAMEntry{
		Pattern:  m.Pattern,
		Action:   rules.Allow,
		Priority: prio,
		Queue:    queue,
	})
}

// tableReply snapshots the installed rules in deterministic order (the
// TCAM iterates in match order, which is priority-lazy and therefore
// unstable across identical runs; sorting here keeps the wire bytes — and
// so the whole simulation — reproducible).
func (a *switchAgent) tableReply() *openflow.TableReply {
	ris := a.tor.Rules()
	sort.Slice(ris, func(i, j int) bool {
		if ris[i].Priority != ris[j].Priority {
			return ris[i].Priority > ris[j].Priority
		}
		return ris[i].Pattern.String() < ris[j].Pattern.String()
	})
	out := make([]openflow.TableRule, len(ris))
	for i, ri := range ris {
		out[i] = openflow.TableRule{
			Pattern:  ri.Pattern,
			Priority: uint16(ri.Priority),
			Queue:    uint8(ri.Queue),
		}
	}
	return &openflow.TableReply{Rules: out}
}
