package core

import (
	"errors"
	"sort"

	"repro/internal/openflow"
	"repro/internal/rules"
	"repro/internal/tor"
)

// switchAgent is the ToR switch's management endpoint: it terminates the
// TOR controller's OpenFlow-style connection and applies rule operations
// to the hardware tables. Putting a wire protocol between the controller
// and the TCAM is what makes hardware state *asynchronous* — installs can
// be rejected (ErrorMsg), messages can be lost on a faulted channel, and
// the controller only learns the outcome through barrier confirmations
// and table read-back, exactly the failure surface internal/faults
// injects.
type switchAgent struct {
	tor *tor.TOR
}

func newSwitchAgent(t *tor.TOR) *switchAgent { return &switchAgent{tor: t} }

// HandleMessage implements openflow.Handler.
//
// FlowMod semantics are upsert/delete on the shared TCAM. A FlowAdd for a
// pattern already installed with identical priority and queue is an
// idempotent no-op — deliberately so: retries and reconciliation re-assert
// desired rules without churning the entry (and without a remove+insert
// window in which an injected install rejection could strand the table
// with the rule missing).
func (a *switchAgent) HandleMessage(msg openflow.Message, xid uint32, reply openflow.ReplyFunc) {
	switch m := msg.(type) {
	case *openflow.FlowMod:
		switch m.Command {
		case openflow.FlowAdd:
			if err := a.upsert(m); err != nil {
				code := openflow.ErrCodeRejected
				if errors.Is(err, rules.ErrTCAMFull) {
					code = openflow.ErrCodeTableFull
				}
				reply(&openflow.ErrorMsg{Code: code}, xid)
			}
		case openflow.FlowDelete:
			a.tor.RemoveACL(m.Pattern)
		}
	case *openflow.BarrierRequest:
		reply(&openflow.BarrierReply{}, xid)
	case *openflow.TableRequest:
		reply(a.tableReply(), xid)
	case openflow.EchoRequest:
		reply(openflow.EchoReply{}, xid)
	}
}

// upsert installs the FlowMod's rule, treating an identical existing
// entry as success. The QoS queue travels in the FlowMod cookie (the
// controller's bookkeeping field) so the wire format is unchanged.
func (a *switchAgent) upsert(m *openflow.FlowMod) error {
	prio, queue := int(m.Priority), int(m.Cookie)
	for _, ri := range a.tor.Rules() {
		if ri.Pattern == m.Pattern && ri.Priority == prio && ri.Queue == queue {
			return nil
		}
	}
	// Replace any stale variant (different priority/queue) of the
	// pattern before inserting, so the table never holds duplicates.
	a.tor.RemoveACL(m.Pattern)
	return a.tor.InstallACL(&rules.TCAMEntry{
		Pattern:  m.Pattern,
		Action:   rules.Allow,
		Priority: prio,
		Queue:    queue,
	})
}

// tableReply snapshots the installed rules in deterministic order (the
// TCAM iterates in match order, which is priority-lazy and therefore
// unstable across identical runs; sorting here keeps the wire bytes — and
// so the whole simulation — reproducible).
func (a *switchAgent) tableReply() *openflow.TableReply {
	ris := a.tor.Rules()
	sort.Slice(ris, func(i, j int) bool {
		if ris[i].Priority != ris[j].Priority {
			return ris[i].Priority > ris[j].Priority
		}
		return ris[i].Pattern.String() < ris[j].Pattern.String()
	})
	out := make([]openflow.TableRule, len(ris))
	for i, ri := range ris {
		out[i] = openflow.TableRule{
			Pattern:  ri.Pattern,
			Priority: uint16(ri.Priority),
			Queue:    uint8(ri.Queue),
		}
	}
	return &openflow.TableReply{Rules: out}
}
