// Flight-recorder and metric-registry wiring for the rule manager. One
// recorder scope per controller ("torctl/<rack>", "local/<server>", plus
// "manager" for cluster-wide episodes like VM migration) keeps control-
// plane causality — decision → FLOW_MOD → barrier confirm → announce —
// readable straight off the merged trace.
package core

import (
	"fmt"

	"repro/internal/telemetry"
)

// AttachTelemetry attaches flight-recorder scopes to every controller and
// registers the manager's counters with the central registry. Either
// argument may be nil (events-only or metrics-only attachment).
func (m *Manager) AttachTelemetry(rec *telemetry.Recorder, reg *telemetry.Registry) {
	m.rec = rec.Scope("manager")
	for r, rack := range m.RackCtls {
		for i, tc := range rack {
			// Replica 0 keeps the legacy scope and label so single-
			// instance deployments trace and export identically.
			scope := fmt.Sprintf("torctl/%d", r)
			lbl := fmt.Sprintf("rack=%d", r)
			if i > 0 {
				scope = fmt.Sprintf("torctl/%d.%d", r, i)
			}
			if len(rack) > 1 {
				lbl = fmt.Sprintf("rack=%d,replica=%d", r, i)
			}
			tc.rec = rec.Scope(scope)
			tc.registerMetrics(reg, lbl)
		}
		if m.haEnabled() {
			m.agents[r].rec = rec.Scope(fmt.Sprintf("switch/%d", r))
		}
	}
	for i, lc := range m.Locals {
		lc.rec = rec.Scope(fmt.Sprintf("local/%d", i))
		lc.registerMetrics(reg, fmt.Sprintf("server=%d", i))
		if n := lc.server.SmartNIC; n != nil {
			n.SetRecorder(rec.Scope(fmt.Sprintf("nic/%d", i)))
			n.RegisterMetrics(reg, fmt.Sprintf("server=%d", i))
		}
	}
}

func (tc *TORController) registerMetrics(reg *telemetry.Registry, labels ...string) {
	if reg == nil {
		return
	}
	lbl := func(extra ...string) []string {
		return append(append([]string(nil), labels...), extra...)
	}
	reg.Counter("fastrak_torctl_decisions_total", "DE runs", &tc.Decisions, lbl()...)
	reg.Counter("fastrak_torctl_installs_total", "barrier-confirmed hardware installs", &tc.Installs, lbl()...)
	reg.Counter("fastrak_torctl_retries_total", "install re-sends after rejection or timeout", &tc.Retries, lbl()...)
	reg.Counter("fastrak_torctl_giveups_total", "installs abandoned after the attempt budget", &tc.GiveUps, lbl()...)
	reg.Counter("fastrak_torctl_repairs_total", "desired rules reconciliation re-asserted", &tc.Repairs, lbl()...)
	reg.Counter("fastrak_torctl_orphans_total", "unowned hardware rules swept", &tc.Orphans, lbl()...)
	reg.Counter("fastrak_torctl_crashes_total", "controller crashes", &tc.Crashes, lbl()...)
	reg.Counter("fastrak_torctl_demotes_total", "confirmed patterns demoted to software", &tc.Demotes, lbl()...)
	reg.Counter("fastrak_torctl_stats_gaps_total", "skipped demand-report interval sequence numbers", &tc.StatsGaps, lbl()...)
	reg.Counter("fastrak_torctl_hints_total", "overload hints received", &tc.Hints, lbl()...)
	reg.Counter("fastrak_torctl_nic_placements_total", "NIC-tier rule placements", &tc.NICPlacements, lbl()...)
	reg.Counter("fastrak_torctl_nic_demotes_total", "NIC-tier rule retirements", &tc.NICDemotes, lbl()...)
	reg.Counter("fastrak_torctl_nic_reasserts_total", "desired NIC rules re-asserted after vanishing", &tc.NICReasserts, lbl()...)
	reg.Counter("fastrak_torctl_nic_orphans_total", "unowned NIC rules swept", &tc.NICOrphans, lbl()...)
	reg.Gauge("fastrak_torctl_nic_desired", "NIC-tier desired placements", func() float64 { return float64(len(tc.nicDesired)) }, lbl()...)
	reg.Gauge("fastrak_torctl_offloaded", "barrier-confirmed hardware patterns", func() float64 { return float64(len(tc.offloaded)) }, lbl()...)
	reg.Gauge("fastrak_torctl_installing", "installs awaiting barrier confirmation", func() float64 { return float64(len(tc.installing)) }, lbl()...)
	reg.Gauge("fastrak_torctl_removing", "demoted patterns awaiting gated ACL removal", func() float64 { return float64(len(tc.removing)) }, lbl()...)
	// The damper is replaced on Crash, so read through tc rather than
	// capturing the current instance's field addresses.
	reg.Register(telemetry.Metric{Name: "fastrak_torctl_flap_transitions_total",
		Help: "penalized offload-state transitions", Type: telemetry.TypeCounter, Labels: lbl(),
		Read: func() float64 { return float64(tc.damper.Transitions) }})
	reg.Register(telemetry.Metric{Name: "fastrak_torctl_flap_suppressions_total",
		Help: "offload-state transitions vetoed by the damper", Type: telemetry.TypeCounter, Labels: lbl(),
		Read: func() float64 { return float64(tc.damper.Suppressions) }})
	// HA metrics are registered only when the machinery is active, so
	// legacy deployments' exports stay byte-identical.
	if tc.mgr.haEnabled() {
		reg.Counter("fastrak_torctl_elections_total", "leadership takeovers by this replica", &tc.Elections, lbl()...)
		reg.Counter("fastrak_torctl_stepdowns_total", "leaderships abandoned", &tc.StepDowns, lbl()...)
		reg.Counter("fastrak_torctl_fenced_out_total", "stale-term rejections received from the switch", &tc.FencedOut, lbl()...)
		reg.Counter("fastrak_torctl_pauses_total", "process freezes injected", &tc.Pauses, lbl()...)
		reg.Counter("fastrak_torctl_lease_refreshes_total", "lease-extending rule re-asserts sent", &tc.LeaseRefreshes, lbl()...)
		reg.Counter("fastrak_torctl_degraded_demotes_total", "offloads pulled back by the hw-staleness guard", &tc.DegradedDemotes, lbl()...)
		reg.Gauge("fastrak_torctl_term", "current leadership term", func() float64 { return float64(tc.term) }, lbl()...)
		reg.Gauge("fastrak_torctl_is_leader", "1 while acting as leader", func() float64 {
			if tc.isLeader && !tc.crashed && !tc.paused {
				return 1
			}
			return 0
		}, lbl()...)
	}
}

func (lc *LocalController) registerMetrics(reg *telemetry.Registry, labels ...string) {
	if reg == nil {
		return
	}
	lbl := func(extra ...string) []string {
		return append(append([]string(nil), labels...), extra...)
	}
	reg.Counter("fastrak_local_flowmods_total", "placer programming operations", &lc.FlowMods, lbl()...)
	reg.Counter("fastrak_local_nicmods_total", "SmartNIC table programming operations", &lc.NICMods, lbl()...)
	reg.Counter("fastrak_local_hints_total", "overload-signal transitions forwarded to the TOR DE", &lc.Hints, lbl()...)
	reg.Counter("fastrak_local_me_samples_total", "datapath samples taken by the ME", &lc.me.Samples, lbl()...)
	reg.Counter("fastrak_local_me_reports_lost_total", "demand reports dropped by the stats fault surface", &lc.me.ReportsLost, lbl()...)
	reg.Counter("fastrak_local_me_reports_delayed_total", "demand reports delayed by the stats fault surface", &lc.me.ReportsDelayed, lbl()...)
	reg.Gauge("fastrak_local_placements", "placer redirection rules installed", func() float64 { return float64(len(lc.installed)) }, lbl()...)
	if lc.mgr.haEnabled() {
		reg.Counter("fastrak_local_fenced_msgs_total", "stale-term control messages dropped", &lc.FencedMsgs, lbl()...)
		reg.Counter("fastrak_local_placer_expiries_total", "placements expired by the lease fail-safe", &lc.PlacerExpiries, lbl()...)
	}
}
