// Package core implements FasTrak's rule manager — the paper's primary
// contribution (§4.3): "a distributed system of controllers ... a local
// controller for every physical server, and a TOR controller for every
// TOR switch". Local controllers measure VM network demand by polling the
// vswitch datapath and program flow placers; the TOR controller merges
// demand reports with hardware counters, selects the most-frequently-used
// high-pps flows for offload within the ToR's rule budget, and manages the
// hardware rule set (ACLs, tunnel mappings, QoS, rate limits) as one
// unified set with the software rules.
//
// All controller communication uses the binary control protocol of
// internal/openflow over deterministic in-simulation transports, so every
// control exchange round-trips through real wire encoding.
package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/decision"
	"repro/internal/faults"
	"repro/internal/measure"
	"repro/internal/openflow"
	"repro/internal/packet"
	"repro/internal/rules"
	"repro/internal/sketch"
	"repro/internal/telemetry"
	"repro/internal/vswitch"
)

// Config parameterizes the rule manager.
type Config struct {
	// Measure configures each ME (epoch T, sample gap t, N, M,
	// aggregation policy).
	Measure measure.Config
	// ControlDelay is the one-way latency of control-plane messages
	// (controller ↔ controller and controller ↔ flow placer).
	ControlDelay time.Duration
	// MinScore filters flows not worth a hardware entry.
	MinScore float64
	// HysteresisRatio guards against offload thrashing (≥1).
	HysteresisRatio float64
	// MaxOffloads caps how many patterns may be in hardware at once
	// (0 = limited only by TCAM capacity). The paper's Table 4
	// experiment runs with a cap of 1 ("we have modified FasTrak to
	// offload only one").
	MaxOffloads int
	// PriorityOf returns the tenant preference multiplier c (§4.3.2);
	// nil means 1 for everyone.
	PriorityOf func(packet.TenantID) float64
	// Groups lists all-or-nothing pattern sets — tenant preferences for
	// partition-aggregate applications whose flows must be "handled in
	// hardware, or none at all" (§4.3.2). SetAtomicGroup appends.
	Groups [][]rules.Pattern

	// NICMinScore filters flows not worth a SmartNIC entry on the middle
	// tier of the software → SmartNIC → TCAM ladder (active only when
	// servers carry SmartNICs; see cluster.Config.SmartNIC).
	NICMinScore float64
	// NICHysteresisRatio guards the NIC tier against thrashing; values
	// below 1 inherit HysteresisRatio.
	NICHysteresisRatio float64
	// NICTenantQuota caps NIC rules per tenant per host (0 = no quota),
	// mirroring the device-side quota in smartnic.Config so the DE does
	// not place rules the NIC would reject.
	NICTenantQuota int

	// RetryBase seeds the exponential backoff between hardware-install
	// retries (default 4×ControlDelay). Jitter of up to one RetryBase is
	// drawn from the simulation RNG.
	RetryBase time.Duration
	// MaxInstallAttempts caps install (re)sends before the controller
	// gives up and leaves the flow on the software path (default 5).
	MaxInstallAttempts int
	// InstallTimeout bounds waiting for a barrier confirmation before an
	// install or removal is re-issued (default 8×ControlDelay; must
	// exceed the control round trip).
	InstallTimeout time.Duration
	// DemoteGrace is the minimum delay between demoting a pattern and
	// removing its hardware ACL, covering placer reprogramming and
	// express-lane packets already in flight (default 4×ControlDelay).
	DemoteGrace time.Duration

	// Damper configures BGP-style flap damping of offload-state
	// transitions, layered on HysteresisRatio (zero value = defaults; see
	// internal/decision/damper.go).
	Damper decision.DamperConfig
	// Smoother configures staleness-aware smoothing of offload
	// candidates across control intervals (zero value = defaults).
	Smoother decision.SmootherConfig

	// SketchAccounting switches each local controller's measurement feed
	// from exact per-flow datapath snapshots to the streaming heavy-hitter
	// accountant of internal/sketch (count-min + space-saving top-k): the
	// vswitch fast path accrues into the sketch as packets classify, and
	// the ME samples the top-k pattern report instead of walking every
	// exact-cache entry. Demand reports carry an openflow.SketchMeta tail
	// and the TOR decision engine re-ranks incrementally. Off (the
	// default) preserves the exact path byte for byte — it remains the
	// differential-testing oracle.
	SketchAccounting bool
	// Sketch parameterizes the accountant when SketchAccounting is set
	// (zero value = sketch defaults: k=1024, 2048×4 counters). The
	// Aggregate knob is overridden to match Measure.Aggregate so sketch
	// and exact modes key statistics identically.
	Sketch sketch.Config

	// HA configures control-plane high availability: hot-standby TOR
	// controller replicas with epoch-fenced leader election, and lease-
	// based fail-safe expiry of hardware placements. The zero value (one
	// replica, no leases) reproduces the original single-controller
	// manager byte for byte.
	HA HAConfig
}

// HAConfig parameterizes the control-plane high-availability machinery.
type HAConfig struct {
	// Replicas is the number of TOR controller instances per rack (≤1
	// means a single instance with no election machinery). Replica 0
	// bootstraps as leader; on its failure the lowest-id alive replica
	// takes over. Leadership terms are partitioned across replicas —
	// replica i only claims terms with (term-1) mod Replicas == i — so
	// two replicas can never lead under the same term; the switch agent
	// fences stale terms, making election purely a liveness concern.
	Replicas int
	// LeaseTTL enables lease-based fail-safe rules when > 0: every TCAM
	// and SmartNIC placement expires back to the software path unless the
	// leader's reconcile traffic refreshes it, and flow placers stop
	// steering into the express lane after LeaseTTL/2 without leader
	// contact — strictly before the hardware rules expire, so an orphaned
	// lane degrades to software instead of blackholing. Must exceed two
	// reconcile periods (8 control intervals) so a healthy leader always
	// refreshes in time.
	LeaseTTL time.Duration
	// HeartbeatEvery is the leader heartbeat period (default: half a
	// control interval).
	HeartbeatEvery time.Duration
	// ElectionTimeout is the base silence before a standby claims
	// leadership (default: two control intervals). Each replica adds a
	// stagger of replicaID × HeartbeatEvery so the lowest-id alive
	// replica claims first.
	ElectionTimeout time.Duration
}

// DefaultConfig returns the prototype's settings (§5.2) with a fast
// epoch.
func DefaultConfig() Config {
	return Config{
		Measure:         measure.DefaultConfig(),
		ControlDelay:    100 * time.Microsecond,
		HysteresisRatio: 1.2,
	}
}

// Manager is a FasTrak deployment over a cluster: one TOR controller per
// ToR switch and one local controller per server (§4.3.3: "There is a
// local controller for every physical server ... and a TOR controller for
// every TOR switch"). Each local controller coordinates only with its
// rack's TOR controller, keeping decisions rack-local and the rule
// manager "inherently scalable".
type Manager struct {
	Cluster *cluster.Cluster
	Cfg     Config

	// TORCtl is rack 0's primary controller (the only one on single-rack
	// clusters); TORCtls lists every rack's primary (replica 0), and
	// RackCtls every rack's full replica group — with HA disabled each
	// group has exactly one member and RackCtls[r][0] == TORCtls[r].
	TORCtl   *TORController
	TORCtls  []*TORController
	RackCtls [][]*TORController
	Locals   []*LocalController

	// agents holds each rack's switch agent (shared by the rack's replica
	// group — fencing lives switch-side, not per-connection).
	agents []*switchAgent

	// limits registers tenant-purchased aggregate rates per VM.
	limits map[vswitch.VMKey]aggregateLimit

	// rec is the manager-level flight-recorder scope (migration episodes);
	// nil when telemetry is disabled.
	rec *telemetry.Scoped

	started bool
}

type aggregateLimit struct {
	egressBps, ingressBps float64
}

// normalizeConfig fills the config's derived defaults. Attach and the
// split-service constructors (NewTORService, NewAgentService) share it so
// a parameter set means the same thing in-sim and as daemons.
func normalizeConfig(cfg Config) Config {
	if cfg.ControlDelay <= 0 {
		cfg.ControlDelay = 100 * time.Microsecond
	}
	if cfg.HysteresisRatio < 1 {
		cfg.HysteresisRatio = 1
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 4 * cfg.ControlDelay
	}
	if cfg.MaxInstallAttempts <= 0 {
		cfg.MaxInstallAttempts = 5
	}
	if cfg.InstallTimeout <= 0 {
		cfg.InstallTimeout = 8 * cfg.ControlDelay
	}
	if cfg.DemoteGrace <= 0 {
		cfg.DemoteGrace = 4 * cfg.ControlDelay
	}
	if cfg.NICHysteresisRatio < 1 {
		cfg.NICHysteresisRatio = cfg.HysteresisRatio
	}
	if cfg.HA.Replicas < 1 {
		cfg.HA.Replicas = 1
	}
	return cfg
}

// Attach builds a rule manager over the cluster. Call Start to begin
// measurement and offloading.
func Attach(c *cluster.Cluster, cfg Config) *Manager {
	cfg = normalizeConfig(cfg)
	m := &Manager{
		Cluster: c,
		Cfg:     cfg,
		limits:  make(map[vswitch.VMKey]aggregateLimit),
	}
	haOn := cfg.HA.Replicas > 1 || cfg.HA.LeaseTTL > 0
	for _, t := range c.TORs {
		if cfg.HA.LeaseTTL > 0 {
			t.SetLeaseTTL(cfg.HA.LeaseTTL)
		}
		// One switch agent per rack, shared by the whole replica group:
		// epoch fencing is a property of the switch, not of any one
		// control connection.
		agent := newSwitchAgent(t)
		var rack []*TORController
		for i := 0; i < cfg.HA.Replicas; i++ {
			tc := newTORController(m, t)
			tc.replicaID = i
			if haOn {
				// Replica 0 bootstraps as leader of term 1 (its residue
				// class); standbys start as its followers.
				tc.term = 1
			}
			tc.isLeader = i == 0
			tc.agent = agent
			// Control connection TOR controller ↔ the switch's management
			// agent: rule installs round-trip real wire encoding and are
			// only trusted once barrier-confirmed.
			tc.toSwitch, tc.fromSwitch = openflow.Pair(c.Eng, cfg.ControlDelay, tc, agent)
			rack = append(rack, tc)
		}
		// Pairwise election channels between replicas (heartbeats and
		// term gossip) — independently faultable, so a severed pair can
		// manufacture the dueling-leaders case fencing exists for.
		for i := 0; i < len(rack); i++ {
			for j := i + 1; j < len(rack); j++ {
				toJ, toI := openflow.Pair(c.Eng, cfg.ControlDelay, rack[i], rack[j])
				rack[i].toPeers[j] = toJ
				rack[j].toPeers[i] = toI
			}
		}
		m.RackCtls = append(m.RackCtls, rack)
		m.TORCtls = append(m.TORCtls, rack[0])
		m.agents = append(m.agents, agent)
	}
	m.TORCtl = m.TORCtls[0]
	for idx, srv := range c.Servers {
		lc := newLocalController(m, srv)
		lc.rack = c.RackOf(idx)
		m.Locals = append(m.Locals, lc)
		// Bidirectional control channel local ↔ each of the rack's TOR
		// controller replicas (reports are broadcast so standbys stay
		// warm; only the leader answers).
		for _, tc := range m.RackCtls[lc.rack] {
			toTOR, toLocal := openflow.Pair(c.Eng, cfg.ControlDelay, lc, tc)
			lc.toTORs = append(lc.toTORs, toTOR)
			lc.fromTORs = append(lc.fromTORs, toLocal)
			tc.toLocals = append(tc.toLocals, toLocal)
			tc.localIDs = append(tc.localIDs, uint32(srv.ID))
			tc.toLocalByID[uint32(srv.ID)] = toLocal
		}
		lc.toTOR = lc.toTORs[0]
		lc.fromTOR = lc.fromTORs[0]
	}
	return m
}

// haEnabled reports whether any HA machinery (replication or leases) is
// active; when false the manager behaves exactly like the original
// single-controller implementation.
func (m *Manager) haEnabled() bool {
	return m.Cfg.HA.Replicas > 1 || m.Cfg.HA.LeaseTTL > 0
}

// Replicas returns rack r's controller replica group (index 0 is the
// bootstrap leader).
func (m *Manager) Replicas(r int) []*TORController { return m.RackCtls[r] }

// LeaderOf returns rack r's current acting leader, or nil during an
// election gap (or while every replica is crashed/paused).
func (m *Manager) LeaderOf(r int) *TORController {
	for _, tc := range m.RackCtls[r] {
		if tc.isLeader && !tc.crashed && !tc.paused {
			return tc
		}
	}
	return nil
}

// FenceStats sums the switch agents' fencing counters across racks:
// messages rejected for carrying a stale leadership term, and — the
// split-brain invariant, which must stay zero — terms in which two
// different controller replicas acted.
func (m *Manager) FenceStats() (fenced, termConflicts uint64) {
	for _, a := range m.agents {
		fenced += a.FencedInstalls
		termConflicts += a.TermConflicts
	}
	return
}

// RegisterFaults names the rule manager's fault surfaces on the injector:
// channel "local<i>-tor" is server i's control connection to its rack's
// primary TOR controller, "torctl<r>-switch" is rack r's primary
// controller↔switch-agent connection, table "tor<r>" is rack r's TCAM
// install path, and controller "torctl<r>" is rack r's crashable TOR
// controller process. Each server's measurement engine is additionally
// registered as stats tap "stats<i>" so plans can lose or delay its
// demand reports.
//
// With controller replication the extra replicas get suffixed names
// ("torctl<r>.<i>", "torctl<r>.<i>-switch", "local<s>-tor.<i>"), the
// pairwise election channels become "elect<r>.<i>-<j>", and every replica
// is additionally registered as a partitionable node (symmetric and
// asymmetric network partitions) and as a pausable process.
func (m *Manager) RegisterFaults(inj *faults.Injector) {
	for i, lc := range m.Locals {
		for j, tr := range lc.toTORs {
			name := fmt.Sprintf("local%d-tor", i)
			if j > 0 {
				name = fmt.Sprintf("local%d-tor.%d", i, j)
			}
			inj.RegisterChannel(name, tr, lc.fromTORs[j])
		}
		inj.RegisterStatsTap(fmt.Sprintf("stats%d", i), lc.me)
	}
	for r, rack := range m.RackCtls {
		inj.RegisterTable(fmt.Sprintf("tor%d", r), rack[0].tor)
		for i, tc := range rack {
			base := fmt.Sprintf("torctl%d", r)
			if i > 0 {
				base = fmt.Sprintf("torctl%d.%d", r, i)
			}
			inj.RegisterChannel(base+"-switch", tc.toSwitch, tc.fromSwitch)
			inj.RegisterController(base, tc)
			inj.RegisterPausable(base, tc)
			// Partition surface: every channel direction delivering to
			// (inbound) or sent by (outbound) this replica — switch
			// connection, local-controller connections, election peers.
			var in, out []faults.Channel
			in = append(in, tc.fromSwitch)
			out = append(out, tc.toSwitch)
			for _, lc := range m.Locals {
				if lc.rack == r {
					in = append(in, lc.toTORs[i])
				}
			}
			for _, tr := range tc.toLocals {
				out = append(out, tr)
			}
			for j, other := range rack {
				if j == i {
					continue
				}
				in = append(in, other.toPeers[i])
				out = append(out, tc.toPeers[j])
			}
			inj.RegisterPartition(base, in, out)
		}
		for i := 0; i < len(rack); i++ {
			for j := i + 1; j < len(rack); j++ {
				inj.RegisterChannel(fmt.Sprintf("elect%d.%d-%d", r, i, j),
					rack[i].toPeers[j], rack[j].toPeers[i])
			}
		}
	}
}

// Start begins periodic measurement and decision-making.
func (m *Manager) Start() {
	if m.started {
		return
	}
	m.started = true
	for _, lc := range m.Locals {
		lc.start()
	}
	for _, rack := range m.RackCtls {
		for _, tc := range rack {
			tc.start()
		}
	}
}

// Stop halts all controllers.
func (m *Manager) Stop() {
	if !m.started {
		return
	}
	m.started = false
	for _, lc := range m.Locals {
		lc.stop()
	}
	for _, rack := range m.RackCtls {
		for _, tc := range rack {
			tc.stop()
		}
	}
}

// SetAtomicGroup registers an all-or-nothing offload group (§4.3.2): the
// DE offloads all the given patterns together or none of them.
func (m *Manager) SetAtomicGroup(patterns []rules.Pattern) {
	m.Cfg.Groups = append(m.Cfg.Groups, patterns)
}

// SetVMLimit registers a VM's purchased aggregate transmit/receive rates
// (requirement I3). FasTrak splits them across VIF and VF with FPS every
// control interval.
func (m *Manager) SetVMLimit(tenant packet.TenantID, vmIP packet.IP, egressBps, ingressBps float64) {
	key := vswitch.VMKey{Tenant: tenant, IP: vmIP}
	m.limits[key] = aggregateLimit{egressBps: egressBps, ingressBps: ingressBps}
	// Until the first FPS interval, install a conservative even split.
	for _, lc := range m.Locals {
		if _, ok := lc.server.VMs[key]; ok {
			lc.installInitialSplit(key, egressBps, ingressBps)
		}
	}
}

// MigrateVM performs the §4.1.2 migration protocol: offloaded flows are
// first returned to the hypervisor, the network demand profile travels
// with the VM, and after the move the flows become eligible for offload
// at the destination.
func (m *Manager) MigrateVM(fromIdx, toIdx int, tenant packet.TenantID, vmIP packet.IP) error {
	if m.rec != nil {
		m.rec.Record(telemetry.Event{
			Kind: telemetry.KindMigrationStart, Tenant: tenant,
			Cause: fmt.Sprintf("%d:%s", tenant, vmIP),
			V1:    float64(fromIdx), V2: float64(toIdx),
		})
	}
	// 1. Pull every offloaded rule touching this VM back to software —
	// at every rack, since remote racks hold the matching ACLs for
	// cross-rack express lanes. Every replica is asked; only the acting
	// leaders do anything.
	for _, rack := range m.RackCtls {
		for _, tc := range rack {
			tc.demoteVM(tenant, vmIP)
		}
	}
	// 2. Export the demand profile from the source local controller.
	var prof measure.Profile
	if fromIdx >= 0 && fromIdx < len(m.Locals) {
		prof = m.Locals[fromIdx].me.ProfileFor(tenant, vmIP)
	}
	// 3. Move the VM (tunnel mappings update at source and destination).
	if _, err := m.Cluster.MoveVM(fromIdx, toIdx, tenant, vmIP); err != nil {
		return err
	}
	// 4. Seed the destination ME so re-offload can happen on the next
	// control interval ("This network demand profile informs FasTrak of
	// the network characteristics of any new VM", §4.3.1).
	if toIdx >= 0 && toIdx < len(m.Locals) {
		m.Locals[toIdx].me.ImportProfile(prof)
	}
	if m.rec != nil {
		m.rec.Record(telemetry.Event{
			Kind: telemetry.KindMigrationEnd, Tenant: tenant,
			Cause: fmt.Sprintf("%d:%s", tenant, vmIP),
			V1:    float64(fromIdx), V2: float64(toIdx),
		})
	}
	return nil
}

// OffloadedPatterns returns the union of patterns currently placed in
// hardware across all ToRs, sorted and de-duplicated.
func (m *Manager) OffloadedPatterns() []rules.Pattern {
	seen := make(map[rules.Pattern]bool)
	var out []rules.Pattern
	for _, rack := range m.RackCtls {
		// Only the acting leader holds a desired set (step-down clears
		// it), so the union over replicas is the union over leaders.
		for _, tc := range rack {
			for _, p := range tc.offloadedList() {
				if !seen[p] {
					seen[p] = true
					out = append(out, p)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// Transports returns every control-plane transport in the deployment:
// each local controller's two directions to its TOR controller and each
// TOR controller's two directions to its switch agent. Useful for
// summing fault-injected drops.
func (m *Manager) Transports() []*openflow.Transport {
	var out []*openflow.Transport
	for _, lc := range m.Locals {
		for i := range lc.toTORs {
			out = append(out, lc.toTORs[i], lc.fromTORs[i])
		}
	}
	for _, rack := range m.RackCtls {
		for _, tc := range rack {
			out = append(out, tc.toSwitch, tc.fromSwitch)
		}
		for i := 0; i < len(rack); i++ {
			for j := i + 1; j < len(rack); j++ {
				out = append(out, rack[i].toPeers[j], rack[j].toPeers[i])
			}
		}
	}
	return out
}

// ControlStats reports control-plane work done so far: messages and
// bytes on all transports, ME samples taken (§6.2.2's controller cost).
func (m *Manager) ControlStats() (messages, bytes, samples uint64) {
	for _, lc := range m.Locals {
		for _, tr := range lc.toTORs {
			messages += tr.Sent
			bytes += tr.SentBytes
		}
		samples += lc.me.Samples
	}
	for _, rack := range m.RackCtls {
		for _, tc := range rack {
			for _, tr := range tc.toLocals {
				messages += tr.Sent
				bytes += tr.SentBytes
			}
			// Election heartbeats and term gossip are control-plane
			// coordination too (zero with HA disabled).
			for _, tr := range tc.toPeers {
				messages += tr.Sent
				bytes += tr.SentBytes
			}
		}
	}
	return
}

// SwitchStats reports the hardware-programming channel's work (FlowMods,
// barriers, table reads and their replies between each TOR controller and
// its switch agent) — kept separate from ControlStats, whose coordination
// messages the §6.2.2 overhead accounting covers.
func (m *Manager) SwitchStats() (messages, bytes uint64) {
	for _, rack := range m.RackCtls {
		for _, tc := range rack {
			messages += tc.toSwitch.Sent + tc.fromSwitch.Sent
			bytes += tc.toSwitch.SentBytes + tc.fromSwitch.SentBytes
		}
	}
	return
}
