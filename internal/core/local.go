package core

import (
	"sort"
	"time"

	"repro/internal/decision"
	"repro/internal/fabric"
	"repro/internal/fps"
	"repro/internal/host"
	"repro/internal/measure"
	"repro/internal/openflow"
	"repro/internal/rules"
	"repro/internal/sim"
	"repro/internal/sketch"
	"repro/internal/telemetry"
	"repro/internal/vswitch"
)

// LocalController runs on each physical server (§4.3): its ME polls the
// vswitch datapath for active-flow statistics; its DE programs co-resident
// VMs' flow placers with redirection rules and computes the FPS rate-limit
// split for each VM's interface pair.
type LocalController struct {
	mgr    *Manager
	server *host.Server
	me     *measure.Engine
	// toTOR/fromTOR is the control connection to the rack's primary TOR
	// controller (replica 0); toTORs/fromTORs cover the whole replica
	// group — reports and acks are broadcast so hot standbys stay warm,
	// and the fenced term decides whose decisions are obeyed. With HA
	// disabled the slices hold exactly the primary pair.
	toTOR    *openflow.Transport
	fromTOR  *openflow.Transport
	toTORs   []*openflow.Transport
	fromTORs []*openflow.Transport
	// rack is this server's rack index (for fault registration).
	rack int

	// limiters holds per-VM FPS state.
	limiters map[vswitch.VMKey]*decision.Limiter
	// lastHW caches the TOR's latest hardware-rate observations.
	lastHW map[vswitch.VMKey]openflow.VMRate
	// pendingSplits carries computed hardware limits to the TOR in the
	// next demand report.
	pendingSplits []openflow.RateSplit
	// installed tracks placer rules this controller installed, per
	// pattern, so demotions delete exactly what was added.
	installed map[rules.Pattern]bool
	// lastSyncSeq is the highest RuleSync sequence applied; stale
	// (reordered) syncs are not re-applied but are re-acked.
	lastSyncSeq uint32
	// termSeen is the newest leadership term witnessed; decisions and
	// syncs from older terms are dropped (a deposed leader must not
	// reprogram placers) and a newer term resets the RuleSync sequence
	// space — each leader numbers its syncs independently.
	termSeen uint32
	// lastLeaderContact and leaseTicker drive the placer-side lease
	// fail-safe: half a LeaseTTL without a current-term leader message
	// expires every placement back to the software path — strictly
	// before the TCAM rules expire at a full TTL, so an orphaned express
	// lane degrades instead of blackholing.
	lastLeaderContact sim.Time
	leaseTicker       *sim.Ticker
	// ackPending is set while a SyncAck is deferred behind a non-empty
	// uplink queue; see scheduleAck.
	ackPending bool

	// FlowMods counts placer programming operations (controller cost).
	FlowMods uint64
	// NICMods counts SmartNIC table programming operations.
	NICMods uint64
	// Hints counts overload-signal transitions forwarded to the TOR DE.
	Hints uint64
	// FencedMsgs counts stale-term control messages dropped.
	FencedMsgs uint64
	// PlacerExpiries counts placements expired by the lease fail-safe.
	PlacerExpiries uint64

	// acct is the streaming heavy-hitter accountant; non-nil only in
	// sketch accounting mode (Config.SketchAccounting), where it replaces
	// the exact datapath walk as the ME's statistics feed.
	acct *sketch.Accountant

	// OnPlacement, when set, fires after a placer redirect is installed
	// (installed=true) or removed (installed=false). The split
	// AgentService (internal/service daemons) uses it to mirror the
	// express-lane ACL into the host-side data-path model, which stands in
	// for the physical ToR the remote decision engine programs. Nil in
	// single-process deployments.
	OnPlacement func(p rules.Pattern, installed bool)
	// AugmentReport, when set, may extend an outgoing demand report
	// before it is chunked. The split AgentService appends express-lane
	// counter entries measured host-side, which a remote TOR controller
	// cannot read from its own TCAM. Nil in single-process deployments.
	AugmentReport func(rep *openflow.DemandReport)

	// rec is the flight-recorder scope; nil when telemetry is disabled.
	rec *telemetry.Scoped
}

func newLocalController(m *Manager, srv *host.Server) *LocalController {
	lc := &LocalController{
		mgr:       m,
		server:    srv,
		limiters:  make(map[vswitch.VMKey]*decision.Limiter),
		lastHW:    make(map[vswitch.VMKey]openflow.VMRate),
		installed: make(map[rules.Pattern]bool),
	}
	lc.me = measure.New(m.Cluster.Eng, m.Cfg.Measure, lc.readDatapath)
	lc.me.ServerID = uint32(srv.ID)
	lc.me.OnReport = lc.sendReport
	if m.Cfg.SketchAccounting {
		scfg := m.Cfg.Sketch
		scfg.Aggregate = m.Cfg.Measure.Aggregate
		lc.acct = sketch.New(scfg, 1)
		srv.VSwitch.EnableSketch(lc.acct.Shard(0))
		lc.me.SetPatternSource(lc.readSketch)
	}
	// Degradation signal path: the vswitch's slow-path overload detector
	// reports state transitions; the local controller forwards them to
	// the TOR DE as OverloadHints so the emergency offload does not wait
	// for the next demand-report cycle.
	srv.VSwitch.OnOverload = lc.onOverload
	return lc
}

// onOverload forwards a slow-path overload transition out of band. The
// hint names the dominant tenant so the DE can boost exactly the
// aggregates whose misses are burning the host CPUs (§4.2 motivates
// offload as the relief valve for vswitch overload).
func (lc *LocalController) onOverload(sig vswitch.OverloadSignal) {
	lc.Hints++
	if lc.rec != nil {
		cause := "recovered"
		if sig.Overloaded {
			cause = "overloaded"
		}
		lc.rec.Record(telemetry.Event{Kind: telemetry.KindHint, Cause: cause,
			Tenant: sig.Offender, V1: sig.Utilization, V2: sig.MissPPS})
	}
	hint := &openflow.OverloadHint{
		ServerID:   uint32(lc.server.ID),
		Tenant:     sig.Offender,
		Overloaded: sig.Overloaded,
		MissPPS:    sig.MissPPS,
	}
	for _, tr := range lc.toTORs {
		tr.Send(hint)
	}
}

// MEFaultStats reports how many demand reports the stats fault surface
// dropped or delayed on this server's measurement path.
func (lc *LocalController) MEFaultStats() (lost, delayed uint64) {
	return lc.me.ReportsLost, lc.me.ReportsDelayed
}

func (lc *LocalController) start() {
	lc.me.Start()
	if ttl := lc.mgr.Cfg.HA.LeaseTTL; ttl > 0 {
		lc.lastLeaderContact = lc.mgr.Cluster.Eng.Now()
		lc.leaseTicker = lc.mgr.Cluster.Eng.Every(ttl/8, lc.checkLease)
	}
}

func (lc *LocalController) stop() {
	lc.me.Stop()
	if lc.leaseTicker != nil {
		lc.leaseTicker.Stop()
		lc.leaseTicker = nil
	}
}

// checkLease is the placer-side lease fail-safe. The SmartNIC's own lease
// sweeper expires the device rules on the same silence independently.
func (lc *LocalController) checkLease() {
	ttl := lc.mgr.Cfg.HA.LeaseTTL
	if len(lc.installed) == 0 ||
		lc.mgr.Cluster.Eng.Now()-lc.lastLeaderContact <= sim.Time(ttl)/2 {
		return
	}
	ps := make([]rules.Pattern, 0, len(lc.installed))
	for p := range lc.installed {
		ps = append(ps, p)
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].String() < ps[j].String() })
	for _, p := range ps {
		lc.removePlacement(p)
	}
	lc.PlacerExpiries += uint64(len(ps))
	if lc.rec != nil {
		lc.rec.Record(telemetry.Event{Kind: telemetry.KindLeaseExpire, Cause: "placer",
			V1: float64(len(ps)), V2: float64(lc.termSeen)})
	}
}

// admitTerm fences a TOR-controller message carrying leadership term
// `term`: stale terms are dropped, newer ones adopted. Any current-term
// leader message is proof of leader liveness — it refreshes the placer
// lease and the host SmartNIC's rule leases.
func (lc *LocalController) admitTerm(term uint32, cause string) bool {
	if term < lc.termSeen {
		lc.FencedMsgs++
		if lc.rec != nil {
			lc.rec.Record(telemetry.Event{Kind: telemetry.KindFenceReject, Cause: cause,
				V1: float64(term), V2: float64(lc.termSeen)})
		}
		return false
	}
	if term > lc.termSeen {
		lc.termSeen = term
		lc.lastSyncSeq = 0
	}
	lc.lastLeaderContact = lc.mgr.Cluster.Eng.Now()
	if n := lc.server.SmartNIC; n != nil {
		n.RefreshAllLeases()
	}
	return true
}

// readDatapath snapshots the vswitch's per-flow counters (§5.2: "queries
// the OVS datapath for active flow statistics").
func (lc *LocalController) readDatapath() []measure.Reading {
	snap := lc.server.VSwitch.Snapshot()
	out := make([]measure.Reading, 0, len(snap))
	for _, s := range snap {
		out = append(out, measure.Reading{Key: s.Key, Packets: s.Packets, Bytes: s.Bytes})
	}
	// Flows forwarded by the SmartNIC tier bypass the vswitch datapath;
	// the NIC keeps its own per-flow counters, merged here (the ME sums
	// readings per aggregate) so placement keeps seeing full demand.
	if n := lc.server.SmartNIC; n != nil {
		for _, s := range n.Snapshot() {
			out = append(out, measure.Reading{Key: s.Key, Packets: s.Packets, Bytes: s.Bytes})
		}
	}
	return out
}

// readSketch is the ME's statistics feed in sketch accounting mode: the
// accountant's top-k pattern report instead of a walk over every exact-
// cache entry. Counters are cumulative, exactly like datapath snapshots,
// so the ME's two-sample delta logic applies unchanged. NIC-forwarded
// flows bypass the vswitch (and therefore the sketch); their exact NIC
// counters are keyed through the same aggregation and appended.
func (lc *LocalController) readSketch() []measure.PatternReading {
	rep := lc.acct.Report()
	out := make([]measure.PatternReading, 0, len(rep))
	for _, pc := range rep {
		out = append(out, measure.PatternReading{Pattern: pc.Pattern, Packets: pc.Pkts, Bytes: pc.Bytes})
	}
	if n := lc.server.SmartNIC; n != nil {
		aggregate := lc.acct.Config().Aggregate
		for _, s := range n.Snapshot() {
			if aggregate {
				out = append(out,
					measure.PatternReading{Pattern: rules.AggregatePattern(s.Key.EgressAggregate()), Packets: s.Packets, Bytes: s.Bytes},
					measure.PatternReading{Pattern: rules.AggregatePattern(s.Key.IngressAggregate()), Packets: s.Packets, Bytes: s.Bytes})
			} else {
				out = append(out, measure.PatternReading{Pattern: rules.ExactPattern(s.Key), Packets: s.Packets, Bytes: s.Bytes})
			}
		}
	}
	return out
}

// sendReport forwards the ME's demand report, attaching the FPS splits
// computed since the last interval. Large reports are chunked below the
// protocol's frame limit; the TOR controller merges chunks per interval.
func (lc *LocalController) sendReport(rep openflow.DemandReport) {
	rep.Splits = lc.pendingSplits
	lc.pendingSplits = nil
	// The NIC table section: what the SmartNIC actually holds and how
	// much room it has. The TOR controller's NIC tier decides and
	// reconciles against exactly this view.
	if n := lc.server.SmartNIC; n != nil {
		rep.NICFree = uint32(n.Free())
		rep.NICPatterns = n.Patterns()
	}
	if lc.acct != nil {
		cfg := lc.acct.Config()
		ctr := lc.acct.Counters()
		rep.Sketch = &openflow.SketchMeta{
			TopK:  uint32(cfg.TopK),
			Width: uint32(cfg.Width), Depth: uint32(cfg.Depth),
			Floor: lc.acct.Floor(), Evictions: ctr.Evictions,
		}
		if lc.rec != nil {
			lc.rec.Record(telemetry.Event{Kind: telemetry.KindSketchReport,
				V1: float64(len(rep.Entries)), V2: float64(rep.Sketch.Floor)})
		}
	}
	if lc.AugmentReport != nil {
		lc.AugmentReport(&rep)
	}
	if lc.rec != nil {
		lc.rec.Record(telemetry.Event{Kind: telemetry.KindReportSent,
			V1: float64(len(rep.Entries)), V2: float64(rep.Interval)})
	}
	for _, chunk := range openflow.ChunkDemandReport(rep) {
		chunk := chunk
		// Broadcast to the whole replica group: hot standbys rebuild the
		// demand view passively from the same reports the leader acts on.
		for _, tr := range lc.toTORs {
			tr.Send(&chunk)
		}
	}
}

// HandleMessage implements openflow.Handler for TOR → local messages.
func (lc *LocalController) HandleMessage(msg openflow.Message, xid uint32, reply openflow.ReplyFunc) {
	switch m := msg.(type) {
	case *openflow.OffloadDecision:
		lc.applyDecision(m)
	case *openflow.RuleSync:
		lc.applySync(m)
	case openflow.EchoRequest:
		reply(openflow.EchoReply{}, xid)
	}
}

// applySync reconciles the placer programming against the TOR's full
// desired offload set and acknowledges it. The ack is what un-gates ACL
// removal at the TOR: by acking, this server asserts none of its placers
// still steer flows excluded from the set through the express lane.
func (lc *LocalController) applySync(m *openflow.RuleSync) {
	if !lc.admitTerm(m.Term, "sync") {
		return // deposed leader's sync; no ack, let it fence on the switch
	}
	if m.Seq >= lc.lastSyncSeq {
		desired := make(map[rules.Pattern]bool, len(m.Patterns))
		for _, p := range m.Patterns {
			desired[p] = true
			if !lc.installed[p] {
				lc.installPlacement(p)
			}
		}
		// Deterministic sweep of placements no longer desired.
		extra := make([]rules.Pattern, 0)
		for p := range lc.installed {
			if !desired[p] {
				extra = append(extra, p)
			}
		}
		sort.Slice(extra, func(i, j int) bool { return extra[i].String() < extra[j].String() })
		for _, p := range extra {
			lc.removePlacement(p)
		}
		lc.lastSyncSeq = m.Seq
	}
	lc.scheduleAck()
}

// ackRecheck paces the deferred-ack poll while the access link holds
// undelivered packets.
const ackRecheck = time.Millisecond

// scheduleAck sends the SyncAck once this server can honestly make the
// ack's assertion. Re-routing the placers is not enough: packets this
// host steered into the express lane while steering was still lawful may
// sit in the access-link queue behind a down or congested uplink, and an
// ack sent before they drain would let the TOR delete the ACL from under
// them. The ack is therefore deferred until the uplink queue is empty; it
// always carries the newest seq/term at send time, so deferred acks
// collapse into one.
func (lc *LocalController) scheduleAck() {
	if lc.ackPending {
		return
	}
	if up := lc.uplink(); up != nil && up.QueueLen() > 0 {
		lc.ackPending = true
		lc.mgr.Cluster.Eng.After(ackRecheck, lc.retryAck)
		return
	}
	lc.sendAck()
}

// uplink resolves this server's access uplink by position in the
// cluster. Server.ID is the wire identity, not an index: a split
// deployment (core split services) numbers the single local server with
// its rack-wide ServerID, so indexing links by ID would come up empty.
func (lc *LocalController) uplink() *fabric.Link {
	c := lc.mgr.Cluster
	for i, s := range c.Servers {
		if s == lc.server {
			return c.Uplink(i)
		}
	}
	return nil
}

func (lc *LocalController) retryAck() {
	if up := lc.uplink(); up != nil && up.QueueLen() > 0 {
		lc.mgr.Cluster.Eng.After(ackRecheck, lc.retryAck)
		return
	}
	lc.ackPending = false
	lc.sendAck()
}

// sendAck broadcasts the SyncAck — the acting leader recognizes its own
// term, anyone else ignores it.
func (lc *LocalController) sendAck() {
	ack := &openflow.SyncAck{ServerID: uint32(lc.server.ID), Seq: lc.lastSyncSeq, Term: lc.termSeen}
	for _, tr := range lc.toTORs {
		tr.Send(ack)
	}
}

// applyDecision programs flow placers and recomputes rate splits.
func (lc *LocalController) applyDecision(d *openflow.OffloadDecision) {
	if !lc.admitTerm(d.Term, "decision") {
		return
	}
	for _, r := range d.HWRates {
		lc.lastHW[vswitch.VMKey{Tenant: r.Tenant, IP: r.VMIP}] = r
	}
	for _, a := range d.Actions {
		if a.Tier == openflow.TierNIC {
			lc.applyNICAction(a)
			continue
		}
		if a.Offload {
			lc.installPlacement(a.Pattern)
		} else {
			lc.removePlacement(a.Pattern)
		}
	}
	lc.adjustRateLimits()
}

// applyNICAction programs the host SmartNIC's rule table. Install
// failures (tenant quota, a full table, injected faults) are not retried
// here: the rule's absence from the next report's NIC section makes the
// TOR controller re-assert or re-place it, and in the meantime the flow
// rides the vswitch — the NIC tier's miss path is the software path, so
// nothing is ever blackholed by a failed or missing NIC rule.
func (lc *LocalController) applyNICAction(a openflow.OffloadAction) {
	n := lc.server.SmartNIC
	if n == nil {
		return
	}
	lc.NICMods++
	if a.Offload {
		_ = n.Install(a.Pattern, 0)
	} else {
		n.Remove(a.Pattern)
	}
}

// installPlacement adds the VF redirection rule to every co-resident VM
// of the pattern's tenant whose traffic the pattern could cover. The
// vswitch fast path is invalidated for covered flows so demand for them
// stops being double-counted.
func (lc *LocalController) installPlacement(p rules.Pattern) {
	if lc.installed[p] {
		return
	}
	mod := &openflow.FlowMod{Command: openflow.FlowAdd, Pattern: p, Out: openflow.PathVF, Priority: 10}
	if lc.sendToPlacers(p, mod) {
		lc.installed[p] = true
		lc.server.VSwitch.Invalidate(p)
		if lc.OnPlacement != nil {
			lc.OnPlacement(p, true)
		}
	}
}

func (lc *LocalController) removePlacement(p rules.Pattern) {
	if !lc.installed[p] {
		return
	}
	mod := &openflow.FlowMod{Command: openflow.FlowDelete, Pattern: p}
	lc.sendToPlacers(p, mod)
	delete(lc.installed, p)
	if lc.OnPlacement != nil {
		lc.OnPlacement(p, false)
	}
}

// sendToPlacers delivers a FlowMod to matching VMs' placers after the
// control delay (the placer lives in the VM kernel; programming it is an
// OpenFlow exchange, §4.1.1). VMs are visited in address order so event
// scheduling — and therefore the whole simulation — is reproducible.
// Reports whether any placer was programmed.
func (lc *LocalController) sendToPlacers(p rules.Pattern, mod *openflow.FlowMod) bool {
	any := false
	for _, vm := range sortedVMs(lc.server) {
		if vm.Key.Tenant != p.Tenant && !p.AnyTenant {
			continue
		}
		vm := vm
		wire := openflow.Encode(mod, 0)
		lc.FlowMods++
		lc.mgr.Cluster.Eng.After(lc.mgr.Cfg.ControlDelay, func() {
			decoded, xid, _, err := openflow.Decode(wire)
			if err != nil {
				panic("core: flowmod decode: " + err.Error())
			}
			vm.Placer.HandleMessage(decoded, xid, func(openflow.Message, uint32) {})
		})
		any = true
	}
	return any
}

// installInitialSplit installs a 50/50 split before the first FPS
// adjustment.
func (lc *LocalController) installInitialSplit(key vswitch.VMKey, egressBps, ingressBps float64) {
	lc.limiters[key] = decision.NewLimiter(egressBps, ingressBps)
	half := func(v float64) float64 { return v / 2 }
	_ = lc.server.VSwitch.SetVIFLimits(key, half(egressBps), half(ingressBps))
	lc.pendingSplits = append(lc.pendingSplits, openflow.RateSplit{
		Tenant: key.Tenant, VMIP: key.IP,
		EgressHardBps:  half(egressBps),
		IngressHardBps: half(ingressBps),
	})
}

// Placements returns the placer redirect rules this controller currently
// has installed, sorted — exposed for the service admin API.
func (lc *LocalController) Placements() []rules.Pattern {
	out := make([]rules.Pattern, 0, len(lc.installed))
	for p := range lc.installed {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// sortedVMs returns the server's VMs in deterministic (tenant, IP) order.
func sortedVMs(srv *host.Server) []*host.VM {
	out := make([]*host.VM, 0, len(srv.VMs))
	for _, vm := range srv.VMs {
		out = append(out, vm)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.Tenant != out[j].Key.Tenant {
			return out[i].Key.Tenant < out[j].Key.Tenant
		}
		return out[i].Key.IP < out[j].Key.IP
	})
	return out
}

// adjustRateLimits runs FPS for each limited co-resident VM: software
// demand from the vswitch meters, hardware demand from the TOR's
// observations, then installs Rs locally and queues Rh for the TOR
// (§4.3.2).
func (lc *LocalController) adjustRateLimits() {
	// In sketch mode the accountant's monitored set doubles as a heavy-
	// flow census per VM and direction: FPS uses the counts to split
	// headroom by flow population when neither path shows demand yet.
	var egFlows, inFlows map[vswitch.VMKey]int
	if lc.acct != nil {
		egFlows = make(map[vswitch.VMKey]int)
		inFlows = make(map[vswitch.VMKey]int)
		for _, pc := range lc.acct.Report() {
			if pc.Pattern.SrcPrefix == 32 {
				egFlows[vswitch.VMKey{Tenant: pc.Pattern.Tenant, IP: pc.Pattern.Src}]++
			}
			if pc.Pattern.DstPrefix == 32 {
				inFlows[vswitch.VMKey{Tenant: pc.Pattern.Tenant, IP: pc.Pattern.Dst}]++
			}
		}
	}
	keys := make([]vswitch.VMKey, 0, len(lc.mgr.limits))
	for key := range lc.mgr.limits {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Tenant != keys[j].Tenant {
			return keys[i].Tenant < keys[j].Tenant
		}
		return keys[i].IP < keys[j].IP
	})
	for _, key := range keys {
		if _, ok := lc.server.VMs[key]; !ok {
			continue
		}
		lim, ok := lc.limiters[key]
		if !ok {
			agg := lc.mgr.limits[key]
			lim = decision.NewLimiter(agg.egressBps, agg.ingressBps)
			lc.limiters[key] = lim
		}
		egSoft, inSoft, _ := lc.server.VSwitch.VIFRates(key)
		hw := lc.lastHW[key]
		split := lim.Adjust(
			fps.Demand{RateBps: egSoft, Flows: egFlows[key]},
			fps.Demand{RateBps: hw.EgressBps, MaxedOut: hw.EgressMaxed},
			fps.Demand{RateBps: inSoft, Flows: inFlows[key]},
			fps.Demand{RateBps: hw.IngressBps, MaxedOut: hw.IngressMaxed},
		)
		split.Tenant = key.Tenant
		split.VMIP = key.IP
		_ = lc.server.VSwitch.SetVIFLimits(key, split.EgressSoftBps, split.IngressSoftBps)
		lc.pendingSplits = append(lc.pendingSplits, split)
	}
}
