package metrics

import (
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 || h.P99() != 0 || h.Count() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Error("empty histogram should report zeros")
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram()
	h.Observe(10 * time.Microsecond)
	h.Observe(20 * time.Microsecond)
	h.Observe(30 * time.Microsecond)
	if got := h.Mean(); got != 20*time.Microsecond {
		t.Errorf("Mean = %v, want 20µs", got)
	}
}

func TestHistogramPercentiles(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{50, 50 * time.Millisecond},
		{99, 99 * time.Millisecond},
		{100, 100 * time.Millisecond},
		{1, 1 * time.Millisecond},
	}
	for _, c := range cases {
		if got := h.Percentile(c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestHistogramObserveAfterPercentile(t *testing.T) {
	// Percentile sorts in place; later Observes must still be seen.
	h := NewHistogram()
	h.Observe(5 * time.Millisecond)
	_ = h.P99()
	h.Observe(50 * time.Millisecond)
	if got := h.Max(); got != 50*time.Millisecond {
		t.Errorf("Max = %v after post-sort Observe, want 50ms", got)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Observe(time.Second)
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 {
		t.Error("Reset did not clear histogram")
	}
}

func TestRate(t *testing.T) {
	if got := Rate(100, 600, time.Second); got != 500 {
		t.Errorf("Rate = %v, want 500", got)
	}
	if got := Rate(0, 1000, 100*time.Millisecond); got != 10000 {
		t.Errorf("Rate = %v, want 10000", got)
	}
	if Rate(5, 3, time.Second) != 0 {
		t.Error("regressing counter should yield 0")
	}
	if Rate(0, 10, 0) != 0 {
		t.Error("zero interval should yield 0")
	}
}

func TestCPUAccount(t *testing.T) {
	var a CPUAccount
	a.Charge(2 * time.Second)
	a.Charge(time.Second)
	a.Charge(-time.Second) // ignored
	if got := a.LogicalCPUs(time.Second); got != 3.0 {
		t.Errorf("LogicalCPUs = %v, want 3.0", got)
	}
	if a.LogicalCPUs(0) != 0 {
		t.Error("zero elapsed should yield 0")
	}
	a.Reset()
	if a.Busy() != 0 {
		t.Error("Reset did not clear account")
	}
}

func TestGbps(t *testing.T) {
	// 1.25e9 bytes in 1s = 10 Gbps.
	if got := Gbps(1_250_000_000, time.Second); got != 10 {
		t.Errorf("Gbps = %v, want 10", got)
	}
	if Gbps(1, 0) != 0 {
		t.Error("zero elapsed should yield 0")
	}
}

// Property: mean is bounded by min and max, and percentiles are monotone.
func TestHistogramProperties(t *testing.T) {
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range vals {
			h.Observe(time.Duration(v) * time.Microsecond)
		}
		if h.Mean() < h.Min() || h.Mean() > h.Max() {
			return false
		}
		prev := time.Duration(0)
		for _, p := range []float64{1, 10, 25, 50, 75, 90, 99, 100} {
			v := h.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
