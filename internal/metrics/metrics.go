// Package metrics provides the measurement primitives used throughout the
// FasTrak testbed: latency histograms with average and tail percentiles,
// windowed rate counters, and CPU-time accounting that converts accumulated
// busy time into "logical CPUs used" — the unit the paper reports in
// Figures 4(a)/4(b) and the evaluation tables.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Histogram accumulates duration samples and reports average and
// percentiles. It keeps raw samples: the experiment scales here are small
// enough that exact percentiles are affordable and simpler to trust than a
// sketch. (Flow accounting at scale is a different story — see
// internal/sketch and SketchCounters below.)
type Histogram struct {
	samples []time.Duration
	sum     time.Duration
	sorted  bool
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	h.samples = append(h.samples, d)
	h.sum += d
	h.sorted = false
}

// Count returns the number of samples recorded.
func (h *Histogram) Count() int { return len(h.samples) }

// Mean returns the average sample, or 0 if empty.
func (h *Histogram) Mean() time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / time.Duration(len(h.samples))
}

// Percentile returns the p-th percentile (0 < p ≤ 100) using the
// nearest-rank method, or 0 if empty.
func (h *Histogram) Percentile(p float64) time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
	if p <= 0 {
		return h.samples[0]
	}
	rank := int(math.Ceil(p / 100 * float64(len(h.samples))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(h.samples) {
		rank = len(h.samples)
	}
	return h.samples[rank-1]
}

// P99 is shorthand for Percentile(99), the tail statistic the paper reports.
func (h *Histogram) P99() time.Duration { return h.Percentile(99) }

// Max returns the largest sample, or 0 if empty.
func (h *Histogram) Max() time.Duration { return h.Percentile(100) }

// Min returns the smallest sample, or 0 if empty.
func (h *Histogram) Min() time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	return h.Percentile(0)
}

// Reset discards all samples.
func (h *Histogram) Reset() {
	h.samples = h.samples[:0]
	h.sum = 0
	h.sorted = false
}

// String summarizes the histogram for logs and experiment tables.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p99=%v", h.Count(), h.Mean(), h.P99())
}

// Counter is a monotonically increasing count of packets or bytes, with a
// helper to convert a delta over an interval into a per-second rate — the
// Δ(p)/t and Δ(b)/t computations of the measurement engine (§4.3.1).
type Counter struct {
	total uint64
}

// Add increments the counter.
func (c *Counter) Add(n uint64) { c.total += n }

// Total returns the accumulated count.
func (c *Counter) Total() uint64 { return c.total }

// Rate converts the delta between two counter readings over interval into
// a per-second rate. A non-positive interval yields 0.
func Rate(prev, cur uint64, interval time.Duration) float64 {
	if interval <= 0 || cur < prev {
		return 0
	}
	return float64(cur-prev) / interval.Seconds()
}

// CPUAccount accumulates busy time attributed to an activity (hypervisor
// packet processing, guest stack, controller work). LogicalCPUs converts
// busy time over a wall interval into the paper's "number of logical CPUs
// used to drive the test" unit.
type CPUAccount struct {
	busy time.Duration
}

// Charge records d of CPU busy time.
func (a *CPUAccount) Charge(d time.Duration) {
	if d > 0 {
		a.busy += d
	}
}

// Busy returns total accumulated busy time.
func (a *CPUAccount) Busy() time.Duration { return a.busy }

// Reset zeroes the account.
func (a *CPUAccount) Reset() { a.busy = 0 }

// LogicalCPUs returns busy/elapsed: 2.0 means two logical CPUs were fully
// occupied for the interval.
func (a *CPUAccount) LogicalCPUs(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return a.busy.Seconds() / elapsed.Seconds()
}

// DropCounters is the testbed's unified per-cause drop accounting for a
// software switch: every packet the vswitch intentionally discards is
// charged to exactly one cause, so the conservation equation
// in = delivered + Σ(cause) closes exactly — the overload experiment's
// second invariant. Counters only ever increase.
type DropCounters struct {
	// Shape counts htb tail-drops: packets whose token-bucket wait would
	// exceed the qdisc's bounded backlog.
	Shape uint64
	// UpcallQueue counts slow-path admission tail-drops: the packet's
	// flow missed the fast path and its VIF's bounded upcall queue was
	// full.
	UpcallQueue uint64
	// Clamp counts packets refused by the overload governor's per-VIF
	// miss-rate clamp on a storming tenant.
	Clamp uint64
}

// Total sums all causes.
func (d DropCounters) Total() uint64 { return d.Shape + d.UpcallQueue + d.Clamp }

// Add returns the element-wise sum — aggregating per-switch counters into
// a cluster view.
func (d DropCounters) Add(o DropCounters) DropCounters {
	return DropCounters{
		Shape:       d.Shape + o.Shape,
		UpcallQueue: d.UpcallQueue + o.UpcallQueue,
		Clamp:       d.Clamp + o.Clamp,
	}
}

// String renders the counters for logs and experiment tables.
func (d DropCounters) String() string {
	return fmt.Sprintf("shape=%d upcallq=%d clamp=%d", d.Shape, d.UpcallQueue, d.Clamp)
}

// CacheCounters is the observability surface of a decision cache (the
// vswitch megaflow cache): hit/miss traffic, install churn, capacity
// evictions and rule-change invalidations. Counters only ever increase.
type CacheCounters struct {
	// Hits counts lookups served from the cache; Misses lookups that
	// fell through to the full classifier.
	Hits, Misses uint64
	// Installs counts entries installed after slow-path classifications.
	Installs uint64
	// Evictions counts entries discarded for capacity; Invalidations
	// entries removed because an overlapping rule changed (the
	// revalidation path that keeps the cache semantically transparent).
	Evictions, Invalidations uint64
}

// HitRate returns Hits/(Hits+Misses), or 0 when idle.
func (c CacheCounters) HitRate() float64 {
	if c.Hits+c.Misses == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Hits+c.Misses)
}

// Add returns the element-wise sum.
func (c CacheCounters) Add(o CacheCounters) CacheCounters {
	return CacheCounters{
		Hits:          c.Hits + o.Hits,
		Misses:        c.Misses + o.Misses,
		Installs:      c.Installs + o.Installs,
		Evictions:     c.Evictions + o.Evictions,
		Invalidations: c.Invalidations + o.Invalidations,
	}
}

// String renders the counters for logs and experiment tables.
func (c CacheCounters) String() string {
	return fmt.Sprintf("hits=%d misses=%d installs=%d evict=%d inval=%d",
		c.Hits, c.Misses, c.Installs, c.Evictions, c.Invalidations)
}

// NICCounters is the observability surface of a per-host SmartNIC offload
// tier: egress lookups served in hardware, lookups that fell through to
// the software vswitch path, installs/removes of match-action rules, and
// packets bounced back to software by the tenant-fair pipeline admission.
// A throttled or missed packet is never a drop — it falls back to the
// vswitch slow path — so these counters do not feed the drop conservation
// equation. Counters only ever increase.
type NICCounters struct {
	// Hits counts egress packets forwarded by a NIC table rule; Misses
	// counts egress lookups that found no rule and fell back to software.
	Hits, Misses uint64
	// Throttled counts packets whose flow matched a rule but exceeded the
	// tenant's fair share of NIC pipeline capacity in the current window;
	// these also fall back to the software path.
	Throttled uint64
	// Installs and Removes count rule table churn.
	Installs, Removes uint64
	// Rejects counts refused installs (table full, tenant quota, or an
	// injected install fault).
	Rejects uint64
}

// HitRate returns Hits/(Hits+Misses+Throttled), or 0 when idle.
func (n NICCounters) HitRate() float64 {
	total := n.Hits + n.Misses + n.Throttled
	if total == 0 {
		return 0
	}
	return float64(n.Hits) / float64(total)
}

// Add returns the element-wise sum.
func (n NICCounters) Add(o NICCounters) NICCounters {
	return NICCounters{
		Hits:      n.Hits + o.Hits,
		Misses:    n.Misses + o.Misses,
		Throttled: n.Throttled + o.Throttled,
		Installs:  n.Installs + o.Installs,
		Removes:   n.Removes + o.Removes,
		Rejects:   n.Rejects + o.Rejects,
	}
}

// String renders the counters for logs and experiment tables.
func (n NICCounters) String() string {
	return fmt.Sprintf("hits=%d misses=%d throttled=%d installs=%d removes=%d rejects=%d",
		n.Hits, n.Misses, n.Throttled, n.Installs, n.Removes, n.Rejects)
}

// SketchCounters is the observability surface of the streaming
// flow-accounting subsystem (internal/sketch): data-path sketch updates,
// space-saving takeovers, decay rounds, shard merges, and emitted top-k
// reports. Counters only ever increase.
type SketchCounters struct {
	// Updates counts Observe calls accounted into the sketches.
	Updates uint64
	// Evictions counts space-saving takeovers: monitored patterns
	// displaced by newcomers once the top-k structure filled.
	Evictions uint64
	// Decays counts per-epoch multiplicative decay rounds applied.
	Decays uint64
	// Merges counts shard-sketch merges performed at report time.
	Merges uint64
	// Reports counts top-k heavy-hitter reports produced.
	Reports uint64
}

// Add returns the element-wise sum — aggregating per-shard counters into a
// per-host (or cluster) view.
func (s SketchCounters) Add(o SketchCounters) SketchCounters {
	return SketchCounters{
		Updates:   s.Updates + o.Updates,
		Evictions: s.Evictions + o.Evictions,
		Decays:    s.Decays + o.Decays,
		Merges:    s.Merges + o.Merges,
		Reports:   s.Reports + o.Reports,
	}
}

// String renders the counters for logs and experiment tables.
func (s SketchCounters) String() string {
	return fmt.Sprintf("updates=%d evict=%d decays=%d merges=%d reports=%d",
		s.Updates, s.Evictions, s.Decays, s.Merges, s.Reports)
}

// Gbps converts a byte count over an interval to gigabits per second.
func Gbps(bytes uint64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(bytes) * 8 / 1e9 / elapsed.Seconds()
}
