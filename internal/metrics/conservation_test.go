package metrics

import (
	"reflect"
	"testing"
)

// distinctPrimes fills every uint64 field of a struct (via reflection)
// with a distinct prime, so any field a hand-written aggregate forgets
// shows up as a wrong sum rather than a silent zero.
var primes = []uint64{3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41}

func fillStruct(t *testing.T, v reflect.Value) (sum uint64, fields int) {
	t.Helper()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		if f.Kind() != reflect.Uint64 {
			t.Fatalf("%s.%s is %s; the conservation law only covers uint64 counters",
				v.Type().Name(), v.Type().Field(i).Name, f.Kind())
		}
		if fields >= len(primes) {
			t.Fatalf("%s grew past the prime table; extend it", v.Type().Name())
		}
		f.SetUint(primes[fields])
		sum += primes[fields]
		fields++
	}
	return sum, fields
}

// TestDropCountersTotalCoversEveryField locks the conservation equation
// in = delivered + DropCounters.Total(): adding a new drop cause without
// counting it in Total() breaks the sum for ANY field values, because
// every field holds a distinct prime.
func TestDropCountersTotalCoversEveryField(t *testing.T) {
	var d DropCounters
	want, n := fillStruct(t, reflect.ValueOf(&d).Elem())
	if n == 0 {
		t.Fatal("DropCounters has no uint64 fields?")
	}
	if got := d.Total(); got != want {
		t.Fatalf("DropCounters.Total() = %d, want %d: a field is missing from Total(); "+
			"every drop cause must be counted or the conservation invariant silently breaks", got, want)
	}
}

// TestDropCountersAddCoversEveryField ensures the cluster-aggregation
// helper sums every cause: Add(self) must exactly double Total().
func TestDropCountersAddCoversEveryField(t *testing.T) {
	var d DropCounters
	want, _ := fillStruct(t, reflect.ValueOf(&d).Elem())
	sum := d.Add(d)
	if got := sum.Total(); got != 2*want {
		t.Fatalf("DropCounters.Add(self).Total() = %d, want %d: Add() drops a field", got, 2*want)
	}
	// Field-by-field: each must be exactly doubled (catches swapped
	// fields, which Total() alone would not).
	dv, sv := reflect.ValueOf(d), reflect.ValueOf(sum)
	for i := 0; i < dv.NumField(); i++ {
		if sv.Field(i).Uint() != 2*dv.Field(i).Uint() {
			t.Errorf("DropCounters.Add mangles field %s: %d -> %d",
				dv.Type().Field(i).Name, dv.Field(i).Uint(), sv.Field(i).Uint())
		}
	}
}

// TestCacheCountersAddCoversEveryField does the same for the megaflow
// cache counters: Add must double every field, element-wise.
func TestCacheCountersAddCoversEveryField(t *testing.T) {
	var c CacheCounters
	_, n := fillStruct(t, reflect.ValueOf(&c).Elem())
	if n == 0 {
		t.Fatal("CacheCounters has no uint64 fields?")
	}
	sum := c.Add(c)
	cv, sv := reflect.ValueOf(c), reflect.ValueOf(sum)
	for i := 0; i < cv.NumField(); i++ {
		if sv.Field(i).Uint() != 2*cv.Field(i).Uint() {
			t.Errorf("CacheCounters.Add mangles field %s: %d -> %d",
				cv.Type().Field(i).Name, cv.Field(i).Uint(), sv.Field(i).Uint())
		}
	}
}

// TestNICCountersAddCoversEveryField extends the conservation law to the
// SmartNIC tier's counters: Add must double every field, element-wise,
// so cluster-wide aggregation never silently drops a new cause.
func TestNICCountersAddCoversEveryField(t *testing.T) {
	var c NICCounters
	_, n := fillStruct(t, reflect.ValueOf(&c).Elem())
	if n == 0 {
		t.Fatal("NICCounters has no uint64 fields?")
	}
	sum := c.Add(c)
	cv, sv := reflect.ValueOf(c), reflect.ValueOf(sum)
	for i := 0; i < cv.NumField(); i++ {
		if sv.Field(i).Uint() != 2*cv.Field(i).Uint() {
			t.Errorf("NICCounters.Add mangles field %s: %d -> %d",
				cv.Type().Field(i).Name, cv.Field(i).Uint(), sv.Field(i).Uint())
		}
	}
}

// TestSketchCountersAddCoversEveryField extends the conservation law to
// the streaming flow-accounting counters: Add must double every field,
// element-wise, so per-shard aggregation never silently drops a counter.
func TestSketchCountersAddCoversEveryField(t *testing.T) {
	var c SketchCounters
	_, n := fillStruct(t, reflect.ValueOf(&c).Elem())
	if n == 0 {
		t.Fatal("SketchCounters has no uint64 fields?")
	}
	sum := c.Add(c)
	cv, sv := reflect.ValueOf(c), reflect.ValueOf(sum)
	for i := 0; i < cv.NumField(); i++ {
		if sv.Field(i).Uint() != 2*cv.Field(i).Uint() {
			t.Errorf("SketchCounters.Add mangles field %s: %d -> %d",
				cv.Type().Field(i).Name, cv.Field(i).Uint(), sv.Field(i).Uint())
		}
	}
}

// TestNICCountersHitRateUsesHitsMissesThrottled pins the NIC hit-rate
// denominator: every lookup outcome (hit, miss, throttle) counts as an
// attempt, so the rate reflects how much traffic the tier actually
// carried.
func TestNICCountersHitRateUsesHitsMissesThrottled(t *testing.T) {
	c := NICCounters{Hits: 3, Misses: 1}
	if got := c.HitRate(); got != 0.75 {
		t.Fatalf("HitRate() = %v, want 0.75", got)
	}
	c.Throttled = 4
	if got := c.HitRate(); got != 0.375 {
		t.Fatalf("HitRate() with throttling = %v, want 0.375", got)
	}
	if got := (NICCounters{}).HitRate(); got != 0 {
		t.Fatalf("idle HitRate() = %v, want 0", got)
	}
}

// TestCacheCountersHitRateUsesHitsAndMisses pins HitRate's inputs so a
// refactor renaming the traffic counters cannot silently change its
// meaning.
func TestCacheCountersHitRateUsesHitsAndMisses(t *testing.T) {
	c := CacheCounters{Hits: 3, Misses: 1}
	if got := c.HitRate(); got != 0.75 {
		t.Fatalf("HitRate() = %v, want 0.75", got)
	}
	if got := (CacheCounters{}).HitRate(); got != 0 {
		t.Fatalf("idle HitRate() = %v, want 0", got)
	}
}
