// Flight-recorder and metric-registry wiring for the NIC. The VF path is
// hardware, so the only event it owns is the steering miss (a tagged
// packet with no VF — dropped in silicon); the per-path counters feed the
// sampler for Fig. 4-style path breakdowns.
package nic

import (
	"repro/internal/telemetry"
)

// SetRecorder attaches (or detaches) the NIC's flight-recorder scope.
func (n *NIC) SetRecorder(rec *telemetry.Scoped) { n.rec = rec }

// RegisterMetrics registers the NIC's counters under fastrak_nic_* names
// with the given fixed labels (e.g. "server=3").
func (n *NIC) RegisterMetrics(reg *telemetry.Registry, labels ...string) {
	if reg == nil {
		return
	}
	lbl := func(extra ...string) []string {
		return append(append([]string(nil), labels...), extra...)
	}
	reg.Counter("fastrak_nic_vf_tx_packets_total", "packets sent through virtual functions", &n.vfTx, lbl()...)
	reg.Counter("fastrak_nic_vf_rx_packets_total", "packets steered to virtual functions", &n.vfRx, lbl()...)
	reg.Counter("fastrak_nic_pf_tx_packets_total", "packets sent on the physical function", &n.pfTx, lbl()...)
	reg.Counter("fastrak_nic_pf_rx_packets_total", "packets received on the physical function", &n.pfRx, lbl()...)
	reg.Counter("fastrak_nic_steer_miss_total", "tagged packets with no matching VF", &n.steerMiss, lbl()...)
	reg.Gauge("fastrak_nic_vf_count", "allocated virtual functions", func() float64 { return float64(len(n.vfs)) }, lbl()...)
	reg.Gauge("fastrak_nic_cpu_busy_seconds", "accumulated interrupt-isolation CPU time", func() float64 { return n.HostCPU.Busy().Seconds() }, lbl()...)
}
