// Package nic models the server's SR-IOV-capable NIC (§2.2): a physical
// port used by the vswitch, plus virtual functions (VFs) that DMA packets
// directly between VMs and the wire, bypassing the hypervisor. VF egress
// traffic is tagged with the tenant's VLAN ID so the directly attached ToR
// can pick the right VRF (§4.2.1); on reception the NIC uses the VLAN tag
// and destination to steer packets to the right VF after stripping the tag
// (§4.2.2).
//
// The only host CPU involvement on the VF path is interrupt isolation
// ("VF Interrupts ... are first delivered to the hypervisor"), charged per
// packet via the Exec hook.
package nic

import (
	"fmt"
	"time"

	"repro/internal/fabric"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// MaxVFs is the number of virtual functions a physical port supports
// (§2.2: "These VFs can share a physical port on a NIC up to some limit
// (e.g., 64)").
const MaxVFs = 64

// Exec submits interrupt-isolation work to the host CPU station.
type Exec func(cost time.Duration, fn func())

// vf is one virtual function attachment.
type vf struct {
	vlan    packet.VLANID
	vmIP    packet.IP
	deliver fabric.Port
	// txClock/rxClock keep jittered VF delays FIFO per direction.
	txClock, rxClock time.Duration
}

// NIC is one dual-personality port: a physical function for the vswitch
// and up to MaxVFs virtual functions for direct VM access.
type NIC struct {
	eng      *sim.Engine
	cm       *model.CostModel
	hostExec Exec

	// wire is the uplink toward the ToR.
	wire *fabric.Link
	// vswitchIn receives non-VLAN traffic (the physical function).
	vswitchIn fabric.Port

	vfs map[vfKey]*vf

	// HostCPU accounts interrupt-isolation time (Fig. 4's SR-IOV bars).
	HostCPU *metrics.CPUAccount

	vfTx, vfRx uint64
	pfTx, pfRx uint64
	steerMiss  uint64

	// rec is the flight-recorder scope; nil when telemetry is disabled.
	rec *telemetry.Scoped
}

type vfKey struct {
	vlan packet.VLANID
	vmIP packet.IP
}

// New builds a NIC. wire is the link to the ToR; vswitchIn receives
// untagged ingress traffic (set later via SetVSwitch if the vswitch is
// constructed afterwards).
func New(eng *sim.Engine, cm *model.CostModel, hostExec Exec, wire *fabric.Link, vswitchIn fabric.Port) *NIC {
	if hostExec == nil {
		hostExec = func(_ time.Duration, fn func()) { fn() }
	}
	return &NIC{
		eng: eng, cm: cm, hostExec: hostExec,
		wire: wire, vswitchIn: vswitchIn,
		vfs:     make(map[vfKey]*vf),
		HostCPU: &metrics.CPUAccount{},
	}
}

// SetVSwitch wires the physical function's ingress consumer.
func (n *NIC) SetVSwitch(p fabric.Port) { n.vswitchIn = p }

// SetWire rewires the uplink (topology assembly).
func (n *NIC) SetWire(l *fabric.Link) { n.wire = l }

// AttachVF allocates a virtual function for a VM: its traffic will carry
// the given VLAN ID on the wire, and tagged ingress traffic for vmIP on
// that VLAN is delivered to deliver. Fails when the port's VF budget is
// exhausted.
func (n *NIC) AttachVF(vlan packet.VLANID, vmIP packet.IP, deliver fabric.Port) error {
	if len(n.vfs) >= MaxVFs {
		return fmt.Errorf("nic: VF limit (%d) exhausted", MaxVFs)
	}
	if vlan == 0 || vlan > packet.MaxVLANID {
		return fmt.Errorf("nic: invalid VLAN %d", vlan)
	}
	n.vfs[vfKey{vlan, vmIP}] = &vf{vlan: vlan, vmIP: vmIP, deliver: deliver}
	return nil
}

// DetachVF releases a VM's virtual function (VM migration).
func (n *NIC) DetachVF(vlan packet.VLANID, vmIP packet.IP) {
	delete(n.vfs, vfKey{vlan, vmIP})
}

// VFCount returns the number of allocated VFs.
func (n *NIC) VFCount() int { return len(n.vfs) }

// SendFromVF transmits a VM packet through its virtual function: VLAN tag
// for ToR VRF selection, interrupt-isolation charge, VF path latency, then
// the wire. No vswitch, no hypervisor copies.
func (n *NIC) SendFromVF(vlan packet.VLANID, p *packet.Packet) {
	p.Meta.Path = "vf"
	p.VLAN = &packet.VLAN{ID: vlan}
	f := n.vfs[vfKey{vlan, p.IP.Src}]
	n.HostCPU.Charge(n.cm.VFHostPerInterrupt)
	n.hostExec(n.cm.VFHostPerInterrupt, func() {
		at := n.eng.Now() + n.vfDelay()
		if f != nil {
			if at < f.txClock {
				at = f.txClock
			}
			f.txClock = at
		}
		n.eng.At(at, func() {
			n.vfTx++
			n.wire.Send(0, p)
		})
	})
}

// vfDelay is the VF path's one-way floor plus small hardware jitter
// (§3.2.4: hardware processes packets "with more predictable delays").
func (n *NIC) vfDelay() time.Duration {
	d := n.cm.VFLatency
	if n.cm.HWJitterMean > 0 {
		d += time.Duration(n.eng.Rand().ExpFloat64() * float64(n.cm.HWJitterMean))
	}
	return d
}

// SendFromVSwitch transmits a vswitch packet on the physical function.
// The vswitch has already paid its CPU and latency costs.
func (n *NIC) SendFromVSwitch(p *packet.Packet) {
	n.pfTx++
	n.wire.Send(0, p)
}

// Input implements fabric.Port: packets arriving from the ToR. Tagged
// packets steer to a VF (stripping the tag); untagged packets go to the
// vswitch.
func (n *NIC) Input(p *packet.Packet) {
	if p.VLAN == nil {
		n.pfRx++
		n.vswitchIn.Input(p)
		return
	}
	key := vfKey{p.VLAN.ID, p.IP.Dst}
	f, ok := n.vfs[key]
	if !ok {
		n.steerMiss++
		if n.rec != nil {
			n.rec.Drop(p.Tenant, p.Key(), "steer-miss")
		}
		return
	}
	p.VLAN = nil // strip the tag before handing to the VM (§4.2.2)
	n.HostCPU.Charge(n.cm.VFHostPerInterrupt)
	n.hostExec(n.cm.VFHostPerInterrupt, func() {
		at := n.eng.Now() + n.vfDelay()
		if at < f.rxClock {
			at = f.rxClock
		}
		f.rxClock = at
		n.eng.At(at, func() {
			n.vfRx++
			f.deliver.Input(p)
		})
	})
}

// Counters reports per-path packet counts and steering misses.
func (n *NIC) Counters() (vfTx, vfRx, pfTx, pfRx, steerMiss uint64) {
	return n.vfTx, n.vfRx, n.pfTx, n.pfRx, n.steerMiss
}
