package nic

import (
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/model"
	"repro/internal/packet"
	"repro/internal/sim"
)

type capture struct{ pkts []*packet.Packet }

func (c *capture) Input(p *packet.Packet) { c.pkts = append(c.pkts, p) }

func newNIC(eng *sim.Engine, wireDst fabric.Port, vsw fabric.Port) (*NIC, *model.CostModel) {
	cm := model.Default()
	wire := fabric.NewLink(eng, cm.LinkBps, cm.PropDelay, nil, wireDst)
	return New(eng, &cm, nil, wire, vsw), &cm
}

func vmPacket(size int) *packet.Packet {
	return packet.NewTCP(7, packet.MustParseIP("10.0.0.1"), packet.MustParseIP("10.0.0.2"), 1000, 80, size)
}

func TestVFEgressTagsVLAN(t *testing.T) {
	eng := sim.NewEngine(1)
	tor := &capture{}
	n, _ := newNIC(eng, tor, fabric.Discard)
	if err := n.AttachVF(100, packet.MustParseIP("10.0.0.1"), fabric.Discard); err != nil {
		t.Fatal(err)
	}
	n.SendFromVF(100, vmPacket(500))
	eng.Run()
	if len(tor.pkts) != 1 {
		t.Fatalf("wire got %d packets", len(tor.pkts))
	}
	out := tor.pkts[0]
	if out.VLAN == nil || out.VLAN.ID != 100 {
		t.Errorf("VLAN tag = %+v, want 100", out.VLAN)
	}
	if out.Meta.Path != "vf" {
		t.Errorf("path = %q", out.Meta.Path)
	}
}

func TestVFIngressSteersAndStrips(t *testing.T) {
	eng := sim.NewEngine(1)
	n, _ := newNIC(eng, fabric.Discard, fabric.Discard)
	vm := &capture{}
	if err := n.AttachVF(100, packet.MustParseIP("10.0.0.2"), vm); err != nil {
		t.Fatal(err)
	}
	p := vmPacket(500) // dst 10.0.0.2
	p.VLAN = &packet.VLAN{ID: 100}
	n.Input(p)
	eng.Run()
	if len(vm.pkts) != 1 {
		t.Fatalf("VM got %d packets", len(vm.pkts))
	}
	if vm.pkts[0].VLAN != nil {
		t.Error("VLAN tag not stripped before VM delivery")
	}
}

func TestVFIngressWrongVLANDropped(t *testing.T) {
	eng := sim.NewEngine(1)
	n, _ := newNIC(eng, fabric.Discard, fabric.Discard)
	vm := &capture{}
	n.AttachVF(100, packet.MustParseIP("10.0.0.2"), vm)
	p := vmPacket(500)
	p.VLAN = &packet.VLAN{ID: 999} // another tenant's VLAN
	n.Input(p)
	eng.Run()
	if len(vm.pkts) != 0 {
		t.Error("packet crossed VLANs to the wrong VF")
	}
	if _, _, _, _, miss := n.Counters(); miss != 1 {
		t.Errorf("steerMiss = %d", miss)
	}
}

func TestUntaggedGoesToVSwitch(t *testing.T) {
	eng := sim.NewEngine(1)
	vsw := &capture{}
	n, _ := newNIC(eng, fabric.Discard, vsw)
	n.Input(vmPacket(500))
	eng.Run()
	if len(vsw.pkts) != 1 {
		t.Fatalf("vswitch got %d packets", len(vsw.pkts))
	}
}

func TestVFLimit(t *testing.T) {
	eng := sim.NewEngine(1)
	n, _ := newNIC(eng, fabric.Discard, fabric.Discard)
	for i := 0; i < MaxVFs; i++ {
		if err := n.AttachVF(packet.VLANID(i+1), packet.IP(i), fabric.Discard); err != nil {
			t.Fatalf("VF %d: %v", i, err)
		}
	}
	if err := n.AttachVF(packet.VLANID(MaxVFs+1), packet.IP(MaxVFs), fabric.Discard); err == nil {
		t.Error("VF beyond limit accepted")
	}
	n.DetachVF(1, 0)
	if err := n.AttachVF(200, packet.IP(999), fabric.Discard); err != nil {
		t.Errorf("attach after detach: %v", err)
	}
}

func TestInvalidVLANRejected(t *testing.T) {
	eng := sim.NewEngine(1)
	n, _ := newNIC(eng, fabric.Discard, fabric.Discard)
	if err := n.AttachVF(0, 1, fabric.Discard); err == nil {
		t.Error("VLAN 0 accepted")
	}
	if err := n.AttachVF(4095, 1, fabric.Discard); err == nil {
		t.Error("VLAN 4095 accepted")
	}
}

func TestVFPathFasterThanVIFFloor(t *testing.T) {
	// The VF delay (latency floor + hw jitter) must sit well below the
	// vswitch path floor — the premise of the express lane.
	eng := sim.NewEngine(1)
	tor := &capture{}
	var arrival time.Duration
	n, cm := newNIC(eng, fabric.PortFunc(func(p *packet.Packet) {
		arrival = eng.Now()
		tor.Input(p)
	}), fabric.Discard)
	n.AttachVF(100, packet.MustParseIP("10.0.0.1"), fabric.Discard)
	n.SendFromVF(100, vmPacket(64))
	eng.Run()
	if arrival >= cm.VIFLatency {
		t.Errorf("VF path delay %v not below VIF floor %v", arrival, cm.VIFLatency)
	}
	if arrival < cm.VFLatency {
		t.Errorf("VF path delay %v below its own floor %v", arrival, cm.VFLatency)
	}
}

func TestHostCPUCharged(t *testing.T) {
	eng := sim.NewEngine(1)
	n, cm := newNIC(eng, fabric.Discard, fabric.Discard)
	n.AttachVF(100, packet.MustParseIP("10.0.0.1"), fabric.Discard)
	for i := 0; i < 10; i++ {
		n.SendFromVF(100, vmPacket(64))
	}
	eng.Run()
	if got := n.HostCPU.Busy(); got != 10*cm.VFHostPerInterrupt {
		t.Errorf("host CPU charged %v, want %v", got, 10*cm.VFHostPerInterrupt)
	}
}
