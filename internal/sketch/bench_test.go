package sketch

import (
	"testing"

	"repro/internal/packet"
)

// BenchmarkCountMinUpdate measures the raw conservative-update cost —
// the per-packet price of sketch accounting. Steady state must be
// 0 allocs/op (the structure never grows after construction).
func BenchmarkCountMinUpdate(b *testing.B) {
	cm := NewCountMin(2048, 4, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cm.Update(uint64(i)&1023, 1)
	}
}

// BenchmarkSpaceSavingUpdate measures top-k maintenance with a working
// set larger than k (constant takeover pressure) — the worst case.
func BenchmarkSpaceSavingUpdate(b *testing.B) {
	ss := NewSpaceSaving[int](1024, intLess)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ss.Update(i&4095, 1, 64)
	}
}

// BenchmarkShardObserve is the end-to-end data-path hook cost: one packet
// accounted into both aggregate patterns across two count-min sketches
// and the top-k. This is the number that gates enabling -sketch on the
// hot path.
func BenchmarkShardObserve(b *testing.B) {
	s := NewShard(Config{TopK: 1024, Width: 2048, Depth: 4, Aggregate: true})
	keys := make([]packet.FlowKey, 512)
	for i := range keys {
		keys[i] = packet.FlowKey{
			Tenant:  packet.TenantID(1 + i%8),
			Src:     packet.IP(0x0a000000 + uint32(i)),
			Dst:     packet.IP(0x0a800000 + uint32(i%32)),
			SrcPort: uint16(10000 + i),
			DstPort: 80,
			Proto:   packet.ProtoTCP,
		}
	}
	// Warm: monitor every pattern so steady state has no admissions.
	for _, k := range keys {
		s.Observe(k, 1, 1500)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Observe(keys[i&511], 1, 1500)
	}
}

// BenchmarkMerge4Shards is the report-time cost: clone + merge four
// production-sized shard sketches.
func BenchmarkMerge4Shards(b *testing.B) {
	a := New(Config{TopK: 1024, Width: 2048, Depth: 4, Aggregate: true}, 4)
	for i := 0; i < 4096; i++ {
		k := packet.FlowKey{
			Tenant: packet.TenantID(1 + i%8), Src: packet.IP(uint32(i)),
			Dst: packet.IP(uint32(i % 64)), SrcPort: uint16(i), DstPort: 80,
			Proto: packet.ProtoTCP,
		}
		a.Shard(i % 4).Observe(k, 1, 1500)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Merged()
	}
}
