// Package sketch implements FasTrak's bounded-memory streaming flow
// accounting: a conservative-update count-min sketch for per-key packet
// and byte estimates, and a space-saving (Metwally) top-k structure that
// surfaces the heavy-hitter aggregates the decision engine actually ranks.
//
// The paper's measurement engine (§4.3.1) keeps exact per-flow state —
// fine at testbed scale, unaffordable at millions of concurrent flows per
// host. Both structures here use memory independent of the number of live
// flows: the count-min sketch is width×depth cells, the space-saving
// structure exactly k monitored keys, so a shard's accounting footprint is
// O(k + width·depth) regardless of how many flows it forwards.
//
// Everything is deterministic: hashing is seeded splitmix64 (no runtime
// map-hash randomness), eviction ties break by a caller-supplied total
// order, and reported entries come out in a canonical order — two runs
// over the same packet sequence produce byte-identical reports, which the
// repo's telemetry sha256 determinism guard relies on.
//
// Error bounds (documented here, property-tested in sketch_test.go):
//
//   - Count-min with conservative update never underestimates: for every
//     key, Estimate(key) ≥ true count, and Estimate(key) ≤ true count +
//     εN with probability 1-δ where ε = e/width, δ = e^-depth, and N is
//     the total count inserted (the classic Cormode-Muthukrishnan bound;
//     conservative update only tightens it).
//   - Space-saving guarantees: every key with true count > Floor() is
//     present (guaranteed-heavy-hitter containment), each entry's Count
//     overestimates its true count by at most its Err, and while fewer
//     than k distinct keys have been seen every count is exact (Err = 0).
//     Floor() — the minimum monitored count, 0 until the structure fills —
//     bounds the undercount of any absent key.
//   - Merging (one sketch per data-plane shard, merged at report time)
//     preserves both properties: count-min cells sum element-wise, and
//     space-saving merge charges each side's Floor() for keys the other
//     side never saw, keeping every merged Count an overestimate.
//
// Decay support (Decay, for the control-interval cadence) multiplies
// every counter by a factor, rounding up so the overestimate invariant
// survives the scaling. With decay off (the default, and the mode the
// differential oracle runs in) counters are cumulative, mirroring the
// vswitch's cumulative per-flow statistics.
package sketch

import "math"

// mix is the splitmix64 finalizer: a fast, statistically strong 64-bit
// mixer. Seeding happens by XORing a per-row constant into the key before
// mixing, so every row hashes independently and deterministically.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// CountMin is a conservative-update count-min sketch over uint64 keys.
// Not safe for concurrent use: each data-plane shard owns one and merges
// happen on quiesced copies (the same contract as the plane's
// FlowSnapshot).
type CountMin struct {
	width, depth int
	seed         uint64
	rowSeeds     []uint64
	cells        []uint64 // depth rows of width cells, flat
}

// NewCountMin builds a sketch. width and depth are clamped to at least 2
// and 1 respectively; sketches merge only when width, depth and seed all
// match.
func NewCountMin(width, depth int, seed uint64) *CountMin {
	if width < 2 {
		width = 2
	}
	if depth < 1 {
		depth = 1
	}
	c := &CountMin{
		width:    width,
		depth:    depth,
		seed:     seed,
		rowSeeds: make([]uint64, depth),
		cells:    make([]uint64, width*depth),
	}
	s := seed
	for i := range c.rowSeeds {
		s = mix(s ^ uint64(i+1))
		c.rowSeeds[i] = s
	}
	return c
}

// Width returns the sketch width (cells per row).
func (c *CountMin) Width() int { return c.width }

// Depth returns the sketch depth (hash rows).
func (c *CountMin) Depth() int { return c.depth }

// Seed returns the hash seed.
func (c *CountMin) Seed() uint64 { return c.seed }

// MemoryBytes returns the sketch's fixed footprint (cells only) — the
// O(width·depth) term of the accounting bound.
func (c *CountMin) MemoryBytes() int { return len(c.cells) * 8 }

func satAdd(a, b uint64) uint64 {
	if s := a + b; s >= a {
		return s
	}
	return math.MaxUint64
}

// ceilScale multiplies v by factor (in (0,1)), rounding up so decayed
// counters still dominate the identically-decayed true counts.
func ceilScale(v uint64, factor float64) uint64 {
	if v == 0 {
		return 0
	}
	return uint64(math.Ceil(float64(v) * factor))
}

// Update adds delta to key with conservative update: only the cells that
// would otherwise fall below the key's new estimate are raised, which
// keeps every cell the tightest overestimate the row can prove. Returns
// the key's estimate after the update.
func (c *CountMin) Update(key, delta uint64) uint64 {
	if delta == 0 {
		return c.Estimate(key)
	}
	est := uint64(math.MaxUint64)
	for i := 0; i < c.depth; i++ {
		v := c.cells[i*c.width+int(mix(key^c.rowSeeds[i])%uint64(c.width))]
		if v < est {
			est = v
		}
	}
	target := satAdd(est, delta)
	for i := 0; i < c.depth; i++ {
		cell := &c.cells[i*c.width+int(mix(key^c.rowSeeds[i])%uint64(c.width))]
		if *cell < target {
			*cell = target
		}
	}
	return target
}

// Estimate returns the key's count upper bound (the row minimum).
func (c *CountMin) Estimate(key uint64) uint64 {
	est := uint64(math.MaxUint64)
	for i := 0; i < c.depth; i++ {
		v := c.cells[i*c.width+int(mix(key^c.rowSeeds[i])%uint64(c.width))]
		if v < est {
			est = v
		}
	}
	return est
}

// Merge folds o into c element-wise (saturating). Merged estimates remain
// overestimates of the summed streams. Panics if the sketches are not
// dimension- and seed-compatible: merging misaligned rows would silently
// corrupt estimates, and shard sketches are always built from one config.
func (c *CountMin) Merge(o *CountMin) {
	if o.width != c.width || o.depth != c.depth || o.seed != c.seed {
		panic("sketch: merging incompatible count-min sketches")
	}
	for i, v := range o.cells {
		c.cells[i] = satAdd(c.cells[i], v)
	}
}

// Decay multiplies every cell by factor, rounding up so decayed cells
// still dominate the identically-decayed true counts. Factors outside
// (0,1) are ignored: 1 (and 0, the zero value) mean "no decay".
func (c *CountMin) Decay(factor float64) {
	if factor <= 0 || factor >= 1 {
		return
	}
	for i, v := range c.cells {
		c.cells[i] = ceilScale(v, factor)
	}
}

// Reset zeroes the sketch.
func (c *CountMin) Reset() {
	for i := range c.cells {
		c.cells[i] = 0
	}
}

// Clone returns a deep copy (for merge-at-report-time without disturbing
// the shard's live sketch).
func (c *CountMin) Clone() *CountMin {
	out := &CountMin{width: c.width, depth: c.depth, seed: c.seed}
	out.rowSeeds = append([]uint64(nil), c.rowSeeds...)
	out.cells = append([]uint64(nil), c.cells...)
	return out
}
