// accountant.go adapts the generic sketches to FasTrak's flow accounting:
// per-data-plane-shard sketches keyed by the measurement engine's
// statistics buckets (the per-VM/app aggregate patterns of §4.3.1, or
// exact flow patterns when aggregation is off), merged at report time
// into one bounded top-k view the local controller ships to the TOR.
package sketch

import (
	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/rules"
)

// Config parameterizes the flow accountant. The zero value is normalized
// to defaults.
type Config struct {
	// TopK is the space-saving capacity per shard: how many heavy-hitter
	// patterns each shard tracks exactly (default 1024). Reports are
	// exact whenever a shard's live pattern population stays below TopK.
	TopK int
	// Width and Depth size the count-min sketch (defaults 2048×4, i.e.
	// ε ≈ e/2048 of the observed packet total at δ ≈ e⁻⁴).
	Width, Depth int
	// Seed drives the deterministic hash rows (default 1).
	Seed uint64
	// Aggregate mirrors measure.Config.Aggregate: key by the egress and
	// ingress per-VM/app aggregates (the default) instead of exact flows.
	Aggregate bool
	// Decay is the per-epoch multiplicative decay factor in (0,1); 0 (or
	// 1) disables decay, leaving counters cumulative — the mode that is
	// differentially equivalent to the exact measurement engine.
	Decay float64
}

func (c Config) normalized() Config {
	if c.TopK <= 0 {
		c.TopK = 1024
	}
	if c.Width <= 0 {
		c.Width = 2048
	}
	if c.Depth <= 0 {
		c.Depth = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// patternLess is the deterministic field-wise total order on patterns —
// the tie-break the sketches need, without Pattern.String()'s allocation.
func patternLess(a, b rules.Pattern) bool {
	if a.Tenant != b.Tenant {
		return a.Tenant < b.Tenant
	}
	if a.AnyTenant != b.AnyTenant {
		return !a.AnyTenant
	}
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	if a.SrcPrefix != b.SrcPrefix {
		return a.SrcPrefix < b.SrcPrefix
	}
	if a.Dst != b.Dst {
		return a.Dst < b.Dst
	}
	if a.DstPrefix != b.DstPrefix {
		return a.DstPrefix < b.DstPrefix
	}
	if a.SrcPort != b.SrcPort {
		return a.SrcPort < b.SrcPort
	}
	if a.DstPort != b.DstPort {
		return a.DstPort < b.DstPort
	}
	return a.Proto < b.Proto
}

// hashPattern folds a pattern into the count-min key space with FNV-1a —
// seeded per sketch row downstream, allocation-free here.
func hashPattern(p rules.Pattern) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	step := func(v uint64) {
		h ^= v
		h *= prime
	}
	step(uint64(p.Tenant))
	if p.AnyTenant {
		step(1)
	} else {
		step(0)
	}
	step(uint64(p.Src))
	step(uint64(uint32(p.SrcPrefix)))
	step(uint64(p.Dst))
	step(uint64(uint32(p.DstPrefix)))
	step(uint64(p.SrcPort))
	step(uint64(p.DstPort))
	step(uint64(p.Proto))
	return h
}

// ShardSketch is one data-plane shard's accounting state: a top-k over
// patterns plus count-min sketches for packets and bytes of everything
// (including the long tail the top-k evicted). Single-writer: the shard
// that forwards the packets owns it; readers merge quiesced copies (the
// same validity contract as ShardedPlane.FlowSnapshot).
type ShardSketch struct {
	cfg   Config
	top   *SpaceSaving[rules.Pattern]
	pkts  *CountMin
	bytes *CountMin

	counters metrics.SketchCounters
}

// NewShard builds one shard's sketch set from a normalized config.
func NewShard(cfg Config) *ShardSketch {
	cfg = cfg.normalized()
	return &ShardSketch{
		cfg:   cfg,
		top:   NewSpaceSaving[rules.Pattern](cfg.TopK, patternLess),
		pkts:  NewCountMin(cfg.Width, cfg.Depth, cfg.Seed),
		bytes: NewCountMin(cfg.Width, cfg.Depth, cfg.Seed),
	}
}

// Observe accounts one forwarded packet (or TSO super-packet: pkts wire
// segments of bytes total) against the flow's statistics buckets. This is
// the data-path hot call: no allocation once the flow's patterns are
// monitored.
func (s *ShardSketch) Observe(k packet.FlowKey, pkts, bytes uint64) {
	if s.cfg.Aggregate {
		s.observePattern(rules.AggregatePattern(k.EgressAggregate()), pkts, bytes)
		s.observePattern(rules.AggregatePattern(k.IngressAggregate()), pkts, bytes)
		return
	}
	s.observePattern(rules.ExactPattern(k), pkts, bytes)
}

func (s *ShardSketch) observePattern(p rules.Pattern, pkts, bytes uint64) {
	h := hashPattern(p)
	s.pkts.Update(h, pkts)
	s.bytes.Update(h, bytes)
	s.top.Update(p, pkts, bytes)
	s.counters.Updates++
}

// EstimatePkts returns the pattern's packet-count upper bound from the
// count-min sketch — available even for patterns the top-k evicted.
func (s *ShardSketch) EstimatePkts(p rules.Pattern) uint64 {
	return s.pkts.Estimate(hashPattern(p))
}

// EstimateBytes is EstimatePkts for bytes.
func (s *ShardSketch) EstimateBytes(p rules.Pattern) uint64 {
	return s.bytes.Estimate(hashPattern(p))
}

// Merge folds another shard's sketch into this one.
func (s *ShardSketch) Merge(o *ShardSketch) {
	s.top.Merge(o.top)
	s.pkts.Merge(o.pkts)
	s.bytes.Merge(o.bytes)
	s.counters = s.counters.Add(o.counters)
	s.counters.Merges++
}

// Clone deep-copies the shard state (merge-at-report-time input).
func (s *ShardSketch) Clone() *ShardSketch {
	return &ShardSketch{
		cfg:      s.cfg,
		top:      s.top.Clone(),
		pkts:     s.pkts.Clone(),
		bytes:    s.bytes.Clone(),
		counters: s.counters,
	}
}

// Advance applies the configured per-epoch decay (a no-op with decay
// off, the differential-oracle mode).
func (s *ShardSketch) Advance() {
	if s.cfg.Decay <= 0 || s.cfg.Decay >= 1 {
		return
	}
	s.top.Decay(s.cfg.Decay)
	s.pkts.Decay(s.cfg.Decay)
	s.bytes.Decay(s.cfg.Decay)
	s.counters.Decays++
}

// Reset zeroes all accounting (counters are kept — they are lifetime
// totals, like the vswitch's).
func (s *ShardSketch) Reset() {
	s.top.Reset()
	s.pkts.Reset()
	s.bytes.Reset()
}

// Floor is the merged space-saving floor: the maximum true packet count
// any unreported pattern can have.
func (s *ShardSketch) Floor() uint64 { return s.top.Floor() }

// Counters returns this shard's sketch counters.
func (s *ShardSketch) Counters() metrics.SketchCounters {
	c := s.counters
	c.Evictions = s.top.Evictions
	return c
}

// MemoryBytes is the shard's bounded accounting footprint: O(TopK +
// Width·Depth), independent of the number of live flows.
func (s *ShardSketch) MemoryBytes() int {
	perEntry := 48 // Entry: 20-byte pattern padded + 3 uint64 counters
	return s.top.K()*perEntry + s.pkts.MemoryBytes() + s.bytes.MemoryBytes()
}

// PatternCount is one reported heavy hitter: cumulative (or decayed)
// packet and byte totals with the space-saving error bound.
type PatternCount struct {
	Pattern rules.Pattern
	Pkts    uint64
	Bytes   uint64
	// Err bounds the packet overestimate: true ≥ Pkts - Err.
	Err uint64
}

// Report returns the shard's monitored patterns in canonical order
// (packet count descending, pattern order ascending).
func (s *ShardSketch) Report() []PatternCount {
	entries := s.top.Entries()
	out := make([]PatternCount, len(entries))
	for i, e := range entries {
		out[i] = PatternCount{Pattern: e.Key, Pkts: e.Count, Bytes: e.Aux, Err: e.Err}
	}
	s.counters.Reports++
	return out
}

// Accountant owns one ShardSketch per data-plane shard and produces the
// merged report. Shard 0 doubles as the inline path's sketch (the
// deterministic sim configuration has exactly one).
type Accountant struct {
	cfg    Config
	shards []*ShardSketch
}

// New builds an accountant with `shards` shard sketches (clamped ≥ 1).
func New(cfg Config, shards int) *Accountant {
	cfg = cfg.normalized()
	if shards < 1 {
		shards = 1
	}
	a := &Accountant{cfg: cfg}
	for i := 0; i < shards; i++ {
		a.shards = append(a.shards, NewShard(cfg))
	}
	return a
}

// Config returns the normalized configuration.
func (a *Accountant) Config() Config { return a.cfg }

// Shards returns the shard count.
func (a *Accountant) Shards() int { return len(a.shards) }

// Shard returns shard i's sketch (the single-writer handle the data
// plane feeds).
func (a *Accountant) Shard(i int) *ShardSketch { return a.shards[i] }

// Floor returns the largest per-shard space-saving floor: an upper bound
// on the overcount any one shard's monitored entry can carry, and the
// charge one-sided keys absorb when shards merge.
func (a *Accountant) Floor() uint64 {
	var f uint64
	for _, s := range a.shards {
		if x := s.Floor(); x > f {
			f = x
		}
	}
	return f
}

// Observe feeds shard 0 — the convenience entry point for the inline
// (unsharded) data path.
func (a *Accountant) Observe(k packet.FlowKey, pkts, bytes uint64) {
	a.shards[0].Observe(k, pkts, bytes)
}

// Merged returns a merged copy of every shard's sketch. Only valid when
// the shards are quiesced (after ShardedPlane.Barrier, or in the inline/
// sim configuration) — it reads shard-private state.
func (a *Accountant) Merged() *ShardSketch {
	m := a.shards[0].Clone()
	for _, s := range a.shards[1:] {
		m.Merge(s)
	}
	return m
}

// Report is the merged heavy-hitter report (same validity contract as
// Merged).
func (a *Accountant) Report() []PatternCount {
	if len(a.shards) == 1 {
		return a.shards[0].Report()
	}
	return a.Merged().Report()
}

// Advance applies the per-epoch decay to every shard.
func (a *Accountant) Advance() {
	for _, s := range a.shards {
		s.Advance()
	}
}

// Counters returns the summed shard counters (same validity contract as
// Merged).
func (a *Accountant) Counters() metrics.SketchCounters {
	var out metrics.SketchCounters
	for _, s := range a.shards {
		out = out.Add(s.Counters())
	}
	return out
}

// MemoryBytes sums the shard footprints.
func (a *Accountant) MemoryBytes() int {
	n := 0
	for _, s := range a.shards {
		n += s.MemoryBytes()
	}
	return n
}
