// topk.go is the space-saving (Metwally et al.) top-k structure: exactly
// k monitored keys, each carrying a count upper bound and the maximum
// error the bound hides. New keys take over the minimum entry, inheriting
// its count as their error — the classic guarantee that any key whose
// true count exceeds the minimum monitored count is always present.
package sketch

import "sort"

// Entry is one monitored key.
type Entry[K comparable] struct {
	Key K
	// Count is the key's count upper bound: true count ≤ Count ≤ true
	// count + Err.
	Count uint64
	// Err is the maximum overestimate, inherited from the entry the key
	// took over (0 while the structure has never evicted — counts exact).
	Err uint64
	// Aux is a secondary sum carried alongside Count (the accountant uses
	// it for bytes); it inherits the takeover victim's Aux the same way,
	// so it is an overestimate with the same Err semantics scaled by the
	// stream's bytes-per-packet.
	Aux uint64
}

// SpaceSaving is a deterministic space-saving structure: eviction ties
// break by the caller's key order (the largest key among minimum counts
// goes first), so two instances fed the same update sequence are always
// in identical states. Not safe for concurrent use.
type SpaceSaving[K comparable] struct {
	k    int
	less func(a, b K) bool
	idx  map[K]int
	heap []Entry[K] // min-heap by (Count, then key descending)

	// Evictions counts takeovers (kept keys displaced by new ones);
	// summed across Merge so shard counters survive report merging.
	Evictions uint64
}

// NewSpaceSaving builds a top-k structure holding at most k keys (clamped
// to ≥1). less supplies the deterministic tie-break total order.
func NewSpaceSaving[K comparable](k int, less func(a, b K) bool) *SpaceSaving[K] {
	if k < 1 {
		k = 1
	}
	return &SpaceSaving[K]{
		k:    k,
		less: less,
		idx:  make(map[K]int, k),
		heap: make([]Entry[K], 0, k),
	}
}

// K returns the capacity.
func (s *SpaceSaving[K]) K() int { return s.k }

// Len returns the number of monitored keys.
func (s *SpaceSaving[K]) Len() int { return len(s.heap) }

// before reports whether a belongs nearer the heap root than b: lower
// count first, ties put the larger key first so it is evicted first.
func (s *SpaceSaving[K]) before(a, b Entry[K]) bool {
	if a.Count != b.Count {
		return a.Count < b.Count
	}
	return s.less(b.Key, a.Key)
}

func (s *SpaceSaving[K]) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !s.before(s.heap[i], s.heap[p]) {
			return
		}
		s.swap(i, p)
		i = p
	}
}

func (s *SpaceSaving[K]) siftDown(i int) {
	n := len(s.heap)
	for {
		least := i
		if l := 2*i + 1; l < n && s.before(s.heap[l], s.heap[least]) {
			least = l
		}
		if r := 2*i + 2; r < n && s.before(s.heap[r], s.heap[least]) {
			least = r
		}
		if least == i {
			return
		}
		s.swap(i, least)
		i = least
	}
}

func (s *SpaceSaving[K]) swap(i, j int) {
	s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
	s.idx[s.heap[i].Key] = i
	s.idx[s.heap[j].Key] = j
}

// Update adds count (and aux) to key, admitting it by takeover of the
// minimum entry when the structure is full.
func (s *SpaceSaving[K]) Update(key K, count, aux uint64) {
	if i, ok := s.idx[key]; ok {
		s.heap[i].Count = satAdd(s.heap[i].Count, count)
		s.heap[i].Aux = satAdd(s.heap[i].Aux, aux)
		s.siftDown(i)
		return
	}
	if len(s.heap) < s.k {
		s.heap = append(s.heap, Entry[K]{Key: key, Count: count, Aux: aux})
		s.idx[key] = len(s.heap) - 1
		s.siftUp(len(s.heap) - 1)
		return
	}
	// Take over the minimum: the newcomer could have up to victim.Count
	// occurrences the structure never saw, which becomes its Err.
	victim := s.heap[0]
	s.Evictions++
	delete(s.idx, victim.Key)
	s.heap[0] = Entry[K]{
		Key:   key,
		Count: satAdd(victim.Count, count),
		Err:   victim.Count,
		Aux:   satAdd(victim.Aux, aux),
	}
	s.idx[key] = 0
	s.siftDown(0)
}

// Estimate returns the key's count bound and error if monitored.
func (s *SpaceSaving[K]) Estimate(key K) (count, err uint64, ok bool) {
	i, ok := s.idx[key]
	if !ok {
		return 0, 0, false
	}
	return s.heap[i].Count, s.heap[i].Err, true
}

// Floor is the minimum monitored count — the maximum true count any
// absent key can have. 0 until the structure fills (counts exact).
func (s *SpaceSaving[K]) Floor() uint64 {
	if len(s.heap) < s.k {
		return 0
	}
	return s.heap[0].Count
}

// Entries returns the monitored set in canonical order: count descending,
// ties by key ascending.
func (s *SpaceSaving[K]) Entries() []Entry[K] {
	out := append([]Entry[K](nil), s.heap...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return s.less(out[i].Key, out[j].Key)
	})
	return out
}

// Merge folds o into s, preserving the overestimate and containment
// guarantees for the combined stream: a key one side never monitored may
// have occurred up to that side's Floor() times there, so the merged
// count and error are both charged that floor. When the union exceeds k,
// the smallest merged counts are dropped (ties keep the smaller key —
// the mirror of eviction order). Capacities and key orders must match by
// construction (shard sketches share one config).
func (s *SpaceSaving[K]) Merge(o *SpaceSaving[K]) {
	if o.k != s.k {
		panic("sketch: merging space-saving structures of different k")
	}
	fs, fo := s.Floor(), o.Floor()
	inO := make(map[K]bool, len(o.heap))
	for _, e := range o.heap {
		inO[e.Key] = true
	}
	union := make([]Entry[K], 0, len(s.heap)+len(o.heap))
	seen := make(map[K]int, len(s.heap)+len(o.heap))
	for _, e := range s.heap {
		if !inO[e.Key] {
			// Only in s: o may have seen it up to fo times.
			e.Count = satAdd(e.Count, fo)
			e.Err = satAdd(e.Err, fo)
		}
		seen[e.Key] = len(union)
		union = append(union, e)
	}
	for _, e := range o.heap {
		if i, ok := seen[e.Key]; ok {
			union[i].Count = satAdd(union[i].Count, e.Count)
			union[i].Err = satAdd(union[i].Err, e.Err)
			union[i].Aux = satAdd(union[i].Aux, e.Aux)
			continue
		}
		// Only in o: s may have seen it up to fs times.
		union = append(union, Entry[K]{
			Key:   e.Key,
			Count: satAdd(e.Count, fs),
			Err:   satAdd(e.Err, fs),
			Aux:   e.Aux,
		})
		seen[e.Key] = len(union) - 1
	}
	sort.Slice(union, func(i, j int) bool {
		if union[i].Count != union[j].Count {
			return union[i].Count > union[j].Count
		}
		return s.less(union[i].Key, union[j].Key)
	})
	if len(union) > s.k {
		union = union[:s.k]
	}
	s.heap = s.heap[:0]
	s.idx = make(map[K]int, len(union))
	s.heap = append(s.heap, union...)
	sort.Slice(s.heap, func(i, j int) bool { return s.before(s.heap[i], s.heap[j]) })
	for i, e := range s.heap {
		s.idx[e.Key] = i
	}
	s.Evictions += o.Evictions
}

// Decay multiplies every count, error and aux by factor, rounding up so
// the overestimate invariant survives. The heap is rebuilt: scaling is
// monotone but can create new ties, and the tie-break order must hold.
func (s *SpaceSaving[K]) Decay(factor float64) {
	if factor <= 0 || factor >= 1 {
		return
	}
	for i := range s.heap {
		s.heap[i].Count = ceilScale(s.heap[i].Count, factor)
		s.heap[i].Err = ceilScale(s.heap[i].Err, factor)
		s.heap[i].Aux = ceilScale(s.heap[i].Aux, factor)
	}
	sort.Slice(s.heap, func(i, j int) bool { return s.before(s.heap[i], s.heap[j]) })
	for i, e := range s.heap {
		s.idx[e.Key] = i
	}
}

// Reset empties the structure.
func (s *SpaceSaving[K]) Reset() {
	s.heap = s.heap[:0]
	s.idx = make(map[K]int, s.k)
}

// Clone returns a deep copy.
func (s *SpaceSaving[K]) Clone() *SpaceSaving[K] {
	out := &SpaceSaving[K]{k: s.k, less: s.less, Evictions: s.Evictions}
	out.heap = append([]Entry[K](nil), s.heap...)
	out.idx = make(map[K]int, len(out.heap))
	for i, e := range out.heap {
		out.idx[e.Key] = i
	}
	return out
}
