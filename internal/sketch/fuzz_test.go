package sketch

import (
	"encoding/binary"
	"testing"
)

// FuzzCountMinUpdateMergeDecay drives a pair of count-min sketches with a
// fuzzer-chosen op stream and checks the invariants that matter: estimates
// never underestimate the true per-key totals, merge preserves that for
// the combined stream, and decay preserves dominance over decayed truth.
func FuzzCountMinUpdateMergeDecay(f *testing.F) {
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 0, 5})
	f.Add([]byte{0, 7, 1, 2, 3, 4, 5, 6, 7, 200, 2, 128})
	f.Fuzz(func(t *testing.T, data []byte) {
		a := NewCountMin(32, 3, 1)
		b := NewCountMin(32, 3, 1)
		truthA := make(map[uint64]uint64)
		truthB := make(map[uint64]uint64)
		decays := 0
		for len(data) >= 10 {
			op := data[0]
			key := binary.LittleEndian.Uint64(data[1:9]) % 512
			amt := uint64(data[9])
			data = data[10:]
			switch op % 3 {
			case 0:
				a.Update(key, amt)
				truthA[key] += amt
			case 1:
				b.Update(key, amt)
				truthB[key] += amt
			case 2:
				// Bound decay rounds: each ceil-decay can add rounding slack
				// relative to the decayed truth we track with integer math,
				// so keep the fuzz oracle simple — decay both truth and
				// sketch identically and only a few times.
				if decays < 4 {
					a.Decay(0.5)
					for k, v := range truthA {
						truthA[k] = ceilScale(v, 0.5)
					}
					decays++
				}
			}
		}
		check := func(cm *CountMin, truth map[uint64]uint64, what string) {
			for k, want := range truth {
				if got := cm.Estimate(k); got < want {
					t.Fatalf("%s: Estimate(%d) = %d < true %d", what, k, got, want)
				}
			}
		}
		check(a, truthA, "a")
		check(b, truthB, "b")
		a.Merge(b)
		for k, v := range truthB {
			truthA[k] += v
		}
		check(a, truthA, "merged")
	})
}

// FuzzSpaceSavingGuarantees drives a space-saving structure (k=4, heavy
// eviction) with fuzzer-chosen updates, merges and decays, checking the
// containment and overestimate bounds against exact truth throughout.
func FuzzSpaceSavingGuarantees(f *testing.F) {
	f.Add([]byte{0, 1, 1, 0, 2, 1, 0, 3, 1, 2})
	f.Add([]byte{0, 9, 200, 1, 9, 3, 0, 8, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		a := NewSpaceSaving[int](4, intLess)
		b := NewSpaceSaving[int](4, intLess)
		truth := make(map[int]uint64) // combined-stream truth
		for len(data) >= 3 {
			op, key, amt := data[0], int(data[1]%32), uint64(data[2])
			data = data[3:]
			switch op % 3 {
			case 0:
				a.Update(key, amt, amt*2)
				truth[key] += amt
			case 1:
				b.Update(key, amt, amt*2)
				truth[key] += amt
			case 2:
				// Merge b into a and keep going: post-merge updates land in
				// a fresh b, which is exactly the multi-epoch shard shape.
				a.Merge(b)
				b = NewSpaceSaving[int](4, intLess)
			}
		}
		a.Merge(b)
		floor := a.Floor()
		for key, want := range truth {
			got, errb, ok := a.Estimate(key)
			if !ok {
				if want > floor {
					t.Fatalf("containment violated: key %d true %d > floor %d", key, want, floor)
				}
				continue
			}
			if got < want {
				t.Fatalf("Estimate(%d) = %d underestimates true %d", key, got, want)
			}
			if got-errb > want {
				t.Fatalf("key %d guaranteed count %d exceeds true %d", key, got-errb, want)
			}
		}
	})
}
