package sketch

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/packet"
	"repro/internal/rules"
)

// --- count-min properties -------------------------------------------------

// TestCountMinOverestimateOnly is the core guarantee: for every inserted
// key, Estimate ≥ true count, across many seeds and skewed key
// distributions that force collisions (width far below distinct keys).
func TestCountMinOverestimateOnly(t *testing.T) {
	seeds := 50
	if testing.Short() {
		seeds = 10
	}
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		cm := NewCountMin(64, 3, uint64(seed+1))
		truth := make(map[uint64]uint64)
		for i := 0; i < 5000; i++ {
			// Zipf-ish: low keys dominate, forcing heavy collisions in a
			// 64-wide sketch with up to 512 distinct keys.
			key := uint64(rng.Intn(1 << uint(1+rng.Intn(9))))
			delta := uint64(1 + rng.Intn(100))
			truth[key] += delta
			cm.Update(key, delta)
		}
		for key, want := range truth {
			if got := cm.Estimate(key); got < want {
				t.Fatalf("seed %d: Estimate(%d) = %d underestimates true count %d", seed, key, got, want)
			}
		}
	}
}

// TestCountMinExactWithoutCollisions: with width much larger than the key
// population the conservative-update estimate is exact.
func TestCountMinExactWithoutCollisions(t *testing.T) {
	cm := NewCountMin(1<<14, 4, 7)
	truth := make(map[uint64]uint64)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		key := uint64(rng.Intn(50))
		truth[key] += 3
		cm.Update(key, 3)
	}
	for key, want := range truth {
		if got := cm.Estimate(key); got != want {
			t.Fatalf("Estimate(%d) = %d, want exact %d", key, got, want)
		}
	}
}

// TestCountMinMergeOverestimatesSum: merging shard sketches keeps the
// overestimate guarantee for the combined stream.
func TestCountMinMergeOverestimatesSum(t *testing.T) {
	for seed := 0; seed < 20; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		a := NewCountMin(64, 3, 99)
		b := NewCountMin(64, 3, 99)
		truth := make(map[uint64]uint64)
		for i := 0; i < 2000; i++ {
			key := uint64(rng.Intn(256))
			delta := uint64(1 + rng.Intn(10))
			truth[key] += delta
			if rng.Intn(2) == 0 {
				a.Update(key, delta)
			} else {
				b.Update(key, delta)
			}
		}
		a.Merge(b)
		for key, want := range truth {
			if got := a.Estimate(key); got < want {
				t.Fatalf("seed %d: merged Estimate(%d) = %d < true %d", seed, key, got, want)
			}
		}
	}
}

// TestCountMinMergeAssociative: count-min merge is exactly associative —
// (a+b)+c == a+(b+c) cell for cell, any grouping, any order.
func TestCountMinMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	mk := func() *CountMin {
		cm := NewCountMin(32, 3, 11)
		for i := 0; i < 500; i++ {
			cm.Update(uint64(rng.Intn(100)), uint64(1+rng.Intn(5)))
		}
		return cm
	}
	a, b, c := mk(), mk(), mk()

	left := a.Clone()
	left.Merge(b)
	left.Merge(c)

	bc := b.Clone()
	bc.Merge(c)
	right := a.Clone()
	right.Merge(bc)

	rev := c.Clone()
	rev.Merge(b)
	rev.Merge(a)

	if !reflect.DeepEqual(left.cells, right.cells) {
		t.Fatal("count-min merge is not associative")
	}
	if !reflect.DeepEqual(left.cells, rev.cells) {
		t.Fatal("count-min merge is not commutative")
	}
}

// TestCountMinMergeIncompatiblePanics pins the misconfiguration guard.
func TestCountMinMergeIncompatiblePanics(t *testing.T) {
	for _, o := range []*CountMin{
		NewCountMin(32, 3, 2), // seed mismatch
		NewCountMin(64, 3, 1), // width mismatch
		NewCountMin(32, 4, 1), // depth mismatch
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("merging incompatible sketches did not panic")
				}
			}()
			NewCountMin(32, 3, 1).Merge(o)
		}()
	}
}

// TestCountMinDecayPreservesDominance: decayed estimates still dominate
// the identically-decayed true counts (ceil rounding).
func TestCountMinDecayPreservesDominance(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	cm := NewCountMin(64, 3, 3)
	truth := make(map[uint64]uint64)
	for i := 0; i < 3000; i++ {
		key := uint64(rng.Intn(200))
		truth[key]++
		cm.Update(key, 1)
	}
	cm.Decay(0.5)
	for key, want := range truth {
		decayedTruth := ceilScale(want, 0.5)
		if got := cm.Estimate(key); got < decayedTruth {
			t.Fatalf("post-decay Estimate(%d) = %d < decayed truth %d", key, got, decayedTruth)
		}
	}
}

// TestCountMinDeterministic: same seed + same update sequence ⇒ identical
// state; different seed ⇒ (almost surely) different cells.
func TestCountMinDeterministic(t *testing.T) {
	feed := func(cm *CountMin) {
		for i := 0; i < 1000; i++ {
			cm.Update(uint64(i%97), uint64(1+i%7))
		}
	}
	a, b := NewCountMin(64, 4, 12345), NewCountMin(64, 4, 12345)
	feed(a)
	feed(b)
	if !reflect.DeepEqual(a.cells, b.cells) {
		t.Fatal("same seed, same stream: cells differ")
	}
	c := NewCountMin(64, 4, 54321)
	feed(c)
	if reflect.DeepEqual(a.cells, c.cells) {
		t.Fatal("different seeds produced identical cells — hashing ignores the seed?")
	}
}

// --- space-saving properties ----------------------------------------------

func intLess(a, b int) bool { return a < b }

// TestSpaceSavingExactBelowK: while fewer than k distinct keys have been
// seen, every count is exact with Err = 0.
func TestSpaceSavingExactBelowK(t *testing.T) {
	ss := NewSpaceSaving[int](16, intLess)
	truth := make(map[int]uint64)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		key := rng.Intn(16) // ≤ k distinct
		delta := uint64(1 + rng.Intn(9))
		truth[key] += delta
		ss.Update(key, delta, 0)
	}
	if ss.Floor() != 0 && ss.Len() < ss.K() {
		t.Fatalf("Floor() = %d before the structure filled", ss.Floor())
	}
	for key, want := range truth {
		got, errb, ok := ss.Estimate(key)
		if !ok || got != want || errb != 0 {
			t.Fatalf("Estimate(%d) = (%d, %d, %v), want exact (%d, 0, true)", key, got, errb, ok, want)
		}
	}
}

// TestSpaceSavingGuarantees is the Metwally containment + error-bound
// property under heavy eviction pressure: every key with true count >
// Floor() is monitored, and every monitored key's Count is in
// [true, true+Err].
func TestSpaceSavingGuarantees(t *testing.T) {
	seeds := 50
	if testing.Short() {
		seeds = 10
	}
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		ss := NewSpaceSaving[int](8, intLess)
		truth := make(map[int]uint64)
		for i := 0; i < 4000; i++ {
			// Skewed stream over 64 keys with only 8 slots.
			key := rng.Intn(1 << uint(1+rng.Intn(6)))
			truth[key]++
			ss.Update(key, 1, 0)
		}
		floor := ss.Floor()
		for key, want := range truth {
			got, errb, ok := ss.Estimate(key)
			if !ok {
				if want > floor {
					t.Fatalf("seed %d: key %d (true %d > floor %d) missing — containment violated", seed, key, want, floor)
				}
				continue
			}
			if got < want {
				t.Fatalf("seed %d: Estimate(%d) = %d underestimates true %d", seed, key, got, want)
			}
			if got-errb > want {
				t.Fatalf("seed %d: key %d guaranteed count %d exceeds true %d", seed, key, got-errb, want)
			}
		}
	}
}

// TestSpaceSavingMergeGuarantees: after merging two shard structures,
// containment and the error bound hold for the combined stream.
func TestSpaceSavingMergeGuarantees(t *testing.T) {
	seeds := 30
	if testing.Short() {
		seeds = 8
	}
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		a := NewSpaceSaving[int](8, intLess)
		b := NewSpaceSaving[int](8, intLess)
		truth := make(map[int]uint64)
		for i := 0; i < 3000; i++ {
			key := rng.Intn(1 << uint(1+rng.Intn(6)))
			truth[key]++
			if rng.Intn(2) == 0 {
				a.Update(key, 1, 0)
			} else {
				b.Update(key, 1, 0)
			}
		}
		a.Merge(b)
		floor := a.Floor()
		for key, want := range truth {
			got, errb, ok := a.Estimate(key)
			if !ok {
				if want > floor {
					t.Fatalf("seed %d: merged containment violated: key %d true %d > floor %d", seed, key, want, floor)
				}
				continue
			}
			if got < want {
				t.Fatalf("seed %d: merged Estimate(%d) = %d < true %d", seed, key, got, want)
			}
			if got-errb > want {
				t.Fatalf("seed %d: merged key %d guaranteed %d exceeds true %d", seed, key, got-errb, want)
			}
		}
	}
}

// TestSpaceSavingMergeExactAssociativeBelowK: in the no-eviction regime
// (k ≥ distinct keys — the differential-oracle regime) merge is exactly
// associative and commutative: identical Entries() for any grouping.
func TestSpaceSavingMergeExactAssociativeBelowK(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	mk := func() *SpaceSaving[int] {
		ss := NewSpaceSaving[int](64, intLess) // 64 slots, ≤ 32 keys
		for i := 0; i < 800; i++ {
			ss.Update(rng.Intn(32), uint64(1+rng.Intn(4)), uint64(rng.Intn(100)))
		}
		return ss
	}
	a, b, c := mk(), mk(), mk()

	left := a.Clone()
	left.Merge(b)
	left.Merge(c)

	bc := b.Clone()
	bc.Merge(c)
	right := a.Clone()
	right.Merge(bc)

	rev := c.Clone()
	rev.Merge(b)
	rev.Merge(a)

	if !reflect.DeepEqual(left.Entries(), right.Entries()) {
		t.Fatal("space-saving merge not associative below k")
	}
	if !reflect.DeepEqual(left.Entries(), rev.Entries()) {
		t.Fatal("space-saving merge not commutative below k")
	}
}

// TestSpaceSavingDeterministicEviction: two instances fed the same stream
// are in identical states, including after evictions and decay.
func TestSpaceSavingDeterministicEviction(t *testing.T) {
	feed := func(ss *SpaceSaving[int]) {
		for i := 0; i < 2000; i++ {
			ss.Update(i%37, uint64(1+i%5), uint64(i%11))
			if i%500 == 499 {
				ss.Decay(0.5)
			}
		}
	}
	a, b := NewSpaceSaving[int](8, intLess), NewSpaceSaving[int](8, intLess)
	feed(a)
	feed(b)
	if !reflect.DeepEqual(a.Entries(), b.Entries()) {
		t.Fatal("same stream produced different space-saving states")
	}
}

// TestSpaceSavingDecayPreservesBound: after decay, Count still dominates
// the identically-decayed true count, and Count-Err stays a lower bound.
func TestSpaceSavingDecayPreservesBound(t *testing.T) {
	ss := NewSpaceSaving[int](32, intLess)
	truth := make(map[int]uint64)
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 1000; i++ {
		key := rng.Intn(32)
		truth[key]++
		ss.Update(key, 1, 0)
	}
	ss.Decay(0.25)
	for key, want := range truth {
		decayed := ceilScale(want, 0.25)
		got, errb, ok := ss.Estimate(key)
		if !ok {
			t.Fatalf("key %d vanished during decay", key)
		}
		if got < decayed {
			t.Fatalf("post-decay Estimate(%d) = %d < decayed truth %d", key, got, decayed)
		}
		_ = errb
	}
}

// --- accountant -----------------------------------------------------------

func flowKey(i int) packet.FlowKey {
	return packet.FlowKey{
		Tenant:  packet.TenantID(1 + i%4),
		Src:     packet.IP(0x0a000000 + uint32(i)),
		Dst:     packet.IP(0x0a800000 + uint32(i%16)),
		SrcPort: uint16(10000 + i),
		DstPort: uint16(1000 + i%8),
		Proto:   packet.ProtoTCP,
	}
}

// TestAccountantMergedReportMatchesSingleShard: splitting one stream
// across shards and merging reproduces the single-sketch report exactly
// in the no-eviction regime.
func TestAccountantMergedReportMatchesSingleShard(t *testing.T) {
	cfg := Config{TopK: 256, Width: 1 << 12, Depth: 4, Seed: 7, Aggregate: true}
	one := New(cfg, 1)
	four := New(cfg, 4)
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 5000; i++ {
		k := flowKey(rng.Intn(64))
		bytes := uint64(64 + rng.Intn(1400))
		one.Observe(k, 1, bytes)
		four.Shard(rng.Intn(4)).Observe(k, 1, bytes)
	}
	if !reflect.DeepEqual(one.Report(), four.Merged().Report()) {
		t.Fatal("sharded+merged report differs from single-shard report")
	}
}

// TestAccountantAggregateKeying: aggregate mode accounts each packet to
// both its egress and ingress aggregate patterns, like the measurement
// engine's keyFor.
func TestAccountantAggregateKeying(t *testing.T) {
	a := New(Config{TopK: 64, Aggregate: true}, 1)
	k := flowKey(3)
	a.Observe(k, 2, 300)
	rep := a.Report()
	if len(rep) != 2 {
		t.Fatalf("aggregate observe produced %d patterns, want 2 (egress+ingress)", len(rep))
	}
	eg := rules.AggregatePattern(k.EgressAggregate())
	in := rules.AggregatePattern(k.IngressAggregate())
	seen := map[rules.Pattern]bool{}
	for _, pc := range rep {
		seen[pc.Pattern] = true
		if pc.Pkts != 2 || pc.Bytes != 300 || pc.Err != 0 {
			t.Fatalf("pattern %v counted (%d pkts, %d bytes, err %d), want (2, 300, 0)",
				pc.Pattern, pc.Pkts, pc.Bytes, pc.Err)
		}
	}
	if !seen[eg] || !seen[in] {
		t.Fatalf("report %v missing egress/ingress aggregates %v / %v", rep, eg, in)
	}
}

// TestAccountantExactKeying: exact mode keys by the full flow 5-tuple.
func TestAccountantExactKeying(t *testing.T) {
	a := New(Config{TopK: 64}, 1)
	k := flowKey(5)
	a.Observe(k, 1, 100)
	a.Observe(k, 1, 100)
	rep := a.Report()
	if len(rep) != 1 || rep[0].Pattern != rules.ExactPattern(k) || rep[0].Pkts != 2 {
		t.Fatalf("exact-mode report = %+v, want one ExactPattern entry with 2 pkts", rep)
	}
}

// TestAccountantCountersConserved: the summed counters reflect every
// observe/merge/report, and MemoryBytes is flow-count independent.
func TestAccountantCountersConserved(t *testing.T) {
	a := New(Config{TopK: 32, Width: 64, Depth: 2}, 2)
	before := a.MemoryBytes()
	for i := 0; i < 1000; i++ {
		a.Shard(i%2).Observe(flowKey(i), 1, 100)
	}
	if got := a.MemoryBytes(); got != before {
		t.Fatalf("MemoryBytes grew with flow count: %d -> %d", before, got)
	}
	c := a.Counters()
	// Aggregate defaults off here: one pattern per observe.
	if c.Updates != 1000 {
		t.Fatalf("Counters().Updates = %d, want 1000", c.Updates)
	}
	if c.Evictions == 0 {
		t.Fatal("1000 distinct-ish flows through a 32-slot top-k produced no evictions?")
	}
}

// TestPatternLessTotalOrder: patternLess is irreflexive, asymmetric and
// total over a field-diverse pattern sample (sorted order is unique).
func TestPatternLessTotalOrder(t *testing.T) {
	var pats []rules.Pattern
	for i := 0; i < 40; i++ {
		k := flowKey(i)
		pats = append(pats, rules.ExactPattern(k),
			rules.AggregatePattern(k.EgressAggregate()),
			rules.AggregatePattern(k.IngressAggregate()))
	}
	for _, a := range pats {
		if patternLess(a, a) {
			t.Fatalf("patternLess(%v, %v) — not irreflexive", a, a)
		}
		for _, b := range pats {
			if a == b {
				continue
			}
			if patternLess(a, b) == patternLess(b, a) {
				t.Fatalf("patternLess not a strict total order on %v vs %v", a, b)
			}
		}
	}
}
