package measure

import (
	"testing"
	"time"

	"repro/internal/openflow"
	"repro/internal/packet"
	"repro/internal/rules"
	"repro/internal/sim"
)

var flowAB = packet.FlowKey{
	Src: packet.MustParseIP("10.0.0.1"), Dst: packet.MustParseIP("10.0.0.2"),
	SrcPort: 40000, DstPort: 11211, Proto: packet.ProtoTCP, Tenant: 3,
}

// counterSource simulates a datapath whose counters grow at fixed rates.
type counterSource struct {
	eng  *sim.Engine
	pps  float64 // packets per second
	size int     // bytes per packet
	keys []packet.FlowKey
}

func (s *counterSource) read() []Reading {
	el := s.eng.Now().Seconds()
	out := make([]Reading, len(s.keys))
	for i, k := range s.keys {
		pkts := uint64(s.pps * el)
		out[i] = Reading{Key: k, Packets: pkts, Bytes: pkts * uint64(s.size)}
	}
	return out
}

func cfg() Config {
	return Config{
		SampleGap:         100 * time.Millisecond,
		Epoch:             500 * time.Millisecond,
		EpochsPerInterval: 2,
		HistoryIntervals:  4,
		Aggregate:         true,
	}
}

func TestMeasuresPPSAndBPS(t *testing.T) {
	eng := sim.NewEngine(1)
	src := &counterSource{eng: eng, pps: 5000, size: 750, keys: []packet.FlowKey{flowAB}}
	me := New(eng, cfg(), src.read)
	var reports []openflow.DemandReport
	me.OnReport = func(r openflow.DemandReport) { reports = append(reports, r) }
	me.Start()
	eng.RunUntil(3 * time.Second)
	me.Stop()

	if len(reports) < 2 {
		t.Fatalf("got %d reports", len(reports))
	}
	last := reports[len(reports)-1]
	// With aggregation, the flow shows up as two aggregates.
	if len(last.Entries) != 2 {
		t.Fatalf("entries = %d, want 2 aggregates", len(last.Entries))
	}
	for _, e := range last.Entries {
		if e.PPS < 4500 || e.PPS > 5500 {
			t.Errorf("pps = %v, want ~5000", e.PPS)
		}
		wantBPS := 5000.0 * 750 * 8
		if e.BPS < wantBPS*0.9 || e.BPS > wantBPS*1.1 {
			t.Errorf("bps = %v, want ~%v", e.BPS, wantBPS)
		}
		if e.MedianPPS <= 0 || e.ActiveEpochs == 0 {
			t.Errorf("median/active missing: %+v", e)
		}
	}
}

func TestAggregationMergesClientFlows(t *testing.T) {
	eng := sim.NewEngine(1)
	// 10 client flows to the same service port.
	keys := make([]packet.FlowKey, 10)
	for i := range keys {
		keys[i] = flowAB
		keys[i].SrcPort = uint16(40000 + i)
	}
	src := &counterSource{eng: eng, pps: 100, size: 100, keys: keys}
	me := New(eng, cfg(), src.read)
	var last openflow.DemandReport
	me.OnReport = func(r openflow.DemandReport) { last = r }
	me.Start()
	eng.RunUntil(2 * time.Second)
	me.Stop()

	// Ingress aggregate <dst, 11211> merges all ten; egress aggregates
	// remain distinct per client port.
	var ingress *openflow.DemandEntry
	for i := range last.Entries {
		e := &last.Entries[i]
		if e.Pattern.DstPort == 11211 && e.Pattern.SrcPrefix == 0 {
			ingress = e
		}
	}
	if ingress == nil {
		t.Fatal("no ingress aggregate found")
	}
	if ingress.PPS < 900 || ingress.PPS > 1100 {
		t.Errorf("aggregate pps = %v, want ~1000 (10 × 100)", ingress.PPS)
	}
}

func TestExactModeKeysPerFlow(t *testing.T) {
	eng := sim.NewEngine(1)
	c := cfg()
	c.Aggregate = false
	src := &counterSource{eng: eng, pps: 100, size: 100, keys: []packet.FlowKey{flowAB}}
	me := New(eng, c, src.read)
	var last openflow.DemandReport
	me.OnReport = func(r openflow.DemandReport) { last = r }
	me.Start()
	eng.RunUntil(2 * time.Second)
	me.Stop()
	if len(last.Entries) != 1 {
		t.Fatalf("entries = %d, want 1 exact flow", len(last.Entries))
	}
	if !last.Entries[0].Pattern.IsExact() {
		t.Error("pattern not exact in non-aggregating mode")
	}
}

func TestIdleFlowsAgeOut(t *testing.T) {
	eng := sim.NewEngine(1)
	src := &counterSource{eng: eng, pps: 1000, size: 100, keys: []packet.FlowKey{flowAB}}
	me := New(eng, cfg(), src.read)
	var reports []openflow.DemandReport
	me.OnReport = func(r openflow.DemandReport) { reports = append(reports, r) }
	me.Start()
	eng.RunUntil(2 * time.Second)
	// Stop traffic: counters freeze.
	src.pps = 0
	// Freeze counters by replacing the source output: zero growth.
	frozen := src.read()
	meSrcFrozen(me, frozen)
	eng.RunUntil(10 * time.Second)
	me.Stop()
	last := reports[len(reports)-1]
	if len(last.Entries) != 0 {
		t.Errorf("idle flow still reported after window drained: %d entries", len(last.Entries))
	}
}

// meSrcFrozen swaps the engine's source for one returning fixed counters.
func meSrcFrozen(me *Engine, frozen []Reading) {
	me.src = func() []Reading { return frozen }
}

func TestActiveEpochsCountsBursts(t *testing.T) {
	eng := sim.NewEngine(1)
	// Bursty flow: counters grow only during odd seconds.
	var pkts uint64
	src := func() []Reading {
		sec := int(eng.Now().Seconds())
		if sec%2 == 1 {
			pkts += 500
		}
		return []Reading{{Key: flowAB, Packets: pkts, Bytes: pkts * 100}}
	}
	me := New(eng, cfg(), src)
	var last openflow.DemandReport
	me.OnReport = func(r openflow.DemandReport) { last = r }
	me.Start()
	eng.RunUntil(8 * time.Second)
	me.Stop()
	if len(last.Entries) == 0 {
		t.Fatal("bursty flow not reported")
	}
	e := last.Entries[0]
	win := uint32(cfg().EpochsPerInterval * cfg().HistoryIntervals)
	if e.ActiveEpochs == 0 || e.ActiveEpochs >= win {
		t.Errorf("ActiveEpochs = %d, want within (0,%d) for a bursty flow", e.ActiveEpochs, win)
	}
}

func TestProfileExportImport(t *testing.T) {
	eng := sim.NewEngine(1)
	src := &counterSource{eng: eng, pps: 5000, size: 200, keys: []packet.FlowKey{flowAB}}
	me := New(eng, cfg(), src.read)
	me.OnReport = func(openflow.DemandReport) {}
	me.Start()
	eng.RunUntil(3 * time.Second)
	me.Stop()

	prof := me.ProfileFor(3, flowAB.Src)
	if len(prof.Entries) == 0 {
		t.Fatal("empty profile for active VM")
	}
	// Import into a fresh engine (the migration destination): the next
	// report already carries the flow's history.
	me2 := New(eng, cfg(), func() []Reading { return nil })
	me2.ImportProfile(prof)
	var got openflow.DemandReport
	me2.OnReport = func(r openflow.DemandReport) { got = r }
	me2.Start()
	eng.RunUntil(eng.Now() + 2*time.Second)
	me2.Stop()
	found := false
	for _, e := range got.Entries {
		if e.MedianPPS > 0 {
			found = true
		}
	}
	if !found {
		t.Error("imported profile did not seed medians")
	}
}

func TestProfileScopedToVM(t *testing.T) {
	eng := sim.NewEngine(1)
	other := flowAB
	other.Src = packet.MustParseIP("10.0.0.9")
	src := &counterSource{eng: eng, pps: 100, size: 100, keys: []packet.FlowKey{flowAB, other}}
	me := New(eng, cfg(), src.read)
	me.Start()
	eng.RunUntil(2 * time.Second)
	me.Stop()
	prof := me.ProfileFor(3, packet.MustParseIP("10.0.0.9"))
	for _, e := range prof.Entries {
		touches := (e.Pattern.SrcPrefix == 32 && e.Pattern.Src == other.Src) ||
			(e.Pattern.DstPrefix == 32 && e.Pattern.Dst == other.Src)
		if !touches {
			t.Errorf("profile leaked foreign aggregate %v", e.Pattern)
		}
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 9}, 5},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := median(c.in); got != c.want {
			t.Errorf("median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestReportDeterministicOrder(t *testing.T) {
	mkReport := func() openflow.DemandReport {
		eng := sim.NewEngine(1)
		keys := make([]packet.FlowKey, 20)
		for i := range keys {
			keys[i] = flowAB
			keys[i].DstPort = uint16(1000 + i)
		}
		src := &counterSource{eng: eng, pps: 100, size: 100, keys: keys}
		me := New(eng, cfg(), src.read)
		var last openflow.DemandReport
		me.OnReport = func(r openflow.DemandReport) { last = r }
		me.Start()
		eng.RunUntil(2 * time.Second)
		me.Stop()
		return last
	}
	a, b := mkReport(), mkReport()
	if len(a.Entries) != len(b.Entries) {
		t.Fatal("nondeterministic entry count")
	}
	for i := range a.Entries {
		if a.Entries[i].Pattern != b.Entries[i].Pattern {
			t.Fatalf("entry %d order differs", i)
		}
	}
}

var _ = rules.Pattern{} // keep import for pattern helpers in tests above
