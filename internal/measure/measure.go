// Package measure implements FasTrak's Measurement Engine (§4.3.1): it
// samples per-flow packet and byte counters twice within t time units to
// compute pps = Δ(p)/t and bps = Δ(b)/t, repeats every T for N epochs (a
// control interval C), aggregates flows per VM per application, and keeps
// a history of medians over the last M control intervals. Both the local
// controller (polling the vswitch datapath) and the TOR controller
// (polling TCAM counters) embed one.
package measure

import (
	"math/rand"
	"sort"
	"time"

	"repro/internal/openflow"
	"repro/internal/packet"
	"repro/internal/rules"
	"repro/internal/sim"
)

// Config sets the ME's timing parameters. The paper's prototype uses
// t = 100 ms, T ∈ {5 s, 0.5 s}, N = 2 (§5.2).
type Config struct {
	// SampleGap is t: the spacing of the two counter samples.
	SampleGap time.Duration
	// Epoch is T: the period between measurements.
	Epoch time.Duration
	// EpochsPerInterval is N: epochs per control interval.
	EpochsPerInterval int
	// HistoryIntervals is M: how many past control intervals feed the
	// median statistics.
	HistoryIntervals int
	// Aggregate enables the per-VM/per-application rule of thumb:
	// statistics keyed by <VM IP, L4 port, tenant> per direction
	// instead of full 6-tuples.
	Aggregate bool
}

// DefaultConfig matches the paper's prototype with the faster epoch.
func DefaultConfig() Config {
	return Config{
		SampleGap:         100 * time.Millisecond,
		Epoch:             500 * time.Millisecond,
		EpochsPerInterval: 2,
		HistoryIntervals:  4,
		Aggregate:         true,
	}
}

// Reading is one flow's cumulative counters at a sampling instant.
type Reading struct {
	Key     packet.FlowKey
	Packets uint64
	Bytes   uint64
}

// Source provides cumulative per-flow counters (the vswitch datapath or
// the ToR TCAM).
type Source func() []Reading

// PatternReading is one statistics bucket's cumulative counters at a
// sampling instant — counters already keyed by pattern, the shape the
// sketch accountant reports in.
type PatternReading struct {
	Pattern rules.Pattern
	Packets uint64
	Bytes   uint64
}

// PatternSource provides cumulative counters already aggregated per
// pattern (the sketch accountant's top-k). When set on an Engine it
// replaces the per-flow Source: the engine skips its own keyFor
// aggregation and feeds the buckets directly into the same two-sample
// Δ/gap rate pipeline, so everything downstream (windows, medians,
// activity gc, report emission) is byte-identical between the two feeds
// whenever the cumulative totals are.
type PatternSource func() []PatternReading

// sample is one epoch's rate measurement for one aggregate.
type sample struct {
	pps, bps float64
	epoch    uint32
}

// flowState tracks one aggregate across epochs.
type flowState struct {
	pattern rules.Pattern
	// window holds the last N×M epoch samples.
	window []sample
	// prev counters from the first of the two samples in this epoch.
	prevPkts, prevBytes uint64
	prevValid           bool
	// latest epoch rates.
	lastPPS, lastBPS float64
}

// Engine is one measurement engine instance.
type Engine struct {
	cfg Config
	eng *sim.Engine
	src Source
	// patSrc, when non-nil, overrides src (see PatternSource).
	patSrc PatternSource

	flows map[rules.Pattern]*flowState
	epoch uint32
	// interval counts completed control intervals.
	interval uint32

	// OnReport receives the demand report at each control interval
	// boundary.
	OnReport func(openflow.DemandReport)
	// ServerID stamps outgoing reports.
	ServerID uint32

	ticker  *sim.Ticker
	stopped bool

	// Stats fault surface (faults.StatsTap): reports can be lost with a
	// probability or delayed by a fixed amount, modelling a flaky control
	// path between ME and DE.
	lossProb float64
	lossRNG  *rand.Rand
	delay    time.Duration

	// Work accounts the number of samples taken (controller-overhead
	// experiment, §6.2.2).
	Samples uint64
	// ReportsLost and ReportsDelayed count reports affected by the
	// stats fault surface.
	ReportsLost    uint64
	ReportsDelayed uint64
}

// New builds an engine polling src.
func New(eng *sim.Engine, cfg Config, src Source) *Engine {
	if cfg.SampleGap <= 0 {
		cfg.SampleGap = 100 * time.Millisecond
	}
	if cfg.Epoch < cfg.SampleGap {
		cfg.Epoch = cfg.SampleGap * 2
	}
	if cfg.EpochsPerInterval <= 0 {
		cfg.EpochsPerInterval = 2
	}
	if cfg.HistoryIntervals <= 0 {
		cfg.HistoryIntervals = 4
	}
	return &Engine{cfg: cfg, eng: eng, src: src, flows: make(map[rules.Pattern]*flowState)}
}

// SetPatternSource switches the engine to a pre-aggregated feed (sketch
// accounting). Call before Start.
func (m *Engine) SetPatternSource(src PatternSource) { m.patSrc = src }

// Start begins periodic measurement.
func (m *Engine) Start() {
	m.stopped = false
	m.ticker = m.eng.Every(m.cfg.Epoch, m.runEpoch)
}

// Stop halts measurement.
func (m *Engine) Stop() {
	m.stopped = true
	if m.ticker != nil {
		m.ticker.Stop()
	}
}

// runEpoch takes the first sample now and the second SampleGap later.
func (m *Engine) runEpoch() {
	if m.stopped {
		return
	}
	m.takeSample(true)
	m.eng.After(m.cfg.SampleGap, func() {
		if m.stopped {
			return
		}
		m.takeSample(false)
		m.finishEpoch()
	})
}

// keyFor maps a concrete flow key to its statistics bucket.
func (m *Engine) keyFor(k packet.FlowKey) []rules.Pattern {
	if !m.cfg.Aggregate {
		return []rules.Pattern{rules.ExactPattern(k)}
	}
	// Per-VM/app aggregation: the flow contributes to both its egress
	// and ingress service aggregates (§4.3.1).
	return []rules.Pattern{
		rules.AggregatePattern(k.EgressAggregate()),
		rules.AggregatePattern(k.IngressAggregate()),
	}
}

func (m *Engine) takeSample(first bool) {
	m.Samples++
	// Accumulate cumulative counters per aggregate bucket.
	acc := make(map[rules.Pattern][2]uint64)
	if m.patSrc != nil {
		// Pre-aggregated feed: buckets arrive keyed; sum duplicates (shard
		// reports may repeat a pattern) and skip keyFor.
		for _, r := range m.patSrc() {
			cur := acc[r.Pattern]
			acc[r.Pattern] = [2]uint64{cur[0] + r.Packets, cur[1] + r.Bytes}
		}
	} else {
		for _, r := range m.src() {
			for _, pat := range m.keyFor(r.Key) {
				cur := acc[pat]
				acc[pat] = [2]uint64{cur[0] + r.Packets, cur[1] + r.Bytes}
			}
		}
	}
	for pat, v := range acc {
		st, ok := m.flows[pat]
		if !ok {
			st = &flowState{pattern: pat}
			m.flows[pat] = st
		}
		if first {
			st.prevPkts, st.prevBytes = v[0], v[1]
			st.prevValid = true
		} else if st.prevValid {
			dt := m.cfg.SampleGap.Seconds()
			var dp, db uint64
			if v[0] >= st.prevPkts {
				dp = v[0] - st.prevPkts
			}
			if v[1] >= st.prevBytes {
				db = v[1] - st.prevBytes
			}
			st.lastPPS = float64(dp) / dt
			st.lastBPS = float64(db) * 8 / dt
			st.prevValid = false
		}
	}
}

func (m *Engine) finishEpoch() {
	m.epoch++
	maxWindow := m.cfg.EpochsPerInterval * m.cfg.HistoryIntervals
	for _, st := range m.flows {
		st.window = append(st.window, sample{pps: st.lastPPS, bps: st.lastBPS, epoch: m.epoch})
		if len(st.window) > maxWindow {
			st.window = st.window[len(st.window)-maxWindow:]
		}
		st.lastPPS, st.lastBPS = 0, 0
	}
	if m.epoch%uint32(m.cfg.EpochsPerInterval) == 0 {
		m.interval++
		m.emitReport()
		m.gc()
	}
}

// gc drops aggregates with no activity across the whole window.
func (m *Engine) gc() {
	for pat, st := range m.flows {
		active := false
		for _, s := range st.window {
			if s.pps > 0 {
				active = true
				break
			}
		}
		if !active {
			delete(m.flows, pat)
		}
	}
}

// emitReport builds the control-interval demand report (§4.3.1).
func (m *Engine) emitReport() {
	if m.OnReport == nil {
		return
	}
	rep := openflow.DemandReport{ServerID: m.ServerID, Interval: m.interval}
	pats := make([]rules.Pattern, 0, len(m.flows))
	for pat := range m.flows {
		pats = append(pats, pat)
	}
	// Deterministic report order.
	sort.Slice(pats, func(i, j int) bool { return pats[i].String() < pats[j].String() })
	for _, pat := range pats {
		st := m.flows[pat]
		e := m.entryFor(st)
		if e.ActiveEpochs == 0 {
			continue
		}
		rep.Entries = append(rep.Entries, e)
	}
	m.deliver(rep)
}

// deliver routes one outgoing report through the stats fault surface:
// possibly dropped, possibly delayed, otherwise handed to OnReport.
func (m *Engine) deliver(rep openflow.DemandReport) {
	if m.lossProb > 0 && (m.lossProb >= 1 || (m.lossRNG != nil && m.lossRNG.Float64() < m.lossProb)) {
		m.ReportsLost++
		return
	}
	if m.delay > 0 {
		m.ReportsDelayed++
		m.eng.After(m.delay, func() {
			if !m.stopped {
				m.OnReport(rep)
			}
		})
		return
	}
	m.OnReport(rep)
}

// SetStatsLoss makes each outgoing report drop with the given probability
// (faults.StatsTap). A nil rng with prob in (0,1) never drops; prob ≥ 1
// always drops.
func (m *Engine) SetStatsLoss(prob float64, rng *rand.Rand) {
	m.lossProb = prob
	m.lossRNG = rng
}

// SetStatsDelay defers each outgoing report by d (faults.StatsTap).
func (m *Engine) SetStatsDelay(d time.Duration) { m.delay = d }

func (m *Engine) entryFor(st *flowState) openflow.DemandEntry {
	var ppsVals, bpsVals []float64
	var n uint32
	var last sample
	for _, s := range st.window {
		if s.pps > 0 {
			n++
			ppsVals = append(ppsVals, s.pps)
			bpsVals = append(bpsVals, s.bps)
		}
		last = s
	}
	return openflow.DemandEntry{
		Pattern:      st.pattern,
		PPS:          last.pps,
		BPS:          last.bps,
		Epoch:        last.epoch,
		MedianPPS:    median(ppsVals),
		MedianBPS:    median(bpsVals),
		ActiveEpochs: n,
	}
}

func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// Profile is a VM's network demand profile (§4.3.1): the aggregate
// history for flows touching the VM. It migrates with the VM and seeds
// offload decisions for clones.
type Profile struct {
	VMIP    packet.IP
	Tenant  packet.TenantID
	Entries []openflow.DemandEntry
}

// ProfileFor extracts the demand profile of one VM from current state.
func (m *Engine) ProfileFor(tenant packet.TenantID, vmIP packet.IP) Profile {
	p := Profile{VMIP: vmIP, Tenant: tenant}
	for pat, st := range m.flows {
		if pat.Tenant != tenant {
			continue
		}
		if (pat.SrcPrefix == 32 && pat.Src == vmIP) || (pat.DstPrefix == 32 && pat.Dst == vmIP) {
			e := m.entryFor(st)
			if e.ActiveEpochs > 0 {
				p.Entries = append(p.Entries, e)
			}
		}
	}
	sort.Slice(p.Entries, func(i, j int) bool {
		return p.Entries[i].Pattern.String() < p.Entries[j].Pattern.String()
	})
	return p
}

// ImportProfile seeds the engine with a migrated VM's history so offload
// decisions for it can be made on instantiation (§4.3.1).
func (m *Engine) ImportProfile(p Profile) {
	for _, e := range p.Entries {
		st, ok := m.flows[e.Pattern]
		if !ok {
			st = &flowState{pattern: e.Pattern}
			m.flows[e.Pattern] = st
		}
		// Seed the window with the profile's median so scores are
		// immediately meaningful.
		for i := uint32(0); i < e.ActiveEpochs; i++ {
			st.window = append(st.window, sample{pps: e.MedianPPS, bps: e.MedianBPS, epoch: e.Epoch})
		}
	}
}

// Interval returns the number of completed control intervals.
func (m *Engine) Interval() uint32 { return m.interval }
