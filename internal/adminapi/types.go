package adminapi

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/rules"
)

// PatternSpec is the JSON form of a rules.Pattern. Zero fields wildcard,
// matching the pattern model: empty IP = any, port 0 = any, proto 0 =
// any.
type PatternSpec struct {
	Tenant    uint32 `json:"tenant"`
	AnyTenant bool   `json:"any_tenant,omitempty"`
	Src       string `json:"src,omitempty"`
	SrcPrefix int    `json:"src_prefix,omitempty"`
	Dst       string `json:"dst,omitempty"`
	DstPrefix int    `json:"dst_prefix,omitempty"`
	SrcPort   uint16 `json:"src_port,omitempty"`
	DstPort   uint16 `json:"dst_port,omitempty"`
	Proto     byte   `json:"proto,omitempty"`
}

// Pattern converts the spec to the internal pattern. A set IP with a zero
// prefix gets /32: "this address" is the intuitive JSON meaning, and a
// prefix of 0 internally means "any", which would silently widen the
// rule.
func (ps PatternSpec) Pattern() (rules.Pattern, error) {
	p := rules.Pattern{
		Tenant:    packet.TenantID(ps.Tenant),
		AnyTenant: ps.AnyTenant,
		SrcPrefix: ps.SrcPrefix,
		DstPrefix: ps.DstPrefix,
		SrcPort:   ps.SrcPort,
		DstPort:   ps.DstPort,
		Proto:     ps.Proto,
	}
	if ps.Src != "" {
		ip, err := packet.ParseIP(ps.Src)
		if err != nil {
			return rules.Pattern{}, fmt.Errorf("adminapi: src: %w", err)
		}
		p.Src = ip
		if p.SrcPrefix == 0 {
			p.SrcPrefix = 32
		}
	}
	if ps.Dst != "" {
		ip, err := packet.ParseIP(ps.Dst)
		if err != nil {
			return rules.Pattern{}, fmt.Errorf("adminapi: dst: %w", err)
		}
		p.Dst = ip
		if p.DstPrefix == 0 {
			p.DstPrefix = 32
		}
	}
	return p, nil
}

// SpecOf renders a pattern back into its JSON form.
func SpecOf(p rules.Pattern) PatternSpec {
	ps := PatternSpec{
		Tenant:    uint32(p.Tenant),
		AnyTenant: p.AnyTenant,
		SrcPrefix: p.SrcPrefix,
		DstPrefix: p.DstPrefix,
		SrcPort:   p.SrcPort,
		DstPort:   p.DstPort,
		Proto:     p.Proto,
	}
	if p.SrcPrefix > 0 {
		ps.Src = p.Src.String()
	}
	if p.DstPrefix > 0 {
		ps.Dst = p.Dst.String()
	}
	return ps
}

// Health is the /healthz payload.
type Health struct {
	Role string `json:"role"` // "tord" or "agentd"
	// NowUS is the daemon's virtual time in microseconds (wall time
	// since start under the wall clock).
	NowUS int64 `json:"now_us"`
	// Agents lists attached agent server IDs (tord only).
	Agents []uint32 `json:"agents,omitempty"`
	// ServerID is this host's identity (agentd only).
	ServerID uint32 `json:"server_id,omitempty"`
	// Connected reports whether the control connection to the ToR is
	// currently up (agentd only; tord omits it).
	Connected *bool `json:"connected,omitempty"`
}

// Placement is one pattern's position in the offload machinery.
type Placement struct {
	Pattern string `json:"pattern"`
	// State is "offloaded", "installing", "removing" at the ToR, or
	// "installed" for a host-side placer redirect.
	State    string `json:"state"`
	Attempts int    `json:"attempts,omitempty"`
}

// HardwareRule is one installed TCAM entry with counters.
type HardwareRule struct {
	Pattern  string `json:"pattern"`
	Priority int    `json:"priority"`
	Queue    int    `json:"queue"`
	Packets  uint64 `json:"packets"`
	Bytes    uint64 `json:"bytes"`
}

// RulesReply is the /v1/rules GET payload.
type RulesReply struct {
	Rules    []HardwareRule `json:"rules"`
	TCAMUsed int            `json:"tcam_used"`
	TCAMCap  int            `json:"tcam_capacity"`
}

// VMRequest onboards a tenant VM (agentd POST /v1/vms).
type VMRequest struct {
	Tenant     uint32  `json:"tenant"`
	IP         string  `json:"ip"`
	VCPUs      int     `json:"vcpus,omitempty"`
	EgressBps  float64 `json:"egress_bps,omitempty"`
	IngressBps float64 `json:"ingress_bps,omitempty"`
}

// VMKeySpec identifies a tenant VM (agentd DELETE /v1/vms).
type VMKeySpec struct {
	Tenant uint32 `json:"tenant"`
	IP     string `json:"ip"`
}

// VMInfo is one onboarded VM in /v1/vms.
type VMInfo struct {
	Tenant uint32 `json:"tenant"`
	IP     string `json:"ip"`
	VCPUs  int    `json:"vcpus"`
}

// TrafficRequest starts a synthetic constant-rate stream between two
// local VMs (agentd POST /v1/traffic) — the service-mode analogue of the
// traffic loops in examples/.
type TrafficRequest struct {
	Tenant  uint32 `json:"tenant"`
	Src     string `json:"src"`
	Dst     string `json:"dst"`
	SrcPort uint16 `json:"src_port"`
	DstPort uint16 `json:"dst_port"`
	// SizeBytes per packet (default 64).
	SizeBytes int `json:"size_bytes,omitempty"`
	// IntervalUS between packets (default 1000 = 1k pps).
	IntervalUS int64 `json:"interval_us,omitempty"`
	// DurationMS stops the stream after this long (0 = until shutdown).
	DurationMS int64 `json:"duration_ms,omitempty"`
}

// ErrorReply is the JSON error body for non-2xx responses.
type ErrorReply struct {
	Error string `json:"error"`
}
