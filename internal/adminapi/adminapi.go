// Package adminapi is the HTTP/JSON admin surface of the FasTrak daemons
// (fastrak-tord, fastrak-agentd): tenant onboarding, rule CRUD,
// placement and lease inspection, health, plus the live telemetry
// endpoints — /metrics in Prometheus text exposition format and
// /series.csv from the time-series sampler.
//
// The package is role-agnostic: each daemon fills in the Hooks it
// supports and the server answers 404 for the rest, so fastrak-ctl can
// speak one protocol to both. Hooks run on the caller's goroutine — the
// daemons bridge them onto their engine thread with Runtime.Do, which is
// what makes concurrent admin requests safe against the single-threaded
// controllers.
package adminapi

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// PrometheusContentType is the text exposition format version served on
// /metrics, as Prometheus scrapers expect it.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// Hooks are the daemon capabilities behind the HTTP surface. Nil hooks
// make their endpoints 404.
type Hooks struct {
	// Health is required; it backs GET /healthz.
	Health func() Health

	// WriteMetrics renders the metric registry in Prometheus text format
	// (GET /metrics).
	WriteMetrics func(io.Writer) error
	// WriteSeriesCSV renders the sampler time series (GET /series.csv).
	WriteSeriesCSV func(io.Writer) error

	// Placements backs GET /v1/placements.
	Placements func() []Placement
	// Rules backs GET /v1/rules.
	Rules func() RulesReply
	// PinRule backs POST /v1/rules: force-install a pattern in hardware.
	PinRule func(PatternSpec) error
	// UnpinRule backs DELETE /v1/rules: demote via the gated removal path.
	UnpinRule func(PatternSpec) error

	// VMs backs GET /v1/vms.
	VMs func() []VMInfo
	// AddVM backs POST /v1/vms (tenant onboarding).
	AddVM func(VMRequest) error
	// RemoveVM backs DELETE /v1/vms.
	RemoveVM func(VMKeySpec) error
	// Traffic backs POST /v1/traffic.
	Traffic func(TrafficRequest) error
}

// Server routes the admin API over the given hooks.
type Server struct {
	hooks Hooks
	mux   *http.ServeMux
}

// New builds the admin server.
func New(hooks Hooks) *Server {
	s := &Server{hooks: hooks, mux: http.NewServeMux()}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/series.csv", s.handleSeriesCSV)
	s.mux.HandleFunc("/v1/placements", s.handlePlacements)
	s.mux.HandleFunc("/v1/rules", s.handleRules)
	s.mux.HandleFunc("/v1/vms", s.handleVMs)
	s.mux.HandleFunc("/v1/traffic", s.handleTraffic)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorReply{Error: fmt.Sprintf(format, args...)})
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.hooks.Health == nil {
		http.NotFound(w, r)
		return
	}
	writeJSON(w, http.StatusOK, s.hooks.Health())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.hooks.WriteMetrics == nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", PrometheusContentType)
	if err := s.hooks.WriteMetrics(w); err != nil {
		// Headers are gone; all we can do is cut the response short.
		return
	}
}

func (s *Server) handleSeriesCSV(w http.ResponseWriter, r *http.Request) {
	if s.hooks.WriteSeriesCSV == nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	_ = s.hooks.WriteSeriesCSV(w)
}

func (s *Server) handlePlacements(w http.ResponseWriter, r *http.Request) {
	if s.hooks.Placements == nil {
		http.NotFound(w, r)
		return
	}
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, s.hooks.Placements())
}

func (s *Server) handleRules(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		if s.hooks.Rules == nil {
			http.NotFound(w, r)
			return
		}
		writeJSON(w, http.StatusOK, s.hooks.Rules())
	case http.MethodPost:
		if s.hooks.PinRule == nil {
			http.NotFound(w, r)
			return
		}
		var ps PatternSpec
		if !readJSON(w, r, &ps) {
			return
		}
		if err := s.hooks.PinRule(ps); err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	case http.MethodDelete:
		if s.hooks.UnpinRule == nil {
			http.NotFound(w, r)
			return
		}
		var ps PatternSpec
		if !readJSON(w, r, &ps) {
			return
		}
		if err := s.hooks.UnpinRule(ps); err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	default:
		writeErr(w, http.StatusMethodNotAllowed, "use GET, POST or DELETE")
	}
}

func (s *Server) handleVMs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		if s.hooks.VMs == nil {
			http.NotFound(w, r)
			return
		}
		writeJSON(w, http.StatusOK, s.hooks.VMs())
	case http.MethodPost:
		if s.hooks.AddVM == nil {
			http.NotFound(w, r)
			return
		}
		var req VMRequest
		if !readJSON(w, r, &req) {
			return
		}
		if err := s.hooks.AddVM(req); err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	case http.MethodDelete:
		if s.hooks.RemoveVM == nil {
			http.NotFound(w, r)
			return
		}
		var key VMKeySpec
		if !readJSON(w, r, &key) {
			return
		}
		if err := s.hooks.RemoveVM(key); err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	default:
		writeErr(w, http.StatusMethodNotAllowed, "use GET, POST or DELETE")
	}
}

func (s *Server) handleTraffic(w http.ResponseWriter, r *http.Request) {
	if s.hooks.Traffic == nil {
		http.NotFound(w, r)
		return
	}
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req TrafficRequest
	if !readJSON(w, r, &req) {
		return
	}
	if err := s.hooks.Traffic(req); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}
