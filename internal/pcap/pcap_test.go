package pcap

import (
	"bytes"
	"io"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/packet"
	"repro/internal/sim"
)

func testPacket(size int) *packet.Packet {
	p := packet.NewTCP(7, packet.MustParseIP("10.0.0.1"), packet.MustParseIP("10.0.0.2"), 40000, 11211, 0)
	p.Payload = bytes.Repeat([]byte{0xab}, size)
	return p
}

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []*packet.Packet{testPacket(10), testPacket(600), testPacket(1400)}
	for i, p := range want {
		if err := w.WritePacket(time.Duration(i)*time.Millisecond, p); err != nil {
			t.Fatal(err)
		}
	}
	if w.Packets() != 3 {
		t.Errorf("Packets = %d", w.Packets())
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range want {
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec.Ts != time.Duration(i)*time.Millisecond {
			t.Errorf("record %d ts = %v", i, rec.Ts)
		}
		if rec.OrigLen != p.WireLen() {
			t.Errorf("record %d origlen = %d, want %d", i, rec.OrigLen, p.WireLen())
		}
		// The captured bytes parse back into the same packet.
		got, err := packet.Unmarshal(rec.Data)
		if err != nil {
			t.Fatalf("record %d reparse: %v", i, err)
		}
		got.Tenant = p.Tenant
		if got.Key() != p.Key() || got.PayloadLen() != p.PayloadLen() {
			t.Errorf("record %d content mismatch", i)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestVirtualPayloadSnapped(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 0)
	p := packet.NewTCP(1, 1, 2, 1, 2, 32000) // all-virtual payload
	if err := w.WritePacket(0, p); err != nil {
		t.Fatal(err)
	}
	r, _ := NewReader(&buf)
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if rec.OrigLen != p.WireLen() {
		t.Errorf("origlen = %d, want %d", rec.OrigLen, p.WireLen())
	}
	if len(rec.Data) >= rec.OrigLen {
		t.Error("virtual payload was materialized on disk")
	}
	// Snapped capture still reconstructs the payload length from the
	// IP header.
	got, err := packet.Unmarshal(rec.Data)
	if err != nil {
		t.Fatal(err)
	}
	if got.PayloadLen() != 32000 {
		t.Errorf("reconstructed payload = %d", got.PayloadLen())
	}
}

func TestSnaplenTruncation(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 100)
	p := testPacket(600)
	if err := w.WritePacket(0, p); err != nil {
		t.Fatal(err)
	}
	r, _ := NewReader(&buf)
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Data) != 100 {
		t.Errorf("caplen = %d, want 100", len(rec.Data))
	}
	if rec.OrigLen != p.WireLen() {
		t.Errorf("origlen = %d", rec.OrigLen)
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not a pcap file at all!!"))); err == nil {
		t.Error("garbage header accepted")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
}

func TestTapRecordsAndForwards(t *testing.T) {
	eng := sim.NewEngine(1)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 0)
	delivered := 0
	tap := NewTap(eng, w, fabric.PortFunc(func(*packet.Packet) { delivered++ }))
	eng.At(time.Millisecond, func() { tap.Input(testPacket(100)) })
	eng.At(2*time.Millisecond, func() { tap.Input(testPacket(200)) })
	eng.Run()
	if delivered != 2 {
		t.Fatalf("forwarded %d", delivered)
	}
	if tap.Err != nil {
		t.Fatal(tap.Err)
	}
	r, _ := NewReader(&buf)
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Ts != time.Millisecond {
		t.Errorf("first record ts = %v (virtual time expected)", rec.Ts)
	}
	if _, err := r.Next(); err != nil {
		t.Fatalf("second record: %v", err)
	}
}
