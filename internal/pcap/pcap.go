// Package pcap writes and reads libpcap capture files, and provides a tap
// that records packets crossing any point of the emulated testbed. Traces
// of simulation runs (e.g. the Figure 12 migration episode) can be opened
// directly in Wireshark/tcpdump, since the data-plane packets marshal to
// genuine wire bytes.
package pcap

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"repro/internal/fabric"
	"repro/internal/packet"
	"repro/internal/sim"
)

const (
	// magicMicros is the classic little-endian pcap magic with
	// microsecond timestamps.
	magicMicros = 0xa1b2c3d4
	// linkTypeEthernet is LINKTYPE_ETHERNET (DLT_EN10MB).
	linkTypeEthernet = 1
	versionMajor     = 2
	versionMinor     = 4
)

// Writer emits a pcap stream.
type Writer struct {
	w       io.Writer
	snaplen uint32
	packets uint64
}

// NewWriter writes the pcap global header. snaplen 0 defaults to 65535.
func NewWriter(w io.Writer, snaplen uint32) (*Writer, error) {
	if snaplen == 0 {
		snaplen = 65535
	}
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magicMicros)
	binary.LittleEndian.PutUint16(hdr[4:6], versionMajor)
	binary.LittleEndian.PutUint16(hdr[6:8], versionMinor)
	// thiszone and sigfigs stay zero.
	binary.LittleEndian.PutUint32(hdr[16:20], snaplen)
	binary.LittleEndian.PutUint32(hdr[20:24], linkTypeEthernet)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: write header: %w", err)
	}
	return &Writer{w: w, snaplen: snaplen}, nil
}

// WriteFrame records one frame. ts is the capture timestamp (virtual time
// works: pcap stores seconds/microseconds since an epoch). origLen is the
// untruncated on-wire length; data may be shorter (snapped).
func (w *Writer) WriteFrame(ts time.Duration, data []byte, origLen int) error {
	capLen := uint32(len(data))
	if capLen > w.snaplen {
		capLen = w.snaplen
		data = data[:capLen]
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(ts/time.Second))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(ts%time.Second/time.Microsecond))
	binary.LittleEndian.PutUint32(hdr[8:12], capLen)
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(origLen))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("pcap: write record header: %w", err)
	}
	if _, err := w.w.Write(data); err != nil {
		return fmt.Errorf("pcap: write record: %w", err)
	}
	w.packets++
	return nil
}

// WritePacket marshals and records a testbed packet. Virtual payload is
// elided on disk (a snap, like a short tcpdump snaplen) while the record
// header reports the true wire length.
func (w *Writer) WritePacket(ts time.Duration, p *packet.Packet) error {
	data, err := p.MarshalTruncated()
	if err != nil {
		return err
	}
	return w.WriteFrame(ts, data, p.WireLen())
}

// Packets returns the number of records written.
func (w *Writer) Packets() uint64 { return w.packets }

// Record is one parsed capture record.
type Record struct {
	Ts      time.Duration
	Data    []byte
	OrigLen int
}

// Reader parses a pcap stream written by Writer (little-endian,
// microsecond).
type Reader struct {
	r       io.Reader
	Snaplen uint32
}

// NewReader validates the global header.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: read header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != magicMicros {
		return nil, fmt.Errorf("pcap: bad magic %#x", binary.LittleEndian.Uint32(hdr[0:4]))
	}
	if lt := binary.LittleEndian.Uint32(hdr[20:24]); lt != linkTypeEthernet {
		return nil, fmt.Errorf("pcap: unsupported link type %d", lt)
	}
	return &Reader{r: r, Snaplen: binary.LittleEndian.Uint32(hdr[16:20])}, nil
}

// Next returns the next record, or io.EOF at end of stream.
func (r *Reader) Next() (Record, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = io.EOF
		}
		return Record{}, err
	}
	sec := binary.LittleEndian.Uint32(hdr[0:4])
	usec := binary.LittleEndian.Uint32(hdr[4:8])
	capLen := binary.LittleEndian.Uint32(hdr[8:12])
	origLen := binary.LittleEndian.Uint32(hdr[12:16])
	if capLen > r.Snaplen {
		return Record{}, fmt.Errorf("pcap: record caplen %d exceeds snaplen %d", capLen, r.Snaplen)
	}
	data := make([]byte, capLen)
	if _, err := io.ReadFull(r.r, data); err != nil {
		return Record{}, fmt.Errorf("pcap: short record: %w", err)
	}
	return Record{
		Ts:      time.Duration(sec)*time.Second + time.Duration(usec)*time.Microsecond,
		Data:    data,
		OrigLen: int(origLen),
	}, nil
}

// Tap is a fabric.Port that records every packet passing through before
// forwarding it — insert it on any link or pipeline point to capture a
// trace.
type Tap struct {
	eng  *sim.Engine
	w    *Writer
	next fabric.Port
	// Err holds the first write error (the capture stops, traffic
	// continues).
	Err error
}

// NewTap wires a capture point in front of next.
func NewTap(eng *sim.Engine, w *Writer, next fabric.Port) *Tap {
	return &Tap{eng: eng, w: w, next: next}
}

// Input implements fabric.Port.
func (t *Tap) Input(p *packet.Packet) {
	if t.Err == nil {
		t.Err = t.w.WritePacket(t.eng.Now(), p)
	}
	t.next.Input(p)
}
