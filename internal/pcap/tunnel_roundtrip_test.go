package pcap

import (
	"bytes"
	"io"
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/tunnel"
)

// innerPacket builds the tenant frame that gets tunneled in these tests:
// a memcached-ish TCP segment with a real payload so the byte-level
// round trip is non-trivial.
func innerPacket() *packet.Packet {
	p := packet.NewTCP(42, packet.MustParseIP("10.42.0.1"), packet.MustParseIP("10.42.0.2"), 40001, 11211, 0)
	p.TCP.Seq = 0xdeadbeef
	p.TCP.Ack = 0x1234
	p.Payload = bytes.Repeat([]byte{0x5a}, 300)
	return p
}

// TestGREEncapPcapRoundTrip writes a GRE-encapped frame (the hardware
// path's ToR↔ToR wire format) through the pcap codec and decaps what
// comes back: the tenant key and the inner flow must survive the
// marshal → capture → unmarshal → decap chain byte-for-byte.
func TestGREEncapPcapRoundTrip(t *testing.T) {
	inner := innerPacket()
	outer, err := tunnel.GREEncap(packet.MustParseIP("192.168.0.1"), packet.MustParseIP("192.168.0.2"), inner.Tenant, inner)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	w, err := NewWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(3*time.Millisecond, outer); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if rec.OrigLen != outer.WireLen() {
		t.Errorf("origlen = %d, want %d", rec.OrigLen, outer.WireLen())
	}

	got, err := packet.Unmarshal(rec.Data)
	if err != nil {
		t.Fatalf("reparse outer: %v", err)
	}
	if got.IP.Proto != packet.ProtoGRE {
		t.Fatalf("outer proto = %d, want GRE", got.IP.Proto)
	}
	in, tenant, err := tunnel.GREDecap(got)
	if err != nil {
		t.Fatalf("decap: %v", err)
	}
	if tenant != inner.Tenant {
		t.Errorf("tenant = %d, want %d", tenant, inner.Tenant)
	}
	in.Tenant = inner.Tenant // decap reports the tenant out of band
	if in.Key() != inner.Key() {
		t.Errorf("inner key = %v, want %v", in.Key(), inner.Key())
	}
	if in.TCP == nil || in.TCP.Seq != inner.TCP.Seq || in.TCP.Ack != inner.TCP.Ack {
		t.Error("inner TCP header mangled through the capture")
	}
	if in.PayloadLen() != inner.PayloadLen() {
		t.Errorf("inner payload = %d, want %d", in.PayloadLen(), inner.PayloadLen())
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

// TestVXLANEncapPcapRoundTrip does the same for the software path's
// server↔server VXLAN wire format: VNI carries the tenant.
func TestVXLANEncapPcapRoundTrip(t *testing.T) {
	inner := innerPacket()
	outer, err := tunnel.VXLANEncap(packet.MustParseIP("172.16.0.1"), packet.MustParseIP("172.16.0.2"), inner.Tenant, inner)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	w, err := NewWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(time.Millisecond, outer); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	got, err := packet.Unmarshal(rec.Data)
	if err != nil {
		t.Fatalf("reparse outer: %v", err)
	}
	if got.UDP == nil || got.UDP.DstPort != packet.VXLANPort {
		t.Fatal("outer is not a VXLAN datagram")
	}
	in, tenant, err := tunnel.VXLANDecap(got)
	if err != nil {
		t.Fatalf("decap: %v", err)
	}
	if tenant != inner.Tenant {
		t.Errorf("vni tenant = %d, want %d", tenant, inner.Tenant)
	}
	in.Tenant = inner.Tenant
	if in.Key() != inner.Key() {
		t.Errorf("inner key = %v, want %v", in.Key(), inner.Key())
	}
	if in.PayloadLen() != inner.PayloadLen() {
		t.Errorf("inner payload = %d, want %d", in.PayloadLen(), inner.PayloadLen())
	}
}

// TestEncapSnaplenKeepsHeaders checks that a tight snaplen still captures
// enough of an encapped frame to identify the tunnel, even though the
// inner payload is cut off — the property pcapdump's "[inner
// undecodable]" branch relies on.
func TestEncapSnaplenKeepsHeaders(t *testing.T) {
	inner := innerPacket()
	outer, err := tunnel.GREEncap(packet.MustParseIP("192.168.0.1"), packet.MustParseIP("192.168.0.2"), inner.Tenant, inner)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 64)
	if err := w.WritePacket(0, outer); err != nil {
		t.Fatal(err)
	}
	r, _ := NewReader(&buf)
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Data) != 64 {
		t.Fatalf("caplen = %d, want 64", len(rec.Data))
	}
	got, err := packet.Unmarshal(rec.Data)
	if err != nil {
		t.Fatalf("outer headers should survive the snaplen: %v", err)
	}
	if got.IP.Proto != packet.ProtoGRE {
		t.Errorf("outer proto = %d, want GRE", got.IP.Proto)
	}
	if _, _, err := tunnel.GREDecap(got); err == nil {
		t.Error("truncated inner frame decapped cleanly; expected an error")
	}
}
