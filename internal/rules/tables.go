package rules

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/packet"
)

// tcamLess orders TCAM entries for lookup: higher priority first,
// specificity breaking ties. Entries equal under this order keep FIFO
// (insertion) order.
func tcamLess(a, b *TCAMEntry) bool {
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	return a.Pattern.Specificity() > b.Pattern.Specificity()
}

// FlowStats are the per-entry counters every table keeps, read by the
// measurement engines: packets (p) and bytes (b) observed (§4.3.1).
type FlowStats struct {
	Packets  uint64
	Bytes    uint64
	LastSeen time.Duration
}

// Hit records one packet against the stats.
func (s *FlowStats) Hit(bytes int, now time.Duration) {
	s.Packets++
	s.Bytes += uint64(bytes)
	s.LastSeen = now
}

// ExactEntry is a fast-path entry: an exact flow key mapped to a cached
// verdict, with hit counters.
type ExactEntry[V any] struct {
	Key   packet.FlowKey
	Value V
	Stats FlowStats
}

// ExactTable is the O(1) exact-match hash table used by the OVS kernel
// fast path and by the flow placer's data plane (§2.2, §4.1.1: "maintains
// the rules in an O(1) lookup hash table to speed up per packet
// processing"). V is the cached decision (a verdict, an output interface,
// ...).
type ExactTable[V any] struct {
	entries map[packet.FlowKey]*ExactEntry[V]
}

// NewExactTable returns an empty table.
func NewExactTable[V any]() *ExactTable[V] {
	return &ExactTable[V]{entries: make(map[packet.FlowKey]*ExactEntry[V])}
}

// Lookup returns the entry for the key, or nil on a miss (which sends the
// packet to the slow path).
func (t *ExactTable[V]) Lookup(k packet.FlowKey) *ExactEntry[V] { return t.entries[k] }

// Install adds or replaces the entry for the key, returning it.
func (t *ExactTable[V]) Install(k packet.FlowKey, v V) *ExactEntry[V] {
	e := &ExactEntry[V]{Key: k, Value: v}
	t.entries[k] = e
	return e
}

// Remove deletes the entry for the key, reporting whether it existed.
func (t *ExactTable[V]) Remove(k packet.FlowKey) bool {
	if _, ok := t.entries[k]; !ok {
		return false
	}
	delete(t.entries, k)
	return true
}

// Len returns the number of installed entries.
func (t *ExactTable[V]) Len() int { return len(t.entries) }

// Entries calls fn for every entry; the measurement engine uses this to
// poll active-flow statistics. Iteration order is unspecified.
func (t *ExactTable[V]) Entries(fn func(*ExactEntry[V])) {
	for _, e := range t.entries {
		fn(e)
	}
}

// Expire removes entries idle since before deadline, returning how many
// were evicted. OVS expires idle kernel flows the same way.
func (t *ExactTable[V]) Expire(deadline time.Duration) int {
	n := 0
	for k, e := range t.entries {
		if e.Stats.LastSeen < deadline {
			delete(t.entries, k)
			n++
		}
	}
	return n
}

// ErrTCAMFull is returned when a hardware table has no free entries — the
// fundamental constraint motivating FasTrak's flow selection (§1: "Due to
// hardware space limitations, only a limited number of rules can be
// supported in hardware").
var ErrTCAMFull = errors.New("rules: hardware table full")

// TCAMEntry is one hardware rule: a pattern with priority, verdict, QoS
// queue, and hit counters the TOR measurement engine polls.
type TCAMEntry struct {
	Pattern  Pattern
	Priority int
	Action   Action
	Queue    int
	Stats    FlowStats
}

// TCAM models the ToR's capacity-limited wildcard-matching rule memory.
// Lookup is highest-priority-first, specificity breaking ties — the
// semantics of a priority-encoded TCAM. Capacity is enforced on Insert.
//
// Internally the table keeps two coherent views: a slice in (priority,
// specificity) order maintained by binary-search insertion (Entries
// iterates it, and it is the semantic reference), and a tuple-space index
// (see TupleSpace) that serves Lookup in O(distinct masks) hash probes
// instead of a linear pattern scan.
type TCAM struct {
	capacity int
	entries  []*TCAMEntry // sorted by tcamLess, FIFO within ties
	idx      *TupleSpace[*TCAMEntry]
}

// NewTCAM returns an empty table holding at most capacity entries.
func NewTCAM(capacity int) *TCAM {
	if capacity < 0 {
		capacity = 0
	}
	return &TCAM{capacity: capacity, idx: NewTupleSpace[*TCAMEntry]()}
}

// Capacity returns the total entry budget.
func (t *TCAM) Capacity() int { return t.capacity }

// Free returns the number of entries still available; the TOR ME reports
// this to the decision engine (§4.3.1: "keeps track of the amount of fast
// path memory available in the TOR").
func (t *TCAM) Free() int { return t.capacity - len(t.entries) }

// Len returns the number of installed entries.
func (t *TCAM) Len() int { return len(t.entries) }

// Insert installs a rule, failing with ErrTCAMFull when out of space. The
// entry is spliced into (priority, specificity) position by binary search
// — after any equal-keyed entries, preserving FIFO tie order — so lookups
// never re-sort and interleaved insert/lookup sequences keep a stable
// tie-break.
func (t *TCAM) Insert(e *TCAMEntry) error {
	if len(t.entries) >= t.capacity {
		return ErrTCAMFull
	}
	// First index whose entry sorts strictly after e: equal keys are not
	// "less", so e lands after them.
	i := sort.Search(len(t.entries), func(i int) bool { return tcamLess(e, t.entries[i]) })
	t.entries = append(t.entries, nil)
	copy(t.entries[i+1:], t.entries[i:])
	t.entries[i] = e
	t.idx.Insert(e.Pattern, e.Priority, e)
	return nil
}

// Remove deletes entries whose pattern equals p, reporting how many were
// removed.
func (t *TCAM) Remove(p Pattern) int {
	n := 0
	out := t.entries[:0]
	for _, e := range t.entries {
		if e.Pattern == p {
			n++
			continue
		}
		out = append(out, e)
	}
	for i := len(out); i < len(t.entries); i++ {
		t.entries[i] = nil // release removed tails
	}
	t.entries = out
	if n > 0 {
		t.idx.Remove(p, func(e *TCAMEntry) bool { return e.Pattern == p })
	}
	return n
}

// Lookup returns the winning entry for the key, or nil if nothing matches.
// It is served from the tuple-space index; LookupLinear over the sorted
// slice is the semantic reference (the differential tests assert they
// agree).
func (t *TCAM) Lookup(k packet.FlowKey) *TCAMEntry {
	e, ok := t.idx.Lookup(k)
	if !ok {
		return nil
	}
	return e
}

// LookupLinear returns the winning entry by first-match scan of the
// sorted entry slice — the seed TCAM semantics, kept as the reference
// implementation for differential testing.
func (t *TCAM) LookupLinear(k packet.FlowKey) *TCAMEntry {
	for _, e := range t.entries {
		if e.Pattern.Match(k) {
			return e
		}
	}
	return nil
}

// Entries calls fn for each installed entry.
func (t *TCAM) Entries(fn func(*TCAMEntry)) {
	for _, e := range t.entries {
		fn(e)
	}
}

// PriorityTable is the vswitch user-space (slow path) rule table. The
// seed implementation was an ordered linear scan; it now fronts the same
// semantics with a tuple-space index, so Evaluate costs O(distinct masks)
// hash probes instead of O(rules) pattern matches. EvaluateLinear remains
// as the semantic reference.
type PriorityTable struct {
	rules []SecurityRule
	idx   *TupleSpace[Action]
}

// Add appends a rule.
func (t *PriorityTable) Add(r SecurityRule) {
	t.rules = append(t.rules, r)
	if t.idx == nil {
		t.idx = NewTupleSpace[Action]()
	}
	if r.Priority >= -1 {
		// Rules below priority -1 can never win: the linear scan's best
		// starts at (-1, spec -1), which only priority ≥ 0 beats outright
		// and priority exactly -1 beats on the specificity tie. They are
		// not indexed.
		t.idx.Insert(r.Pattern, r.Priority, r.Action)
	}
}

// Len returns the number of rules.
func (t *PriorityTable) Len() int { return len(t.rules) }

// Evaluate returns the verdict for the key: the highest-priority match
// (specificity breaks ties), or Deny when nothing matches.
func (t *PriorityTable) Evaluate(k packet.FlowKey) Action {
	if t.idx == nil {
		return Deny
	}
	if a, ok := t.idx.Lookup(k); ok {
		return a
	}
	return Deny
}

// EvaluateMask is Evaluate plus the union of field masks the search
// consulted — the wildcard under which the verdict may be cached.
func (t *PriorityTable) EvaluateMask(k packet.FlowKey) (Action, FieldMask) {
	if t.idx == nil {
		return Deny, FieldMask{}
	}
	a, ok, m := t.idx.LookupMask(k)
	if !ok {
		return Deny, m
	}
	return a, m
}

// EvaluateLinear is the seed linear-scan implementation, kept as the
// reference for differential testing.
func (t *PriorityTable) EvaluateLinear(k packet.FlowKey) Action {
	best, bestSpec := -1, -1
	action := Deny
	for i := range t.rules {
		r := &t.rules[i]
		if !r.Pattern.Match(k) {
			continue
		}
		spec := r.Pattern.Specificity()
		if r.Priority > best || (r.Priority == best && spec > bestSpec) {
			best, bestSpec, action = r.Priority, spec, r.Action
		}
	}
	return action
}

// TunnelTable maps (tenant, destination VM IP) to a tunnel endpoint —
// maintained by the vswitch for VXLAN and offloaded into ToR VRFs for GRE.
type TunnelTable struct {
	m map[tunnelKey]TunnelMapping
}

type tunnelKey struct {
	tenant packet.TenantID
	vmIP   packet.IP
}

// NewTunnelTable returns an empty table.
func NewTunnelTable() *TunnelTable {
	return &TunnelTable{m: make(map[tunnelKey]TunnelMapping)}
}

// Set installs or updates the mapping.
func (t *TunnelTable) Set(m TunnelMapping) {
	t.m[tunnelKey{m.Tenant, m.VMIP}] = m
}

// Lookup returns the mapping for a tenant's destination VM.
func (t *TunnelTable) Lookup(tenant packet.TenantID, vmIP packet.IP) (TunnelMapping, bool) {
	m, ok := t.m[tunnelKey{tenant, vmIP}]
	return m, ok
}

// Remove deletes the mapping, reporting whether it existed. Tunnel
// mappings are updated at both source and destination when a VM migrates
// (§2.1 requirement S4).
func (t *TunnelTable) Remove(tenant packet.TenantID, vmIP packet.IP) bool {
	k := tunnelKey{tenant, vmIP}
	if _, ok := t.m[k]; !ok {
		return false
	}
	delete(t.m, k)
	return true
}

// Len returns the number of mappings.
func (t *TunnelTable) Len() int { return len(t.m) }

// String summarizes table occupancy for logs.
func (t *TCAM) String() string {
	return fmt.Sprintf("tcam %d/%d", len(t.entries), t.capacity)
}
