package rules

import (
	"sync"
	"sync/atomic"

	"repro/internal/packet"
)

// Epoch publication: the sharded data plane's readers (shard workers)
// never take a lock on the hot path. Instead the control plane builds an
// immutable snapshot of every table a shard consults — compiled VM
// classifiers, the tunnel map, NIC placements — and publishes it with an
// RCU-style atomic pointer swap. Shards load the pointer once per packet
// vector; a sequence-number change tells a shard to flush its private
// caches (exact + megaflow), which is the entire invalidation protocol:
// per-shard flush on epoch change, never a cross-shard lock.

// Epoch is one published generation of an immutable table snapshot.
type Epoch[T any] struct {
	// Seq increases by one per publication. Readers compare it against
	// the last sequence they acted on to detect staleness.
	Seq uint64
	// Tables is the immutable snapshot. Readers must not mutate it.
	Tables T
}

// EpochPublisher owns the current epoch of an immutable snapshot type.
// Publish is serialized internally; Load is a single atomic pointer read,
// safe from any goroutine, wait-free, and allocation-free.
//
// The zero value is ready to use, but Load returns nil until the first
// Publish — callers seed an initial epoch at construction time.
type EpochPublisher[T any] struct {
	mu  sync.Mutex
	seq uint64
	cur atomic.Pointer[Epoch[T]]
}

// Load returns the current epoch (nil before the first Publish).
func (p *EpochPublisher[T]) Load() *Epoch[T] { return p.cur.Load() }

// Publish installs tables as the next epoch and returns it. The snapshot
// must be immutable from this point on: readers may hold it indefinitely.
func (p *EpochPublisher[T]) Publish(tables T) *Epoch[T] {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.seq++
	e := &Epoch[T]{Seq: p.seq, Tables: tables}
	p.cur.Store(e)
	return e
}

// Update rebuilds the snapshot from the current one under the publisher's
// lock and publishes the result — the copy-on-write idiom for mutations
// that derive the next epoch from the last (rule add/remove, tunnel
// churn). build receives the current snapshot (the zero T before the
// first publication) and must return a fresh value sharing no mutable
// state with it.
func (p *EpochPublisher[T]) Update(build func(cur T) T) *Epoch[T] {
	p.mu.Lock()
	defer p.mu.Unlock()
	var cur T
	if e := p.cur.Load(); e != nil {
		cur = e.Tables
	}
	p.seq++
	e := &Epoch[T]{Seq: p.seq, Tables: build(cur)}
	p.cur.Store(e)
	return e
}

// CompiledVM is an immutable compiled form of a VM's rule state, built at
// epoch-publication time so concurrent shard readers never touch the
// lazily built (mutate-on-read) indexes inside VMRules. Lookups are pure
// reads over private TupleSpaces.
type CompiledVM struct {
	Tenant packet.TenantID
	VMIP   packet.IP

	sec     *TupleSpace[Action]
	hasSec  bool
	qos     *TupleSpace[int]
	qosMask FieldMask
}

// Compile snapshots the VM's current rules into an immutable classifier.
// The caller must hold whatever serialization protects mutations of v
// (the control plane's publish path); the returned value shares nothing
// mutable with v.
func (v *VMRules) Compile() *CompiledVM {
	c := &CompiledVM{Tenant: v.Tenant, VMIP: v.VMIP, hasSec: len(v.Security) > 0}
	c.sec = NewTupleSpace[Action]()
	for i := range v.Security {
		r := &v.Security[i]
		// Same reachability rule as the lazy index: priorities below the
		// linear scan's (-1, -1) sentinel can never win.
		if r.Priority >= -1 {
			c.sec.Insert(r.Pattern, r.Priority, r.Action)
		}
	}
	c.qos = NewTupleSpacePriorityOnly[int]()
	for i := range v.QoS {
		r := &v.QoS[i]
		c.qosMask = c.qosMask.Union(r.Pattern.Mask())
		if r.Priority >= 0 {
			c.qos.Insert(r.Pattern, r.Priority, r.Queue)
		}
	}
	return c
}

// HasRules reports whether the VM carries any security rules — the
// vswitch's "rule-bearing endpoint" test.
func (c *CompiledVM) HasRules() bool { return c.hasSec }

// EvaluateMask mirrors VMRules.EvaluateMask on the compiled snapshot.
func (c *CompiledVM) EvaluateMask(k packet.FlowKey) (Action, FieldMask) {
	a, ok, m := c.sec.LookupMask(k)
	if !ok {
		return Deny, m
	}
	return a, m
}

// QueueForMask mirrors VMRules.QueueForMask on the compiled snapshot.
func (c *CompiledVM) QueueForMask(k packet.FlowKey) (int, FieldMask) {
	if q, ok := c.qos.Lookup(k); ok {
		return q, c.qosMask
	}
	return 0, c.qosMask
}

// TunnelView is an immutable snapshot of a TunnelTable, shared read-only
// across shard workers.
type TunnelView struct {
	m map[tunnelKey]TunnelMapping
}

// Snapshot copies the table into an immutable view.
func (t *TunnelTable) Snapshot() *TunnelView {
	v := &TunnelView{m: make(map[tunnelKey]TunnelMapping, len(t.m))}
	for k, m := range t.m {
		v.m[k] = m
	}
	return v
}

// Each calls fn for every mapping (control-plane seeding; order
// unspecified).
func (t *TunnelTable) Each(fn func(TunnelMapping)) {
	for _, m := range t.m {
		fn(m)
	}
}

// Lookup returns the mapping for a tenant's destination VM.
func (v *TunnelView) Lookup(tenant packet.TenantID, vmIP packet.IP) (TunnelMapping, bool) {
	m, ok := v.m[tunnelKey{tenant, vmIP}]
	return m, ok
}

// Len returns the number of mappings in the view.
func (v *TunnelView) Len() int { return len(v.m) }
