package rules

import (
	"fmt"

	"repro/internal/packet"
)

// Action is the verdict of a security rule.
type Action byte

// Security rule actions.
const (
	Deny Action = iota
	Allow
)

func (a Action) String() string {
	if a == Allow {
		return "allow"
	}
	return "deny"
}

// Placement records where a rule is currently enforced. FasTrak manages
// hardware and hypervisor rules as a unified set and moves them back and
// forth (§1); placement is an attribute of the rule, not a copy of it.
type Placement byte

// Rule placements.
const (
	// InSoftware means the vswitch enforces the rule (default).
	InSoftware Placement = iota
	// InHardware means the rule has been offloaded to the ToR VRF.
	InHardware
)

func (p Placement) String() string {
	if p == InHardware {
		return "hw"
	}
	return "sw"
}

// SecurityRule is a tenant ACL entry (requirement C2). Amazon VPC allows up
// to 250 per VM; the testbed installs comparable counts.
type SecurityRule struct {
	Pattern  Pattern
	Action   Action
	Priority int // higher wins
}

func (r SecurityRule) String() string {
	return fmt.Sprintf("%s %s prio=%d", r.Action, r.Pattern, r.Priority)
}

// QoSRule directs matching traffic to a queue/class (§4.1.3: "Rules in the
// VRF can direct VM traffic to use these specific queues").
type QoSRule struct {
	Pattern  Pattern
	Queue    int  // ToR egress queue index
	DSCP     byte // marking applied in software
	Priority int
}

// TunnelMapping records where to tunnel traffic for a destination VM
// (requirement C1). Software (VXLAN) tunnels terminate at the destination
// *server*; hardware (GRE) tunnels terminate at the destination *ToR*
// (§4.1.3).
type TunnelMapping struct {
	Tenant packet.TenantID
	// VMIP is the tenant-assigned (overlapping) address of the remote VM.
	VMIP packet.IP
	// Remote is the provider address of the tunnel endpoint: destination
	// server IP for VXLAN, destination ToR IP for GRE.
	Remote packet.IP
	// RemoteMAC is the inner destination used when decapsulating toward
	// the VM on the final hop.
	RemoteMAC packet.MAC
}

// RateLimit is a transmit or receive cap on a VM interface, in bits per
// second (requirement I3).
type RateLimit struct {
	IngressBps float64
	EgressBps  float64
}

// VMRules is the complete rule state for one VM — everything that must
// migrate with it (requirement S4).
//
// Evaluate/QueueFor are served by lazily built tuple-space indexes. The
// exported rule slices stay the source of truth: the indexes detect
// append/replace mutations by slice identity (length plus backing-array
// head) and rebuild transparently, so existing callers that mutate
// Security/QoS directly keep exact seed semantics.
type VMRules struct {
	Tenant   packet.TenantID
	VMIP     packet.IP
	Security []SecurityRule
	QoS      []QoSRule
	// Limit is the tenant-purchased aggregate rate for the VM; FasTrak
	// splits it across the VIF and VF paths with FPS (§4.1.4).
	Limit RateLimit

	sec *secIndex
	qos *qosIndex
}

// secIndex is the lazily built security-rule classifier, tagged with the
// identity of the slice it was built from.
type secIndex struct {
	ts   *TupleSpace[Action]
	n    int
	head *SecurityRule
}

// qosIndex is the lazily built QoS classifier (priority-only tie-break,
// matching the seed scan).
type qosIndex struct {
	ts   *TupleSpace[int]
	n    int
	head *QoSRule
	// mask is the union of all QoS patterns' masks: the linear seed scan
	// consulted every pattern, so a cached queue decision must pin at
	// least the union when any rule exists.
	mask FieldMask
}

func (v *VMRules) secTS() *TupleSpace[Action] {
	var head *SecurityRule
	if len(v.Security) > 0 {
		head = &v.Security[0]
	}
	if v.sec == nil || v.sec.n != len(v.Security) || v.sec.head != head {
		ts := NewTupleSpace[Action]()
		for i := range v.Security {
			r := &v.Security[i]
			// The linear scan's sentinel is (priority -1, specificity -1):
			// priority -1 rules still win on the specificity tie, only
			// lower priorities are unreachable.
			if r.Priority >= -1 {
				ts.Insert(r.Pattern, r.Priority, r.Action)
			}
		}
		v.sec = &secIndex{ts: ts, n: len(v.Security), head: head}
	}
	return v.sec.ts
}

func (v *VMRules) qosTS() *qosIndex {
	var head *QoSRule
	if len(v.QoS) > 0 {
		head = &v.QoS[0]
	}
	if v.qos == nil || v.qos.n != len(v.QoS) || v.qos.head != head {
		ts := NewTupleSpacePriorityOnly[int]()
		var mask FieldMask
		for i := range v.QoS {
			r := &v.QoS[i]
			mask = mask.Union(r.Pattern.Mask())
			if r.Priority >= 0 {
				ts.Insert(r.Pattern, r.Priority, r.Queue)
			}
		}
		v.qos = &qosIndex{ts: ts, n: len(v.QoS), head: head, mask: mask}
	}
	return v.qos
}

// InvalidateIndex drops the lazily built rule indexes; callers that
// mutate a rule in place (same slice, same length) must call it. Append
// and wholesale replacement are detected automatically.
func (v *VMRules) InvalidateIndex() { v.sec, v.qos = nil, nil }

// Evaluate returns the action of the highest-priority matching security
// rule, breaking priority ties by specificity then order. If nothing
// matches, the default is Deny: multi-tenant ACLs are explicit-allow
// (§4.1.3: "By default, all other traffic is denied").
func (v *VMRules) Evaluate(k packet.FlowKey) Action {
	if a, ok := v.secTS().Lookup(k); ok {
		return a
	}
	return Deny
}

// EvaluateMask is Evaluate plus the union of field masks consulted — the
// megaflow wildcard for caching this verdict.
func (v *VMRules) EvaluateMask(k packet.FlowKey) (Action, FieldMask) {
	a, ok, m := v.secTS().LookupMask(k)
	if !ok {
		return Deny, m
	}
	return a, m
}

// EvaluateLinear is the seed linear-scan implementation, kept as the
// reference for differential testing.
func (v *VMRules) EvaluateLinear(k packet.FlowKey) Action {
	best := -1
	bestSpec := -1
	action := Deny
	for i := range v.Security {
		r := &v.Security[i]
		if !r.Pattern.Match(k) {
			continue
		}
		spec := r.Pattern.Specificity()
		if r.Priority > best || (r.Priority == best && spec > bestSpec) {
			best, bestSpec, action = r.Priority, spec, r.Action
		}
	}
	return action
}

// QueueFor returns the QoS queue for the flow, or 0 (best effort) if no
// QoS rule matches.
func (v *VMRules) QueueFor(k packet.FlowKey) int {
	if q, ok := v.qosTS().ts.Lookup(k); ok {
		return q
	}
	return 0
}

// QueueForMask is QueueFor plus the fields the decision depends on. The
// mask is the conservative union over all QoS patterns: narrower would be
// unsound for the 0 (no-match) default.
func (v *VMRules) QueueForMask(k packet.FlowKey) (int, FieldMask) {
	idx := v.qosTS()
	if q, ok := idx.ts.Lookup(k); ok {
		return q, idx.mask
	}
	return 0, idx.mask
}

// QueueForLinear is the seed linear-scan implementation, kept as the
// reference for differential testing.
func (v *VMRules) QueueForLinear(k packet.FlowKey) int {
	best := -1
	q := 0
	for i := range v.QoS {
		r := &v.QoS[i]
		if r.Pattern.Match(k) && r.Priority > best {
			best, q = r.Priority, r.Queue
		}
	}
	return q
}

// SpecializeSecurity constructs the most specific rule defining the policy
// for one flow, to be placed in the ToR when the flow is offloaded (§4.3:
// "a rule that most specifically defines the policy for the flow being
// offloaded is constructed by FasTrak controllers"). The returned rule is
// exact-match and carries the evaluated verdict, so conflicting broader
// rules need not be copied to hardware.
func (v *VMRules) SpecializeSecurity(k packet.FlowKey) SecurityRule {
	return SecurityRule{
		Pattern:  ExactPattern(k),
		Action:   v.Evaluate(k),
		Priority: maxPriority(v.Security) + 1,
	}
}

func maxPriority(rs []SecurityRule) int {
	m := 0
	for i := range rs {
		if rs[i].Priority > m {
			m = rs[i].Priority
		}
	}
	return m
}
