// Package rules implements the network-virtualization rule model FasTrak
// manages as a unified set (§4): tenant security ACLs, QoS rules, tunnel
// mappings and rate limits, plus the three table structures that hold them
// on the data path — an ordered priority table (vswitch slow path), an O(1)
// exact-match hash table (vswitch/flow-placer fast path), and a
// capacity-limited TCAM model (ToR hardware VRF).
package rules

import (
	"fmt"
	"strings"

	"repro/internal/packet"
)

// Pattern is a wildcardable match over the 6-tuple flow key. IPs match by
// prefix; ports and protocol match exactly or any; tenant may be wildcarded
// only for provider-level rules.
type Pattern struct {
	Tenant    packet.TenantID
	AnyTenant bool

	Src       packet.IP
	SrcPrefix int // 0 = any
	Dst       packet.IP
	DstPrefix int // 0 = any

	SrcPort uint16 // 0 = any
	DstPort uint16 // 0 = any
	Proto   byte   // 0 = any
}

// ExactPattern returns the fully specified pattern matching exactly one
// flow — the "rule that most specifically defines the policy for the flow
// being offloaded" (§4.3) is built from this.
func ExactPattern(k packet.FlowKey) Pattern {
	return Pattern{
		Tenant: k.Tenant,
		Src:    k.Src, SrcPrefix: 32,
		Dst: k.Dst, DstPrefix: 32,
		SrcPort: k.SrcPort, DstPort: k.DstPort, Proto: k.Proto,
	}
}

// AggregatePattern returns the pattern covering a per-VM/application flow
// aggregate (§4.3.1): one endpoint pinned to <VM IP, port, tenant>, the
// other wildcarded.
func AggregatePattern(a packet.AggregateKey) Pattern {
	p := Pattern{Tenant: a.Tenant}
	switch a.Dir {
	case packet.Egress:
		p.Src, p.SrcPrefix, p.SrcPort = a.VMIP, 32, a.Port
	default:
		p.Dst, p.DstPrefix, p.DstPort = a.VMIP, 32, a.Port
	}
	return p
}

// TenantPattern matches all traffic of one tenant.
func TenantPattern(t packet.TenantID) Pattern { return Pattern{Tenant: t} }

// Match reports whether the key falls within the pattern.
func (p Pattern) Match(k packet.FlowKey) bool {
	if !p.AnyTenant && p.Tenant != k.Tenant {
		return false
	}
	if p.SrcPrefix > 0 && k.Src.Mask(p.SrcPrefix) != p.Src.Mask(p.SrcPrefix) {
		return false
	}
	if p.DstPrefix > 0 && k.Dst.Mask(p.DstPrefix) != p.Dst.Mask(p.DstPrefix) {
		return false
	}
	if p.SrcPort != 0 && p.SrcPort != k.SrcPort {
		return false
	}
	if p.DstPort != 0 && p.DstPort != k.DstPort {
		return false
	}
	if p.Proto != 0 && p.Proto != k.Proto {
		return false
	}
	return true
}

// Specificity scores how narrowly the pattern matches; higher is more
// specific. Used to order equal-priority rules and to pick the most
// specific covering rule when constructing hardware rules for offload.
func (p Pattern) Specificity() int {
	s := p.SrcPrefix + p.DstPrefix
	if p.SrcPort != 0 {
		s += 16
	}
	if p.DstPort != 0 {
		s += 16
	}
	if p.Proto != 0 {
		s += 8
	}
	if !p.AnyTenant {
		s += 32
	}
	return s
}

// IsExact reports whether the pattern matches exactly one flow key.
func (p Pattern) IsExact() bool {
	return !p.AnyTenant && p.SrcPrefix == 32 && p.DstPrefix == 32 &&
		p.SrcPort != 0 && p.DstPort != 0 && p.Proto != 0
}

// String renders the pattern compactly, e.g.
// "t3 10.0.0.1/32:* > */0:11211 tcp".
func (p Pattern) String() string {
	var b strings.Builder
	if p.AnyTenant {
		b.WriteString("t* ")
	} else {
		fmt.Fprintf(&b, "t%d ", p.Tenant)
	}
	part := func(ip packet.IP, prefix int, port uint16) {
		if prefix == 0 {
			b.WriteString("*")
		} else {
			fmt.Fprintf(&b, "%s/%d", ip, prefix)
		}
		if port == 0 {
			b.WriteString(":*")
		} else {
			fmt.Fprintf(&b, ":%d", port)
		}
	}
	part(p.Src, p.SrcPrefix, p.SrcPort)
	b.WriteString(" > ")
	part(p.Dst, p.DstPrefix, p.DstPort)
	switch p.Proto {
	case 0:
		b.WriteString(" *")
	case packet.ProtoTCP:
		b.WriteString(" tcp")
	case packet.ProtoUDP:
		b.WriteString(" udp")
	default:
		fmt.Fprintf(&b, " %d", p.Proto)
	}
	return b.String()
}
