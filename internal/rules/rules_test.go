package rules

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/packet"
)

var testKey = packet.FlowKey{
	Src:     packet.MustParseIP("10.0.0.1"),
	Dst:     packet.MustParseIP("10.0.0.2"),
	SrcPort: 40000, DstPort: 11211,
	Proto:  packet.ProtoTCP,
	Tenant: 3,
}

func TestExactPatternMatchesOnlyItsFlow(t *testing.T) {
	p := ExactPattern(testKey)
	if !p.Match(testKey) {
		t.Fatal("exact pattern does not match its own key")
	}
	if !p.IsExact() {
		t.Error("ExactPattern not IsExact")
	}
	variants := []func(*packet.FlowKey){
		func(k *packet.FlowKey) { k.Src++ },
		func(k *packet.FlowKey) { k.Dst++ },
		func(k *packet.FlowKey) { k.SrcPort++ },
		func(k *packet.FlowKey) { k.DstPort++ },
		func(k *packet.FlowKey) { k.Proto = packet.ProtoUDP },
		func(k *packet.FlowKey) { k.Tenant++ },
	}
	for i, mut := range variants {
		k := testKey
		mut(&k)
		if p.Match(k) {
			t.Errorf("variant %d matched exact pattern", i)
		}
	}
}

func TestPatternPrefixMatch(t *testing.T) {
	p := Pattern{Tenant: 3, Dst: packet.MustParseIP("10.0.0.0"), DstPrefix: 24}
	if !p.Match(testKey) {
		t.Error("24-bit prefix should match 10.0.0.2")
	}
	k := testKey
	k.Dst = packet.MustParseIP("10.0.1.2")
	if p.Match(k) {
		t.Error("24-bit prefix matched outside subnet")
	}
}

func TestPatternTenantWildcard(t *testing.T) {
	p := Pattern{AnyTenant: true, DstPort: 11211}
	if !p.Match(testKey) {
		t.Error("AnyTenant pattern should match")
	}
	k := testKey
	k.Tenant = 99
	if !p.Match(k) {
		t.Error("AnyTenant pattern should match other tenants")
	}
}

func TestAggregatePattern(t *testing.T) {
	// Ingress aggregate of the memcached service: all flows to
	// <VM IP, 11211, tenant> match, regardless of client.
	agg := testKey.IngressAggregate()
	p := AggregatePattern(agg)
	if !p.Match(testKey) {
		t.Fatal("aggregate pattern does not match member flow")
	}
	k := testKey
	k.Src = packet.MustParseIP("10.0.0.99")
	k.SrcPort = 55555
	if !p.Match(k) {
		t.Error("aggregate should match any client of the service")
	}
	k.DstPort = 80
	if p.Match(k) {
		t.Error("aggregate matched a different service port")
	}
	// Egress direction pins the source side.
	pe := AggregatePattern(testKey.EgressAggregate())
	if !pe.Match(testKey) {
		t.Error("egress aggregate does not match member flow")
	}
	k2 := testKey
	k2.Src = packet.MustParseIP("10.9.9.9")
	if pe.Match(k2) {
		t.Error("egress aggregate matched foreign source")
	}
}

func TestSpecificityOrdering(t *testing.T) {
	exact := ExactPattern(testKey)
	agg := AggregatePattern(testKey.IngressAggregate())
	tenant := TenantPattern(3)
	if !(exact.Specificity() > agg.Specificity() && agg.Specificity() > tenant.Specificity()) {
		t.Errorf("specificity ordering broken: exact=%d agg=%d tenant=%d",
			exact.Specificity(), agg.Specificity(), tenant.Specificity())
	}
}

func TestVMRulesDefaultDeny(t *testing.T) {
	v := &VMRules{Tenant: 3, VMIP: testKey.Src}
	if v.Evaluate(testKey) != Deny {
		t.Error("empty rule set should default-deny")
	}
}

func TestVMRulesPriorityAndTieBreak(t *testing.T) {
	v := &VMRules{Tenant: 3, VMIP: testKey.Src}
	v.Security = append(v.Security,
		SecurityRule{Pattern: TenantPattern(3), Action: Allow, Priority: 1},
		SecurityRule{Pattern: ExactPattern(testKey), Action: Deny, Priority: 5},
	)
	if v.Evaluate(testKey) != Deny {
		t.Error("higher-priority deny should win")
	}
	// Equal priority: more specific wins.
	v2 := &VMRules{Tenant: 3}
	v2.Security = append(v2.Security,
		SecurityRule{Pattern: TenantPattern(3), Action: Deny, Priority: 1},
		SecurityRule{Pattern: ExactPattern(testKey), Action: Allow, Priority: 1},
	)
	if v2.Evaluate(testKey) != Allow {
		t.Error("more specific rule should break priority tie")
	}
}

func TestSpecializeSecurity(t *testing.T) {
	v := &VMRules{Tenant: 3}
	v.Security = append(v.Security,
		SecurityRule{Pattern: TenantPattern(3), Action: Allow, Priority: 2},
		SecurityRule{Pattern: Pattern{Tenant: 3, DstPort: 22}, Action: Deny, Priority: 7},
	)
	r := v.SpecializeSecurity(testKey)
	if r.Action != Allow || !r.Pattern.IsExact() {
		t.Errorf("specialized rule = %v", r)
	}
	// The specialized rule carries the *evaluated* verdict, including
	// the effect of higher-priority deny rules.
	sshKey := testKey
	sshKey.DstPort = 22
	r2 := v.SpecializeSecurity(sshKey)
	if r2.Action != Deny {
		t.Error("specialized rule should inherit the deny verdict")
	}
	if r2.Priority <= 7 {
		t.Error("specialized rule priority should exceed existing rules")
	}
}

func TestQueueFor(t *testing.T) {
	v := &VMRules{Tenant: 3}
	v.QoS = append(v.QoS,
		QoSRule{Pattern: TenantPattern(3), Queue: 1, Priority: 1},
		QoSRule{Pattern: ExactPattern(testKey), Queue: 3, Priority: 9},
	)
	if q := v.QueueFor(testKey); q != 3 {
		t.Errorf("QueueFor = %d, want 3", q)
	}
	other := testKey
	other.DstPort = 80
	if q := v.QueueFor(other); q != 1 {
		t.Errorf("QueueFor(other) = %d, want 1", q)
	}
	empty := &VMRules{}
	if q := empty.QueueFor(testKey); q != 0 {
		t.Errorf("QueueFor with no rules = %d, want 0", q)
	}
}

func TestExactTable(t *testing.T) {
	tbl := NewExactTable[Action]()
	if tbl.Lookup(testKey) != nil {
		t.Error("lookup in empty table should miss")
	}
	e := tbl.Install(testKey, Allow)
	e.Stats.Hit(100, time.Second)
	e.Stats.Hit(200, 2*time.Second)
	got := tbl.Lookup(testKey)
	if got == nil || got.Value != Allow {
		t.Fatal("installed entry not found")
	}
	if got.Stats.Packets != 2 || got.Stats.Bytes != 300 || got.Stats.LastSeen != 2*time.Second {
		t.Errorf("stats = %+v", got.Stats)
	}
	if tbl.Len() != 1 {
		t.Errorf("Len = %d", tbl.Len())
	}
	if !tbl.Remove(testKey) || tbl.Remove(testKey) {
		t.Error("Remove semantics wrong")
	}
}

func TestExactTableExpire(t *testing.T) {
	tbl := NewExactTable[int]()
	old := tbl.Install(testKey, 1)
	old.Stats.Hit(1, time.Second)
	fresh := tbl.Install(testKey.Reverse(), 2)
	fresh.Stats.Hit(1, 10*time.Second)
	if n := tbl.Expire(5 * time.Second); n != 1 {
		t.Errorf("Expire evicted %d, want 1", n)
	}
	if tbl.Lookup(testKey) != nil || tbl.Lookup(testKey.Reverse()) == nil {
		t.Error("wrong entry evicted")
	}
}

func TestTCAMCapacity(t *testing.T) {
	tc := NewTCAM(2)
	if err := tc.Insert(&TCAMEntry{Pattern: ExactPattern(testKey), Action: Allow}); err != nil {
		t.Fatal(err)
	}
	k2 := testKey
	k2.DstPort = 80
	if err := tc.Insert(&TCAMEntry{Pattern: ExactPattern(k2), Action: Allow}); err != nil {
		t.Fatal(err)
	}
	k3 := testKey
	k3.DstPort = 443
	if err := tc.Insert(&TCAMEntry{Pattern: ExactPattern(k3), Action: Allow}); !errors.Is(err, ErrTCAMFull) {
		t.Errorf("expected ErrTCAMFull, got %v", err)
	}
	if tc.Free() != 0 || tc.Len() != 2 {
		t.Errorf("Free=%d Len=%d", tc.Free(), tc.Len())
	}
	if n := tc.Remove(ExactPattern(k2)); n != 1 {
		t.Errorf("Remove = %d, want 1", n)
	}
	if tc.Free() != 1 {
		t.Errorf("Free after remove = %d", tc.Free())
	}
}

func TestTCAMPriorityLookup(t *testing.T) {
	tc := NewTCAM(10)
	must := func(e *TCAMEntry) {
		t.Helper()
		if err := tc.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	must(&TCAMEntry{Pattern: TenantPattern(3), Priority: 1, Action: Allow})
	must(&TCAMEntry{Pattern: ExactPattern(testKey), Priority: 5, Action: Deny})
	if e := tc.Lookup(testKey); e == nil || e.Action != Deny {
		t.Error("high-priority exact rule should win")
	}
	other := testKey
	other.DstPort = 80
	if e := tc.Lookup(other); e == nil || e.Action != Allow {
		t.Error("tenant-wide rule should match other flows")
	}
	foreign := testKey
	foreign.Tenant = 9
	if tc.Lookup(foreign) != nil {
		t.Error("foreign tenant matched")
	}
	// Lookup after a post-sort insert must still order correctly.
	must(&TCAMEntry{Pattern: ExactPattern(other), Priority: 9, Action: Deny})
	if e := tc.Lookup(other); e == nil || e.Action != Deny {
		t.Error("entry inserted after lookup not prioritized")
	}
}

func TestPriorityTable(t *testing.T) {
	var pt PriorityTable
	if pt.Evaluate(testKey) != Deny {
		t.Error("empty priority table should default-deny")
	}
	pt.Add(SecurityRule{Pattern: TenantPattern(3), Action: Allow, Priority: 1})
	pt.Add(SecurityRule{Pattern: Pattern{Tenant: 3, DstPort: 11211}, Action: Deny, Priority: 3})
	if pt.Evaluate(testKey) != Deny {
		t.Error("priority 3 deny should win")
	}
	web := testKey
	web.DstPort = 80
	if pt.Evaluate(web) != Allow {
		t.Error("web flow should be allowed")
	}
	if pt.Len() != 2 {
		t.Errorf("Len = %d", pt.Len())
	}
}

func TestTunnelTable(t *testing.T) {
	tt := NewTunnelTable()
	m := TunnelMapping{Tenant: 3, VMIP: testKey.Dst, Remote: packet.MustParseIP("192.168.1.20")}
	tt.Set(m)
	got, ok := tt.Lookup(3, testKey.Dst)
	if !ok || got.Remote != m.Remote {
		t.Fatalf("Lookup = %v, %v", got, ok)
	}
	// Overlapping tenant address spaces: same VM IP, different tenant.
	if _, ok := tt.Lookup(4, testKey.Dst); ok {
		t.Error("lookup crossed tenants")
	}
	if !tt.Remove(3, testKey.Dst) || tt.Remove(3, testKey.Dst) {
		t.Error("Remove semantics wrong")
	}
	if tt.Len() != 0 {
		t.Errorf("Len = %d", tt.Len())
	}
}

// Property: a pattern built from any key matches that key, and
// VMRules.Evaluate equals PriorityTable.Evaluate over the same rules.
func TestEvaluateConsistencyProperty(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16, tenant uint8, prios []uint8) bool {
		k := packet.FlowKey{Src: packet.IP(src), Dst: packet.IP(dst),
			SrcPort: sp, DstPort: dp, Proto: packet.ProtoTCP, Tenant: packet.TenantID(tenant)}
		if !ExactPattern(k).Match(k) {
			return false
		}
		v := &VMRules{Tenant: k.Tenant}
		var pt PriorityTable
		for i, p := range prios {
			r := SecurityRule{Pattern: TenantPattern(k.Tenant), Priority: int(p)}
			if i%2 == 0 {
				r.Action = Allow
				r.Pattern = ExactPattern(k)
			}
			v.Security = append(v.Security, r)
			pt.Add(r)
		}
		return v.Evaluate(k) == pt.Evaluate(k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPatternString(t *testing.T) {
	p := ExactPattern(testKey)
	s := p.String()
	if s == "" {
		t.Error("empty String")
	}
	for _, want := range []string{"t3", "10.0.0.1/32:40000", "11211", "tcp"} {
		if !contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
	if got := (Pattern{AnyTenant: true}).String(); !contains(got, "t*") {
		t.Errorf("wildcard tenant String = %q", got)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && indexOf(s, sub) >= 0
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
