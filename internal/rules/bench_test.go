package rules

import (
	"fmt"
	"testing"

	"repro/internal/packet"
)

// The fast-path acceptance benchmarks: tuple-space classification against
// the seed linear scans, at the 1k-rule scale of a loaded multi-tenant
// hypervisor. Run via `make bench` (or scripts/bench.sh), which records
// BENCH_BASELINE.json.

// benchRuleSet builds n security rules drawn from a handful of templates
// (the realistic shape: tenant ACLs are generated from few policy forms),
// yielding a small number of distinct tuples over many rules.
func benchRuleSet(n int) []SecurityRule {
	rs := make([]SecurityRule, 0, n)
	for i := 0; i < n; i++ {
		var p Pattern
		p.Tenant = packet.TenantID(3)
		switch i % 4 {
		case 0: // per-destination-subnet allow
			p.Dst = packet.IP(0x0a000000 | uint32(i)<<8)
			p.DstPrefix = 24
		case 1: // per-service allow
			p.DstPort = uint16(1024 + i%5000)
			p.Proto = packet.ProtoTCP
		case 2: // per-peer exact
			p.Src = packet.IP(0x0a000000 | uint32(i))
			p.SrcPrefix = 32
			p.Dst = packet.IP(0x0b000000 | uint32(i))
			p.DstPrefix = 32
		case 3: // protocol-wide
			p.Proto = packet.ProtoUDP
		}
		rs = append(rs, SecurityRule{Pattern: p, Action: Action(i % 2), Priority: i % 8})
	}
	return rs
}

func benchKeys(n int) []packet.FlowKey {
	ks := make([]packet.FlowKey, n)
	for i := range ks {
		ks[i] = packet.FlowKey{
			Tenant:  3,
			Src:     packet.IP(0x0a000000 | uint32(i)),
			Dst:     packet.IP(0x0a000000 | uint32(i%7)<<8 | 9),
			SrcPort: uint16(40000 + i%1000),
			DstPort: uint16(1024 + i%5000),
			Proto:   packet.ProtoTCP,
		}
	}
	return ks
}

// BenchmarkClassify1kRules compares the seed linear scan against the
// tuple-space classifier on the same 1000-rule table — the slow-path
// cost the megaflow/upcall path pays per miss.
func BenchmarkClassify1kRules(b *testing.B) {
	rs := benchRuleSet(1000)
	keys := benchKeys(4096)
	v := &VMRules{Tenant: 3, Security: rs}

	b.Run("linear", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			v.EvaluateLinear(keys[i%len(keys)])
		}
	})
	b.Run("tuplespace", func(b *testing.B) {
		v.Evaluate(keys[0]) // build the index outside the timer
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v.Evaluate(keys[i%len(keys)])
		}
	})
}

// BenchmarkTCAM1kRules compares hardware-table lookups: sorted-slice
// first-match scan versus the tuple-space index.
func BenchmarkTCAM1kRules(b *testing.B) {
	rs := benchRuleSet(1000)
	tc := NewTCAM(1000)
	for i := range rs {
		if err := tc.Insert(&TCAMEntry{Pattern: rs[i].Pattern, Priority: rs[i].Priority, Action: rs[i].Action}); err != nil {
			b.Fatal(err)
		}
	}
	keys := benchKeys(4096)
	b.Run("linear", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tc.LookupLinear(keys[i%len(keys)])
		}
	})
	b.Run("tuplespace", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tc.Lookup(keys[i%len(keys)])
		}
	})
}

// BenchmarkTCAMInsert measures rule installation, which the seed paid for
// lazily with a full re-sort on the next lookup and the table now pays
// with a binary-search splice.
func BenchmarkTCAMInsert(b *testing.B) {
	rs := benchRuleSet(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tc := NewTCAM(len(rs))
		for j := range rs {
			if err := tc.Insert(&TCAMEntry{Pattern: rs[j].Pattern, Priority: rs[j].Priority}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTupleSpaceScaling shows lookup cost tracking the number of
// distinct tuples, not the number of rules.
func BenchmarkTupleSpaceScaling(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("rules=%d", n), func(b *testing.B) {
			ts := NewTupleSpace[Action]()
			for _, r := range benchRuleSet(n) {
				ts.Insert(r.Pattern, r.Priority, r.Action)
			}
			keys := benchKeys(4096)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ts.Lookup(keys[i%len(keys)])
			}
		})
	}
}
