package rules

import (
	"repro/internal/packet"
)

// FieldMask records which fields of the 6-tuple a classification consulted
// (or a pattern constrains). It is the megaflow currency: a slow-path
// lookup returns the union of the masks of every tuple it probed, and any
// packet equal to the original under that mask is guaranteed the same
// verdict — the OVS megaflow insight. FieldMask is comparable, so it can
// key maps directly.
type FieldMask struct {
	// Tenant is true when the tenant field was consulted.
	Tenant bool
	// SrcPrefix/DstPrefix are the consulted IP prefix lengths (0 = the
	// address was never examined).
	SrcPrefix, DstPrefix int8
	// SrcPort/DstPort/Proto are true when the field was consulted.
	SrcPort, DstPort, Proto bool
}

// ExactMask is the fully-specified mask: every field consulted. A megaflow
// under ExactMask degenerates to an exact-match entry.
var ExactMask = FieldMask{Tenant: true, SrcPrefix: 32, DstPrefix: 32, SrcPort: true, DstPort: true, Proto: true}

// Union returns the field-wise union of two masks — the combined
// "fields consulted" set of two classification steps.
func (m FieldMask) Union(o FieldMask) FieldMask {
	u := FieldMask{
		Tenant:    m.Tenant || o.Tenant,
		SrcPrefix: m.SrcPrefix,
		DstPrefix: m.DstPrefix,
		SrcPort:   m.SrcPort || o.SrcPort,
		DstPort:   m.DstPort || o.DstPort,
		Proto:     m.Proto || o.Proto,
	}
	if o.SrcPrefix > u.SrcPrefix {
		u.SrcPrefix = o.SrcPrefix
	}
	if o.DstPrefix > u.DstPrefix {
		u.DstPrefix = o.DstPrefix
	}
	return u
}

// Apply projects a flow key onto the mask: unconsulted fields are zeroed
// and IPs are truncated to the consulted prefix. Two keys with equal
// projections are indistinguishable to any classification that consulted
// only the masked fields.
func (m FieldMask) Apply(k packet.FlowKey) packet.FlowKey {
	var p packet.FlowKey
	if m.Tenant {
		p.Tenant = k.Tenant
	}
	p.Src = k.Src.Mask(int(m.SrcPrefix))
	p.Dst = k.Dst.Mask(int(m.DstPrefix))
	if m.SrcPort {
		p.SrcPort = k.SrcPort
	}
	if m.DstPort {
		p.DstPort = k.DstPort
	}
	if m.Proto {
		p.Proto = k.Proto
	}
	return p
}

// Mask returns the pattern's field mask: exactly the fields Match consults.
func (p Pattern) Mask() FieldMask {
	return FieldMask{
		Tenant:    !p.AnyTenant,
		SrcPrefix: int8(clampPrefix(p.SrcPrefix)),
		DstPrefix: int8(clampPrefix(p.DstPrefix)),
		SrcPort:   p.SrcPort != 0,
		DstPort:   p.DstPort != 0,
		Proto:     p.Proto != 0,
	}
}

func clampPrefix(n int) int {
	if n <= 0 {
		return 0
	}
	if n >= 32 {
		return 32
	}
	return n
}

// canonicalKey returns the pattern's representative key under its own
// mask: for any k, p.Match(k) ⇔ p.Mask().Apply(k) == p.canonicalKey().
func (p Pattern) canonicalKey() packet.FlowKey {
	m := p.Mask()
	k := packet.FlowKey{
		Src: p.Src, Dst: p.Dst,
		SrcPort: p.SrcPort, DstPort: p.DstPort,
		Proto: p.Proto, Tenant: p.Tenant,
	}
	return m.Apply(k)
}

// Overlaps reports whether the pattern's match region intersects the
// megaflow region (mask m with projected key mk) — i.e. whether some flow
// key matches both. Used to invalidate only the megaflow entries a rule
// change could affect.
func (p Pattern) Overlaps(m FieldMask, mk packet.FlowKey) bool {
	if !p.AnyTenant && m.Tenant && p.Tenant != mk.Tenant {
		return false
	}
	if p.SrcPrefix > 0 && m.SrcPrefix > 0 {
		c := clampPrefix(p.SrcPrefix)
		if int(m.SrcPrefix) < c {
			c = int(m.SrcPrefix)
		}
		if p.Src.Mask(c) != mk.Src.Mask(c) {
			return false
		}
	}
	if p.DstPrefix > 0 && m.DstPrefix > 0 {
		c := clampPrefix(p.DstPrefix)
		if int(m.DstPrefix) < c {
			c = int(m.DstPrefix)
		}
		if p.Dst.Mask(c) != mk.Dst.Mask(c) {
			return false
		}
	}
	if p.SrcPort != 0 && m.SrcPort && p.SrcPort != mk.SrcPort {
		return false
	}
	if p.DstPort != 0 && m.DstPort && p.DstPort != mk.DstPort {
		return false
	}
	if p.Proto != 0 && m.Proto && p.Proto != mk.Proto {
		return false
	}
	return true
}

// tsEntry is one rule inside a tuple bucket.
type tsEntry[V any] struct {
	prio int
	seq  uint64
	val  V
}

// tupleGroup holds all rules sharing one field mask. Every pattern in the
// group reduces to an exact match on the mask-projected key, so a group
// lookup is one hash probe. Specificity is a function of the mask alone,
// so it is a group constant.
type tupleGroup[V any] struct {
	mask    FieldMask
	spec    int
	maxPrio int
	buckets map[packet.FlowKey][]tsEntry[V]
	count   int
}

// TupleSpace is a tuple-space-search classifier (the OVS user-space
// design): rules are grouped by field mask, each group is a hash table on
// the masked key, and groups are scanned in descending max-priority order
// with pruning — once a match is found, groups whose best possible
// priority is strictly lower cannot win and are skipped. With R rules over
// T distinct masks, lookup is O(T) hash probes instead of O(R) pattern
// matches; rule sets drawn from a few templates (the common case) have
// small T.
//
// Tie-breaking reproduces the seed linear scans exactly: highest priority
// wins, then highest specificity, then earliest insertion.
type TupleSpace[V any] struct {
	groups  []*tupleGroup[V] // sorted by maxPrio descending
	byMask  map[FieldMask]*tupleGroup[V]
	seq     uint64
	size    int
	specTie bool
}

// NewTupleSpace returns an empty classifier with (priority, specificity,
// insertion-order) tie-breaking — the semantics of PriorityTable, VMRules
// and the TCAM.
func NewTupleSpace[V any]() *TupleSpace[V] {
	return &TupleSpace[V]{byMask: make(map[FieldMask]*tupleGroup[V]), specTie: true}
}

// NewTupleSpacePriorityOnly returns a classifier that breaks priority ties
// by insertion order alone, ignoring specificity — the semantics of
// VMRules.QueueFor.
func NewTupleSpacePriorityOnly[V any]() *TupleSpace[V] {
	return &TupleSpace[V]{byMask: make(map[FieldMask]*tupleGroup[V])}
}

// Len returns the number of installed rules.
func (t *TupleSpace[V]) Len() int { return t.size }

// Tuples returns the number of distinct field masks — the lookup cost
// upper bound.
func (t *TupleSpace[V]) Tuples() int { return len(t.groups) }

// Insert adds a rule.
func (t *TupleSpace[V]) Insert(p Pattern, prio int, v V) {
	mask := p.Mask()
	g, ok := t.byMask[mask]
	if !ok {
		g = &tupleGroup[V]{
			mask:    mask,
			spec:    p.Specificity(),
			maxPrio: prio,
			buckets: make(map[packet.FlowKey][]tsEntry[V]),
		}
		t.byMask[mask] = g
		t.groups = append(t.groups, g)
	}
	key := p.canonicalKey()
	g.buckets[key] = append(g.buckets[key], tsEntry[V]{prio: prio, seq: t.seq, val: v})
	t.seq++
	g.count++
	t.size++
	if prio > g.maxPrio {
		g.maxPrio = prio
	}
	t.resort()
}

// Remove deletes every rule whose pattern equals p and whose value
// satisfies match (nil = all), returning how many were removed.
func (t *TupleSpace[V]) Remove(p Pattern, match func(V) bool) int {
	mask := p.Mask()
	g, ok := t.byMask[mask]
	if !ok {
		return 0
	}
	key := p.canonicalKey()
	bucket, ok := g.buckets[key]
	if !ok {
		return 0
	}
	n := 0
	out := bucket[:0]
	for _, e := range bucket {
		if match == nil || match(e.val) {
			n++
			continue
		}
		out = append(out, e)
	}
	if n == 0 {
		return 0
	}
	if len(out) == 0 {
		delete(g.buckets, key)
	} else {
		g.buckets[key] = out
	}
	g.count -= n
	t.size -= n
	if g.count == 0 {
		delete(t.byMask, mask)
		for i, gg := range t.groups {
			if gg == g {
				t.groups = append(t.groups[:i], t.groups[i+1:]...)
				break
			}
		}
	} else {
		// Keep maxPrio tight so pruning stays effective.
		g.maxPrio = g.recomputeMaxPrio()
		t.resort()
	}
	return n
}

func (g *tupleGroup[V]) recomputeMaxPrio() int {
	first := true
	max := 0
	for _, bucket := range g.buckets {
		for _, e := range bucket {
			if first || e.prio > max {
				max, first = e.prio, false
			}
		}
	}
	return max
}

// resort restores descending-maxPrio order of the groups (stable; the
// group count is small, and insertion sort on a nearly-sorted slice is
// cheap).
func (t *TupleSpace[V]) resort() {
	gs := t.groups
	for i := 1; i < len(gs); i++ {
		g := gs[i]
		j := i - 1
		for j >= 0 && gs[j].maxPrio < g.maxPrio {
			gs[j+1] = gs[j]
			j--
		}
		gs[j+1] = g
	}
}

// Lookup returns the winning rule's value for the key.
func (t *TupleSpace[V]) Lookup(k packet.FlowKey) (V, bool) {
	v, ok, _ := t.lookup(k, false)
	return v, ok
}

// LookupMask is Lookup plus the union of the field masks of every tuple
// the search probed — the wildcard a megaflow cache entry for this
// decision may use. Tuples skipped by priority pruning are excluded: the
// skip decision depends only on matches in probed tuples, which the mask
// pins.
func (t *TupleSpace[V]) LookupMask(k packet.FlowKey) (V, bool, FieldMask) {
	return t.lookup(k, true)
}

func (t *TupleSpace[V]) lookup(k packet.FlowKey, wantMask bool) (V, bool, FieldMask) {
	var (
		best     V
		found    bool
		bestPrio int
		bestSpec int
		bestSeq  uint64
		mask     FieldMask
	)
	for _, g := range t.groups {
		if found && g.maxPrio < bestPrio {
			break // no remaining group can beat the current winner
		}
		if wantMask {
			mask = mask.Union(g.mask)
		}
		bucket, ok := g.buckets[g.mask.Apply(k)]
		if !ok {
			continue
		}
		for _, e := range bucket {
			switch {
			case !found,
				e.prio > bestPrio,
				t.specTie && e.prio == bestPrio && g.spec > bestSpec,
				e.prio == bestPrio && (!t.specTie || g.spec == bestSpec) && e.seq < bestSeq:
				best, found = e.val, true
				bestPrio, bestSpec, bestSeq = e.prio, g.spec, e.seq
			}
		}
	}
	return best, found, mask
}
