package rules

import (
	"math/rand"
	"testing"

	"repro/internal/packet"
)

// The tuple-space classifiers must be observationally identical to the
// seed linear scans they replaced. These differential tests drive both
// implementations with randomized rule sets, randomized insert/remove
// interleavings, and keys biased to land on rule boundaries, asserting
// byte-identical verdicts throughout.

// randPattern draws a pattern from the shapes real rule sets use: exact
// and prefix IP matches, wildcarded or pinned ports and protocol, a small
// tenant space so collisions and shadowing actually occur.
func randPattern(rng *rand.Rand) Pattern {
	var p Pattern
	if rng.Intn(8) == 0 {
		p.AnyTenant = true
	} else {
		p.Tenant = packet.TenantID(rng.Intn(3) + 1)
	}
	prefix := func() (packet.IP, int) {
		switch rng.Intn(4) {
		case 0:
			return 0, 0 // any
		case 1:
			ip := packet.IP(0x0a000000 | uint32(rng.Intn(2)<<8)) // 10.0.{0,2}.0/24
			return ip, 24
		default:
			ip := packet.IP(0x0a000000 | uint32(rng.Intn(2)<<8) | uint32(rng.Intn(4)))
			return ip, 32
		}
	}
	p.Src, p.SrcPrefix = prefix()
	p.Dst, p.DstPrefix = prefix()
	if rng.Intn(2) == 0 {
		p.SrcPort = uint16(40000 + rng.Intn(3))
	}
	if rng.Intn(2) == 0 {
		p.DstPort = []uint16{22, 80, 11211}[rng.Intn(3)]
	}
	switch rng.Intn(3) {
	case 0:
		p.Proto = packet.ProtoTCP
	case 1:
		p.Proto = packet.ProtoUDP
	}
	return p
}

// randKey draws keys from the same small space the patterns cover, so a
// substantial fraction of lookups match one or more rules.
func randKey(rng *rand.Rand) packet.FlowKey {
	return packet.FlowKey{
		Tenant:  packet.TenantID(rng.Intn(3) + 1),
		Src:     packet.IP(0x0a000000 | uint32(rng.Intn(2)<<8) | uint32(rng.Intn(4))),
		Dst:     packet.IP(0x0a000000 | uint32(rng.Intn(2)<<8) | uint32(rng.Intn(4))),
		SrcPort: uint16(40000 + rng.Intn(3)),
		DstPort: []uint16{22, 80, 11211}[rng.Intn(3)],
		Proto:   []byte{packet.ProtoTCP, packet.ProtoUDP}[rng.Intn(2)],
	}
}

func TestPriorityTableDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		var tbl PriorityTable
		n := rng.Intn(40)
		for i := 0; i < n; i++ {
			tbl.Add(SecurityRule{
				Pattern:  randPattern(rng),
				Action:   Action(rng.Intn(2)),
				Priority: rng.Intn(6) - 1, // includes never-winning -1
			})
		}
		for probe := 0; probe < 200; probe++ {
			k := randKey(rng)
			if got, want := tbl.Evaluate(k), tbl.EvaluateLinear(k); got != want {
				t.Fatalf("trial %d: Evaluate(%v) = %v, linear reference %v", trial, k, got, want)
			}
		}
	}
}

func TestVMRulesDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		v := &VMRules{Tenant: 1, VMIP: packet.MustParseIP("10.0.0.1")}
		// Interleave appends, removals (wholesale replacement) and probes:
		// the index must track every slice mutation pattern the callers use.
		for step := 0; step < 120; step++ {
			switch rng.Intn(6) {
			case 0:
				v.Security = append(v.Security, SecurityRule{
					Pattern: randPattern(rng), Action: Action(rng.Intn(2)), Priority: rng.Intn(6) - 1,
				})
			case 1:
				v.QoS = append(v.QoS, QoSRule{
					Pattern: randPattern(rng), Queue: rng.Intn(4), Priority: rng.Intn(6) - 1,
				})
			case 2:
				if len(v.Security) > 0 {
					i := rng.Intn(len(v.Security))
					v.Security = append(append([]SecurityRule{}, v.Security[:i]...), v.Security[i+1:]...)
				}
			case 3:
				if len(v.QoS) > 0 {
					i := rng.Intn(len(v.QoS))
					v.QoS = append(append([]QoSRule{}, v.QoS[:i]...), v.QoS[i+1:]...)
				}
			}
			k := randKey(rng)
			if got, want := v.Evaluate(k), v.EvaluateLinear(k); got != want {
				t.Fatalf("trial %d step %d: Evaluate(%v) = %v, linear reference %v", trial, step, k, got, want)
			}
			if got, want := v.QueueFor(k), v.QueueForLinear(k); got != want {
				t.Fatalf("trial %d step %d: QueueFor(%v) = %d, linear reference %d", trial, step, k, got, want)
			}
		}
	}
}

func TestTCAMDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		tc := NewTCAM(200)
		var installed []Pattern
		for step := 0; step < 150; step++ {
			if rng.Intn(3) != 0 || len(installed) == 0 {
				p := randPattern(rng)
				e := &TCAMEntry{Pattern: p, Priority: rng.Intn(6), Action: Action(rng.Intn(2)), Queue: rng.Intn(4)}
				if tc.Insert(e) == nil {
					installed = append(installed, p)
				}
			} else {
				i := rng.Intn(len(installed))
				tc.Remove(installed[i])
				installed = append(installed[:i], installed[i+1:]...)
			}
			k := randKey(rng)
			got, want := tc.Lookup(k), tc.LookupLinear(k)
			if got != want {
				t.Fatalf("trial %d step %d: Lookup(%v) = %+v, linear reference %+v", trial, step, k, got, want)
			}
		}
	}
}

// TestLookupMaskSoundness is the megaflow safety property: any key whose
// projection under the returned mask equals the probed key's projection
// must receive the identical verdict. The test perturbs every field the
// mask does not pin and asserts verdict identity.
func TestLookupMaskSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 40; trial++ {
		ts := NewTupleSpace[int]()
		n := rng.Intn(30) + 1
		for i := 0; i < n; i++ {
			ts.Insert(randPattern(rng), rng.Intn(6), i)
		}
		for probe := 0; probe < 100; probe++ {
			k := randKey(rng)
			v, ok, m := ts.LookupMask(k)
			for mut := 0; mut < 20; mut++ {
				k2 := randKey(rng)
				// Force k2 into k's megaflow region: overwrite the fields
				// the mask pins with k's values.
				if m.Tenant {
					k2.Tenant = k.Tenant
				}
				// Merge: pinned prefix bits from k, free suffix bits from k2.
				k2.Src = k.Src.Mask(int(m.SrcPrefix)) | (k2.Src &^ packet.IP(0xffffffff).Mask(int(m.SrcPrefix)))
				k2.Dst = k.Dst.Mask(int(m.DstPrefix)) | (k2.Dst &^ packet.IP(0xffffffff).Mask(int(m.DstPrefix)))
				if m.SrcPort {
					k2.SrcPort = k.SrcPort
				}
				if m.DstPort {
					k2.DstPort = k.DstPort
				}
				if m.Proto {
					k2.Proto = k.Proto
				}
				if m.Apply(k2) != m.Apply(k) {
					t.Fatalf("constructed key escaped the megaflow region")
				}
				v2, ok2, _ := ts.LookupMask(k2)
				if v2 != v || ok2 != ok {
					t.Fatalf("trial %d: key %v (region of %v, mask %+v) got (%d,%v), want (%d,%v)",
						trial, k2, k, m, v2, ok2, v, ok)
				}
			}
		}
	}
}

// TestOverlapsConservative: invalidation safety. If a pattern matches some
// key, it must be reported as overlapping that key's megaflow region under
// any mask — otherwise a rule change could leave a stale cached verdict.
func TestOverlapsConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	masks := []FieldMask{
		{},
		{Tenant: true, SrcPrefix: 32, DstPrefix: 32},
		{Tenant: true, SrcPrefix: 24, DstPort: true},
		{Tenant: true, SrcPrefix: 32, DstPrefix: 32, SrcPort: true, DstPort: true, Proto: true},
		{DstPrefix: 16, Proto: true},
	}
	for trial := 0; trial < 20000; trial++ {
		p := randPattern(rng)
		k := randKey(rng)
		if !p.Match(k) {
			continue
		}
		for _, m := range masks {
			if !p.Overlaps(m, m.Apply(k)) {
				t.Fatalf("pattern %v matches %v but reports no overlap with its region under %+v", p, k, m)
			}
		}
	}
}
