// Package cluster assembles the emulated testbed: servers with SR-IOV
// NICs and vswitches, access links to an L3 ToR, and tenant/VM
// provisioning — the role the lab setup of §5.1 plays (six HP servers on
// a Nexus ToR). A Cluster is pure substrate: the FasTrak rule manager
// (internal/core) attaches on top of it.
package cluster

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/host"
	"repro/internal/model"
	"repro/internal/packet"
	"repro/internal/qos"
	"repro/internal/rules"
	"repro/internal/sim"
	"repro/internal/smartnic"
	"repro/internal/tor"
	"repro/internal/vswitch"
)

// Config describes a testbed to build.
type Config struct {
	// Servers is the number of physical machines (the paper uses six).
	Servers int
	// CostModel parameterizes all timing; zero value means
	// model.Default().
	CostModel *model.CostModel
	// VSwitchCfg selects the software path's functions on all servers.
	VSwitchCfg model.VSwitchConfig
	// TCAMCapacity is the ToR's hardware rule budget (entries).
	TCAMCapacity int
	// Seed drives all randomness.
	Seed int64
	// QoSAccessLinks enables the ToR's egress QoS scheduler on access
	// links; otherwise they are FIFO.
	QoSAccessLinks bool
	// SmartNIC, when non-nil with Capacity > 0, equips every server with
	// a SmartNIC offload tier between the vswitch and the ToR TCAM.
	SmartNIC *smartnic.Config
	// DataPlaneShards, when > 0, enables the sharded batch data plane on
	// every server's vswitch (vswitch.EnableShardedPlane). 1 is the
	// deterministic inline mode; > 1 spawns worker goroutines — a
	// wall-clock throughput engine beside the deterministic sim, never
	// inside it.
	DataPlaneShards int
}

// Cluster is an assembled testbed.
type Cluster struct {
	Eng *sim.Engine
	CM  *model.CostModel
	// TOR is the (first) rack's switch; TORs lists every rack's (see
	// NewMulti for multi-rack testbeds).
	TOR     *tor.TOR
	TORs    []*tor.TOR
	Servers []*host.Server

	vlanByTenant map[packet.TenantID]packet.VLANID
	nextVLAN     packet.VLANID
	// rackOf maps server index → rack index (empty = all rack 0).
	rackOf []int
	// uplinks and downlinks hold each server's access-link pair
	// (server→ToR, ToR→server) for tap insertion and fault injection.
	uplinks   []*fabric.Link
	downlinks []*fabric.Link
}

// Uplink returns server idx's server→ToR access link (nil if out of
// range).
func (c *Cluster) Uplink(idx int) *fabric.Link {
	if idx < 0 || idx >= len(c.uplinks) {
		return nil
	}
	return c.uplinks[idx]
}

// Downlink returns server idx's ToR→server access link (nil if out of
// range).
func (c *Cluster) Downlink(idx int) *fabric.Link {
	if idx < 0 || idx >= len(c.downlinks) {
		return nil
	}
	return c.downlinks[idx]
}

// RegisterFaults names every access link on the injector: "uplink<i>" is
// server i's server→ToR link, "downlink<i>" the reverse; servers with a
// SmartNIC register it as "nic<i>" for reset/corruption faults.
// Control-plane targets are registered separately by the rule manager
// (core.Manager.RegisterFaults).
func (c *Cluster) RegisterFaults(inj *faults.Injector) {
	for i := range c.uplinks {
		inj.RegisterLink(fmt.Sprintf("uplink%d", i), c.uplinks[i])
		inj.RegisterLink(fmt.Sprintf("downlink%d", i), c.downlinks[i])
	}
	for i, s := range c.Servers {
		if s.SmartNIC != nil {
			inj.RegisterNIC(fmt.Sprintf("nic%d", i), s.SmartNIC)
		}
	}
}

// TapServer interposes a capture/transform port on the ToR→server link of
// server idx: wrap receives the current destination (the server's NIC)
// and returns the port the link should deliver to instead.
func (c *Cluster) TapServer(idx int, wrap func(fabric.Port) fabric.Port) error {
	if idx < 0 || idx >= len(c.downlinks) {
		return fmt.Errorf("cluster: no server %d", idx)
	}
	c.downlinks[idx].SetDst(wrap(c.Servers[idx].NIC))
	return nil
}

// ServerIP returns the provider address of server i.
func ServerIP(i int) packet.IP {
	return packet.MakeIP(192, 168, 1, byte(10+i))
}

// TORIP is the ToR loopback address.
var TORIP = packet.MustParseIP("192.168.100.1")

// New builds the testbed.
func New(cfg Config) *Cluster {
	if cfg.Servers <= 0 {
		cfg.Servers = 2
	}
	if cfg.TCAMCapacity <= 0 {
		cfg.TCAMCapacity = 2000
	}
	cm := cfg.CostModel
	if cm == nil {
		def := model.Default()
		cm = &def
	}
	eng := sim.NewEngine(cfg.Seed)
	c := &Cluster{
		Eng: eng, CM: cm,
		TOR:          tor.New(eng, TORIP, cfg.TCAMCapacity, cm.TORLatency),
		vlanByTenant: make(map[packet.TenantID]packet.VLANID),
		nextVLAN:     100,
	}
	c.TORs = []*tor.TOR{c.TOR}
	for i := 0; i < cfg.Servers; i++ {
		ip := ServerIP(i)
		// Server → ToR uplink.
		up := fabric.NewLink(eng, cm.LinkBps, cm.PropDelay, nil, c.TOR)
		srv := host.NewServer(eng, cm, cfg.VSwitchCfg, i, ip, up)
		// ToR → server downlink, optionally QoS-scheduled.
		var q fabric.Queue
		if cfg.QoSAccessLinks {
			q = qos.NewScheduler(qos.DefaultConfig())
		}
		down := fabric.NewLink(eng, cm.LinkBps, cm.PropDelay, q, srv.NIC)
		if cfg.SmartNIC != nil && cfg.SmartNIC.Capacity > 0 {
			srv.AttachSmartNIC(smartnic.New(eng, *cfg.SmartNIC))
		}
		if cfg.DataPlaneShards > 0 {
			srv.EnableDataPlane(vswitch.PlaneConfig{Shards: cfg.DataPlaneShards})
		}
		c.TOR.AddRoute(ip, fabric.LinkPort{L: down})
		c.Servers = append(c.Servers, srv)
		c.uplinks = append(c.uplinks, up)
		c.downlinks = append(c.downlinks, down)
	}
	return c
}

// VLANFor returns (allocating if needed) the tenant's access VLAN.
func (c *Cluster) VLANFor(tenant packet.TenantID) packet.VLANID {
	if v, ok := c.vlanByTenant[tenant]; ok {
		return v
	}
	v := c.nextVLAN
	c.nextVLAN++
	c.vlanByTenant[tenant] = v
	if err := c.configureTenantEverywhere(tenant, v); err != nil {
		panic(fmt.Sprintf("cluster: configure tenant: %v", err))
	}
	return v
}

// AddVM provisions a tenant VM on server idx: VIF+VF attachment, ToR VRF
// registration, GRE mapping (home ToR), and VXLAN mappings on every other
// server's vswitch so the software path can reach it.
func (c *Cluster) AddVM(idx int, tenant packet.TenantID, ip packet.IP, vcpus int, r *rules.VMRules) (*host.VM, error) {
	if idx < 0 || idx >= len(c.Servers) {
		return nil, fmt.Errorf("cluster: no server %d", idx)
	}
	srv := c.Servers[idx]
	vlan := c.VLANFor(tenant)
	vm, err := srv.AddVM(host.VMConfig{Tenant: tenant, IP: ip, VLAN: vlan, VCPUs: vcpus, Rules: r})
	if err != nil {
		return nil, err
	}
	if err := c.registerVMEverywhere(idx, tenant, ip); err != nil {
		return nil, err
	}
	// Software-path directory: every vswitch learns the VM's server.
	m := rules.TunnelMapping{Tenant: tenant, VMIP: ip, Remote: srv.IP}
	for _, s := range c.Servers {
		s.VSwitch.SetTunnel(m)
	}
	return vm, nil
}

// MoveVM migrates a VM from one server to another, updating tunnel
// mappings at source and destination (requirement S4). The FasTrak rule
// manager is responsible for pulling offloaded rules back *before* calling
// this (§4.1.2).
func (c *Cluster) MoveVM(fromIdx, toIdx int, tenant packet.TenantID, ip packet.IP) (*host.VM, error) {
	if fromIdx == toIdx {
		return nil, fmt.Errorf("cluster: migration to same server")
	}
	src := c.Servers[fromIdx]
	old, err := src.RemoveVM(vswitch.VMKey{Tenant: tenant, IP: ip})
	if err != nil {
		return nil, err
	}
	c.unregisterVMEverywhere(fromIdx, tenant, ip)
	vm, err := c.Servers[toIdx].AddVM(host.VMConfig{
		Tenant: tenant, IP: ip, VLAN: old.VLAN, VCPUs: old.CPU.Slots(), Rules: old.Rules,
	})
	if err != nil {
		return nil, err
	}
	if err := c.registerVMEverywhere(toIdx, tenant, ip); err != nil {
		return nil, err
	}
	m := rules.TunnelMapping{Tenant: tenant, VMIP: ip, Remote: c.Servers[toIdx].IP}
	for _, s := range c.Servers {
		s.VSwitch.SetTunnel(m)
	}
	return vm, nil
}

// RemoveVM deprovisions a tenant VM from server idx, undoing AddVM: the
// host detaches VIF/VF, ToR VRF registration and GRE mappings are
// withdrawn everywhere, and every vswitch forgets the tunnel directory
// entry. The FasTrak rule manager is responsible for pulling offloaded
// rules back first, exactly as for migration (§4.1.2).
func (c *Cluster) RemoveVM(idx int, tenant packet.TenantID, ip packet.IP) error {
	if idx < 0 || idx >= len(c.Servers) {
		return fmt.Errorf("cluster: no server %d", idx)
	}
	if _, err := c.Servers[idx].RemoveVM(vswitch.VMKey{Tenant: tenant, IP: ip}); err != nil {
		return err
	}
	c.unregisterVMEverywhere(idx, tenant, ip)
	for _, s := range c.Servers {
		s.VSwitch.RemoveTunnel(tenant, ip)
	}
	return nil
}

// FindVM locates a VM by tenant and IP.
func (c *Cluster) FindVM(tenant packet.TenantID, ip packet.IP) (*host.VM, bool) {
	key := vswitch.VMKey{Tenant: tenant, IP: ip}
	for _, s := range c.Servers {
		if vm, ok := s.VMs[key]; ok {
			return vm, true
		}
	}
	return nil, false
}
