package cluster

import (
	"testing"
	"time"

	"repro/internal/host"
	"repro/internal/model"
	"repro/internal/openflow"
	"repro/internal/packet"
	"repro/internal/rules"
)

// TestQoSExpressLanePriority drives a congested ToR→server downlink and
// checks that traffic steered into the strict-priority queue by its
// offloaded rule (§4.1.3: "Rules in the VRF can direct VM traffic to use
// these specific queues") sees lower latency than best-effort traffic
// sharing the link.
func TestQoSExpressLanePriority(t *testing.T) {
	c := New(Config{
		Servers:        3,
		VSwitchCfg:     model.VSwitchConfig{Tunneling: true},
		Seed:           21,
		QoSAccessLinks: true,
	})
	// Senders on separate servers so only the shared ToR→server-1
	// downlink (QoS-scheduled) is the bottleneck.
	hiCl, err := c.AddVM(0, 3, packet.MustParseIP("10.0.0.1"), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	beCl, err := c.AddVM(2, 3, packet.MustParseIP("10.0.0.3"), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	hiSv, err := c.AddVM(1, 3, packet.MustParseIP("10.0.0.2"), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	beSv, err := c.AddVM(1, 3, packet.MustParseIP("10.0.0.4"), 4, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Express-lane both flows; the high-priority one lands in strict
	// queue 7 via its TCAM entry.
	steer := func(cl, sv *host.VM, port uint16, queue int) {
		agg := rules.AggregatePattern(packet.AggregateKey{
			VMIP: sv.Key.IP, Port: port, Tenant: 3, Dir: packet.Ingress,
		})
		mod := &openflow.FlowMod{Command: openflow.FlowAdd, Pattern: agg, Out: openflow.PathVF, Priority: 10}
		cl.Placer.HandleMessage(mod, 1, nil)
		if err := c.TOR.InstallACL(&rules.TCAMEntry{
			Pattern: agg, Action: rules.Allow, Priority: 5, Queue: queue,
		}); err != nil {
			t.Fatal(err)
		}
	}
	steer(hiCl, hiSv, 5000, 7) // strict priority
	steer(beCl, beSv, 5001, 0) // best effort

	hiSv.BindApp(5000, host.AppFunc(func(*host.VM, *packet.Packet) {}))
	beSv.BindApp(5001, host.AppFunc(func(*host.VM, *packet.Packet) {}))

	// Saturate the downlink: best-effort bulk at far beyond 10 Gbps
	// offered, with paced high-priority probes riding along.
	for i := 0; i < 4000; i++ {
		i := i
		c.Eng.At(time.Duration(i)*time.Microsecond, func() {
			beCl.Send(beSv.Key.IP, 41000, 5001, 14480, host.SendOptions{}, nil)
		})
	}
	for i := 0; i < 100; i++ {
		i := i
		c.Eng.At(time.Duration(i*40)*time.Microsecond, func() {
			hiCl.Send(hiSv.Key.IP, 41001, 5000, 200, host.SendOptions{}, nil)
		})
	}
	c.Eng.Run()

	if hiSv.LatencyVF.Count() == 0 || beSv.LatencyVF.Count() == 0 {
		t.Fatalf("traffic missing: hi=%d be=%d", hiSv.LatencyVF.Count(), beSv.LatencyVF.Count())
	}
	hi, be := hiSv.LatencyVF.Mean(), beSv.LatencyVF.Mean()
	if hi >= be {
		t.Errorf("strict-priority latency %v not below best-effort %v under congestion", hi, be)
	}
	// Priority traffic should stay near the uncongested floor while
	// best effort queues.
	if hi > 200*time.Microsecond {
		t.Errorf("priority latency %v far above floor; QoS queue not honored", hi)
	}
}
