package cluster

import (
	"testing"
	"time"

	"repro/internal/host"
	"repro/internal/model"
	"repro/internal/openflow"
	"repro/internal/packet"
	"repro/internal/rules"
)

var (
	vmAIP = packet.MustParseIP("10.0.0.1")
	vmBIP = packet.MustParseIP("10.0.0.2")
)

// rig builds a 2-server cluster with tenant 3's two VMs, one per server.
func rig(t *testing.T, vcfg model.VSwitchConfig) (*Cluster, *host.VM, *host.VM) {
	t.Helper()
	c := New(Config{Servers: 2, VSwitchCfg: vcfg, Seed: 42})
	a, err := c.AddVM(0, 3, vmAIP, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.AddVM(1, 3, vmBIP, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c, a, b
}

func TestSoftwarePathEndToEnd(t *testing.T) {
	c, a, b := rig(t, model.VSwitchConfig{Tunneling: true})
	var got []*packet.Packet
	b.BindApp(11211, host.AppFunc(func(vm *host.VM, p *packet.Packet) {
		got = append(got, p)
	}))
	a.Send(vmBIP, 40000, 11211, 640, host.SendOptions{}, nil)
	c.Eng.Run()
	if len(got) != 1 {
		t.Fatalf("B received %d messages", len(got))
	}
	p := got[0]
	if p.Meta.Path != "vif" {
		t.Errorf("path = %q, want vif (default)", p.Meta.Path)
	}
	if p.PayloadLen() != 640 || p.Tenant != 3 {
		t.Errorf("payload=%d tenant=%d", p.PayloadLen(), p.Tenant)
	}
	if b.LatencyVIF.Count() != 1 {
		t.Error("VIF latency not recorded")
	}
}

// enableExpressLane installs the placer rule, ToR ACL and GRE mapping for
// A→B traffic — what the FasTrak rule manager does when it offloads.
func enableExpressLane(t *testing.T, c *Cluster, key packet.FlowKey) {
	t.Helper()
	agg := rules.AggregatePattern(key.IngressAggregate())
	vmA, _ := c.FindVM(key.Tenant, key.Src)
	vmA.Placer.HandleMessage(&openflow.FlowMod{
		Command: openflow.FlowAdd, Pattern: agg, Out: openflow.PathVF, Priority: 10,
	}, 1, nil)
	if err := c.TOR.InstallACL(&rules.TCAMEntry{
		Pattern: agg, Action: rules.Allow, Priority: 5,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestExpressLaneEndToEnd(t *testing.T) {
	c, a, b := rig(t, model.VSwitchConfig{Tunneling: true})
	key := packet.FlowKey{Src: vmAIP, Dst: vmBIP, SrcPort: 40000, DstPort: 11211,
		Proto: packet.ProtoTCP, Tenant: 3}
	enableExpressLane(t, c, key)

	var got []*packet.Packet
	b.BindApp(11211, host.AppFunc(func(vm *host.VM, p *packet.Packet) {
		got = append(got, p)
	}))
	a.Send(vmBIP, 40000, 11211, 640, host.SendOptions{}, nil)
	c.Eng.Run()
	if len(got) != 1 {
		t.Fatalf("B received %d messages", len(got))
	}
	if got[0].Meta.Path != "vf" {
		t.Errorf("path = %q, want vf", got[0].Meta.Path)
	}
	if b.LatencyVF.Count() != 1 {
		t.Error("VF latency not recorded")
	}
	// The hardware ACL entry observed the flow (TOR ME's signal).
	st := c.TOR.Stats()
	if len(st) != 1 || st[0].Packets == 0 {
		t.Errorf("TOR stats = %+v", st)
	}
}

func TestExpressLaneWithoutACLDropsAtTOR(t *testing.T) {
	// A placer rule without the matching ToR ACL (a malicious VM
	// modifying flow placer rules, §4.1.3) must be dropped in hardware.
	c, a, b := rig(t, model.VSwitchConfig{Tunneling: true})
	vmA, _ := c.FindVM(3, vmAIP)
	vmA.Placer.HandleMessage(&openflow.FlowMod{
		Command: openflow.FlowAdd, Pattern: rules.TenantPattern(3), Out: openflow.PathVF, Priority: 10,
	}, 1, nil)
	received := 0
	b.BindApp(11211, host.AppFunc(func(*host.VM, *packet.Packet) { received++ }))
	a.Send(vmBIP, 40000, 11211, 640, host.SendOptions{}, nil)
	c.Eng.Run()
	if received != 0 {
		t.Fatal("unauthorized express-lane traffic delivered")
	}
	aclDrops, _, _, _, _, _ := c.TOR.Counters()
	if aclDrops != 1 {
		t.Errorf("aclDrops = %d", aclDrops)
	}
}

func TestVFLatencyBelowVIFLatency(t *testing.T) {
	// The core premise (Fig. 3b): same message, same endpoints — the
	// express lane is faster.
	c, a, b := rig(t, model.VSwitchConfig{Tunneling: true})
	key := packet.FlowKey{Src: vmAIP, Dst: vmBIP, SrcPort: 40000, DstPort: 11211,
		Proto: packet.ProtoTCP, Tenant: 3}
	b.BindApp(11211, host.AppFunc(func(*host.VM, *packet.Packet) {}))

	// Paced sends: unloaded path latency, no queueing.
	const n = 200
	for i := 0; i < n; i++ {
		c.Eng.At(time.Duration(i)*500*time.Microsecond, func() {
			a.Send(vmBIP, 40000, 11211, 640, host.SendOptions{}, nil)
		})
	}
	c.Eng.Run()
	enableExpressLane(t, c, key)
	base := c.Eng.Now()
	for i := 0; i < n; i++ {
		c.Eng.At(base+time.Duration(i)*500*time.Microsecond, func() {
			a.Send(vmBIP, 40000, 11211, 640, host.SendOptions{}, nil)
		})
	}
	c.Eng.Run()

	vif, vf := b.LatencyVIF.Mean(), b.LatencyVF.Mean()
	if b.LatencyVIF.Count() != n || b.LatencyVF.Count() != n {
		t.Fatalf("counts vif=%d vf=%d", b.LatencyVIF.Count(), b.LatencyVF.Count())
	}
	if vf >= vif {
		t.Errorf("VF latency %v not below VIF latency %v", vf, vif)
	}
	// Roughly 2x improvement per the paper's evaluation.
	ratio := float64(vif) / float64(vf)
	if ratio < 1.4 || ratio > 5 {
		t.Errorf("VIF/VF latency ratio %.2f outside plausible band", ratio)
	}
	// Hardware path is also more predictable (§3.2.4): tighter tail.
	if b.LatencyVF.P99()-b.LatencyVF.Mean() >= b.LatencyVIF.P99()-b.LatencyVIF.Mean() {
		t.Errorf("VF tail spread not tighter: vf p99=%v mean=%v, vif p99=%v mean=%v",
			b.LatencyVF.P99(), vf, b.LatencyVIF.P99(), vif)
	}
}

func TestBaselineNoTunnelingPath(t *testing.T) {
	// Microbenchmark configs run without tunneling: flat routing on VM
	// addresses must still deliver across servers.
	c, a, b := rig(t, model.VSwitchConfig{})
	// Flat network: route VM IPs directly at the ToR.
	received := 0
	b.BindApp(80, host.AppFunc(func(*host.VM, *packet.Packet) { received++ }))
	// The ToR routes on outer dst; for the flat config the cluster has
	// no VM routes — add them as the microbenchmark harness does.
	c.TOR.AddRoute(vmBIP, torRouteToServer(c, 1))
	a.Send(vmBIP, 40000, 80, 1448, host.SendOptions{}, nil)
	c.Eng.Run()
	if received != 1 {
		t.Fatalf("received = %d", received)
	}
}

func TestMoveVMUpdatesMappings(t *testing.T) {
	c, a, b := rig(t, model.VSwitchConfig{Tunneling: true})
	_ = a
	received := 0
	// Move B from server 1 to server 0; traffic must follow.
	moved, err := c.MoveVM(1, 0, 3, vmBIP)
	if err != nil {
		t.Fatal(err)
	}
	_ = b // old handle is stale after migration
	moved.BindApp(11211, host.AppFunc(func(*host.VM, *packet.Packet) { received++ }))
	vmA, _ := c.FindVM(3, vmAIP)
	vmA.Send(vmBIP, 40000, 11211, 100, host.SendOptions{}, nil)
	c.Eng.Run()
	if received != 1 {
		t.Fatalf("post-migration delivery = %d", received)
	}
	if _, ok := c.Servers[1].VMs[moved.Key]; ok {
		t.Error("VM still present on source server")
	}
}

func TestMoveVMToSameServerRejected(t *testing.T) {
	c, _, _ := rig(t, model.VSwitchConfig{Tunneling: true})
	if _, err := c.MoveVM(0, 0, 3, vmAIP); err == nil {
		t.Error("same-server migration accepted")
	}
}

func TestOverlappingTenantAddresses(t *testing.T) {
	// Requirement C1: tenant 4 reuses 10.0.0.1/10.0.0.2; both tenants'
	// traffic must reach the right VMs.
	c, a3, b3 := rig(t, model.VSwitchConfig{Tunneling: true})
	a4, err := c.AddVM(0, 4, vmAIP, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	b4, err := c.AddVM(1, 4, vmBIP, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	got3, got4 := 0, 0
	b3.BindApp(80, host.AppFunc(func(*host.VM, *packet.Packet) { got3++ }))
	b4.BindApp(80, host.AppFunc(func(*host.VM, *packet.Packet) { got4++ }))
	a3.Send(vmBIP, 1000, 80, 100, host.SendOptions{}, nil)
	a4.Send(vmBIP, 1000, 80, 100, host.SendOptions{}, nil)
	a4.Send(vmBIP, 1001, 80, 100, host.SendOptions{}, nil)
	c.Eng.Run()
	if got3 != 1 || got4 != 2 {
		t.Errorf("tenant separation broken: t3=%d t4=%d", got3, got4)
	}
}

func TestSendCompletionCallback(t *testing.T) {
	c, a, _ := rig(t, model.VSwitchConfig{Tunneling: true})
	var doneAt time.Duration
	a.Send(vmBIP, 1, 2, 64, host.SendOptions{}, func() { doneAt = c.Eng.Now() })
	c.Eng.Run()
	if doneAt == 0 {
		t.Fatal("done callback not invoked")
	}
	if doneAt < c.CM.GuestOpCost(64) {
		t.Errorf("send completed at %v, before guest cost %v", doneAt, c.CM.GuestOpCost(64))
	}
}

// torRouteToServer builds a port that injects into server idx's NIC via a
// fresh downlink (test helper for the flat-routing configuration).
func torRouteToServer(c *Cluster, idx int) *flatPort {
	return &flatPort{c: c, idx: idx}
}

type flatPort struct {
	c   *Cluster
	idx int
}

func (f *flatPort) Input(p *packet.Packet) {
	f.c.Servers[f.idx].NIC.Input(p)
}
