package cluster

import (
	"repro/internal/fabric"
	"repro/internal/host"
	"repro/internal/model"
	"repro/internal/packet"
	"repro/internal/qos"
	"repro/internal/sim"
	"repro/internal/smartnic"
	"repro/internal/tor"
	"repro/internal/vswitch"
)

// This file extends the testbed to multiple racks — the deployment shape
// §4.3.3 is designed for: "a TOR controller for every TOR switch ... no
// single controller is responsible for offloading decisions for all the
// flows in the data center". Racks connect leaf-to-leaf ("the network
// fabric core remains unchanged", §1): GRE outers between ToR loopbacks
// and VXLAN outers between servers route across inter-ToR links.

// MultiConfig describes a multi-rack testbed.
type MultiConfig struct {
	// Racks is the number of ToRs, with ServersPerRack under each.
	Racks          int
	ServersPerRack int
	CostModel      *model.CostModel
	VSwitchCfg     model.VSwitchConfig
	// TCAMCapacity is each ToR's hardware rule budget.
	TCAMCapacity   int
	Seed           int64
	QoSAccessLinks bool
	// SmartNIC, when non-nil with Capacity > 0, equips every server with
	// a SmartNIC offload tier (see Config.SmartNIC).
	SmartNIC *smartnic.Config
	// DataPlaneShards enables the sharded batch data plane on every
	// server's vswitch when > 0 (see Config.DataPlaneShards).
	DataPlaneShards int
}

// NewMulti builds a testbed of cfg.Racks racks. The returned Cluster's
// TOR field is rack 0's switch; TORs lists all of them, and servers are
// indexed rack-major (rack 0's servers first).
func NewMulti(cfg MultiConfig) *Cluster {
	if cfg.Racks <= 0 {
		cfg.Racks = 2
	}
	if cfg.ServersPerRack <= 0 {
		cfg.ServersPerRack = 2
	}
	if cfg.TCAMCapacity <= 0 {
		cfg.TCAMCapacity = 2000
	}
	cm := cfg.CostModel
	if cm == nil {
		def := model.Default()
		cm = &def
	}
	c := &Cluster{
		Eng: sim.NewEngine(cfg.Seed),
		CM:  cm,

		vlanByTenant: make(map[packet.TenantID]packet.VLANID),
		nextVLAN:     100,
	}

	// One ToR per rack, loopbacks 192.168.100.(1+rack).
	for rk := 0; rk < cfg.Racks; rk++ {
		loop := packet.MakeIP(192, 168, 100, byte(1+rk))
		c.TORs = append(c.TORs, tor.New(c.Eng, loop, cfg.TCAMCapacity, cm.TORLatency))
	}
	c.TOR = c.TORs[0]

	// Servers and access links.
	for rk := 0; rk < cfg.Racks; rk++ {
		for i := 0; i < cfg.ServersPerRack; i++ {
			ip := RackServerIP(rk, i)
			up := fabric.NewLink(c.Eng, cm.LinkBps, cm.PropDelay, nil, c.TORs[rk])
			srv := host.NewServer(c.Eng, cm, cfg.VSwitchCfg, len(c.Servers), ip, up)
			var q fabric.Queue
			if cfg.QoSAccessLinks {
				q = qos.NewScheduler(qos.DefaultConfig())
			}
			down := fabric.NewLink(c.Eng, cm.LinkBps, cm.PropDelay, q, srv.NIC)
			if cfg.SmartNIC != nil && cfg.SmartNIC.Capacity > 0 {
				srv.AttachSmartNIC(smartnic.New(c.Eng, *cfg.SmartNIC))
			}
			if cfg.DataPlaneShards > 0 {
				srv.EnableDataPlane(vswitch.PlaneConfig{Shards: cfg.DataPlaneShards})
			}
			c.TORs[rk].AddRoute(ip, fabric.LinkPort{L: down})
			c.Servers = append(c.Servers, srv)
			c.rackOf = append(c.rackOf, rk)
			c.uplinks = append(c.uplinks, up)
			c.downlinks = append(c.downlinks, down)
		}
	}

	// Leaf mesh: a bidirectional link pair between every ToR pair; each
	// ToR routes the peer's loopback and the peer rack's server
	// addresses over it.
	for a := 0; a < cfg.Racks; a++ {
		for b := a + 1; b < cfg.Racks; b++ {
			ab := fabric.NewLink(c.Eng, cm.LinkBps, cm.PropDelay, nil, c.TORs[b])
			ba := fabric.NewLink(c.Eng, cm.LinkBps, cm.PropDelay, nil, c.TORs[a])
			c.TORs[a].AddRoute(c.TORs[b].Loopback, fabric.LinkPort{L: ab})
			c.TORs[b].AddRoute(c.TORs[a].Loopback, fabric.LinkPort{L: ba})
			for i := 0; i < cfg.ServersPerRack; i++ {
				c.TORs[a].AddRoute(RackServerIP(b, i), fabric.LinkPort{L: ab})
				c.TORs[b].AddRoute(RackServerIP(a, i), fabric.LinkPort{L: ba})
			}
		}
	}
	return c
}

// RackServerIP is the provider address of server i in rack rk.
func RackServerIP(rk, i int) packet.IP {
	return packet.MakeIP(192, 168, byte(1+rk), byte(10+i))
}

// RackOf returns the rack index hosting server idx (0 for single-rack
// clusters).
func (c *Cluster) RackOf(idx int) int {
	if idx < 0 || idx >= len(c.Servers) {
		return -1
	}
	if len(c.rackOf) == 0 {
		return 0
	}
	return c.rackOf[idx]
}

// HomeTOR returns the ToR of the rack hosting server idx.
func (c *Cluster) HomeTOR(idx int) *tor.TOR {
	rk := c.RackOf(idx)
	if rk < 0 {
		return nil
	}
	return c.TORs[rk]
}

// configureTenantEverywhere binds the tenant's VLAN on every ToR.
func (c *Cluster) configureTenantEverywhere(tenant packet.TenantID, vlan packet.VLANID) error {
	for _, t := range c.TORs {
		if err := t.ConfigureTenant(tenant, vlan); err != nil {
			return err
		}
	}
	return nil
}

// registerVMEverywhere installs the VM's VRF state: local registration at
// its home ToR and GRE tunnel mappings (tenant, VM IP) → home ToR on every
// ToR, so any rack can originate express-lane traffic toward it (the
// offloaded tunnel mappings of §4.1.3).
func (c *Cluster) registerVMEverywhere(idx int, tenant packet.TenantID, ip packet.IP) error {
	home := c.HomeTOR(idx)
	if err := home.RegisterLocalVM(tenant, ip, c.Servers[idx].IP); err != nil {
		return err
	}
	for _, t := range c.TORs {
		if err := t.SetVRFTunnel(tenant, ip, home.Loopback); err != nil {
			return err
		}
	}
	return nil
}

// unregisterVMEverywhere removes the VM's ToR state (migration away).
func (c *Cluster) unregisterVMEverywhere(fromIdx int, tenant packet.TenantID, ip packet.IP) {
	c.HomeTOR(fromIdx).UnregisterLocalVM(tenant, ip)
	for _, t := range c.TORs {
		t.RemoveVRFTunnel(tenant, ip)
	}
}
