// Telemetry attachment for the assembled testbed: one flight-recorder
// scope and one metric-label set per component instance, so a merged
// trace reads "vswitch/0 upcall → torctl/0 offload-decision → tor/0
// tcam-install" and the registry can be sliced per server or rack.
package cluster

import (
	"fmt"

	"repro/internal/telemetry"
)

// AttachTelemetry attaches flight-recorder scopes and registers metrics
// for every data-plane component of the testbed: each rack's ToR, and
// each server's vswitch, NIC and access-link pair. Either argument may be
// nil (events-only or metrics-only attachment). The rule manager's
// controllers attach separately via core.Manager.AttachTelemetry.
func (c *Cluster) AttachTelemetry(rec *telemetry.Recorder, reg *telemetry.Registry) {
	for r, t := range c.TORs {
		t.SetRecorder(rec.Scope(fmt.Sprintf("tor/%d", r)))
		t.RegisterMetrics(reg, fmt.Sprintf("rack=%d", r))
	}
	for i, srv := range c.Servers {
		lbl := fmt.Sprintf("server=%d", i)
		srv.VSwitch.SetRecorder(rec.Scope(fmt.Sprintf("vswitch/%d", i)))
		srv.VSwitch.RegisterMetrics(reg, lbl)
		srv.NIC.SetRecorder(rec.Scope(fmt.Sprintf("nic/%d", i)))
		srv.NIC.RegisterMetrics(reg, lbl)
		c.uplinks[i].SetRecorder(rec.Scope(fmt.Sprintf("uplink/%d", i)))
		c.uplinks[i].RegisterMetrics(reg, "dir=up", lbl)
		c.downlinks[i].SetRecorder(rec.Scope(fmt.Sprintf("downlink/%d", i)))
		c.downlinks[i].RegisterMetrics(reg, "dir=down", lbl)
	}
}
