package vswitch

import (
	"testing"

	"repro/internal/model"
	"repro/internal/packet"
	"repro/internal/rules"
	"repro/internal/sim"
)

// benchSwitch builds a switch whose vport carries n security rules from a
// few templates, none of which examine ports — so one megaflow covers the
// whole port space and a warm cache serves any new flow key in one probe.
func benchSwitch(n int) (*Switch, *rules.VMRules) {
	eng := sim.NewEngine(1)
	sw, _ := newSwitch(eng, model.VSwitchConfig{}, &capture{})
	r := &rules.VMRules{Tenant: 3, VMIP: vmA.IP}
	for i := 0; i < n; i++ {
		var p rules.Pattern
		p.Tenant = 3
		switch i % 3 {
		case 0:
			p.Dst = packet.IP(0x0a000000 | uint32(i)<<8)
			p.DstPrefix = 24
		case 1:
			p.Src = packet.IP(0x0a000000 | uint32(i))
			p.SrcPrefix = 32
		case 2:
			p.Proto = packet.ProtoUDP
		}
		r.Security = append(r.Security, rules.SecurityRule{Pattern: p, Action: rules.Action(i % 2), Priority: i % 8})
	}
	// Terminal allow so the benchmarked keys get a verdict.
	r.Security = append(r.Security, rules.SecurityRule{
		Pattern: rules.Pattern{Tenant: 3, Proto: packet.ProtoTCP}, Action: rules.Allow, Priority: 9,
	})
	attach(sw, vmA, r)
	return sw, r
}

// BenchmarkSlowPathClassify1k is the acceptance benchmark pair: the cost
// of classifying a previously unseen flow at a 1000-rule table, seed
// linear scan versus a warm megaflow cache (the new flow differs from
// cached traffic only in fields the rules never consult).
func BenchmarkSlowPathClassify1k(b *testing.B) {
	sw, r := benchSwitch(1000)
	dst := packet.MustParseIP("10.0.9.9")
	key := func(i int) packet.FlowKey {
		return packet.FlowKey{
			Tenant: 3, Src: vmA.IP, Dst: dst,
			SrcPort: uint16(40000 + i%1000),
			DstPort: uint16(1024 + i%40000),
			Proto:   packet.ProtoTCP,
		}
	}

	b.Run("linear", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.EvaluateLinear(key(i))
			r.QueueForLinear(key(i))
		}
	})
	b.Run("megaflow", func(b *testing.B) {
		// Warm: one upcall-equivalent classification installs the
		// wildcard entry covering the whole port space.
		v, mask := sw.evaluate(key(0))
		sw.mega.install(key(0), mask, v, 0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := sw.mega.lookup(key(i), 0); !ok {
				b.Fatal("megaflow miss on warmed region")
			}
		}
	})
}

// BenchmarkUpcallEvaluate1k measures the full slow-path verdict
// computation (both endpoints, security + QoS, mask union) that runs per
// megaflow miss — now tuple-space backed.
func BenchmarkUpcallEvaluate1k(b *testing.B) {
	sw, _ := benchSwitch(1000)
	dst := packet.MustParseIP("10.0.9.9")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := packet.FlowKey{
			Tenant: 3, Src: vmA.IP, Dst: dst,
			SrcPort: 40000, DstPort: uint16(1024 + i%40000), Proto: packet.ProtoTCP,
		}
		sw.evaluate(k)
	}
}
