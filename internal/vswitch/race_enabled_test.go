//go:build race

package vswitch

// raceEnabled reports whether this binary was built with -race. The
// alloc gates skip under the detector: sync.Pool intentionally drops
// items at random when race-instrumented, so pooled paths allocate.
const raceEnabled = true
