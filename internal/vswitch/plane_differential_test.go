package vswitch

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/packet"
	"repro/internal/rules"
)

// verdictRec is one classification outcome; the differential test
// compares multisets of these between shard configurations, so results
// must match byte-for-byte modulo delivery order.
type verdictRec struct {
	key   packet.FlowKey
	allow bool
	queue int
}

// diffWorkload is a deterministic 10k-packet workload in phases, with a
// control-plane churn step applied at every phase boundary. Both the
// 1-shard and 4-shard runs replay it exactly.
type diffWorkload struct {
	vmKeys []VMKey
	vmRule []*rules.VMRules
	phases [][]*packet.Packet
	srcs   [][]VMKey
	churn  []func(pl *ShardedPlane)
}

func buildDiffWorkload(seed int64) *diffWorkload {
	const (
		numVMs      = 8
		numPhases   = 10
		pktsPerStep = 1000
	)
	rng := rand.New(rand.NewSource(seed))
	w := &diffWorkload{}
	for i := 0; i < numVMs; i++ {
		key := VMKey{Tenant: 3, IP: packet.MakeIP(10, 0, 0, byte(1+i))}
		w.vmKeys = append(w.vmKeys, key)
		w.vmRule = append(w.vmRule, planeRuleSet(rng, 3, key.IP))
	}
	remote := func(i int) packet.IP { return packet.MakeIP(10, 0, 9, byte(i)) }
	for ph := 0; ph < numPhases; ph++ {
		var pkts []*packet.Packet
		var srcs []VMKey
		for i := 0; i < pktsPerStep; i++ {
			src := w.vmKeys[rng.Intn(len(w.vmKeys))]
			var dst packet.IP
			switch rng.Intn(3) {
			case 0:
				dst = w.vmKeys[rng.Intn(len(w.vmKeys))].IP // local
			case 1:
				dst = remote(rng.Intn(4)) // tunneled (mapping may churn away)
			default:
				dst = remote(4 + rng.Intn(4)) // never mapped: unrouted
			}
			pkts = append(pkts, packet.NewTCP(3, src.IP, dst,
				uint16(40000+rng.Intn(128)), uint16(8000+rng.Intn(10)), 200))
			srcs = append(srcs, src)
		}
		w.phases = append(w.phases, pkts)
		w.srcs = append(w.srcs, srcs)

		// Churn step for the boundary after this phase: rule replacement,
		// tunnel add/remove, or a wholesale invalidation — all epoch-
		// published, all identical across runs.
		vi := rng.Intn(numVMs)
		newRules := planeRuleSet(rng, 3, w.vmKeys[vi].IP)
		ti := rng.Intn(4)
		tunnelUp := rng.Intn(2) == 0
		w.churn = append(w.churn, func(pl *ShardedPlane) {
			pl.AttachVM(w.vmKeys[vi], newRules)
			if tunnelUp {
				pl.SetTunnel(rules.TunnelMapping{Tenant: 3, VMIP: remote(ti), Remote: srvB})
			} else {
				pl.RemoveTunnel(3, remote(ti))
			}
			pl.Invalidate(rules.Pattern{Tenant: 3})
		})
	}
	return w
}

// runDiff replays the workload on a fresh plane with the given shard
// count, returning the verdict multiset and final counters. Churn is
// applied at barrier-synchronized phase boundaries, so each phase
// classifies against one well-defined epoch in both configurations.
func runDiff(w *diffWorkload, shards int) (map[verdictRec]int, PlaneCounters) {
	var mu sync.Mutex
	verdicts := map[verdictRec]int{}
	pl := NewShardedPlane(PlaneConfig{
		Shards: shards, Tunneling: true, ServerIP: srvA,
		OnVerdict: func(_ int, k packet.FlowKey, allow bool, queue int) {
			mu.Lock()
			verdicts[verdictRec{k, allow, queue}]++
			mu.Unlock()
		},
	})
	defer pl.Close()
	for i, key := range w.vmKeys {
		pl.AttachVM(key, w.vmRule[i])
	}
	for i := 0; i < 2; i++ {
		pl.SetTunnel(rules.TunnelMapping{Tenant: 3, VMIP: packet.MakeIP(10, 0, 9, byte(i)), Remote: srvB})
	}
	inj := pl.NewInjector()
	for ph := range w.phases {
		for i, p := range w.phases[ph] {
			inj.Egress(w.srcs[ph][i], p)
		}
		inj.Flush()
		pl.Barrier()
		w.churn[ph](pl)
	}
	pl.Barrier()
	return verdicts, pl.Counters()
}

// TestPlaneDifferential1v4Shards is the ISSUE's differential gate: 10k
// randomized packets through 1-shard and 4-shard pipelines under rule
// churn must produce identical per-flow verdict multisets and conserved,
// identical per-cause outcome counters (order of delivery aside).
//
// The 1-shard run is the inline deterministic mode; the 4-shard run uses
// real worker goroutines, so this also runs meaningfully under -race.
func TestPlaneDifferential1v4Shards(t *testing.T) {
	w := buildDiffWorkload(42)
	v1, c1 := runDiff(w, 1)
	w4 := buildDiffWorkload(42) // fresh packets: buffers are not shared between runs
	v4, c4 := runDiff(w4, 4)

	if len(v1) != len(v4) {
		t.Fatalf("distinct (flow, verdict) records: 1-shard %d vs 4-shard %d", len(v1), len(v4))
	}
	for r, n := range v1 {
		if v4[r] != n {
			t.Fatalf("verdict %+v seen %d times on 1 shard, %d on 4", r, n, v4[r])
		}
	}

	// Outcome counters must agree per cause; vector/flush bookkeeping may
	// differ (4 shards flush caches independently).
	type outcomes struct {
		packets, tx, localTx, nicTx, denied, unrouted uint64
		drops                                         uint64
	}
	o := func(c PlaneCounters) outcomes {
		return outcomes{c.Packets, c.Tx, c.LocalTx, c.NICTx, c.Denied, c.Unrouted, c.Drops.Total()}
	}
	if o(c1) != o(c4) {
		t.Fatalf("outcome counters diverged:\n1-shard %+v\n4-shard %+v", o(c1), o(c4))
	}
	if acc := c4.Tx + c4.Denied + c4.Unrouted + c4.Drops.Total(); acc != c4.Packets {
		t.Fatalf("4-shard conservation violated: %+v", c4)
	}
	if c1.Packets != 10000 {
		t.Fatalf("workload processed %d packets, want 10000", c1.Packets)
	}
}
