package vswitch

import (
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/packet"
	"repro/internal/rules"
	"repro/internal/sim"
)

// planeRuleSet builds a deterministic randomized rule set for a VM:
// port-specific allows/denies plus a low-priority tenant-wide allow, so
// verdicts exercise priorities, masks and the deny-wins merge.
func planeRuleSet(rng *rand.Rand, tenant packet.TenantID, ip packet.IP) *rules.VMRules {
	r := &rules.VMRules{Tenant: tenant, VMIP: ip}
	n := 2 + rng.Intn(6)
	for i := 0; i < n; i++ {
		pat := rules.Pattern{Tenant: tenant}
		if rng.Intn(2) == 0 {
			pat.DstPort = uint16(8000 + rng.Intn(8))
		}
		if rng.Intn(3) == 0 {
			pat.Proto = packet.ProtoTCP
		}
		r.Security = append(r.Security, rules.SecurityRule{
			Pattern:  pat,
			Action:   rules.Action(rng.Intn(2)),
			Priority: 1 + rng.Intn(8),
		})
		if rng.Intn(2) == 0 {
			r.QoS = append(r.QoS, rules.QoSRule{Pattern: pat, Queue: rng.Intn(4), Priority: rng.Intn(4)})
		}
	}
	r.Security = append(r.Security, rules.SecurityRule{
		Pattern: rules.Pattern{Tenant: tenant}, Action: rules.Allow, Priority: 0,
	})
	return r
}

// TestPlaneVerdictParity checks the sharded plane's whole classification
// stack (compiled epochs + per-shard exact and megaflow caches) against
// the deterministic switch's evaluate over randomized rules and keys.
func TestPlaneVerdictParity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	eng := sim.NewEngine(1)
	sw, _ := newSwitch(eng, model.VSwitchConfig{}, &capture{})
	var keys []VMKey
	for i := 0; i < 6; i++ {
		key := VMKey{Tenant: 3, IP: packet.MakeIP(10, 0, 0, byte(1+i))}
		attach(sw, key, planeRuleSet(rng, 3, key.IP))
		keys = append(keys, key)
	}

	type rec struct {
		allow bool
		queue int
	}
	got := map[packet.FlowKey]rec{}
	pl := sw.EnableShardedPlane(PlaneConfig{
		Shards: 1,
		OnVerdict: func(_ int, k packet.FlowKey, allow bool, queue int) {
			got[k] = rec{allow, queue}
		},
	})
	inj := pl.NewInjector()

	want := map[packet.FlowKey]rec{}
	for i := 0; i < 2000; i++ {
		src := keys[rng.Intn(len(keys))]
		var dst packet.IP
		if rng.Intn(2) == 0 {
			dst = keys[rng.Intn(len(keys))].IP // local, rule-bearing peer
		} else {
			dst = packet.MakeIP(10, 0, 9, byte(rng.Intn(8))) // remote
		}
		p := packet.NewTCP(3, src.IP, dst, uint16(40000+rng.Intn(64)), uint16(8000+rng.Intn(10)), 128)
		k := p.Key()
		if _, seen := want[k]; !seen {
			v, _ := sw.evaluate(k)
			want[k] = rec{v.allow, v.queue}
		}
		inj.Egress(src, p)
	}
	inj.Flush()

	if len(got) != len(want) {
		t.Fatalf("plane classified %d distinct flows, reference saw %d", len(got), len(want))
	}
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Fatalf("flow %v never classified by plane", k)
		}
		if g != w {
			t.Fatalf("flow %v: plane verdict %+v, reference %+v", k, g, w)
		}
	}
	c := pl.Counters()
	if c.Packets != 2000 {
		t.Fatalf("plane processed %d packets, want 2000", c.Packets)
	}
	if acc := c.Tx + c.Denied + c.Unrouted + c.Drops.Total(); acc != c.Packets {
		t.Fatalf("conservation violated: packets=%d accounted=%d (%+v)", c.Packets, acc, c)
	}
}

// TestPlaneEpochFlush checks that control-plane mutations routed through
// the switch republish epochs and the shard flushes its caches: a flow's
// verdict flips after its VM's rules change, and the flush is counted.
func TestPlaneEpochFlush(t *testing.T) {
	eng := sim.NewEngine(1)
	sw, _ := newSwitch(eng, model.VSwitchConfig{}, &capture{})
	allow := &rules.VMRules{Tenant: 3, VMIP: vmA.IP, Security: []rules.SecurityRule{
		{Pattern: rules.Pattern{Tenant: 3}, Action: rules.Allow, Priority: 1},
	}}
	attach(sw, vmA, allow)

	var verdicts []bool
	pl := sw.EnableShardedPlane(PlaneConfig{
		Shards:    1,
		OnVerdict: func(_ int, _ packet.FlowKey, a bool, _ int) { verdicts = append(verdicts, a) },
	})
	inj := pl.NewInjector()
	send := func() {
		inj.Egress(vmA, sendPkt(3, vmA.IP, packet.MustParseIP("10.0.9.9"), 80, 100))
		inj.Flush()
	}

	send() // epoch 1: allowed
	seq := pl.EpochSeq()

	deny := &rules.VMRules{Tenant: 3, VMIP: vmA.IP, Security: []rules.SecurityRule{
		{Pattern: rules.Pattern{Tenant: 3}, Action: rules.Deny, Priority: 1},
	}}
	attach(sw, vmA, deny) // Switch.AttachVM republishes the plane epoch
	if pl.EpochSeq() == seq {
		t.Fatal("AttachVM did not publish a new epoch")
	}
	send() // epoch 2: denied — stale cached verdict must not survive

	if len(verdicts) != 2 || !verdicts[0] || verdicts[1] {
		t.Fatalf("verdicts across epoch change = %v, want [true false]", verdicts)
	}
	c := pl.Counters()
	if c.EpochFlushes == 0 {
		t.Fatal("shard never flushed on epoch change")
	}
	if c.Denied != 1 || c.Tx != 1 {
		t.Fatalf("counters %+v, want exactly one tx then one denied", c)
	}
}

// TestPlaneTunnelAndLocalOutcomes checks the egress arm: local vport
// delivery, VXLAN-tunneled transmit, and no-tunnel unrouted accounting.
func TestPlaneTunnelAndLocalOutcomes(t *testing.T) {
	eng := sim.NewEngine(1)
	sw, _ := newSwitch(eng, model.VSwitchConfig{Tunneling: true}, &capture{})
	attach(sw, vmA, nil)
	attach(sw, vmB, nil)
	sw.SetTunnel(rules.TunnelMapping{Tenant: 3, VMIP: packet.MustParseIP("10.0.9.9"), Remote: srvB})

	pl := sw.EnableShardedPlane(PlaneConfig{Shards: 1})
	inj := pl.NewInjector()
	inj.Egress(vmA, sendPkt(3, vmA.IP, vmB.IP, 80, 100))                                                                            // local
	inj.Egress(vmA, sendPkt(3, vmA.IP, packet.MustParseIP("10.0.9.9"), 80, 100))                                                    // tunneled
	inj.Egress(vmA, sendPkt(3, vmA.IP, packet.MustParseIP("10.0.77.7"), 80, 100))                                                   // no tunnel
	inj.Egress(VMKey{Tenant: 3, IP: packet.MustParseIP("10.0.0.99")}, sendPkt(3, packet.MustParseIP("10.0.0.99"), vmB.IP, 80, 100)) // no vport
	inj.Flush()

	c := pl.Counters()
	if c.LocalTx != 1 || c.Tx != 2 || c.Unrouted != 2 {
		t.Fatalf("counters %+v, want localtx=1 tx=2 unrouted=2", c)
	}
	if acc := c.Tx + c.Denied + c.Unrouted + c.Drops.Total(); acc != c.Packets {
		t.Fatalf("conservation violated: %+v", c)
	}
}

// TestPlaneNICFirstEgress checks that flows covered by a published
// SmartNIC placement leave through the NIC-first arm, and that removing
// the placement returns them to the software path.
func TestPlaneNICFirstEgress(t *testing.T) {
	eng := sim.NewEngine(1)
	sw, _ := newSwitch(eng, model.VSwitchConfig{Tunneling: true}, &capture{})
	attach(sw, vmA, nil)
	dst := packet.MustParseIP("10.0.9.9")
	sw.SetTunnel(rules.TunnelMapping{Tenant: 3, VMIP: dst, Remote: srvB})

	pl := sw.EnableShardedPlane(PlaneConfig{Shards: 1})
	pl.SetNICPlacements([]rules.Pattern{{Tenant: 3, Src: vmA.IP, SrcPrefix: 32, Dst: dst, DstPrefix: 32}})
	inj := pl.NewInjector()
	send := func() {
		inj.Egress(vmA, sendPkt(3, vmA.IP, dst, 80, 100))
		inj.Flush()
	}
	send()
	if c := pl.Counters(); c.NICTx != 1 || c.Tx != 1 {
		t.Fatalf("counters %+v, want the packet claimed by NIC-first egress", c)
	}
	pl.SetNICPlacements(nil)
	send()
	if c := pl.Counters(); c.NICTx != 1 || c.Tx != 2 {
		t.Fatalf("counters %+v, want the second packet on the software path", c)
	}
}

// TestPlaneShapingDrops checks per-shard htb enforcement on the virtual
// clock: a tight VIF limit drops the overflow as Shape, and conservation
// still closes.
func TestPlaneShapingDrops(t *testing.T) {
	eng := sim.NewEngine(1)
	sw, _ := newSwitch(eng, model.VSwitchConfig{}, &capture{})
	attach(sw, vmA, nil)
	pl := sw.EnableShardedPlane(PlaneConfig{Shards: 1})     // Now defaults to eng.Now
	if err := sw.SetVIFLimits(vmA, 80_000, 0); err != nil { // 10 KB/s
		t.Fatal(err)
	}
	inj := pl.NewInjector()
	for i := 0; i < 100; i++ {
		inj.Egress(vmA, sendPkt(3, vmA.IP, packet.MustParseIP("10.0.9.9"), 80, 1400))
	}
	inj.Flush()
	c := pl.Counters()
	if c.Drops.Shape == 0 {
		t.Fatalf("no shape drops under a 10KB/s limit: %+v", c)
	}
	if c.Tx == 0 {
		t.Fatalf("limit dropped everything (burst should pass): %+v", c)
	}
	if acc := c.Tx + c.Denied + c.Unrouted + c.Drops.Total(); acc != c.Packets {
		t.Fatalf("conservation violated: %+v", c)
	}
}

// TestPlaneInlineDeterminism runs the identical submission sequence
// through two fresh inline planes and requires bit-identical counters and
// flow snapshots — the determinism contract the single-shard default mode
// must keep for the sim/experiment/chaos harness.
func TestPlaneInlineDeterminism(t *testing.T) {
	run := func() (PlaneCounters, map[packet.FlowKey]PlaneFlowStat) {
		rng := rand.New(rand.NewSource(99))
		eng := sim.NewEngine(1)
		sw, _ := newSwitch(eng, model.VSwitchConfig{Tunneling: true}, &capture{})
		var keys []VMKey
		for i := 0; i < 4; i++ {
			key := VMKey{Tenant: 3, IP: packet.MakeIP(10, 0, 0, byte(1+i))}
			attach(sw, key, planeRuleSet(rng, 3, key.IP))
			keys = append(keys, key)
		}
		sw.SetTunnel(rules.TunnelMapping{Tenant: 3, VMIP: packet.MustParseIP("10.0.9.9"), Remote: srvB})
		pl := sw.EnableShardedPlane(PlaneConfig{Shards: 1})
		inj := pl.NewInjector()
		for i := 0; i < 3000; i++ {
			src := keys[rng.Intn(len(keys))]
			dst := packet.MustParseIP("10.0.9.9")
			if rng.Intn(3) == 0 {
				dst = keys[rng.Intn(len(keys))].IP
			}
			inj.Egress(src, packet.NewTCP(3, src.IP, dst, uint16(40000+rng.Intn(32)), uint16(8000+rng.Intn(8)), 200))
			if rng.Intn(500) == 0 {
				sw.Invalidate(rules.Pattern{Tenant: 3})
			}
		}
		inj.Flush()
		flows := map[packet.FlowKey]PlaneFlowStat{}
		for _, f := range pl.FlowSnapshot() {
			flows[f.Key] = f
		}
		return pl.Counters(), flows
	}

	c1, f1 := run()
	c2, f2 := run()
	if c1 != c2 {
		t.Fatalf("counters diverged across identical runs:\n%+v\n%+v", c1, c2)
	}
	if len(f1) != len(f2) {
		t.Fatalf("flow snapshots diverged: %d vs %d flows", len(f1), len(f2))
	}
	for k, a := range f1 {
		if b, ok := f2[k]; !ok || a != b {
			t.Fatalf("flow %v diverged: %+v vs %+v", k, a, b)
		}
	}
}

// TestPlaneWorkerModeBasics exercises the 4-shard worker configuration
// end to end on a small workload: everything submitted is accounted,
// barriers drain, and a flow's packets all land on one shard.
func TestPlaneWorkerModeBasics(t *testing.T) {
	pl := NewShardedPlane(PlaneConfig{Shards: 4, Tunneling: true, ServerIP: srvA})
	defer pl.Close()
	tenant := packet.TenantID(3)
	src := packet.MustParseIP("10.0.0.1")
	key := VMKey{Tenant: tenant, IP: src}
	pl.AttachVM(key, nil)
	dst := packet.MustParseIP("10.0.9.9")
	pl.SetTunnel(rules.TunnelMapping{Tenant: tenant, VMIP: dst, Remote: srvB})

	inj := pl.NewInjector()
	const total = 500
	for i := 0; i < total; i++ {
		// 16 distinct flows; each must land wholly on one shard.
		inj.Egress(key, packet.NewTCP(tenant, src, dst, uint16(40000+i%16), 80, 100))
	}
	inj.Flush()
	pl.Barrier()

	c := pl.Counters()
	if c.Packets != total || c.Tx != total {
		t.Fatalf("counters %+v, want %d packets all transmitted", c, total)
	}
	perFlowShard := map[packet.FlowKey]int{}
	for sh, s := range pl.shards {
		for k := range s.exact {
			if prev, dup := perFlowShard[k]; dup && prev != sh {
				t.Fatalf("flow %v present on shards %d and %d", k, prev, sh)
			}
			perFlowShard[k] = sh
		}
	}
	if len(perFlowShard) != 16 {
		t.Fatalf("expected 16 distinct flows across shards, got %d", len(perFlowShard))
	}
	if pl.ActiveFlows() != 16 {
		t.Fatalf("ActiveFlows = %d, want 16", pl.ActiveFlows())
	}
}

// TestPlaneVectorBatching checks the vector plumbing itself: target-size
// flushes, partial flushes, and pooled vector reuse via the plane's
// vector counter.
func TestPlaneVectorBatching(t *testing.T) {
	pl := NewShardedPlane(PlaneConfig{Shards: 1, VectorSize: 8})
	key := VMKey{Tenant: 3, IP: packet.MustParseIP("10.0.0.1")}
	pl.AttachVM(key, nil)
	inj := pl.NewInjector()
	for i := 0; i < 20; i++ { // 8 + 8 + partial 4
		inj.Egress(key, sendPkt(3, key.IP, packet.MustParseIP("10.0.9.9"), 80, 100))
	}
	if got := pl.Counters().Vectors; got != 2 {
		t.Fatalf("full-vector flushes = %d, want 2 before explicit Flush", got)
	}
	inj.Flush()
	c := pl.Counters()
	if c.Vectors != 3 || c.Packets != 20 {
		t.Fatalf("counters %+v, want 3 vectors / 20 packets", c)
	}
}
