//go:build !race

package vswitch

// raceEnabled reports whether this binary was built with -race.
const raceEnabled = false
