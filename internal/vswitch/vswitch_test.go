package vswitch

import (
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/model"
	"repro/internal/packet"
	"repro/internal/rules"
	"repro/internal/sim"
)

var (
	srvA = packet.MustParseIP("192.168.1.10")
	srvB = packet.MustParseIP("192.168.1.11")
	vmA  = VMKey{Tenant: 3, IP: packet.MustParseIP("10.0.0.1")}
	vmB  = VMKey{Tenant: 3, IP: packet.MustParseIP("10.0.0.2")}
)

type capture struct{ pkts []*packet.Packet }

func (c *capture) Input(p *packet.Packet) { c.pkts = append(c.pkts, p) }

// immediateExec runs work with zero queueing (unit-test CPU).
func newSwitch(eng *sim.Engine, cfg model.VSwitchConfig, uplink fabric.Port) (*Switch, *model.CostModel) {
	cm := model.Default()
	sw := New(eng, &cm, cfg, srvA, Inline, uplink)
	return sw, &cm
}

func attach(sw *Switch, key VMKey, r *rules.VMRules) *capture {
	c := &capture{}
	if r == nil {
		r = &rules.VMRules{Tenant: key.Tenant, VMIP: key.IP}
	}
	sw.AttachVM(key, r, c, Inline)
	return c
}

func sendPkt(tenant packet.TenantID, src, dst packet.IP, dstPort uint16, size int) *packet.Packet {
	return packet.NewTCP(tenant, src, dst, 40000, dstPort, size)
}

func TestBaselineForwardsToUplink(t *testing.T) {
	eng := sim.NewEngine(1)
	up := &capture{}
	sw, _ := newSwitch(eng, model.VSwitchConfig{}, up)
	attach(sw, vmA, nil)
	sw.OutputFromVM(vmA, sendPkt(3, vmA.IP, packet.MustParseIP("10.0.9.9"), 80, 1000))
	eng.Run()
	if len(up.pkts) != 1 {
		t.Fatalf("uplink got %d packets", len(up.pkts))
	}
	if up.pkts[0].Meta.Path != "vif" {
		t.Errorf("path label = %q", up.pkts[0].Meta.Path)
	}
}

func TestLocalDeliveryBetweenVMs(t *testing.T) {
	eng := sim.NewEngine(1)
	up := &capture{}
	sw, _ := newSwitch(eng, model.VSwitchConfig{}, up)
	attach(sw, vmA, nil)
	cb := attach(sw, vmB, nil)
	sw.OutputFromVM(vmA, sendPkt(3, vmA.IP, vmB.IP, 80, 100))
	eng.Run()
	if len(cb.pkts) != 1 {
		t.Fatalf("local VM got %d packets", len(cb.pkts))
	}
	if len(up.pkts) != 0 {
		t.Error("intra-host traffic leaked to the wire")
	}
}

func TestSecurityRulesEnforced(t *testing.T) {
	eng := sim.NewEngine(1)
	up := &capture{}
	sw, _ := newSwitch(eng, model.VSwitchConfig{}, up)
	r := &rules.VMRules{Tenant: 3, VMIP: vmA.IP}
	r.Security = append(r.Security, rules.SecurityRule{
		Pattern: rules.Pattern{Tenant: 3, DstPort: 11211}, Action: rules.Allow, Priority: 1,
	})
	attach(sw, vmA, r)

	sw.OutputFromVM(vmA, sendPkt(3, vmA.IP, packet.MustParseIP("10.0.9.9"), 11211, 100))
	sw.OutputFromVM(vmA, sendPkt(3, vmA.IP, packet.MustParseIP("10.0.9.9"), 22, 100))
	eng.Run()
	if len(up.pkts) != 1 {
		t.Fatalf("uplink got %d packets, want 1 (ssh denied)", len(up.pkts))
	}
	if denied := sw.Counters().Denied; denied != 1 {
		t.Errorf("denied = %d, want 1", denied)
	}
}

func TestFastPathCachesVerdict(t *testing.T) {
	eng := sim.NewEngine(1)
	up := &capture{}
	sw, _ := newSwitch(eng, model.VSwitchConfig{SecurityRules: 10000}, up)
	attach(sw, vmA, nil)
	for i := 0; i < 50; i++ {
		sw.OutputFromVM(vmA, sendPkt(3, vmA.IP, packet.MustParseIP("10.0.9.9"), 80, 100))
		eng.Run()
	}
	if upcalls := sw.Counters().Upcalls; upcalls != 1 {
		t.Errorf("upcalls = %d, want 1 (only first packet hits slow path)", upcalls)
	}
	if sw.ActiveFlows() != 1 {
		t.Errorf("active flows = %d", sw.ActiveFlows())
	}
}

func TestTunnelingEncapsulates(t *testing.T) {
	eng := sim.NewEngine(1)
	up := &capture{}
	sw, _ := newSwitch(eng, model.VSwitchConfig{Tunneling: true}, up)
	attach(sw, vmA, nil)
	sw.SetTunnel(rules.TunnelMapping{Tenant: 3, VMIP: vmB.IP, Remote: srvB})
	sw.OutputFromVM(vmA, sendPkt(3, vmA.IP, vmB.IP, 80, 1000))
	eng.Run()
	if len(up.pkts) != 1 {
		t.Fatalf("uplink got %d packets", len(up.pkts))
	}
	out := up.pkts[0]
	if out.UDP == nil || out.UDP.DstPort != packet.VXLANPort {
		t.Fatalf("not VXLAN: %+v", out.UDP)
	}
	if out.IP.Src != srvA || out.IP.Dst != srvB {
		t.Errorf("outer addressing %v→%v", out.IP.Src, out.IP.Dst)
	}
}

func TestTunnelingWithoutMappingDrops(t *testing.T) {
	eng := sim.NewEngine(1)
	up := &capture{}
	sw, _ := newSwitch(eng, model.VSwitchConfig{Tunneling: true}, up)
	attach(sw, vmA, nil)
	sw.OutputFromVM(vmA, sendPkt(3, vmA.IP, vmB.IP, 80, 1000))
	eng.Run()
	if len(up.pkts) != 0 {
		t.Error("unmapped tenant traffic escaped")
	}
	if unrouted := sw.Counters().Unrouted; unrouted != 1 {
		t.Errorf("unrouted = %d", unrouted)
	}
}

func TestReceivePathDecapsAndDelivers(t *testing.T) {
	eng := sim.NewEngine(1)
	// Build a tunneled packet with a second switch, then feed it to the
	// receiving switch — full encap/decap through wire formats.
	upA := &capture{}
	swA, _ := newSwitch(eng, model.VSwitchConfig{Tunneling: true}, upA)
	attach(swA, vmA, nil)
	swA.SetTunnel(rules.TunnelMapping{Tenant: 3, VMIP: vmB.IP, Remote: srvB})
	swA.OutputFromVM(vmA, sendPkt(3, vmA.IP, vmB.IP, 8080, 640))
	eng.Run()
	if len(upA.pkts) != 1 {
		t.Fatal("no encapped packet")
	}

	cm := model.Default()
	swB := New(eng, &cm, model.VSwitchConfig{Tunneling: true}, srvB, Inline, fabric.Discard)
	cb := &capture{}
	swB.AttachVM(vmB, &rules.VMRules{Tenant: 3, VMIP: vmB.IP}, cb, Inline)
	swB.InputFromNIC(upA.pkts[0])
	eng.Run()
	if len(cb.pkts) != 1 {
		t.Fatalf("VM B got %d packets", len(cb.pkts))
	}
	got := cb.pkts[0]
	if got.Tenant != 3 || got.IP.Dst != vmB.IP || got.PayloadLen() != 640 {
		t.Errorf("delivered packet wrong: tenant=%d dst=%v len=%d", got.Tenant, got.IP.Dst, got.PayloadLen())
	}
}

func TestRateLimitShapesThroughput(t *testing.T) {
	eng := sim.NewEngine(1)
	var lastArrival time.Duration
	n := 0
	up := fabric.PortFunc(func(p *packet.Packet) {
		lastArrival = eng.Now()
		n++
	})
	// 100 Mbps limit; send 100 packets of ~1500B back to back
	// (1.2 Mb total → ≥12 ms at 100 Mbps).
	sw, _ := newSwitch(eng, model.VSwitchConfig{RateLimitBps: 100e6}, up)
	attach(sw, vmA, nil)
	for i := 0; i < 100; i++ {
		sw.OutputFromVM(vmA, sendPkt(3, vmA.IP, packet.MustParseIP("10.0.9.9"), 80, 1446))
	}
	eng.Run()
	if n != 100 {
		t.Fatalf("delivered %d", n)
	}
	bits := float64(100 * 1500 * 8)
	rate := bits / lastArrival.Seconds()
	if rate > 110e6 {
		t.Errorf("shaped rate %.1f Mbps exceeds 100 Mbps limit", rate/1e6)
	}
	if rate < 80e6 {
		t.Errorf("shaped rate %.1f Mbps too far below limit", rate/1e6)
	}
}

func TestPerVMLimitsViaFasTrak(t *testing.T) {
	eng := sim.NewEngine(1)
	up := &capture{}
	sw, _ := newSwitch(eng, model.VSwitchConfig{}, up)
	attach(sw, vmA, nil)
	if err := sw.SetVIFLimits(vmA, 50e6, 50e6); err != nil {
		t.Fatal(err)
	}
	if err := sw.SetVIFLimits(VMKey{Tenant: 9, IP: 1}, 1, 1); err == nil {
		t.Error("limits for unknown VM accepted")
	}
	// Rates adjustable on the fly (control interval updates).
	if err := sw.SetVIFLimits(vmA, 100e6, 0); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotCountsSegments(t *testing.T) {
	eng := sim.NewEngine(1)
	sw, _ := newSwitch(eng, model.VSwitchConfig{}, &capture{})
	attach(sw, vmA, nil)
	// One 32000-byte message = 23 wire segments: pps statistics must
	// reflect wire packets, which is what the DE ranks by.
	sw.OutputFromVM(vmA, sendPkt(3, vmA.IP, packet.MustParseIP("10.0.9.9"), 80, 32000))
	eng.Run()
	snap := sw.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d flows", len(snap))
	}
	if snap[0].Packets != 23 {
		t.Errorf("packets = %d, want 23 segments", snap[0].Packets)
	}
}

func TestDetachVMPurgesState(t *testing.T) {
	eng := sim.NewEngine(1)
	sw, _ := newSwitch(eng, model.VSwitchConfig{}, &capture{})
	attach(sw, vmA, nil)
	sw.OutputFromVM(vmA, sendPkt(3, vmA.IP, packet.MustParseIP("10.0.9.9"), 80, 100))
	eng.Run()
	if sw.ActiveFlows() != 1 {
		t.Fatal("expected one cached flow")
	}
	sw.DetachVM(vmA)
	if sw.ActiveFlows() != 0 {
		t.Error("detach left fast-path entries")
	}
	sw.OutputFromVM(vmA, sendPkt(3, vmA.IP, packet.MustParseIP("10.0.9.9"), 80, 100))
	eng.Run()
	if sw.Counters().Unrouted != 1 {
		t.Error("traffic from detached VM not dropped")
	}
}

func TestInvalidate(t *testing.T) {
	eng := sim.NewEngine(1)
	sw, _ := newSwitch(eng, model.VSwitchConfig{}, &capture{})
	attach(sw, vmA, nil)
	for port := uint16(80); port < 85; port++ {
		sw.OutputFromVM(vmA, sendPkt(3, vmA.IP, packet.MustParseIP("10.0.9.9"), port, 100))
	}
	eng.Run()
	if sw.ActiveFlows() != 5 {
		t.Fatalf("active = %d", sw.ActiveFlows())
	}
	n := sw.Invalidate(rules.Pattern{Tenant: 3, DstPort: 82})
	if n != 1 || sw.ActiveFlows() != 4 {
		t.Errorf("invalidated %d, active %d", n, sw.ActiveFlows())
	}
}

func TestExpireIdle(t *testing.T) {
	eng := sim.NewEngine(1)
	sw, _ := newSwitch(eng, model.VSwitchConfig{}, &capture{})
	attach(sw, vmA, nil)
	sw.OutputFromVM(vmA, sendPkt(3, vmA.IP, packet.MustParseIP("10.0.9.9"), 80, 100))
	eng.Run()
	eng.At(10*time.Second, func() {
		if n := sw.ExpireIdle(5 * time.Second); n != 1 {
			t.Errorf("expired %d", n)
		}
	})
	eng.Run()
}

func TestSlowPathUpcallsCoalesce(t *testing.T) {
	// A burst of packets for one new flow must trigger a single
	// user-space rule scan, not one per packet (OVS batches misses of
	// a flow with a pending upcall).
	eng := sim.NewEngine(1)
	up := &capture{}
	// Non-inline host exec so the upcall takes time and the burst
	// arrives while it is pending.
	pending := 0
	slowExec := func(cost time.Duration, fn func()) {
		pending++
		eng.After(cost, fn)
	}
	cm := model.Default()
	sw := New(eng, &cm, model.VSwitchConfig{SecurityRules: 10000}, srvA, slowExec, up)
	attach(sw, vmA, nil)
	for i := 0; i < 32; i++ {
		sw.OutputFromVM(vmA, sendPkt(3, vmA.IP, packet.MustParseIP("10.0.9.9"), 80, 100))
	}
	eng.Run()
	if len(up.pkts) != 32 {
		t.Fatalf("delivered %d of 32", len(up.pkts))
	}
	if upcalls := sw.Counters().Upcalls; upcalls != 1 {
		t.Errorf("upcalls = %d, want 1 (coalesced)", upcalls)
	}
	// Stats counted every packet exactly once.
	snap := sw.Snapshot()
	if len(snap) != 1 || snap[0].Packets != 32 {
		t.Errorf("flow stats = %+v", snap)
	}
}

func TestExpireIdleVsConcurrentPromote(t *testing.T) {
	// Race regression: a flow's fast-path entry idles out; its next
	// packet starts a fresh slow-path scan; while the scan is in flight
	// the DE promotes the flow to hardware and flushes the software path
	// (Invalidate). The completing scan must not resurrect its verdict
	// into the fast path — a resurrected entry would keep steering and
	// double-counting a flow that now lives in the TCAM.
	eng := sim.NewEngine(1)
	up := &capture{}
	slowExec := func(cost time.Duration, fn func()) { eng.After(cost, fn) }
	cm := model.Default()
	// 10000 security rules make the scan take ~450µs of virtual time, a
	// wide window for the promote to land mid-scan.
	sw := New(eng, &cm, model.VSwitchConfig{SecurityRules: 10000}, srvA, slowExec, up)
	attach(sw, vmA, nil)
	dst := packet.MustParseIP("10.0.9.9")

	// Warm the fast path, then let the entry idle out.
	sw.OutputFromVM(vmA, sendPkt(3, vmA.IP, dst, 80, 100))
	eng.Run()
	if sw.ActiveFlows() != 1 {
		t.Fatalf("active = %d, want 1", sw.ActiveFlows())
	}
	eng.At(10*time.Second, func() {
		if n := sw.ExpireIdle(5 * time.Second); n != 1 {
			t.Errorf("expired %d, want 1", n)
		}
		// The flow comes back: a miss, a new pending scan.
		sw.OutputFromVM(vmA, sendPkt(3, vmA.IP, dst, 80, 100))
	})
	// 100µs later — after admission, well before the ~450µs scan
	// completes — the promote flushes the software path.
	eng.At(10*time.Second+100*time.Microsecond, func() {
		sw.Invalidate(rules.Pattern{Tenant: 3, DstPort: 80})
	})
	eng.Run()

	// The packet itself is delivered (its waiter still gets a verdict)…
	if len(up.pkts) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(up.pkts))
	}
	// …but the stale verdict must not reappear in the fast path.
	if sw.ActiveFlows() != 0 {
		t.Errorf("completed scan resurrected the invalidated entry: active = %d", sw.ActiveFlows())
	}
	// And the scan was still accounted as served.
	if tel := sw.Counters(); tel.Upcalls != 2 || tel.UpcallsServed != 2 {
		t.Errorf("upcalls = %d served = %d, want 2/2", tel.Upcalls, tel.UpcallsServed)
	}
}
