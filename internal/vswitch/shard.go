package vswitch

import (
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/ratelimit"
	"repro/internal/rules"
	"repro/internal/sketch"
	"repro/internal/telemetry"
	"repro/internal/tunnel"
)

// shardMsg is one unit on a shard's input ring: a packet vector to
// process, a barrier (done != nil), or both. Barriers travel the same
// channel as vectors, so closing done proves every earlier vector
// drained.
type shardMsg struct {
	vec  *packet.Vector
	done chan struct{}
}

// planeFlow is one exact-cache entry: the cached verdict plus per-flow
// traffic accounting (merged across shards by FlowSnapshot).
type planeFlow struct {
	v     fpVerdict
	pkts  uint64
	bytes uint64
}

// planeCountersAtomic mirrors a shard's plain counters for race-free
// external sampling. The shard owns the plain copy and stores the mirror
// once per vector; readers only load.
type planeCountersAtomic struct {
	vectors, packets                   atomic.Uint64
	tx, localTx, nicTx                 atomic.Uint64
	denied, unrouted, epochFlushes     atomic.Uint64
	dropShape                          atomic.Uint64
	megaHits, megaMisses, megaInstalls atomic.Uint64
	megaEvictions, megaInvalidations   atomic.Uint64
}

func (a *planeCountersAtomic) publish(c *PlaneCounters, mega *metrics.CacheCounters) {
	a.vectors.Store(c.Vectors)
	a.packets.Store(c.Packets)
	a.tx.Store(c.Tx)
	a.localTx.Store(c.LocalTx)
	a.nicTx.Store(c.NICTx)
	a.denied.Store(c.Denied)
	a.unrouted.Store(c.Unrouted)
	a.epochFlushes.Store(c.EpochFlushes)
	a.dropShape.Store(c.Drops.Shape)
	a.megaHits.Store(mega.Hits)
	a.megaMisses.Store(mega.Misses)
	a.megaInstalls.Store(mega.Installs)
	a.megaEvictions.Store(mega.Evictions)
	a.megaInvalidations.Store(mega.Invalidations)
}

func (a *planeCountersAtomic) snapshot() PlaneCounters {
	return PlaneCounters{
		Vectors:      a.vectors.Load(),
		Packets:      a.packets.Load(),
		Tx:           a.tx.Load(),
		LocalTx:      a.localTx.Load(),
		NICTx:        a.nicTx.Load(),
		Denied:       a.denied.Load(),
		Unrouted:     a.unrouted.Load(),
		EpochFlushes: a.epochFlushes.Load(),
		Drops:        metrics.DropCounters{Shape: a.dropShape.Load()},
		Megaflow: metrics.CacheCounters{
			Hits:          a.megaHits.Load(),
			Misses:        a.megaMisses.Load(),
			Installs:      a.megaInstalls.Load(),
			Evictions:     a.megaEvictions.Load(),
			Invalidations: a.megaInvalidations.Load(),
		},
	}
}

// packet dispositions assigned during classification, consumed by egress.
const (
	dispForward = iota // verdict in sh.verdicts[i]
	dispNoVport        // no source vport in this epoch
)

// planeShard owns one slice of the flow space. Everything below `in` is
// private to the shard's processing goroutine (the caller's goroutine in
// inline mode) and is touched with no synchronization — that privacy is
// the whole design.
type planeShard struct {
	plane *ShardedPlane
	id    int
	in    chan shardMsg
	snap  planeCountersAtomic
	_     [64]byte // keep one shard's hot state off its neighbors' cache lines

	// Epoch currently adopted.
	seq    uint64
	tables *planeTables

	// Private caches, flushed wholesale on epoch change.
	exact   map[packet.FlowKey]*planeFlow
	mega    *megaflowCache
	buckets map[VMKey]*ratelimit.TokenBucket

	// Plain counters (owned by the shard; mirrored into snap per vector).
	c PlaneCounters

	// Fixed per-vector scratch — no per-packet allocation.
	keys     [packet.MaxVectorSize]packet.FlowKey
	verdicts [packet.MaxVectorSize]fpVerdict
	disp     [packet.MaxVectorSize]uint8
	wire     []byte

	// rec is set only in inline mode (SetRecorder); worker shards leave
	// it nil because Recorder event sequencing is single-goroutine.
	rec *telemetry.Scoped

	// sk, when non-nil (ShardedPlane.EnableSketch), receives every
	// classified packet's (1 pkt, wire bytes) accrual. Owned exclusively
	// by this shard's goroutine; merged reads follow the FlowSnapshot
	// quiescence contract.
	sk *sketch.ShardSketch
}

func newPlaneShard(pl *ShardedPlane, id int) *planeShard {
	sh := &planeShard{
		plane:   pl,
		id:      id,
		exact:   make(map[packet.FlowKey]*planeFlow),
		mega:    newMegaflowCache(DefaultMegaflowLimit),
		buckets: make(map[VMKey]*ratelimit.TokenBucket),
		wire:    make([]byte, 0, 2048),
	}
	if !pl.inline {
		sh.in = make(chan shardMsg, pl.cfg.RingDepth)
	}
	return sh
}

// run is the worker loop (worker mode only).
func (sh *planeShard) run() {
	defer sh.plane.wg.Done()
	for msg := range sh.in {
		if msg.vec != nil {
			sh.process(msg.vec)
			packet.PutVector(msg.vec)
		}
		if msg.done != nil {
			close(msg.done)
		}
	}
}

// adoptEpoch switches the shard to a new epoch, flushing every private
// cache — the whole invalidation protocol. Shaping buckets are rebuilt
// too: limits may have changed, and a fresh bucket's burst allowance is
// the htb enqueue-time grace an invalidation storm would get anyway.
func (sh *planeShard) adoptEpoch(ep *rules.Epoch[*planeTables]) {
	if sh.tables != nil {
		sh.c.EpochFlushes++
		clear(sh.exact)
		if sh.mega.Len() > 0 {
			sh.mega.flush()
		}
		clear(sh.buckets)
	}
	sh.seq = ep.Seq
	sh.tables = ep.Tables
}

// process runs one vector through the pipeline: epoch pickup → flow-key
// extraction → classification (exact → megaflow → full table walk) →
// egress (NIC-first → shape → local/encap). Per-packet work touches only
// shard-private state; shared state is the epoch snapshot (immutable) and
// the counter mirror (stored once at the end).
func (sh *planeShard) process(v *packet.Vector) {
	ep := sh.plane.pub.Load()
	if sh.tables == nil || ep.Seq != sh.seq {
		sh.adoptEpoch(ep)
	}
	t := sh.tables
	pkts := v.Pkts
	n := len(pkts)

	// Stage 1: flow-key extraction.
	for i := 0; i < n; i++ {
		sh.keys[i] = pkts[i].Key()
	}

	// Stage 2: classification.
	for i := 0; i < n; i++ {
		k := sh.keys[i]
		if _, ok := t.vms[VMKey{Tenant: k.Tenant, IP: k.Src}]; !ok {
			// No source vport this epoch — mirror of the vswitch's
			// unknown-VM egress check, resolved before classification.
			sh.disp[i] = dispNoVport
			continue
		}
		sh.disp[i] = dispForward
		if f, ok := sh.exact[k]; ok {
			f.pkts++
			f.bytes += uint64(pkts[i].WireLen())
			if sh.sk != nil {
				sh.sk.Observe(k, 1, uint64(pkts[i].WireLen()))
			}
			sh.verdicts[i] = f.v
			sh.rec.Hit(telemetry.KindExactHit, k.Tenant, k)
			continue
		}
		fv, ok := sh.mega.lookup(k, 0)
		if !ok {
			var mask rules.FieldMask
			fv, mask = t.evaluate(k)
			sh.mega.install(k, mask, fv, 0)
		} else {
			sh.rec.Hit(telemetry.KindMegaflowHit, k.Tenant, k)
		}
		sh.exact[k] = &planeFlow{v: fv, pkts: 1, bytes: uint64(pkts[i].WireLen())}
		if sh.sk != nil {
			sh.sk.Observe(k, 1, uint64(pkts[i].WireLen()))
		}
		sh.verdicts[i] = fv
	}

	// Stage 3: egress. The shaping clock is read at most once per vector.
	var now time.Duration
	if len(t.limits) > 0 {
		now = sh.plane.cfg.Now()
	}
	onVerdict := sh.plane.cfg.OnVerdict
	for i := 0; i < n; i++ {
		k := sh.keys[i]
		if sh.disp[i] == dispNoVport {
			sh.c.Unrouted++
			sh.rec.Drop(k.Tenant, k, "no-vport")
			continue
		}
		fv := sh.verdicts[i]
		if onVerdict != nil {
			onVerdict(sh.id, k, fv.allow, fv.queue)
		}
		if !fv.allow {
			sh.c.Denied++
			sh.rec.Drop(k.Tenant, k, "denied")
			continue
		}
		// NIC-first egress: flows the SmartNIC has placed leave through
		// hardware; software shaping and encap are skipped.
		if t.nicN > 0 {
			if _, ok := t.nic.Lookup(k); ok {
				sh.c.NICTx++
				sh.c.Tx++
				continue
			}
		}
		srcKey := VMKey{Tenant: k.Tenant, IP: k.Src}
		if bps, ok := t.limits[srcKey]; ok {
			b := sh.bucketFor(srcKey, bps, now)
			if _, ok := b.ReserveLimit(now, pkts[i].WireLen(), maxShapeDelay); !ok {
				sh.c.Drops.Shape++
				sh.rec.Drop(k.Tenant, k, "shape")
				continue
			}
		}
		if _, ok := t.vms[VMKey{Tenant: k.Tenant, IP: k.Dst}]; ok {
			// Destination vport is local: same-host delivery, no encap.
			sh.c.LocalTx++
			sh.c.Tx++
			continue
		}
		if !sh.plane.cfg.Tunneling {
			sh.c.Tx++
			continue
		}
		m, ok := t.tunnels.Lookup(k.Tenant, pkts[i].IP.Dst)
		if !ok {
			sh.c.Unrouted++
			sh.rec.Drop(k.Tenant, k, "no-tunnel")
			continue
		}
		outer, err := tunnel.VXLANEncapHashed(sh.plane.cfg.ServerIP, m.Remote, k.Tenant, pkts[i], k.FastHash())
		if err != nil {
			sh.c.Unrouted++
			sh.rec.Drop(k.Tenant, k, "encap")
			continue
		}
		// Serialize into the shard's persistent wire buffer — the full
		// marshal cost the real switch pays per transmitted frame.
		buf, err := outer.AppendMarshalTruncated(sh.wire[:0])
		if err == nil {
			sh.wire = buf[:0]
			sh.c.Tx++
		} else {
			sh.c.Unrouted++
			sh.rec.Drop(k.Tenant, k, "encap")
		}
		tunnel.Release(outer)
	}

	sh.c.Vectors++
	sh.c.Packets += uint64(n)
	sh.snap.publish(&sh.c, &sh.mega.stats)
}
