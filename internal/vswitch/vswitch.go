// Package vswitch implements the hypervisor's software switch — the Open
// vSwitch role of §2.2: a user-space slow path holding tenant security
// rules, a kernel fast path with an O(1) exact-match cache, VXLAN
// tunneling toward remote servers, and htb (`tc`) rate limiting on VM
// virtual interfaces. All per-packet work is charged to the host's network
// CPU station via the Exec hook, and the serialized qdisc work to a
// per-VIF station, so CPU contention and queueing latency emerge in the
// simulation exactly where they arise on a real server.
package vswitch

import (
	"fmt"
	"math"
	"time"

	"repro/internal/fabric"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/packet"
	"repro/internal/ratelimit"
	"repro/internal/rules"
	"repro/internal/sim"
	"repro/internal/sketch"
	"repro/internal/telemetry"
	"repro/internal/tunnel"
)

// Exec submits work with the given CPU cost to a processing station and
// runs fn when the work completes. internal/host's CPUStation provides it.
type Exec func(cost time.Duration, fn func())

// Inline is an Exec that charges nothing and runs immediately — useful in
// unit tests that exercise switching logic without a CPU model.
var Inline Exec = func(_ time.Duration, fn func()) { fn() }

// VMKey identifies a VM attachment: tenant plus tenant-assigned IP
// (overlapping across tenants, requirement C1).
type VMKey struct {
	Tenant packet.TenantID
	IP     packet.IP
}

// fpVerdict is the fast-path cached decision for a flow.
type fpVerdict struct {
	allow bool
	queue int
}

// vport is one VM's virtual interface attachment.
type vport struct {
	key     VMKey
	rules   *rules.VMRules
	deliver fabric.Port
	// htbExec serializes qdisc work for this VIF (the qdisc lock).
	htbExec Exec
	// egress/ingress shaping buckets; nil = no limit.
	egress, ingress *ratelimit.TokenBucket
	// egressClock/ingressClock enforce FIFO delivery per direction:
	// jittered path latencies never reorder packets within a vport,
	// matching the in-order softirq queues of a real vswitch.
	egressClock, ingressClock time.Duration
	// meters observe achieved rates for FPS max-out detection.
	egressMeter, ingressMeter ratelimit.UsageMeter
}

// Switch is one server's vswitch.
type Switch struct {
	eng *sim.Engine
	cm  *model.CostModel
	cfg model.VSwitchConfig

	serverIP packet.IP
	hostExec Exec
	uplink   fabric.Port

	vports   map[VMKey]*vport
	tunnels  *rules.TunnelTable
	fastpath *rules.ExactTable[fpVerdict]
	// mega is the wildcard decision cache between the exact-match fast
	// path and the user-space rule scan (see megaflow.go): slow-path
	// verdicts are installed under the union of field masks the
	// classification consulted, so new flows equal under that mask skip
	// the upcall entirely.
	mega *megaflowCache
	// sched is the slow path's bounded-queue DRR scheduler and overload
	// governor (see overload.go). It also coalesces concurrent misses for
	// the same flow onto one user-space rule scan.
	sched *upcallSched

	// HostCPU accounts all vswitch CPU time (reported by Fig. 4).
	HostCPU *metrics.CPUAccount

	// OnOverload, when set, receives a signal on every overload-detector
	// state transition: entering overload (the "emergency offload" hint the
	// local controller forwards to the DE), offender changes, and recovery.
	OnOverload func(OverloadSignal)

	// rec is the flight-recorder scope; nil when telemetry is disabled.
	// Hot paths guard with a single pointer test before building events.
	rec *telemetry.Scoped

	// plane, when non-nil, is the sharded throughput data plane mirroring
	// this switch's rule state (see plane.go). Control-plane mutators
	// republish epochs through it so rule updates never race the shards.
	plane *ShardedPlane

	// sk, when non-nil, receives every fast-path accrual (sketch
	// accounting mode): the same per-packet (segments, wire bytes)
	// increments the exact-cache statistics get, so sketch totals track
	// the exact counters packet for packet.
	sk *sketch.ShardSketch

	upcalls       uint64
	upcallsServed uint64
	denied        uint64
	unrouted      uint64
	txPackets     uint64
	rxPackets     uint64
	drops         metrics.DropCounters
}

// New builds a vswitch for the server at serverIP. hostExec runs the
// shared host network CPUs; uplink leads to the NIC's physical port.
func New(eng *sim.Engine, cm *model.CostModel, cfg model.VSwitchConfig, serverIP packet.IP, hostExec Exec, uplink fabric.Port) *Switch {
	return &Switch{
		eng: eng, cm: cm, cfg: cfg,
		serverIP: serverIP,
		hostExec: hostExec,
		uplink:   uplink,
		vports:   make(map[VMKey]*vport),
		tunnels:  rules.NewTunnelTable(),
		fastpath: rules.NewExactTable[fpVerdict](),
		mega:     newMegaflowCache(DefaultMegaflowLimit),
		sched:    newUpcallSched(DefaultOverloadConfig()),
		HostCPU:  &metrics.CPUAccount{},
	}
}

// SetOverloadConfig replaces the slow path's overload-protection
// parameters. It resets the scheduler, so it should be called at
// configuration time, before traffic flows.
func (s *Switch) SetOverloadConfig(cfg OverloadConfig) {
	s.sched = newUpcallSched(cfg)
}

// Overloaded reports whether the slow-path overload detector is currently
// in the overloaded state.
func (s *Switch) Overloaded() bool { return s.sched.overloaded }

// OverloadEvents reports how many times the detector entered and left the
// overloaded state.
func (s *Switch) OverloadEvents() (entered, recovered uint64) {
	return s.sched.Entered, s.sched.Recovered
}

// UpcallStats returns per-tenant slow-path service accounting, sorted by
// tenant ID.
func (s *Switch) UpcallStats() []UpcallStats { return s.sched.snapshotStats() }

// SetUplink rewires the physical port (topology assembly).
func (s *Switch) SetUplink(p fabric.Port) { s.uplink = p }

// AttachVM connects a VM's VIF. vmRules holds the tenant's security/QoS
// rules for the VM; deliver receives packets destined to the VM; htbExec
// is the VIF's serialized qdisc station.
func (s *Switch) AttachVM(key VMKey, vmRules *rules.VMRules, deliver fabric.Port, htbExec Exec) {
	if htbExec == nil {
		htbExec = Inline
	}
	s.vports[key] = &vport{key: key, rules: vmRules, deliver: deliver, htbExec: htbExec}
	// Wildcard verdicts covering this VM's address were computed without
	// its rules; new flows must re-classify against the attached vport.
	s.invalidateVMFlows(key)
	if s.plane != nil {
		s.plane.AttachVM(key, vmRules)
	}
}

// invalidateVMFlows flushes megaflow entries whose region touches the
// VM's address in either direction.
func (s *Switch) invalidateVMFlows(key VMKey) {
	s.mega.invalidate(rules.Pattern{Tenant: key.Tenant, Src: key.IP, SrcPrefix: 32})
	s.mega.invalidate(rules.Pattern{Tenant: key.Tenant, Dst: key.IP, DstPrefix: 32})
}

// DetachVM removes a VM (it is migrating away); its fast-path entries are
// purged.
func (s *Switch) DetachVM(key VMKey) {
	delete(s.vports, key)
	var stale []packet.FlowKey
	s.fastpath.Entries(func(e *rules.ExactEntry[fpVerdict]) {
		if e.Key.Tenant == key.Tenant && (e.Key.Src == key.IP || e.Key.Dst == key.IP) {
			stale = append(stale, e.Key)
		}
	})
	for _, k := range stale {
		s.fastpath.Remove(k)
	}
	s.invalidateVMFlows(key)
	// In-service upcalls for the VM's flows must not re-install verdicts
	// after the detach.
	for k, job := range s.sched.pending {
		if k.Tenant == key.Tenant && (k.Src == key.IP || k.Dst == key.IP) {
			job.install = false
		}
	}
	if s.plane != nil {
		s.plane.DetachVM(key)
	}
}

// SetTunnel installs a (tenant, remote VM IP) → remote server mapping.
func (s *Switch) SetTunnel(m rules.TunnelMapping) {
	s.tunnels.Set(m)
	if s.plane != nil {
		s.plane.SetTunnel(m)
	}
}

// RemoveTunnel drops a mapping (VM migration updates, requirement S4).
func (s *Switch) RemoveTunnel(tenant packet.TenantID, vmIP packet.IP) {
	s.tunnels.Remove(tenant, vmIP)
	if s.plane != nil {
		s.plane.RemoveTunnel(tenant, vmIP)
	}
}

// SetVIFLimits installs htb shaping rates on a VM's VIF; zero disables a
// direction. FasTrak's local DE calls this every control interval with the
// FPS split Rs (§4.3.2).
func (s *Switch) SetVIFLimits(key VMKey, egressBps, ingressBps float64) error {
	vp, ok := s.vports[key]
	if !ok {
		return fmt.Errorf("vswitch: no such VM %v", key)
	}
	now := s.eng.Now()
	vp.egress = makeBucket(vp.egress, now, egressBps)
	vp.ingress = makeBucket(vp.ingress, now, ingressBps)
	if s.plane != nil {
		s.plane.SetVIFLimit(key, egressBps)
	}
	return nil
}

func makeBucket(cur *ratelimit.TokenBucket, now time.Duration, bps float64) *ratelimit.TokenBucket {
	if bps <= 0 {
		return nil
	}
	if cur != nil {
		cur.SetRate(now, bps)
		return cur
	}
	// htb-like burst: ~1 ms at rate, floor of four MTUs.
	burst := math.Max(bps/1000, 4*1500*8)
	return ratelimit.NewTokenBucket(bps, burst)
}

// VIFRates samples a VM's achieved VIF rates (egress, ingress) in bps and
// whether each direction is maxed out against the given limits.
func (s *Switch) VIFRates(key VMKey) (egressBps, ingressBps float64, ok bool) {
	vp, found := s.vports[key]
	if !found {
		return 0, 0, false
	}
	now := s.eng.Now()
	return vp.egressMeter.Sample(now), vp.ingressMeter.Sample(now), true
}

// invalidate flushes fast-path entries matching a pattern — exact-match
// entries the pattern covers and megaflow entries whose wildcard region
// overlaps it (the OVS revalidation rule that keeps the cache
// semantically transparent); the FasTrak local controller calls this when
// rules for offloaded flows change.
func (s *Switch) Invalidate(p rules.Pattern) int {
	var stale []packet.FlowKey
	s.fastpath.Entries(func(e *rules.ExactEntry[fpVerdict]) {
		if p.Match(e.Key) {
			stale = append(stale, e.Key)
		}
	})
	for _, k := range stale {
		s.fastpath.Remove(k)
	}
	// Megaflow removals are accounted in CacheCounters.Invalidations; the
	// return value counts exact-match flushes only (the seed contract).
	megaFlushed := s.mega.invalidate(p)
	if s.rec != nil {
		s.rec.EmitPattern(telemetry.KindInvalidate, p.Tenant, p, "", float64(len(stale)), float64(megaFlushed))
	}
	// A pending upcall for a covered flow must not resurrect the stale
	// verdict when its scan completes (e.g. the DE just offloaded the flow
	// to hardware and flushed it here): the scan still runs — its waiters
	// need a verdict — but the result is not installed.
	for k, job := range s.sched.pending {
		if p.Match(k) {
			job.install = false
		}
	}
	if s.plane != nil {
		s.plane.Invalidate(p)
	}
	return len(stale)
}

// exec charges the host station and accounts the time.
func (s *Switch) exec(cost time.Duration, fn func()) {
	s.HostCPU.Charge(cost)
	s.hostExec(cost, fn)
}

// OutputFromVM processes a packet a VM sends through its VIF: fast-path
// (or slow-path) rule check, htb shaping, VXLAN encap, then the NIC.
func (s *Switch) OutputFromVM(key VMKey, p *packet.Packet) {
	vp, ok := s.vports[key]
	if !ok {
		s.unrouted++
		return
	}
	p.Tenant = key.Tenant
	p.Meta.Path = "vif"
	cost := s.cm.VSwitchUnitCost(p.PayloadLen(), s.cfg)
	s.exec(cost, func() {
		// The flow key is extracted once per packet and threaded through
		// classification and transmit (the encap reuses its hash for the
		// VXLAN source port), never re-derived.
		k := p.Key()
		s.classify(vp, k, p, func(v fpVerdict) {
			if !v.allow {
				s.denied++
				if s.rec != nil {
					s.rec.Drop(k.Tenant, k, "denied")
				}
				return
			}
			s.shapeEgress(vp, p, func() {
				s.addPathLatency(&vp.egressClock, func() { s.transmit(vp, k, p) })
			})
		})
	})
}

// classify resolves the packet's verdict via the fast path, falling back
// to the user-space slow path on a miss (§2.2). Lookup order is
// exact-match table, then the megaflow wildcard cache (a hit installs an
// exact entry so per-flow statistics keep accruing for the ME poll), then
// the slow path. Slow-path misses pass through the overload governor:
// bounded per-VIF queues, DRR admission across tenants, and (when the
// host is overloaded by a dominant tenant) per-VIF miss-rate clamping.
// Packets refused at admission are dropped with exact per-cause
// accounting.
func (s *Switch) classify(vp *vport, k packet.FlowKey, p *packet.Packet, then func(fpVerdict)) {
	if e := s.fastpath.Lookup(k); e != nil {
		s.accrue(e, k, p)
		if s.rec != nil {
			s.rec.Hit(telemetry.KindExactHit, k.Tenant, k)
		}
		then(e.Value)
		return
	}
	if v, ok := s.mega.lookup(k, s.eng.Now()); ok {
		e := s.fastpath.Install(k, v)
		s.accrue(e, k, p)
		if s.rec != nil {
			s.rec.Hit(telemetry.KindMegaflowHit, k.Tenant, k)
			s.rec.Emit(telemetry.KindExactInstall, k.Tenant, k, "megaflow", 0, 0)
		}
		then(v)
		return
	}
	now := s.eng.Now()
	// Concurrent misses for the same flow coalesce onto the pending scan.
	waiter := func(v fpVerdict) {
		if e := s.fastpath.Lookup(k); e != nil {
			s.accrue(e, k, p)
		}
		then(v)
	}
	if job, pending := s.sched.pending[k]; pending {
		job.waiters = append(job.waiters, waiter)
		return
	}
	job := &upcallJob{
		key:     k,
		vif:     vp.key,
		cost:    s.cm.SlowPathCost(s.ruleCount(k)),
		install: true,
		waiters: []func(fpVerdict){waiter},
	}
	switch s.sched.admit(now, job) {
	case admitOK:
		s.upcalls++
		if s.rec != nil {
			s.rec.Emit(telemetry.KindUpcall, k.Tenant, k, "", float64(s.sched.inFlight), 0)
		}
		s.pumpUpcalls()
	case admitQueueFull:
		s.drops.UpcallQueue++
		if s.rec != nil {
			s.rec.Drop(k.Tenant, k, "upcall-queue")
		}
	case admitClamped:
		s.drops.Clamp++
		if s.rec != nil {
			s.rec.Drop(k.Tenant, k, "clamp")
		}
	}
	s.overloadEval()
}

// pumpUpcalls dispatches queued upcalls onto the host CPUs up to the
// configured handler-thread concurrency.
func (s *Switch) pumpUpcalls() {
	for s.sched.inFlight < s.sched.cfg.MaxInFlight {
		job := s.sched.next()
		if job == nil {
			return
		}
		s.sched.inFlight++
		s.exec(job.cost, func() {
			s.sched.inFlight--
			s.completeUpcall(job)
		})
	}
}

// completeUpcall finishes a slow-path scan: install the verdict (unless
// an invalidation covering the flow landed mid-scan), wake the waiters,
// and keep the pipeline full.
func (s *Switch) completeUpcall(job *upcallJob) {
	v, mask := s.evaluate(job.key)
	if job.install {
		s.fastpath.Install(job.key, v)
		s.mega.install(job.key, mask, v, s.eng.Now())
		if s.rec != nil {
			s.rec.Emit(telemetry.KindExactInstall, job.key.Tenant, job.key, "upcall", 0, 0)
			s.rec.Emit(telemetry.KindMegaflowInstall, job.key.Tenant, job.key, "", float64(mask.SrcPrefix), float64(mask.DstPrefix))
		}
	}
	s.upcallsServed++
	s.sched.complete(s.eng.Now(), job)
	for _, w := range job.waiters {
		w(v)
	}
	s.pumpUpcalls()
	s.overloadEval()
}

// overloadEval runs the overload detector and delivers any state
// transition to the OnOverload hook.
func (s *Switch) overloadEval() {
	if sig, changed := s.sched.evaluate(s.eng.Now()); changed {
		if s.rec != nil {
			s.rec.Record(telemetry.Event{
				Kind:   telemetry.KindOverload,
				Cause:  overloadCause(sig),
				Tenant: sig.Offender,
				V1:     sig.Utilization,
				V2:     sig.MissPPS,
			})
		}
		if s.OnOverload != nil {
			s.OnOverload(sig)
		}
	}
}

// EnableSketch routes every fast-path accrual into sk in addition to the
// exact-cache statistics. Call before traffic starts; the slow path runs
// single-threaded on the simulator loop, so no locking is needed.
func (s *Switch) EnableSketch(sk *sketch.ShardSketch) { s.sk = sk }

// accrue charges one packet to the exact-cache entry (wire bytes plus TSO
// segment count) and mirrors the identical increment into the sketch when
// sketch accounting is enabled, so sketch totals equal Stats totals.
func (s *Switch) accrue(e *rules.ExactEntry[fpVerdict], k packet.FlowKey, p *packet.Packet) {
	e.Stats.Hit(wireSegBytes(p), s.eng.Now())
	bumpSegments(e, p)
	if s.sk != nil {
		segs := uint64(model.Segments(p.PayloadLen()))
		if segs == 0 {
			segs = 1
		}
		s.sk.Observe(k, segs, uint64(wireSegBytes(p)))
	}
}

// bumpSegments accounts additional wire segments beyond the first so pps
// statistics reflect on-the-wire packet counts after TSO segmentation.
func bumpSegments(e *rules.ExactEntry[fpVerdict], p *packet.Packet) {
	extra := model.Segments(p.PayloadLen()) - 1
	if extra > 0 {
		e.Stats.Packets += uint64(extra)
	}
}

func wireSegBytes(p *packet.Packet) int { return p.WireLen() }

func (s *Switch) ruleCount(k packet.FlowKey) int {
	n := s.cfg.SecurityRules
	if vp, ok := s.vports[VMKey{Tenant: k.Tenant, IP: k.Src}]; ok {
		n += len(vp.rules.Security)
	}
	if k.Dst != k.Src {
		if vp, ok := s.vports[VMKey{Tenant: k.Tenant, IP: k.Dst}]; ok {
			n += len(vp.rules.Security)
		}
	}
	return n
}

// evaluate computes the verdict for a flow from the rules of the local
// endpoint VMs, source endpoint first (deterministically), denying if any
// rule-bearing endpoint denies. In the microbenchmark configurations with
// no explicit rules, traffic is allowed (baseline OVS is a plain L2
// switch).
//
// The returned FieldMask is the union of fields the decision consulted —
// the wildcard under which the verdict may be cached. The vport probes
// key on tenant and exact endpoint addresses, so those are always pinned;
// each rule lookup contributes the masks of the tuple groups it visited.
func (s *Switch) evaluate(k packet.FlowKey) (fpVerdict, rules.FieldMask) {
	verdict := fpVerdict{allow: true}
	mask := rules.FieldMask{Tenant: true, SrcPrefix: 32, DstPrefix: 32}
	for _, ip := range [2]packet.IP{k.Src, k.Dst} {
		vp, ok := s.vports[VMKey{Tenant: k.Tenant, IP: ip}]
		if !ok || len(vp.rules.Security) == 0 {
			continue
		}
		a, m := vp.rules.EvaluateMask(k)
		mask = mask.Union(m)
		if a != rules.Allow {
			return fpVerdict{}, mask
		}
		q, qm := vp.rules.QueueForMask(k)
		mask = mask.Union(qm)
		if q > verdict.queue {
			verdict.queue = q
		}
	}
	return verdict, mask
}

// shapeEgress applies the VIF's htb: serialized qdisc cost plus token-
// bucket shaping delay.
func (s *Switch) shapeEgress(vp *vport, p *packet.Packet, then func()) {
	bucket := vp.egress
	if s.cfg.RateLimitBps > 0 && bucket == nil {
		// Microbenchmark config: fixed per-VIF limit.
		vp.egress = makeBucket(nil, s.eng.Now(), s.cfg.RateLimitBps)
		bucket = vp.egress
	}
	if bucket == nil {
		vp.egressMeter.Record(p.WireLen())
		then()
		return
	}
	vp.htbExec(s.cm.HTBPerPacket, func() {
		delay, ok := bucket.ReserveLimit(s.eng.Now(), p.WireLen(), maxShapeDelay)
		if !ok {
			s.drops.Shape++
			if s.rec != nil {
				s.rec.Drop(p.Tenant, p.Key(), "shape")
			}
			return
		}
		vp.egressMeter.Record(p.WireLen())
		s.eng.After(delay, then)
	})
}

// maxShapeDelay bounds the htb backlog: packets that would wait longer
// are tail-dropped, as a real qdisc's finite queue does.
const maxShapeDelay = 50 * time.Millisecond

// addPathLatency applies the software path's one-way floor plus
// exponential jitter (§3.2.4: software delays are less predictable),
// clamped to the direction's FIFO clock so packets of a vport never
// reorder.
func (s *Switch) addPathLatency(clock *time.Duration, then func()) {
	d := s.cm.PathLatency(s.cfg)
	if s.cm.SoftJitterMean > 0 {
		d += time.Duration(s.eng.Rand().ExpFloat64() * float64(s.cm.SoftJitterMean))
	}
	at := s.eng.Now() + d
	if at < *clock {
		at = *clock
	}
	*clock = at
	s.eng.At(at, then)
}

// transmit encapsulates (when tunneling) and hands the packet to the NIC.
// Local destination VMs are delivered directly, as a vswitch switches
// intra-host traffic without touching the wire.
func (s *Switch) transmit(src *vport, k packet.FlowKey, p *packet.Packet) {
	if dst, ok := s.vports[VMKey{Tenant: p.Tenant, IP: p.IP.Dst}]; ok {
		s.txPackets++
		s.deliverLocal(dst, p)
		return
	}
	if s.cfg.Tunneling {
		m, ok := s.tunnels.Lookup(p.Tenant, p.IP.Dst)
		if !ok {
			s.unrouted++
			if s.rec != nil {
				s.rec.Drop(k.Tenant, k, "no-tunnel")
			}
			return
		}
		outer, err := tunnel.VXLANEncapHashed(s.serverIP, m.Remote, p.Tenant, p, k.FastHash())
		if err != nil {
			s.unrouted++
			if s.rec != nil {
				s.rec.Drop(k.Tenant, k, "encap")
			}
			return
		}
		s.txPackets++
		s.uplink.Input(outer)
		return
	}
	s.txPackets++
	s.uplink.Input(p)
}

// TransmitOffloaded carries a packet the host's SmartNIC already
// classified and forwarded in hardware: classification, the slow path and
// the htb qdisc's CPU cost are all bypassed, but the VIF's token-bucket
// rate limit still applies (the NIC enforces the same tenant shaping the
// software path does), and the packet is metered and counted exactly like
// a software transmit before the normal encap/wire stage.
func (s *Switch) TransmitOffloaded(key VMKey, p *packet.Packet) {
	vp, ok := s.vports[key]
	if !ok {
		s.unrouted++
		return
	}
	p.Tenant = key.Tenant
	k := p.Key()
	bucket := vp.egress
	if s.cfg.RateLimitBps > 0 && bucket == nil {
		vp.egress = makeBucket(nil, s.eng.Now(), s.cfg.RateLimitBps)
		bucket = vp.egress
	}
	if bucket == nil {
		vp.egressMeter.Record(p.WireLen())
		s.transmit(vp, k, p)
		return
	}
	delay, ok := bucket.ReserveLimit(s.eng.Now(), p.WireLen(), maxShapeDelay)
	if !ok {
		s.drops.Shape++
		if s.rec != nil {
			s.rec.Drop(p.Tenant, k, "shape")
		}
		return
	}
	vp.egressMeter.Record(p.WireLen())
	s.eng.After(delay, func() { s.transmit(vp, k, p) })
}

func (s *Switch) deliverLocal(dst *vport, p *packet.Packet) {
	dst.ingressMeter.Record(p.WireLen())
	dst.deliver.Input(p)
}

// InputFromNIC processes a packet arriving on the physical port for this
// server: VXLAN decap (when tunneling), rule check, ingress shaping, then
// delivery to the destination VM's VIF.
func (s *Switch) InputFromNIC(p *packet.Packet) {
	cost := s.cm.VSwitchUnitCost(p.PayloadLen(), s.cfg)
	s.exec(cost, func() {
		inner := p
		if s.cfg.Tunneling && p.UDP != nil && p.UDP.DstPort == packet.VXLANPort {
			dec, tenant, err := tunnel.VXLANDecap(p)
			if err != nil {
				s.unrouted++
				if s.rec != nil {
					s.rec.Record(telemetry.Event{Kind: telemetry.KindDrop, Cause: "decap"})
				}
				return
			}
			inner = dec
			inner.Tenant = tenant
			// The outer frame is dead once the inner has been extracted
			// (decap shares no memory with it); recycle its buffers.
			tunnel.Release(p)
		}
		vp, ok := s.vports[VMKey{Tenant: inner.Tenant, IP: inner.IP.Dst}]
		if !ok {
			s.unrouted++
			if s.rec != nil {
				s.rec.Drop(inner.Tenant, inner.Key(), "no-vport")
			}
			return
		}
		k := inner.Key()
		s.classify(vp, k, inner, func(v fpVerdict) {
			if !v.allow {
				s.denied++
				if s.rec != nil {
					s.rec.Drop(k.Tenant, k, "denied")
				}
				return
			}
			s.shapeIngress(vp, inner, func() {
				s.addPathLatency(&vp.ingressClock, func() {
					s.rxPackets++
					vp.deliver.Input(inner)
				})
			})
		})
	})
}

func (s *Switch) shapeIngress(vp *vport, p *packet.Packet, then func()) {
	bucket := vp.ingress
	if s.cfg.RateLimitBps > 0 && bucket == nil {
		vp.ingress = makeBucket(nil, s.eng.Now(), s.cfg.RateLimitBps)
		bucket = vp.ingress
	}
	if bucket == nil {
		vp.ingressMeter.Record(p.WireLen())
		then()
		return
	}
	vp.htbExec(s.cm.HTBPerPacket, func() {
		delay, ok := bucket.ReserveLimit(s.eng.Now(), p.WireLen(), maxShapeDelay)
		if !ok {
			s.drops.Shape++
			if s.rec != nil {
				s.rec.Drop(p.Tenant, p.Key(), "shape")
			}
			return
		}
		vp.ingressMeter.Record(p.WireLen())
		s.eng.After(delay, then)
	})
}

// FlowStats snapshots the fast path's per-flow counters — what the local
// controller's ME polls ("queries the OVS datapath for active flow
// statistics", §5.2).
type FlowStats struct {
	Key     packet.FlowKey
	Packets uint64
	Bytes   uint64
}

// Snapshot returns current per-flow counters.
func (s *Switch) Snapshot() []FlowStats {
	out := make([]FlowStats, 0, s.fastpath.Len())
	s.fastpath.Entries(func(e *rules.ExactEntry[fpVerdict]) {
		out = append(out, FlowStats{Key: e.Key, Packets: e.Stats.Packets, Bytes: e.Stats.Bytes})
	})
	return out
}

// ExpireIdle evicts fast-path entries idle since before deadline. Idle
// megaflow entries expire alongside (counted as cache evictions, not in
// the return value), so a flow that idles out of the datapath is fully
// reclassified on its next packet — matching OVS revalidator behavior.
func (s *Switch) ExpireIdle(deadline time.Duration) int {
	s.mega.expire(deadline)
	return s.fastpath.Expire(deadline)
}

// Telemetry is the switch's aggregate counter snapshot. Every packet the
// switch intentionally discards is charged to exactly one Drops cause, so
// conservation equations over Telemetry close exactly.
type Telemetry struct {
	// Tx/Rx count packets transmitted toward the fabric (or delivered
	// locally) and received for local VMs.
	Tx, Rx uint64
	// Upcalls counts slow-path misses admitted to the scheduler;
	// UpcallsServed those whose rule scan completed.
	Upcalls, UpcallsServed uint64
	// Denied counts packets rejected by security rules; Unrouted packets
	// with no attached destination or tunnel mapping.
	Denied, Unrouted uint64
	// Drops is the per-cause intentional-drop accounting.
	Drops metrics.DropCounters
	// Megaflow is the wildcard decision cache's hit/miss/churn accounting.
	Megaflow metrics.CacheCounters
}

// Counters reports aggregate statistics.
func (s *Switch) Counters() Telemetry {
	return Telemetry{
		Tx:            s.txPackets,
		Rx:            s.rxPackets,
		Upcalls:       s.upcalls,
		UpcallsServed: s.upcallsServed,
		Denied:        s.denied,
		Unrouted:      s.unrouted,
		Drops:         s.drops,
		Megaflow:      s.mega.stats,
	}
}

// ActiveFlows returns the number of fast-path entries.
func (s *Switch) ActiveFlows() int { return s.fastpath.Len() }

// ActiveMegaflows returns the number of wildcard cache entries.
func (s *Switch) ActiveMegaflows() int { return s.mega.Len() }
