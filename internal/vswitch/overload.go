// Overload protection for the vswitch slow path. The user-space slow
// path is the scarce, overloadable resource of the whole design (§3): a
// single tenant opening new flows faster than the handler threads can
// scan rules would — unmanaged — monopolize the host CPUs and collapse
// every co-resident tenant's first-packet latency. This file bounds that
// failure mode with three mechanisms, mirroring what a hardened
// production vswitch does:
//
//   - bounded per-VIF upcall queues with exact tail-drop accounting
//     (a full queue drops the packet and charges DropCounters.UpcallQueue;
//     nothing is silently lost);
//   - deficit-round-robin admission across tenants (and round-robin
//     across a tenant's VIFs) so slow-path service under contention is
//     divided fairly no matter how asymmetric the miss rates are;
//   - a sliding-window CPU overload detector that, instead of letting
//     everyone's latency collapse, degrades gracefully: it clamps the
//     dominant ("storming") tenant's per-VIF miss rate and raises an
//     emergency-offload hint for the controller to move that tenant's
//     flows into hardware, relieving the software path.
package vswitch

import (
	"sort"
	"time"

	"repro/internal/packet"
	"repro/internal/ratelimit"
)

// OverloadConfig parameterizes the slow-path overload protection. The
// zero value is normalized to DefaultOverloadConfig's settings.
type OverloadConfig struct {
	// UpcallQueueDepth bounds each VIF's pending upcall queue; a miss
	// arriving at a full queue is tail-dropped (DropCounters.UpcallQueue).
	UpcallQueueDepth int
	// MaxInFlight is the number of slow-path handler threads: upcalls
	// concurrently in service. It is also the capacity unit of the
	// overload detector.
	MaxInFlight int
	// DRRQuantum is the deficit-round-robin quantum of slow-path CPU
	// time added to a tenant's deficit per scheduling visit. It must be
	// at least one upcall's cost for single-visit progress (it is only a
	// fairness granularity knob, not a correctness one).
	DRRQuantum time.Duration
	// Window is the sliding window of the CPU overload detector.
	Window time.Duration
	// OverloadThreshold and RecoverThreshold are the slow-path
	// utilization fractions (busy time / (window × MaxInFlight)) that
	// enter and leave the overloaded state; the gap is hysteresis.
	OverloadThreshold float64
	RecoverThreshold  float64
	// DominanceFraction is the share of windowed miss arrivals a tenant
	// must exceed to be singled out as the offender and clamped.
	DominanceFraction float64
	// ClampPPS is the per-VIF miss admission rate imposed on the
	// offending tenant while overloaded.
	ClampPPS float64
	// MinWindowUpcalls suppresses detection on tiny samples.
	MinWindowUpcalls uint64
}

// DefaultOverloadConfig returns the defaults: queues deep enough that a
// healthy workload never notices, detection tuned to fire only under a
// genuine miss storm.
func DefaultOverloadConfig() OverloadConfig {
	return OverloadConfig{
		UpcallQueueDepth:  512,
		MaxInFlight:       4,
		DRRQuantum:        200 * time.Microsecond,
		Window:            100 * time.Millisecond,
		OverloadThreshold: 0.75,
		RecoverThreshold:  0.40,
		DominanceFraction: 0.5,
		ClampPPS:          2000,
		MinWindowUpcalls:  64,
	}
}

func (c OverloadConfig) normalized() OverloadConfig {
	d := DefaultOverloadConfig()
	if c.UpcallQueueDepth <= 0 {
		c.UpcallQueueDepth = d.UpcallQueueDepth
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = d.MaxInFlight
	}
	if c.DRRQuantum <= 0 {
		c.DRRQuantum = d.DRRQuantum
	}
	if c.Window <= 0 {
		c.Window = d.Window
	}
	if c.OverloadThreshold <= 0 || c.OverloadThreshold > 1 {
		c.OverloadThreshold = d.OverloadThreshold
	}
	if c.RecoverThreshold <= 0 || c.RecoverThreshold >= c.OverloadThreshold {
		c.RecoverThreshold = c.OverloadThreshold / 2
	}
	if c.DominanceFraction <= 0 || c.DominanceFraction > 1 {
		c.DominanceFraction = d.DominanceFraction
	}
	if c.ClampPPS <= 0 {
		c.ClampPPS = d.ClampPPS
	}
	if c.MinWindowUpcalls == 0 {
		c.MinWindowUpcalls = d.MinWindowUpcalls
	}
	return c
}

// OverloadSignal is the degradation signal delivered to Switch.OnOverload
// on every state transition of the detector: entering overload (with or
// without a clamped offender), an offender change, and recovery.
type OverloadSignal struct {
	// Overloaded is the detector state after the transition.
	Overloaded bool
	// Utilization is the windowed slow-path utilization at the
	// transition.
	Utilization float64
	// Offender is the dominant tenant (0 = no single tenant dominates);
	// OffenderShare its fraction of windowed miss arrivals and MissPPS
	// its windowed miss arrival rate.
	Offender      packet.TenantID
	OffenderShare float64
	MissPPS       float64
	// Clamped reports whether the offender's VIFs are being miss-rate
	// clamped.
	Clamped bool
}

// UpcallStats is one tenant's slow-path service accounting. At
// quiescence (no queued or in-flight upcalls) the identity
// Arrived == Served + QueueDrops + ClampDrops holds exactly.
type UpcallStats struct {
	Tenant packet.TenantID
	// Arrived counts miss arrivals (admitted or not); Served counts
	// completed slow-path scans; QueueDrops and ClampDrops the two
	// rejection causes; Queued and InFlight the current backlog.
	Arrived    uint64
	Served     uint64
	QueueDrops uint64
	ClampDrops uint64
	Queued     uint64
	InFlight   uint64
}

// upcallJob is one pending slow-path scan for a flow. Concurrent misses
// for the same flow coalesce onto one job as waiters.
type upcallJob struct {
	key  packet.FlowKey
	vif  VMKey
	cost time.Duration
	// install is cleared when an Invalidate/DetachVM covering the flow
	// lands while the scan is pending, so a completed upcall cannot
	// resurrect a verdict for a flow the controller just offloaded or
	// detached.
	install bool
	waiters []func(fpVerdict)
}

// vifFIFO is one VIF's bounded upcall queue.
type vifFIFO struct{ jobs []*upcallJob }

// tenantSched is one tenant's slow-path scheduling state: a DRR deficit
// and round-robin over its VIF queues.
type tenantSched struct {
	deficit  time.Duration
	queues   map[VMKey]*vifFIFO
	order    []VMKey
	idx      int
	inFlight uint64
}

func (ts *tenantSched) queueFor(vif VMKey) *vifFIFO {
	q, ok := ts.queues[vif]
	if !ok {
		q = &vifFIFO{}
		ts.queues[vif] = q
		ts.order = append(ts.order, vif)
	}
	return q
}

// current compacts drained VIFs out of the ring and returns the queue at
// the round-robin cursor, or nil when the tenant has no pending work.
func (ts *tenantSched) current() *vifFIFO {
	for len(ts.order) > 0 {
		if ts.idx >= len(ts.order) {
			ts.idx = 0
		}
		q := ts.queues[ts.order[ts.idx]]
		if len(q.jobs) > 0 {
			return q
		}
		delete(ts.queues, ts.order[ts.idx])
		ts.order = append(ts.order[:ts.idx], ts.order[ts.idx+1:]...)
	}
	return nil
}

func (ts *tenantSched) peek() *upcallJob {
	if q := ts.current(); q != nil {
		return q.jobs[0]
	}
	return nil
}

// dequeue pops the current VIF's head job and advances the VIF cursor
// (per-job round-robin across the tenant's VIFs).
func (ts *tenantSched) dequeue() *upcallJob {
	q := ts.current()
	if q == nil {
		return nil
	}
	job := q.jobs[0]
	q.jobs = q.jobs[1:]
	ts.idx++
	return job
}

func (ts *tenantSched) queued() uint64 {
	var n uint64
	for _, q := range ts.queues {
		n += uint64(len(q.jobs))
	}
	return n
}

// loadBucket is one granule of the detector's sliding window.
type loadBucket struct {
	busy     time.Duration
	arrivals map[packet.TenantID]uint64
	total    uint64
}

// loadWindow keeps slow-path busy time and per-tenant miss arrivals over
// a sliding window, bucketed so old load ages out deterministically.
type loadWindow struct {
	span    time.Duration
	gran    time.Duration
	buckets map[int64]*loadBucket
}

const loadWindowBuckets = 8

func newLoadWindow(span time.Duration) *loadWindow {
	gran := span / loadWindowBuckets
	if gran <= 0 {
		gran = time.Millisecond
	}
	return &loadWindow{span: span, gran: gran, buckets: make(map[int64]*loadBucket)}
}

func (w *loadWindow) bucket(now time.Duration) *loadBucket {
	idx := int64(now / w.gran)
	for k := range w.buckets {
		if k <= idx-loadWindowBuckets {
			delete(w.buckets, k)
		}
	}
	b, ok := w.buckets[idx]
	if !ok {
		b = &loadBucket{arrivals: make(map[packet.TenantID]uint64)}
		w.buckets[idx] = b
	}
	return b
}

func (w *loadWindow) chargeBusy(now, d time.Duration) { w.bucket(now).busy += d }

func (w *loadWindow) recordArrival(now time.Duration, t packet.TenantID) {
	b := w.bucket(now)
	b.arrivals[t]++
	b.total++
}

// sums aggregates the window: total busy time, total arrivals, and
// per-tenant arrivals. Aggregation is order-independent, so map
// iteration cannot perturb determinism.
func (w *loadWindow) sums(now time.Duration) (busy time.Duration, total uint64, per map[packet.TenantID]uint64) {
	idx := int64(now / w.gran)
	per = make(map[packet.TenantID]uint64)
	for k, b := range w.buckets {
		if k <= idx-loadWindowBuckets || k > idx {
			continue
		}
		busy += b.busy
		total += b.total
		for t, n := range b.arrivals {
			per[t] += n
		}
	}
	return
}

// admitResult discriminates the outcomes of upcall admission.
type admitResult uint8

const (
	admitOK admitResult = iota
	admitQueueFull
	admitClamped
)

// upcallSched is the switch's slow-path scheduler and overload governor.
type upcallSched struct {
	cfg OverloadConfig

	tenants map[packet.TenantID]*tenantSched
	// ring is the DRR ring of tenants with pending work, in first-
	// activation order (deterministic given the event order).
	ring     []packet.TenantID
	ringIdx  int
	inFlight int

	// pending maps a flow key to its coalescing job (queued or in
	// service).
	pending map[packet.FlowKey]*upcallJob

	window *loadWindow

	// clamped marks tenants under miss-rate clamping; clampBuckets holds
	// the per-VIF admission buckets (1 token ≡ 8 "bits" ≡ one miss).
	clamped      map[packet.TenantID]bool
	clampBuckets map[VMKey]*ratelimit.TokenBucket

	overloaded bool
	offender   packet.TenantID

	stats map[packet.TenantID]*UpcallStats

	// Entered/Recovered count overload state transitions.
	Entered   uint64
	Recovered uint64
}

func newUpcallSched(cfg OverloadConfig) *upcallSched {
	cfg = cfg.normalized()
	return &upcallSched{
		cfg:          cfg,
		tenants:      make(map[packet.TenantID]*tenantSched),
		pending:      make(map[packet.FlowKey]*upcallJob),
		window:       newLoadWindow(cfg.Window),
		clamped:      make(map[packet.TenantID]bool),
		clampBuckets: make(map[VMKey]*ratelimit.TokenBucket),
		stats:        make(map[packet.TenantID]*UpcallStats),
	}
}

func (u *upcallSched) statsFor(t packet.TenantID) *UpcallStats {
	st, ok := u.stats[t]
	if !ok {
		st = &UpcallStats{Tenant: t}
		u.stats[t] = st
	}
	return st
}

// admit runs clamping and queue-bound admission for a fresh miss. On
// admitOK the job is queued (and registered in pending); on either drop
// the packet is gone and the drop is accounted per cause.
func (u *upcallSched) admit(now time.Duration, job *upcallJob) admitResult {
	t := job.vif.Tenant
	st := u.statsFor(t)
	st.Arrived++
	u.window.recordArrival(now, t)
	if u.clamped[t] {
		b, ok := u.clampBuckets[job.vif]
		if !ok {
			b = ratelimit.NewTokenBucket(u.cfg.ClampPPS*8, 8*16)
			u.clampBuckets[job.vif] = b
		}
		if !b.Allow(now, 1) {
			st.ClampDrops++
			return admitClamped
		}
	}
	ts, ok := u.tenants[t]
	if !ok {
		ts = &tenantSched{queues: make(map[VMKey]*vifFIFO)}
		u.tenants[t] = ts
	}
	q := ts.queueFor(job.vif)
	if len(q.jobs) >= u.cfg.UpcallQueueDepth {
		st.QueueDrops++
		return admitQueueFull
	}
	q.jobs = append(q.jobs, job)
	u.activate(t)
	u.pending[job.key] = job
	return admitOK
}

// activate puts a tenant on the DRR ring if absent.
func (u *upcallSched) activate(t packet.TenantID) {
	for _, cur := range u.ring {
		if cur == t {
			return
		}
	}
	u.ring = append(u.ring, t)
}

// compactRing drops drained tenants (resetting their deficit, as classic
// DRR does for emptied queues) and keeps the cursor stable.
func (u *upcallSched) compactRing() {
	removedBefore := 0
	out := u.ring[:0]
	for i, t := range u.ring {
		ts := u.tenants[t]
		if ts == nil || ts.peek() == nil {
			if ts != nil {
				ts.deficit = 0
			}
			if i < u.ringIdx {
				removedBefore++
			}
			continue
		}
		out = append(out, t)
	}
	u.ring = out
	u.ringIdx -= removedBefore
	if u.ringIdx < 0 || u.ringIdx >= len(u.ring) {
		u.ringIdx = 0
	}
}

// next picks the next upcall to serve by deficit round robin across
// tenants. Each full pass tops every queued tenant's deficit by one
// quantum, so the pass bound is a safety net, not a scheduling limit.
func (u *upcallSched) next() *upcallJob {
	u.compactRing()
	if len(u.ring) == 0 {
		return nil
	}
	for iter := 0; iter < 1024*len(u.ring); iter++ {
		if u.ringIdx >= len(u.ring) {
			u.ringIdx = 0
		}
		ts := u.tenants[u.ring[u.ringIdx]]
		job := ts.peek()
		if job == nil {
			// Drained since compaction (can't happen mid-call, but be
			// safe).
			u.compactRing()
			if len(u.ring) == 0 {
				return nil
			}
			continue
		}
		if ts.deficit >= job.cost {
			ts.deficit -= job.cost
			return u.take(ts)
		}
		ts.deficit += u.cfg.DRRQuantum
		u.ringIdx++
	}
	// Degenerate configuration (quantum ≪ cost overflow-scale); force
	// progress rather than stall the slow path.
	return u.take(u.tenants[u.ring[0]])
}

func (u *upcallSched) take(ts *tenantSched) *upcallJob {
	job := ts.dequeue()
	if job != nil {
		ts.inFlight++
		u.statsFor(job.vif.Tenant).InFlight++
	}
	return job
}

// complete accounts a finished slow-path scan.
func (u *upcallSched) complete(now time.Duration, job *upcallJob) {
	delete(u.pending, job.key)
	u.window.chargeBusy(now, job.cost)
	st := u.statsFor(job.vif.Tenant)
	st.Served++
	if st.InFlight > 0 {
		st.InFlight--
	}
	if ts := u.tenants[job.vif.Tenant]; ts != nil && ts.inFlight > 0 {
		ts.inFlight--
	}
}

// dominant returns the tenant with the largest windowed arrival share
// (ties broken toward the lowest tenant ID, for determinism).
func dominant(per map[packet.TenantID]uint64, total uint64) (packet.TenantID, float64) {
	if total == 0 {
		return 0, 0
	}
	ids := make([]packet.TenantID, 0, len(per))
	for t := range per {
		ids = append(ids, t)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var best packet.TenantID
	var bestN uint64
	for _, t := range ids {
		if per[t] > bestN {
			best, bestN = t, per[t]
		}
	}
	return best, float64(bestN) / float64(total)
}

// evaluate runs the overload detector and reports whether a state
// transition occurred (and, if so, the signal describing it).
func (u *upcallSched) evaluate(now time.Duration) (OverloadSignal, bool) {
	busy, total, per := u.window.sums(now)
	// Utilization is always normalized against the full window, even while
	// the window is still filling at startup: a partial window can only
	// under-estimate, never spuriously trip the detector on a boot-time
	// miss burst. Genuine storms last well beyond one window.
	elapsed := u.cfg.Window
	util := busy.Seconds() / (elapsed.Seconds() * float64(u.cfg.MaxInFlight))
	offender, share := dominant(per, total)
	changed := false
	switch {
	case !u.overloaded:
		if util >= u.cfg.OverloadThreshold && total >= u.cfg.MinWindowUpcalls {
			u.overloaded = true
			u.Entered++
			if share >= u.cfg.DominanceFraction {
				u.setOffender(offender)
			}
			changed = true
		}
	default:
		if util <= u.cfg.RecoverThreshold {
			u.overloaded = false
			u.Recovered++
			u.clearClamps()
			changed = true
		} else if share >= u.cfg.DominanceFraction && offender != u.offender {
			u.setOffender(offender)
			changed = true
		}
	}
	if !changed {
		return OverloadSignal{}, false
	}
	sig := OverloadSignal{
		Overloaded:  u.overloaded,
		Utilization: util,
		Clamped:     u.overloaded && u.clamped[u.offender],
	}
	if u.overloaded {
		sig.Offender = u.offender
		sig.OffenderShare = share
		sig.MissPPS = float64(per[u.offender]) / elapsed.Seconds()
	}
	return sig, true
}

func (u *upcallSched) setOffender(t packet.TenantID) {
	u.offender = t
	u.clamped[t] = true
}

func (u *upcallSched) clearClamps() {
	u.offender = 0
	u.clamped = make(map[packet.TenantID]bool)
	u.clampBuckets = make(map[VMKey]*ratelimit.TokenBucket)
}

// snapshotStats returns per-tenant upcall accounting, sorted by tenant.
func (u *upcallSched) snapshotStats() []UpcallStats {
	ids := make([]packet.TenantID, 0, len(u.stats))
	for t := range u.stats {
		ids = append(ids, t)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]UpcallStats, 0, len(ids))
	for _, t := range ids {
		st := *u.stats[t]
		if ts := u.tenants[t]; ts != nil {
			st.Queued = ts.queued()
		}
		out = append(out, st)
	}
	return out
}
