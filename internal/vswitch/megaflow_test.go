package vswitch

import (
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/packet"
	"repro/internal/rules"
	"repro/internal/sim"
)

// TestMegaflowAbsorbsPortScan is the tentpole behavior: flows differing
// only in fields the rule set never examines share one wildcard entry, so
// a scan across many ports costs one upcall, not one per flow.
func TestMegaflowAbsorbsPortScan(t *testing.T) {
	eng := sim.NewEngine(1)
	up := &capture{}
	sw, _ := newSwitch(eng, model.VSwitchConfig{}, up)
	r := &rules.VMRules{Tenant: 3, VMIP: vmA.IP}
	// One allow-all-TCP rule: the classification consults proto (and the
	// always-pinned tenant/src/dst), never the ports.
	r.Security = append(r.Security, rules.SecurityRule{
		Pattern: rules.Pattern{Tenant: 3, Proto: packet.ProtoTCP}, Action: rules.Allow, Priority: 1,
	})
	attach(sw, vmA, r)

	dst := packet.MustParseIP("10.0.9.9")
	for port := uint16(1000); port < 1200; port++ {
		sw.OutputFromVM(vmA, sendPkt(3, vmA.IP, dst, port, 100))
		eng.Run()
	}
	tel := sw.Counters()
	if tel.Upcalls != 1 {
		t.Errorf("upcalls = %d, want 1 (megaflow should absorb the scan)", tel.Upcalls)
	}
	if tel.Megaflow.Hits != 199 {
		t.Errorf("megaflow hits = %d, want 199", tel.Megaflow.Hits)
	}
	if len(up.pkts) != 200 {
		t.Errorf("delivered %d packets, want 200", len(up.pkts))
	}
	// Every flow still gets its own exact entry for per-flow stats.
	if sw.ActiveFlows() != 200 {
		t.Errorf("active exact flows = %d, want 200", sw.ActiveFlows())
	}
	if sw.ActiveMegaflows() != 1 {
		t.Errorf("active megaflows = %d, want 1", sw.ActiveMegaflows())
	}
}

// TestMegaflowInvalidateOnRuleChange: a rule change covering a cached
// region must flush the wildcard entry, and the next packet must see the
// new verdict.
func TestMegaflowInvalidateOnRuleChange(t *testing.T) {
	eng := sim.NewEngine(1)
	up := &capture{}
	sw, _ := newSwitch(eng, model.VSwitchConfig{}, up)
	r := &rules.VMRules{Tenant: 3, VMIP: vmA.IP}
	r.Security = append(r.Security, rules.SecurityRule{
		Pattern: rules.Pattern{Tenant: 3}, Action: rules.Allow, Priority: 1,
	})
	attach(sw, vmA, r)
	dst := packet.MustParseIP("10.0.9.9")

	sw.OutputFromVM(vmA, sendPkt(3, vmA.IP, dst, 80, 100))
	eng.Run()
	if len(up.pkts) != 1 {
		t.Fatalf("delivered %d, want 1", len(up.pkts))
	}

	// Tighten the policy: deny port 22, and tell the switch (the
	// controller contract for any rule change).
	r.Security = append(r.Security, rules.SecurityRule{
		Pattern: rules.Pattern{Tenant: 3, DstPort: 22}, Action: rules.Deny, Priority: 2,
	})
	sw.Invalidate(rules.Pattern{Tenant: 3, DstPort: 22})

	// Without invalidation the old tenant-wide megaflow would allow this.
	sw.OutputFromVM(vmA, sendPkt(3, vmA.IP, dst, 22, 100))
	eng.Run()
	if len(up.pkts) != 1 {
		t.Fatalf("ssh packet leaked through a stale megaflow")
	}
	if sw.Counters().Denied != 1 {
		t.Errorf("denied = %d, want 1", sw.Counters().Denied)
	}
}

// TestMegaflowDifferential drives a cached switch and a per-packet linear
// reference with the same randomized traffic and rule-change
// interleavings, asserting every packet gets the identical verdict. This
// is the semantic-transparency acceptance check for the wildcard cache.
func TestMegaflowDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dsts := []packet.IP{
		packet.MustParseIP("10.0.9.1"),
		packet.MustParseIP("10.0.9.2"),
	}
	randRule := func() rules.SecurityRule {
		p := rules.Pattern{Tenant: 3}
		if rng.Intn(2) == 0 {
			p.Dst, p.DstPrefix = dsts[rng.Intn(2)], 32
		}
		if rng.Intn(2) == 0 {
			p.DstPort = []uint16{22, 80, 443}[rng.Intn(3)]
		}
		if rng.Intn(3) == 0 {
			p.Proto = packet.ProtoTCP
		}
		return rules.SecurityRule{
			Pattern:  p,
			Action:   rules.Action(rng.Intn(2)),
			Priority: rng.Intn(5),
		}
	}

	for trial := 0; trial < 10; trial++ {
		eng := sim.NewEngine(1)
		up := &capture{}
		sw, _ := newSwitch(eng, model.VSwitchConfig{}, up)
		r := &rules.VMRules{Tenant: 3, VMIP: vmA.IP}
		for i := 0; i < 5; i++ {
			r.Security = append(r.Security, randRule())
		}
		attach(sw, vmA, r)

		delivered := 0
		for step := 0; step < 400; step++ {
			if rng.Intn(20) == 0 {
				// Rule churn: add or remove, then invalidate the changed
				// pattern (the controller contract). When the endpoint's
				// rule set transitions between empty and non-empty the
				// default verdict flips for every key, so the contract
				// requires wholesale endpoint invalidation instead — the
				// same flush AttachVM/DetachVM perform.
				wasEmpty := len(r.Security) == 0
				var changed rules.Pattern
				if rng.Intn(2) == 0 || wasEmpty {
					nr := randRule()
					r.Security = append(r.Security, nr)
					changed = nr.Pattern
				} else {
					i := rng.Intn(len(r.Security))
					changed = r.Security[i].Pattern
					r.Security = append(append([]rules.SecurityRule{}, r.Security[:i]...), r.Security[i+1:]...)
				}
				if wasEmpty != (len(r.Security) == 0) {
					sw.Invalidate(rules.Pattern{Tenant: 3, Src: vmA.IP, SrcPrefix: 32})
					sw.Invalidate(rules.Pattern{Tenant: 3, Dst: vmA.IP, DstPrefix: 32})
				} else {
					sw.Invalidate(changed)
				}
			}
			k := packet.FlowKey{
				Tenant:  3,
				Src:     vmA.IP,
				Dst:     dsts[rng.Intn(2)],
				SrcPort: uint16(40000 + rng.Intn(2)),
				DstPort: []uint16{22, 80, 443}[rng.Intn(3)],
				Proto:   packet.ProtoTCP,
			}
			// Reference semantics: the switch skips rule-less endpoints
			// (baseline L2 allow); otherwise the seed linear scan decides.
			want := len(r.Security) == 0 || r.EvaluateLinear(k) == rules.Allow
			sw.OutputFromVM(vmA, sendPkt(3, k.Src, k.Dst, k.DstPort, 100))
			eng.Run()
			if want {
				delivered++
			}
			if len(up.pkts) != delivered {
				t.Fatalf("trial %d step %d: key %v delivered=%d want=%d (verdict diverged from linear reference)",
					trial, step, k, len(up.pkts), delivered)
			}
		}
	}
}

// TestMegaflowOverflowFlushes: exceeding the entry limit triggers a full
// flush (the OVS revalidation storm), after which classification still
// works and the eviction is accounted.
func TestMegaflowOverflowFlushes(t *testing.T) {
	eng := sim.NewEngine(1)
	up := &capture{}
	sw, _ := newSwitch(eng, model.VSwitchConfig{}, up)
	sw.mega = newMegaflowCache(4)
	r := &rules.VMRules{Tenant: 3, VMIP: vmA.IP}
	// Port-pinned rules give every destination port its own megaflow.
	for port := uint16(1000); port < 1010; port++ {
		r.Security = append(r.Security, rules.SecurityRule{
			Pattern: rules.Pattern{Tenant: 3, DstPort: port}, Action: rules.Allow, Priority: 1,
		})
	}
	attach(sw, vmA, r)
	dst := packet.MustParseIP("10.0.9.9")
	for port := uint16(1000); port < 1010; port++ {
		sw.OutputFromVM(vmA, sendPkt(3, vmA.IP, dst, port, 100))
		eng.Run()
	}
	tel := sw.Counters()
	if tel.Megaflow.Evictions == 0 {
		t.Errorf("expected capacity evictions, got %+v", tel.Megaflow)
	}
	if len(up.pkts) != 10 {
		t.Errorf("delivered %d packets, want 10", len(up.pkts))
	}
	if sw.ActiveMegaflows() > 4 {
		t.Errorf("megaflow cache exceeded its limit: %d", sw.ActiveMegaflows())
	}
}
