package vswitch

import (
	"time"

	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/rules"
)

// DefaultMegaflowLimit bounds the number of megaflow entries per switch.
// OVS defaults its datapath flow limit to a couple hundred thousand; the
// testbed's rule scales are far smaller, and overflow triggers a full
// flush (a revalidation storm, exactly as in OVS under churn).
const DefaultMegaflowLimit = 8192

// megaflowCache is the wildcard decision cache between the exact-match
// fast path and the user-space rule scan — the OVS megaflow design the
// paper's vswitch substrate is modeled on (§2.2). A slow-path
// classification records the union of field masks it consulted; the
// verdict is installed under that mask, so subsequent flows that differ
// only in unexamined fields (a port scan, a new connection to the same
// service) hit one hash probe per distinct mask instead of the full
// priority scan.
//
// Soundness: a probe key equal to the original under the recorded mask
// takes the identical path through every tuple the classifier examined —
// matching the same entries and triggering the same pruning — so it is
// guaranteed the same verdict. Rule changes call invalidate with the
// changed pattern; every cache entry whose region overlaps it is removed,
// keeping the cache semantically transparent (the differential tests
// assert verdict identity against the linear reference under random
// add/remove interleavings).
// megaEntry is one installed megaflow: the cached verdict plus the last
// virtual time it served a packet, for idle expiry (OVS datapath flows
// idle out the same way — revalidation then reclassifies the next packet).
type megaEntry struct {
	v    fpVerdict
	last time.Duration
}

type megaflowCache struct {
	// masks lists distinct megaflow masks in first-install order; lookup
	// probes each. The count stays small: it is bounded by the distinct
	// consulted-mask unions the rule set can produce.
	masks  []rules.FieldMask
	tables map[rules.FieldMask]map[packet.FlowKey]*megaEntry
	size   int
	limit  int
	stats  metrics.CacheCounters
}

func newMegaflowCache(limit int) *megaflowCache {
	if limit <= 0 {
		limit = DefaultMegaflowLimit
	}
	return &megaflowCache{
		tables: make(map[rules.FieldMask]map[packet.FlowKey]*megaEntry),
		limit:  limit,
	}
}

// lookup returns the cached verdict covering k, if any, refreshing the
// entry's idle clock.
func (c *megaflowCache) lookup(k packet.FlowKey, now time.Duration) (fpVerdict, bool) {
	for _, m := range c.masks {
		if e, ok := c.tables[m][m.Apply(k)]; ok {
			e.last = now
			c.stats.Hits++
			return e.v, true
		}
	}
	c.stats.Misses++
	return fpVerdict{}, false
}

// install caches a slow-path verdict under the consulted-field mask.
func (c *megaflowCache) install(k packet.FlowKey, mask rules.FieldMask, v fpVerdict, now time.Duration) {
	if c.size >= c.limit {
		c.flush()
	}
	tbl, ok := c.tables[mask]
	if !ok {
		tbl = make(map[packet.FlowKey]*megaEntry)
		c.tables[mask] = tbl
		c.masks = append(c.masks, mask)
	}
	mk := mask.Apply(k)
	if e, exists := tbl[mk]; exists {
		e.v, e.last = v, now
	} else {
		tbl[mk] = &megaEntry{v: v, last: now}
		c.size++
	}
	c.stats.Installs++
}

// expire removes entries idle since before deadline, counting them as
// evictions. Returns how many were removed.
func (c *megaflowCache) expire(deadline time.Duration) int {
	n := 0
	for _, m := range c.masks {
		tbl := c.tables[m]
		for mk, e := range tbl {
			if e.last < deadline {
				delete(tbl, mk)
				n++
			}
		}
	}
	c.size -= n
	c.stats.Evictions += uint64(n)
	return n
}

// invalidate removes every entry whose match region overlaps the pattern,
// returning how many were removed. Called on any rule add/remove covering
// this switch's traffic.
func (c *megaflowCache) invalidate(p rules.Pattern) int {
	n := 0
	for _, m := range c.masks {
		tbl := c.tables[m]
		for mk := range tbl {
			if p.Overlaps(m, mk) {
				delete(tbl, mk)
				n++
			}
		}
	}
	c.size -= n
	c.stats.Invalidations += uint64(n)
	return n
}

// flush discards the whole cache (capacity overflow), counting the
// entries as evictions.
func (c *megaflowCache) flush() {
	c.stats.Evictions += uint64(c.size)
	c.masks = c.masks[:0]
	clear(c.tables)
	c.size = 0
}

// Len returns the number of installed megaflow entries.
func (c *megaflowCache) Len() int { return c.size }
