// Flight-recorder and metric-registry wiring for the vswitch. The switch
// holds a nil-able *telemetry.Scoped; every hot-path instrumentation
// point guards with a single pointer test so the disabled path stays
// zero-alloc (enforced by TestFastPathAllocsWithTelemetryDisabled and the
// BENCH_BASELINE gates).
package vswitch

import (
	"repro/internal/telemetry"
)

// SetRecorder attaches (or, with nil, detaches) the switch's flight-
// recorder scope. Call at topology-assembly time.
func (s *Switch) SetRecorder(rec *telemetry.Scoped) { s.rec = rec }

// RegisterMetrics registers the switch's counters and gauges with the
// central registry under fastrak_vswitch_* names, tagged with the given
// fixed labels (e.g. "server=3"). Safe on a nil registry.
func (s *Switch) RegisterMetrics(reg *telemetry.Registry, labels ...string) {
	if reg == nil {
		return
	}
	lbl := func(extra ...string) []string {
		return append(append([]string(nil), labels...), extra...)
	}
	reg.Counter("fastrak_vswitch_tx_packets_total", "packets transmitted toward the fabric or delivered locally", &s.txPackets, lbl()...)
	reg.Counter("fastrak_vswitch_rx_packets_total", "packets received for local VMs", &s.rxPackets, lbl()...)
	reg.Counter("fastrak_vswitch_upcalls_total", "slow-path misses admitted to the upcall scheduler", &s.upcalls, lbl()...)
	reg.Counter("fastrak_vswitch_upcalls_served_total", "upcalls whose rule scan completed", &s.upcallsServed, lbl()...)
	reg.Counter("fastrak_vswitch_denied_total", "packets rejected by security rules", &s.denied, lbl()...)
	reg.Counter("fastrak_vswitch_unrouted_total", "packets with no destination vport or tunnel mapping", &s.unrouted, lbl()...)
	reg.Counter("fastrak_vswitch_drops_total", "intentional drops by cause", &s.drops.Shape, lbl("cause=shape")...)
	reg.Counter("fastrak_vswitch_drops_total", "intentional drops by cause", &s.drops.UpcallQueue, lbl("cause=upcall-queue")...)
	reg.Counter("fastrak_vswitch_drops_total", "intentional drops by cause", &s.drops.Clamp, lbl("cause=clamp")...)
	reg.Counter("fastrak_vswitch_megaflow_hits_total", "megaflow cache hits", &s.mega.stats.Hits, lbl()...)
	reg.Counter("fastrak_vswitch_megaflow_misses_total", "megaflow cache misses", &s.mega.stats.Misses, lbl()...)
	reg.Counter("fastrak_vswitch_megaflow_installs_total", "megaflow cache installs", &s.mega.stats.Installs, lbl()...)
	reg.Counter("fastrak_vswitch_megaflow_evictions_total", "megaflow capacity evictions", &s.mega.stats.Evictions, lbl()...)
	reg.Counter("fastrak_vswitch_megaflow_invalidations_total", "megaflow rule-change invalidations", &s.mega.stats.Invalidations, lbl()...)
	reg.Gauge("fastrak_vswitch_active_flows", "exact-match fast-path entries", func() float64 { return float64(s.fastpath.Len()) }, lbl()...)
	reg.Gauge("fastrak_vswitch_active_megaflows", "megaflow wildcard cache entries", func() float64 { return float64(s.mega.Len()) }, lbl()...)
	reg.Gauge("fastrak_vswitch_overloaded", "1 while the slow-path overload detector is tripped", func() float64 {
		if s.sched.overloaded {
			return 1
		}
		return 0
	}, lbl()...)
	reg.Gauge("fastrak_vswitch_cpu_busy_seconds", "accumulated vswitch CPU busy time", func() float64 { return s.HostCPU.Busy().Seconds() }, lbl()...)
}

// overloadCause renders an overload transition for the flight recorder.
func overloadCause(sig OverloadSignal) string {
	switch {
	case sig.Overloaded && sig.Clamped:
		return "enter-clamped"
	case sig.Overloaded:
		return "enter"
	default:
		return "exit"
	}
}
