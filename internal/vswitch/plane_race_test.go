package vswitch

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/packet"
	"repro/internal/rules"
)

// TestPlaneRuleChurnRace is the ISSUE's -race gate for satellite 1: rule,
// tunnel, VIF-limit and NIC-placement mutations hammer the epoch
// publisher from a control goroutine while four shard workers forward
// traffic from two producers flat out. Before the epoch publisher,
// TunnelMapping and VIF-limit updates mutated tables the fast path was
// reading; now every mutation is a copy-on-write publish and the shards
// only ever read immutable snapshots — the race detector proves it.
//
// Assertions are deliberately coarse (conservation and liveness): the
// differential test owns verdict correctness. This test owns memory
// safety under concurrent churn.
func TestPlaneRuleChurnRace(t *testing.T) {
	pl := NewShardedPlane(PlaneConfig{Shards: 4, Tunneling: true, ServerIP: srvA})
	defer pl.Close()

	const numVMs = 8
	var vmKeys []VMKey
	seedRng := rand.New(rand.NewSource(5))
	for i := 0; i < numVMs; i++ {
		key := VMKey{Tenant: 3, IP: packet.MakeIP(10, 0, 0, byte(1+i))}
		vmKeys = append(vmKeys, key)
		pl.AttachVM(key, planeRuleSet(seedRng, 3, key.IP))
	}
	remote := func(i int) packet.IP { return packet.MakeIP(10, 0, 9, byte(i)) }
	for i := 0; i < 4; i++ {
		pl.SetTunnel(rules.TunnelMapping{Tenant: 3, VMIP: remote(i), Remote: srvB})
	}

	const (
		producers    = 2
		passes       = 30
		flowsPerProd = 256
	)
	var wg, ctlWg sync.WaitGroup
	var prodDone atomic.Bool

	// Control plane: hammer every mutation path through the publisher for
	// as long as the producers are forwarding (bounded for safety), so
	// epoch churn genuinely overlaps shard processing even on one core.
	ctlWg.Add(1)
	go func() {
		defer ctlWg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; !prodDone.Load() && i < 1_000_000; i++ {
			vi := rng.Intn(numVMs)
			switch rng.Intn(6) {
			case 0:
				pl.AttachVM(vmKeys[vi], planeRuleSet(rng, 3, vmKeys[vi].IP))
			case 1:
				pl.SetTunnel(rules.TunnelMapping{Tenant: 3, VMIP: remote(rng.Intn(4)), Remote: srvB})
			case 2:
				pl.RemoveTunnel(3, remote(rng.Intn(4)))
			case 3:
				pl.SetVIFLimit(vmKeys[vi], float64(1+rng.Intn(100))*1e9) // high: shape rarely
			case 4:
				pl.SetNICPlacements([]rules.Pattern{{Tenant: 3, Src: vmKeys[vi].IP, SrcPrefix: 32}})
			default:
				pl.Invalidate(rules.Pattern{Tenant: 3})
			}
		}
	}()

	// Data plane: each producer owns its injector and packet buffers, and
	// barriers between passes before resubmitting them.
	sent := make([]uint64, producers)
	for pr := 0; pr < producers; pr++ {
		pr := pr
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + pr)))
			var keys []VMKey
			var pkts []*packet.Packet
			for i := 0; i < flowsPerProd; i++ {
				src := vmKeys[rng.Intn(numVMs)]
				var dst packet.IP
				if rng.Intn(2) == 0 {
					dst = vmKeys[rng.Intn(numVMs)].IP
				} else {
					dst = remote(rng.Intn(6))
				}
				keys = append(keys, src)
				pkts = append(pkts, packet.NewTCP(3, src.IP, dst,
					uint16(40000+rng.Intn(512)), uint16(8000+rng.Intn(10)), 200))
			}
			inj := pl.NewInjector()
			for pass := 0; pass < passes; pass++ {
				for i, p := range pkts {
					inj.Egress(keys[i], p)
				}
				inj.Flush()
				pl.Barrier()
				sent[pr] += uint64(len(pkts))
			}
		}()
	}
	wg.Wait()
	prodDone.Store(true)
	ctlWg.Wait()
	pl.Barrier()

	c := pl.Counters()
	var want uint64
	for _, n := range sent {
		want += n
	}
	if c.Packets != want {
		t.Fatalf("processed %d packets, submitted %d", c.Packets, want)
	}
	if acc := c.Tx + c.Denied + c.Unrouted + c.Drops.Total(); acc != c.Packets {
		t.Fatalf("conservation violated under churn: %+v", c)
	}
	if c.EpochFlushes == 0 {
		t.Fatal("churn never triggered a shard epoch flush")
	}
}
