package vswitch

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/packet"
	"repro/internal/rules"
)

// benchPlaneWorkload is one producer's pre-built packet set: resubmitting
// the same buffers every pass (with a Barrier in between) keeps the
// benchmark loop allocation-free, so ns/op measures the pipeline, not
// the harness.
type benchPlaneWorkload struct {
	keys []VMKey
	pkts []*packet.Packet
}

// newBenchPlane builds a standalone plane with a realistic table shape:
// 8 VMs with randomized port/QoS rule sets, 4 VXLAN peers, and a high
// (never-dropping) VIF limit so every packet crosses the whole pipeline
// — classify, megaflow, shape, encap — not a short-circuit of it.
func newBenchPlane(shards, producers, flowsPerProd int) (*ShardedPlane, []benchPlaneWorkload) {
	pl := NewShardedPlane(PlaneConfig{Shards: shards, Tunneling: true, ServerIP: srvA})
	rng := rand.New(rand.NewSource(7))
	const numVMs = 8
	var vmKeys []VMKey
	for i := 0; i < numVMs; i++ {
		key := VMKey{Tenant: 3, IP: packet.MakeIP(10, 0, 0, byte(1+i))}
		vmKeys = append(vmKeys, key)
		pl.AttachVM(key, planeRuleSet(rng, 3, key.IP))
		pl.SetVIFLimit(key, 100e9) // exercise shaping without drops
	}
	remote := func(i int) packet.IP { return packet.MakeIP(10, 0, 9, byte(i)) }
	for i := 0; i < 4; i++ {
		pl.SetTunnel(rules.TunnelMapping{Tenant: 3, VMIP: remote(i), Remote: srvB})
	}
	loads := make([]benchPlaneWorkload, producers)
	for pr := range loads {
		prng := rand.New(rand.NewSource(int64(100 + pr)))
		w := benchPlaneWorkload{}
		for i := 0; i < flowsPerProd; i++ {
			src := vmKeys[prng.Intn(numVMs)]
			var dst packet.IP
			if prng.Intn(4) == 0 {
				dst = vmKeys[prng.Intn(numVMs)].IP // local delivery
			} else {
				dst = remote(prng.Intn(4)) // VXLAN encap
			}
			w.keys = append(w.keys, src)
			w.pkts = append(w.pkts, packet.NewTCP(3, src.IP, dst,
				uint16(40000+prng.Intn(512)), uint16(8000+prng.Intn(10)), 256))
		}
		loads[pr] = w
	}
	return pl, loads
}

// benchPipeline drives b.N packets through the whole pipeline and
// reports pps and pps/core. shards==1 is the inline deterministic mode
// (producer goroutine does the processing); shards>1 spawns one producer
// per shard against the worker ring. Producers barrier between passes
// before resubmitting their packet buffers, matching the reuse protocol
// real callers follow.
//
// pps/core divides by min(shards, GOMAXPROCS) — the number of cores the
// shard workers can actually occupy — so the number stays honest on
// runners with fewer cores than shards.
func benchPipeline(b *testing.B, shards int) {
	const flowsPerProd = 1024
	producers := shards
	pl, loads := newBenchPlane(shards, producers, flowsPerProd)
	defer pl.Close()

	// Warm: one full pass per producer installs exact-cache entries and
	// primes the encap pools before the clock starts.
	injs := make([]*PlaneInjector, producers)
	for pr := range injs {
		injs[pr] = pl.NewInjector()
		for i := range loads[pr].pkts {
			injs[pr].Egress(loads[pr].keys[i], loads[pr].pkts[i])
		}
		injs[pr].Flush()
	}
	pl.Barrier()

	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for pr := 0; pr < producers; pr++ {
		share := b.N / producers
		if pr < b.N%producers {
			share++
		}
		if share == 0 {
			continue
		}
		pr, share := pr, share
		wg.Add(1)
		go func() {
			defer wg.Done()
			w, inj := loads[pr], injs[pr]
			for sent := 0; sent < share; {
				n := len(w.pkts)
				if share-sent < n {
					n = share - sent
				}
				for i := 0; i < n; i++ {
					inj.Egress(w.keys[i], w.pkts[i])
				}
				inj.Flush()
				pl.Barrier() // packet buffers are about to be reused
				sent += n
			}
		}()
	}
	wg.Wait()
	b.StopTimer()

	cores := runtime.GOMAXPROCS(0)
	if shards < cores {
		cores = shards
	}
	pps := float64(b.N) / b.Elapsed().Seconds()
	b.ReportMetric(pps, "pps")
	b.ReportMetric(pps/float64(cores), "pps/core")

	c := pl.Counters()
	if c.Packets == 0 || c.Tx+c.Denied+c.Unrouted+c.Drops.Total() != c.Packets {
		b.Fatalf("conservation violated in benchmark: %+v", c)
	}
}

// BenchmarkPipeline measures whole-pipeline forwarding rate. pps-per-core
// is the headline single-core number (inline mode, one goroutine);
// shards={1,2,4,8} is the scaling curve recorded in BENCH_BASELINE —
// near-flat on a single-core runner, and expected ≳3x at shards=4 on a
// 4+-core machine since shards share no locks or cache lines. (key=value
// sub-names, matching BenchmarkTupleSpaceScaling: a trailing -N is the
// GOMAXPROCS suffix in the benchmark text format and would be stripped.)
func BenchmarkPipeline(b *testing.B) {
	b.Run("pps-per-core", func(b *testing.B) { benchPipeline(b, 1) })
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) { benchPipeline(b, n) })
	}
}
