package vswitch

import (
	"testing"

	"repro/internal/model"
	"repro/internal/packet"
	"repro/internal/rules"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// TestFastPathAllocsWithTelemetryDisabled is the observability overhead
// gate the doc comment in telemetry.go promises: with the flight-recorder
// hooks compiled into the switch but no recorder attached (SetRecorder
// never called / called with nil), the warm per-packet classification
// path must stay exactly 0 allocs/op. It runs as a regular test — not an
// advisory benchmark — so a hook that builds an Event value outside its
// nil guard fails CI loudly.
func TestFastPathAllocsWithTelemetryDisabled(t *testing.T) {
	sw, _ := benchSwitch(1000)
	sw.SetRecorder(nil) // explicit: telemetry compiled in, detached
	dst := packet.MustParseIP("10.0.9.9")
	key := func(i int) packet.FlowKey {
		return packet.FlowKey{
			Tenant: 3, Src: vmA.IP, Dst: dst,
			SrcPort: uint16(40000 + i%1000),
			DstPort: uint16(1024 + i%40000),
			Proto:   packet.ProtoTCP,
		}
	}

	// Warm the wildcard cache: one slow-path evaluation's mask covers the
	// whole port space, and an exact entry covers key(0) precisely.
	v, mask := sw.evaluate(key(0))
	sw.mega.install(key(0), mask, v, 0)
	sw.fastpath.Install(key(0), v)

	t.Run("megaflow-hit", func(t *testing.T) {
		i := 0
		if n := testing.AllocsPerRun(1000, func() {
			i++
			if _, ok := sw.mega.lookup(key(i), 0); !ok {
				t.Fatal("megaflow miss on warmed region")
			}
		}); n != 0 {
			t.Fatalf("warm megaflow hit allocates %v/op with telemetry disabled, want 0", n)
		}
	})
	t.Run("exact-hit", func(t *testing.T) {
		if n := testing.AllocsPerRun(1000, func() {
			if e := sw.fastpath.Lookup(key(0)); e == nil {
				t.Fatal("exact miss on installed key")
			}
		}); n != 0 {
			t.Fatalf("exact fast-path hit allocates %v/op with telemetry disabled, want 0", n)
		}
	})
	t.Run("slow-path-evaluate", func(t *testing.T) {
		i := 0
		if n := testing.AllocsPerRun(1000, func() {
			i++
			sw.evaluate(key(i))
		}); n != 0 {
			t.Fatalf("tuple-space evaluate allocates %v/op with telemetry disabled, want 0", n)
		}
	})
}

// TestVectorPipelineAllocs is the batched-path gate: a warm vector of 32
// packets through the sharded plane's full pipeline — flow-key
// extraction, exact/megaflow classification, VXLAN encap, wire
// serialization — must stay exactly 0 allocs per vector, with and
// without a flight recorder attached. The steady state reuses the
// injector's pooled vector, the shard's scratch arrays and wire buffer,
// and the encap outer-packet pool; anything that breaks that shows up
// here as a hard failure, not a benchmark regression.
func TestVectorPipelineAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under -race; the pooled pipeline cannot be 0-alloc there")
	}
	build := func(withTelemetry bool) (*ShardedPlane, *PlaneInjector, []VMKey, []*packet.Packet) {
		eng := sim.NewEngine(1)
		sw, _ := newSwitch(eng, model.VSwitchConfig{Tunneling: true}, &capture{})
		r := &rules.VMRules{Tenant: 3, VMIP: vmA.IP, Security: []rules.SecurityRule{
			{Pattern: rules.Pattern{Tenant: 3, Proto: packet.ProtoTCP}, Action: rules.Allow, Priority: 1},
		}}
		attach(sw, vmA, r)
		dst := packet.MustParseIP("10.0.9.9")
		sw.SetTunnel(rules.TunnelMapping{Tenant: 3, VMIP: dst, Remote: srvB})
		pl := sw.EnableShardedPlane(PlaneConfig{Shards: 1})
		if withTelemetry {
			rec := telemetry.NewRecorder(eng.Now, telemetry.Config{})
			pl.SetRecorder(rec.Scope("plane"))
		}
		inj := pl.NewInjector()
		keys := make([]VMKey, packet.DefaultVectorSize)
		pkts := make([]*packet.Packet, packet.DefaultVectorSize)
		for i := range pkts {
			keys[i] = vmA
			pkts[i] = packet.NewTCP(3, vmA.IP, dst, uint16(40000+i), 80, 256)
		}
		return pl, inj, keys, pkts
	}
	vector := func(inj *PlaneInjector, keys []VMKey, pkts []*packet.Packet) {
		for i := range pkts {
			inj.Egress(keys[i], pkts[i])
		}
		inj.Flush()
	}
	for _, tc := range []struct {
		name          string
		withTelemetry bool
	}{
		{"telemetry-detached", false},
		{"telemetry-attached", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pl, inj, keys, pkts := build(tc.withTelemetry)
			// Warm: installs exact entries, the megaflow, and primes the
			// encap and wire-buffer pools.
			vector(inj, keys, pkts)
			vector(inj, keys, pkts)
			before := pl.Counters()
			if n := testing.AllocsPerRun(100, func() { vector(inj, keys, pkts) }); n != 0 {
				t.Fatalf("warm 32-packet vector allocates %v/op (%s), want 0", n, tc.name)
			}
			c := pl.Counters()
			if got := c.Packets - before.Packets; got == 0 || c.Tx != c.Packets {
				t.Fatalf("gate did no work: before %+v after %+v", before, c)
			}
		})
	}
}
