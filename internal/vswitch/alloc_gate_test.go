package vswitch

import (
	"testing"

	"repro/internal/packet"
)

// TestFastPathAllocsWithTelemetryDisabled is the observability overhead
// gate the doc comment in telemetry.go promises: with the flight-recorder
// hooks compiled into the switch but no recorder attached (SetRecorder
// never called / called with nil), the warm per-packet classification
// path must stay exactly 0 allocs/op. It runs as a regular test — not an
// advisory benchmark — so a hook that builds an Event value outside its
// nil guard fails CI loudly.
func TestFastPathAllocsWithTelemetryDisabled(t *testing.T) {
	sw, _ := benchSwitch(1000)
	sw.SetRecorder(nil) // explicit: telemetry compiled in, detached
	dst := packet.MustParseIP("10.0.9.9")
	key := func(i int) packet.FlowKey {
		return packet.FlowKey{
			Tenant: 3, Src: vmA.IP, Dst: dst,
			SrcPort: uint16(40000 + i%1000),
			DstPort: uint16(1024 + i%40000),
			Proto:   packet.ProtoTCP,
		}
	}

	// Warm the wildcard cache: one slow-path evaluation's mask covers the
	// whole port space, and an exact entry covers key(0) precisely.
	v, mask := sw.evaluate(key(0))
	sw.mega.install(key(0), mask, v, 0)
	sw.fastpath.Install(key(0), v)

	t.Run("megaflow-hit", func(t *testing.T) {
		i := 0
		if n := testing.AllocsPerRun(1000, func() {
			i++
			if _, ok := sw.mega.lookup(key(i), 0); !ok {
				t.Fatal("megaflow miss on warmed region")
			}
		}); n != 0 {
			t.Fatalf("warm megaflow hit allocates %v/op with telemetry disabled, want 0", n)
		}
	})
	t.Run("exact-hit", func(t *testing.T) {
		if n := testing.AllocsPerRun(1000, func() {
			if e := sw.fastpath.Lookup(key(0)); e == nil {
				t.Fatal("exact miss on installed key")
			}
		}); n != 0 {
			t.Fatalf("exact fast-path hit allocates %v/op with telemetry disabled, want 0", n)
		}
	})
	t.Run("slow-path-evaluate", func(t *testing.T) {
		i := 0
		if n := testing.AllocsPerRun(1000, func() {
			i++
			sw.evaluate(key(i))
		}); n != 0 {
			t.Fatalf("tuple-space evaluate allocates %v/op with telemetry disabled, want 0", n)
		}
	})
}
