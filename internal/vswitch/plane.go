// Sharded data plane: the vswitch's throughput mode. The deterministic
// discrete-event path (vswitch.go) processes one packet at a time on the
// sim's single logical core; the ShardedPlane runs the same
// classification semantics across N worker goroutines, RSS-style — flows
// are sharded by FastHash(FlowKey) % N, each shard owns a private exact
// cache and megaflow cache (no locks on the hot path), and packets move
// in pooled vectors (~32) so per-packet overheads amortize per batch.
//
// Control-plane mutations (rule installs, invalidations, VM
// attach/detach, tunnel updates, VIF limits, NIC placements) never touch
// shard state directly: they rebuild an immutable snapshot and publish it
// through an RCU-style atomic pointer swap (rules.EpochPublisher). Shards
// pick the new epoch up at vector boundaries and flush their private
// caches — invalidation correctness is per-shard flush on epoch change,
// never a cross-shard lock.
//
// With Shards <= 1 the plane runs inline on the caller's goroutine: no
// worker goroutines, no channels, fully deterministic — the mode the
// sim/experiment/chaos harness keeps as default.
package vswitch

import (
	"time"

	"sync"

	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/ratelimit"
	"repro/internal/rules"
	"repro/internal/sketch"
	"repro/internal/telemetry"
)

// DefaultPlaneRingDepth is the per-shard input queue depth, in vectors.
// Producers block when a shard's ring fills — backpressure, not loss.
const DefaultPlaneRingDepth = 256

// PlaneConfig configures a sharded data plane.
type PlaneConfig struct {
	// Shards is the worker count. <= 1 selects the inline deterministic
	// single-shard mode (no goroutines); > 1 spawns that many workers.
	Shards int
	// VectorSize is the target batch size (default
	// packet.DefaultVectorSize, clamped to packet.MaxVectorSize).
	VectorSize int
	// RingDepth is the per-shard input queue depth in vectors (default
	// DefaultPlaneRingDepth).
	RingDepth int
	// ServerIP is the VXLAN tunnel source address.
	ServerIP packet.IP
	// Tunneling enables VXLAN encap toward remote servers (the
	// multi-tenant configuration).
	Tunneling bool
	// Now supplies the shaping clock; nil uses wall time since plane
	// construction. The sim passes its virtual clock so the inline mode
	// stays deterministic even with VIF limits configured.
	Now func() time.Duration
	// OnVerdict, when set, observes every packet's classification outcome
	// from the owning shard's goroutine (differential tests). It must not
	// block and must be safe for concurrent invocation across shards.
	OnVerdict func(shard int, k packet.FlowKey, allow bool, queue int)
}

func (c PlaneConfig) normalized() PlaneConfig {
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.VectorSize <= 0 {
		c.VectorSize = packet.DefaultVectorSize
	}
	if c.VectorSize > packet.MaxVectorSize {
		c.VectorSize = packet.MaxVectorSize
	}
	if c.RingDepth <= 0 {
		c.RingDepth = DefaultPlaneRingDepth
	}
	return c
}

// planeTables is one immutable epoch of everything a shard consults. All
// fields are read-only after publication.
type planeTables struct {
	vms     map[VMKey]*rules.CompiledVM
	tunnels *rules.TunnelView
	// nic indexes NIC-placed patterns for the NIC-first egress check;
	// nil when the host has no SmartNIC placements.
	nic  *rules.TupleSpace[int]
	nicN int
	// limits holds per-VIF egress rates in bps (htb split across shards).
	limits map[VMKey]float64
}

// evaluate mirrors Switch.evaluate on the compiled snapshot: verdict from
// the rules of the local endpoint VMs, source endpoint first, denying if
// any rule-bearing endpoint denies, plus the consulted-field mask union.
func (t *planeTables) evaluate(k packet.FlowKey) (fpVerdict, rules.FieldMask) {
	verdict := fpVerdict{allow: true}
	mask := rules.FieldMask{Tenant: true, SrcPrefix: 32, DstPrefix: 32}
	for _, ip := range [2]packet.IP{k.Src, k.Dst} {
		c, ok := t.vms[VMKey{Tenant: k.Tenant, IP: ip}]
		if !ok || !c.HasRules() {
			continue
		}
		a, m := c.EvaluateMask(k)
		mask = mask.Union(m)
		if a != rules.Allow {
			return fpVerdict{}, mask
		}
		q, qm := c.QueueForMask(k)
		mask = mask.Union(qm)
		if q > verdict.queue {
			verdict.queue = q
		}
	}
	return verdict, mask
}

// PlaneCounters is the merged per-shard counter snapshot. Every packet
// submitted to the plane lands in exactly one of Tx, Denied, Unrouted or
// Drops, so conservation equations close exactly: Packets == Tx + Denied
// + Unrouted + Drops.Total().
type PlaneCounters struct {
	// Vectors and Packets count processed batches and packets.
	Vectors, Packets uint64
	// Tx counts packets transmitted: encapsulated toward the fabric,
	// delivered locally, or claimed by NIC-first egress. LocalTx and
	// NICTx are its sub-counters.
	Tx, LocalTx, NICTx uint64
	// Denied counts packets rejected by security rules; Unrouted packets
	// with no source vport or tunnel mapping.
	Denied, Unrouted uint64
	// EpochFlushes counts per-shard cache flushes taken on epoch changes.
	EpochFlushes uint64
	// Drops is the per-cause intentional-drop accounting (Shape only:
	// the plane classifies misses inline, so there is no upcall queue).
	Drops metrics.DropCounters
	// Megaflow is the merged per-shard wildcard-cache accounting.
	Megaflow metrics.CacheCounters
}

// Add returns the element-wise sum.
func (c PlaneCounters) Add(o PlaneCounters) PlaneCounters {
	c.Vectors += o.Vectors
	c.Packets += o.Packets
	c.Tx += o.Tx
	c.LocalTx += o.LocalTx
	c.NICTx += o.NICTx
	c.Denied += o.Denied
	c.Unrouted += o.Unrouted
	c.EpochFlushes += o.EpochFlushes
	c.Drops = c.Drops.Add(o.Drops)
	c.Megaflow = c.Megaflow.Add(o.Megaflow)
	return c
}

// ShardedPlane is the multi-core batch data plane.
type ShardedPlane struct {
	cfg    PlaneConfig
	pub    rules.EpochPublisher[*planeTables]
	shards []*planeShard
	inline bool
	wg     sync.WaitGroup
	start  time.Time
	closed bool

	// Control-plane source of truth; mu serializes mutations. Shards
	// never read these — they read published epochs.
	mu      sync.Mutex
	vms     map[VMKey]*rules.VMRules
	limits  map[VMKey]float64
	tunnels *rules.TunnelTable
	nicPats []rules.Pattern
}

// NewShardedPlane builds a plane and publishes its first (empty) epoch.
func NewShardedPlane(cfg PlaneConfig) *ShardedPlane {
	cfg = cfg.normalized()
	pl := &ShardedPlane{
		cfg:     cfg,
		inline:  cfg.Shards <= 1,
		start:   time.Now(),
		vms:     make(map[VMKey]*rules.VMRules),
		limits:  make(map[VMKey]float64),
		tunnels: rules.NewTunnelTable(),
	}
	if pl.cfg.Now == nil {
		pl.cfg.Now = func() time.Duration { return time.Since(pl.start) }
	}
	pl.pub.Publish(pl.buildTables())
	pl.shards = make([]*planeShard, cfg.Shards)
	for i := range pl.shards {
		pl.shards[i] = newPlaneShard(pl, i)
	}
	if !pl.inline {
		for _, sh := range pl.shards {
			pl.wg.Add(1)
			go sh.run()
		}
	}
	return pl
}

// Shards returns the worker count (1 in inline mode).
func (pl *ShardedPlane) Shards() int { return len(pl.shards) }

// Inline reports whether the plane runs deterministically on the caller's
// goroutine.
func (pl *ShardedPlane) Inline() bool { return pl.inline }

// EpochSeq returns the current published epoch sequence.
func (pl *ShardedPlane) EpochSeq() uint64 { return pl.pub.Load().Seq }

// EnableSketch attaches one accountant shard to each plane shard: every
// classified packet is then Observe()d on the owning shard's sketch with
// no cross-shard synchronization. The accountant must have been built
// with New(cfg, pl.Shards()); reading merged estimates follows the same
// quiescence contract as FlowSnapshot (after Barrier or Close, or in
// inline mode). Call before submitting traffic — shards read sk without
// locks.
func (pl *ShardedPlane) EnableSketch(acct *sketch.Accountant) {
	if acct.Shards() != len(pl.shards) {
		panic("vswitch: accountant shard count must match plane shards")
	}
	for i, sh := range pl.shards {
		sh.sk = acct.Shard(i)
	}
}

// buildTables compiles the control-plane state into an immutable
// snapshot. Caller holds mu (or has exclusive access at construction).
func (pl *ShardedPlane) buildTables() *planeTables {
	t := &planeTables{
		vms:     make(map[VMKey]*rules.CompiledVM, len(pl.vms)),
		tunnels: pl.tunnels.Snapshot(),
		limits:  make(map[VMKey]float64, len(pl.limits)),
	}
	for k, r := range pl.vms {
		t.vms[k] = r.Compile()
	}
	for k, bps := range pl.limits {
		t.limits[k] = bps
	}
	if len(pl.nicPats) > 0 {
		t.nic = rules.NewTupleSpace[int]()
		for _, p := range pl.nicPats {
			t.nic.Insert(p, 0, 0)
		}
		t.nicN = len(pl.nicPats)
	}
	return t
}

// publishLocked rebuilds and publishes the next epoch. Caller holds mu.
func (pl *ShardedPlane) publishLocked() {
	pl.pub.Publish(pl.buildTables())
}

// AttachVM publishes a VM attachment. The rules pointer is compiled at
// publish time; later in-place mutations of it require a fresh AttachVM
// or Invalidate call to take effect (the Switch mutators do this).
func (pl *ShardedPlane) AttachVM(key VMKey, r *rules.VMRules) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if r == nil {
		r = &rules.VMRules{Tenant: key.Tenant, VMIP: key.IP}
	}
	pl.vms[key] = r
	pl.publishLocked()
}

// DetachVM publishes a VM removal.
func (pl *ShardedPlane) DetachVM(key VMKey) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	delete(pl.vms, key)
	delete(pl.limits, key)
	pl.publishLocked()
}

// SetTunnel publishes a tunnel mapping install/update.
func (pl *ShardedPlane) SetTunnel(m rules.TunnelMapping) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	pl.tunnels.Set(m)
	pl.publishLocked()
}

// RemoveTunnel publishes a tunnel mapping removal.
func (pl *ShardedPlane) RemoveTunnel(tenant packet.TenantID, vmIP packet.IP) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	pl.tunnels.Remove(tenant, vmIP)
	pl.publishLocked()
}

// SetVIFLimit publishes a VIF egress rate (0 removes the limit). Each
// shard enforces bps/Shards — the multi-queue htb split.
func (pl *ShardedPlane) SetVIFLimit(key VMKey, egressBps float64) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if egressBps > 0 {
		pl.limits[key] = egressBps
	} else {
		delete(pl.limits, key)
	}
	pl.publishLocked()
}

// SetNICPlacements publishes the SmartNIC-placed pattern set for the
// NIC-first egress check; flows covered by a placement bypass software
// shaping and encap.
func (pl *ShardedPlane) SetNICPlacements(pats []rules.Pattern) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	pl.nicPats = append(pl.nicPats[:0], pats...)
	pl.publishLocked()
}

// Invalidate publishes a new epoch for a rule change covering p. The
// pattern itself is not consulted: epoch pickup flushes every shard's
// private caches wholesale, which is trivially sound (and cheap — a
// shard's caches rebuild from the new epoch within a few vectors).
func (pl *ShardedPlane) Invalidate(p rules.Pattern) {
	_ = p
	pl.mu.Lock()
	defer pl.mu.Unlock()
	pl.publishLocked()
}

// NewInjector returns a producer-side handle that batches packets into
// per-shard vectors. Each producer goroutine must own its injector;
// injectors are not safe for concurrent use.
func (pl *ShardedPlane) NewInjector() *PlaneInjector {
	return &PlaneInjector{pl: pl, cur: make([]*packet.Vector, len(pl.shards))}
}

// Barrier blocks until every shard has drained all vectors enqueued
// before the call (callers flush their injectors first). In inline mode
// it is a no-op: processing is synchronous.
func (pl *ShardedPlane) Barrier() {
	if pl.inline {
		return
	}
	dones := make([]chan struct{}, len(pl.shards))
	for i, sh := range pl.shards {
		dones[i] = make(chan struct{})
		sh.in <- shardMsg{done: dones[i]}
	}
	for _, d := range dones {
		<-d
	}
}

// Close drains and stops the workers. All injectors must be flushed and
// retired before Close; submitting afterwards panics (send on closed
// channel). Idempotent.
func (pl *ShardedPlane) Close() {
	if pl.closed {
		return
	}
	pl.closed = true
	if pl.inline {
		return
	}
	for _, sh := range pl.shards {
		close(sh.in)
	}
	pl.wg.Wait()
}

// Counters returns the merged per-shard counter snapshot. Counters are
// published atomically at vector boundaries, so a live read is internally
// consistent per shard; for an exact whole-plane snapshot, call after
// Barrier (or Close).
func (pl *ShardedPlane) Counters() PlaneCounters {
	var out PlaneCounters
	for _, sh := range pl.shards {
		out = out.Add(sh.snap.snapshot())
	}
	return out
}

// PlaneFlowStat is one flow's merged fast-path accounting.
type PlaneFlowStat struct {
	Key     packet.FlowKey
	Allow   bool
	Queue   int
	Packets uint64
	Bytes   uint64
}

// FlowSnapshot merges every shard's exact-cache entries. Only valid when
// no vectors are in flight (after Barrier or Close, or in inline mode) —
// it walks shard-private maps.
func (pl *ShardedPlane) FlowSnapshot() []PlaneFlowStat {
	var out []PlaneFlowStat
	for _, sh := range pl.shards {
		for k, f := range sh.exact {
			out = append(out, PlaneFlowStat{
				Key: k, Allow: f.v.allow, Queue: f.v.queue,
				Packets: f.pkts, Bytes: f.bytes,
			})
		}
	}
	return out
}

// ActiveFlows returns the summed exact-cache population (same validity
// contract as FlowSnapshot).
func (pl *ShardedPlane) ActiveFlows() int {
	n := 0
	for _, sh := range pl.shards {
		n += len(sh.exact)
	}
	return n
}

// SetRecorder attaches a flight-recorder scope to the inline shard.
// Worker-mode planes ignore it: the recorder's event sequencing is not
// concurrency-safe, so multi-shard telemetry is counters merged at
// snapshot, not per-event traces.
func (pl *ShardedPlane) SetRecorder(rec *telemetry.Scoped) {
	if !pl.inline {
		return
	}
	pl.shards[0].rec = rec
}

// RegisterMetrics registers the plane's merged counters with the central
// registry under fastrak_plane_* names. Gauges read the per-shard atomic
// mirrors, so sampling a running plane is race-free.
func (pl *ShardedPlane) RegisterMetrics(reg *telemetry.Registry, labels ...string) {
	if reg == nil {
		return
	}
	lbl := func(extra ...string) []string {
		return append(append([]string(nil), labels...), extra...)
	}
	g := func(name, help string, f func(PlaneCounters) uint64, extra ...string) {
		reg.Gauge(name, help, func() float64 { return float64(f(pl.Counters())) }, lbl(extra...)...)
	}
	reg.Gauge("fastrak_plane_shards", "sharded data plane worker count", func() float64 { return float64(len(pl.shards)) }, lbl()...)
	g("fastrak_plane_vectors_total", "packet vectors processed", func(c PlaneCounters) uint64 { return c.Vectors })
	g("fastrak_plane_packets_total", "packets processed", func(c PlaneCounters) uint64 { return c.Packets })
	g("fastrak_plane_tx_total", "packets transmitted (wire + local + NIC)", func(c PlaneCounters) uint64 { return c.Tx })
	g("fastrak_plane_nic_tx_total", "packets claimed by NIC-first egress", func(c PlaneCounters) uint64 { return c.NICTx })
	g("fastrak_plane_denied_total", "packets rejected by security rules", func(c PlaneCounters) uint64 { return c.Denied })
	g("fastrak_plane_unrouted_total", "packets with no vport or tunnel", func(c PlaneCounters) uint64 { return c.Unrouted })
	g("fastrak_plane_drops_total", "intentional drops by cause", func(c PlaneCounters) uint64 { return c.Drops.Shape }, "cause=shape")
	g("fastrak_plane_epoch_flushes_total", "per-shard cache flushes on epoch change", func(c PlaneCounters) uint64 { return c.EpochFlushes })
	g("fastrak_plane_megaflow_hits_total", "merged megaflow cache hits", func(c PlaneCounters) uint64 { return c.Megaflow.Hits })
	g("fastrak_plane_megaflow_misses_total", "merged megaflow cache misses", func(c PlaneCounters) uint64 { return c.Megaflow.Misses })
}

// PlaneInjector batches a single producer's packets into per-shard
// vectors and submits full ones. Not safe for concurrent use: one
// injector per producer goroutine.
type PlaneInjector struct {
	pl  *ShardedPlane
	cur []*packet.Vector
}

// Egress submits a packet a VM sends through its VIF: the packet is
// stamped with the tenant, routed to its flow's shard by
// FastHash(FlowKey) % N, and processed when the shard's pending vector
// fills (or at the next Flush).
func (in *PlaneInjector) Egress(key VMKey, p *packet.Packet) {
	p.Tenant = key.Tenant
	sh := 0
	if n := len(in.pl.shards); n > 1 {
		sh = int(p.Key().FastHash() % uint64(n))
	}
	v := in.cur[sh]
	if v == nil {
		v = packet.GetVector(in.pl.cfg.VectorSize)
		in.cur[sh] = v
	}
	if v.Append(p, in.pl.cfg.VectorSize) {
		in.flushShard(sh)
	}
}

// Flush submits every pending partial vector.
func (in *PlaneInjector) Flush() {
	for i := range in.cur {
		in.flushShard(i)
	}
}

func (in *PlaneInjector) flushShard(i int) {
	v := in.cur[i]
	if v == nil || v.Len() == 0 {
		return
	}
	if in.pl.inline {
		// Inline mode: process synchronously on the caller's goroutine
		// and reuse the vector — the steady state allocates nothing.
		in.pl.shards[0].process(v)
		v.Reset()
		return
	}
	in.pl.shards[i].in <- shardMsg{vec: v}
	in.cur[i] = nil
}

// EnableShardedPlane builds a sharded data plane mirroring this switch's
// current rule state (vports, tunnels, VIF limits) and keeps it in sync:
// from now on every control-plane mutation on the Switch (AttachVM,
// DetachVM, SetTunnel, RemoveTunnel, SetVIFLimits, Invalidate) also
// republishes the plane's epoch. The deterministic sim path is untouched
// — the plane is a parallel wall-clock engine fed through injectors.
//
// Config defaults taken from the switch: ServerIP, Tunneling, and (when
// cfg.Now is nil) the sim's virtual clock, so the inline single-shard
// mode stays deterministic even with shaping enabled.
func (s *Switch) EnableShardedPlane(cfg PlaneConfig) *ShardedPlane {
	if s.plane != nil {
		return s.plane
	}
	if cfg.ServerIP == 0 {
		cfg.ServerIP = s.serverIP
	}
	if !cfg.Tunneling {
		cfg.Tunneling = s.cfg.Tunneling
	}
	if cfg.Now == nil {
		cfg.Now = s.eng.Now
	}
	pl := NewShardedPlane(cfg)
	// Seed from the current control-plane state in one batch, then a
	// single publish.
	pl.mu.Lock()
	for key, vp := range s.vports {
		r := vp.rules
		if r == nil {
			r = &rules.VMRules{Tenant: key.Tenant, VMIP: key.IP}
		}
		pl.vms[key] = r
		if s.cfg.RateLimitBps > 0 {
			pl.limits[key] = s.cfg.RateLimitBps
		}
	}
	s.tunnels.Each(func(m rules.TunnelMapping) { pl.tunnels.Set(m) })
	pl.publishLocked()
	pl.mu.Unlock()
	s.plane = pl
	return pl
}

// Plane returns the switch's sharded data plane, or nil when only the
// deterministic path is enabled.
func (s *Switch) Plane() *ShardedPlane { return s.plane }

// bucketFor returns the shard-local token bucket enforcing key's VIF
// limit, creating it on first use at rate bps/Shards.
func (sh *planeShard) bucketFor(key VMKey, bps float64, now time.Duration) *ratelimit.TokenBucket {
	if b, ok := sh.buckets[key]; ok {
		return b
	}
	share := bps / float64(len(sh.plane.shards))
	b := makeBucket(nil, now, share)
	sh.buckets[key] = b
	return b
}
