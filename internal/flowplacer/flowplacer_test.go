package flowplacer

import (
	"testing"
	"time"

	"repro/internal/openflow"
	"repro/internal/packet"
	"repro/internal/rules"
)

var memcachedKey = packet.FlowKey{
	Src: packet.MustParseIP("10.0.0.1"), Dst: packet.MustParseIP("10.0.0.2"),
	SrcPort: 40000, DstPort: 11211, Proto: packet.ProtoTCP, Tenant: 3,
}

func flowModAdd(p rules.Pattern, out openflow.Path, prio uint16) *openflow.FlowMod {
	return &openflow.FlowMod{Command: openflow.FlowAdd, Pattern: p, Out: out, Priority: prio}
}

func place(pl *Placer, k packet.FlowKey) openflow.Path {
	return pl.Place(packet.FromKey(k, 100), time.Second)
}

func TestDefaultPathIsVIF(t *testing.T) {
	pl := New()
	if got := place(pl, memcachedKey); got != openflow.PathVIF {
		t.Errorf("default path = %v, want vif", got)
	}
}

func TestDataPlaneCachesDecision(t *testing.T) {
	pl := New()
	place(pl, memcachedKey)
	if pl.Misses() != 1 {
		t.Fatalf("misses = %d, want 1", pl.Misses())
	}
	for i := 0; i < 10; i++ {
		place(pl, memcachedKey)
	}
	if pl.Misses() != 1 {
		t.Errorf("misses = %d after cached lookups, want 1", pl.Misses())
	}
	if pl.ActiveFlows() != 1 {
		t.Errorf("active flows = %d", pl.ActiveFlows())
	}
}

func TestFlowModRedirectsFlows(t *testing.T) {
	pl := New()
	agg := rules.AggregatePattern(memcachedKey.IngressAggregate())
	pl.HandleMessage(flowModAdd(agg, openflow.PathVF, 10), 1, nil)
	if got := place(pl, memcachedKey); got != openflow.PathVF {
		t.Errorf("path = %v, want vf", got)
	}
	// Unrelated flow stays on VIF.
	other := memcachedKey
	other.DstPort = 22
	if got := place(pl, other); got != openflow.PathVIF {
		t.Errorf("unrelated path = %v, want vif", got)
	}
}

func TestFlowModMigratesActiveFlow(t *testing.T) {
	// The Table 4 / Fig 12 mechanism: an active flow's cached exact
	// entry must be invalidated when a covering wildcard arrives, so
	// its next packet re-classifies onto the new path.
	pl := New()
	place(pl, memcachedKey) // cached on VIF
	agg := rules.AggregatePattern(memcachedKey.IngressAggregate())
	pl.HandleMessage(flowModAdd(agg, openflow.PathVF, 10), 1, nil)
	if got := place(pl, memcachedKey); got != openflow.PathVF {
		t.Errorf("active flow not migrated: %v", got)
	}
	// Demotion: delete the rule, flow returns to VIF.
	pl.HandleMessage(&openflow.FlowMod{Command: openflow.FlowDelete, Pattern: agg}, 2, nil)
	if got := place(pl, memcachedKey); got != openflow.PathVIF {
		t.Errorf("demoted flow path = %v, want vif", got)
	}
}

func TestFlowModReplacesSamePattern(t *testing.T) {
	pl := New()
	agg := rules.AggregatePattern(memcachedKey.IngressAggregate())
	pl.HandleMessage(flowModAdd(agg, openflow.PathVF, 10), 1, nil)
	pl.HandleMessage(flowModAdd(agg, openflow.PathVIF, 10), 2, nil)
	if pl.RuleCount() != 1 {
		t.Errorf("rule count = %d, want 1 (replace)", pl.RuleCount())
	}
	if got := place(pl, memcachedKey); got != openflow.PathVIF {
		t.Errorf("replaced rule not applied: %v", got)
	}
}

func TestPriorityAndSpecificity(t *testing.T) {
	pl := New()
	// Tenant-wide to VF at low priority; exact flow to VIF at high.
	pl.HandleMessage(flowModAdd(rules.TenantPattern(3), openflow.PathVF, 1), 1, nil)
	pl.HandleMessage(flowModAdd(rules.ExactPattern(memcachedKey), openflow.PathVIF, 9), 2, nil)
	if got := place(pl, memcachedKey); got != openflow.PathVIF {
		t.Errorf("high-priority exact rule lost: %v", got)
	}
	other := memcachedKey
	other.SrcPort = 50000
	if got := place(pl, other); got != openflow.PathVF {
		t.Errorf("tenant rule not applied: %v", got)
	}
}

func TestStatsReply(t *testing.T) {
	pl := New()
	for i := 0; i < 5; i++ {
		k := memcachedKey
		k.SrcPort += uint16(i)
		pl.Place(packet.FromKey(k, 1000), time.Second)
	}
	var reply *openflow.StatsReply
	pl.HandleMessage(&openflow.StatsRequest{}, 7, func(m openflow.Message, xid uint32) {
		if xid != 7 {
			t.Errorf("reply xid = %d", xid)
		}
		reply = m.(*openflow.StatsReply)
	})
	if reply == nil || len(reply.Flows) != 5 {
		t.Fatalf("stats reply = %+v", reply)
	}
	for _, f := range reply.Flows {
		if f.Packets != 1 || f.Bytes == 0 {
			t.Errorf("flow stat %+v", f)
		}
	}
}

func TestBarrierAndEcho(t *testing.T) {
	pl := New()
	var got []openflow.MsgType
	rec := func(m openflow.Message, _ uint32) { got = append(got, m.Type()) }
	pl.HandleMessage(&openflow.BarrierRequest{}, 1, rec)
	pl.HandleMessage(openflow.EchoRequest{}, 2, rec)
	if len(got) != 2 || got[0] != openflow.TypeBarrierReply || got[1] != openflow.TypeEchoReply {
		t.Errorf("replies = %v", got)
	}
}

func TestOnChangeCallback(t *testing.T) {
	pl := New()
	fired := 0
	pl.OnChange(func(p rules.Pattern, out openflow.Path) {
		fired++
		if out != openflow.PathVF {
			t.Errorf("callback out = %v", out)
		}
	})
	pl.HandleMessage(flowModAdd(rules.TenantPattern(3), openflow.PathVF, 1), 1, nil)
	if fired != 1 {
		t.Errorf("OnChange fired %d times", fired)
	}
}
