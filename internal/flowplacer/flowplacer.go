// Package flowplacer implements the flow placement module FasTrak houses
// in each VM's (modified) bonding driver (§4.1.1, §5.2): the VIF and the
// SR-IOV VF are bonded into one interface, and the placer decides per
// packet which of the two paths a flow takes.
//
// Its design mirrors Open vSwitch's split: the control plane holds
// wildcard rules installed by the FasTrak rule manager over an OpenFlow
// interface; the data plane is an exact-match hash table giving O(1)
// per-packet lookups. A data-plane miss consults the control plane and
// installs an exact rule — and "because the control plane and the data
// plane of the flow placer exist in the same kernel context, the latency
// added to the first packet is minimal".
package flowplacer

import (
	"sort"
	"time"

	"repro/internal/openflow"
	"repro/internal/packet"
	"repro/internal/rules"
)

// wildcardRule is one control-plane entry.
type wildcardRule struct {
	pattern  rules.Pattern
	priority int
	out      openflow.Path
	cookie   uint64
}

// Placer is one VM's flow placement module. It is not safe for concurrent
// use; in the testbed it runs inside the single-threaded simulation, as
// the real one runs inside the VM kernel.
type Placer struct {
	// control plane: ordered wildcard rules; default (empty) → VIF
	// ("It is configured to place flows onto the VIF path by default").
	wildcards []wildcardRule
	// data plane: exact-match hash of active flows.
	exact *rules.ExactTable[openflow.Path]
	// misses counts data-plane misses (control-plane consultations).
	misses uint64
	// onChange, if set, is invoked when a FLOW_MOD alters placement for
	// patterns that may cover active flows; the VM uses it to observe
	// migrations (Fig. 12 instrumentation).
	onChange func(p rules.Pattern, out openflow.Path)
}

// New returns a placer with an empty control plane (all flows → VIF).
func New() *Placer {
	return &Placer{exact: rules.NewExactTable[openflow.Path]()}
}

// OnChange registers a callback fired when placement rules change.
func (pl *Placer) OnChange(fn func(p rules.Pattern, out openflow.Path)) { pl.onChange = fn }

// Place returns the output path for the packet, updating the data plane
// and per-flow statistics. now is the virtual time for LastSeen.
func (pl *Placer) Place(p *packet.Packet, now time.Duration) openflow.Path {
	k := p.Key()
	if e := pl.exact.Lookup(k); e != nil {
		e.Stats.Hit(p.WireLen(), now)
		return e.Value
	}
	pl.misses++
	out := pl.classify(k)
	e := pl.exact.Install(k, out)
	e.Stats.Hit(p.WireLen(), now)
	return out
}

// classify runs the control-plane wildcard match: highest priority wins,
// specificity breaks ties, default is the VIF path.
func (pl *Placer) classify(k packet.FlowKey) openflow.Path {
	best, bestSpec := -1, -1
	out := openflow.PathVIF
	for i := range pl.wildcards {
		w := &pl.wildcards[i]
		if !w.pattern.Match(k) {
			continue
		}
		spec := w.pattern.Specificity()
		if w.priority > best || (w.priority == best && spec > bestSpec) {
			best, bestSpec, out = w.priority, spec, w.out
		}
	}
	return out
}

// HandleMessage implements openflow.Handler: FLOW_MOD programs the control
// plane, STATS_REQUEST reads data-plane counters, BARRIER_REQUEST fences.
func (pl *Placer) HandleMessage(msg openflow.Message, xid uint32, reply openflow.ReplyFunc) {
	switch m := msg.(type) {
	case *openflow.FlowMod:
		pl.applyFlowMod(m)
	case *openflow.StatsRequest:
		reply(pl.statsReply(), xid)
	case *openflow.BarrierRequest:
		reply(&openflow.BarrierReply{}, xid)
	case openflow.EchoRequest:
		reply(openflow.EchoReply{}, xid)
	case openflow.Hello:
		reply(openflow.Hello{}, xid)
	}
}

func (pl *Placer) applyFlowMod(m *openflow.FlowMod) {
	switch m.Command {
	case openflow.FlowAdd:
		// Replace any rule with the identical pattern, else append.
		replaced := false
		for i := range pl.wildcards {
			if pl.wildcards[i].pattern == m.Pattern {
				pl.wildcards[i].priority = int(m.Priority)
				pl.wildcards[i].out = m.Out
				pl.wildcards[i].cookie = m.Cookie
				replaced = true
				break
			}
		}
		if !replaced {
			pl.wildcards = append(pl.wildcards, wildcardRule{
				pattern: m.Pattern, priority: int(m.Priority), out: m.Out, cookie: m.Cookie,
			})
		}
	case openflow.FlowDelete:
		out := pl.wildcards[:0]
		for _, w := range pl.wildcards {
			if w.pattern != m.Pattern {
				out = append(out, w)
			}
		}
		pl.wildcards = out
	}
	// Invalidate exact entries the pattern covers so active flows
	// re-classify on their next packet — this is the mechanism that
	// migrates a live flow between paths (§4.1.2, §6.2).
	var stale []packet.FlowKey
	pl.exact.Entries(func(e *rules.ExactEntry[openflow.Path]) {
		if m.Pattern.Match(e.Key) {
			stale = append(stale, e.Key)
		}
	})
	for _, k := range stale {
		pl.exact.Remove(k)
	}
	if pl.onChange != nil {
		pl.onChange(m.Pattern, m.Out)
	}
}

func (pl *Placer) statsReply() *openflow.StatsReply {
	var out []openflow.FlowStat
	pl.exact.Entries(func(e *rules.ExactEntry[openflow.Path]) {
		out = append(out, openflow.FlowStat{
			Key: e.Key, Packets: e.Stats.Packets, Bytes: e.Stats.Bytes,
		})
	})
	// Deterministic order for reproducible control-plane traffic.
	sort.Slice(out, func(i, j int) bool { return out[i].Key.FastHash() < out[j].Key.FastHash() })
	// Keep the reply within the protocol's 64 KiB frame (real OpenFlow
	// splits stats into multipart replies; one frame suffices here —
	// a placer tracks one VM's active flows).
	const maxFlows = 1500
	if len(out) > maxFlows {
		out = out[:maxFlows]
	}
	return &openflow.StatsReply{Flows: out}
}

// Misses returns how many packets consulted the control plane.
func (pl *Placer) Misses() uint64 { return pl.misses }

// ActiveFlows returns the number of exact-match entries.
func (pl *Placer) ActiveFlows() int { return pl.exact.Len() }

// RuleCount returns the number of control-plane wildcard rules.
func (pl *Placer) RuleCount() int { return len(pl.wildcards) }
