// Package tor models the L3 top-of-rack switch FasTrak offloads rules
// into (§4.1.3, §4.2): VLAN-to-VRF mapping for traffic arriving from
// SR-IOV VFs, per-tenant VRF tables holding explicit-allow ACLs in a
// capacity-limited TCAM, GRE tunnel origination/termination with the
// tenant ID in the key, hardware rate limiters, and QoS queue selection on
// egress. Processing is at line rate with a fixed port-to-port latency —
// no CPU stations — which is precisely the express-lane advantage.
package tor

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/fabric"
	"repro/internal/packet"
	"repro/internal/ratelimit"
	"repro/internal/rules"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/tunnel"
)

// Direction selects a rate-limit direction at the ToR.
type Direction byte

// Rate limit directions, named from the VM's perspective (§4.1.4: FasTrak
// "enforces separate transmit and receive rate limits").
const (
	// Egress limits traffic the VM transmits through its VF.
	Egress Direction = iota
	// Ingress limits traffic received toward the VM's VF.
	Ingress
)

// vrf is one tenant's virtual routing and forwarding table (§4.1.3).
type vrf struct {
	tenant packet.TenantID
	// tunnels maps remote VM IPs to their ToR loopbacks (GRE offloaded
	// mappings).
	tunnels *rules.TunnelTable
	// localVMs maps VM IPs homed under this ToR to their server's
	// provider address.
	localVMs map[packet.IP]packet.IP
}

type limKey struct {
	tenant packet.TenantID
	vmIP   packet.IP
	dir    Direction
}

// TOR is one top-of-rack switch.
type TOR struct {
	eng *sim.Engine
	// Loopback is the switch's provider address — the GRE tunnel
	// destination for flows homed under it.
	Loopback packet.IP
	// latency is the port-to-port forwarding delay.
	latency time.Duration

	router *fabric.Router
	tcam   *rules.TCAM
	vrfs   map[packet.TenantID]*vrf

	vlanToTenant map[packet.VLANID]packet.TenantID
	tenantToVLAN map[packet.TenantID]packet.VLANID

	limiters map[limKey]*ratelimit.TokenBucket
	meters   map[limKey]*ratelimit.UsageMeter

	// egressQueue returns the QoS class for a packet leaving toward a
	// server or the fabric; it is the TCAM entry's queue when one
	// matched, else best effort.

	aclDrops   uint64
	rateDrops  uint64
	noVRFDrops uint64
	unrouted   uint64
	greRx      uint64
	greTx      uint64

	// installFault, when set, is consulted before every hardware rule
	// install; a non-nil error rejects the install (fault injection —
	// a misbehaving or exhausted TCAM controller).
	installFault   func() error
	installRejects uint64

	// leaseTTL, when non-zero, makes every installed ACL a lease: the
	// controller must refresh it (idempotent re-install or a
	// current-term table walk) within TTL or the sweeper expires the
	// rule back to the software path — a dead control plane degrades to
	// pre-FasTrak behavior instead of freezing stale express lanes.
	leaseTTL      time.Duration
	leases        map[rules.Pattern]time.Duration
	leaseSweep    *sim.Ticker
	leaseExpiries uint64

	// rec is the flight-recorder scope; nil when telemetry is disabled.
	rec *telemetry.Scoped
}

// New builds a ToR with the given loopback address, TCAM capacity, and
// forwarding latency.
func New(eng *sim.Engine, loopback packet.IP, tcamCapacity int, latency time.Duration) *TOR {
	return &TOR{
		eng:          eng,
		Loopback:     loopback,
		latency:      latency,
		router:       fabric.NewRouter(),
		tcam:         rules.NewTCAM(tcamCapacity),
		vrfs:         make(map[packet.TenantID]*vrf),
		vlanToTenant: make(map[packet.VLANID]packet.TenantID),
		tenantToVLAN: make(map[packet.TenantID]packet.VLANID),
		limiters:     make(map[limKey]*ratelimit.TokenBucket),
		meters:       make(map[limKey]*ratelimit.UsageMeter),
	}
}

// AddRoute attaches a port for an outer destination (a server's provider
// address on an access link, or another ToR's loopback via the fabric).
func (t *TOR) AddRoute(dst packet.IP, out fabric.Port) { t.router.AddRoute(dst, out) }

// RouteLike maps dst to the same port as an already-routed address —
// used by the microbenchmark harness to route VM addresses flat (the
// baseline-OVS configurations run without tunneling on a single-tenant
// flat network, §3.1).
func (t *TOR) RouteLike(dst, like packet.IP) error {
	port := t.router.PortFor(like)
	if port == nil {
		return fmt.Errorf("tor: no route for %v to mirror", like)
	}
	t.router.AddRoute(dst, port)
	return nil
}

// ConfigureTenant binds a tenant to its access VLAN ("configured by
// FasTrak", §4.2.1) and creates its VRF.
func (t *TOR) ConfigureTenant(tenant packet.TenantID, vlan packet.VLANID) error {
	if cur, ok := t.vlanToTenant[vlan]; ok && cur != tenant {
		return fmt.Errorf("tor: VLAN %d already bound to tenant %d", vlan, cur)
	}
	t.vlanToTenant[vlan] = tenant
	t.tenantToVLAN[tenant] = vlan
	if _, ok := t.vrfs[tenant]; !ok {
		t.vrfs[tenant] = &vrf{
			tenant:   tenant,
			tunnels:  rules.NewTunnelTable(),
			localVMs: make(map[packet.IP]packet.IP),
		}
	}
	return nil
}

// VLANFor returns the tenant's access VLAN.
func (t *TOR) VLANFor(tenant packet.TenantID) (packet.VLANID, bool) {
	v, ok := t.tenantToVLAN[tenant]
	return v, ok
}

// RegisterLocalVM records that a tenant VM lives on the server with the
// given provider address under this ToR; received GRE traffic for it is
// VLAN-tagged and sent down that access port (§4.2.2).
func (t *TOR) RegisterLocalVM(tenant packet.TenantID, vmIP, serverIP packet.IP) error {
	v, ok := t.vrfs[tenant]
	if !ok {
		return fmt.Errorf("tor: tenant %d not configured", tenant)
	}
	v.localVMs[vmIP] = serverIP
	return nil
}

// UnregisterLocalVM removes a VM (migration away).
func (t *TOR) UnregisterLocalVM(tenant packet.TenantID, vmIP packet.IP) {
	if v, ok := t.vrfs[tenant]; ok {
		delete(v.localVMs, vmIP)
	}
}

// SetVRFTunnel installs the GRE mapping for a remote VM: its home ToR's
// loopback. These are the "tunnel mappings" FasTrak offloads (§4.1.3).
func (t *TOR) SetVRFTunnel(tenant packet.TenantID, vmIP, remoteTOR packet.IP) error {
	v, ok := t.vrfs[tenant]
	if !ok {
		return fmt.Errorf("tor: tenant %d not configured", tenant)
	}
	v.tunnels.Set(rules.TunnelMapping{Tenant: tenant, VMIP: vmIP, Remote: remoteTOR})
	return nil
}

// RemoveVRFTunnel drops a mapping.
func (t *TOR) RemoveVRFTunnel(tenant packet.TenantID, vmIP packet.IP) {
	if v, ok := t.vrfs[tenant]; ok {
		v.tunnels.Remove(tenant, vmIP)
	}
}

// SetInstallFault registers a hook consulted by InstallACL before the
// TCAM is touched; a non-nil error rejects the install without side
// effects. nil clears the hook. The fault injector uses this to model
// transient and permanent hardware rule-install rejections.
func (t *TOR) SetInstallFault(f func() error) { t.installFault = f }

// SetLeaseTTL enables (ttl > 0) or disables (ttl = 0) lease-based
// fail-safe expiry for ACL rules. With leases on, every install stamps a
// deadline now+ttl and a sweeper running at ttl/4 granularity expires
// unrefreshed rules; expired traffic falls back to the always-correct
// vswitch software path.
func (t *TOR) SetLeaseTTL(ttl time.Duration) {
	t.leaseTTL = ttl
	if t.leaseSweep != nil {
		t.leaseSweep.Stop()
		t.leaseSweep = nil
	}
	if ttl <= 0 {
		t.leases = nil
		return
	}
	t.leases = make(map[rules.Pattern]time.Duration)
	t.leaseSweep = t.eng.Every(ttl/4, t.sweepLeases)
}

// RefreshLease extends one rule's lease; a no-op for unknown patterns or
// when leases are disabled.
func (t *TOR) RefreshLease(p rules.Pattern) {
	if t.leases != nil {
		if _, ok := t.leases[p]; ok {
			t.leases[p] = time.Duration(t.eng.Now()) + t.leaseTTL
		}
	}
}

// RefreshAllLeases extends every rule's lease — the switch agent calls
// it on a current-term table walk, treating the reconcile round-trip as
// proof the control plane is alive.
func (t *TOR) RefreshAllLeases() {
	deadline := time.Duration(t.eng.Now()) + t.leaseTTL
	for p := range t.leases {
		t.leases[p] = deadline
	}
}

// LeaseExpiries returns how many rules the sweeper expired.
func (t *TOR) LeaseExpiries() uint64 { return t.leaseExpiries }

// LeaseCount returns the number of live leases (equals the installed
// rule count whenever leases are enabled — the lease-conservation
// invariant the failover experiment checks).
func (t *TOR) LeaseCount() int { return len(t.leases) }

// sweepLeases expires every rule whose lease deadline has passed, in
// deterministic pattern order.
func (t *TOR) sweepLeases() {
	now := time.Duration(t.eng.Now())
	var dead []rules.Pattern
	for p, deadline := range t.leases {
		if now >= deadline {
			dead = append(dead, p)
		}
	}
	if len(dead) == 0 {
		return
	}
	sort.Slice(dead, func(i, j int) bool { return dead[i].String() < dead[j].String() })
	for _, p := range dead {
		delete(t.leases, p)
		n := t.tcam.Remove(p)
		t.leaseExpiries += uint64(n)
		if t.rec != nil {
			t.rec.EmitPattern(telemetry.KindLeaseExpire, p.Tenant, p, "tcam", float64(n), float64(t.tcam.Len()))
		}
	}
}

// InstallRejects returns how many installs the fault hook rejected.
func (t *TOR) InstallRejects() uint64 { return t.installRejects }

// InstallACL places an explicit-allow (or deny) rule in the shared TCAM,
// failing with rules.ErrTCAMFull when hardware memory is exhausted — the
// budget the TOR DE plans against (§4.3.1) — or with the injected fault's
// error when the install hook rejects it.
func (t *TOR) InstallACL(e *rules.TCAMEntry) error {
	if t.installFault != nil {
		if err := t.installFault(); err != nil {
			t.installRejects++
			if t.rec != nil {
				t.rec.EmitPattern(telemetry.KindTCAMReject, e.Pattern.Tenant, e.Pattern, "fault", float64(t.tcam.Len()), 0)
			}
			return err
		}
	}
	err := t.tcam.Insert(e)
	if err == nil && t.leases != nil {
		t.leases[e.Pattern] = time.Duration(t.eng.Now()) + t.leaseTTL
	}
	if t.rec != nil {
		if err != nil {
			t.rec.EmitPattern(telemetry.KindTCAMReject, e.Pattern.Tenant, e.Pattern, "full", float64(t.tcam.Len()), 0)
		} else {
			t.rec.EmitPattern(telemetry.KindTCAMInstall, e.Pattern.Tenant, e.Pattern, "", float64(t.tcam.Len()), 0)
		}
	}
	return err
}

// RemoveACL deletes rules with the exact pattern, freeing TCAM space.
func (t *TOR) RemoveACL(p rules.Pattern) int {
	n := t.tcam.Remove(p)
	if t.leases != nil {
		delete(t.leases, p)
	}
	if t.rec != nil && n > 0 {
		t.rec.EmitPattern(telemetry.KindTCAMRemove, p.Tenant, p, "", float64(t.tcam.Len()), float64(n))
	}
	return n
}

// TCAMFree returns remaining hardware rule capacity.
func (t *TOR) TCAMFree() int { return t.tcam.Free() }

// TCAMUsed returns installed hardware rule count.
func (t *TOR) TCAMUsed() int { return t.tcam.Len() }

// ACLStats snapshots per-entry counters for the TOR controller's ME
// ("periodically measures active offloaded flows in the TOR", §4.3).
type ACLStats struct {
	Pattern rules.Pattern
	Packets uint64
	Bytes   uint64
}

// RuleInfo describes one installed hardware rule — the switch agent's
// TableReply payload and reconciliation's "reported hardware state".
type RuleInfo struct {
	Pattern  rules.Pattern
	Priority int
	Queue    int
}

// Rules lists the installed TCAM rules.
func (t *TOR) Rules() []RuleInfo {
	var out []RuleInfo
	t.tcam.Entries(func(e *rules.TCAMEntry) {
		out = append(out, RuleInfo{Pattern: e.Pattern, Priority: e.Priority, Queue: e.Queue})
	})
	return out
}

// Stats returns current TCAM entry counters.
func (t *TOR) Stats() []ACLStats {
	var out []ACLStats
	t.tcam.Entries(func(e *rules.TCAMEntry) {
		out = append(out, ACLStats{Pattern: e.Pattern, Packets: e.Stats.Packets, Bytes: e.Stats.Bytes})
	})
	return out
}

// SetVFLimit installs (or updates) a hardware rate limit for a VM
// direction; zero removes it. FasTrak applies the FPS hardware split Rh
// here ("rate limits on the SR-IOV VF are applied at the TOR", §4.1.4).
func (t *TOR) SetVFLimit(tenant packet.TenantID, vmIP packet.IP, dir Direction, bps float64) {
	k := limKey{tenant, vmIP, dir}
	if bps <= 0 {
		delete(t.limiters, k)
		return
	}
	if b, ok := t.limiters[k]; ok {
		b.SetRate(t.eng.Now(), bps)
		return
	}
	// A couple of jumbo frames of burst; shaping paces the rest.
	burst := math.Max(bps/1000, 16*1500*8)
	t.limiters[k] = ratelimit.NewTokenBucket(bps, burst)
}

// VFRate samples the achieved rate for a VM direction in bps.
func (t *TOR) VFRate(tenant packet.TenantID, vmIP packet.IP, dir Direction) float64 {
	k := limKey{tenant, vmIP, dir}
	m, ok := t.meters[k]
	if !ok {
		return 0
	}
	return m.Sample(t.eng.Now())
}

func (t *TOR) meter(k limKey) *ratelimit.UsageMeter {
	m, ok := t.meters[k]
	if !ok {
		m = &ratelimit.UsageMeter{}
		t.meters[k] = m
	}
	return m
}

// shape applies the hardware limiter for k: NIC/switch tx rate limiting
// is a pacing scheduler, so conforming packets are delayed to the rate
// and only a full backlog (≈50 ms) drops. ok=false means drop.
func (t *TOR) shape(k limKey, wireLen int) (time.Duration, bool) {
	t.meter(k).Record(wireLen)
	b, ok := t.limiters[k]
	if !ok {
		return 0, true
	}
	return b.ReserveLimit(t.eng.Now(), wireLen, 50*time.Millisecond)
}

// Input implements fabric.Port: one packet arriving on any port.
func (t *TOR) Input(p *packet.Packet) {
	t.eng.After(t.latency, func() { t.process(p) })
}

func (t *TOR) process(p *packet.Packet) {
	switch {
	case p.VLAN != nil:
		t.fromVF(p)
	case p.IP.Proto == packet.ProtoGRE && p.IP.Dst == t.Loopback:
		t.terminateGRE(p)
	default:
		// Plain routed traffic: VXLAN outers between servers, GRE
		// transit toward another ToR ("If the TOR receives a tunneled
		// packet that is not destined for it, it forwards it as per
		// its forwarding tables", §4.2.2).
		t.route(p, 0)
	}
}

// fromVF handles VLAN-tagged express-lane traffic from a server (§4.2.1):
// VLAN → VRF, ACL check, hardware egress limit, GRE encap toward the
// destination ToR.
func (t *TOR) fromVF(p *packet.Packet) {
	tenant, ok := t.vlanToTenant[p.VLAN.ID]
	if !ok {
		t.noVRFDrops++
		if t.rec != nil {
			t.rec.Record(telemetry.Event{Kind: telemetry.KindDrop, Cause: "no-vrf", V1: float64(p.VLAN.ID)})
		}
		return
	}
	v := t.vrfs[tenant]
	p.VLAN = nil
	p.Tenant = tenant
	key := p.Key()

	entry := t.tcam.Lookup(key)
	if entry == nil || entry.Action != rules.Allow {
		// "If a malicious VM sends disallowed traffic via an SR-IOV
		// interface ... the traffic will hit the default rule and be
		// dropped at the TOR."
		t.aclDrops++
		if t.rec != nil {
			t.rec.Drop(tenant, key, "acl")
		}
		return
	}
	entry.Stats.Hit(p.WireLen(), t.eng.Now())

	delay, ok := t.shape(limKey{tenant, key.Src, Egress}, p.WireLen())
	if !ok {
		t.rateDrops++
		if t.rec != nil {
			t.rec.Drop(tenant, key, "rate")
		}
		return
	}

	m, ok := v.tunnels.Lookup(tenant, p.IP.Dst)
	if !ok {
		t.unrouted++
		if t.rec != nil {
			t.rec.Drop(tenant, key, "no-tunnel")
		}
		return
	}
	outer, err := tunnel.GREEncap(t.Loopback, m.Remote, tenant, p)
	if err != nil {
		t.unrouted++
		if t.rec != nil {
			t.rec.Drop(tenant, key, "encap")
		}
		return
	}
	queue := entry.Queue
	t.eng.After(delay, func() {
		t.greTx++
		if m.Remote == t.Loopback {
			// Destination VM homed under this same ToR: hairpin
			// through GRE termination locally (tunnel source =
			// destination). The packet was classified when it entered
			// this switch; a single-pass pipeline does not re-run the
			// ACL on a packet already sitting in its shaping queues,
			// so the admission verdict rides along even if the rule is
			// deleted before the queue drains.
			t.terminateGREAdmitted(outer, entry)
			return
		}
		t.route(outer, queue)
	})
}

// terminateGRE handles a GRE packet addressed to this ToR (§4.2.2): key →
// VRF, decap, ACL, hardware ingress limit, VLAN tag, access port.
func (t *TOR) terminateGRE(p *packet.Packet) { t.terminateGREAdmitted(p, nil) }

// terminateGREAdmitted is terminateGRE with an optional pre-resolved ACL
// verdict: non-nil for the hairpin case, where this same switch already
// classified the packet at VF admission; nil for GRE arriving off the
// wire, which is classified here — at this switch's own admission point.
func (t *TOR) terminateGREAdmitted(p *packet.Packet, admitted *rules.TCAMEntry) {
	inner, tenant, err := tunnel.GREDecap(p)
	if err != nil {
		t.unrouted++
		if t.rec != nil {
			t.rec.Record(telemetry.Event{Kind: telemetry.KindDrop, Cause: "gre-decap"})
		}
		return
	}
	// The outer frame is dead once the inner has been extracted (decap
	// shares no memory with it); recycle its buffers.
	tunnel.Release(p)
	t.greRx++
	v, ok := t.vrfs[tenant]
	if !ok {
		t.noVRFDrops++
		if t.rec != nil {
			t.rec.Record(telemetry.Event{Kind: telemetry.KindDrop, Cause: "no-vrf", Tenant: tenant})
		}
		return
	}
	key := inner.Key()
	entry := admitted
	if entry == nil {
		entry = t.tcam.Lookup(key)
	}
	if entry == nil || entry.Action != rules.Allow {
		t.aclDrops++
		if t.rec != nil {
			t.rec.Drop(tenant, key, "acl")
		}
		return
	}
	entry.Stats.Hit(inner.WireLen(), t.eng.Now())

	delay, ok := t.shape(limKey{tenant, key.Dst, Ingress}, inner.WireLen())
	if !ok {
		t.rateDrops++
		if t.rec != nil {
			t.rec.Drop(tenant, key, "rate")
		}
		return
	}

	serverIP, ok := v.localVMs[inner.IP.Dst]
	if !ok {
		t.unrouted++
		if t.rec != nil {
			t.rec.Drop(tenant, key, "no-local-vm")
		}
		return
	}
	vlan, ok := t.tenantToVLAN[tenant]
	if !ok {
		t.noVRFDrops++
		if t.rec != nil {
			t.rec.Drop(tenant, key, "no-vlan")
		}
		return
	}
	inner.VLAN = &packet.VLAN{ID: vlan}
	// Route down the access port for the VM's server on the QoS queue
	// the tenant's rule selected. The outer addressing is gone; the
	// access port is keyed by server address.
	out := t.accessPortFor(serverIP)
	if out == nil {
		t.unrouted++
		if t.rec != nil {
			t.rec.Drop(tenant, key, "no-access-port")
		}
		return
	}
	queue := entry.Queue
	t.eng.After(delay, func() {
		if ql, ok := out.(queueAware); ok {
			ql.InputQ(queue, inner)
			return
		}
		out.Input(inner)
	})
}

// accessPortFor finds the port for a server's provider address.
func (t *TOR) accessPortFor(serverIP packet.IP) fabric.Port {
	return t.router.PortFor(serverIP)
}

// route forwards by outer destination IP on QoS class q.
func (t *TOR) route(p *packet.Packet, q int) {
	out := t.router.PortFor(p.IP.Dst)
	if out == nil {
		t.unrouted++
		if t.rec != nil {
			t.rec.Record(telemetry.Event{Kind: telemetry.KindDrop, Cause: "unrouted", Tenant: p.Tenant})
		}
		return
	}
	if ql, ok := out.(queueAware); ok {
		ql.InputQ(q, p)
		return
	}
	out.Input(p)
}

// queueAware lets QoS-class-aware egress ports (link adapters) receive the
// class chosen by the TCAM entry.
type queueAware interface {
	InputQ(q int, p *packet.Packet)
}

// Counters reports drop and tunnel statistics.
func (t *TOR) Counters() (aclDrops, rateDrops, noVRF, unrouted, greRx, greTx uint64) {
	return t.aclDrops, t.rateDrops, t.noVRFDrops, t.unrouted, t.greRx, t.greTx
}
