package tor

import (
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/rules"
	"repro/internal/sim"
)

var (
	torA  = packet.MustParseIP("192.168.100.1")
	torB  = packet.MustParseIP("192.168.100.2")
	srv1  = packet.MustParseIP("192.168.1.10")
	srv2  = packet.MustParseIP("192.168.1.11")
	vmX   = packet.MustParseIP("10.0.0.1") // tenant 3 on srv1
	vmY   = packet.MustParseIP("10.0.0.2") // tenant 3 on srv2
	vlan3 = packet.VLANID(103)
)

type capture struct{ pkts []*packet.Packet }

func (c *capture) Input(p *packet.Packet) { c.pkts = append(c.pkts, p) }

// rig builds a single ToR with tenant 3 configured, vmX/vmY local on
// srv1/srv2, an allow-all-tenant-3 ACL, and capture ports on both access
// links.
func rig(t *testing.T, eng *sim.Engine, tcamCap int) (*TOR, *capture, *capture) {
	t.Helper()
	tr := New(eng, torA, tcamCap, time.Microsecond)
	if err := tr.ConfigureTenant(3, vlan3); err != nil {
		t.Fatal(err)
	}
	acc1, acc2 := &capture{}, &capture{}
	tr.AddRoute(srv1, acc1)
	tr.AddRoute(srv2, acc2)
	if err := tr.RegisterLocalVM(3, vmX, srv1); err != nil {
		t.Fatal(err)
	}
	if err := tr.RegisterLocalVM(3, vmY, srv2); err != nil {
		t.Fatal(err)
	}
	// Both VMs homed here: GRE hairpins locally.
	tr.SetVRFTunnel(3, vmX, torA)
	tr.SetVRFTunnel(3, vmY, torA)
	return tr, acc1, acc2
}

func taggedPacket(dstPort uint16, size int) *packet.Packet {
	p := packet.NewTCP(0, vmX, vmY, 40000, dstPort, size)
	p.VLAN = &packet.VLAN{ID: vlan3}
	return p
}

func allowEntry(k packet.FlowKey) *rules.TCAMEntry {
	return &rules.TCAMEntry{Pattern: rules.ExactPattern(k), Action: rules.Allow, Priority: 5}
}

func keyOf(dstPort uint16) packet.FlowKey {
	return packet.FlowKey{Src: vmX, Dst: vmY, SrcPort: 40000, DstPort: dstPort,
		Proto: packet.ProtoTCP, Tenant: 3}
}

func TestExpressLaneEndToEnd(t *testing.T) {
	eng := sim.NewEngine(1)
	tr, _, acc2 := rig(t, eng, 100)
	if err := tr.InstallACL(allowEntry(keyOf(11211))); err != nil {
		t.Fatal(err)
	}
	tr.Input(taggedPacket(11211, 640))
	eng.Run()
	if len(acc2.pkts) != 1 {
		t.Fatalf("server 2 got %d packets", len(acc2.pkts))
	}
	out := acc2.pkts[0]
	if out.VLAN == nil || out.VLAN.ID != vlan3 {
		t.Errorf("delivered without tenant VLAN tag: %+v", out.VLAN)
	}
	if out.IP.Dst != vmY || out.Tenant != 3 || out.PayloadLen() != 640 {
		t.Errorf("inner wrong: dst=%v tenant=%d len=%d", out.IP.Dst, out.Tenant, out.PayloadLen())
	}
	_, _, _, _, greRx, greTx := tr.Counters()
	if greRx != 1 || greTx != 1 {
		t.Errorf("gre counters rx=%d tx=%d (hairpin must encap+decap)", greRx, greTx)
	}
}

func TestDefaultDenyAtTOR(t *testing.T) {
	// "If a malicious VM sends disallowed traffic via an SR-IOV
	// interface ... the traffic will hit the default rule and be
	// dropped at the TOR."
	eng := sim.NewEngine(1)
	tr, _, acc2 := rig(t, eng, 100)
	tr.Input(taggedPacket(22, 100)) // no ACL installed
	eng.Run()
	if len(acc2.pkts) != 0 {
		t.Fatal("disallowed traffic forwarded")
	}
	aclDrops, _, _, _, _, _ := tr.Counters()
	if aclDrops != 1 {
		t.Errorf("aclDrops = %d", aclDrops)
	}
}

func TestDenyRuleAtTOR(t *testing.T) {
	eng := sim.NewEngine(1)
	tr, _, acc2 := rig(t, eng, 100)
	e := allowEntry(keyOf(22))
	e.Action = rules.Deny
	tr.InstallACL(e)
	tr.Input(taggedPacket(22, 100))
	eng.Run()
	if len(acc2.pkts) != 0 {
		t.Error("denied traffic forwarded")
	}
}

func TestUnknownVLANDropped(t *testing.T) {
	eng := sim.NewEngine(1)
	tr, _, acc2 := rig(t, eng, 100)
	p := taggedPacket(11211, 100)
	p.VLAN.ID = 999
	tr.Input(p)
	eng.Run()
	if len(acc2.pkts) != 0 {
		t.Error("unknown VLAN forwarded")
	}
	_, _, noVRF, _, _, _ := tr.Counters()
	if noVRF != 1 {
		t.Errorf("noVRF = %d", noVRF)
	}
}

func TestTCAMCapacityLimitsOffload(t *testing.T) {
	eng := sim.NewEngine(1)
	tr, _, _ := rig(t, eng, 2)
	if err := tr.InstallACL(allowEntry(keyOf(1))); err != nil {
		t.Fatal(err)
	}
	if err := tr.InstallACL(allowEntry(keyOf(2))); err != nil {
		t.Fatal(err)
	}
	if err := tr.InstallACL(allowEntry(keyOf(3))); err == nil {
		t.Error("TCAM overflow accepted")
	}
	if tr.TCAMFree() != 0 || tr.TCAMUsed() != 2 {
		t.Errorf("free=%d used=%d", tr.TCAMFree(), tr.TCAMUsed())
	}
	tr.RemoveACL(rules.ExactPattern(keyOf(1)))
	if tr.TCAMFree() != 1 {
		t.Errorf("free after remove = %d", tr.TCAMFree())
	}
}

func TestHardwareRateLimitPolices(t *testing.T) {
	eng := sim.NewEngine(1)
	tr, _, acc2 := rig(t, eng, 100)
	tr.InstallACL(allowEntry(keyOf(11211)))
	tr.SetVFLimit(3, vmX, Egress, 1e6) // 1 Mbps
	// Burst of 100 × ~700B packets ≈ 560 kbits >> burst allowance.
	for i := 0; i < 100; i++ {
		tr.Input(taggedPacket(11211, 640))
	}
	eng.Run()
	_, rateDrops, _, _, _, _ := tr.Counters()
	if rateDrops == 0 {
		t.Error("no policing drops at 1 Mbps")
	}
	if len(acc2.pkts)+int(rateDrops) != 100 {
		t.Errorf("delivered %d + dropped %d != 100", len(acc2.pkts), rateDrops)
	}
	// Raising the limit restores delivery.
	tr.SetVFLimit(3, vmX, Egress, 0)
	tr.Input(taggedPacket(11211, 640))
	eng.Run()
	if len(acc2.pkts)+int(rateDrops) != 101 {
		t.Error("removing limit did not restore forwarding")
	}
}

func TestStatsObserveOffloadedFlows(t *testing.T) {
	eng := sim.NewEngine(1)
	tr, _, _ := rig(t, eng, 100)
	tr.InstallACL(allowEntry(keyOf(11211)))
	for i := 0; i < 7; i++ {
		tr.Input(taggedPacket(11211, 640))
	}
	eng.Run()
	st := tr.Stats()
	if len(st) != 1 {
		t.Fatalf("stats has %d entries", len(st))
	}
	// Each packet hits the ACL on the VF->TOR pass and again at GRE
	// termination (hairpin), so counters reflect both pipeline passes.
	if st[0].Packets != 14 {
		t.Errorf("packets = %d, want 14 (7 both ways through the hairpin)", st[0].Packets)
	}
}

func TestGRETransitForwarded(t *testing.T) {
	// A GRE packet not addressed to this ToR is forwarded by outer IP.
	eng := sim.NewEngine(1)
	tr, _, _ := rig(t, eng, 100)
	fabricPort := &capture{}
	tr.AddRoute(torB, fabricPort)
	p := packet.NewUDP(0, torB, torB, 1, 2, 64)
	p.IP.Src = torA
	p.IP.Proto = packet.ProtoGRE
	p.UDP = nil
	tr.Input(p)
	eng.Run()
	if len(fabricPort.pkts) != 1 {
		t.Error("GRE transit not forwarded")
	}
}

func TestPlainRoutedTraffic(t *testing.T) {
	// VXLAN outers between servers route normally.
	eng := sim.NewEngine(1)
	tr, acc1, _ := rig(t, eng, 100)
	p := packet.NewUDP(0, srv2, srv1, 55555, packet.VXLANPort, 200)
	tr.Input(p)
	eng.Run()
	if len(acc1.pkts) != 1 {
		t.Error("routed traffic not delivered to access port")
	}
}

func TestVLANReuseAcrossTenantsRejected(t *testing.T) {
	eng := sim.NewEngine(1)
	tr := New(eng, torA, 10, 0)
	if err := tr.ConfigureTenant(3, 100); err != nil {
		t.Fatal(err)
	}
	if err := tr.ConfigureTenant(4, 100); err == nil {
		t.Error("VLAN shared across tenants accepted")
	}
	// Re-configuring the same binding is idempotent.
	if err := tr.ConfigureTenant(3, 100); err != nil {
		t.Errorf("idempotent reconfigure failed: %v", err)
	}
}

func TestTenantIsolationAcrossVRFs(t *testing.T) {
	// Tenant 4 reuses vmX/vmY addresses (C1); its packets must not
	// match tenant 3's ACLs or mappings.
	eng := sim.NewEngine(1)
	tr, _, acc2 := rig(t, eng, 100)
	tr.ConfigureTenant(4, 104)
	tr.InstallACL(allowEntry(keyOf(11211))) // tenant 3 allow
	p := taggedPacket(11211, 100)
	p.VLAN.ID = 104 // tenant 4's VLAN
	tr.Input(p)
	eng.Run()
	if len(acc2.pkts) != 0 {
		t.Error("tenant 4 traffic matched tenant 3 state")
	}
	aclDrops, _, _, _, _, _ := tr.Counters()
	if aclDrops != 1 {
		t.Errorf("aclDrops = %d", aclDrops)
	}
}

func TestRouteLike(t *testing.T) {
	eng := sim.NewEngine(1)
	tr, acc1, _ := rig(t, eng, 100)
	flat := packet.MustParseIP("10.0.0.50")
	if err := tr.RouteLike(flat, srv1); err != nil {
		t.Fatal(err)
	}
	p := packet.NewTCP(0, vmY, flat, 1, 2, 64)
	tr.Input(p)
	eng.Run()
	if len(acc1.pkts) != 1 {
		t.Error("flat route not installed")
	}
	if err := tr.RouteLike(flat, packet.MustParseIP("9.9.9.9")); err == nil {
		t.Error("mirroring an unrouted address accepted")
	}
}

func TestUnrouteableDropsCounted(t *testing.T) {
	eng := sim.NewEngine(1)
	tr, _, _ := rig(t, eng, 100)
	p := packet.NewTCP(0, vmX, packet.MustParseIP("99.99.99.99"), 1, 2, 64)
	tr.Input(p)
	eng.Run()
	_, _, _, unrouted, _, _ := tr.Counters()
	if unrouted != 1 {
		t.Errorf("unrouted = %d", unrouted)
	}
}

func TestOffloadedFlowWithoutTunnelMappingDrops(t *testing.T) {
	eng := sim.NewEngine(1)
	tr := New(eng, torA, 100, 0)
	tr.ConfigureTenant(3, vlan3)
	tr.InstallACL(allowEntry(keyOf(80)))
	// ACL passes but no VRF tunnel mapping for the destination.
	tr.Input(taggedPacket(80, 64))
	eng.Run()
	_, _, _, unrouted, _, _ := tr.Counters()
	if unrouted != 1 {
		t.Errorf("unrouted = %d, want drop on missing tunnel mapping", unrouted)
	}
}

func TestRemoveVRFStateAfterMigration(t *testing.T) {
	eng := sim.NewEngine(1)
	tr, _, acc2 := rig(t, eng, 100)
	tr.InstallACL(allowEntry(keyOf(11211)))
	// Tear down the VM's VRF state as migration away would.
	tr.UnregisterLocalVM(3, vmY)
	tr.RemoveVRFTunnel(3, vmY)
	tr.Input(taggedPacket(11211, 64))
	eng.Run()
	if len(acc2.pkts) != 0 {
		t.Error("traffic delivered after VRF state removed")
	}
	// Unknown-tenant variants are no-ops, not panics.
	tr.UnregisterLocalVM(99, vmY)
	tr.RemoveVRFTunnel(99, vmY)
	if err := tr.RegisterLocalVM(99, vmY, srv2); err == nil {
		t.Error("register for unconfigured tenant accepted")
	}
	if err := tr.SetVRFTunnel(99, vmY, torA); err == nil {
		t.Error("tunnel for unconfigured tenant accepted")
	}
}

func TestVFRateMeters(t *testing.T) {
	eng := sim.NewEngine(1)
	tr, _, _ := rig(t, eng, 100)
	tr.InstallACL(allowEntry(keyOf(11211)))
	if r := tr.VFRate(3, vmX, Egress); r != 0 {
		t.Errorf("idle rate = %v", r)
	}
	for i := 0; i < 100; i++ {
		tr.Input(taggedPacket(11211, 1000))
	}
	eng.RunUntil(100 * time.Millisecond)
	if r := tr.VFRate(3, vmX, Egress); r <= 0 {
		t.Error("egress meter did not record")
	}
}

func TestSetVFLimitUpdateAndRemove(t *testing.T) {
	eng := sim.NewEngine(1)
	tr, _, _ := rig(t, eng, 100)
	tr.SetVFLimit(3, vmX, Egress, 1e6)
	tr.SetVFLimit(3, vmX, Egress, 2e6) // update in place
	tr.SetVFLimit(3, vmX, Egress, 0)   // remove
	tr.InstallACL(allowEntry(keyOf(11211)))
	for i := 0; i < 50; i++ {
		tr.Input(taggedPacket(11211, 1000))
	}
	eng.Run()
	_, rateDrops, _, _, _, _ := tr.Counters()
	if rateDrops != 0 {
		t.Errorf("drops after limit removal: %d", rateDrops)
	}
}

func TestMalformedGREDropped(t *testing.T) {
	eng := sim.NewEngine(1)
	tr, _, _ := rig(t, eng, 100)
	p := packet.NewUDP(0, torB, torA, 1, 2, 0)
	p.UDP = nil
	p.IP.Proto = packet.ProtoGRE
	p.Payload = []byte{0xff} // truncated GRE header
	tr.Input(p)
	eng.Run()
	_, _, _, unrouted, _, _ := tr.Counters()
	if unrouted != 1 {
		t.Errorf("malformed GRE not dropped: unrouted=%d", unrouted)
	}
}
