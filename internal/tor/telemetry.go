// Flight-recorder and metric-registry wiring for the ToR. The hardware
// path is the express lane, so its instrumentation mirrors the vswitch's:
// every intentional drop is recorded with its cause, and rule installs/
// rejects/removals become TCAM lifecycle events the controller's
// FLOW_MOD/barrier events pair with in the merged trace.
package tor

import (
	"repro/internal/telemetry"
)

// SetRecorder attaches (or detaches) the ToR's flight-recorder scope.
func (t *TOR) SetRecorder(rec *telemetry.Scoped) { t.rec = rec }

// RegisterMetrics registers the ToR's counters and gauges under
// fastrak_tor_* names with the given fixed labels (e.g. "rack=0").
func (t *TOR) RegisterMetrics(reg *telemetry.Registry, labels ...string) {
	if reg == nil {
		return
	}
	lbl := func(extra ...string) []string {
		return append(append([]string(nil), labels...), extra...)
	}
	reg.Counter("fastrak_tor_drops_total", "hardware-path drops by cause", &t.aclDrops, lbl("cause=acl")...)
	reg.Counter("fastrak_tor_drops_total", "hardware-path drops by cause", &t.rateDrops, lbl("cause=rate")...)
	reg.Counter("fastrak_tor_drops_total", "hardware-path drops by cause", &t.noVRFDrops, lbl("cause=no-vrf")...)
	reg.Counter("fastrak_tor_drops_total", "hardware-path drops by cause", &t.unrouted, lbl("cause=unrouted")...)
	reg.Counter("fastrak_tor_gre_rx_total", "GRE tunnels terminated", &t.greRx, lbl()...)
	reg.Counter("fastrak_tor_gre_tx_total", "GRE tunnels originated", &t.greTx, lbl()...)
	reg.Counter("fastrak_tor_install_rejects_total", "ACL installs rejected by the fault hook", &t.installRejects, lbl()...)
	reg.Gauge("fastrak_tor_tcam_used", "installed hardware rules", func() float64 { return float64(t.tcam.Len()) }, lbl()...)
	reg.Gauge("fastrak_tor_tcam_free", "remaining hardware rule capacity", func() float64 { return float64(t.tcam.Free()) }, lbl()...)
}
