package smartnic

import (
	"sort"
	"time"

	"repro/internal/packet"
)

// admitState is the NIC's tenant-fair pipeline admission. It mirrors the
// vswitch overload governor's lazy sliding window (no permanent tickers —
// the sim engine's Run drains the event queue, so time-keeping must be
// pulled by the datapath, not pushed by timers): per-tenant offered load
// is counted per window, and when a window's total offered load exceeded
// the pipeline's packet budget, the next window admits each tenant up to
// a max-min fair (water-filled) share of that budget. Under-capacity
// windows impose no throttling at all, so admission is free until the
// pipeline is actually contended.
type admitState struct {
	pps      float64
	window   time.Duration
	quantum  float64
	headroom float64

	idx      int64
	offered  map[packet.TenantID]float64
	admitted map[packet.TenantID]float64
	// allowance is nil while unthrottled; otherwise the per-tenant packet
	// budget for the current window.
	allowance map[packet.TenantID]float64
}

func newAdmitState(cfg Config) admitState {
	return admitState{
		pps:      cfg.PipelinePPS,
		window:   cfg.Window,
		quantum:  cfg.AdmitQuantum,
		headroom: cfg.Headroom,
		offered:  make(map[packet.TenantID]float64),
		admitted: make(map[packet.TenantID]float64),
	}
}

// admit charges one offered packet to the tenant and reports whether the
// pipeline accepts it this window.
func (a *admitState) admit(now time.Duration, t packet.TenantID) bool {
	if a.pps <= 0 {
		return true
	}
	idx := int64(now / a.window)
	if idx != a.idx {
		a.rotate(idx)
	}
	a.offered[t]++
	if a.allowance == nil {
		return true
	}
	limit, ok := a.allowance[t]
	if !ok {
		// Tenant absent from the measured window: grant the quantum so a
		// newly active tenant is never starved outright.
		limit = a.quantum
	}
	if a.admitted[t] >= limit {
		return false
	}
	a.admitted[t]++
	return true
}

// rotate closes the previous window and computes the new one's allowances
// from its offered counts.
func (a *admitState) rotate(idx int64) {
	var prev map[packet.TenantID]float64
	if idx == a.idx+1 {
		prev = a.offered
	}
	a.idx = idx
	a.offered = make(map[packet.TenantID]float64)
	a.admitted = make(map[packet.TenantID]float64)
	a.allowance = nil

	budget := a.pps * a.window.Seconds()
	var total float64
	for _, d := range prev {
		total += d
	}
	if total <= budget {
		return
	}
	shares := waterfill(prev, budget)
	for t, s := range shares {
		s *= a.headroom
		if s < a.quantum {
			s = a.quantum
		}
		shares[t] = s
	}
	a.allowance = shares
}

// waterfill computes the max-min fair allocation of budget across the
// demands: tenants are satisfied in ascending demand order, each taking
// min(demand, equal share of what remains). Deterministic: ties break on
// tenant ID.
func waterfill(demand map[packet.TenantID]float64, budget float64) map[packet.TenantID]float64 {
	ids := make([]packet.TenantID, 0, len(demand))
	for t := range demand {
		ids = append(ids, t)
	}
	sort.Slice(ids, func(i, j int) bool {
		di, dj := demand[ids[i]], demand[ids[j]]
		if di != dj {
			return di < dj
		}
		return ids[i] < ids[j]
	})
	out := make(map[packet.TenantID]float64, len(ids))
	remaining := budget
	for i, t := range ids {
		share := remaining / float64(len(ids)-i)
		alloc := demand[t]
		if alloc > share {
			alloc = share
		}
		out[t] = alloc
		remaining -= alloc
	}
	return out
}
