// Package smartnic models a per-host multi-tenant SmartNIC offload tier:
// the middle rung of the placement ladder between the software vswitch and
// the ToR TCAM. The NIC holds a bounded match-action rule table (a
// tuple-space TCAM, like the ToR's but far smaller and with a different
// per-packet cost model), enforces a per-tenant rule quota so one tenant
// cannot exhaust the shared table, and runs a tenant-fair admission stage
// on its processing pipeline: when offered load exceeds the pipeline's
// packet rate, each tenant is held to a max-min fair share of the window
// and the excess is bounced back to the software path.
//
// The cardinal datapath property is that the NIC never drops: every
// outcome other than "forwarded in hardware" — table miss, deny rule,
// pipeline throttle — returns false from TryEgress, and the caller sends
// the packet through the ordinary vswitch slow path. That structural
// fallback is what makes three-tier promotion/demotion blackhole-free: a
// rule can vanish from the NIC at any instant (demotion, reset fault,
// corruption) and the flow degrades to software forwarding, never to loss.
package smartnic

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/packet"
	"repro/internal/rules"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// ErrQuota is returned when an install would push a tenant past its rule
// quota. Distinct from rules.ErrTCAMFull so the controller can tell "table
// exhausted" from "tenant over-subscribed".
var ErrQuota = errors.New("smartnic: tenant rule quota exceeded")

// rulePriority is the priority of controller-installed NIC rules. The NIC
// table holds only placement rules (policy stays in the vswitch and TCAM),
// so a single priority level suffices.
const rulePriority = 10

// Config sizes and prices one SmartNIC. The latency model is deliberately
// distinct from the ToR TCAM's: a NIC lookup is slower than TCAM SRAM but
// saves the host-CPU vswitch cost entirely, and the embedded pipeline has
// a finite packet rate where the ToR forwards at line rate.
type Config struct {
	// Capacity is the match-action table size in rules. Zero disables the
	// NIC tier entirely (the cluster then builds no NIC).
	Capacity int
	// TenantQuota caps rules per tenant; <=0 means Capacity (no quota).
	TenantQuota int
	// LookupLatency is the one-way hardware forwarding floor per packet.
	LookupLatency time.Duration
	// JitterMean is the mean of the exponential jitter added to
	// LookupLatency (embedded pipelines are steadier than software but not
	// SRAM-deterministic).
	JitterMean time.Duration
	// PipelinePPS is the embedded pipeline's packet rate. <=0 disables
	// admission (infinite pipeline).
	PipelinePPS float64
	// Window is the admission accounting window: per-tenant offered load
	// is measured over one window and fair shares computed for the next.
	Window time.Duration
	// AdmitQuantum is the minimum per-window packet allowance any tenant
	// receives while throttling is active (DRR-style quantum: a starved
	// tenant always progresses).
	AdmitQuantum float64
	// Headroom scales the computed fair shares (>1 admits slightly above
	// the water-fill level so shares are not needlessly tight).
	Headroom float64
}

// DefaultConfig returns the reference SmartNIC: a small table relative to
// the ToR TCAM, a 2µs forwarding floor, and a 1 Mpps pipeline.
func DefaultConfig() Config {
	return Config{
		Capacity:      64,
		TenantQuota:   48,
		LookupLatency: 2 * time.Microsecond,
		JitterMean:    500 * time.Nanosecond,
		PipelinePPS:   1e6,
		Window:        10 * time.Millisecond,
		AdmitQuantum:  8,
		Headroom:      1.1,
	}
}

// Normalized returns the configuration with defaults filled in — the
// exact settings a NIC built from c will run with.
func (c Config) Normalized() Config { return c.normalized() }

func (c Config) normalized() Config {
	if c.Capacity < 0 {
		c.Capacity = 0
	}
	if c.TenantQuota <= 0 || c.TenantQuota > c.Capacity {
		c.TenantQuota = c.Capacity
	}
	if c.LookupLatency <= 0 {
		c.LookupLatency = 2 * time.Microsecond
	}
	if c.Window <= 0 {
		c.Window = 10 * time.Millisecond
	}
	if c.AdmitQuantum <= 0 {
		c.AdmitQuantum = 8
	}
	if c.Headroom < 1 {
		c.Headroom = 1
	}
	return c
}

// Forward hands an admitted packet onward; the host wires this to the
// vswitch's offloaded transmit stage (shaping + encap, no classification).
type Forward func(tenant packet.TenantID, srcIP packet.IP, p *packet.Packet)

// FlowSnapshot is one flow's hardware hit counters, polled by the local
// controller's measurement engine alongside the vswitch snapshot.
type FlowSnapshot struct {
	Key            packet.FlowKey
	Packets, Bytes uint64
}

// NIC is one host's SmartNIC. Not safe for concurrent use; the simulation
// is single-threaded by construction.
type NIC struct {
	eng *sim.Engine
	cfg Config

	table     *rules.TCAM
	byPattern map[rules.Pattern]*rules.TCAMEntry
	perTenant map[packet.TenantID]int
	// flows keeps per-flow hit counters under the (possibly aggregate)
	// installed rules so the measurement engine sees hardware-forwarded
	// flows at the same granularity as software ones.
	flows *rules.ExactTable[struct{}]

	adm     admitState
	txClock time.Duration
	forward Forward

	installFault func() error
	counters     metrics.NICCounters
	rec          *telemetry.Scoped

	// onChange, when set, fires after every rule-table mutation (install,
	// remove, lease expiry, reset, corruption). The host uses it to mirror
	// the placed-pattern set into the sharded data plane's NIC-first
	// egress table, so hardware placement changes publish a new epoch.
	onChange func()

	// leaseTTL, when non-zero, makes every installed rule a lease the
	// local controller must refresh (any current-term leader contact
	// refreshes them all) or the sweeper expires the rule back to the
	// vswitch software path — the NIC-tier half of the control-plane HA
	// fail-safe.
	leaseTTL      time.Duration
	leases        map[rules.Pattern]time.Duration
	leaseSweep    *sim.Ticker
	leaseExpiries uint64
}

// New builds a NIC from cfg. A zero-capacity config still returns a valid
// NIC whose installs all fail with ErrTCAMFull.
func New(eng *sim.Engine, cfg Config) *NIC {
	cfg = cfg.normalized()
	return &NIC{
		eng:       eng,
		cfg:       cfg,
		table:     rules.NewTCAM(cfg.Capacity),
		byPattern: make(map[rules.Pattern]*rules.TCAMEntry),
		perTenant: make(map[packet.TenantID]int),
		flows:     rules.NewExactTable[struct{}](),
		adm:       newAdmitState(cfg),
	}
}

// SetForward wires the post-admission delivery hook.
func (n *NIC) SetForward(f Forward) { n.forward = f }

// SetRecorder attaches a telemetry scope (nil-safe, like all scopes).
func (n *NIC) SetRecorder(rec *telemetry.Scoped) { n.rec = rec }

// SetOnChange registers a hook fired after every rule-table mutation.
func (n *NIC) SetOnChange(fn func()) { n.onChange = fn }

func (n *NIC) changed() {
	if n.onChange != nil {
		n.onChange()
	}
}

// RegisterMetrics registers the NIC's counters with the central registry.
func (n *NIC) RegisterMetrics(reg *telemetry.Registry, labels ...string) {
	if n == nil || reg == nil {
		return
	}
	reg.Counter("fastrak_nic_hits_total", "SmartNIC rule-table hits", &n.counters.Hits, labels...)
	reg.Counter("fastrak_nic_misses_total", "SmartNIC lookups handed back to the vswitch", &n.counters.Misses, labels...)
	reg.Counter("fastrak_nic_throttled_total", "admissions throttled to the vswitch by the pipeline budget", &n.counters.Throttled, labels...)
	reg.Counter("fastrak_nic_installs_total", "rules installed", &n.counters.Installs, labels...)
	reg.Counter("fastrak_nic_removes_total", "rules removed", &n.counters.Removes, labels...)
	reg.Counter("fastrak_nic_rejects_total", "installs rejected (fault, quota or full table)", &n.counters.Rejects, labels...)
	reg.Gauge("fastrak_nic_rules", "rules currently installed", func() float64 { return float64(n.Len()) }, labels...)
}

// Config returns the normalized configuration.
func (n *NIC) Config() Config { return n.cfg }

// Install upserts a match-action rule. Installs are idempotent (the
// controller reasserts desired state every interval); a fresh install is
// gated by the injected install fault, the tenant quota, and table
// capacity, in that order.
func (n *NIC) Install(p rules.Pattern, queue int) error {
	if _, ok := n.byPattern[p]; ok {
		return nil
	}
	if n.installFault != nil {
		if err := n.installFault(); err != nil {
			n.counters.Rejects++
			if n.rec != nil {
				n.rec.EmitPattern(telemetry.KindNICReject, p.Tenant, p, "fault", float64(n.table.Len()), 0)
			}
			return err
		}
	}
	if !p.AnyTenant && n.perTenant[p.Tenant] >= n.cfg.TenantQuota {
		n.counters.Rejects++
		if n.rec != nil {
			n.rec.EmitPattern(telemetry.KindNICReject, p.Tenant, p, "quota", float64(n.perTenant[p.Tenant]), 0)
		}
		return ErrQuota
	}
	e := &rules.TCAMEntry{Pattern: p, Priority: rulePriority, Action: rules.Allow, Queue: queue}
	if err := n.table.Insert(e); err != nil {
		n.counters.Rejects++
		if n.rec != nil {
			n.rec.EmitPattern(telemetry.KindNICReject, p.Tenant, p, "full", float64(n.table.Len()), 0)
		}
		return err
	}
	n.byPattern[p] = e
	if n.leases != nil {
		n.leases[p] = time.Duration(n.eng.Now()) + n.leaseTTL
	}
	if !p.AnyTenant {
		n.perTenant[p.Tenant]++
	}
	n.counters.Installs++
	if n.rec != nil {
		n.rec.EmitPattern(telemetry.KindNICInstall, p.Tenant, p, "", float64(n.table.Len()), 0)
	}
	n.changed()
	return nil
}

// Remove deletes a rule and the per-flow counters it covered, returning
// the number of table entries removed (0 if the rule was not installed).
func (n *NIC) Remove(p rules.Pattern) int {
	if _, ok := n.byPattern[p]; !ok {
		return 0
	}
	removed := n.dropRule(p)
	n.counters.Removes++
	if n.rec != nil {
		n.rec.EmitPattern(telemetry.KindNICRemove, p.Tenant, p, "", float64(n.table.Len()), 0)
	}
	n.changed()
	return removed
}

// dropRule removes the rule and purges covered flow counters without any
// control-plane accounting (shared by Remove and the fault surfaces).
func (n *NIC) dropRule(p rules.Pattern) int {
	removed := n.table.Remove(p)
	delete(n.byPattern, p)
	if n.leases != nil {
		delete(n.leases, p)
	}
	if !p.AnyTenant {
		if n.perTenant[p.Tenant]--; n.perTenant[p.Tenant] <= 0 {
			delete(n.perTenant, p.Tenant)
		}
	}
	var dead []packet.FlowKey
	n.flows.Entries(func(e *rules.ExactEntry[struct{}]) {
		if p.Match(e.Key) && n.table.Lookup(e.Key) == nil {
			dead = append(dead, e.Key)
		}
	})
	for _, k := range dead {
		n.flows.Remove(k)
	}
	return removed
}

// TryEgress attempts to forward a VM's egress packet in hardware. It
// returns true only when the packet was admitted and scheduled onto the
// wire; any false return leaves the packet untouched for the software
// path (the NIC tier never drops).
func (n *NIC) TryEgress(k packet.FlowKey, p *packet.Packet) bool {
	if n == nil {
		return false
	}
	e := n.table.Lookup(k)
	if e == nil {
		n.counters.Misses++
		return false
	}
	if e.Action != rules.Allow {
		// Policy is never enforced here; bounce to software for the
		// authoritative verdict (and its drop accounting).
		n.counters.Misses++
		return false
	}
	now := n.eng.Now()
	if !n.adm.admit(now, k.Tenant) {
		n.counters.Throttled++
		return false
	}
	e.Stats.Hit(p.WireLen(), now)
	fe := n.flows.Lookup(k)
	if fe == nil {
		fe = n.flows.Install(k, struct{}{})
	}
	fe.Stats.Hit(p.WireLen(), now)
	// TSO: account wire segments beyond the first so pps statistics match
	// on-the-wire packet counts, as the vswitch path does.
	if extra := model.Segments(p.PayloadLen()) - 1; extra > 0 {
		e.Stats.Packets += uint64(extra)
		fe.Stats.Packets += uint64(extra)
	}
	n.counters.Hits++
	if n.rec != nil {
		n.rec.Hit(telemetry.KindNICHit, k.Tenant, k)
	}
	d := n.cfg.LookupLatency
	if n.cfg.JitterMean > 0 {
		d += time.Duration(n.eng.Rand().ExpFloat64() * float64(n.cfg.JitterMean))
	}
	// FIFO clamp: the pipeline never reorders packets it admitted.
	at := now + d
	if at < n.txClock {
		at = n.txClock
	}
	n.txClock = at
	tenant, src := k.Tenant, k.Src
	n.eng.At(at, func() { n.forward(tenant, src, p) })
	return true
}

// Snapshot returns per-flow hardware hit counters, sorted for determinism.
func (n *NIC) Snapshot() []FlowSnapshot {
	if n == nil {
		return nil
	}
	out := make([]FlowSnapshot, 0, n.flows.Len())
	n.flows.Entries(func(e *rules.ExactEntry[struct{}]) {
		out = append(out, FlowSnapshot{Key: e.Key, Packets: e.Stats.Packets, Bytes: e.Stats.Bytes})
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Key.String() < out[j].Key.String() })
	return out
}

// Patterns returns the installed rules sorted by pattern string.
func (n *NIC) Patterns() []rules.Pattern {
	if n == nil {
		return nil
	}
	out := make([]rules.Pattern, 0, len(n.byPattern))
	for p := range n.byPattern {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// Has reports whether the pattern is installed.
func (n *NIC) Has(p rules.Pattern) bool {
	if n == nil {
		return false
	}
	_, ok := n.byPattern[p]
	return ok
}

// Free returns remaining table capacity (0 on a nil NIC).
func (n *NIC) Free() int {
	if n == nil {
		return 0
	}
	return n.table.Free()
}

// Len returns installed rule count.
func (n *NIC) Len() int {
	if n == nil {
		return 0
	}
	return n.table.Len()
}

// Capacity returns the table size.
func (n *NIC) Capacity() int {
	if n == nil {
		return 0
	}
	return n.cfg.Capacity
}

// TenantRules returns the rule count charged to a tenant.
func (n *NIC) TenantRules(t packet.TenantID) int { return n.perTenant[t] }

// Counters returns the NIC's observability counters.
func (n *NIC) Counters() metrics.NICCounters {
	if n == nil {
		return metrics.NICCounters{}
	}
	return n.counters
}

// SetInstallFault implements faults.HardwareTable: subsequent installs
// consult f (nil clears).
func (n *NIC) SetInstallFault(f func() error) { n.installFault = f }

// SetLeaseTTL enables (ttl > 0) or disables (ttl = 0) lease-based
// fail-safe expiry for NIC rules, mirroring tor.TOR.SetLeaseTTL: installs
// stamp now+ttl, RefreshAllLeases extends everything, and a ttl/4 sweeper
// expires unrefreshed rules (covered flows fall back to the vswitch —
// TryEgress simply misses).
func (n *NIC) SetLeaseTTL(ttl time.Duration) {
	n.leaseTTL = ttl
	if n.leaseSweep != nil {
		n.leaseSweep.Stop()
		n.leaseSweep = nil
	}
	if ttl <= 0 {
		n.leases = nil
		return
	}
	n.leases = make(map[rules.Pattern]time.Duration)
	n.leaseSweep = n.eng.Every(ttl/4, n.sweepLeases)
}

// RefreshAllLeases extends every rule's lease; the local controller calls
// it on each message from the current-term leader.
func (n *NIC) RefreshAllLeases() {
	deadline := time.Duration(n.eng.Now()) + n.leaseTTL
	for p := range n.leases {
		n.leases[p] = deadline
	}
}

// LeaseExpiries returns how many rules the sweeper expired.
func (n *NIC) LeaseExpiries() uint64 { return n.leaseExpiries }

// LeaseCount returns the number of live leases (equals Len() whenever
// leases are enabled).
func (n *NIC) LeaseCount() int { return len(n.leases) }

func (n *NIC) sweepLeases() {
	now := time.Duration(n.eng.Now())
	var dead []rules.Pattern
	for p, deadline := range n.leases {
		if now >= deadline {
			dead = append(dead, p)
		}
	}
	if len(dead) == 0 {
		return
	}
	sort.Slice(dead, func(i, j int) bool { return dead[i].String() < dead[j].String() })
	for _, p := range dead {
		n.dropRule(p)
		n.leaseExpiries++
		if n.rec != nil {
			n.rec.EmitPattern(telemetry.KindLeaseExpire, p.Tenant, p, "nic", 1, float64(n.table.Len()))
		}
	}
	n.changed()
}

// ResetTable models a firmware reset: the whole rule table is lost. The
// controller's per-interval reassert repairs it; until then every covered
// flow degrades to the software path. Returns rules lost.
func (n *NIC) ResetTable() int {
	lost := n.table.Len()
	n.table = rules.NewTCAM(n.cfg.Capacity)
	n.byPattern = make(map[rules.Pattern]*rules.TCAMEntry)
	n.perTenant = make(map[packet.TenantID]int)
	n.flows = rules.NewExactTable[struct{}]()
	if n.leases != nil {
		n.leases = make(map[rules.Pattern]time.Duration)
	}
	if n.rec != nil {
		n.rec.Record(telemetry.Event{Kind: telemetry.KindNICReset, Cause: "reset", V1: float64(lost)})
	}
	n.changed()
	return lost
}

// CorruptRules models partial table corruption: each installed rule is
// independently lost with probability prob. Returns rules lost.
func (n *NIC) CorruptRules(prob float64, rng *rand.Rand) int {
	lost := 0
	for _, p := range n.Patterns() {
		if rng.Float64() < prob {
			n.dropRule(p)
			lost++
		}
	}
	if n.rec != nil {
		n.rec.Record(telemetry.Event{Kind: telemetry.KindNICReset, Cause: "corrupt", V1: float64(lost)})
	}
	if lost > 0 {
		n.changed()
	}
	return lost
}

// String summarizes occupancy for logs.
func (n *NIC) String() string {
	return fmt.Sprintf("smartnic %d/%d %s", n.table.Len(), n.cfg.Capacity, n.counters)
}
