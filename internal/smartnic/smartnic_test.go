package smartnic

import (
	"errors"
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/rules"
	"repro/internal/sim"
)

func egressPat(tenant packet.TenantID, ip string, port uint16) rules.Pattern {
	return rules.AggregatePattern(packet.AggregateKey{
		VMIP: packet.MustParseIP(ip), Port: port, Tenant: tenant, Dir: packet.Egress,
	})
}

func flowKey(tenant packet.TenantID, src, dst string, srcPort, dstPort uint16) packet.FlowKey {
	return packet.FlowKey{
		Tenant: tenant,
		Src:    packet.MustParseIP(src), Dst: packet.MustParseIP(dst),
		SrcPort: srcPort, DstPort: dstPort, Proto: packet.ProtoTCP,
	}
}

func testPacket(k packet.FlowKey, size int) *packet.Packet {
	return &packet.Packet{
		IP:             packet.IPv4{Src: k.Src, Dst: k.Dst, Proto: k.Proto, TTL: 64},
		TCP:            &packet.TCPHeader{SrcPort: k.SrcPort, DstPort: k.DstPort},
		VirtualPayload: size,
		Tenant:         k.Tenant,
	}
}

func TestInstallQuotaCapacityIdempotence(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng, Config{Capacity: 3, TenantQuota: 2})

	p1 := egressPat(3, "10.3.0.1", 1)
	p2 := egressPat(3, "10.3.0.1", 2)
	p3 := egressPat(3, "10.3.0.1", 3)
	q1 := egressPat(4, "10.4.0.1", 1)
	q2 := egressPat(4, "10.4.0.1", 2)

	for _, p := range []rules.Pattern{p1, p2} {
		if err := n.Install(p, 0); err != nil {
			t.Fatalf("install %v: %v", p, err)
		}
	}
	// Tenant 3 is at quota; the table still has room.
	if err := n.Install(p3, 0); !errors.Is(err, ErrQuota) {
		t.Fatalf("over-quota install: got %v, want ErrQuota", err)
	}
	// Another tenant may still use the remaining entry…
	if err := n.Install(q1, 0); err != nil {
		t.Fatalf("install %v: %v", q1, err)
	}
	// …after which the table (not the quota) rejects.
	if err := n.Install(q2, 0); !errors.Is(err, rules.ErrTCAMFull) {
		t.Fatalf("full-table install: got %v, want ErrTCAMFull", err)
	}
	// Re-installing a present rule is a no-op success (the controller
	// reasserts desired state every interval).
	installs := n.Counters().Installs
	if err := n.Install(p1, 0); err != nil {
		t.Fatalf("idempotent install: %v", err)
	}
	if got := n.Counters().Installs; got != installs {
		t.Errorf("idempotent install counted: %d -> %d", installs, got)
	}
	if n.Len() != 3 || n.Free() != 0 {
		t.Errorf("len=%d free=%d, want 3/0", n.Len(), n.Free())
	}
	if n.TenantRules(3) != 2 || n.TenantRules(4) != 1 {
		t.Errorf("tenant rules: t3=%d t4=%d", n.TenantRules(3), n.TenantRules(4))
	}
	if got := n.Counters().Rejects; got != 2 {
		t.Errorf("rejects=%d, want 2", got)
	}

	if n.Remove(p1) != 1 {
		t.Error("remove of installed rule returned 0 entries")
	}
	if n.Remove(p1) != 0 {
		t.Error("remove of absent rule returned entries")
	}
	if err := n.Install(p3, 0); err != nil {
		t.Fatalf("install after freeing quota: %v", err)
	}
}

func TestInstallFaultGate(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng, Config{Capacity: 4})
	boom := errors.New("firmware says no")
	n.SetInstallFault(func() error { return boom })
	p := egressPat(3, "10.3.0.1", 1)
	if err := n.Install(p, 0); !errors.Is(err, boom) {
		t.Fatalf("faulted install: got %v", err)
	}
	if n.Has(p) || n.Counters().Rejects != 1 {
		t.Errorf("faulted install left state: has=%v rejects=%d", n.Has(p), n.Counters().Rejects)
	}
	n.SetInstallFault(nil)
	if err := n.Install(p, 0); err != nil {
		t.Fatalf("install after fault cleared: %v", err)
	}
}

// TestTryEgressHitAndMiss pins the cardinal property: a miss touches
// nothing and returns false (software fallback), a hit schedules the
// forward hook after the lookup latency and never before a previously
// admitted packet (FIFO).
func TestTryEgressHitAndMiss(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng, Config{Capacity: 4, LookupLatency: 2 * time.Microsecond, JitterMean: time.Microsecond})
	var forwarded []sim.Time
	n.SetForward(func(tenant packet.TenantID, src packet.IP, p *packet.Packet) {
		if tenant != 3 {
			t.Errorf("forward tenant=%d", tenant)
		}
		forwarded = append(forwarded, eng.Now())
	})
	k := flowKey(3, "10.3.0.1", "10.3.0.2", 40000, 9000)
	miss := flowKey(3, "10.3.0.9", "10.3.0.2", 40000, 9000)
	if err := n.Install(rules.AggregatePattern(k.EgressAggregate()), 0); err != nil {
		t.Fatal(err)
	}
	if n.TryEgress(miss, testPacket(miss, 100)) {
		t.Fatal("miss forwarded in hardware")
	}
	const N = 50
	for i := 0; i < N; i++ {
		if !n.TryEgress(k, testPacket(k, 100)) {
			t.Fatal("hit not forwarded")
		}
	}
	eng.RunUntil(time.Second)
	if len(forwarded) != N {
		t.Fatalf("forwarded %d packets, want %d", len(forwarded), N)
	}
	for i := 1; i < len(forwarded); i++ {
		if forwarded[i] < forwarded[i-1] {
			t.Fatalf("pipeline reordered: %v after %v", forwarded[i], forwarded[i-1])
		}
	}
	if forwarded[0] < 2*time.Microsecond {
		t.Errorf("first forward at %v, before the lookup latency floor", forwarded[0])
	}
	c := n.Counters()
	if c.Hits != N || c.Misses != 1 {
		t.Errorf("hits=%d misses=%d, want %d/1", c.Hits, c.Misses, N)
	}
	snap := n.Snapshot()
	if len(snap) != 1 || snap[0].Packets != N {
		t.Errorf("snapshot = %+v, want one flow with %d packets", snap, N)
	}
	// Removing the covering rule purges the flow counters with it.
	n.Remove(rules.AggregatePattern(k.EgressAggregate()))
	if len(n.Snapshot()) != 0 {
		t.Error("flow counters survived their rule's removal")
	}
}

// TestAdmissionFairShare drives the water-filled admission directly: once
// a window's offered load exceeds the pipeline budget, the next window
// holds the heavy tenant to its max-min share while the light tenant's
// full demand fits.
func TestAdmissionFairShare(t *testing.T) {
	cfg := Config{Capacity: 4, PipelinePPS: 10000, Window: 10 * time.Millisecond,
		AdmitQuantum: 8, Headroom: 1.0}.normalized()
	a := newAdmitState(cfg)
	// Window 0: 900 + 50 offered against a 100-packet budget; admission
	// is still free (throttling needs a measured window first).
	offer := func(now time.Duration, t packet.TenantID, k int) (admitted int) {
		for i := 0; i < k; i++ {
			if a.admit(now, t) {
				admitted++
			}
		}
		return
	}
	if got := offer(0, 1, 900); got != 900 {
		t.Fatalf("unmeasured window throttled: %d/900", got)
	}
	offer(0, 2, 50)
	// Window 1: same offered pattern, now throttled. Budget 100: the
	// light tenant (demand 50) is fully satisfied, the heavy one gets
	// the remainder.
	heavy := offer(10*time.Millisecond, 1, 900)
	light := offer(10*time.Millisecond, 2, 50)
	if light != 50 {
		t.Errorf("light tenant throttled: %d/50", light)
	}
	if heavy != 50 {
		t.Errorf("heavy tenant admitted %d, want its max-min share 50", heavy)
	}
	// A tenant absent from the measured window still gets the quantum.
	if got := offer(10*time.Millisecond, 9, 20); got != 8 {
		t.Errorf("new tenant admitted %d, want quantum 8", got)
	}
	// Window 3 (after an idle window 2): no measured overload, free again.
	if got := offer(30*time.Millisecond, 1, 200); got != 200 {
		t.Errorf("post-idle window throttled: %d/200", got)
	}
}

// TestTryEgressThrottleFallback: the integration form — an over-budget
// tenant's excess bounces back to software (false), never drops, and is
// counted as throttled.
func TestTryEgressThrottleFallback(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng, Config{Capacity: 4, PipelinePPS: 1000, Window: 10 * time.Millisecond,
		AdmitQuantum: 1, Headroom: 1.0})
	n.SetForward(func(packet.TenantID, packet.IP, *packet.Packet) {})
	k := flowKey(3, "10.3.0.1", "10.3.0.2", 40000, 9000)
	if err := n.Install(rules.AggregatePattern(k.EgressAggregate()), 0); err != nil {
		t.Fatal(err)
	}
	run := func(k packet.FlowKey, count int) (hw int) {
		for i := 0; i < count; i++ {
			if n.TryEgress(k, testPacket(k, 100)) {
				hw++
			}
		}
		return
	}
	if got := run(k, 100); got != 100 {
		t.Fatalf("first window: %d/100 in hardware", got)
	}
	eng.RunUntil(10 * time.Millisecond) // next admission window
	hw := run(k, 100)                   // budget is 10 packets/window
	if hw >= 100 || hw == 0 {
		t.Fatalf("second window admitted %d/100, want partial throttling", hw)
	}
	c := n.Counters()
	if c.Throttled != uint64(100-hw) {
		t.Errorf("throttled=%d, want %d", c.Throttled, 100-hw)
	}
}

func TestResetAndCorruptFaults(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng, Config{Capacity: 8})
	var pats []rules.Pattern
	for i := uint16(0); i < 4; i++ {
		p := egressPat(3, "10.3.0.1", 9000+i)
		pats = append(pats, p)
		if err := n.Install(p, 0); err != nil {
			t.Fatal(err)
		}
	}
	if lost := n.ResetTable(); lost != 4 {
		t.Fatalf("reset lost %d rules, want 4", lost)
	}
	if n.Len() != 0 || n.Free() != 8 || n.TenantRules(3) != 0 {
		t.Errorf("reset left state: len=%d free=%d t3=%d", n.Len(), n.Free(), n.TenantRules(3))
	}
	// Reinstall (the controller's reassert) and corrupt everything.
	for _, p := range pats {
		if err := n.Install(p, 0); err != nil {
			t.Fatal(err)
		}
	}
	if lost := n.CorruptRules(1.0, eng.Rand()); lost != 4 {
		t.Fatalf("corrupt(p=1) lost %d rules, want 4", lost)
	}
	if lost := n.CorruptRules(0.0, eng.Rand()); lost != 0 {
		t.Fatalf("corrupt(p=0) lost %d rules, want 0", lost)
	}
	// A wiped table misses — the fallback contract, not a drop.
	k := flowKey(3, "10.3.0.1", "10.3.0.2", 40000, 9000)
	if n.TryEgress(k, testPacket(k, 100)) {
		t.Error("lookup hit after corruption wiped the table")
	}
}

// TestNilNIC: every read-side accessor and TryEgress must be nil-safe —
// servers without SmartNICs share all call sites.
func TestNilNIC(t *testing.T) {
	var n *NIC
	k := flowKey(3, "10.3.0.1", "10.3.0.2", 40000, 9000)
	if n.TryEgress(k, testPacket(k, 100)) {
		t.Error("nil NIC forwarded")
	}
	if n.Len() != 0 || n.Free() != 0 || n.Capacity() != 0 || n.Has(rules.Pattern{}) {
		t.Error("nil NIC reports state")
	}
	if n.Snapshot() != nil || n.Patterns() != nil {
		t.Error("nil NIC returned snapshots")
	}
}
