package smartnic

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/rules"
	"repro/internal/sim"
)

// benchNIC builds a NIC with `entries` installed egress-aggregate rules and
// returns matching flow keys. Admission and jitter are disabled so the
// benchmark isolates the match-action lookup + forward scheduling cost.
func benchNIC(b *testing.B, entries int) (*sim.Engine, *NIC, []packet.FlowKey) {
	b.Helper()
	eng := sim.NewEngine(1)
	n := New(eng, Config{
		Capacity:      entries,
		LookupLatency: 2 * time.Microsecond,
		JitterMean:    0, // deterministic latency: no rng draw per packet
		PipelinePPS:   0, // admission off: pure lookup path
	})
	n.SetForward(func(packet.TenantID, packet.IP, *packet.Packet) {})
	keys := make([]packet.FlowKey, entries)
	for i := range keys {
		ip := fmt.Sprintf("10.3.%d.%d", i/250, 10+i%250)
		keys[i] = flowKey(packet.TenantID(1+i%8), ip, "10.3.200.1", uint16(40000+i), 9000)
		if err := n.Install(rules.AggregatePattern(keys[i].EgressAggregate()), 0); err != nil {
			b.Fatal(err)
		}
	}
	return eng, n, keys
}

// BenchmarkNICLookupHit is the SmartNIC fast path: tuple-space lookup,
// per-flow stats, and forward scheduling on a hit. The engine queue is
// drained periodically so scheduled forwards don't accumulate; the drain
// is part of the per-packet datapath cost.
func BenchmarkNICLookupHit(b *testing.B) {
	eng, n, keys := benchNIC(b, 64)
	p := testPacket(keys[0], 600)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !n.TryEgress(keys[i%len(keys)], p) {
			b.Fatal("unexpected miss")
		}
		if i%1024 == 1023 {
			eng.Run()
		}
	}
	b.StopTimer()
	eng.Run()
}

// BenchmarkNICLookupMiss is the fallback probe every software-tier packet
// pays when a SmartNIC is attached: a failed tuple-space lookup.
func BenchmarkNICLookupMiss(b *testing.B) {
	_, n, _ := benchNIC(b, 64)
	miss := flowKey(9, "10.9.0.1", "10.9.0.2", 40000, 9000)
	p := testPacket(miss, 600)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n.TryEgress(miss, p) {
			b.Fatal("unexpected hit")
		}
	}
}

// BenchmarkNICInstallRemove is the control-plane table update cycle the
// placement ladder exercises on every promote/demote.
func BenchmarkNICInstallRemove(b *testing.B) {
	eng := sim.NewEngine(1)
	n := New(eng, Config{Capacity: 64})
	pat := egressPat(3, "10.3.0.1", 40000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := n.Install(pat, 0); err != nil {
			b.Fatal(err)
		}
		n.Remove(pat)
	}
}
