package tcpmodel

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/host"
	"repro/internal/model"
	"repro/internal/openflow"
	"repro/internal/packet"
	"repro/internal/rules"
)

func rig(t *testing.T) (*cluster.Cluster, *host.VM, *host.VM) {
	t.Helper()
	c := cluster.New(cluster.Config{Servers: 2, VSwitchCfg: model.VSwitchConfig{Tunneling: true}, Seed: 5})
	a, err := c.AddVM(0, 3, packet.MustParseIP("10.0.0.1"), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.AddVM(1, 3, packet.MustParseIP("10.0.0.2"), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c, a, b
}

func TestBulkTransferCompletes(t *testing.T) {
	c, a, b := rig(t)
	const total = 2_000_000
	conn := New(c.Eng, a, b, 45000, 5201, total)
	conn.Start()
	c.Eng.RunUntil(30 * time.Second)
	if !conn.Finished() {
		t.Fatalf("transfer incomplete: %d/%d", conn.Progress(), total)
	}
	if conn.Stats.Timeouts != 0 {
		t.Errorf("clean path incurred %d timeouts", conn.Stats.Timeouts)
	}
	if conn.Stats.BytesAcked != total {
		t.Errorf("acked %d", conn.Stats.BytesAcked)
	}
}

func TestCwndGrowth(t *testing.T) {
	c, a, b := rig(t)
	conn := New(c.Eng, a, b, 45000, 5201, 500_000)
	conn.Start()
	c.Eng.RunUntil(30 * time.Second)
	if !conn.Finished() {
		t.Fatal("incomplete")
	}
	if conn.cwnd <= 2 {
		t.Errorf("cwnd did not grow: %.1f", conn.cwnd)
	}
}

// migrate installs the placer rule + ToR ACL redirecting the connection's
// data direction to the VF, and opens the old-path loss window — the §6.2
// shift.
func migrate(c *cluster.Cluster, conn *Conn, a *host.VM, lossWindow time.Duration) {
	agg := rules.AggregatePattern(packet.FlowKey{
		Src: a.Key.IP, Dst: conn.rcvr.Key.IP,
		SrcPort: conn.srcPort, DstPort: conn.dstPort,
		Proto: packet.ProtoTCP, Tenant: 3,
	}.IngressAggregate())
	a.Placer.HandleMessage(&openflow.FlowMod{
		Command: openflow.FlowAdd, Pattern: agg, Out: openflow.PathVF, Priority: 10,
	}, 1, nil)
	_ = c.TOR.InstallACL(&rules.TCAMEntry{Pattern: agg, Action: rules.Allow, Priority: 5})
	conn.DropOldPathUntil = c.Eng.Now() + lossWindow
}

func TestMigrationRecoversWithFastRetransmit(t *testing.T) {
	// Fig. 12: offload an iperf-like flow 1 s in; TCP sees loss and
	// reordering, recovers via fast retransmit with no timeouts, and
	// the connection progresses.
	c, a, b := rig(t)
	const total = 50_000_000
	const shiftAt = 50 * time.Millisecond
	conn := New(c.Eng, a, b, 45000, 5201, total)
	conn.Start()
	c.Eng.At(shiftAt, func() {
		migrate(c, conn, a, 2*time.Millisecond)
	})
	c.Eng.RunUntil(60 * time.Second)
	if !conn.Finished() {
		t.Fatalf("transfer incomplete after migration: %d/%d", conn.Progress(), total)
	}
	if conn.Stats.FastRetransmits == 0 {
		t.Error("migration loss did not trigger fast retransmit")
	}
	if conn.Stats.Timeouts != 0 {
		t.Errorf("migration caused %d timeouts; paper observes none", conn.Stats.Timeouts)
	}
	// Post-migration data flows on the VF path.
	vfData := false
	for _, tp := range conn.Trace {
		if tp.Kind == TraceData && tp.At > shiftAt+10*time.Millisecond {
			vfData = true
			break
		}
	}
	if !vfData {
		t.Error("no data progressed after the shift")
	}
}

func TestTraceMonotoneProgress(t *testing.T) {
	c, a, b := rig(t)
	conn := New(c.Eng, a, b, 45000, 5201, 3_000_000)
	conn.Start()
	c.Eng.At(500*time.Millisecond, func() { migrate(c, conn, a, 2*time.Millisecond) })
	c.Eng.RunUntil(60 * time.Second)
	if !conn.Finished() {
		t.Fatal("incomplete")
	}
	// Receiver-side in-order data trace must be non-decreasing in seq.
	var prev uint32
	for _, tp := range conn.Trace {
		if tp.Kind != TraceData {
			continue
		}
		if tp.Seq < prev {
			t.Fatalf("in-order trace regressed: %d after %d", tp.Seq, prev)
		}
		prev = tp.Seq
	}
}

func TestTimeoutPathRecovers(t *testing.T) {
	// A long total-loss window (all in-flight drops, nothing to dup-ack)
	// must eventually recover via RTO rather than hang.
	c, a, b := rig(t)
	conn := New(c.Eng, a, b, 45000, 5201, 5_000_000)
	conn.Start()
	// Drop everything on the (only) VIF path for 300 ms > RTO, early
	// enough that the transfer is still in flight.
	c.Eng.At(time.Millisecond, func() {
		conn.DropOldPathUntil = c.Eng.Now() + 300*time.Millisecond
	})
	c.Eng.RunUntil(120 * time.Second)
	if !conn.Finished() {
		t.Fatalf("connection hung: %d acked", conn.Progress())
	}
	if conn.Stats.Timeouts == 0 {
		t.Error("expected RTO recovery under total loss")
	}
}
