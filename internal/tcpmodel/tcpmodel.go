// Package tcpmodel implements a simplified TCP — slow start, congestion
// avoidance, cumulative and delayed ACKs, duplicate-ACK fast retransmit,
// and a retransmission timeout — sufficient to reproduce the paper's
// flow-migration experiment (§6.2.2, Fig. 12): when FasTrak shifts a live
// flow from the VIF to the SR-IOV VF, some in-flight packets on the old
// path are lost and some are reordered; TCP recovers with fast
// retransmits, no timeout, and the connection progresses.
//
// The model rides the testbed's real data path: segments are full packets
// with genuine TCP sequence/ACK header fields, steered by the VM's flow
// placer like all other traffic.
package tcpmodel

import (
	"time"

	"repro/internal/host"
	"repro/internal/model"
	"repro/internal/packet"
	"repro/internal/sim"
)

// TraceKind labels trace events.
type TraceKind byte

// Trace event kinds.
const (
	TraceData           TraceKind = iota // data segment received (receiver side)
	TraceRetransmit                      // sender retransmitted
	TraceFastRetransmit                  // triple-dup-ack retransmission
	TraceTimeout                         // RTO fired
	TraceAck                             // cumulative ACK received (sender side)
)

func (k TraceKind) String() string {
	switch k {
	case TraceData:
		return "data"
	case TraceRetransmit:
		return "retx"
	case TraceFastRetransmit:
		return "fast-retx"
	case TraceTimeout:
		return "timeout"
	default:
		return "ack"
	}
}

// TracePoint is one event in the connection trace (the Fig. 12 series).
type TracePoint struct {
	At   time.Duration
	Seq  uint32
	Kind TraceKind
}

// Stats summarizes a connection — the §6.2.2 netstat readings.
type Stats struct {
	BytesAcked      uint64
	Segments        uint64
	Retransmits     uint64
	FastRetransmits uint64
	Timeouts        uint64
	DupAcksSeen     uint64
	DelayedAcks     uint64
	Reordered       uint64
}

// Conn is one simplified TCP connection between two VMs.
type Conn struct {
	eng  *sim.Engine
	sndr *host.VM
	rcvr *host.VM

	srcPort, dstPort uint16

	// sender state (byte sequence space)
	sndUna, sndNxt uint32
	cwnd           float64 // in segments
	ssthresh       float64
	dupAcks        int
	inRecovery     bool
	recoverSeq     uint32
	rto            time.Duration
	rtoEvent       *sim.Event
	totalBytes     uint32 // stop growing sndNxt past this (0 = unbounded)

	// receiver state
	rcvNxt     uint32
	outOfOrder map[uint32]int // seq → len of buffered segments
	ackPending int

	// DropOldPathUntil, while set in the future, drops data segments
	// arriving at the receiver via the VIF — modeling the bonding-
	// driver loss the paper observed during the shift ("some packets
	// that return via the VIF were lost").
	DropOldPathUntil time.Duration

	Stats Stats
	Trace []TracePoint
	// OnTrace, when set, observes every trace point as it is recorded —
	// the bridge the telemetry flight recorder attaches to.
	OnTrace func(TracePoint)
	// Done fires once totalBytes are acked.
	Done func()
	done bool
}

// trace appends a point to the connection trace and notifies OnTrace.
func (c *Conn) trace(tp TracePoint) {
	c.Trace = append(c.Trace, tp)
	if c.OnTrace != nil {
		c.OnTrace(tp)
	}
}

// New builds a connection sending totalBytes (0 = run until Stop) from
// sndr to rcvr on dstPort.
func New(eng *sim.Engine, sndr, rcvr *host.VM, srcPort, dstPort uint16, totalBytes uint32) *Conn {
	c := &Conn{
		eng: eng, sndr: sndr, rcvr: rcvr,
		srcPort: srcPort, dstPort: dstPort,
		cwnd: 2, ssthresh: 64,
		rto:        200 * time.Millisecond,
		totalBytes: totalBytes,
		outOfOrder: make(map[uint32]int),
	}
	rcvr.BindApp(dstPort, host.AppFunc(c.onData))
	sndr.BindApp(srcPort, host.AppFunc(c.onAck))
	return c
}

// Start begins transmission.
func (c *Conn) Start() { c.fill() }

// segSize returns the next segment's payload length.
func (c *Conn) segSize() int {
	sz := model.MSS
	if c.totalBytes > 0 {
		remain := int(c.totalBytes - c.sndNxt)
		if remain <= 0 {
			return 0
		}
		if remain < sz {
			sz = remain
		}
	}
	return sz
}

// fill transmits while the congestion window allows.
func (c *Conn) fill() {
	if c.done {
		return
	}
	window := uint32(c.cwnd) * model.MSS
	for c.sndNxt-c.sndUna < window {
		sz := c.segSize()
		if sz == 0 {
			break
		}
		c.sendSegment(c.sndNxt, sz, false)
		c.sndNxt += uint32(sz)
	}
	c.armRTO()
}

func (c *Conn) sendSegment(seq uint32, size int, isRetx bool) {
	p := packet.NewTCP(c.sndr.Key.Tenant, c.sndr.Key.IP, c.rcvr.Key.IP, c.srcPort, c.dstPort, size)
	p.TCP.Seq = seq
	p.TCP.Flags = packet.FlagACK
	c.Stats.Segments++
	if isRetx {
		c.Stats.Retransmits++
	}
	c.sndr.SendPacket(p, nil)
}

// onData is the receiver: cumulative ACK with one delayed ACK allowed,
// dup-ACKs on out-of-order arrivals.
func (c *Conn) onData(vm *host.VM, p *packet.Packet) {
	if p.TCP == nil {
		return
	}
	// Old-path loss window during migration.
	if p.Meta.Path == "vif" && c.eng.Now() < c.DropOldPathUntil {
		return
	}
	seq := p.TCP.Seq
	size := p.PayloadLen()
	switch {
	case seq == c.rcvNxt:
		c.rcvNxt += uint32(size)
		// Drain any buffered out-of-order segments now in order.
		for {
			sz, ok := c.outOfOrder[c.rcvNxt]
			if !ok {
				break
			}
			delete(c.outOfOrder, c.rcvNxt)
			c.rcvNxt += uint32(sz)
		}
		c.trace(TracePoint{At: c.eng.Now(), Seq: seq, Kind: TraceData})
		c.ackPending++
		if c.ackPending >= 2 {
			c.sendAck()
		} else {
			// Delayed ACK timer (40 ms, as in Linux).
			c.eng.After(40*time.Millisecond, func() {
				if c.ackPending > 0 {
					c.Stats.DelayedAcks++
					c.sendAck()
				}
			})
		}
	case seq > c.rcvNxt:
		// Out of order (reordering across paths, or loss): buffer and
		// dup-ack immediately.
		if _, dup := c.outOfOrder[seq]; !dup {
			c.outOfOrder[seq] = size
			c.Stats.Reordered++
		}
		c.sendAck()
	default:
		// Duplicate of already-received data: re-ack.
		c.sendAck()
	}
}

func (c *Conn) sendAck() {
	c.ackPending = 0
	p := packet.NewTCP(c.rcvr.Key.Tenant, c.rcvr.Key.IP, c.sndr.Key.IP, c.dstPort, c.srcPort, 0)
	p.TCP.Ack = c.rcvNxt
	p.TCP.Flags = packet.FlagACK
	c.rcvr.SendPacket(p, nil)
}

// onAck is the sender: cumulative ACK processing, fast retransmit on the
// third duplicate, cwnd evolution.
func (c *Conn) onAck(vm *host.VM, p *packet.Packet) {
	if p.TCP == nil || c.done {
		return
	}
	ack := p.TCP.Ack
	c.trace(TracePoint{At: c.eng.Now(), Seq: ack, Kind: TraceAck})
	switch {
	case ack > c.sndUna:
		c.sndUna = ack
		c.dupAcks = 0
		if c.inRecovery && ack < c.recoverSeq {
			// NewReno partial ACK: the next hole is at the new
			// sndUna; retransmit it immediately rather than waiting
			// a full dup-ACK cycle per hole.
			c.Stats.FastRetransmits++
			c.sendSegment(c.sndUna, c.retxSize(), true)
			c.armRTO()
			return
		}
		if c.inRecovery && ack >= c.recoverSeq {
			c.inRecovery = false
			c.cwnd = c.ssthresh
		}
		if !c.inRecovery {
			if c.cwnd < c.ssthresh {
				c.cwnd++ // slow start
			} else {
				c.cwnd += 1 / c.cwnd // congestion avoidance
			}
		}
		c.armRTO()
		if c.totalBytes > 0 && c.sndUna >= c.totalBytes {
			c.finish()
			return
		}
		c.fill()
	case ack == c.sndUna:
		c.dupAcks++
		c.Stats.DupAcksSeen++
		if c.dupAcks == 3 && !c.inRecovery {
			// Fast retransmit + fast recovery.
			c.Stats.FastRetransmits++
			c.trace(TracePoint{At: c.eng.Now(), Seq: c.sndUna, Kind: TraceFastRetransmit})
			c.ssthresh = maxf(c.cwnd/2, 2)
			c.cwnd = c.ssthresh
			c.inRecovery = true
			c.recoverSeq = c.sndNxt
			c.sendSegment(c.sndUna, c.retxSize(), true)
		} else if c.dupAcks > 3 {
			// Each further dup ack inflates the window by one
			// segment (fast recovery), letting new data flow.
			c.cwnd++
			c.fill()
		}
	}
}

func (c *Conn) retxSize() int {
	sz := model.MSS
	if c.totalBytes > 0 {
		remain := int(c.totalBytes - c.sndUna)
		if remain < sz {
			sz = remain
		}
	}
	return sz
}

func (c *Conn) armRTO() {
	if c.rtoEvent != nil {
		c.rtoEvent.Cancel()
	}
	if c.sndUna == c.sndNxt {
		return // nothing outstanding
	}
	c.rtoEvent = c.eng.After(c.rto, c.onTimeout)
}

func (c *Conn) onTimeout() {
	if c.done || c.sndUna == c.sndNxt {
		return
	}
	c.Stats.Timeouts++
	c.trace(TracePoint{At: c.eng.Now(), Seq: c.sndUna, Kind: TraceTimeout})
	c.ssthresh = maxf(c.cwnd/2, 2)
	c.cwnd = 2
	c.dupAcks = 0
	c.inRecovery = false
	c.sendSegment(c.sndUna, c.retxSize(), true)
	c.armRTO()
}

func (c *Conn) finish() {
	c.done = true
	c.Stats.BytesAcked = uint64(c.sndUna)
	if c.rtoEvent != nil {
		c.rtoEvent.Cancel()
	}
	if c.Done != nil {
		c.Done()
	}
}

// Finished reports whether all bytes were acked.
func (c *Conn) Finished() bool { return c.done }

// Progress returns acked bytes so far.
func (c *Conn) Progress() uint32 { return c.sndUna }

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
