package ratelimit

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTokenBucketConformingTraffic(t *testing.T) {
	// 8 Mbps bucket, 1500-byte packets every 2ms = 6 Mbps: always conforming.
	b := NewTokenBucket(8e6, 12000)
	now := time.Duration(0)
	for i := 0; i < 100; i++ {
		if d := b.Reserve(now, 1500); d != 0 {
			t.Fatalf("conforming packet %d delayed %v", i, d)
		}
		now += 2 * time.Millisecond
	}
}

func TestTokenBucketShapesBurst(t *testing.T) {
	// 8 Mbps, burst one packet. Back-to-back packets each add 1.5ms
	// (12000 bits / 8Mbps) of delay.
	b := NewTokenBucket(8e6, 12000)
	if d := b.Reserve(0, 1500); d != 0 {
		t.Fatalf("first packet delayed %v", d)
	}
	d2 := b.Reserve(0, 1500)
	if d2 != 1500*time.Microsecond {
		t.Errorf("second packet delay = %v, want 1.5ms", d2)
	}
	d3 := b.Reserve(0, 1500)
	if d3 != 3000*time.Microsecond {
		t.Errorf("third packet delay = %v, want 3ms", d3)
	}
}

func TestTokenBucketLongRunRate(t *testing.T) {
	// Offered 20 Mbps against a 10 Mbps shaper: total delay over N
	// packets must stretch the schedule to the shaped rate.
	b := NewTokenBucket(10e6, 12000)
	const n = 1000
	var now time.Duration
	var lastDeliver time.Duration
	for i := 0; i < n; i++ {
		d := b.Reserve(now, 1500)
		if dv := now + d; dv > lastDeliver {
			lastDeliver = dv
		}
		now += 600 * time.Microsecond // 20 Mbps offered
	}
	gotRate := float64(n*1500*8) / lastDeliver.Seconds()
	if gotRate > 10.5e6 || gotRate < 9.5e6 {
		t.Errorf("shaped rate = %.2f Mbps, want ~10", gotRate/1e6)
	}
}

func TestTokenBucketAllowPolices(t *testing.T) {
	b := NewTokenBucket(8e6, 12000) // one packet of burst
	if !b.Allow(0, 1500) {
		t.Fatal("first packet should pass")
	}
	if b.Allow(0, 1500) {
		t.Fatal("second back-to-back packet should be dropped")
	}
	// After 1.5ms the bucket has refilled one packet.
	if !b.Allow(1500*time.Microsecond, 1500) {
		t.Error("packet after refill should pass")
	}
}

func TestTokenBucketSetRate(t *testing.T) {
	b := NewTokenBucket(1e6, 8000)
	b.Reserve(0, 10000) // drain deep
	b.SetRate(0, 100e6)
	// Deficit now amortizes at the new rate.
	d := b.Reserve(0, 0)
	if d > 10*time.Millisecond {
		t.Errorf("deficit at new rate took %v", d)
	}
}

func TestTokenBucketPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero rate accepted")
		}
	}()
	NewTokenBucket(0, 100)
}

func TestUnlimited(t *testing.T) {
	b := Unlimited()
	for i := 0; i < 1000; i++ {
		if !b.Allow(0, 1<<20) || b.Reserve(0, 1<<20) != 0 {
			t.Fatal("unlimited bucket limited")
		}
	}
}

func TestUsageMeter(t *testing.T) {
	var m UsageMeter
	for i := 0; i < 100; i++ {
		m.Record(1250) // 100 × 1250B = 1Mb
	}
	rate := m.Sample(100 * time.Millisecond)
	if rate < 9.9e6 || rate > 10.1e6 {
		t.Errorf("rate = %v, want ~10 Mbps", rate)
	}
	if !m.MaxedOut(10e6, 0.05) {
		t.Error("meter at limit not detected as maxed out")
	}
	if m.MaxedOut(20e6, 0.05) {
		t.Error("meter at half limit reported maxed out")
	}
	if m.MaxedOut(0, 0.05) {
		t.Error("zero limit reported maxed out")
	}
	// Second interval with no traffic: rate drops to 0.
	if r := m.Sample(200 * time.Millisecond); r != 0 {
		t.Errorf("idle interval rate = %v", r)
	}
}

// Property: cumulative delivery never exceeds rate*t + burst (token bucket
// conformance invariant).
func TestTokenBucketConformanceProperty(t *testing.T) {
	f := func(sizes []uint16, gapsMicro []uint8) bool {
		const rate, burst = 5e6, 20000.0
		b := NewTokenBucket(rate, burst)
		now := time.Duration(0)
		sentBits := 0.0
		var horizon time.Duration
		for i, s := range sizes {
			if i < len(gapsMicro) {
				now += time.Duration(gapsMicro[i]) * time.Microsecond
			}
			d := b.Reserve(now, int(s))
			deliverAt := now + d
			if deliverAt > horizon {
				horizon = deliverAt
			}
			sentBits += float64(s) * 8
			// Conformance: everything delivered by `deliverAt`
			// must fit within rate*deliverAt + burst.
			if sentBits > rate*deliverAt.Seconds()+burst+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestReserveLimitBoundsBacklog(t *testing.T) {
	b := NewTokenBucket(8e6, 12000) // one packet of burst
	// First packet passes; flooding builds delay until the cap.
	accepted, dropped := 0, 0
	for i := 0; i < 1000; i++ {
		if _, ok := b.ReserveLimit(0, 1500, 10*time.Millisecond); ok {
			accepted++
		} else {
			dropped++
		}
	}
	if dropped == 0 {
		t.Fatal("no drops despite backlog cap")
	}
	// Accepted backlog is bounded by cap×rate: 10ms at 8 Mbps = 80 kbit
	// ≈ 6-7 packets plus the burst.
	if accepted > 12 {
		t.Errorf("accepted %d packets, backlog cap not enforced", accepted)
	}
	// Refund: a drop must not consume tokens — after the cap is hit,
	// waiting long enough restores full service.
	if _, ok := b.ReserveLimit(time.Second, 1500, 10*time.Millisecond); !ok {
		t.Error("bucket did not recover after drops")
	}
}

func TestReserveLimitConformingUnaffected(t *testing.T) {
	b := NewTokenBucket(8e6, 12000)
	now := time.Duration(0)
	for i := 0; i < 100; i++ {
		d, ok := b.ReserveLimit(now, 1500, 50*time.Millisecond)
		if !ok || d != 0 {
			t.Fatalf("conforming packet %d: d=%v ok=%v", i, d, ok)
		}
		now += 2 * time.Millisecond
	}
}
