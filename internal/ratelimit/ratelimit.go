// Package ratelimit implements the traffic-rate enforcement used on both
// FasTrak paths (requirement I3): token buckets, an htb-style software
// shaper (the `tc` configuration OVS applies to VIFs, §2.2), and the
// policing mode hardware limiters use. Rates are in bits per second and
// time is virtual (driven by internal/sim).
package ratelimit

import (
	"math"
	"time"
)

// TokenBucket is a classic token bucket over virtual time. Tokens are
// bits; they accrue at Rate and cap at Burst. Reserve-style consumption
// lets tokens go negative, which yields the serialization behaviour of a
// shaper; Allow-style consumption polices (drops) instead.
type TokenBucket struct {
	rate   float64 // bits per second
	burst  float64 // bits
	tokens float64
	last   time.Duration
}

// NewTokenBucket returns a full bucket. burstBits bounds how much may be
// sent back-to-back; a burst of one MTU approximates strict shaping.
func NewTokenBucket(rateBps, burstBits float64) *TokenBucket {
	if rateBps <= 0 {
		panic("ratelimit: rate must be positive")
	}
	if burstBits <= 0 {
		burstBits = rateBps / 100 // default: 10ms of burst
	}
	return &TokenBucket{rate: rateBps, burst: burstBits, tokens: burstBits}
}

// Rate returns the configured rate in bits per second.
func (b *TokenBucket) Rate() float64 { return b.rate }

// SetRate changes the rate; FasTrak's decision engine re-adjusts interface
// limits every control interval (§4.3.2).
func (b *TokenBucket) SetRate(now time.Duration, rateBps float64) {
	if rateBps <= 0 {
		panic("ratelimit: rate must be positive")
	}
	b.refill(now)
	b.rate = rateBps
}

func (b *TokenBucket) refill(now time.Duration) {
	if now > b.last {
		b.tokens += b.rate * (now - b.last).Seconds()
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
}

// Reserve consumes bytes worth of tokens and returns how long the caller
// must delay the packet to conform (0 when tokens were available). Tokens
// may go negative: subsequent reservations queue behind this one, exactly
// like htb's shaping.
func (b *TokenBucket) Reserve(now time.Duration, bytes int) time.Duration {
	b.refill(now)
	b.tokens -= float64(bytes) * 8
	if b.tokens >= 0 {
		return 0
	}
	return time.Duration(-b.tokens / b.rate * float64(time.Second))
}

// ReserveLimit is Reserve with a bounded backlog: when conforming
// delivery would have to wait longer than maxDelay, the tokens are
// refunded and ok is false — the caller drops the packet, as a real qdisc
// does when its queue is full. This bounds how long a stale shaping rate
// can keep leaking traffic after the limit changes.
func (b *TokenBucket) ReserveLimit(now time.Duration, bytes int, maxDelay time.Duration) (delay time.Duration, ok bool) {
	b.refill(now)
	need := float64(bytes) * 8
	b.tokens -= need
	if b.tokens >= 0 {
		return 0, true
	}
	d := time.Duration(-b.tokens / b.rate * float64(time.Second))
	if d > maxDelay {
		b.tokens += need
		return 0, false
	}
	return d, true
}

// Allow reports whether bytes may pass now, consuming tokens only on
// success. This is policing: non-conforming packets are dropped by the
// caller.
func (b *TokenBucket) Allow(now time.Duration, bytes int) bool {
	b.refill(now)
	need := float64(bytes) * 8
	if b.tokens < need {
		return false
	}
	b.tokens -= need
	return true
}

// Tokens returns the current token level in bits (after refill at now).
func (b *TokenBucket) Tokens(now time.Duration) float64 {
	b.refill(now)
	return b.tokens
}

// Unlimited returns a bucket so large it never delays or drops; used for
// interfaces with no configured limit.
func Unlimited() *TokenBucket {
	return &TokenBucket{rate: math.MaxFloat64 / 1e6, burst: math.MaxFloat64 / 1e6, tokens: math.MaxFloat64 / 1e6}
}

// UsageMeter tracks recent throughput against a limit so the decision
// engine can detect when an interface limit is "maxed out" — the signal
// FPS uses to re-adjust splits (§4.3.2: "When the capacity required on the
// interface is higher than the rate limit, the flows will max out the rate
// limit imposed").
type UsageMeter struct {
	bytes     uint64
	lastBytes uint64
	lastAt    time.Duration
	rateBps   float64
}

// Record accumulates sent bytes.
func (m *UsageMeter) Record(bytes int) { m.bytes += uint64(bytes) }

// Sample computes the rate since the previous sample.
func (m *UsageMeter) Sample(now time.Duration) float64 {
	if now <= m.lastAt {
		return m.rateBps
	}
	m.rateBps = float64(m.bytes-m.lastBytes) * 8 / (now - m.lastAt).Seconds()
	m.lastBytes = m.bytes
	m.lastAt = now
	return m.rateBps
}

// RateBps returns the most recently sampled rate.
func (m *UsageMeter) RateBps() float64 { return m.rateBps }

// MaxedOut reports whether the sampled rate is within headroomFraction of
// limitBps (e.g. 0.05 → within 5%).
func (m *UsageMeter) MaxedOut(limitBps, headroomFraction float64) bool {
	if limitBps <= 0 {
		return false
	}
	return m.rateBps >= limitBps*(1-headroomFraction)
}
