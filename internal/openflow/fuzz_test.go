package openflow

import (
	"reflect"
	"testing"

	"repro/internal/packet"
	"repro/internal/rules"
)

// FuzzDecode throws arbitrary bytes at the frame decoder: it must never
// panic or over-allocate, only return an error or a valid message.
func FuzzDecode(f *testing.F) {
	f.Add(Encode(&DemandReport{ServerID: 1}, 7))
	f.Add(Encode(&DemandReport{
		Entries: []DemandEntry{{Pattern: samplePattern(), PPS: 100}},
		Sketch:  &SketchMeta{TopK: 16, Width: 32, Depth: 2, Floor: 5},
	}, 9))
	f.Add(Encode(&FlowMod{Pattern: samplePattern()}, 3))
	f.Add([]byte{Version, 200, 0, 9, 0, 0, 0, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, _, n, err := Decode(data)
		if err == nil {
			if msg == nil || n <= 0 || n > len(data) {
				t.Fatalf("successful decode with msg=%v n=%d len=%d", msg, n, len(data))
			}
		}
	})
}

// FuzzChunkDemandReport builds a sketch-mode demand report from fuzzed
// dimensions, chunks it, encodes every chunk, and checks the reassembled
// report matches the original — the exact path a top-k report takes from
// local controller to TOR.
func FuzzChunkDemandReport(f *testing.F) {
	f.Add(uint16(3), uint16(1), uint64(9), true)
	f.Add(uint16(2100), uint16(4), uint64(0), true)
	f.Add(uint16(900), uint16(0), uint64(12345), false)
	f.Fuzz(func(t *testing.T, entries, splits uint16, floor uint64, withSketch bool) {
		if entries > 4000 {
			entries = entries % 4000
		}
		if splits > 64 {
			splits = splits % 64
		}
		rep := DemandReport{ServerID: 2, Interval: 5, NICFree: uint32(splits)}
		for i := 0; i < int(entries); i++ {
			k := packet.FlowKey{
				Tenant: packet.TenantID(1 + i%5), Src: packet.IP(i), Dst: packet.IP(i * 7),
				SrcPort: uint16(i), DstPort: 80, Proto: packet.ProtoTCP,
			}
			rep.Entries = append(rep.Entries, DemandEntry{
				Pattern: rules.ExactPattern(k), PPS: float64(i), MedianPPS: float64(i) / 2,
				ActiveEpochs: uint32(1 + i%3),
			})
		}
		for i := 0; i < int(splits); i++ {
			rep.Splits = append(rep.Splits, RateSplit{Tenant: packet.TenantID(i), EgressSoftBps: float64(i)})
		}
		if withSketch {
			rep.Sketch = &SketchMeta{TopK: uint32(entries), Width: 2048, Depth: 4, Floor: floor, Evictions: floor / 2}
		}

		var got DemandReport
		for i, ch := range ChunkDemandReport(rep) {
			msg, _, _, err := Decode(Encode(&ch, uint32(i)))
			if err != nil {
				t.Fatalf("chunk %d failed round trip: %v", i, err)
			}
			d := msg.(*DemandReport)
			if i == 0 {
				got = *d
			} else {
				if d.Sketch != nil || d.Splits != nil || d.NICPatterns != nil {
					t.Fatalf("chunk %d carries first-chunk-only sections", i)
				}
				got.Entries = append(got.Entries, d.Entries...)
			}
		}
		got.ServerID, got.Interval, got.NICFree = rep.ServerID, rep.Interval, rep.NICFree
		if !reflect.DeepEqual(normalizeRep(got), normalizeRep(rep)) {
			t.Fatal("reassembled report differs from original")
		}
	})
}

// normalizeRep maps empty slices to nil so DeepEqual compares content.
func normalizeRep(r DemandReport) DemandReport {
	if len(r.Entries) == 0 {
		r.Entries = nil
	}
	if len(r.Splits) == 0 {
		r.Splits = nil
	}
	if len(r.NICPatterns) == 0 {
		r.NICPatterns = nil
	}
	return r
}
