package openflow

// Remote-mode transports: the bridge that lets the unchanged controller
// code of internal/core speak over real TCP connections when the rule
// manager runs as separate processes (internal/service). The codec and
// the Transport counters are shared with the in-simulation mode, so a
// split deployment exercises byte-identical wire traffic.

// RemoteSender delivers one already-encoded frame to the remote peer.
// Implementations are typically Conn.WriteFrame over a net.Conn; they
// must be safe for calls from the engine loop that owns the transport.
// A returned error means the frame was lost (counted in Dropped) — the
// control protocol is loss-tolerant by design.
type RemoteSender func(frame []byte) error

// NewRemoteTransport builds a transport whose messages are written to
// send instead of delivered in-simulation. SetDown/SetLoss fault hooks
// still apply (useful for chaos-testing a live daemon); SetExtraDelay is
// meaningless without a simulated wire and is ignored.
func NewRemoteTransport(send RemoteSender) *Transport {
	return &Transport{remote: send, nextXID: 1}
}
