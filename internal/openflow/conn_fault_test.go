package openflow

import (
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// halfBrokenRW is a stream that stays readable but fails every write —
// the shape of a half-broken TCP connection where only the reply path
// reveals the failure.
type halfBrokenRW struct {
	frames chan []byte
	buf    []byte
}

func (rw *halfBrokenRW) Read(p []byte) (int, error) {
	if len(rw.buf) == 0 {
		b, ok := <-rw.frames
		if !ok {
			return 0, io.EOF
		}
		rw.buf = b
	}
	n := copy(p, rw.buf)
	rw.buf = rw.buf[n:]
	return n, nil
}

var errWireBroken = errors.New("wire broken")

func (rw *halfBrokenRW) Write([]byte) (int, error) { return 0, errWireBroken }

// TestServeReturnsReplySendError is the regression test for Serve
// discarding reply-send failures: on a half-broken pipe the reply path is
// the only place the failure surfaces, so Serve must terminate with that
// error instead of looping forever on a connection it can never answer.
func TestServeReturnsReplySendError(t *testing.T) {
	rw := &halfBrokenRW{frames: make(chan []byte, 1)}
	rw.frames <- Encode(EchoRequest{}, 7)
	conn := NewConn(rw)
	h := &recordingHandler{reply: EchoReply{}}
	done := make(chan error, 1)
	go func() { done <- Serve(conn, h) }()
	select {
	case err := <-done:
		if !errors.Is(err, errWireBroken) {
			t.Fatalf("Serve returned %v, want the reply-send error", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not terminate after a failed reply send")
	}
	if len(h.got) != 1 || h.got[0].Type() != TypeEchoRequest {
		t.Errorf("handler saw %v", h.got)
	}
}

// TestReconnectWithoutDialer pins the error path.
func TestReconnectWithoutDialer(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	if err := NewConn(c2).Reconnect(); err == nil {
		t.Fatal("Reconnect without a dialer must fail")
	}
}

// TestReconnect closes the stream under a Conn and verifies the dialer
// supplies a fresh one, the Hello handshake re-runs, and traffic flows
// again.
func TestReconnect(t *testing.T) {
	p1a, p1b := net.Pipe()
	conn := NewConn(p1b)
	p2a, p2b := net.Pipe()
	defer p2a.Close()
	conn.SetDialer(func() (io.ReadWriter, error) { return p2b, nil })

	// The far end of the replacement stream: handshakes, then answers one
	// echo.
	peerDone := make(chan error, 1)
	go func() {
		peer := NewConn(p2a)
		if err := peer.Handshake(); err != nil {
			peerDone <- err
			return
		}
		msg, xid, err := peer.Recv()
		if err != nil {
			peerDone <- err
			return
		}
		if msg.Type() != TypeEchoRequest {
			peerDone <- errors.New("expected echo request")
			return
		}
		peerDone <- peer.SendXID(EchoReply{}, xid)
	}()

	p1a.Close() // kill the original stream
	if err := conn.Reconnect(); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Send(EchoRequest{}); err != nil {
		t.Fatal(err)
	}
	msg, _, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type() != TypeEchoReply {
		t.Errorf("got %s, want ECHO_REPLY", msg.Type())
	}
	if err := <-peerDone; err != nil {
		t.Fatal(err)
	}
}

type chanHandler struct{ ch chan Message }

func (h *chanHandler) HandleMessage(msg Message, _ uint32, _ ReplyFunc) { h.ch <- msg }

// TestServeReconnect severs a served connection mid-stream and checks the
// loop redials, re-handshakes and keeps dispatching; when the dialer runs
// dry the loop gives up with an error.
func TestServeReconnect(t *testing.T) {
	p1a, p1b := net.Pipe()
	srv := NewConn(p1b)
	var mu sync.Mutex
	var next io.ReadWriter
	srv.SetDialer(func() (io.ReadWriter, error) {
		mu.Lock()
		defer mu.Unlock()
		if next == nil {
			return nil, errors.New("no stream available")
		}
		rw := next
		next = nil
		return rw, nil
	})

	h := &chanHandler{ch: make(chan Message, 4)}
	done := make(chan error, 1)
	go func() { done <- ServeReconnect(srv, h, 2, time.Millisecond) }()

	a1 := NewConn(p1a)
	if _, err := a1.Send(EchoRequest{}); err != nil {
		t.Fatal(err)
	}
	if msg := <-h.ch; msg.Type() != TypeEchoRequest {
		t.Fatalf("first dispatch %s", msg.Type())
	}

	// Stage a replacement stream, then sever the current one.
	p2a, p2b := net.Pipe()
	mu.Lock()
	next = p2b
	mu.Unlock()
	clientUp := make(chan *Conn, 1)
	go func() {
		a2 := NewConn(p2a)
		if err := a2.Handshake(); err != nil {
			return
		}
		if _, err := a2.Send(&BarrierRequest{}); err != nil {
			return
		}
		clientUp <- a2
	}()
	// Sever the server's own end: an abrupt local failure (reads fail
	// with ErrClosedPipe), not the orderly remote close (io.EOF) that
	// would legitimately end the loop.
	p1b.Close()

	select {
	case msg := <-h.ch:
		if msg.Type() != TypeBarrierRequest {
			t.Fatalf("post-reconnect dispatch %s, want BARRIER_REQUEST", msg.Type())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no dispatch after reconnect")
	}
	<-clientUp

	// Sever again with no replacement: the redial budget exhausts.
	p2b.Close()
	select {
	case err := <-done:
		if err == nil || err == io.EOF {
			t.Fatalf("ServeReconnect returned %v, want a give-up error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeReconnect did not give up")
	}
}
