package openflow

import (
	"reflect"
	"testing"
)

func TestDecisionManyActionsNoRates(t *testing.T) {
	var m OffloadDecision
	for i := 0; i < 16; i++ {
		p := samplePattern()
		p.DstPort = uint16(i)
		m.Actions = append(m.Actions, OffloadAction{Pattern: p, Offload: i%2 == 0})
	}
	got, _, _, err := Decode(Encode(&m, 1))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, &m) {
		t.Error("round trip mismatch")
	}
}
