package openflow

import (
	"net"
	"testing"
)

// TestConnOverTCP drives the control protocol over a real TCP loopback
// socket — the deployment configuration (§5.2's Floodlight controller
// spoke real OpenFlow) — exercising framing across kernel buffers.
func TestConnOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	defer ln.Close()

	type result struct {
		flows int
		err   error
	}
	done := make(chan result, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- result{err: err}
			return
		}
		defer conn.Close()
		c := NewConn(conn)
		if err := c.Handshake(); err != nil {
			done <- result{err: err}
			return
		}
		// Collect one stats request, reply with a big table.
		msg, xid, err := c.Recv()
		if err != nil {
			done <- result{err: err}
			return
		}
		if msg.Type() != TypeStatsRequest {
			done <- result{err: err}
			return
		}
		reply := &StatsReply{}
		for i := 0; i < 1500; i++ {
			reply.Flows = append(reply.Flows, FlowStat{Packets: uint64(i), Bytes: uint64(i) * 100})
		}
		if err := c.SendXID(reply, xid); err != nil {
			done <- result{err: err}
			return
		}
		done <- result{flows: len(reply.Flows)}
	}()

	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	c := NewConn(raw)
	if err := c.Handshake(); err != nil {
		t.Fatal(err)
	}
	xid, err := c.Send(&StatsRequest{})
	if err != nil {
		t.Fatal(err)
	}
	msg, rxid, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if rxid != xid {
		t.Errorf("xid %d != %d", rxid, xid)
	}
	sr, ok := msg.(*StatsReply)
	if !ok {
		t.Fatalf("got %T", msg)
	}
	// A 1500-flow reply spans ~50 KB: multiple TCP segments, testing
	// the reader's reassembly near the frame limit.
	if len(sr.Flows) != 1500 {
		t.Errorf("flows = %d", len(sr.Flows))
	}
	if sr.Flows[1499].Packets != 1499 {
		t.Errorf("last flow corrupted: %+v", sr.Flows[1499])
	}
	r := <-done
	if r.err != nil {
		t.Fatal(r.err)
	}
}
