package openflow

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// Conn frames messages over a byte stream (a net.Conn in deployments, a
// net.Pipe in tests). Send and Recv are independently safe for one writer
// and one reader goroutine; Send is additionally mutex-guarded so multiple
// senders interleave whole frames.
type Conn struct {
	mu      sync.Mutex
	w       io.Writer
	r       *bufio.Reader
	nextXID uint32
}

// NewConn wraps rw.
func NewConn(rw io.ReadWriter) *Conn {
	return &Conn{w: rw, r: bufio.NewReader(rw), nextXID: 1}
}

// Send writes one message, returning the transaction id assigned to it.
func (c *Conn) Send(msg Message) (uint32, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	xid := c.nextXID
	c.nextXID++
	b := Encode(msg, xid)
	if _, err := c.w.Write(b); err != nil {
		return 0, fmt.Errorf("openflow: send %s: %w", msg.Type(), err)
	}
	return xid, nil
}

// SendXID writes one message with an explicit transaction id (used for
// replies, which echo the request's xid).
func (c *Conn) SendXID(msg Message, xid uint32) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.w.Write(Encode(msg, xid)); err != nil {
		return fmt.Errorf("openflow: send %s: %w", msg.Type(), err)
	}
	return nil
}

// Recv blocks for the next message.
func (c *Conn) Recv() (Message, uint32, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return nil, 0, err
	}
	length := int(binary.BigEndian.Uint16(hdr[2:4]))
	if length < headerLen || length > maxBody {
		return nil, 0, fmt.Errorf("openflow: bad frame length %d", length)
	}
	frame := make([]byte, length)
	copy(frame, hdr[:])
	if _, err := io.ReadFull(c.r, frame[headerLen:]); err != nil {
		return nil, 0, err
	}
	msg, xid, _, err := Decode(frame)
	return msg, xid, err
}

// Handshake exchanges Hello messages (call on both ends). The outgoing
// Hello is written concurrently with the read so that unbuffered
// transports (net.Pipe) don't deadlock when both ends handshake.
func (c *Conn) Handshake() error {
	sendErr := make(chan error, 1)
	go func() {
		_, err := c.Send(Hello{})
		sendErr <- err
	}()
	msg, _, err := c.Recv()
	if err != nil {
		return err
	}
	if msg.Type() != TypeHello {
		return fmt.Errorf("openflow: expected HELLO, got %s", msg.Type())
	}
	return <-sendErr
}

// Handler consumes control messages; data-plane elements (flow placers,
// the emulated switch) and controllers implement it.
type Handler interface {
	// HandleMessage processes msg and may reply via the provided
	// ReplyFunc (echoing xid).
	HandleMessage(msg Message, xid uint32, reply ReplyFunc)
}

// ReplyFunc sends a reply correlated to a request.
type ReplyFunc func(msg Message, xid uint32)

// Serve reads messages from conn and dispatches to h until read error.
// The returned error is io.EOF on orderly close.
func Serve(conn *Conn, h Handler) error {
	for {
		msg, xid, err := conn.Recv()
		if err != nil {
			return err
		}
		h.HandleMessage(msg, xid, func(m Message, x uint32) {
			// Best effort: a broken pipe surfaces on the next Recv.
			_ = conn.SendXID(m, x)
		})
	}
}
