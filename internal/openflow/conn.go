package openflow

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"time"
)

// Conn frames messages over a byte stream (a net.Conn in deployments, a
// net.Pipe in tests). Send and Recv are independently safe for one writer
// and one reader goroutine; Send is additionally mutex-guarded so multiple
// senders interleave whole frames.
type Conn struct {
	mu      sync.Mutex
	w       io.Writer
	r       *bufio.Reader
	nextXID uint32
	dial    Dialer
}

// Dialer re-establishes the underlying byte stream after a connection
// failure. Implementations typically wrap net.Dial with the controller's
// address.
type Dialer func() (io.ReadWriter, error)

// NewConn wraps rw.
func NewConn(rw io.ReadWriter) *Conn {
	return &Conn{w: rw, r: bufio.NewReader(rw), nextXID: 1}
}

// SetDialer registers how to re-establish the stream; it enables
// Reconnect and ServeReconnect.
func (c *Conn) SetDialer(d Dialer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dial = d
}

// Reconnect closes the current stream (when it is an io.Closer), redials
// through the registered Dialer and re-runs the Hello handshake. It must
// be called from the reader goroutine (typically a Serve loop that just
// returned an error): swapping the reader under an active Recv is not
// supported. Concurrent Sends are excluded by the connection mutex while
// the stream is swapped.
func (c *Conn) Reconnect() error {
	c.mu.Lock()
	if c.dial == nil {
		c.mu.Unlock()
		return fmt.Errorf("openflow: reconnect without a dialer")
	}
	if cl, ok := c.w.(io.Closer); ok {
		_ = cl.Close()
	}
	rw, err := c.dial()
	if err != nil {
		c.mu.Unlock()
		return fmt.Errorf("openflow: redial: %w", err)
	}
	c.w = rw
	c.r = bufio.NewReader(rw)
	c.mu.Unlock()
	return c.Handshake()
}

// Send writes one message, returning the transaction id assigned to it.
func (c *Conn) Send(msg Message) (uint32, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	xid := c.nextXID
	c.nextXID++
	b := Encode(msg, xid)
	if _, err := c.w.Write(b); err != nil {
		return 0, fmt.Errorf("openflow: send %s: %w", msg.Type(), err)
	}
	return xid, nil
}

// SendXID writes one message with an explicit transaction id (used for
// replies, which echo the request's xid).
func (c *Conn) SendXID(msg Message, xid uint32) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.w.Write(Encode(msg, xid)); err != nil {
		return fmt.Errorf("openflow: send %s: %w", msg.Type(), err)
	}
	return nil
}

// WriteFrame writes one pre-encoded frame, mutex-guarded like Send so
// frames from multiple writers interleave whole. It is the glue between
// a remote-mode Transport (which encodes and counts) and the byte
// stream.
func (c *Conn) WriteFrame(frame []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.w.Write(frame); err != nil {
		return fmt.Errorf("openflow: write frame: %w", err)
	}
	return nil
}

// Recv blocks for the next message.
func (c *Conn) Recv() (Message, uint32, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return nil, 0, err
	}
	length := int(binary.BigEndian.Uint16(hdr[2:4]))
	if length < headerLen || length > maxBody {
		return nil, 0, fmt.Errorf("openflow: bad frame length %d", length)
	}
	frame := make([]byte, length)
	copy(frame, hdr[:])
	if _, err := io.ReadFull(c.r, frame[headerLen:]); err != nil {
		return nil, 0, err
	}
	msg, xid, _, err := Decode(frame)
	return msg, xid, err
}

// Handshake exchanges Hello messages (call on both ends). The outgoing
// Hello is written concurrently with the read so that unbuffered
// transports (net.Pipe) don't deadlock when both ends handshake.
func (c *Conn) Handshake() error {
	sendErr := make(chan error, 1)
	go func() {
		_, err := c.Send(Hello{})
		sendErr <- err
	}()
	msg, _, err := c.Recv()
	if err != nil {
		return err
	}
	if msg.Type() != TypeHello {
		return fmt.Errorf("openflow: expected HELLO, got %s", msg.Type())
	}
	return <-sendErr
}

// Handler consumes control messages; data-plane elements (flow placers,
// the emulated switch) and controllers implement it.
type Handler interface {
	// HandleMessage processes msg and may reply via the provided
	// ReplyFunc (echoing xid).
	HandleMessage(msg Message, xid uint32, reply ReplyFunc)
}

// ReplyFunc sends a reply correlated to a request.
type ReplyFunc func(msg Message, xid uint32)

// Serve reads messages from conn and dispatches to h until the first
// error — a read failure or a failed reply send. On a half-broken pipe
// (readable, unwritable) the reply path is the only place the failure
// surfaces, so reply-send errors terminate the loop instead of being
// discarded and looping forever. The returned error is io.EOF on orderly
// close.
func Serve(conn *Conn, h Handler) error {
	for {
		msg, xid, err := conn.Recv()
		if err != nil {
			return err
		}
		var sendErr error
		h.HandleMessage(msg, xid, func(m Message, x uint32) {
			if err := conn.SendXID(m, x); err != nil && sendErr == nil {
				sendErr = err
			}
		})
		if sendErr != nil {
			return sendErr
		}
	}
}

// ServeReconnect runs Serve and, on connection failure, redials through
// the Conn's Dialer with exponential backoff, resuming service on the
// fresh stream. It gives up after attempts consecutive failed redials
// (each successful reconnect resets the budget) and returns the last
// error; an orderly close (io.EOF) returns io.EOF immediately without
// redialing.
func ServeReconnect(conn *Conn, h Handler, attempts int, backoff time.Duration) error {
	if attempts <= 0 {
		attempts = 3
	}
	if backoff <= 0 {
		backoff = 10 * time.Millisecond
	}
	for {
		err := Serve(conn, h)
		if err == io.EOF {
			return io.EOF
		}
		reErr := err
		recovered := false
		for i := 0; i < attempts; i++ {
			time.Sleep(reconnectDelay(backoff, i))
			if reErr = conn.Reconnect(); reErr == nil {
				recovered = true
				break
			}
		}
		if !recovered {
			return fmt.Errorf("openflow: serve failed (%v) and reconnect exhausted: %w", err, reErr)
		}
	}
}

// maxReconnectDelay caps the exponential redial backoff. Long-lived
// daemons configure large attempt budgets, and an unclamped backoff<<i
// overflows time.Duration past ~63 doublings — a negative Sleep spins
// the redial loop hot against a dead controller.
const maxReconnectDelay = 30 * time.Second

// ReconnectDelay is the clamped exponential backoff schedule used by
// ServeReconnect, exported so daemon supervision loops that interleave
// redials with shutdown checks (internal/service) back off identically.
func ReconnectDelay(backoff time.Duration, attempt int) time.Duration {
	return reconnectDelay(backoff, attempt)
}

func reconnectDelay(backoff time.Duration, attempt int) time.Duration {
	if attempt >= 20 {
		return maxReconnectDelay
	}
	d := backoff << uint(attempt)
	if d <= 0 || d > maxReconnectDelay {
		return maxReconnectDelay
	}
	return d
}
