package openflow

import (
	"io"
	"net"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/packet"
	"repro/internal/rules"
	"repro/internal/sim"
)

func samplePattern() rules.Pattern {
	return rules.ExactPattern(packet.FlowKey{
		Src: packet.MustParseIP("10.0.0.1"), Dst: packet.MustParseIP("10.0.0.2"),
		SrcPort: 40000, DstPort: 11211, Proto: packet.ProtoTCP, Tenant: 7,
	})
}

func TestEncodeDecodeAllTypes(t *testing.T) {
	msgs := []Message{
		Hello{},
		EchoRequest{},
		EchoReply{},
		&FlowMod{Command: FlowAdd, Pattern: samplePattern(), Priority: 10, Out: PathVF, Cookie: 0xfeed},
		&StatsRequest{},
		&StatsReply{Flows: []FlowStat{{Key: packet.FlowKey{
			Src: packet.MustParseIP("10.0.0.1"), Dst: packet.MustParseIP("10.0.0.2"),
			SrcPort: 40000, DstPort: 11211, Proto: packet.ProtoTCP, Tenant: 7,
		}, Packets: 5, Bytes: 500}}},
		&BarrierRequest{},
		&BarrierReply{},
		&DemandReport{ServerID: 2, Interval: 9,
			Entries: []DemandEntry{{
				Pattern: samplePattern(), PPS: 5618, BPS: 4.5e6, Epoch: 3,
				MedianPPS: 5000, MedianBPS: 4e6, ActiveEpochs: 7,
			}},
			Splits: []RateSplit{{Tenant: 7, VMIP: packet.MustParseIP("10.0.0.1"),
				EgressSoftBps: 1e8, EgressHardBps: 9e8, IngressSoftBps: 2e8, IngressHardBps: 8e8}},
			Sketch: &SketchMeta{TopK: 1024, Width: 2048, Depth: 4, Floor: 77, Evictions: 12},
		},
		&OffloadDecision{Interval: 9,
			Actions: []OffloadAction{{Pattern: samplePattern(), Offload: true}},
			HWRates: []VMRate{{Tenant: 7, VMIP: packet.MustParseIP("10.0.0.1"),
				EgressBps: 9e8, IngressBps: 2e8, EgressMaxed: true}},
		},
	}
	for _, m := range msgs {
		wire := Encode(m, 42)
		got, xid, n, err := Decode(wire)
		if err != nil {
			t.Fatalf("%s: decode: %v", m.Type(), err)
		}
		if xid != 42 || n != len(wire) {
			t.Errorf("%s: xid=%d n=%d len=%d", m.Type(), xid, n, len(wire))
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("%s: round trip mismatch:\n got %#v\nwant %#v", m.Type(), got, m)
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	wire := Encode(&FlowMod{Pattern: samplePattern()}, 1)
	// Truncated.
	if _, _, _, err := Decode(wire[:4]); err == nil {
		t.Error("truncated header accepted")
	}
	if _, _, _, err := Decode(wire[:len(wire)-2]); err == nil {
		t.Error("truncated body accepted")
	}
	// Wrong version.
	bad := append([]byte(nil), wire...)
	bad[0] = 99
	if _, _, _, err := Decode(bad); err == nil {
		t.Error("wrong version accepted")
	}
	// Unknown type.
	bad2 := append([]byte(nil), wire...)
	bad2[1] = 200
	if _, _, _, err := Decode(bad2); err == nil {
		t.Error("unknown type accepted")
	}
}

func TestStatsReplyLengthBombRejected(t *testing.T) {
	// A reply claiming 2^31 flows in a tiny body must not allocate.
	wire := Encode(&StatsReply{}, 1)
	// Body currently holds count=0 at offset 8; rewrite to huge count.
	wire[8], wire[9], wire[10], wire[11] = 0x7f, 0xff, 0xff, 0xff
	if _, _, _, err := Decode(wire); err == nil {
		t.Error("length bomb accepted")
	}
}

func TestConnOverPipe(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	a, b := NewConn(c1), NewConn(c2)

	done := make(chan error, 1)
	go func() {
		msg, xid, err := b.Recv()
		if err != nil {
			done <- err
			return
		}
		if msg.Type() != TypeStatsRequest {
			done <- io.ErrUnexpectedEOF
			return
		}
		done <- b.SendXID(&StatsReply{Flows: []FlowStat{{Packets: 1}}}, xid)
	}()

	xid, err := a.Send(&StatsRequest{})
	if err != nil {
		t.Fatal(err)
	}
	reply, rxid, err := a.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if rxid != xid {
		t.Errorf("reply xid %d != request %d", rxid, xid)
	}
	sr, ok := reply.(*StatsReply)
	if !ok || len(sr.Flows) != 1 || sr.Flows[0].Packets != 1 {
		t.Errorf("reply = %#v", reply)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestConnHandshake(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	a, b := NewConn(c1), NewConn(c2)
	errs := make(chan error, 2)
	go func() { errs <- a.Handshake() }()
	go func() { errs <- b.Handshake() }()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

type recordingHandler struct {
	got   []Message
	reply Message
}

func (h *recordingHandler) HandleMessage(msg Message, xid uint32, reply ReplyFunc) {
	h.got = append(h.got, msg)
	if h.reply != nil {
		reply(h.reply, xid)
	}
}

func TestServeDispatches(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	a, b := NewConn(c1), NewConn(c2)
	h := &recordingHandler{reply: &BarrierReply{}}
	done := make(chan error, 1)
	go func() { done <- Serve(b, h) }()

	xid, err := a.Send(&BarrierRequest{})
	if err != nil {
		t.Fatal(err)
	}
	reply, rxid, err := a.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type() != TypeBarrierReply || rxid != xid {
		t.Errorf("reply %s xid %d", reply.Type(), rxid)
	}
	c2.Close()
	<-done
	if len(h.got) != 1 || h.got[0].Type() != TypeBarrierRequest {
		t.Errorf("handler saw %v", h.got)
	}
}

func TestSimTransportPair(t *testing.T) {
	eng := sim.NewEngine(1)
	ctrl := &recordingHandler{}
	dp := &recordingHandler{reply: &BarrierReply{}}
	toDP, _ := Pair(eng, 50*time.Microsecond, ctrl, dp)

	var sentXID uint32
	eng.At(0, func() {
		sentXID = toDP.Send(&BarrierRequest{})
	})
	eng.Run()
	if len(dp.got) != 1 || dp.got[0].Type() != TypeBarrierRequest {
		t.Fatalf("data plane saw %v", dp.got)
	}
	if len(ctrl.got) != 1 || ctrl.got[0].Type() != TypeBarrierReply {
		t.Fatalf("controller saw %v", ctrl.got)
	}
	_ = sentXID
	// One-way delay each direction: full exchange completes at 100µs.
	if eng.Now() != 100*time.Microsecond {
		t.Errorf("exchange finished at %v, want 100µs", eng.Now())
	}
	if toDP.Sent != 1 || toDP.SentBytes == 0 {
		t.Errorf("accounting: sent=%d bytes=%d", toDP.Sent, toDP.SentBytes)
	}
}

// Property: FlowMod round-trips for arbitrary patterns.
func TestFlowModRoundTripProperty(t *testing.T) {
	f := func(tenant, src, dst uint32, srcPfx, dstPfx uint8, sp, dp uint16, proto uint8, prio uint16, out bool, cookie uint64) bool {
		m := &FlowMod{
			Command: FlowDelete,
			Pattern: rules.Pattern{
				Tenant: packet.TenantID(tenant),
				Src:    packet.IP(src), SrcPrefix: int(srcPfx % 33),
				Dst: packet.IP(dst), DstPrefix: int(dstPfx % 33),
				SrcPort: sp, DstPort: dp, Proto: proto,
			},
			Priority: prio,
			Cookie:   cookie,
		}
		if out {
			m.Out = PathVF
		}
		got, xid, _, err := Decode(Encode(m, 7))
		if err != nil || xid != 7 {
			return false
		}
		return reflect.DeepEqual(got, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEncodeOversizedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("oversized message encoded without panic")
		}
	}()
	big := &StatsReply{Flows: make([]FlowStat, 3000)}
	Encode(big, 1)
}

func TestChunkDemandReport(t *testing.T) {
	rep := DemandReport{ServerID: 4, Interval: 9,
		Splits: []RateSplit{{Tenant: 1}},
	}
	for i := 0; i < 2100; i++ {
		rep.Entries = append(rep.Entries, DemandEntry{PPS: float64(i)})
	}
	chunks := ChunkDemandReport(rep)
	if len(chunks) != 3 {
		t.Fatalf("chunks = %d, want 3", len(chunks))
	}
	total := 0
	for i, ch := range chunks {
		if ch.ServerID != 4 || ch.Interval != 9 {
			t.Errorf("chunk %d header wrong", i)
		}
		if i == 0 && len(ch.Splits) != 1 {
			t.Error("splits missing from first chunk")
		}
		if i > 0 && len(ch.Splits) != 0 {
			t.Error("splits duplicated on later chunk")
		}
		// Each chunk must encode within the frame limit.
		_ = Encode(&ch, 1)
		total += len(ch.Entries)
	}
	if total != 2100 {
		t.Errorf("entries lost: %d", total)
	}
	// Small reports pass through unchunked.
	small := DemandReport{Entries: make([]DemandEntry, 5)}
	if got := ChunkDemandReport(small); len(got) != 1 {
		t.Errorf("small report chunked into %d", len(got))
	}
}

// TestChunkDemandReportSketchMeta: sketch metadata rides the first chunk
// only, and every chunk of a sketch-mode report round-trips on the wire.
func TestChunkDemandReportSketchMeta(t *testing.T) {
	rep := DemandReport{ServerID: 4, Interval: 9,
		Sketch: &SketchMeta{TopK: 2048, Width: 4096, Depth: 4, Floor: 31, Evictions: 5},
	}
	for i := 0; i < 2100; i++ {
		rep.Entries = append(rep.Entries, DemandEntry{PPS: float64(i)})
	}
	for i, ch := range ChunkDemandReport(rep) {
		if i == 0 && !reflect.DeepEqual(ch.Sketch, rep.Sketch) {
			t.Error("sketch meta missing from first chunk")
		}
		if i > 0 && ch.Sketch != nil {
			t.Error("sketch meta duplicated on later chunk")
		}
		got, _, _, err := Decode(Encode(&ch, 1))
		if err != nil {
			t.Fatalf("chunk %d: decode: %v", i, err)
		}
		want := ch
		if !reflect.DeepEqual(got, &want) {
			t.Errorf("chunk %d: round trip mismatch", i)
		}
	}
}

// TestDemandReportLegacyBodyTails pins the optional-tail compatibility:
// bodies truncated before the NIC and sketch sections still decode, with
// the absent sections zero.
func TestDemandReportLegacyBodyTails(t *testing.T) {
	full := &DemandReport{ServerID: 1, Interval: 2,
		Entries: []DemandEntry{{Pattern: samplePattern(), PPS: 10}},
		Sketch:  &SketchMeta{TopK: 8, Floor: 3},
	}
	wire := Encode(full, 7)
	// The sketch tail is 1 flag byte + 3×u32 + 2×u64 = 29 bytes; the NIC
	// tail before it is 2×u32 = 8 bytes (no patterns). Truncate each off,
	// fixing up the frame length.
	for _, cut := range []int{29, 29 + 8} {
		trunc := append([]byte(nil), wire[:len(wire)-cut]...)
		trunc[2] = byte(len(trunc) >> 8)
		trunc[3] = byte(len(trunc))
		msg, _, _, err := Decode(trunc)
		if err != nil {
			t.Fatalf("legacy body (cut %d) rejected: %v", cut, err)
		}
		got := msg.(*DemandReport)
		if got.Sketch != nil {
			t.Errorf("cut %d: sketch meta materialized from a legacy body", cut)
		}
		if len(got.Entries) != 1 || got.Entries[0].PPS != 10 {
			t.Errorf("cut %d: entries corrupted: %+v", cut, got.Entries)
		}
	}
}
