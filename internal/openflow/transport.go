package openflow

import (
	"math/rand"
	"time"

	"repro/internal/sim"
)

// Transport is the deterministic in-simulation control channel: messages
// are encoded to wire bytes, delayed by the configured control-plane RTT
// contribution, decoded at the far side and dispatched — the same byte
// path as Conn, without goroutines, so simulations stay reproducible.
//
// A Transport is one direction; a control connection is a pair.
//
// Fault injection (internal/faults): a transport can be taken down (all
// messages silently lost, as on a dropped OpenFlow TCP connection),
// subjected to probabilistic message loss, or given extra delivery delay.
// Consumers must tolerate all three — see internal/core's retry,
// barrier-confirmation and anti-entropy machinery.
type Transport struct {
	eng   *sim.Engine
	delay time.Duration
	peer  Handler
	// remote, when non-nil, switches the transport to remote mode: frames
	// are handed to this sender (typically Conn.WriteFrame over TCP)
	// instead of being delivered in-simulation. Counters and fault hooks
	// keep their exact semantics, so controller code and the overhead
	// accounting are identical in both modes. eng and peer are unused in
	// remote mode — the receive path is the peer process's read loop.
	remote RemoteSender
	// Sent counts messages, and SentBytes wire bytes, for the
	// controller-overhead experiment (§6.2.2). Sent counts attempts;
	// Dropped counts the subset lost to injected faults.
	Sent      uint64
	SentBytes uint64
	Dropped   uint64
	nextXID   uint32

	down     bool
	lossProb float64
	lossRng  *rand.Rand
	extra    time.Duration
}

// NewTransport builds a channel delivering to peer after delay.
func NewTransport(eng *sim.Engine, delay time.Duration, peer Handler) *Transport {
	return &Transport{eng: eng, delay: delay, peer: peer, nextXID: 1}
}

// SetPeer rewires the receiving handler (topology assembly).
func (t *Transport) SetPeer(peer Handler) { t.peer = peer }

// SetDown severs (down=true) or restores (down=false) the channel.
// While down every message is dropped — the deterministic analogue of a
// broken control connection. Messages already in flight still arrive
// (they are on the wire).
func (t *Transport) SetDown(down bool) { t.down = down }

// SetLoss installs probabilistic message loss with the given probability,
// drawn from rng (seed it for reproducible runs). prob <= 0 or nil rng
// clears loss.
func (t *Transport) SetLoss(prob float64, rng *rand.Rand) {
	if prob <= 0 || rng == nil {
		t.lossProb, t.lossRng = 0, nil
		return
	}
	t.lossProb, t.lossRng = prob, rng
}

// SetExtraDelay adds d on top of the configured control delay for
// subsequent messages (injected congestion on the control network).
func (t *Transport) SetExtraDelay(d time.Duration) {
	if d < 0 {
		d = 0
	}
	t.extra = d
}

// Send encodes msg, schedules delivery, and returns its xid.
func (t *Transport) Send(msg Message) uint32 {
	xid := t.nextXID
	t.nextXID++
	t.send(msg, xid)
	return xid
}

// Reply sends msg echoing an existing xid.
func (t *Transport) Reply(msg Message, xid uint32) { t.send(msg, xid) }

func (t *Transport) send(msg Message, xid uint32) {
	wire := Encode(msg, xid)
	t.Sent++
	t.SentBytes += uint64(len(wire))
	if t.down || (t.lossRng != nil && t.lossRng.Float64() < t.lossProb) {
		t.Dropped++
		return
	}
	if t.remote != nil {
		// Remote mode: the frame goes onto a real byte stream. A send
		// error is a dropped message, exactly like a faulted in-sim
		// channel — consumers already tolerate loss (retries, barriers,
		// anti-entropy), and the connection supervisor handles redial.
		if err := t.remote(wire); err != nil {
			t.Dropped++
		}
		return
	}
	t.eng.After(t.delay+t.extra, func() {
		if t.peer == nil {
			return
		}
		decoded, rxid, _, err := Decode(wire)
		if err != nil {
			// A codec that cannot decode its own output is a
			// programming error; fail loudly in simulation.
			panic("openflow: transport decode: " + err.Error())
		}
		t.peer.HandleMessage(decoded, rxid, func(m Message, x uint32) {
			// Replies travel the reverse direction with the same
			// delay; deliver directly to avoid requiring a
			// back-channel object for every pair.
			_ = m
			_ = x
		})
	})
}

// Pair wires two handlers together and returns the two directed
// transports. Replies issued via the ReplyFunc are delivered over the
// opposite transport.
func Pair(eng *sim.Engine, delay time.Duration, a, b Handler) (ab, ba *Transport) {
	ab = NewTransport(eng, delay, nil)
	ba = NewTransport(eng, delay, nil)
	ab.peer = handlerWithReply{h: b, back: ba}
	ba.peer = handlerWithReply{h: a, back: ab}
	return ab, ba
}

// handlerWithReply routes replies over the reverse transport.
type handlerWithReply struct {
	h    Handler
	back *Transport
}

func (hw handlerWithReply) HandleMessage(msg Message, xid uint32, _ ReplyFunc) {
	hw.h.HandleMessage(msg, xid, func(m Message, x uint32) {
		hw.back.Reply(m, x)
	})
}
