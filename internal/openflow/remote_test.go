package openflow

import (
	"errors"
	"net"
	"testing"
	"time"
)

func TestRemoteTransportHandsEncodedFrames(t *testing.T) {
	var frames [][]byte
	tr := NewRemoteTransport(func(frame []byte) error {
		frames = append(frames, append([]byte(nil), frame...))
		return nil
	})
	rep := &DemandReport{ServerID: 7, Interval: 3}
	tr.Send(rep)
	tr.Send(&BarrierRequest{})

	if tr.Sent != 2 || len(frames) != 2 {
		t.Fatalf("sent %d frames, counted %d", len(frames), tr.Sent)
	}
	if tr.SentBytes != uint64(len(frames[0])+len(frames[1])) {
		t.Fatalf("SentBytes %d != frame bytes", tr.SentBytes)
	}
	msg, _, _, err := Decode(frames[0])
	if err != nil {
		t.Fatal(err)
	}
	got, ok := msg.(*DemandReport)
	if !ok || got.ServerID != 7 || got.Interval != 3 {
		t.Fatalf("decoded %#v", msg)
	}
	// XIDs advance per message like the in-sim transport.
	_, x1, _, _ := Decode(frames[0])
	_, x2, _, _ := Decode(frames[1])
	if x2 != x1+1 {
		t.Fatalf("xids %d, %d; want consecutive", x1, x2)
	}
}

func TestRemoteTransportFaultHooks(t *testing.T) {
	sent := 0
	tr := NewRemoteTransport(func([]byte) error { sent++; return nil })
	tr.SetDown(true)
	tr.Send(&BarrierRequest{})
	if sent != 0 || tr.Dropped != 1 {
		t.Fatalf("down transport delivered (sent=%d dropped=%d)", sent, tr.Dropped)
	}
	tr.SetDown(false)
	tr.Send(&BarrierRequest{})
	if sent != 1 {
		t.Fatalf("recovered transport did not deliver")
	}
}

func TestRemoteTransportSendErrorCountsDropped(t *testing.T) {
	tr := NewRemoteTransport(func([]byte) error { return errors.New("broken pipe") })
	tr.Send(&BarrierRequest{})
	if tr.Dropped != 1 || tr.Sent != 1 {
		t.Fatalf("sent=%d dropped=%d; a failed write is a counted send and a drop",
			tr.Sent, tr.Dropped)
	}
}

// TestRemoteTransportOverTCP round-trips a message through a real TCP
// connection: remote transport → Conn.WriteFrame → wire → Conn.Recv.
func TestRemoteTransportOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type recv struct {
		msg Message
		err error
	}
	got := make(chan recv, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			got <- recv{nil, err}
			return
		}
		defer nc.Close()
		conn := NewConn(nc)
		msg, _, err := conn.Recv()
		got <- recv{msg, err}
	}()

	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	conn := NewConn(nc)
	tr := NewRemoteTransport(conn.WriteFrame)
	tr.Send(&SyncAck{ServerID: 4, Seq: 9})

	select {
	case r := <-got:
		if r.err != nil {
			t.Fatal(r.err)
		}
		ack, ok := r.msg.(*SyncAck)
		if !ok || ack.ServerID != 4 || ack.Seq != 9 {
			t.Fatalf("received %#v", r.msg)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("frame never arrived")
	}
}
