// Package openflow implements the control protocol between the FasTrak
// rule manager and its data-plane elements: the flow placer in each VM's
// bonding driver exposes "an OpenFlow interface, allowing the FasTrak rule
// manager to direct a subset of flows via the SR-IOV interface" (§4.1.1),
// and the TOR controller issues "OpenFlow table and flow stats requests"
// (§5.2).
//
// The protocol is a compact OpenFlow-style binary framing: an 8-byte
// header (version, type, length, xid) followed by a typed body. It runs
// over any io.ReadWriter — real net.Conns in deployments and tests, and a
// deterministic in-simulation transport (see Transport) inside the
// discrete-event testbed. Both use the same byte format, so the codecs are
// exercised on every control-plane exchange.
package openflow

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/packet"
	"repro/internal/rules"
)

// Version identifies this protocol revision.
const Version = 1

// MsgType discriminates message bodies.
type MsgType uint8

// Message types.
const (
	TypeHello MsgType = iota + 1
	TypeEchoRequest
	TypeEchoReply
	TypeFlowMod
	TypeStatsRequest
	TypeStatsReply
	TypeBarrierRequest
	TypeBarrierReply
	// TypeDemandReport is the FasTrak experimenter message carrying a
	// local ME's network demand report to the TOR controller (§4.3.1).
	TypeDemandReport
	// TypeOffloadDecision is the FasTrak experimenter message carrying
	// the TOR DE's offload/demote decisions and rate-limit splits back
	// to local controllers (§4.3.2).
	TypeOffloadDecision
	// TypeError reports that a prior request (by xid) failed at the
	// data-plane element — e.g. a FLOW_MOD rejected by a full or faulty
	// TCAM. Mirrors OpenFlow's OFPT_ERROR.
	TypeError
	// TypeRuleSync carries the TOR DE's full desired offload set to a
	// local controller — the anti-entropy complement to incremental
	// OffloadDecision diffs: a receiver reconciles its placer state
	// against it, so any number of lost decisions self-heal.
	TypeRuleSync
	// TypeSyncAck acknowledges a RuleSync after the local controller has
	// programmed its placers; the TOR controller gates hardware rule
	// removal on it so no placer still steers a flow at a rule being
	// deleted.
	TypeSyncAck
	// TypeTableRequest asks a switch agent for its installed rule table.
	TypeTableRequest
	// TypeTableReply reports the switch's installed rules — the
	// "reported hardware state" reconciliation diffs against.
	TypeTableReply
	// TypeOverloadHint is the FasTrak experimenter message a local
	// controller raises when its vswitch slow path enters (or leaves)
	// CPU overload: an out-of-band degradation signal asking the TOR DE
	// to prioritize offloading the dominant tenant's aggregates instead
	// of waiting for the next demand-report cycle.
	TypeOverloadHint
	// TypeLeaderHeartbeat is the control-plane HA message a TOR DE
	// leader broadcasts to its hot-standby replicas: "term T is alive
	// and replica L leads it". Standbys reset their election timers on
	// it; a replica holding a newer term answers a stale heartbeat with
	// its own view so a partitioned ex-leader converges after healing.
	TypeLeaderHeartbeat
)

func (t MsgType) String() string {
	switch t {
	case TypeHello:
		return "HELLO"
	case TypeEchoRequest:
		return "ECHO_REQUEST"
	case TypeEchoReply:
		return "ECHO_REPLY"
	case TypeFlowMod:
		return "FLOW_MOD"
	case TypeStatsRequest:
		return "STATS_REQUEST"
	case TypeStatsReply:
		return "STATS_REPLY"
	case TypeBarrierRequest:
		return "BARRIER_REQUEST"
	case TypeBarrierReply:
		return "BARRIER_REPLY"
	case TypeDemandReport:
		return "DEMAND_REPORT"
	case TypeOffloadDecision:
		return "OFFLOAD_DECISION"
	case TypeError:
		return "ERROR"
	case TypeRuleSync:
		return "RULE_SYNC"
	case TypeSyncAck:
		return "SYNC_ACK"
	case TypeTableRequest:
		return "TABLE_REQUEST"
	case TypeTableReply:
		return "TABLE_REPLY"
	case TypeOverloadHint:
		return "OVERLOAD_HINT"
	case TypeLeaderHeartbeat:
		return "LEADER_HEARTBEAT"
	default:
		return fmt.Sprintf("UNKNOWN(%d)", uint8(t))
	}
}

// headerLen is the fixed message header size.
const headerLen = 8

// maxBody bounds message bodies against corrupt length fields.
const maxBody = 1 << 20

// Message is one protocol message.
type Message interface {
	Type() MsgType
	marshalBody(b *buffer)
	unmarshalBody(b *reader) error
}

// Hello opens a connection.
type Hello struct{}

// Type implements Message.
func (Hello) Type() MsgType               { return TypeHello }
func (Hello) marshalBody(*buffer)         {}
func (Hello) unmarshalBody(*reader) error { return nil }

// EchoRequest is a liveness probe; EchoReply answers it.
type EchoRequest struct{}

// Type implements Message.
func (EchoRequest) Type() MsgType               { return TypeEchoRequest }
func (EchoRequest) marshalBody(*buffer)         {}
func (EchoRequest) unmarshalBody(*reader) error { return nil }

// EchoReply answers an EchoRequest.
type EchoReply struct{}

// Type implements Message.
func (EchoReply) Type() MsgType               { return TypeEchoReply }
func (EchoReply) marshalBody(*buffer)         {}
func (EchoReply) unmarshalBody(*reader) error { return nil }

// FlowModCommand selects the FlowMod operation.
type FlowModCommand uint8

// FlowMod commands.
const (
	FlowAdd FlowModCommand = iota
	FlowDelete
)

// Path selects the interface the flow placer steers matching flows to.
type Path uint8

// Flow placer output paths (§4.1.1).
const (
	PathVIF Path = iota // default: through the vswitch
	PathVF              // express lane: SR-IOV bypass
)

func (p Path) String() string {
	if p == PathVF {
		return "vf"
	}
	return "vif"
}

// FlowMod installs or removes a wildcard rule in a flow placer's control
// plane (or a rule in the emulated switch's table).
type FlowMod struct {
	Command  FlowModCommand
	Pattern  rules.Pattern
	Priority uint16
	Out      Path
	// Cookie correlates the rule with the controller's bookkeeping.
	Cookie uint64
	// Term is the issuing leader's election term and Origin its replica
	// id — the epoch fence: a receiver that has seen a newer term
	// rejects the mod, so a partitioned ex-leader cannot fight its
	// successor. Both travel in an optional tail section (omitted when
	// zero) so pre-HA byte streams are unchanged.
	Term   uint32
	Origin uint32
}

// Type implements Message.
func (*FlowMod) Type() MsgType { return TypeFlowMod }

func (m *FlowMod) marshalBody(b *buffer) {
	b.u8(uint8(m.Command))
	b.u8(uint8(m.Out))
	b.u16(m.Priority)
	b.u64(m.Cookie)
	marshalPattern(b, m.Pattern)
	marshalTermTail(b, m.Term, m.Origin)
}

func (m *FlowMod) unmarshalBody(r *reader) error {
	m.Command = FlowModCommand(r.u8())
	m.Out = Path(r.u8())
	m.Priority = r.u16()
	m.Cookie = r.u64()
	m.Pattern = unmarshalPattern(r)
	m.Term, m.Origin = unmarshalTermTail(r)
	return r.err
}

// marshalTermTail appends the optional epoch-fence tail (term + origin
// replica). Written only when non-zero so legacy single-controller runs
// stay byte-identical on the wire.
func marshalTermTail(b *buffer, term, origin uint32) {
	if term == 0 && origin == 0 {
		return
	}
	b.u32(term)
	b.u32(origin)
}

// unmarshalTermTail consumes the optional epoch-fence tail if present.
func unmarshalTermTail(r *reader) (term, origin uint32) {
	if r.err != nil || r.remaining() == 0 {
		return 0, 0
	}
	return r.u32(), r.u32()
}

// StatsRequest asks a data-plane element for its per-flow counters.
type StatsRequest struct{}

// Type implements Message.
func (*StatsRequest) Type() MsgType               { return TypeStatsRequest }
func (*StatsRequest) marshalBody(*buffer)         {}
func (*StatsRequest) unmarshalBody(*reader) error { return nil }

// FlowStat is one flow's counters in a StatsReply.
type FlowStat struct {
	Key     packet.FlowKey
	Packets uint64
	Bytes   uint64
}

// StatsReply carries per-flow counters.
type StatsReply struct {
	Flows []FlowStat
}

// Type implements Message.
func (*StatsReply) Type() MsgType { return TypeStatsReply }

func (m *StatsReply) marshalBody(b *buffer) {
	b.u32(uint32(len(m.Flows)))
	for _, f := range m.Flows {
		marshalKey(b, f.Key)
		b.u64(f.Packets)
		b.u64(f.Bytes)
	}
}

func (m *StatsReply) unmarshalBody(r *reader) error {
	n := r.u32()
	if uint64(n)*29 > uint64(r.remaining()) {
		return fmt.Errorf("openflow: stats reply claims %d flows beyond body", n)
	}
	if n == 0 {
		return r.err
	}
	m.Flows = make([]FlowStat, n)
	for i := range m.Flows {
		m.Flows[i].Key = unmarshalKey(r)
		m.Flows[i].Packets = r.u64()
		m.Flows[i].Bytes = r.u64()
	}
	return r.err
}

// BarrierRequest asks the element to finish processing all prior messages
// before replying — used when flow migration must be ordered (§6.2.2).
type BarrierRequest struct{}

// Type implements Message.
func (*BarrierRequest) Type() MsgType               { return TypeBarrierRequest }
func (*BarrierRequest) marshalBody(*buffer)         {}
func (*BarrierRequest) unmarshalBody(*reader) error { return nil }

// BarrierReply answers a BarrierRequest.
type BarrierReply struct{}

// Type implements Message.
func (*BarrierReply) Type() MsgType               { return TypeBarrierReply }
func (*BarrierReply) marshalBody(*buffer)         {}
func (*BarrierReply) unmarshalBody(*reader) error { return nil }

// DemandEntry is one flow or flow aggregate's measurement in a demand
// report: <flow/flowaggregate, pps, bps, epoch#> (§4.3.1).
type DemandEntry struct {
	Pattern rules.Pattern
	PPS     float64
	BPS     float64
	Epoch   uint32
	// MedianPPS and MedianBPS summarize the last M control intervals
	// ("The report also contains historical information about the
	// median pps and bps seen for flows").
	MedianPPS float64
	MedianBPS float64
	// ActiveEpochs is n, the number of epochs the flow was active —
	// the frequency component of the DE's score S = n × m_pps.
	ActiveEpochs uint32
}

// DemandReport is a local controller ME's periodic report to its TOR
// controller. Besides flow measurements it carries the hardware-side rate
// limits the local DE computed with FPS, for the TOR controller to
// install ("rate limits on the SR-IOV VF are applied at the TOR",
// §4.1.4).
type DemandReport struct {
	ServerID uint32
	Interval uint32 // control interval sequence number
	Entries  []DemandEntry
	Splits   []RateSplit
	// NICFree is the host SmartNIC's free rule-table capacity (0 when the
	// host has no SmartNIC); NICPatterns lists the rules currently in its
	// table, so the TOR DE can reconcile desired against reported NIC
	// state without a second barrier machine. Both ride on the first
	// chunk only (like Splits) and are absent from legacy bodies.
	NICFree     uint32
	NICPatterns []rules.Pattern
	// Sketch carries the streaming-accounting metadata when the sender
	// runs sketch mode (nil in exact mode and in legacy bodies): the
	// sketch dimensions plus the space-saving floor, which bounds the
	// demand any pattern absent from the report can be hiding. Rides on
	// the first chunk only, like Splits.
	Sketch *SketchMeta
}

// SketchMeta describes the bounded-memory accounting behind a sketch-mode
// demand report (see internal/sketch).
type SketchMeta struct {
	// TopK, Width and Depth are the sender's sketch dimensions.
	TopK, Width, Depth uint32
	// Floor is the minimum monitored packet count: any pattern missing
	// from the report has true count ≤ Floor. 0 means the report is
	// exhaustive (the top-k never filled).
	Floor uint64
	// Evictions counts top-k takeovers since the accountant started —
	// nonzero means the live pattern population exceeded TopK.
	Evictions uint64
}

// Type implements Message.
func (*DemandReport) Type() MsgType { return TypeDemandReport }

func (m *DemandReport) marshalBody(b *buffer) {
	b.u32(m.ServerID)
	b.u32(m.Interval)
	b.u32(uint32(len(m.Entries)))
	for _, e := range m.Entries {
		marshalPattern(b, e.Pattern)
		b.f64(e.PPS)
		b.f64(e.BPS)
		b.u32(e.Epoch)
		b.f64(e.MedianPPS)
		b.f64(e.MedianBPS)
		b.u32(e.ActiveEpochs)
	}
	marshalSplits(b, m.Splits)
	b.u32(m.NICFree)
	b.u32(uint32(len(m.NICPatterns)))
	for _, p := range m.NICPatterns {
		marshalPattern(b, p)
	}
	if m.Sketch != nil {
		b.u8(1)
		b.u32(m.Sketch.TopK)
		b.u32(m.Sketch.Width)
		b.u32(m.Sketch.Depth)
		b.u64(m.Sketch.Floor)
		b.u64(m.Sketch.Evictions)
	} else {
		b.u8(0)
	}
}

func (m *DemandReport) unmarshalBody(r *reader) error {
	m.ServerID = r.u32()
	m.Interval = r.u32()
	n := r.u32()
	if uint64(n)*58 > uint64(r.remaining()) {
		return fmt.Errorf("openflow: demand report claims %d entries beyond body", n)
	}
	if n > 0 {
		m.Entries = make([]DemandEntry, n)
	}
	for i := range m.Entries {
		e := &m.Entries[i]
		e.Pattern = unmarshalPattern(r)
		e.PPS = r.f64()
		e.BPS = r.f64()
		e.Epoch = r.u32()
		e.MedianPPS = r.f64()
		e.MedianBPS = r.f64()
		e.ActiveEpochs = r.u32()
	}
	var err error
	m.Splits, err = unmarshalSplits(r)
	if err != nil {
		return err
	}
	if r.remaining() == 0 {
		return r.err // legacy body without the NIC section
	}
	m.NICFree = r.u32()
	np := r.u32()
	// Each NIC pattern is 20 bytes on the wire.
	if uint64(np)*20 > uint64(r.remaining()) {
		return fmt.Errorf("openflow: demand report claims %d nic patterns beyond body", np)
	}
	if np > 0 {
		m.NICPatterns = make([]rules.Pattern, np)
		for i := range m.NICPatterns {
			m.NICPatterns[i] = unmarshalPattern(r)
		}
	}
	if r.remaining() == 0 {
		return r.err // body without the sketch section
	}
	if r.u8() != 0 {
		m.Sketch = &SketchMeta{
			TopK:      r.u32(),
			Width:     r.u32(),
			Depth:     r.u32(),
			Floor:     r.u64(),
			Evictions: r.u64(),
		}
	}
	return r.err
}

func marshalSplits(b *buffer, splits []RateSplit) {
	b.u32(uint32(len(splits)))
	for _, s := range splits {
		b.u32(uint32(s.Tenant))
		b.u32(uint32(s.VMIP))
		b.f64(s.EgressSoftBps)
		b.f64(s.EgressHardBps)
		b.f64(s.IngressSoftBps)
		b.f64(s.IngressHardBps)
	}
}

func unmarshalSplits(r *reader) ([]RateSplit, error) {
	ns := r.u32()
	if uint64(ns)*40 > uint64(r.remaining()) {
		return nil, fmt.Errorf("openflow: %d rate splits beyond body", ns)
	}
	if ns == 0 {
		return nil, nil
	}
	out := make([]RateSplit, ns)
	for i := range out {
		s := &out[i]
		s.Tenant = packet.TenantID(r.u32())
		s.VMIP = packet.IP(r.u32())
		s.EgressSoftBps = r.f64()
		s.EgressHardBps = r.f64()
		s.IngressSoftBps = r.f64()
		s.IngressHardBps = r.f64()
	}
	return out, nil
}

// Offload action tiers. The tier rides in the high bits of the action's
// flag byte, so a zero tier keeps pre-SmartNIC wire semantics.
const (
	// TierTCAM targets the ToR TCAM express lane (the legacy default).
	TierTCAM uint8 = 0
	// TierNIC targets the sending host's SmartNIC table.
	TierNIC uint8 = 1
)

// OffloadAction is one element of an offload decision.
type OffloadAction struct {
	Pattern rules.Pattern
	// Offload directs the flow into the tier when true, back out of it
	// when false (a demotion).
	Offload bool
	// Tier selects the hardware tier the action concerns (TierTCAM or
	// TierNIC). Packed into the same wire flag byte as Offload.
	Tier uint8
}

// RateSplit is the FPS outcome for one VM interface pair (§4.3.2): the
// limits Rs and Rh (already including the overflow O) per direction.
type RateSplit struct {
	Tenant packet.TenantID
	VMIP   packet.IP
	// Egress/Ingress software (VIF) and hardware (VF) limits in bps.
	EgressSoftBps, EgressHardBps   float64
	IngressSoftBps, IngressHardBps float64
}

// VMRate is a per-VM hardware-path rate observation the TOR controller
// shares with local controllers, which need it as the hardware-demand
// input to their FPS computation (§4.3.2).
type VMRate struct {
	Tenant packet.TenantID
	VMIP   packet.IP
	// EgressBps/IngressBps are the measured hardware-path rates, and
	// EgressMaxed/IngressMaxed whether each direction hit its limit.
	EgressBps, IngressBps     float64
	EgressMaxed, IngressMaxed bool
}

// OffloadDecision is the TOR DE's directive to a local controller:
// offload/demote actions plus the hardware-path rate observations for
// co-resident VMs.
type OffloadDecision struct {
	Interval uint32
	Actions  []OffloadAction
	HWRates  []VMRate
	// Term/Origin epoch-fence the decision (see FlowMod): local
	// controllers ignore decisions from a stale leader. Optional tail,
	// omitted when zero.
	Term   uint32
	Origin uint32
}

// Type implements Message.
func (*OffloadDecision) Type() MsgType { return TypeOffloadDecision }

func (m *OffloadDecision) marshalBody(b *buffer) {
	b.u32(m.Interval)
	b.u32(uint32(len(m.Actions)))
	for _, a := range m.Actions {
		marshalPattern(b, a.Pattern)
		flags := a.Tier << 1
		if a.Offload {
			flags |= 1
		}
		b.u8(flags)
	}
	b.u32(uint32(len(m.HWRates)))
	for _, s := range m.HWRates {
		b.u32(uint32(s.Tenant))
		b.u32(uint32(s.VMIP))
		b.f64(s.EgressBps)
		b.f64(s.IngressBps)
		var flags uint8
		if s.EgressMaxed {
			flags |= 1
		}
		if s.IngressMaxed {
			flags |= 2
		}
		b.u8(flags)
	}
	marshalTermTail(b, m.Term, m.Origin)
}

func (m *OffloadDecision) unmarshalBody(r *reader) error {
	m.Interval = r.u32()
	na := r.u32()
	// Each action is a 20-byte pattern plus a 1-byte flag.
	if uint64(na)*21 > uint64(r.remaining()) {
		return fmt.Errorf("openflow: decision claims %d actions beyond body", na)
	}
	if na > 0 {
		m.Actions = make([]OffloadAction, na)
	}
	for i := range m.Actions {
		m.Actions[i].Pattern = unmarshalPattern(r)
		flags := r.u8()
		m.Actions[i].Offload = flags&1 != 0
		m.Actions[i].Tier = flags >> 1
	}
	ns := r.u32()
	if uint64(ns)*25 > uint64(r.remaining()) {
		return fmt.Errorf("openflow: decision claims %d rates beyond body", ns)
	}
	if ns > 0 {
		m.HWRates = make([]VMRate, ns)
	}
	for i := range m.HWRates {
		s := &m.HWRates[i]
		s.Tenant = packet.TenantID(r.u32())
		s.VMIP = packet.IP(r.u32())
		s.EgressBps = r.f64()
		s.IngressBps = r.f64()
		flags := r.u8()
		s.EgressMaxed = flags&1 != 0
		s.IngressMaxed = flags&2 != 0
	}
	m.Term, m.Origin = unmarshalTermTail(r)
	return r.err
}

// Error codes carried by ErrorMsg.
const (
	// ErrCodeTableFull: the hardware rule table has no free entries.
	ErrCodeTableFull uint16 = 1
	// ErrCodeRejected: the hardware rejected the operation (transient or
	// permanent fault).
	ErrCodeRejected uint16 = 2
	// ErrCodeStaleTerm: the request carried an election term older than
	// the newest the element has seen — the sender is a fenced-out
	// ex-leader and must step down.
	ErrCodeStaleTerm uint16 = 3
)

// ErrorMsg reports a failed request; its xid echoes the failing request's.
type ErrorMsg struct {
	Code uint16
}

// Type implements Message.
func (*ErrorMsg) Type() MsgType           { return TypeError }
func (m *ErrorMsg) marshalBody(b *buffer) { b.u16(m.Code) }
func (m *ErrorMsg) unmarshalBody(r *reader) error {
	m.Code = r.u16()
	return r.err
}

// RuleSync is the TOR controller's full desired offload set, sequenced so
// receivers and the sender agree on which state an ack covers. Stale or
// duplicate syncs (Seq ≤ last applied) are applied idempotently.
type RuleSync struct {
	Seq      uint32
	Patterns []rules.Pattern
	// Term/Origin epoch-fence the sync; sequence numbers are scoped to
	// a term (a new leader starts a fresh sequence space). Optional
	// tail, omitted when zero.
	Term   uint32
	Origin uint32
}

// Type implements Message.
func (*RuleSync) Type() MsgType { return TypeRuleSync }

func (m *RuleSync) marshalBody(b *buffer) {
	b.u32(m.Seq)
	b.u32(uint32(len(m.Patterns)))
	for _, p := range m.Patterns {
		marshalPattern(b, p)
	}
	marshalTermTail(b, m.Term, m.Origin)
}

func (m *RuleSync) unmarshalBody(r *reader) error {
	m.Seq = r.u32()
	n := r.u32()
	if uint64(n)*20 > uint64(r.remaining()) {
		return fmt.Errorf("openflow: rule sync claims %d patterns beyond body", n)
	}
	if n > 0 {
		m.Patterns = make([]rules.Pattern, n)
	}
	for i := range m.Patterns {
		m.Patterns[i] = unmarshalPattern(r)
	}
	m.Term, m.Origin = unmarshalTermTail(r)
	return r.err
}

// SyncAck confirms a RuleSync was applied by the given server. Term
// scopes the acknowledged sequence number: a leader ignores acks from a
// different term's sequence space.
type SyncAck struct {
	ServerID uint32
	Seq      uint32
	Term     uint32
}

// Type implements Message.
func (*SyncAck) Type() MsgType { return TypeSyncAck }

func (m *SyncAck) marshalBody(b *buffer) {
	b.u32(m.ServerID)
	b.u32(m.Seq)
	if m.Term != 0 {
		b.u32(m.Term)
	}
}

func (m *SyncAck) unmarshalBody(r *reader) error {
	m.ServerID = r.u32()
	m.Seq = r.u32()
	if r.err == nil && r.remaining() > 0 {
		m.Term = r.u32()
	}
	return r.err
}

// TableRequest asks a switch agent for its installed rules. When the
// requester is an HA leader it carries the leader's term in the optional
// tail — the agent treats a current-term table walk as proof of
// control-plane liveness and refreshes every rule lease (§lease
// lifecycle: refresh rides the reconcile cadence).
type TableRequest struct {
	Term   uint32
	Origin uint32
}

// Type implements Message.
func (*TableRequest) Type() MsgType { return TypeTableRequest }
func (m *TableRequest) marshalBody(b *buffer) {
	marshalTermTail(b, m.Term, m.Origin)
}
func (m *TableRequest) unmarshalBody(r *reader) error {
	m.Term, m.Origin = unmarshalTermTail(r)
	return r.err
}

// TableRule is one installed hardware rule in a TableReply.
type TableRule struct {
	Pattern  rules.Pattern
	Priority uint16
	Queue    uint8
}

// MaxTableRules bounds a TableReply to the 64 KiB frame (each rule is 23
// wire bytes). Larger tables are truncated; reconciliation against a
// truncated view is conservative — missing desired entries are simply
// re-asserted idempotently on a later round.
const MaxTableRules = 2800

// TableReply reports the switch's installed rules.
type TableReply struct {
	Rules []TableRule
}

// Type implements Message.
func (*TableReply) Type() MsgType { return TypeTableReply }

func (m *TableReply) marshalBody(b *buffer) {
	rs := m.Rules
	if len(rs) > MaxTableRules {
		rs = rs[:MaxTableRules]
	}
	b.u32(uint32(len(rs)))
	for _, e := range rs {
		marshalPattern(b, e.Pattern)
		b.u16(e.Priority)
		b.u8(e.Queue)
	}
}

func (m *TableReply) unmarshalBody(r *reader) error {
	n := r.u32()
	if uint64(n)*23 > uint64(r.remaining()) {
		return fmt.Errorf("openflow: table reply claims %d rules beyond body", n)
	}
	if n > 0 {
		m.Rules = make([]TableRule, n)
	}
	for i := range m.Rules {
		m.Rules[i].Pattern = unmarshalPattern(r)
		m.Rules[i].Priority = r.u16()
		m.Rules[i].Queue = r.u8()
	}
	return r.err
}

// OverloadHint is a local controller's out-of-band degradation signal
// (§4.3.1 extension): the vswitch slow path crossed its CPU overload
// threshold and the named tenant dominates the miss stream. The TOR DE
// treats the tenant's pending offload candidates from this server as
// urgent — bypassing score ordering, not correctness checks — until the
// hint is withdrawn (Overloaded=false) or expires.
type OverloadHint struct {
	ServerID uint32
	Tenant   packet.TenantID
	// Overloaded is true on entry into overload, false on recovery.
	Overloaded bool
	// MissPPS is the observed slow-path miss rate attributed to the
	// tenant at signal time (diagnostics / tie-breaking).
	MissPPS float64
}

// Type implements Message.
func (*OverloadHint) Type() MsgType { return TypeOverloadHint }

func (m *OverloadHint) marshalBody(b *buffer) {
	b.u32(m.ServerID)
	b.u32(uint32(m.Tenant))
	if m.Overloaded {
		b.u8(1)
	} else {
		b.u8(0)
	}
	b.f64(m.MissPPS)
}

func (m *OverloadHint) unmarshalBody(r *reader) error {
	m.ServerID = r.u32()
	m.Tenant = packet.TenantID(r.u32())
	m.Overloaded = r.u8() != 0
	m.MissPPS = r.f64()
	return r.err
}

// LeaderHeartbeat asserts "replica LeaderID leads term Term" between TOR
// DE replicas. The leader broadcasts it on the heartbeat cadence; a
// replica holding a newer term gossips its own view back in the same
// message shape so stale leaders converge after a partition heals.
type LeaderHeartbeat struct {
	Term     uint32
	LeaderID uint32
}

// Type implements Message.
func (*LeaderHeartbeat) Type() MsgType { return TypeLeaderHeartbeat }

func (m *LeaderHeartbeat) marshalBody(b *buffer) {
	b.u32(m.Term)
	b.u32(m.LeaderID)
}

func (m *LeaderHeartbeat) unmarshalBody(r *reader) error {
	m.Term = r.u32()
	m.LeaderID = r.u32()
	return r.err
}

// ---- encoding primitives ----

type buffer struct{ b []byte }

func (b *buffer) u8(v uint8)   { b.b = append(b.b, v) }
func (b *buffer) u16(v uint16) { b.b = binary.BigEndian.AppendUint16(b.b, v) }
func (b *buffer) u32(v uint32) { b.b = binary.BigEndian.AppendUint32(b.b, v) }
func (b *buffer) u64(v uint64) { b.b = binary.BigEndian.AppendUint64(b.b, v) }
func (b *buffer) f64(v float64) {
	b.u64(math.Float64bits(v))
}

type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) remaining() int { return len(r.b) - r.off }

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("openflow: body truncated at offset %d", r.off)
	}
}

func (r *reader) u8() uint8 {
	if r.remaining() < 1 {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u16() uint16 {
	if r.remaining() < 2 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *reader) u32() uint32 {
	if r.remaining() < 4 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.remaining() < 8 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func marshalPattern(b *buffer, p rules.Pattern) {
	b.u32(uint32(p.Tenant))
	if p.AnyTenant {
		b.u8(1)
	} else {
		b.u8(0)
	}
	b.u32(uint32(p.Src))
	b.u8(uint8(p.SrcPrefix))
	b.u32(uint32(p.Dst))
	b.u8(uint8(p.DstPrefix))
	b.u16(p.SrcPort)
	b.u16(p.DstPort)
	b.u8(p.Proto)
}

func unmarshalPattern(r *reader) rules.Pattern {
	var p rules.Pattern
	p.Tenant = packet.TenantID(r.u32())
	p.AnyTenant = r.u8() == 1
	p.Src = packet.IP(r.u32())
	p.SrcPrefix = int(r.u8())
	p.Dst = packet.IP(r.u32())
	p.DstPrefix = int(r.u8())
	p.SrcPort = r.u16()
	p.DstPort = r.u16()
	p.Proto = r.u8()
	return p
}

func marshalKey(b *buffer, k packet.FlowKey) {
	b.u32(uint32(k.Src))
	b.u32(uint32(k.Dst))
	b.u16(k.SrcPort)
	b.u16(k.DstPort)
	b.u8(k.Proto)
	b.u32(uint32(k.Tenant))
}

func unmarshalKey(r *reader) packet.FlowKey {
	var k packet.FlowKey
	k.Src = packet.IP(r.u32())
	k.Dst = packet.IP(r.u32())
	k.SrcPort = r.u16()
	k.DstPort = r.u16()
	k.Proto = r.u8()
	k.Tenant = packet.TenantID(r.u32())
	return k
}

// MaxFrame is the largest encodable message: the header's length field is
// 16 bits, as in OpenFlow. Senders of unbounded collections (demand
// reports, stats replies) must chunk below this — see ChunkDemandReport.
const MaxFrame = 0xffff

// Encode frames msg with the given transaction id. It panics when the
// message exceeds MaxFrame: that is a sender bug (missing chunking), and
// truncating silently would corrupt the control plane.
func Encode(msg Message, xid uint32) []byte {
	var body buffer
	msg.marshalBody(&body)
	if headerLen+len(body.b) > MaxFrame {
		panic(fmt.Sprintf("openflow: %s message of %d bytes exceeds the %d-byte frame limit; chunk it",
			msg.Type(), headerLen+len(body.b), MaxFrame))
	}
	out := make([]byte, headerLen, headerLen+len(body.b))
	out[0] = Version
	out[1] = uint8(msg.Type())
	binary.BigEndian.PutUint16(out[2:4], uint16(headerLen+len(body.b)))
	binary.BigEndian.PutUint32(out[4:8], xid)
	return append(out, body.b...)
}

// demandChunkEntries bounds entries per DemandReport chunk: each entry is
// 60 bytes on the wire, so 800 entries stay well under MaxFrame with
// splits attached.
const demandChunkEntries = 800

// ChunkDemandReport splits a report into frame-sized chunks sharing the
// same server and interval; the receiver merges chunks of one interval.
// The rate splits ride on the first chunk only.
func ChunkDemandReport(rep DemandReport) []DemandReport {
	if len(rep.Entries) <= demandChunkEntries {
		return []DemandReport{rep}
	}
	var out []DemandReport
	for start := 0; start < len(rep.Entries); start += demandChunkEntries {
		end := start + demandChunkEntries
		if end > len(rep.Entries) {
			end = len(rep.Entries)
		}
		chunk := DemandReport{ServerID: rep.ServerID, Interval: rep.Interval, Entries: rep.Entries[start:end]}
		if start == 0 {
			chunk.Splits = rep.Splits
			chunk.NICFree = rep.NICFree
			chunk.NICPatterns = rep.NICPatterns
			chunk.Sketch = rep.Sketch
		}
		out = append(out, chunk)
	}
	return out
}

// Decode parses one framed message, returning the message, its xid, and
// the number of bytes consumed.
func Decode(b []byte) (Message, uint32, int, error) {
	if len(b) < headerLen {
		return nil, 0, 0, io.ErrShortBuffer
	}
	if b[0] != Version {
		return nil, 0, 0, fmt.Errorf("openflow: unsupported version %d", b[0])
	}
	length := int(binary.BigEndian.Uint16(b[2:4]))
	if length < headerLen || length > maxBody {
		return nil, 0, 0, fmt.Errorf("openflow: bad length %d", length)
	}
	if len(b) < length {
		return nil, 0, 0, io.ErrShortBuffer
	}
	xid := binary.BigEndian.Uint32(b[4:8])
	msg, err := newMessage(MsgType(b[1]))
	if err != nil {
		return nil, 0, 0, err
	}
	r := &reader{b: b[headerLen:length]}
	if err := msg.unmarshalBody(r); err != nil {
		return nil, 0, 0, err
	}
	return msg, xid, length, nil
}

func newMessage(t MsgType) (Message, error) {
	switch t {
	case TypeHello:
		return Hello{}, nil
	case TypeEchoRequest:
		return EchoRequest{}, nil
	case TypeEchoReply:
		return EchoReply{}, nil
	case TypeFlowMod:
		return &FlowMod{}, nil
	case TypeStatsRequest:
		return &StatsRequest{}, nil
	case TypeStatsReply:
		return &StatsReply{}, nil
	case TypeBarrierRequest:
		return &BarrierRequest{}, nil
	case TypeBarrierReply:
		return &BarrierReply{}, nil
	case TypeDemandReport:
		return &DemandReport{}, nil
	case TypeOffloadDecision:
		return &OffloadDecision{}, nil
	case TypeError:
		return &ErrorMsg{}, nil
	case TypeRuleSync:
		return &RuleSync{}, nil
	case TypeSyncAck:
		return &SyncAck{}, nil
	case TypeTableRequest:
		return &TableRequest{}, nil
	case TypeTableReply:
		return &TableReply{}, nil
	case TypeOverloadHint:
		return &OverloadHint{}, nil
	case TypeLeaderHeartbeat:
		return &LeaderHeartbeat{}, nil
	default:
		return nil, fmt.Errorf("openflow: unknown message type %d", t)
	}
}
