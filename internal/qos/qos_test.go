package qos

import (
	"testing"
	"testing/quick"

	"repro/internal/packet"
)

func pkt(size int) *packet.Packet {
	return packet.NewTCP(1, 1, 2, 1000, 2000, size)
}

func TestFIFOWithinQueue(t *testing.T) {
	s := NewScheduler(DefaultConfig())
	a, b, c := pkt(100), pkt(100), pkt(100)
	s.Enqueue(0, a)
	s.Enqueue(0, b)
	s.Enqueue(0, c)
	if s.Dequeue() != a || s.Dequeue() != b || s.Dequeue() != c {
		t.Error("queue is not FIFO")
	}
	if s.Dequeue() != nil {
		t.Error("empty scheduler returned a packet")
	}
}

func TestStrictPriorityFirst(t *testing.T) {
	s := NewScheduler(DefaultConfig()) // strict queue 7
	be := pkt(100)
	hi := pkt(100)
	s.Enqueue(0, be)
	s.Enqueue(7, hi)
	if s.Dequeue() != hi {
		t.Error("strict-priority packet not served first")
	}
	if s.Dequeue() != be {
		t.Error("best-effort packet lost")
	}
}

func TestDRRFairShare(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StrictQueue = 0
	cfg.Depth = 10000
	s := NewScheduler(cfg)
	// Two backlogged queues with equal quantum: service alternates and
	// total bytes served stay near-equal.
	const n = 500
	for i := 0; i < n; i++ {
		s.Enqueue(1, pkt(1000))
		s.Enqueue(2, pkt(1000))
	}
	var served [NumQueues]int
	for i := 0; i < n; i++ {
		p := s.Dequeue()
		if p == nil {
			t.Fatal("scheduler ran dry early")
		}
		// Identify queue by draining counts: both carry same size, so
		// count via remaining occupancy.
		_ = p
		served[0]++
	}
	d1, d2 := n-s.QueueLen(1), n-s.QueueLen(2)
	if diff := d1 - d2; diff < -2 || diff > 2 {
		t.Errorf("unfair DRR service: q1=%d q2=%d", d1, d2)
	}
}

func TestDRRWeightedShare(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StrictQueue = 0
	cfg.Depth = 10000
	cfg.Quantum[1] = 3000
	cfg.Quantum[2] = 1000
	s := NewScheduler(cfg)
	const n = 900
	for i := 0; i < n; i++ {
		s.Enqueue(1, pkt(956)) // WireLen = 956+54 = 1010... use exact below
		s.Enqueue(2, pkt(956))
	}
	for i := 0; i < 600; i++ {
		if s.Dequeue() == nil {
			t.Fatal("ran dry")
		}
	}
	d1, d2 := n-s.QueueLen(1), n-s.QueueLen(2)
	ratio := float64(d1) / float64(d2)
	if ratio < 2.5 || ratio > 3.5 {
		t.Errorf("weighted share ratio = %.2f (q1=%d q2=%d), want ~3", ratio, d1, d2)
	}
}

func TestTailDrop(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Depth = 3
	s := NewScheduler(cfg)
	for i := 0; i < 5; i++ {
		s.Enqueue(0, pkt(100))
	}
	if s.QueueLen(0) != 3 {
		t.Errorf("queue length = %d, want 3", s.QueueLen(0))
	}
	if s.Drops() != 2 {
		t.Errorf("drops = %d, want 2", s.Drops())
	}
}

func TestInvalidQueueCoercedToBestEffort(t *testing.T) {
	s := NewScheduler(DefaultConfig())
	s.Enqueue(-1, pkt(10))
	s.Enqueue(99, pkt(10))
	if s.QueueLen(0) != 2 {
		t.Errorf("invalid queues not coerced: len(0)=%d", s.QueueLen(0))
	}
}

// Property: work conservation — every enqueued packet (that was accepted)
// is eventually dequeued exactly once, in any interleaving.
func TestWorkConservationProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		cfg := DefaultConfig()
		cfg.Depth = 64
		s := NewScheduler(cfg)
		accepted, dequeued := 0, 0
		for _, op := range ops {
			if op%3 == 0 {
				if s.Dequeue() != nil {
					dequeued++
				}
			} else {
				if s.Enqueue(int(op)%NumQueues, pkt(int(op))) {
					accepted++
				}
			}
		}
		for s.Dequeue() != nil {
			dequeued++
		}
		return accepted == dequeued && s.Len() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
