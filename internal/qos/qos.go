// Package qos implements the ToR egress queueing FasTrak steers offloaded
// traffic into (§4.1.3: "L3 routers typically provide a set of QoS queues
// that can be configured and enabled. Rules in the VRF can direct VM
// traffic to use these specific queues"). The model is the common switch
// arrangement: a small set of queues served by deficit round robin, with
// one optional strict-priority queue for latency-sensitive traffic.
package qos

import (
	"fmt"

	"repro/internal/packet"
)

// NumQueues is the number of egress queues per port, matching the 8
// hardware queues of typical merchant-silicon ToRs.
const NumQueues = 8

// Config describes one port's queue arrangement.
type Config struct {
	// StrictQueue, if in [1,NumQueues), is served ahead of all others
	// (strict priority). 0 disables strict priority.
	StrictQueue int
	// Quantum is the DRR quantum in bytes per round per queue; a queue
	// with a larger quantum gets a proportionally larger share.
	Quantum [NumQueues]int
	// Depth is the per-queue capacity in packets; beyond it, tail drop.
	Depth int
}

// DefaultConfig returns equal-share DRR with queue 7 strict-priority and
// 100-packet depth — a typical ToR default.
func DefaultConfig() Config {
	c := Config{StrictQueue: 7, Depth: 100}
	for i := range c.Quantum {
		c.Quantum[i] = 1500
	}
	return c
}

// Scheduler is a multi-queue egress scheduler. It is passive: the owning
// link calls Dequeue whenever the wire is free.
type Scheduler struct {
	cfg      Config
	queues   [NumQueues][]*packet.Packet
	deficit  [NumQueues]int
	visiting [NumQueues]bool // quantum already granted for current visit
	next     int             // DRR pointer
	length   int
	drops    uint64
}

func minQuantum(cfg Config) int {
	m := cfg.Quantum[0]
	for _, q := range cfg.Quantum[1:] {
		if q < m {
			m = q
		}
	}
	if m < 1 {
		m = 1
	}
	return m
}

// NewScheduler returns a scheduler with the given config.
func NewScheduler(cfg Config) *Scheduler {
	if cfg.Depth <= 0 {
		cfg.Depth = 100
	}
	for i := range cfg.Quantum {
		if cfg.Quantum[i] <= 0 {
			cfg.Quantum[i] = 1500
		}
	}
	return &Scheduler{cfg: cfg}
}

// Enqueue places p on queue q, tail-dropping when the queue is full. It
// reports whether the packet was accepted.
func (s *Scheduler) Enqueue(q int, p *packet.Packet) bool {
	if q < 0 || q >= NumQueues {
		q = 0
	}
	if len(s.queues[q]) >= s.cfg.Depth {
		s.drops++
		return false
	}
	s.queues[q] = append(s.queues[q], p)
	s.length++
	return true
}

// Dequeue returns the next packet to transmit, or nil when all queues are
// empty. The strict queue is always drained first; remaining queues share
// by DRR.
func (s *Scheduler) Dequeue() *packet.Packet {
	if s.length == 0 {
		return nil
	}
	if sq := s.cfg.StrictQueue; sq > 0 && sq < NumQueues && len(s.queues[sq]) > 0 {
		return s.pop(sq)
	}
	// DRR over non-strict queues. The quantum is granted once per visit
	// (tracked by visiting); a queue keeps the turn while its deficit
	// covers head packets, then yields. Enough iterations are allowed
	// for a maximally large head packet to accumulate deficit.
	maxIter := NumQueues * (1 + 0xffff/minQuantum(s.cfg))
	for iter := 0; iter < maxIter; iter++ {
		q := s.next
		if q == s.cfg.StrictQueue && s.cfg.StrictQueue > 0 {
			s.advance()
			continue
		}
		if len(s.queues[q]) == 0 {
			s.deficit[q] = 0
			s.visiting[q] = false
			s.advance()
			continue
		}
		if !s.visiting[q] {
			s.deficit[q] += s.cfg.Quantum[q]
			s.visiting[q] = true
		}
		head := s.queues[q][0]
		if s.deficit[q] >= head.WireLen() {
			s.deficit[q] -= head.WireLen()
			return s.pop(q)
		}
		s.visiting[q] = false
		s.advance()
	}
	// Unreachable if length bookkeeping is correct; fail loudly in tests.
	panic(fmt.Sprintf("qos: scheduler stalled with %d queued packets", s.length))
}

func (s *Scheduler) pop(q int) *packet.Packet {
	p := s.queues[q][0]
	s.queues[q] = s.queues[q][1:]
	s.length--
	return p
}

func (s *Scheduler) advance() { s.next = (s.next + 1) % NumQueues }

// Len returns the number of queued packets across all queues.
func (s *Scheduler) Len() int { return s.length }

// QueueLen returns the occupancy of one queue.
func (s *Scheduler) QueueLen(q int) int {
	if q < 0 || q >= NumQueues {
		return 0
	}
	return len(s.queues[q])
}

// Drops returns the number of tail-dropped packets.
func (s *Scheduler) Drops() uint64 { return s.drops }
