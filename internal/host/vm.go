package host

import (
	"fmt"

	"repro/internal/flowplacer"
	"repro/internal/metrics"
	"repro/internal/openflow"
	"repro/internal/packet"
	"repro/internal/rules"
	"repro/internal/vswitch"
)

// App receives application messages delivered to a VM port. Workload
// generators (internal/workload) implement it.
type App interface {
	OnMessage(vm *VM, p *packet.Packet)
}

// AppFunc adapts a function to App.
type AppFunc func(vm *VM, p *packet.Packet)

// OnMessage implements App.
func (f AppFunc) OnMessage(vm *VM, p *packet.Packet) { f(vm, p) }

// VM is one guest: vCPUs, tenant addressing, the bonded VIF+VF interface
// with its flow placer, and bound applications.
type VM struct {
	Key  vswitch.VMKey
	VLAN packet.VLANID
	// CPU is the guest's vCPU station; all socket operations charge it.
	CPU *CPUStation
	// Placer is the flow placement module in the bonding driver; the
	// FasTrak local controller programs it over OpenFlow (§4.1.1).
	Placer *flowplacer.Placer
	// Rules is the VM's tenant rule set (migrates with the VM).
	Rules *rules.VMRules

	server *Server
	apps   map[uint16]App

	// Latency observes message delivery delay (arrival − SentAt) per
	// arrival path for experiment reporting.
	LatencyVIF *metrics.Histogram
	LatencyVF  *metrics.Histogram

	txMessages, rxMessages uint64
	txBytes, rxBytes       uint64
	nextSeq                uint64
}

// BindApp registers an App on a destination L4 port.
func (vm *VM) BindApp(port uint16, a App) { vm.apps[port] = a }

// Server returns the physical server hosting the VM.
func (vm *VM) Server() *Server { return vm.server }

// SendOptions carries optional metadata for Send.
type SendOptions struct {
	// Seq tags the message for request/response correlation; 0 assigns
	// a fresh sequence number.
	Seq uint64
	// Proto defaults to TCP.
	Proto byte
}

// Send transmits one application message of size payload bytes to a
// destination VM in the same tenant. The guest stack cost is charged to
// the VM's vCPUs, then the flow placer picks the VIF or VF path
// (§4.2.1). done, if non-nil, runs when the local send completes (the
// thread is free to issue its next operation).
func (vm *VM) Send(dst packet.IP, srcPort, dstPort uint16, size int, opts SendOptions, done func()) {
	proto := opts.Proto
	if proto == 0 {
		proto = packet.ProtoTCP
	}
	seq := opts.Seq
	if seq == 0 {
		vm.nextSeq++
		seq = vm.nextSeq
	}
	eng := vm.server.eng
	cm := vm.server.cm
	vm.CPU.Submit(cm.GuestOpCost(size), func() {
		p := packet.FromKey(packet.FlowKey{
			Src: vm.Key.IP, Dst: dst,
			SrcPort: srcPort, DstPort: dstPort,
			Proto: proto, Tenant: vm.Key.Tenant,
		}, size)
		p.Meta.SentAt = eng.Now()
		p.Meta.Seq = seq
		vm.txMessages++
		vm.txBytes += uint64(size)
		switch vm.Placer.Place(p, eng.Now()) {
		case openflow.PathVF:
			vm.server.NIC.SendFromVF(vm.VLAN, p)
		default:
			vm.server.egress(vm.Key, p)
		}
		if done != nil {
			done()
		}
	})
}

// SendPacket transmits a fully formed packet (the caller controls TCP
// header fields — used by internal/tcpmodel), charging the guest stack
// and routing through the flow placer like Send.
func (vm *VM) SendPacket(p *packet.Packet, done func()) {
	eng := vm.server.eng
	cm := vm.server.cm
	vm.CPU.Submit(cm.GuestOpCost(p.PayloadLen()), func() {
		p.Meta.SentAt = eng.Now()
		vm.txMessages++
		vm.txBytes += uint64(p.PayloadLen())
		switch vm.Placer.Place(p, eng.Now()) {
		case openflow.PathVF:
			vm.server.NIC.SendFromVF(vm.VLAN, p)
		default:
			vm.server.egress(vm.Key, p)
		}
		if done != nil {
			done()
		}
	})
}

// deliver is the VM-side receive path (both VIF and VF arrivals): charge
// the guest receive cost, record latency, then hand to the bound app.
func (vm *VM) deliver(p *packet.Packet) {
	cm := vm.server.cm
	eng := vm.server.eng
	vm.CPU.Submit(cm.GuestOpCost(p.PayloadLen()), func() {
		vm.rxMessages++
		vm.rxBytes += uint64(p.PayloadLen())
		if p.Meta.SentAt > 0 {
			lat := eng.Now() - p.Meta.SentAt
			if p.Meta.Path == "vf" {
				vm.LatencyVF.Observe(lat)
			} else {
				vm.LatencyVIF.Observe(lat)
			}
		}
		var dstPort uint16
		switch {
		case p.TCP != nil:
			dstPort = p.TCP.DstPort
		case p.UDP != nil:
			dstPort = p.UDP.DstPort
		}
		if app, ok := vm.apps[dstPort]; ok {
			app.OnMessage(vm, p)
		}
	})
}

// Counters reports message/byte totals.
func (vm *VM) Counters() (txMsgs, rxMsgs, txBytes, rxBytes uint64) {
	return vm.txMessages, vm.rxMessages, vm.txBytes, vm.rxBytes
}

func (vm *VM) String() string {
	return fmt.Sprintf("vm t%d %s on %s", vm.Key.Tenant, vm.Key.IP, vm.server.IP)
}
