// Package host assembles one physical server of the testbed: a pool of
// logical CPUs for host network processing, per-VIF serialized qdisc
// stations, guest VMs with their own vCPUs, and the bonded VIF+VF
// interface whose flow placer FasTrak programs (§4.1.1). CPU contention
// and the resulting queueing latency — the effects Section 3 measures —
// emerge from work submitted to these stations.
package host

import (
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// CPUStation is an M/G/k service station: k logical CPUs serving a FIFO
// queue of work items. Busy time is accounted, which is how the testbed
// reports "number of logical CPUs used" (Fig. 4).
type CPUStation struct {
	eng   *sim.Engine
	slots int
	busy  int
	queue []work

	// Account accumulates CPU busy time.
	Account metrics.CPUAccount
	// peakQueue records the deepest backlog seen (diagnostics).
	peakQueue int
}

type work struct {
	cost time.Duration
	done func()
}

// NewCPUStation returns a station with the given number of logical CPUs.
func NewCPUStation(eng *sim.Engine, slots int) *CPUStation {
	if slots < 1 {
		slots = 1
	}
	return &CPUStation{eng: eng, slots: slots}
}

// Submit enqueues a work item costing cost CPU time; done runs when the
// item completes service. Zero-cost work still traverses the queue so
// ordering is preserved.
func (s *CPUStation) Submit(cost time.Duration, done func()) {
	if cost < 0 {
		cost = 0
	}
	s.queue = append(s.queue, work{cost: cost, done: done})
	if len(s.queue) > s.peakQueue {
		s.peakQueue = len(s.queue)
	}
	s.pump()
}

func (s *CPUStation) pump() {
	for s.busy < s.slots && len(s.queue) > 0 {
		w := s.queue[0]
		s.queue = s.queue[1:]
		s.busy++
		s.eng.After(w.cost, func() {
			s.Account.Charge(w.cost)
			s.busy--
			if w.done != nil {
				w.done()
			}
			s.pump()
		})
	}
}

// Exec adapts the station to the Exec hooks of vswitch/nic.
func (s *CPUStation) Exec() func(cost time.Duration, fn func()) {
	return s.Submit
}

// QueueLen returns the current backlog (excluding in-service items).
func (s *CPUStation) QueueLen() int { return len(s.queue) }

// PeakQueue returns the deepest backlog observed.
func (s *CPUStation) PeakQueue() int { return s.peakQueue }

// Slots returns the number of logical CPUs.
func (s *CPUStation) Slots() int { return s.slots }

// Busy returns the number of in-service items.
func (s *CPUStation) Busy() int { return s.busy }
