package host

import (
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/model"
	"repro/internal/packet"
	"repro/internal/sim"
)

func TestCPUStationSerialService(t *testing.T) {
	eng := sim.NewEngine(1)
	s := NewCPUStation(eng, 1)
	var done []time.Duration
	for i := 0; i < 3; i++ {
		s.Submit(10*time.Microsecond, func() { done = append(done, eng.Now()) })
	}
	eng.Run()
	want := []time.Duration{10 * time.Microsecond, 20 * time.Microsecond, 30 * time.Microsecond}
	for i := range want {
		if done[i] != want[i] {
			t.Errorf("completion %d at %v, want %v", i, done[i], want[i])
		}
	}
	if s.Account.Busy() != 30*time.Microsecond {
		t.Errorf("busy = %v", s.Account.Busy())
	}
}

func TestCPUStationParallelSlots(t *testing.T) {
	eng := sim.NewEngine(1)
	s := NewCPUStation(eng, 4)
	var done []time.Duration
	for i := 0; i < 4; i++ {
		s.Submit(10*time.Microsecond, func() { done = append(done, eng.Now()) })
	}
	eng.Run()
	// All four run in parallel: all complete at 10µs.
	for i, d := range done {
		if d != 10*time.Microsecond {
			t.Errorf("completion %d at %v", i, d)
		}
	}
	// Utilization: 40µs busy over 10µs elapsed = 4 CPUs.
	if got := s.Account.LogicalCPUs(10 * time.Microsecond); got != 4 {
		t.Errorf("LogicalCPUs = %v", got)
	}
}

func TestCPUStationQueueing(t *testing.T) {
	eng := sim.NewEngine(1)
	s := NewCPUStation(eng, 2)
	n := 0
	for i := 0; i < 10; i++ {
		s.Submit(5*time.Microsecond, func() { n++ })
	}
	if s.QueueLen() != 8 {
		t.Errorf("queue = %d, want 8 (2 in service)", s.QueueLen())
	}
	eng.Run()
	if n != 10 {
		t.Errorf("completed %d", n)
	}
	// 10 items × 5µs over 2 slots = 25µs makespan.
	if eng.Now() != 25*time.Microsecond {
		t.Errorf("makespan %v", eng.Now())
	}
	if s.PeakQueue() < 8 {
		t.Errorf("peak queue = %d", s.PeakQueue())
	}
}

func TestCPUStationZeroAndNegativeCost(t *testing.T) {
	eng := sim.NewEngine(1)
	s := NewCPUStation(eng, 1)
	ran := 0
	s.Submit(0, func() { ran++ })
	s.Submit(-time.Second, func() { ran++ })
	eng.Run()
	if ran != 2 {
		t.Errorf("ran = %d", ran)
	}
	if eng.Now() != 0 {
		t.Errorf("zero-cost work advanced time to %v", eng.Now())
	}
}

func TestServerAddRemoveVM(t *testing.T) {
	eng := sim.NewEngine(1)
	cm := model.Default()
	up := fabric.NewLink(eng, cm.LinkBps, 0, nil, fabric.Discard)
	srv := NewServer(eng, &cm, model.VSwitchConfig{}, 0, packet.MustParseIP("192.168.1.10"), up)
	vm, err := srv.AddVM(VMConfig{Tenant: 3, IP: packet.MustParseIP("10.0.0.1"), VLAN: 100, VCPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if vm.CPU.Slots() != 2 {
		t.Errorf("vcpus = %d", vm.CPU.Slots())
	}
	if _, err := srv.AddVM(VMConfig{Tenant: 3, IP: packet.MustParseIP("10.0.0.1"), VLAN: 100}); err == nil {
		t.Error("duplicate VM accepted")
	}
	if srv.NIC.VFCount() != 1 {
		t.Errorf("VFs = %d", srv.NIC.VFCount())
	}
	if _, err := srv.RemoveVM(vm.Key); err != nil {
		t.Fatal(err)
	}
	if srv.NIC.VFCount() != 0 {
		t.Error("VF not released on removal")
	}
	if _, err := srv.RemoveVM(vm.Key); err == nil {
		t.Error("double remove accepted")
	}
}

func TestCPUAccountingSeparatesHostAndGuest(t *testing.T) {
	eng := sim.NewEngine(1)
	cm := model.Default()
	up := fabric.NewLink(eng, cm.LinkBps, 0, nil, fabric.Discard)
	srv := NewServer(eng, &cm, model.VSwitchConfig{}, 0, packet.MustParseIP("192.168.1.10"), up)
	vm, _ := srv.AddVM(VMConfig{Tenant: 3, IP: packet.MustParseIP("10.0.0.1"), VLAN: 100})
	for i := 0; i < 100; i++ {
		vm.Send(packet.MustParseIP("10.0.9.9"), 1000, 80, 1448, SendOptions{}, nil)
	}
	eng.Run()
	elapsed := eng.Now()
	if srv.GuestCPUs(elapsed) <= 0 {
		t.Error("no guest CPU charged")
	}
	if srv.HostCPUs(elapsed) <= 0 {
		t.Error("no host CPU charged")
	}
	if srv.TotalCPUs(elapsed) != srv.GuestCPUs(elapsed)+srv.HostCPUs(elapsed) {
		t.Error("total != host + guest")
	}
	srv.ResetCPUAccounting()
	if srv.TotalCPUs(time.Second) != 0 {
		t.Error("reset did not clear accounting")
	}
}

func TestSendAssignsSequence(t *testing.T) {
	eng := sim.NewEngine(1)
	cm := model.Default()
	up := fabric.NewLink(eng, cm.LinkBps, 0, nil, fabric.Discard)
	srv := NewServer(eng, &cm, model.VSwitchConfig{}, 0, packet.MustParseIP("192.168.1.10"), up)
	a, _ := srv.AddVM(VMConfig{Tenant: 3, IP: packet.MustParseIP("10.0.0.1"), VLAN: 100})
	b, _ := srv.AddVM(VMConfig{Tenant: 3, IP: packet.MustParseIP("10.0.0.2"), VLAN: 100})
	var seqs []uint64
	b.BindApp(80, AppFunc(func(_ *VM, p *packet.Packet) { seqs = append(seqs, p.Meta.Seq) }))
	a.Send(b.Key.IP, 1000, 80, 64, SendOptions{}, nil)
	a.Send(b.Key.IP, 1000, 80, 64, SendOptions{}, nil)
	a.Send(b.Key.IP, 1000, 80, 64, SendOptions{Seq: 99}, nil)
	eng.Run()
	if len(seqs) != 3 {
		t.Fatalf("delivered %d (intra-host via vswitch)", len(seqs))
	}
	if seqs[0] == 0 || seqs[0] == seqs[1] {
		t.Errorf("auto sequences %v", seqs[:2])
	}
	if seqs[2] != 99 {
		t.Errorf("explicit seq = %d", seqs[2])
	}
}
