package host

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/flowplacer"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/nic"
	"repro/internal/packet"
	"repro/internal/rules"
	"repro/internal/sim"
	"repro/internal/smartnic"
	"repro/internal/vswitch"
)

// Server is one physical machine: host network CPUs, the vswitch, the
// SR-IOV NIC, and guest VMs.
type Server struct {
	ID int
	// IP is the server's provider address (VXLAN tunnel endpoint).
	IP packet.IP

	eng *sim.Engine
	cm  *model.CostModel

	// HostNet is the host kernel's network-processing CPU pool, shared
	// by the vswitch and NIC interrupt handling.
	HostNet *CPUStation

	VSwitch *vswitch.Switch
	NIC     *nic.NIC
	// SmartNIC is the optional middle offload tier; nil when the host has
	// no programmable NIC (the 2-level seed topology).
	SmartNIC *smartnic.NIC

	VMs map[vswitch.VMKey]*VM

	// htbStations holds each VIF's serialized qdisc station so their
	// busy time can be included in CPU totals.
	htbStations []*CPUStation
}

// NewServer builds a server. uplink is the link toward the ToR (its far
// end must be set by the topology assembler); cfg selects the vswitch's
// software-virtualization functions.
func NewServer(eng *sim.Engine, cm *model.CostModel, cfg model.VSwitchConfig, id int, ip packet.IP, uplink *fabric.Link) *Server {
	s := &Server{
		ID: id, IP: ip,
		eng: eng, cm: cm,
		HostNet: NewCPUStation(eng, cm.HostNetCPUs),
		VMs:     make(map[vswitch.VMKey]*VM),
	}
	s.NIC = nic.New(eng, cm, s.HostNet.Submit, uplink, nil)
	s.VSwitch = vswitch.New(eng, cm, cfg, ip, s.HostNet.Submit, fabric.PortFunc(func(p *packet.Packet) {
		s.NIC.SendFromVSwitch(p)
	}))
	s.NIC.SetVSwitch(fabric.PortFunc(s.VSwitch.InputFromNIC))
	return s
}

// AttachSmartNIC installs a SmartNIC offload tier on the server and wires
// its admitted-packet hook to the vswitch's offloaded transmit stage.
func (s *Server) AttachSmartNIC(n *smartnic.NIC) {
	s.SmartNIC = n
	if n == nil {
		return
	}
	n.SetForward(func(tenant packet.TenantID, srcIP packet.IP, p *packet.Packet) {
		s.VSwitch.TransmitOffloaded(vswitch.VMKey{Tenant: tenant, IP: srcIP}, p)
	})
}

// EnableDataPlane switches the server's vswitch into throughput mode: a
// sharded batch data plane (see vswitch/plane.go) mirroring the switch's
// rule state, with SmartNIC placements mirrored into its NIC-first egress
// table — a flow the hardware tier has placed bypasses software shaping
// and encap exactly as Server.egress gives the SmartNIC first claim.
// shards <= 1 keeps the deterministic inline mode.
func (s *Server) EnableDataPlane(cfg vswitch.PlaneConfig) *vswitch.ShardedPlane {
	pl := s.VSwitch.EnableShardedPlane(cfg)
	if s.SmartNIC != nil {
		n := s.SmartNIC
		n.SetOnChange(func() { pl.SetNICPlacements(n.Patterns()) })
		pl.SetNICPlacements(n.Patterns())
	}
	return pl
}

// egress is the VM's default (non-VF) transmit path: the SmartNIC tier
// gets first claim on the packet; any miss, deny or pipeline throttle
// falls back to the vswitch software path, so the NIC tier can shed or
// lose rules at any instant without blackholing a flow.
func (s *Server) egress(key vswitch.VMKey, p *packet.Packet) {
	if s.SmartNIC != nil {
		p.Tenant = key.Tenant
		p.Meta.Path = "nic"
		if s.SmartNIC.TryEgress(p.Key(), p) {
			return
		}
	}
	s.VSwitch.OutputFromVM(key, p)
}

// VMConfig describes a guest to create.
type VMConfig struct {
	Tenant packet.TenantID
	IP     packet.IP
	// VLAN is the tenant's access VLAN for the VF path.
	VLAN packet.VLANID
	// VCPUs is the guest's logical CPU count (the paper uses 4 for
	// large instances, 2 for medium).
	VCPUs int
	// Rules is the tenant rule set for the VM; nil means an empty set.
	Rules *rules.VMRules
}

// AddVM creates a guest, attaches its VIF to the vswitch and allocates an
// SR-IOV VF.
func (s *Server) AddVM(cfg VMConfig) (*VM, error) {
	key := vswitch.VMKey{Tenant: cfg.Tenant, IP: cfg.IP}
	if _, exists := s.VMs[key]; exists {
		return nil, fmt.Errorf("host: VM %v already exists", key)
	}
	if cfg.VCPUs <= 0 {
		cfg.VCPUs = 4
	}
	if cfg.Rules == nil {
		cfg.Rules = &rules.VMRules{Tenant: cfg.Tenant, VMIP: cfg.IP}
	}
	vm := &VM{
		Key:        key,
		VLAN:       cfg.VLAN,
		CPU:        NewCPUStation(s.eng, cfg.VCPUs),
		Placer:     flowplacer.New(),
		Rules:      cfg.Rules,
		server:     s,
		apps:       make(map[uint16]App),
		LatencyVIF: metrics.NewHistogram(),
		LatencyVF:  metrics.NewHistogram(),
	}
	htb := NewCPUStation(s.eng, 1) // qdisc lock: serialized
	s.htbStations = append(s.htbStations, htb)
	s.VSwitch.AttachVM(key, cfg.Rules, fabric.PortFunc(vm.deliver), htb.Submit)
	if err := s.NIC.AttachVF(cfg.VLAN, cfg.IP, fabric.PortFunc(vm.deliver)); err != nil {
		s.VSwitch.DetachVM(key)
		return nil, err
	}
	s.VMs[key] = vm
	return vm, nil
}

// RemoveVM detaches a guest (VM migration away from this server).
func (s *Server) RemoveVM(key vswitch.VMKey) (*VM, error) {
	vm, ok := s.VMs[key]
	if !ok {
		return nil, fmt.Errorf("host: no VM %v", key)
	}
	s.VSwitch.DetachVM(key)
	s.NIC.DetachVF(vm.VLAN, key.IP)
	delete(s.VMs, key)
	return vm, nil
}

// HostCPUs returns total host-side CPU busy time: the shared network pool
// plus qdisc stations. Guest time is per VM.
func (s *Server) HostCPUs(elapsed sim.Time) float64 {
	total := s.HostNet.Account.LogicalCPUs(elapsed)
	for _, h := range s.htbStations {
		total += h.Account.LogicalCPUs(elapsed)
	}
	return total
}

// GuestCPUs returns total guest busy CPUs across VMs over elapsed.
func (s *Server) GuestCPUs(elapsed sim.Time) float64 {
	total := 0.0
	for _, vm := range s.VMs {
		total += vm.CPU.Account.LogicalCPUs(elapsed)
	}
	return total
}

// TotalCPUs is host + guest — the paper's "# of CPUs for test" metric.
func (s *Server) TotalCPUs(elapsed sim.Time) float64 {
	return s.HostCPUs(elapsed) + s.GuestCPUs(elapsed)
}

// ResetCPUAccounting zeroes all stations (used between experiment
// warm-up and measurement windows).
func (s *Server) ResetCPUAccounting() {
	s.HostNet.Account.Reset()
	for _, h := range s.htbStations {
		h.Account.Reset()
	}
	for _, vm := range s.VMs {
		vm.CPU.Account.Reset()
	}
}
