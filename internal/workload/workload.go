// Package workload implements the traffic generators of the paper's
// evaluation: netperf TCP_STREAM and TCP_RR (closed-loop and burst-
// pipelined, §3.1), a memcached server with a memslap-style client (§6),
// an scp-like disk-bound file transfer, a MapReduce shuffle, and IOzone/
// stress-style background load. Generators are closed-loop where the
// originals are — throughput is determined by the emulated system, not
// the generator — and loss-tolerant the way their real TCP transports
// are: unacknowledged messages are retransmitted after a timeout, with
// duplicate suppression on both sides.
package workload

import (
	"sort"
	"time"

	"repro/internal/host"
	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/sim"
)

// ackSizeBytes is the payload of stream acknowledgments.
const ackSizeBytes = 0

// defaultRetry is the loss-recovery timer for generators (a TCP RTO
// stand-in).
const defaultRetry = 50 * time.Millisecond

// Stream is a netperf TCP_STREAM test: threads send messages of Size
// bytes with TCP_NODELAY semantics (one message per send), with a byte
// window enforcing TCP-like flow control; the receiver acknowledges each
// message, closing the loop. Lost messages or acks are retransmitted
// after RetryTimeout.
type Stream struct {
	Client, Server *host.VM
	// Port is the server port; each thread uses Port and a distinct
	// source port.
	Port uint16
	// Size is the application data size per send (§3.1: 64, 600, 1448,
	// 32000).
	Size int
	// Threads is the sender thread count (3 in the throughput test).
	Threads int
	// WindowBytes bounds unacknowledged data per thread (TCP window).
	WindowBytes int
	// RetryTimeout is the loss-recovery timer (default 50 ms).
	RetryTimeout time.Duration

	// Received counts payload bytes accepted by the receiver
	// (duplicates suppressed).
	Received uint64
	// Messages counts distinct delivered messages.
	Messages uint64
	// Retransmits counts loss-recovery resends.
	Retransmits uint64

	eng        *sim.Engine
	stopped    bool
	seen       map[uint64]bool
	seqCounter uint64
}

// Start begins the stream; it runs until Stop.
func (s *Stream) Start(eng *sim.Engine) {
	s.eng = eng
	if s.Threads <= 0 {
		s.Threads = 1
	}
	if s.WindowBytes <= 0 {
		s.WindowBytes = 256 << 10
	}
	if s.RetryTimeout <= 0 {
		s.RetryTimeout = defaultRetry
	}
	s.seen = make(map[uint64]bool)
	// Receiver: dedup, count, ack.
	s.Server.BindApp(s.Port, host.AppFunc(func(vm *host.VM, p *packet.Packet) {
		if s.stopped {
			return
		}
		if !s.seen[p.Meta.Seq] {
			s.seen[p.Meta.Seq] = true
			s.Received += uint64(p.PayloadLen())
			s.Messages++
		}
		vm.Send(p.IP.Src, s.Port, p.TCP.SrcPort, ackSizeBytes, host.SendOptions{Seq: p.Meta.Seq}, nil)
	}))
	for i := 0; i < s.Threads; i++ {
		st := &streamThread{s: s, srcPort: 41000 + uint16(i), pending: make(map[uint64]time.Duration)}
		st.start()
	}
}

// Stop halts all threads.
func (s *Stream) Stop() { s.stopped = true }

// streamThread is one sender loop with its own window.
type streamThread struct {
	s       *Stream
	srcPort uint16
	// pending maps unacked sequence numbers to first-send time.
	pending map[uint64]time.Duration
	sending bool
}

func (st *streamThread) start() {
	// Acks return to the thread's source port; duplicates are ignored
	// by the pending check.
	st.s.Client.BindApp(st.srcPort, host.AppFunc(func(vm *host.VM, p *packet.Packet) {
		if _, ok := st.pending[p.Meta.Seq]; !ok {
			return
		}
		delete(st.pending, p.Meta.Seq)
		st.fill()
	}))
	st.fill()
	st.armRetry()
}

// fill keeps the window full. Sends chain through the vCPU station, so a
// busy guest naturally slows the thread.
func (st *streamThread) fill() {
	if st.s.stopped || st.sending {
		return
	}
	if (len(st.pending)+1)*st.s.Size > st.s.WindowBytes {
		return
	}
	st.sending = true
	seq := st.s.nextSeq()
	st.pending[seq] = st.s.eng.Now()
	st.s.Client.Send(st.s.Server.Key.IP, st.srcPort, st.s.Port, st.s.Size, host.SendOptions{Seq: seq}, func() {
		st.sending = false
		st.fill()
	})
}

// armRetry retransmits unacked messages past the timeout, oldest (lowest
// sequence) first for deterministic simulations.
func (st *streamThread) armRetry() {
	st.s.eng.After(st.s.RetryTimeout, func() {
		if st.s.stopped {
			return
		}
		now := st.s.eng.Now()
		seqs := make([]uint64, 0, len(st.pending))
		for seq, sentAt := range st.pending {
			if now-sentAt >= st.s.RetryTimeout {
				seqs = append(seqs, seq)
			}
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		for _, seq := range seqs {
			st.s.Retransmits++
			st.pending[seq] = now
			st.s.Client.Send(st.s.Server.Key.IP, st.srcPort, st.s.Port, st.s.Size, host.SendOptions{Seq: seq}, nil)
		}
		st.armRetry()
	})
}

// nextSeq hands out generator-unique sequence numbers.
func (s *Stream) nextSeq() uint64 {
	s.seqCounter++
	return s.seqCounter<<16 | uint64(s.Port)
}

// RR is a netperf TCP_RR test: each thread keeps Burst transactions in
// flight (1 = classic closed-loop request/response, §3.1.1; 32 = the
// pipelined "bursty traffic" configuration). Lost requests or responses
// are retransmitted after RetryTimeout with exactly-once completion.
type RR struct {
	Client, Server *host.VM
	Port           uint16
	// Size is the application data size of both request and response.
	Size int
	// Threads and Burst: 1×1 for closed-loop latency, 3×32 for the
	// pipelined test.
	Threads, Burst int
	// RetryTimeout is the loss-recovery timer (default 50 ms).
	RetryTimeout time.Duration

	// Transactions counts completed request/response pairs.
	Transactions uint64
	// Retransmits counts loss-recovery resends.
	Retransmits uint64
	// Latency observes per-transaction round-trip times (from first
	// transmission).
	Latency *metrics.Histogram

	eng     *sim.Engine
	stopped bool
	nextSeq uint64
	pending map[uint64]rrPending
}

type rrPending struct {
	srcPort uint16
	sentAt  time.Duration
}

// Start begins the test; it runs until Stop.
func (r *RR) Start(eng *sim.Engine) {
	r.eng = eng
	if r.Threads <= 0 {
		r.Threads = 1
	}
	if r.Burst <= 0 {
		r.Burst = 1
	}
	if r.RetryTimeout <= 0 {
		r.RetryTimeout = defaultRetry
	}
	if r.Latency == nil {
		r.Latency = metrics.NewHistogram()
	}
	r.pending = make(map[uint64]rrPending)
	// Server: echo with the same size.
	r.Server.BindApp(r.Port, host.AppFunc(func(vm *host.VM, p *packet.Packet) {
		if r.stopped {
			return
		}
		vm.Send(p.IP.Src, r.Port, p.TCP.SrcPort, r.Size, host.SendOptions{Seq: p.Meta.Seq}, nil)
	}))
	for i := 0; i < r.Threads; i++ {
		srcPort := 42000 + uint16(i)
		// Client: response completes a transaction exactly once and
		// issues the next.
		r.Client.BindApp(srcPort, host.AppFunc(func(vm *host.VM, p *packet.Packet) {
			if r.stopped {
				return
			}
			req, ok := r.pending[p.Meta.Seq]
			if !ok {
				return // duplicate response
			}
			delete(r.pending, p.Meta.Seq)
			r.Latency.Observe(eng.Now() - req.sentAt)
			r.Transactions++
			r.issue(srcPort)
		}))
		for b := 0; b < r.Burst; b++ {
			r.issue(srcPort)
		}
	}
	r.armRetry()
}

func (r *RR) issue(srcPort uint16) {
	if r.stopped {
		return
	}
	r.nextSeq++
	seq := r.nextSeq
	r.pending[seq] = rrPending{srcPort: srcPort, sentAt: r.eng.Now()}
	r.Client.Send(r.Server.Key.IP, srcPort, r.Port, r.Size, host.SendOptions{Seq: seq}, nil)
}

// armRetry retransmits requests whose responses are overdue.
func (r *RR) armRetry() {
	r.eng.After(r.RetryTimeout, func() {
		if r.stopped {
			return
		}
		now := r.eng.Now()
		seqs := make([]uint64, 0, len(r.pending))
		for seq, req := range r.pending {
			if now-req.sentAt >= r.RetryTimeout {
				seqs = append(seqs, seq)
			}
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		for _, seq := range seqs {
			req := r.pending[seq]
			r.Retransmits++
			r.Client.Send(r.Server.Key.IP, req.srcPort, r.Port, r.Size, host.SendOptions{Seq: seq}, nil)
		}
		r.armRetry()
	})
}

// Stop halts the test.
func (r *RR) Stop() { r.stopped = true }

// TPS returns achieved transactions per second over elapsed.
func (r *RR) TPS(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(r.Transactions) / elapsed.Seconds()
}
