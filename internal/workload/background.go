package workload

import (
	"time"

	"repro/internal/host"
	"repro/internal/packet"
	"repro/internal/sim"
)

// FileTransfer is an scp-like disk-bound transfer: a sender paces
// MSS-sized messages at DiskBps (the disk, not the network, is the
// bottleneck — §6.1.2's "4GB file transfer which is disk bound"), the
// receiver acknowledges, and the run ends when TotalBytes have been
// delivered.
type FileTransfer struct {
	Sender, Receiver *host.VM
	Port             uint16
	// DiskBps is the disk read rate bounding the transfer.
	DiskBps float64
	// ChunkSize is the application write size (default MSS-like 1448).
	ChunkSize int
	// TotalBytes ends the transfer when delivered (0 = run forever).
	TotalBytes uint64

	// Delivered counts received payload bytes.
	Delivered uint64
	// FinishedAt is when the last byte arrived (0 until done).
	FinishedAt time.Duration

	eng     *sim.Engine
	stopped bool
	srcPort uint16
}

// Start begins the transfer.
func (f *FileTransfer) Start(eng *sim.Engine) {
	f.eng = eng
	if f.DiskBps <= 0 {
		f.DiskBps = 400e6 // a 2013-era SATA disk streaming read
	}
	if f.ChunkSize <= 0 {
		f.ChunkSize = 1448
	}
	f.srcPort = 44000
	f.Receiver.BindApp(f.Port, host.AppFunc(func(vm *host.VM, p *packet.Packet) {
		if f.stopped {
			return
		}
		f.Delivered += uint64(p.PayloadLen())
		vm.Send(p.IP.Src, f.Port, p.TCP.SrcPort, 0, host.SendOptions{Seq: p.Meta.Seq}, nil)
		if f.TotalBytes > 0 && f.Delivered >= f.TotalBytes && f.FinishedAt == 0 {
			f.FinishedAt = eng.Now()
			f.stopped = true
		}
	}))
	// Disk pacing: one chunk per chunk-time at DiskBps.
	period := time.Duration(float64(f.ChunkSize) * 8 / f.DiskBps * float64(time.Second))
	eng.Every(period, func() {
		if f.stopped {
			return
		}
		f.Sender.Send(f.Receiver.Key.IP, f.srcPort, f.Port, f.ChunkSize, host.SendOptions{}, nil)
	})
}

// Stop halts the transfer.
func (f *FileTransfer) Stop() { f.stopped = true }

// Rate returns the paced packets-per-second of the transfer — the ~135
// pps signal the FasTrak ME sees for scp in §6.2.1.
func (f *FileTransfer) Rate() float64 {
	return f.DiskBps / 8 / float64(f.ChunkSize)
}

// CPUStress occupies a VM's vCPUs with busy work, the `stress` tool of
// §6.1.1 ("we also introduced background noise into the VM using the
// stress tool").
type CPUStress struct {
	VM *host.VM
	// Workers is the number of spinning workers.
	Workers int
	// Slice is the busy-work quantum per scheduling round.
	Slice time.Duration

	stopped bool
}

// Start begins the load.
func (s *CPUStress) Start(eng *sim.Engine) {
	if s.Workers <= 0 {
		s.Workers = 1
	}
	if s.Slice <= 0 {
		s.Slice = 100 * time.Microsecond
	}
	for i := 0; i < s.Workers; i++ {
		var spin func()
		spin = func() {
			if s.stopped {
				return
			}
			s.VM.CPU.Submit(s.Slice, spin)
		}
		spin()
	}
}

// Stop ends the load.
func (s *CPUStress) Stop() { s.stopped = true }

// IOZone models the IOzone filesystem benchmark (§6.1.1): sustained
// disk-bound activity that burns VM CPU in bursts (buffer cache churn)
// without network traffic.
type IOZone struct {
	VM *host.VM
	// Utilization is the fraction of one vCPU consumed (IOzone is
	// I/O-bound: default 0.4).
	Utilization float64

	stopped bool
}

// Start begins the load.
func (z *IOZone) Start(eng *sim.Engine) {
	if z.Utilization <= 0 || z.Utilization > 1 {
		z.Utilization = 0.4
	}
	const round = time.Millisecond
	busy := time.Duration(float64(round) * z.Utilization)
	eng.Every(round, func() {
		if z.stopped {
			return
		}
		z.VM.CPU.Submit(busy, nil)
	})
}

// Stop ends the load.
func (z *IOZone) Stop() { z.stopped = true }

// Iperf is a single long-lived bulk TCP flow (the §6.2.2 migration-trace
// workload) built on Stream with one thread.
func Iperf(client, server *host.VM, port uint16) *Stream {
	return &Stream{Client: client, Server: server, Port: port, Size: 1448, Threads: 1, WindowBytes: 128 << 10}
}
