package workload

import (
	"sort"
	"time"

	"repro/internal/host"
	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/sim"
)

// MemcachedPort is the conventional memcached service port.
const MemcachedPort uint16 = 11211

// Memcached is a memcached server instance bound to a VM: each request
// costs a small amount of guest CPU (hash lookup) and returns a value of
// ValueSize bytes.
type Memcached struct {
	VM *host.VM
	// ValueSize is the response payload (a typical small object).
	ValueSize int
	// LookupCost is the per-request application CPU cost.
	LookupCost time.Duration

	// Served counts answered requests.
	Served uint64
}

// Start binds the server.
func (m *Memcached) Start() {
	if m.ValueSize <= 0 {
		m.ValueSize = 600
	}
	if m.LookupCost <= 0 {
		m.LookupCost = 2 * time.Microsecond
	}
	m.VM.BindApp(MemcachedPort, host.AppFunc(func(vm *host.VM, p *packet.Packet) {
		src, srcPort := p.IP.Src, p.TCP.SrcPort
		seq := p.Meta.Seq
		vm.CPU.Submit(m.LookupCost, func() {
			m.Served++
			vm.Send(src, MemcachedPort, srcPort, m.ValueSize, host.SendOptions{Seq: seq}, nil)
		})
	}))
}

// Memslap is a memslap-style load generator on a client VM: Concurrency
// closed-loop connections issuing GET requests round-robin across the
// given servers, until either TotalRequests complete (finish-time
// experiments, Table 2-4) or Stop is called (TPS experiments, Table 1).
//
// Requests ride the testbed's message layer, which (like UDP) can drop
// under buffer pressure; memslap's real transport is TCP, so lost
// requests are retransmitted after RetryTimeout with exactly-once
// completion accounting (duplicate responses are ignored by sequence
// number).
type Memslap struct {
	Client *host.VM
	// Servers are the memcached VM addresses to spread requests over.
	Servers []packet.IP
	// Concurrency is the number of closed-loop connections.
	Concurrency int
	// RequestSize is the GET request payload.
	RequestSize int
	// TotalRequests, if nonzero, ends the run after that many
	// transactions ("each issuing a total of 2M requests to all the
	// four memcached servers", §6.1.2).
	TotalRequests uint64
	// Barrier enables partition-aggregate rounds: each connection
	// issues one request to every server concurrently and waits for
	// all responses before the next round — the access pattern behind
	// §6.1.2's observation that "the performance of partition-
	// aggregate applications is often dominated by the slowest member".
	Barrier bool
	// RetryTimeout is the loss-recovery timer per connection round
	// (default 50 ms — a TCP RTO stand-in).
	RetryTimeout time.Duration

	// Completed counts finished transactions.
	Completed uint64
	// Retransmits counts loss-recovery resends.
	Retransmits uint64
	// Latency observes round-trip times (from first transmission).
	Latency *metrics.Histogram
	// FinishedAt is the virtual time the workload completed (zero
	// until done, or forever for unbounded runs).
	FinishedAt time.Duration
	// OnFinish, if set, runs once when TotalRequests complete.
	OnFinish func()

	eng     *sim.Engine
	stopped bool
	issued  uint64
	nextSeq uint64
	conns   []*slapConn
}

// slapConn is one closed-loop connection's state.
type slapConn struct {
	srcPort uint16
	// pending maps in-flight sequence numbers to their destination and
	// first-send time, for retransmission and exactly-once completion.
	pending map[uint64]slapReq
}

type slapReq struct {
	dst    packet.IP
	sentAt time.Duration
}

// Start begins the load.
func (ms *Memslap) Start(eng *sim.Engine) {
	ms.eng = eng
	if ms.Concurrency <= 0 {
		ms.Concurrency = 8
	}
	if ms.RequestSize <= 0 {
		ms.RequestSize = 64
	}
	if ms.RetryTimeout <= 0 {
		ms.RetryTimeout = 50 * time.Millisecond
	}
	if ms.Latency == nil {
		ms.Latency = metrics.NewHistogram()
	}
	for i := 0; i < ms.Concurrency; i++ {
		conn := &slapConn{srcPort: 43000 + uint16(i), pending: make(map[uint64]slapReq)}
		ms.conns = append(ms.conns, conn)
		ms.Client.BindApp(conn.srcPort, host.AppFunc(func(vm *host.VM, p *packet.Packet) {
			ms.onResponse(conn, p)
		}))
		ms.issueRound(conn)
		ms.armRetry(conn)
	}
}

// roundSize is how many requests a connection keeps in flight: one per
// server in barrier mode, one total otherwise.
func (ms *Memslap) roundSize() int {
	if ms.Barrier {
		return len(ms.Servers)
	}
	return 1
}

// issueRound fills the connection's window; in barrier mode one request
// per server, issued concurrently.
func (ms *Memslap) issueRound(conn *slapConn) {
	if ms.stopped {
		return
	}
	for n := ms.roundSize(); n > 0; n-- {
		if ms.TotalRequests > 0 && ms.issued >= ms.TotalRequests {
			return
		}
		ms.issued++
		ms.nextSeq++
		seq := ms.nextSeq
		dst := ms.Servers[int(ms.issued)%len(ms.Servers)]
		conn.pending[seq] = slapReq{dst: dst, sentAt: ms.eng.Now()}
		ms.send(conn, seq, dst)
	}
}

func (ms *Memslap) send(conn *slapConn, seq uint64, dst packet.IP) {
	ms.Client.Send(dst, conn.srcPort, MemcachedPort, ms.RequestSize, host.SendOptions{Seq: seq}, nil)
}

// onResponse completes a transaction exactly once; duplicates from
// retransmission races are dropped by the pending check.
func (ms *Memslap) onResponse(conn *slapConn, p *packet.Packet) {
	if ms.stopped {
		return
	}
	req, ok := conn.pending[p.Meta.Seq]
	if !ok {
		return // duplicate or stale response
	}
	delete(conn.pending, p.Meta.Seq)
	ms.Latency.Observe(ms.eng.Now() - req.sentAt)
	ms.Completed++
	if ms.TotalRequests > 0 && ms.Completed >= ms.TotalRequests {
		if ms.FinishedAt == 0 {
			ms.FinishedAt = ms.eng.Now()
			ms.stopped = true
			if ms.OnFinish != nil {
				ms.OnFinish()
			}
		}
		return
	}
	if len(conn.pending) == 0 {
		ms.issueRound(conn)
	}
}

// armRetry runs the connection's loss-recovery timer: any request still
// pending after RetryTimeout is retransmitted (the GETs are idempotent,
// and completion is de-duplicated by sequence number).
func (ms *Memslap) armRetry(conn *slapConn) {
	ms.eng.After(ms.RetryTimeout, func() {
		if ms.stopped {
			return
		}
		now := ms.eng.Now()
		// Sorted resend order keeps the simulation reproducible.
		seqs := make([]uint64, 0, len(conn.pending))
		for seq := range conn.pending {
			seqs = append(seqs, seq)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		for _, seq := range seqs {
			req := conn.pending[seq]
			if now-req.sentAt >= ms.RetryTimeout {
				ms.Retransmits++
				ms.send(conn, seq, req.dst)
			}
		}
		ms.armRetry(conn)
	})
}

// Stop halts an unbounded run.
func (ms *Memslap) Stop() { ms.stopped = true }

// TPS returns achieved transactions per second over elapsed.
func (ms *Memslap) TPS(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(ms.Completed) / elapsed.Seconds()
}
