package workload

import (
	"time"

	"repro/internal/host"
	"repro/internal/packet"
	"repro/internal/sim"
)

// Shuffle models a Hadoop MapReduce shuffle — the other disk-bound
// workload the paper evaluated ("we also evaluated disk-bound applications
// such as file transfer and Hadoop MapReduce, and found that FasTrak
// improved their overall throughput and reduced their finishing times",
// §6): every mapper VM transfers a partition to every reducer VM
// (all-to-all), reads paced by map-output disk rate, and the job finishes
// when the slowest reducer holds all its partitions — a partition-
// aggregate pattern at the transfer level.
type Shuffle struct {
	Mappers  []*host.VM
	Reducers []*host.VM
	// BasePort is the first reducer fetch port; reducer i listens on
	// BasePort+i.
	BasePort uint16
	// PartitionBytes is the map-output partition size per (mapper,
	// reducer) pair.
	PartitionBytes uint64
	// DiskBps paces each mapper's partition reads.
	DiskBps float64
	// ChunkSize is the transfer write size.
	ChunkSize int

	// FinishedAt is when the last partition completed (0 until done).
	FinishedAt time.Duration
	// Delivered counts shuffled payload bytes.
	Delivered uint64

	eng       *sim.Engine
	remaining int
	stopped   bool
}

// Start begins all transfers.
func (s *Shuffle) Start(eng *sim.Engine) {
	s.eng = eng
	if s.ChunkSize <= 0 {
		s.ChunkSize = 1448
	}
	if s.DiskBps <= 0 {
		s.DiskBps = 400e6
	}
	if s.PartitionBytes == 0 {
		s.PartitionBytes = 1 << 20
	}
	if s.BasePort == 0 {
		s.BasePort = 7100
	}
	// Per-reducer accounting: reducer i expects len(Mappers) partitions.
	type reducerState struct {
		got map[uint16]uint64 // mapper src port → bytes
	}
	s.remaining = len(s.Mappers) * len(s.Reducers)
	for ri, red := range s.Reducers {
		port := s.BasePort + uint16(ri)
		st := &reducerState{got: make(map[uint16]uint64)}
		red.BindApp(port, host.AppFunc(func(vm *host.VM, p *packet.Packet) {
			if s.stopped {
				return
			}
			src := p.TCP.SrcPort
			before := st.got[src]
			st.got[src] += uint64(p.PayloadLen())
			s.Delivered += uint64(p.PayloadLen())
			// Ack for the mapper's window-free pacing.
			vm.Send(p.IP.Src, port, src, 0, host.SendOptions{Seq: p.Meta.Seq}, nil)
			if before < s.PartitionBytes && st.got[src] >= s.PartitionBytes {
				s.remaining--
				if s.remaining == 0 && s.FinishedAt == 0 {
					s.FinishedAt = s.eng.Now()
					s.stopped = true
				}
			}
		}))
	}
	// Each mapper streams its partitions to all reducers, disk-paced
	// across the mapper's whole output (one spindle per mapper).
	for mi, m := range s.Mappers {
		srcPort := 46000 + uint16(mi)
		perChunk := time.Duration(float64(s.ChunkSize) * 8 / s.DiskBps * float64(time.Second))
		sent := make([]uint64, len(s.Reducers))
		next := 0
		m := m
		s.eng.Every(perChunk, func() {
			if s.stopped {
				return
			}
			// Round-robin across reducers that still need data.
			for tries := 0; tries < len(s.Reducers); tries++ {
				ri := next % len(s.Reducers)
				next++
				if sent[ri] >= s.PartitionBytes {
					continue
				}
				sent[ri] += uint64(s.ChunkSize)
				m.Send(s.Reducers[ri].Key.IP, srcPort, s.BasePort+uint16(ri), s.ChunkSize, host.SendOptions{}, nil)
				return
			}
		})
	}
}

// Stop abandons the job.
func (s *Shuffle) Stop() { s.stopped = true }
