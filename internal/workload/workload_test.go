package workload

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/host"
	"repro/internal/model"
	"repro/internal/packet"
)

func rig(t *testing.T) (*cluster.Cluster, *host.VM, *host.VM) {
	t.Helper()
	c := cluster.New(cluster.Config{Servers: 2, VSwitchCfg: model.VSwitchConfig{Tunneling: true}, Seed: 11})
	a, err := c.AddVM(0, 3, packet.MustParseIP("10.0.0.1"), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.AddVM(1, 3, packet.MustParseIP("10.0.0.2"), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c, a, b
}

func TestStreamDeliversWindowedTraffic(t *testing.T) {
	c, a, b := rig(t)
	s := &Stream{Client: a, Server: b, Port: 5001, Size: 1448, Threads: 3}
	s.Start(c.Eng)
	c.Eng.RunUntil(200 * time.Millisecond)
	s.Stop()
	if s.Messages == 0 {
		t.Fatal("no messages delivered")
	}
	gbps := float64(s.Received) * 8 / 0.2 / 1e9
	if gbps < 0.1 {
		t.Errorf("throughput %.3f Gbps implausibly low", gbps)
	}
	if gbps > 10 {
		t.Errorf("throughput %.3f Gbps exceeds line rate", gbps)
	}
}

func TestStreamThroughputScalesWithSize(t *testing.T) {
	// Fig. 3(a) shape: larger app data sizes achieve higher throughput.
	measure := func(size int) float64 {
		c, a, b := rig(t)
		s := &Stream{Client: a, Server: b, Port: 5001, Size: size, Threads: 3}
		s.Start(c.Eng)
		c.Eng.RunUntil(100 * time.Millisecond)
		s.Stop()
		return float64(s.Received) * 8 / 0.1
	}
	small := measure(64)
	large := measure(32000)
	if large <= 2*small {
		t.Errorf("32000B throughput %.2e not well above 64B %.2e", large, small)
	}
}

func TestRRClosedLoop(t *testing.T) {
	c, a, b := rig(t)
	r := &RR{Client: a, Server: b, Port: 5002, Size: 64, Threads: 1, Burst: 1}
	r.Start(c.Eng)
	c.Eng.RunUntil(100 * time.Millisecond)
	r.Stop()
	if r.Transactions == 0 {
		t.Fatal("no transactions")
	}
	if r.Latency.Count() == 0 {
		t.Fatal("no latency samples")
	}
	// Closed loop: exactly one in flight; RTT × TPS ≈ 1.
	rtt := r.Latency.Mean().Seconds()
	tps := r.TPS(100 * time.Millisecond)
	littles := rtt * tps
	if littles < 0.75 || littles > 1.1 {
		t.Errorf("Little's law violated for closed loop: RTT×TPS = %.2f", littles)
	}
}

func TestRRBurstIncreasesTPSAndLatency(t *testing.T) {
	// Fig. 3(d)/(e): pipelining raises TPS and queueing raises latency.
	run := func(burst int) (float64, time.Duration) {
		c, a, b := rig(t)
		r := &RR{Client: a, Server: b, Port: 5002, Size: 600, Threads: 3, Burst: burst}
		r.Start(c.Eng)
		c.Eng.RunUntil(200 * time.Millisecond)
		r.Stop()
		return r.TPS(200 * time.Millisecond), r.Latency.Mean()
	}
	tps1, lat1 := run(1)
	tps32, lat32 := run(32)
	if tps32 <= tps1 {
		t.Errorf("burst TPS %.0f not above closed-loop %.0f", tps32, tps1)
	}
	if lat32 <= lat1 {
		t.Errorf("burst latency %v not above closed-loop %v", lat32, lat1)
	}
}

func TestMemcachedMemslapFinishes(t *testing.T) {
	c, a, b := rig(t)
	mc := &Memcached{VM: b, ValueSize: 600}
	mc.Start()
	ms := &Memslap{Client: a, Servers: []packet.IP{b.Key.IP}, Concurrency: 4, TotalRequests: 500}
	ms.Start(c.Eng)
	c.Eng.RunUntil(10 * time.Second)
	if ms.FinishedAt == 0 {
		t.Fatal("memslap did not finish")
	}
	if ms.Completed != 500 {
		t.Errorf("completed %d", ms.Completed)
	}
	if mc.Served != 500 {
		t.Errorf("served %d", mc.Served)
	}
	if ms.Latency.Count() == 0 || ms.Latency.Mean() <= 0 {
		t.Error("no latency recorded")
	}
}

func TestMemslapSpreadsAcrossServers(t *testing.T) {
	c, a, _ := rig(t)
	b1, _ := c.AddVM(1, 3, packet.MustParseIP("10.0.0.3"), 4, nil)
	b2, _ := c.AddVM(1, 3, packet.MustParseIP("10.0.0.4"), 4, nil)
	m1 := &Memcached{VM: b1}
	m2 := &Memcached{VM: b2}
	m1.Start()
	m2.Start()
	ms := &Memslap{Client: a, Servers: []packet.IP{b1.Key.IP, b2.Key.IP}, Concurrency: 4, TotalRequests: 400}
	ms.Start(c.Eng)
	c.Eng.RunUntil(10 * time.Second)
	if ms.FinishedAt == 0 {
		t.Fatal("did not finish")
	}
	if m1.Served == 0 || m2.Served == 0 {
		t.Errorf("unbalanced: %d/%d", m1.Served, m2.Served)
	}
	ratio := float64(m1.Served) / float64(m2.Served)
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("round-robin skewed: %d vs %d", m1.Served, m2.Served)
	}
}

func TestFileTransferPacedByDisk(t *testing.T) {
	c, a, b := rig(t)
	f := &FileTransfer{Sender: a, Receiver: b, Port: 22, DiskBps: 10e6, TotalBytes: 125_000} // 0.1s at 10 Mbps
	f.Start(c.Eng)
	c.Eng.RunUntil(5 * time.Second)
	if f.FinishedAt == 0 {
		t.Fatal("transfer did not finish")
	}
	// 1 Mb at 10 Mbps = 100 ms, plus small stack delays.
	if f.FinishedAt < 90*time.Millisecond || f.FinishedAt > 300*time.Millisecond {
		t.Errorf("finish at %v, want ~100ms (disk paced)", f.FinishedAt)
	}
	// scp's pps signature is low (§6.2.1: ~135 pps for a real disk).
	if pps := f.Rate(); pps > 1000 {
		t.Errorf("pps %f implausibly high for disk-bound transfer", pps)
	}
}

func TestCPUStressConsumesGuestCPU(t *testing.T) {
	c, a, _ := rig(t)
	st := &CPUStress{VM: a, Workers: 2}
	st.Start(c.Eng)
	c.Eng.RunUntil(100 * time.Millisecond)
	st.Stop()
	used := a.CPU.Account.LogicalCPUs(100 * time.Millisecond)
	if used < 1.8 || used > 2.2 {
		t.Errorf("stress used %.2f CPUs, want ~2", used)
	}
	c.Eng.RunUntil(200 * time.Millisecond) // drain
}

func TestIOZoneFractionalLoad(t *testing.T) {
	c, a, _ := rig(t)
	z := &IOZone{VM: a, Utilization: 0.4}
	z.Start(c.Eng)
	c.Eng.RunUntil(100 * time.Millisecond)
	z.Stop()
	used := a.CPU.Account.LogicalCPUs(100 * time.Millisecond)
	if used < 0.3 || used > 0.5 {
		t.Errorf("iozone used %.2f CPUs, want ~0.4", used)
	}
}

func TestIperfSingleFlow(t *testing.T) {
	c, a, b := rig(t)
	s := Iperf(a, b, 5201)
	s.Start(c.Eng)
	c.Eng.RunUntil(100 * time.Millisecond)
	s.Stop()
	if s.Messages == 0 {
		t.Error("iperf idle")
	}
}

func TestShuffleCompletes(t *testing.T) {
	c, _, _ := rig(t)
	// 2 mappers on server 0, 2 reducers on server 1.
	var mappers, reducers []*host.VM
	for i := 0; i < 2; i++ {
		m, err := c.AddVM(0, 3, packet.MakeIP(10, 3, 0, byte(10+i)), 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		r, err := c.AddVM(1, 3, packet.MakeIP(10, 3, 0, byte(20+i)), 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		mappers = append(mappers, m)
		reducers = append(reducers, r)
	}
	sh := &Shuffle{
		Mappers: mappers, Reducers: reducers,
		PartitionBytes: 200_000, DiskBps: 400e6,
	}
	sh.Start(c.Eng)
	c.Eng.RunUntil(10 * time.Second)
	if sh.FinishedAt == 0 {
		t.Fatalf("shuffle incomplete: delivered %d", sh.Delivered)
	}
	// All 2×2 partitions delivered in full.
	want := uint64(4 * 200_000)
	if sh.Delivered < want {
		t.Errorf("delivered %d < %d", sh.Delivered, want)
	}
	// Disk-paced: 2 mappers × 400 Mbps reading 400 KB each ≈ 8 ms floor.
	if sh.FinishedAt < 8*time.Millisecond {
		t.Errorf("finished at %v, faster than the disk allows", sh.FinishedAt)
	}
}

// lossyPort drops every Nth packet before forwarding.
type lossyPort struct {
	next fabric.Port
	n    int
	seen int
}

func (l *lossyPort) Input(p *packet.Packet) {
	l.seen++
	if l.seen%l.n == 0 {
		return
	}
	l.next.Input(p)
}

func TestStreamRecoversFromLoss(t *testing.T) {
	c, a, b := rig(t)
	// Drop every 10th frame on b's access link.
	if err := c.TapServer(1, func(next fabric.Port) fabric.Port {
		return &lossyPort{next: next, n: 10}
	}); err != nil {
		t.Fatal(err)
	}
	s := &Stream{Client: a, Server: b, Port: 5001, Size: 1448, Threads: 2,
		RetryTimeout: 5 * time.Millisecond}
	s.Start(c.Eng)
	c.Eng.RunUntil(200 * time.Millisecond)
	s.Stop()
	if s.Retransmits == 0 {
		t.Error("loss did not trigger retransmission")
	}
	if s.Messages < 1000 {
		t.Errorf("only %d messages delivered under 10%% loss", s.Messages)
	}
	// Dedup: received bytes equal distinct messages × size exactly.
	if s.Received != uint64(s.Messages)*1448 {
		t.Errorf("duplicate counting: %d bytes for %d messages", s.Received, s.Messages)
	}
}

func TestRRRecoversFromLoss(t *testing.T) {
	c, a, b := rig(t)
	if err := c.TapServer(1, func(next fabric.Port) fabric.Port {
		return &lossyPort{next: next, n: 7}
	}); err != nil {
		t.Fatal(err)
	}
	r := &RR{Client: a, Server: b, Port: 5002, Size: 600, Threads: 2, Burst: 8,
		RetryTimeout: 5 * time.Millisecond}
	r.Start(c.Eng)
	c.Eng.RunUntil(200 * time.Millisecond)
	r.Stop()
	if r.Retransmits == 0 {
		t.Error("loss did not trigger retransmission")
	}
	if r.Transactions < 1000 {
		t.Errorf("only %d transactions under loss", r.Transactions)
	}
}
