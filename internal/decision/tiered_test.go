package decision

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/packet"
	"repro/internal/rules"
)

func patT(tenant packet.TenantID, port uint16) rules.Pattern {
	return rules.AggregatePattern(packet.AggregateKey{
		VMIP: packet.MustParseIP("10.0.0.2"), Port: port, Tenant: tenant, Dir: packet.Egress,
	})
}

// TestTieredCapacityZeroDifferential is the seed-equivalence guard: with
// no SmartNICs (nil or empty nics map) DecideTiered's TCAM decision is
// byte-identical to the 2-level Decide on the same inputs, and no NIC
// decisions appear. Randomized over many candidate sets, incumbent sets
// and configs.
func TestTieredCapacityZeroDifferential(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30)
		cands := make([]Candidate, 0, n)
		offloaded := map[rules.Pattern]bool{}
		for i := 0; i < n; i++ {
			p := patT(packet.TenantID(1+rng.Intn(4)), uint16(1000+rng.Intn(20)))
			cands = append(cands, Candidate{
				Pattern:      p,
				ActiveEpochs: uint32(rng.Intn(8)),
				MedianPPS:    float64(rng.Intn(10000)),
				Priority:     float64(rng.Intn(3)),
			})
			if rng.Intn(3) == 0 {
				offloaded[p] = true
			}
		}
		cfg := TieredConfig{
			TCAM: Config{
				Budget:          rng.Intn(8),
				MinScore:        float64(rng.Intn(2000)),
				HysteresisRatio: 1 + rng.Float64(),
			},
			// NIC knobs must be inert without NICs.
			NICMinScore:        float64(rng.Intn(100)),
			NICHysteresisRatio: 1.5,
			NICTenantQuota:     1 + rng.Intn(3),
		}
		want := Decide(cfg.TCAM, cands, offloaded)
		for _, nics := range []map[int]NICState{nil, {}} {
			td := DecideTiered(cfg, cands, offloaded, nics, nil)
			if !reflect.DeepEqual(td.TCAM, want) {
				t.Fatalf("seed %d: TCAM decision diverges from 2-level Decide\n tiered: %+v\n  plain: %+v",
					seed, td.TCAM, want)
			}
			if td.NIC != nil {
				t.Fatalf("seed %d: NIC decisions without NICs: %+v", seed, td.NIC)
			}
		}
	}
}

// TestTieredMiddleBand pins the ladder shape: the hottest flow wins the
// TCAM, the middle band lands on its sourcing host's NIC, and flows
// under NICMinScore stay in software.
func TestTieredMiddleBand(t *testing.T) {
	hot, mid, cold := patT(3, 1), patT(3, 2), patT(3, 3)
	cands := []Candidate{
		{Pattern: hot, ActiveEpochs: 4, MedianPPS: 5000},
		{Pattern: mid, ActiveEpochs: 4, MedianPPS: 500},
		{Pattern: cold, ActiveEpochs: 4, MedianPPS: 1},
	}
	hostOf := func(p rules.Pattern) (int, bool) { return 7, true }
	td := DecideTiered(TieredConfig{
		TCAM:        Config{Budget: 1},
		NICMinScore: 100,
	}, cands, nil, map[int]NICState{7: {Budget: 4}}, hostOf)
	if len(td.TCAM.Offload) != 1 || td.TCAM.Offload[0] != hot {
		t.Fatalf("TCAM = %v, want [%v]", td.TCAM.Offload, hot)
	}
	if got := td.NIC[7].Offload; len(got) != 1 || got[0] != mid {
		t.Fatalf("NIC = %v, want [%v] (hot is in the TCAM, cold under MinScore)", got, mid)
	}
}

// TestTieredQuota: the per-tenant quota keeps each tenant's best rules
// and demotes a placed incumbent it squeezes out.
func TestTieredQuota(t *testing.T) {
	a, b, c := patT(3, 1), patT(3, 2), patT(4, 3)
	cands := []Candidate{
		{Pattern: a, ActiveEpochs: 4, MedianPPS: 900},
		{Pattern: b, ActiveEpochs: 4, MedianPPS: 800},
		{Pattern: c, ActiveEpochs: 4, MedianPPS: 700},
	}
	hostOf := func(p rules.Pattern) (int, bool) { return 0, true }
	td := DecideTiered(TieredConfig{
		TCAM:           Config{Budget: 0},
		NICTenantQuota: 1,
	}, cands, nil, map[int]NICState{0: {Budget: 4, Placed: map[rules.Pattern]bool{b: true}}}, hostOf)
	d := td.NIC[0]
	if len(d.Offload) != 2 || d.Offload[0] != a || d.Offload[1] != c {
		t.Fatalf("Offload = %v, want [%v %v] (quota keeps tenant 3's best)", d.Offload, a, c)
	}
	found := false
	for _, p := range d.Demote {
		if p == b {
			found = true
		}
	}
	if !found {
		t.Fatalf("Demote = %v, want it to include squeezed incumbent %v", d.Demote, b)
	}
}

// TestTieredNICHysteresis: a NIC incumbent holds its slot until a
// challenger beats it by the tier's hysteresis ratio.
func TestTieredNICHysteresis(t *testing.T) {
	inc, chal := patT(3, 1), patT(3, 2)
	hostOf := func(p rules.Pattern) (int, bool) { return 0, true }
	run := func(challengerPPS float64) Decision {
		cands := []Candidate{
			{Pattern: inc, ActiveEpochs: 4, MedianPPS: 1000},
			{Pattern: chal, ActiveEpochs: 4, MedianPPS: challengerPPS},
		}
		td := DecideTiered(TieredConfig{
			TCAM:               Config{Budget: 0},
			NICHysteresisRatio: 1.5,
		}, cands, nil, map[int]NICState{0: {Budget: 1, Placed: map[rules.Pattern]bool{inc: true}}}, hostOf)
		return td.NIC[0]
	}
	if d := run(1200); len(d.Offload) != 1 || d.Offload[0] != inc {
		t.Errorf("challenger within hysteresis displaced incumbent: %v", d.Offload)
	}
	if d := run(2000); len(d.Offload) != 1 || d.Offload[0] != chal {
		t.Errorf("challenger beyond hysteresis failed to displace: %v", d.Offload)
	}
}

// Property: across random inputs, no pattern is placed on two tiers at
// once, each host's NIC offload set respects its budget, and NIC demotes
// only name that host's placed patterns.
func TestTieredInvariants(t *testing.T) {
	f := func(ports []uint16, budgets []uint8, tcamBudget uint8, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var cands []Candidate
		placed := map[int]map[rules.Pattern]bool{}
		hosts := 1 + int(tcamBudget%3)
		for h := 0; h < hosts; h++ {
			placed[h] = map[rules.Pattern]bool{}
		}
		hostOf := func(p rules.Pattern) (int, bool) {
			if p.SrcPort == 0 {
				return 0, false
			}
			return int(p.SrcPort) % hosts, true
		}
		for i, port := range ports {
			p := patT(packet.TenantID(1+i%3), port)
			cands = append(cands, Candidate{Pattern: p, ActiveEpochs: 2, MedianPPS: float64(100 + rng.Intn(5000))})
			if h, ok := hostOf(p); ok && rng.Intn(3) == 0 {
				placed[h][p] = true
			}
		}
		nics := map[int]NICState{}
		for h := 0; h < hosts; h++ {
			b := 1
			if h < len(budgets) {
				b = int(budgets[h] % 8)
			}
			nics[h] = NICState{Budget: b, Placed: placed[h]}
		}
		td := DecideTiered(TieredConfig{
			TCAM:           Config{Budget: int(tcamBudget % 8)},
			NICTenantQuota: 2,
		}, cands, nil, nics, hostOf)

		inTCAM := map[rules.Pattern]bool{}
		for _, p := range td.TCAM.Offload {
			inTCAM[p] = true
		}
		for h, d := range td.NIC {
			if len(d.Offload) > nics[h].Budget {
				return false
			}
			for _, p := range d.Offload {
				if inTCAM[p] {
					return false // double placement
				}
				if got, ok := hostOf(p); !ok || got != h {
					return false // placed on a host that never sources it
				}
			}
			for _, p := range d.Demote {
				if !nics[h].Placed[p] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
