package decision

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/packet"
	"repro/internal/rules"
)

// churnStep mutates a candidate population the way demand cycles do:
// smoothed scores drift, flows appear and vanish, epochs advance.
func churnStep(rng *rand.Rand, cands []Candidate, pool []Candidate) []Candidate {
	out := cands[:0]
	for _, c := range cands {
		switch rng.Intn(10) {
		case 0: // flow went idle and was dropped
			continue
		case 1, 2, 3: // smoothed score moved
			c.MedianPPS *= 0.5 + rng.Float64()
			if c.ActiveEpochs < 1<<20 {
				c.ActiveEpochs++
			}
		}
		out = append(out, c)
	}
	// A few new arrivals from the pool.
	for i := 0; i < rng.Intn(4); i++ {
		c := pool[rng.Intn(len(pool))]
		dup := false
		for _, e := range out {
			if e.Pattern == c.Pattern {
				dup = true
				break
			}
		}
		if !dup {
			c.MedianPPS = 1 + rng.Float64()*5000
			out = append(out, c)
		}
	}
	return out
}

// applyDecision plays a Decision back onto the offloaded set, like the
// rule manager does between cycles.
func applyDecision(offloaded map[rules.Pattern]bool, d Decision) {
	for _, p := range d.Demote {
		delete(offloaded, p)
	}
	for _, p := range d.Offload {
		offloaded[p] = true
	}
}

// TestIncrementalMatchesDecideUnderChurn is the core equivalence
// property: across many seeds and many cycles of score drift, arrivals,
// departures, budget changes and hysteresis, the incremental engine (Band
// 0) returns exactly what a from-scratch Decide returns, while both
// engines' decisions feed back into their own offloaded sets.
func TestIncrementalMatchesDecideUnderChurn(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		pool, _ := benchCandidates(96)
		cands := append([]Candidate(nil), pool[:48]...)
		inc := NewIncremental(0)
		offExact := map[rules.Pattern]bool{}
		offInc := map[rules.Pattern]bool{}
		for cycle := 0; cycle < 60; cycle++ {
			cfg := Config{
				Budget:          8 + rng.Intn(24),
				MinScore:        float64(rng.Intn(3)) * 50,
				HysteresisRatio: 1 + rng.Float64(),
			}
			want := Decide(cfg, cands, offExact)
			got := inc.Decide(cfg, cands, offInc)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("seed %d cycle %d: incremental diverged\nexact: %+v\nincr:  %+v", seed, cycle, want, got)
			}
			applyDecision(offExact, want)
			applyDecision(offInc, got)
			cands = churnStep(rng, cands, pool)
		}
	}
}

// TestIncrementalMatchesDecideWithGroups covers the all-or-nothing group
// path (which the incremental engine reaches through the shared
// decideRanked fold).
func TestIncrementalMatchesDecideWithGroups(t *testing.T) {
	for seed := 0; seed < 10; seed++ {
		rng := rand.New(rand.NewSource(int64(100 + seed)))
		pool, _ := benchCandidates(64)
		cands := append([]Candidate(nil), pool[:40]...)
		groups := [][]rules.Pattern{
			{pool[0].Pattern, pool[1].Pattern, pool[2].Pattern},
			{pool[10].Pattern, pool[11].Pattern},
		}
		inc := NewIncremental(0)
		offExact := map[rules.Pattern]bool{}
		offInc := map[rules.Pattern]bool{}
		for cycle := 0; cycle < 40; cycle++ {
			cfg := Config{Budget: 6 + rng.Intn(10), HysteresisRatio: 1.2, Groups: groups}
			want := Decide(cfg, cands, offExact)
			got := inc.Decide(cfg, cands, offInc)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("seed %d cycle %d (groups): incremental diverged\nexact: %+v\nincr:  %+v", seed, cycle, want, got)
			}
			applyDecision(offExact, want)
			applyDecision(offInc, got)
			cands = churnStep(rng, cands, pool)
		}
	}
}

// TestIncrementalTieredMatchesDecideTiered extends the equivalence to the
// N-level ladder: TCAM + per-host NIC decisions with quotas, under NIC
// budget churn and placement feedback.
func TestIncrementalTieredMatchesDecideTiered(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 5
	}
	hostOf := func(p rules.Pattern) (int, bool) {
		if p.SrcPort == 0 {
			return 0, false
		}
		return int(p.SrcPort) % 4, true
	}
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(200 + seed)))
		pool, _ := benchCandidates(96)
		cands := append([]Candidate(nil), pool[:64]...)
		it := NewIncrementalTiered(0)
		offExact := map[rules.Pattern]bool{}
		offInc := map[rules.Pattern]bool{}
		nicsExact := map[int]NICState{}
		nicsInc := map[int]NICState{}
		for h := 0; h < 4; h++ {
			nicsExact[h] = NICState{Budget: 8, Placed: map[rules.Pattern]bool{}}
			nicsInc[h] = NICState{Budget: 8, Placed: map[rules.Pattern]bool{}}
		}
		for cycle := 0; cycle < 40; cycle++ {
			cfg := TieredConfig{
				TCAM:               Config{Budget: 8 + rng.Intn(8), HysteresisRatio: 1.2},
				NICMinScore:        10,
				NICHysteresisRatio: 1.1,
				NICTenantQuota:     3,
			}
			want := DecideTiered(cfg, cands, offExact, nicsExact, hostOf)
			got := it.Decide(cfg, cands, offInc, nicsInc, hostOf)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("seed %d cycle %d: tiered incremental diverged\nexact: %+v\nincr:  %+v", seed, cycle, want, got)
			}
			applyDecision(offExact, want.TCAM)
			applyDecision(offInc, got.TCAM)
			for h, d := range want.NIC {
				applyDecision(nicsExact[h].Placed, d)
			}
			for h, d := range got.NIC {
				applyDecision(nicsInc[h].Placed, d)
			}
			cands = churnStep(rng, cands, pool)
		}
	}
}

// TestIncrementalResetForgetsState: after Reset the engine behaves like a
// fresh one (failover/crash-adoption semantics).
func TestIncrementalResetForgetsState(t *testing.T) {
	pool, _ := benchCandidates(32)
	cfg := Config{Budget: 8, HysteresisRatio: 1.2}
	off := map[rules.Pattern]bool{}
	inc := NewIncremental(0)
	inc.Decide(cfg, pool, off)
	inc.Reset()
	fresh := NewIncremental(0)
	if got, want := inc.Decide(cfg, pool, off), fresh.Decide(cfg, pool, off); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-Reset decision differs from a fresh engine: %+v vs %+v", got, want)
	}
}

// TestIncrementalBandIsStableUnderJitter: with a nonzero band, score
// jitter that stays inside a band never changes the decision (the
// rank-maintenance analogue of the damper's suppress band), while a large
// score move still does. Base scores sit at band centers so the jitter
// cannot straddle an edge — banding guarantees stability within a band,
// not at its boundaries.
func TestIncrementalBandIsStableUnderJitter(t *testing.T) {
	bw := math.Log1p(0.2)
	var base []Candidate
	for i := 0; i < 32; i++ {
		base = append(base, Candidate{
			Pattern:      patT(packet.TenantID(1+i%8), uint16(1000+i)),
			ActiveEpochs: 1,
			MedianPPS:    math.Exp((float64(10+i) + 0.5) * bw),
			Priority:     1,
		})
	}
	cfg := Config{Budget: 8, HysteresisRatio: 1}
	inc := NewIncremental(0.2)
	off := map[rules.Pattern]bool{}
	first := inc.Decide(cfg, base, off)
	rng := rand.New(rand.NewSource(3))
	for cycle := 0; cycle < 20; cycle++ {
		jittered := append([]Candidate(nil), base...)
		for i := range jittered {
			jittered[i].MedianPPS *= 1 + (rng.Float64()-0.5)*0.02 // ±1% ≪ 20% band
		}
		if got := inc.Decide(cfg, jittered, off); !reflect.DeepEqual(first.Offload, got.Offload) {
			t.Fatalf("cycle %d: sub-band jitter changed the decision", cycle)
		}
	}
	// A 100× surge on a previously-unselected candidate must re-rank.
	surged := append([]Candidate(nil), base...)
	worst := 0
	for i := range surged {
		if surged[i].Score() < surged[worst].Score() {
			worst = i
		}
	}
	surged[worst].MedianPPS *= 100
	surged[worst].ActiveEpochs += 10
	got := inc.Decide(cfg, surged, off)
	found := false
	for _, p := range got.Offload {
		if p == surged[worst].Pattern {
			found = true
		}
	}
	if !found {
		t.Fatal("a 100x surge did not re-rank the candidate into the offload set")
	}
}
