package decision

import (
	"math/rand"
	"testing"

	"repro/internal/packet"
	"repro/internal/rules"
)

// benchCandidates builds a deterministic candidate pool: n aggregates
// across 8 tenants with log-uniform rates, plus the incumbent set a
// steady-state controller would carry.
func benchCandidates(n int) ([]Candidate, map[rules.Pattern]bool) {
	rng := rand.New(rand.NewSource(7))
	cands := make([]Candidate, n)
	offloaded := make(map[rules.Pattern]bool)
	for i := range cands {
		cands[i] = Candidate{
			Pattern:      patT(packet.TenantID(1+i%8), uint16(1000+i)),
			ActiveEpochs: uint32(1 + rng.Intn(8)),
			MedianPPS:    float64(uint64(1) << uint(rng.Intn(16))),
			Priority:     1,
		}
		if i%4 == 0 {
			offloaded[cands[i].Pattern] = true
		}
	}
	return cands, offloaded
}

// BenchmarkDecide is the 2-level engine on a controller-scale interval:
// 256 candidates against a 64-entry TCAM with incumbents and hysteresis.
func BenchmarkDecide(b *testing.B) {
	cands, offloaded := benchCandidates(256)
	cfg := Config{Budget: 64, MinScore: 10, HysteresisRatio: 1.2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Decide(cfg, cands, offloaded)
	}
}

// BenchmarkDecideTiered is the N-level ladder on the same interval: the
// TCAM decision plus a per-host NIC-tier Decide across 8 SmartNICs, with
// per-tenant quotas. The delta over BenchmarkDecide is the cost of the
// extra tier.
func BenchmarkDecideTiered(b *testing.B) {
	cands, offloaded := benchCandidates(256)
	cfg := TieredConfig{
		TCAM:               Config{Budget: 64, MinScore: 10, HysteresisRatio: 1.2},
		NICMinScore:        2,
		NICHysteresisRatio: 1.2,
		NICTenantQuota:     8,
	}
	const hosts = 8
	nics := make(map[int]NICState, hosts)
	for s := 0; s < hosts; s++ {
		nics[s] = NICState{Budget: 16, Placed: map[rules.Pattern]bool{}}
	}
	// Seed NIC incumbents the way a running ladder would: low-ranked
	// candidates already placed on their sourcing host.
	hostOf := func(p rules.Pattern) (int, bool) { return int(p.SrcPort) % hosts, true }
	for i, c := range cands {
		if i%3 == 0 && !offloaded[c.Pattern] {
			h, _ := hostOf(c.Pattern)
			nics[h].Placed[c.Pattern] = true
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = DecideTiered(cfg, cands, offloaded, nics, hostOf)
	}
}
