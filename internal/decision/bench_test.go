package decision

import (
	"math/rand"
	"testing"

	"repro/internal/packet"
	"repro/internal/rules"
)

// benchCandidates builds a deterministic candidate pool: n aggregates
// across 8 tenants with log-uniform rates, plus the incumbent set a
// steady-state controller would carry.
func benchCandidates(n int) ([]Candidate, map[rules.Pattern]bool) {
	rng := rand.New(rand.NewSource(7))
	cands := make([]Candidate, n)
	offloaded := make(map[rules.Pattern]bool)
	for i := range cands {
		cands[i] = Candidate{
			Pattern:      patT(packet.TenantID(1+i%8), uint16(1000+i)),
			ActiveEpochs: uint32(1 + rng.Intn(8)),
			MedianPPS:    float64(uint64(1) << uint(rng.Intn(16))),
			Priority:     1,
		}
		if i%4 == 0 {
			offloaded[cands[i].Pattern] = true
		}
	}
	return cands, offloaded
}

// BenchmarkDecide is the 2-level engine on a controller-scale interval:
// 256 candidates against a 64-entry TCAM with incumbents and hysteresis.
func BenchmarkDecide(b *testing.B) {
	cands, offloaded := benchCandidates(256)
	cfg := Config{Budget: 64, MinScore: 10, HysteresisRatio: 1.2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Decide(cfg, cands, offloaded)
	}
}

// churn1pct drifts ~1% of candidate scores per cycle — the steady-state
// shape at scale: a million flows collapse into ~10^4 ranked aggregate
// patterns of which only a handful move rank between demand cycles.
func churn1pct(rng *rand.Rand, cands []Candidate) {
	for i := 0; i < len(cands)/100; i++ {
		j := rng.Intn(len(cands))
		cands[j].MedianPPS *= 0.5 + rng.Float64()
	}
}

// BenchmarkDecideExact10k is the full-sort baseline at the ROADMAP scale
// point (10^6 flows / 10^4 patterns): every cycle re-ranks all 10^4
// patterns from scratch, paying two Pattern.String() allocations per
// comparison.
func BenchmarkDecideExact10k(b *testing.B) {
	cands, offloaded := benchCandidates(10000)
	cfg := Config{Budget: 1000, MinScore: 10, HysteresisRatio: 1.2}
	rng := rand.New(rand.NewSource(11))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := Decide(cfg, cands, offloaded)
		b.StopTimer()
		applyDecision(offloaded, d)
		churn1pct(rng, cands)
		b.StartTimer()
	}
}

// BenchmarkDecideIncremental10k is the same workload through the
// incremental engine: identical decisions (Band 0), but each cycle only
// re-sorts the ~1% of patterns whose scores moved. The ratio to
// BenchmarkDecideExact10k is the acceptance number (≥10×).
func BenchmarkDecideIncremental10k(b *testing.B) {
	cands, offloaded := benchCandidates(10000)
	cfg := Config{Budget: 1000, MinScore: 10, HysteresisRatio: 1.2}
	inc := NewIncremental(0)
	rng := rand.New(rand.NewSource(11))
	inc.Decide(cfg, cands, offloaded) // warm: first cycle pays the full sort
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := inc.Decide(cfg, cands, offloaded)
		b.StopTimer()
		applyDecision(offloaded, d)
		churn1pct(rng, cands)
		b.StartTimer()
	}
}

// BenchmarkDecideTiered is the N-level ladder on the same interval: the
// TCAM decision plus a per-host NIC-tier Decide across 8 SmartNICs, with
// per-tenant quotas. The delta over BenchmarkDecide is the cost of the
// extra tier.
func BenchmarkDecideTiered(b *testing.B) {
	cands, offloaded := benchCandidates(256)
	cfg := TieredConfig{
		TCAM:               Config{Budget: 64, MinScore: 10, HysteresisRatio: 1.2},
		NICMinScore:        2,
		NICHysteresisRatio: 1.2,
		NICTenantQuota:     8,
	}
	const hosts = 8
	nics := make(map[int]NICState, hosts)
	for s := 0; s < hosts; s++ {
		nics[s] = NICState{Budget: 16, Placed: map[rules.Pattern]bool{}}
	}
	// Seed NIC incumbents the way a running ladder would: low-ranked
	// candidates already placed on their sourcing host.
	hostOf := func(p rules.Pattern) (int, bool) { return int(p.SrcPort) % hosts, true }
	for i, c := range cands {
		if i%3 == 0 && !offloaded[c.Pattern] {
			h, _ := hostOf(c.Pattern)
			nics[h].Placed[c.Pattern] = true
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = DecideTiered(cfg, cands, offloaded, nics, hostOf)
	}
}
