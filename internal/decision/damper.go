// Flap damping and staleness-aware smoothing for the decision engine.
//
// The DE's inputs are measured statistics carried over a lossy control
// network: reports can be dropped, delayed or reordered (internal/faults
// can do all three on purpose). Acting on every wiggle of those inputs
// makes offload/demote decisions oscillate — each flip costs a TCAM
// install plus a placer reprogramming round, and under a storm the
// thrashing itself becomes the overload. Two mechanisms bound it:
//
//   - Smoother: an EWMA over each candidate's reported score inputs that
//     is staleness-aware — when a candidate is missing from this
//     interval's reports (stats lost, ME down), its last estimate is
//     retained and decayed instead of being treated as zero demand, so
//     one lost report cannot demote a hot flow.
//
//   - FlapDamper: penalty-decay suppression in the style of BGP route-
//     flap damping (RFC 2439), layered on the score hysteresis that
//     Decide already applies. Every offload-state transition of a
//     pattern adds a penalty; the penalty decays exponentially with a
//     configured half-life; while it exceeds the suppress threshold,
//     further transitions for that pattern are vetoed until the penalty
//     decays below the reuse threshold.
package decision

import (
	"math"
	"sort"
	"time"

	"repro/internal/rules"
)

// DamperConfig parameterizes the flap damper. The zero value is
// normalized to defaults.
type DamperConfig struct {
	// Penalty added per transition (default 1000, the BGP convention).
	Penalty float64
	// SuppressThreshold starts suppression when exceeded (default 2500:
	// three quick flips suppress, two do not).
	SuppressThreshold float64
	// ReuseThreshold ends suppression when the decayed penalty falls
	// below it (default 750).
	ReuseThreshold float64
	// HalfLife is the penalty decay half-life (default 2s of virtual
	// time — a few control intervals).
	HalfLife time.Duration
	// MaxPenalty caps accumulation so suppression always ends within
	// a bounded number of half-lives (default 4×SuppressThreshold).
	MaxPenalty float64
}

// DefaultDamperConfig returns the defaults.
func DefaultDamperConfig() DamperConfig {
	return DamperConfig{
		Penalty:           1000,
		SuppressThreshold: 2500,
		ReuseThreshold:    750,
		HalfLife:          2 * time.Second,
		MaxPenalty:        10000,
	}
}

func (c DamperConfig) normalized() DamperConfig {
	d := DefaultDamperConfig()
	if c.Penalty <= 0 {
		c.Penalty = d.Penalty
	}
	if c.SuppressThreshold <= 0 {
		c.SuppressThreshold = d.SuppressThreshold
	}
	if c.ReuseThreshold <= 0 || c.ReuseThreshold >= c.SuppressThreshold {
		c.ReuseThreshold = c.SuppressThreshold * 0.3
	}
	if c.HalfLife <= 0 {
		c.HalfLife = d.HalfLife
	}
	if c.MaxPenalty < c.SuppressThreshold {
		c.MaxPenalty = 4 * c.SuppressThreshold
	}
	return c
}

// flapState is one pattern's damping record.
type flapState struct {
	penalty    float64
	lastUpdate time.Duration
	suppressed bool
	// offloaded is the last observed offload state, to detect actual
	// transitions (re-asserting the same state costs no penalty).
	offloaded bool
	known     bool
}

// FlapDamper tracks per-pattern transition penalties. Not safe for
// concurrent use; the simulation is single-threaded.
type FlapDamper struct {
	cfg   DamperConfig
	flaps map[rules.Pattern]*flapState
	// Suppressions counts transitions vetoed; Transitions counts
	// penalized state changes.
	Suppressions uint64
	Transitions  uint64
}

// NewFlapDamper builds a damper.
func NewFlapDamper(cfg DamperConfig) *FlapDamper {
	return &FlapDamper{cfg: cfg.normalized(), flaps: make(map[rules.Pattern]*flapState)}
}

// decayTo brings the state's penalty forward to now.
func (f *FlapDamper) decayTo(st *flapState, now time.Duration) {
	if now <= st.lastUpdate {
		return
	}
	dt := (now - st.lastUpdate).Seconds()
	st.penalty *= math.Pow(0.5, dt/f.cfg.HalfLife.Seconds())
	st.lastUpdate = now
	if st.suppressed && st.penalty < f.cfg.ReuseThreshold {
		st.suppressed = false
	}
}

// Allow reports whether a transition of pattern p to state offloaded may
// proceed at time now, charging the penalty if it does. A vetoed
// transition is counted in Suppressions and the pattern keeps its
// previous state. Re-asserting the current state is always allowed and
// never penalized.
func (f *FlapDamper) Allow(p rules.Pattern, offloaded bool, now time.Duration) bool {
	st, ok := f.flaps[p]
	if !ok {
		st = &flapState{lastUpdate: now}
		f.flaps[p] = st
	}
	f.decayTo(st, now)
	if st.known && st.offloaded == offloaded {
		return true // no transition
	}
	if !st.known {
		// First observation: establish state free of charge (initial
		// offload is not a flap).
		st.known = true
		st.offloaded = offloaded
		return true
	}
	if st.suppressed {
		f.Suppressions++
		return false
	}
	st.penalty += f.cfg.Penalty
	if st.penalty > f.cfg.MaxPenalty {
		st.penalty = f.cfg.MaxPenalty
	}
	f.Transitions++
	st.offloaded = offloaded
	if st.penalty >= f.cfg.SuppressThreshold {
		st.suppressed = true
	}
	return true
}

// ForceState records an externally-imposed state change (migration pull-
// back, reconciliation repair) without charging or consulting the damper:
// correctness paths must never be vetoed, but the damper's view of the
// current state has to follow them.
func (f *FlapDamper) ForceState(p rules.Pattern, offloaded bool, now time.Duration) {
	st, ok := f.flaps[p]
	if !ok {
		st = &flapState{lastUpdate: now}
		f.flaps[p] = st
	}
	f.decayTo(st, now)
	st.known = true
	st.offloaded = offloaded
}

// Suppressed reports whether p is currently suppressed at now.
func (f *FlapDamper) Suppressed(p rules.Pattern, now time.Duration) bool {
	st, ok := f.flaps[p]
	if !ok {
		return false
	}
	f.decayTo(st, now)
	return st.suppressed
}

// Penalty returns p's decayed penalty at now (diagnostics).
func (f *FlapDamper) Penalty(p rules.Pattern, now time.Duration) float64 {
	st, ok := f.flaps[p]
	if !ok {
		return 0
	}
	f.decayTo(st, now)
	return st.penalty
}

// Apply filters a Decision through the damper: suppressed transitions are
// removed (the pattern keeps its current state), allowed ones are charged.
// current is the pre-decision offloaded set.
func (f *FlapDamper) Apply(d Decision, current map[rules.Pattern]bool, now time.Duration) Decision {
	var out Decision
	for _, p := range d.Offload {
		if current[p] {
			// Keeping an offloaded pattern offloaded is not a transition.
			out.Offload = append(out.Offload, p)
			continue
		}
		if f.Allow(p, true, now) {
			out.Offload = append(out.Offload, p)
		}
	}
	for _, p := range d.Demote {
		if f.Allow(p, false, now) {
			out.Demote = append(out.Demote, p)
		}
	}
	return out
}

// SmootherConfig parameterizes the staleness-aware candidate smoother.
type SmootherConfig struct {
	// Alpha is the EWMA weight of the new observation (default 0.5).
	Alpha float64
	// StaleDecay multiplies the retained estimate per interval a
	// candidate is missing from the reports (default 0.75): estimates
	// fade smoothly instead of cliff-dropping to zero on one lost
	// report.
	StaleDecay float64
	// MaxStaleIntervals drops a candidate entirely after this many
	// consecutive missing intervals (default 4) — genuinely dead flows
	// must eventually release their TCAM slots.
	MaxStaleIntervals int
}

// DefaultSmootherConfig returns the defaults.
func DefaultSmootherConfig() SmootherConfig {
	return SmootherConfig{Alpha: 0.5, StaleDecay: 0.75, MaxStaleIntervals: 4}
}

func (c SmootherConfig) normalized() SmootherConfig {
	d := DefaultSmootherConfig()
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = d.Alpha
	}
	if c.StaleDecay <= 0 || c.StaleDecay >= 1 {
		c.StaleDecay = d.StaleDecay
	}
	if c.MaxStaleIntervals <= 0 {
		c.MaxStaleIntervals = d.MaxStaleIntervals
	}
	return c
}

// smoothState is one candidate's smoothed estimate.
type smoothState struct {
	cand  Candidate
	stale int
}

// Smoother maintains per-pattern EWMA estimates across control intervals
// and synthesizes candidates for patterns whose stats went missing.
type Smoother struct {
	cfg   SmootherConfig
	state map[rules.Pattern]*smoothState
	// Synthesized counts candidates carried through a missing interval.
	Synthesized uint64
}

// NewSmoother builds a smoother.
func NewSmoother(cfg SmootherConfig) *Smoother {
	return &Smoother{cfg: cfg.normalized(), state: make(map[rules.Pattern]*smoothState)}
}

// Advance ingests one interval's raw candidates and returns the smoothed
// set: present candidates are EWMA-blended with their history; absent
// ones are synthesized from the decayed estimate until MaxStaleIntervals
// pass. Output is sorted by pattern for determinism.
//
// offloaded marks patterns currently placed in hardware. Their demand is
// observed through the TOR's own TCAM counters — a local read that cannot
// be lost on the stats path — so when an offloaded pattern is absent its
// absence is authoritative and the estimate is dropped immediately
// instead of synthesized. Without this, a demoted-and-gone flow (e.g. a
// migrated VM's aggregates) would be kept alive by its own ghost and
// re-offloaded. Staleness protection is for software-path candidates,
// whose reports cross the lossy control network.
func (s *Smoother) Advance(cands []Candidate, offloaded map[rules.Pattern]bool) []Candidate {
	seen := make(map[rules.Pattern]bool, len(cands))
	for _, c := range cands {
		seen[c.Pattern] = true
		st, ok := s.state[c.Pattern]
		if !ok {
			s.state[c.Pattern] = &smoothState{cand: c}
			continue
		}
		a := s.cfg.Alpha
		st.cand.MedianPPS = a*c.MedianPPS + (1-a)*st.cand.MedianPPS
		st.cand.MedianBPS = a*c.MedianBPS + (1-a)*st.cand.MedianBPS
		// Frequency and priority are structural, not noisy: take them
		// as reported.
		st.cand.ActiveEpochs = c.ActiveEpochs
		st.cand.Priority = c.Priority
		st.stale = 0
	}
	// Age the missing.
	var drop []rules.Pattern
	for p, st := range s.state {
		if seen[p] {
			continue
		}
		if offloaded[p] {
			// Hardware counters are read locally; silence is real.
			drop = append(drop, p)
			continue
		}
		st.stale++
		if st.stale > s.cfg.MaxStaleIntervals {
			drop = append(drop, p)
			continue
		}
		st.cand.MedianPPS *= s.cfg.StaleDecay
		st.cand.MedianBPS *= s.cfg.StaleDecay
		s.Synthesized++
	}
	for _, p := range drop {
		delete(s.state, p)
	}
	// Emit deterministically.
	pats := make([]rules.Pattern, 0, len(s.state))
	for p := range s.state {
		pats = append(pats, p)
	}
	sort.Slice(pats, func(i, j int) bool { return pats[i].String() < pats[j].String() })
	out := make([]Candidate, 0, len(pats))
	for _, p := range pats {
		out = append(out, s.state[p].cand)
	}
	return out
}
