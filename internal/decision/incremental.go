// incremental.go makes the Decision Engine's ranking incremental: instead
// of re-sorting every candidate from scratch each demand cycle (the
// sort.Slice in Decide, whose comparator pays two Pattern.String()
// allocations per comparison — the dominant cost at 10^4+ patterns), an
// Incremental engine carries the ranked order across cycles and repairs
// it.
//
// The invariant that makes the repair cheap and exact: the rank order is a
// pure function of each candidate's (effective score, pattern key) pair.
// Candidates whose effective score did not change since the previous cycle
// therefore keep their relative order — the previous cycle's order
// restricted to them is still sorted. Each cycle splits candidates into
// that stable subsequence (O(n) to verify) and a moved set (score changed,
// newly appeared, or hysteresis flipped), sorts only the moved set
// (O(m log m), with cached pattern keys — no String() allocations), and
// merges. The merged order is identical to what Decide's full sort would
// produce, so the selection half (decideRanked) is shared verbatim and the
// two engines return identical Decisions by construction — the property
// the differential tests pin.
//
// Band > 0 trades exactness for stability under score jitter: scores are
// quantized into multiplicative bands and candidates re-rank only when
// they cross a band boundary (the hysteresis/damping-band idea applied to
// rank maintenance). Band = 0 (the default) is exact and is the mode the
// differential oracle runs.
package decision

import (
	"math"
	"sort"

	"repro/internal/rules"
)

// Incremental is a 2-level decision engine that maintains its ranking
// across cycles. The zero value is not usable; call NewIncremental. Not
// safe for concurrent use. Candidate patterns must be distinct within a
// cycle (CandidatesFromReports guarantees this).
type Incremental struct {
	// Band quantizes ranking scores into multiplicative bands of this
	// relative width (e.g. 0.1 = 10% bands): candidates re-rank only when
	// crossing a band edge. 0 ranks by exact score — identical output to
	// Decide.
	Band float64

	keys  map[rules.Pattern]string  // cached Pattern.String()
	eff   map[rules.Pattern]float64 // this cycle's ranking scores
	prev  map[rules.Pattern]float64 // previous cycle's ranking scores
	order []rules.Pattern           // previous cycle's ranked patterns

	// scratch, reused across cycles
	cur    map[rules.Pattern]int
	stable []rules.Pattern
	moved  []rules.Pattern
	merged []rules.Pattern
	ranked []Candidate
}

// NewIncremental returns an empty engine. band is the score-band width
// (0 = exact; see Incremental.Band).
func NewIncremental(band float64) *Incremental {
	return &Incremental{
		Band: band,
		keys: make(map[rules.Pattern]string),
		eff:  make(map[rules.Pattern]float64),
		prev: make(map[rules.Pattern]float64),
		cur:  make(map[rules.Pattern]int),
	}
}

// Reset drops all carried ranking state (controller failover, crash
// adoption — anywhere the smoother/damper state is also rebuilt).
func (inc *Incremental) Reset() {
	clear(inc.keys)
	clear(inc.eff)
	clear(inc.prev)
	clear(inc.cur)
	inc.order = inc.order[:0]
}

// rankScore is the score candidates are ordered by: the effective
// (hysteresis-adjusted) score, optionally quantized into bands.
func (inc *Incremental) rankScore(cfg Config, c Candidate, offloaded map[rules.Pattern]bool) float64 {
	s := effectiveScore(cfg, c, offloaded)
	if inc.Band <= 0 || s <= 0 {
		return s
	}
	// Multiplicative banding: scores within the same power of (1+Band)
	// rank equal, so jitter inside a band never reorders.
	b := math.Log1p(inc.Band)
	return math.Exp(math.Floor(math.Log(s)/b) * b)
}

// Decide is the incremental counterpart of the package-level Decide:
// identical semantics (and, with Band == 0, identical output), O(n + m
// log m) ranking where m is the number of candidates whose ranking score
// changed since the previous cycle. cfg may change freely between calls —
// budget and hysteresis apply per cycle (a hysteresis change flips
// effective scores and simply enlarges m).
func (inc *Incremental) Decide(cfg Config, cands []Candidate, offloaded map[rules.Pattern]bool) Decision {
	cfg = cfg.normalize()

	clear(inc.cur)
	clear(inc.eff)
	for i, c := range cands {
		p := c.Pattern
		inc.cur[p] = i
		inc.eff[p] = inc.rankScore(cfg, c, offloaded)
		if _, ok := inc.keys[p]; !ok {
			inc.keys[p] = p.String()
		}
	}

	// Split the previous order into the stable subsequence (still live,
	// score unchanged — sorted by construction) and the moved set.
	inc.stable = inc.stable[:0]
	inc.moved = inc.moved[:0]
	for _, p := range inc.order {
		if _, live := inc.cur[p]; !live {
			continue
		}
		if s, ok := inc.prev[p]; ok && s == inc.eff[p] {
			inc.stable = append(inc.stable, p)
		} else {
			inc.moved = append(inc.moved, p)
		}
	}
	// Newly appeared candidates, in the caller's (deterministic) order.
	if len(inc.cur) > len(inc.stable)+len(inc.moved) {
		for _, c := range cands {
			if _, seen := inc.prev[c.Pattern]; !seen {
				inc.moved = append(inc.moved, c.Pattern)
			}
		}
	}

	less := func(a, b rules.Pattern) bool {
		sa, sb := inc.eff[a], inc.eff[b]
		if sa != sb {
			return sa > sb
		}
		return inc.keys[a] < inc.keys[b]
	}
	sort.Slice(inc.moved, func(i, j int) bool { return less(inc.moved[i], inc.moved[j]) })

	// Merge the two sorted runs.
	inc.merged = inc.merged[:0]
	i, j := 0, 0
	for i < len(inc.stable) && j < len(inc.moved) {
		if less(inc.moved[j], inc.stable[i]) {
			inc.merged = append(inc.merged, inc.moved[j])
			j++
		} else {
			inc.merged = append(inc.merged, inc.stable[i])
			i++
		}
	}
	inc.merged = append(inc.merged, inc.stable[i:]...)
	inc.merged = append(inc.merged, inc.moved[j:]...)

	inc.ranked = inc.ranked[:0]
	for _, p := range inc.merged {
		inc.ranked = append(inc.ranked, cands[inc.cur[p]])
	}

	// Carry this cycle's order and scores; prune the key cache if pattern
	// churn has left it far larger than the live population.
	inc.order = append(inc.order[:0], inc.merged...)
	inc.prev, inc.eff = inc.eff, inc.prev
	if len(inc.keys) > 4*len(cands)+1024 {
		clear(inc.keys)
		for _, c := range cands {
			inc.keys[c.Pattern] = c.Pattern.String()
		}
	}

	return decideRanked(cfg, inc.ranked, offloaded)
}

// IncrementalTiered is the incremental counterpart of DecideTiered: one
// Incremental per rung (TCAM, and one per host NIC), same semantics, and
// identical output with Band == 0. Not safe for concurrent use.
type IncrementalTiered struct {
	// Band is applied to every per-rung engine (see Incremental.Band).
	Band float64

	tcam  *Incremental
	hosts map[int]*Incremental
}

// NewIncrementalTiered returns an empty N-level engine.
func NewIncrementalTiered(band float64) *IncrementalTiered {
	return &IncrementalTiered{
		Band:  band,
		tcam:  NewIncremental(band),
		hosts: make(map[int]*Incremental),
	}
}

// Reset drops all carried ranking state across every rung.
func (it *IncrementalTiered) Reset() {
	it.tcam.Reset()
	clear(it.hosts)
}

// Decide mirrors DecideTiered: TCAM first (incremental), then one
// incremental per-host NIC decision over the candidates the TCAM did not
// take, with the same per-tenant quota pass.
func (it *IncrementalTiered) Decide(cfg TieredConfig, cands []Candidate, offloaded map[rules.Pattern]bool,
	nics map[int]NICState, hostOf func(rules.Pattern) (int, bool)) TieredDecision {

	td := TieredDecision{TCAM: it.tcam.Decide(cfg.TCAM, cands, offloaded)}
	if len(nics) == 0 {
		return td
	}
	td.NIC = make(map[int]Decision, len(nics))

	inTCAM := make(map[rules.Pattern]bool, len(td.TCAM.Offload))
	for _, p := range td.TCAM.Offload {
		inTCAM[p] = true
	}

	perHost := make(map[int][]Candidate)
	for _, c := range cands {
		if inTCAM[c.Pattern] {
			continue
		}
		if h, ok := hostOf(c.Pattern); ok {
			perHost[h] = append(perHost[h], c)
		}
	}

	servers := make([]int, 0, len(nics))
	for s := range nics {
		servers = append(servers, s)
	}
	sort.Ints(servers)
	for _, s := range servers {
		st := nics[s]
		eng := it.hosts[s]
		if eng == nil {
			eng = NewIncremental(it.Band)
			it.hosts[s] = eng
		}
		d := eng.Decide(Config{
			Budget:          st.Budget,
			MinScore:        cfg.NICMinScore,
			HysteresisRatio: cfg.NICHysteresisRatio,
		}, perHost[s], st.Placed)
		td.NIC[s] = applyQuota(d, cfg.NICTenantQuota, st.Placed)
	}
	return td
}
