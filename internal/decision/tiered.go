// tiered.go generalizes the 2-level Decision Engine (software/TCAM) to an
// N-level placement ladder: flows graduate vswitch → SmartNIC → TCAM by
// score and demote under capacity pressure. The ToR TCAM remains the top
// tier and is decided first, by the *unchanged* 2-level Decide — with NIC
// capacity 0 the tiered engine is therefore byte-identical to the 2-level
// engine (the seed-equivalence guard in tiered_test.go pins this). The
// SmartNIC tier then runs one per-host Decide over the candidates the
// TCAM did not take, against that host's NIC budget, incumbents and
// per-tenant quota.
package decision

import (
	"sort"

	"repro/internal/packet"
	"repro/internal/rules"
)

// Tier identifies one rung of the placement ladder, ordered bottom-up.
type Tier uint8

// Placement tiers.
const (
	// TierSoftware: the vswitch forwards the flow (the universal
	// fallback; never needs installing).
	TierSoftware Tier = iota
	// TierNIC: a per-host SmartNIC rule forwards the flow's egress.
	TierNIC
	// TierTCAM: the ToR TCAM carries the flow (FasTrak's express lane).
	TierTCAM
)

func (t Tier) String() string {
	switch t {
	case TierNIC:
		return "nic"
	case TierTCAM:
		return "tcam"
	default:
		return "software"
	}
}

// NICState is one host's SmartNIC as placement input.
type NICState struct {
	// Budget is the rule entries available to placement: free entries
	// plus entries currently held by placed patterns (same convention as
	// the TCAM budget).
	Budget int
	// Placed is the pattern set currently on this NIC (the tier's
	// incumbents for hysteresis).
	Placed map[rules.Pattern]bool
}

// TieredConfig parameterizes the N-level engine.
type TieredConfig struct {
	// TCAM is the top tier's config, passed verbatim to the 2-level
	// Decide.
	TCAM Config
	// NICMinScore filters NIC-tier noise; a flow not worth a NIC rule
	// stays in software. Zero admits everything active.
	NICMinScore float64
	// NICHysteresisRatio keeps a NIC incumbent unless a challenger beats
	// it by this factor (1.0 disables; values <1 are treated as 1).
	NICHysteresisRatio float64
	// NICTenantQuota caps NIC rules per tenant per host (<=0: no quota).
	// The quota keeps the highest-scoring rules per tenant; surplus
	// incumbents are demoted.
	NICTenantQuota int
}

// TieredDecision is one control interval's N-level outcome.
type TieredDecision struct {
	// TCAM is the top tier's decision, byte-identical to 2-level Decide.
	TCAM Decision
	// NIC maps server ID to that host's NIC-tier decision: Offload is
	// the full desired rule set (keep + new), Demote the removals.
	NIC map[int]Decision
}

// DecideTiered runs the ladder. offloaded is the current TCAM set; nics
// holds each host's NIC state; hostOf resolves the host that sources a
// pattern's traffic (a pattern with no resolvable host is not
// NIC-placeable — NIC rules only help on the host that transmits the
// flow). All-or-nothing groups apply to the TCAM tier only.
func DecideTiered(cfg TieredConfig, cands []Candidate, offloaded map[rules.Pattern]bool,
	nics map[int]NICState, hostOf func(rules.Pattern) (int, bool)) TieredDecision {

	td := TieredDecision{TCAM: Decide(cfg.TCAM, cands, offloaded)}
	if len(nics) == 0 {
		return td
	}
	td.NIC = make(map[int]Decision, len(nics))

	inTCAM := make(map[rules.Pattern]bool, len(td.TCAM.Offload))
	for _, p := range td.TCAM.Offload {
		inTCAM[p] = true
	}

	// Partition the remaining candidates by sourcing host.
	perHost := make(map[int][]Candidate)
	for _, c := range cands {
		if inTCAM[c.Pattern] {
			continue
		}
		if h, ok := hostOf(c.Pattern); ok {
			perHost[h] = append(perHost[h], c)
		}
	}

	servers := make([]int, 0, len(nics))
	for s := range nics {
		servers = append(servers, s)
	}
	sort.Ints(servers)
	for _, s := range servers {
		st := nics[s]
		d := Decide(Config{
			Budget:          st.Budget,
			MinScore:        cfg.NICMinScore,
			HysteresisRatio: cfg.NICHysteresisRatio,
		}, perHost[s], st.Placed)
		td.NIC[s] = applyQuota(d, cfg.NICTenantQuota, st.Placed)
	}
	return td
}

// applyQuota enforces the per-tenant NIC rule quota on a host decision.
// Offload is in rank order, so the quota keeps each tenant's best rules;
// placed patterns squeezed out join the demote list.
func applyQuota(d Decision, quota int, placed map[rules.Pattern]bool) Decision {
	if quota <= 0 {
		return d
	}
	counts := make(map[packet.TenantID]int)
	keep := d.Offload[:0]
	var squeezed []rules.Pattern
	for _, p := range d.Offload {
		if !p.AnyTenant && counts[p.Tenant] >= quota {
			squeezed = append(squeezed, p)
			continue
		}
		if !p.AnyTenant {
			counts[p.Tenant]++
		}
		keep = append(keep, p)
	}
	d.Offload = keep
	for _, p := range squeezed {
		if placed[p] {
			d.Demote = append(d.Demote, p)
		}
	}
	sort.Slice(d.Demote, func(i, j int) bool { return d.Demote[i].String() < d.Demote[j].String() })
	return d
}
