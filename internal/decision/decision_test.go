package decision

import (
	"testing"
	"testing/quick"

	"repro/internal/openflow"
	"repro/internal/packet"
	"repro/internal/rules"
)

func pat(port uint16) rules.Pattern {
	return rules.AggregatePattern(packet.AggregateKey{
		VMIP: packet.MustParseIP("10.0.0.2"), Port: port, Tenant: 3, Dir: packet.Ingress,
	})
}

func cand(port uint16, epochs uint32, pps float64) Candidate {
	return Candidate{Pattern: pat(port), ActiveEpochs: epochs, MedianPPS: pps}
}

func TestScoreFormula(t *testing.T) {
	c := cand(1, 7, 5000)
	if got := c.Score(); got != 7*5000 {
		t.Errorf("S = %v, want n×m_pps = 35000", got)
	}
	c.Priority = 2
	if got := c.Score(); got != 7*5000*2 {
		t.Errorf("S with priority = %v, want 70000", got)
	}
}

func TestDecideSelectsHighestScores(t *testing.T) {
	// The Table 4 scenario: memcached at 5618 pps vs scp at 135 pps,
	// budget for one.
	cands := []Candidate{
		cand(22, 8, 135),     // scp
		cand(11211, 8, 5618), // memcached
	}
	d := Decide(Config{Budget: 1}, cands, nil)
	if len(d.Offload) != 1 {
		t.Fatalf("offloaded %d", len(d.Offload))
	}
	if d.Offload[0] != pat(11211) {
		t.Errorf("offloaded %v, want memcached", d.Offload[0])
	}
}

func TestDecideRespectsBudget(t *testing.T) {
	var cands []Candidate
	for i := uint16(0); i < 50; i++ {
		cands = append(cands, cand(1000+i, 4, float64(100+i)))
	}
	d := Decide(Config{Budget: 10}, cands, nil)
	if len(d.Offload) != 10 {
		t.Errorf("offloaded %d, want 10", len(d.Offload))
	}
	// The selected must be the ten highest-pps candidates.
	for _, p := range d.Offload {
		if p.DstPort < 1040 {
			t.Errorf("low-score candidate %v selected", p)
		}
	}
}

func TestDecideDemotesDisplaced(t *testing.T) {
	offloaded := map[rules.Pattern]bool{pat(1): true}
	cands := []Candidate{
		cand(1, 2, 10),    // formerly hot, now cold
		cand(2, 8, 90000), // new hot flow
	}
	d := Decide(Config{Budget: 1}, cands, offloaded)
	if len(d.Offload) != 1 || d.Offload[0] != pat(2) {
		t.Fatalf("offload = %v", d.Offload)
	}
	if len(d.Demote) != 1 || d.Demote[0] != pat(1) {
		t.Fatalf("demote = %v", d.Demote)
	}
}

func TestDecideKeepsIncumbentUnderHysteresis(t *testing.T) {
	offloaded := map[rules.Pattern]bool{pat(1): true}
	cands := []Candidate{
		cand(1, 4, 1000), // incumbent
		cand(2, 4, 1100), // challenger only 10% better
	}
	d := Decide(Config{Budget: 1, HysteresisRatio: 1.5}, cands, offloaded)
	if len(d.Offload) != 1 || d.Offload[0] != pat(1) {
		t.Errorf("hysteresis lost: offload = %v", d.Offload)
	}
	// A challenger beating the margin wins.
	cands[1].MedianPPS = 2000
	d = Decide(Config{Budget: 1, HysteresisRatio: 1.5}, cands, offloaded)
	if len(d.Offload) != 1 || d.Offload[0] != pat(2) {
		t.Errorf("strong challenger lost: offload = %v", d.Offload)
	}
}

func TestDecideFiltersInactive(t *testing.T) {
	cands := []Candidate{
		cand(1, 0, 5000), // zero active epochs
		cand(2, 4, 0),    // zero pps
	}
	d := Decide(Config{Budget: 10}, cands, nil)
	if len(d.Offload) != 0 {
		t.Errorf("inactive candidates offloaded: %v", d.Offload)
	}
}

func TestDecideMinScore(t *testing.T) {
	cands := []Candidate{cand(1, 1, 10)} // S = 10
	d := Decide(Config{Budget: 10, MinScore: 100}, cands, nil)
	if len(d.Offload) != 0 {
		t.Error("sub-threshold candidate offloaded")
	}
}

func TestDecideDeterministic(t *testing.T) {
	cands := []Candidate{cand(3, 4, 100), cand(1, 4, 100), cand(2, 4, 100)}
	a := Decide(Config{Budget: 2}, cands, nil)
	b := Decide(Config{Budget: 2}, []Candidate{cands[2], cands[0], cands[1]}, nil)
	if len(a.Offload) != len(b.Offload) {
		t.Fatal("length differs")
	}
	for i := range a.Offload {
		if a.Offload[i] != b.Offload[i] {
			t.Error("tie-break order depends on input order")
		}
	}
}

func TestCandidatesFromReportsMergesHardware(t *testing.T) {
	rep := openflow.DemandReport{Entries: []openflow.DemandEntry{
		{Pattern: pat(1), MedianPPS: 500, MedianBPS: 1e6, ActiveEpochs: 3},
	}}
	hw := map[rules.Pattern]float64{
		pat(1): 9000, // flow now lives in hardware: vswitch undercounts
		pat(2): 700,  // hardware-only flow
	}
	cands := CandidatesFromReports([]openflow.DemandReport{rep}, hw, nil)
	if len(cands) != 2 {
		t.Fatalf("candidates = %d", len(cands))
	}
	byPat := map[rules.Pattern]Candidate{}
	for _, c := range cands {
		byPat[c.Pattern] = c
	}
	if byPat[pat(1)].MedianPPS != 9000 {
		t.Errorf("hardware rate did not win: %v", byPat[pat(1)].MedianPPS)
	}
	if byPat[pat(2)].ActiveEpochs == 0 {
		t.Error("hardware-only flow has zero epochs")
	}
}

func TestCandidatesPriority(t *testing.T) {
	rep := openflow.DemandReport{Entries: []openflow.DemandEntry{
		{Pattern: pat(1), MedianPPS: 100, ActiveEpochs: 1},
	}}
	cands := CandidatesFromReports([]openflow.DemandReport{rep}, nil, func(t packet.TenantID) float64 {
		return 3.0
	})
	if cands[0].Priority != 3.0 {
		t.Errorf("priority = %v", cands[0].Priority)
	}
}

func TestLimiterSplits(t *testing.T) {
	l := NewLimiter(1e9, 1e9)
	split := l.Adjust(
		demand(100e6), demand(700e6), // egress: hw dominant
		demand(400e6), demand(400e6), // ingress: even
	)
	if split.EgressHardBps <= split.EgressSoftBps {
		t.Errorf("egress split ignores demand: soft=%v hard=%v", split.EgressSoftBps, split.EgressHardBps)
	}
	if split.IngressSoftBps <= 0 || split.IngressHardBps <= 0 {
		t.Error("ingress limits not positive")
	}
}

func demand(bps float64) (d fpsDemand) { return fpsDemand{RateBps: bps} }

// fpsDemand aliases fps.Demand to keep the test focused.
type fpsDemand = struct {
	RateBps  float64
	Flows    int
	MaxedOut bool
	Stale    bool
}

// Property: Decide never exceeds budget, never offloads and demotes the
// same pattern, and demotes only previously offloaded patterns.
func TestDecideInvariants(t *testing.T) {
	f := func(ports []uint16, epochs []uint8, budget uint8) bool {
		var cands []Candidate
		offloaded := map[rules.Pattern]bool{}
		for i, p := range ports {
			e := uint32(1)
			if i < len(epochs) {
				e = uint32(epochs[i])
			}
			cands = append(cands, cand(p, e, float64(100+i)))
			if i%3 == 0 {
				offloaded[pat(p)] = true
			}
		}
		d := Decide(Config{Budget: int(budget % 16)}, cands, offloaded)
		if len(d.Offload) > int(budget%16) {
			return false
		}
		off := map[rules.Pattern]bool{}
		for _, p := range d.Offload {
			if off[p] {
				return false // duplicate
			}
			off[p] = true
		}
		for _, p := range d.Demote {
			if off[p] || !offloaded[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecideAtomicGroupAllOrNothing(t *testing.T) {
	group := []rules.Pattern{pat(1), pat(2)}
	cands := []Candidate{
		cand(1, 8, 9000), // group member, very hot
		cand(2, 8, 8000), // group member, very hot
		cand(3, 8, 100),  // loner, cool
	}
	// Budget 1: the group cannot fit → neither member offloads; the
	// loner takes the slot despite its lower score.
	d := Decide(Config{Budget: 1, Groups: [][]rules.Pattern{group}}, cands, nil)
	if len(d.Offload) != 1 || d.Offload[0] != pat(3) {
		t.Fatalf("budget 1 offload = %v, want only the loner", d.Offload)
	}
	// Budget 2: the group fits as a unit and outranks the loner.
	d = Decide(Config{Budget: 2, Groups: [][]rules.Pattern{group}}, cands, nil)
	if len(d.Offload) != 2 {
		t.Fatalf("budget 2 offload = %v, want the full group", d.Offload)
	}
	got := map[rules.Pattern]bool{d.Offload[0]: true, d.Offload[1]: true}
	if !got[pat(1)] || !got[pat(2)] {
		t.Errorf("group split: %v", d.Offload)
	}
}

func TestDecideGroupDemotedTogether(t *testing.T) {
	group := []rules.Pattern{pat(1), pat(2)}
	offloaded := map[rules.Pattern]bool{pat(1): true, pat(2): true}
	cands := []Candidate{
		cand(1, 8, 5000),
		cand(2, 0, 0),      // this member went cold: poisons the group
		cand(3, 8, 300000), // hot challenger
	}
	d := Decide(Config{Budget: 2, Groups: [][]rules.Pattern{group}}, cands, offloaded)
	// The whole group is demoted, not just the cold member.
	if len(d.Demote) != 2 {
		t.Fatalf("demote = %v, want both group members", d.Demote)
	}
	for _, p := range d.Offload {
		if p == pat(1) || p == pat(2) {
			t.Errorf("group member %v stayed offloaded", p)
		}
	}
}

// A group that no longer fits wholly within the budget — because a hotter
// loner takes part of it — must be demoted atomically, never retained in
// part.
func TestDecideGroupPartialDisplacementDemotesAtomically(t *testing.T) {
	group := []rules.Pattern{pat(1), pat(2)}
	offloaded := map[rules.Pattern]bool{pat(1): true, pat(2): true}
	cands := []Candidate{
		cand(1, 8, 1000),
		cand(2, 8, 1000),
		cand(3, 8, 900000), // outranks the whole group on its own
	}
	d := Decide(Config{Budget: 2, Groups: [][]rules.Pattern{group}}, cands, offloaded)
	// The loner wins a slot; the group needs two contiguous slots and only
	// one remains, so both members leave hardware together.
	if len(d.Offload) != 1 || d.Offload[0] != pat(3) {
		t.Fatalf("offload = %v, want only the loner", d.Offload)
	}
	if len(d.Demote) != 2 {
		t.Fatalf("demote = %v, want both group members", d.Demote)
	}
}

// Hysteresis applies to groups through the sum of member scores: an
// incumbent group holds its slots against a challenger inside the margin
// and yields to one beyond it.
func TestDecideGroupHysteresis(t *testing.T) {
	group := []rules.Pattern{pat(1), pat(2)}
	offloaded := map[rules.Pattern]bool{pat(1): true, pat(2): true}
	cands := []Candidate{
		cand(1, 4, 1000),
		cand(2, 4, 1000),
		cand(3, 4, 2200), // beats the raw group sum (2000) but not ×1.5
	}
	cfg := Config{Budget: 2, HysteresisRatio: 1.5, Groups: [][]rules.Pattern{group}}
	d := Decide(cfg, cands, offloaded)
	if len(d.Demote) != 0 {
		t.Errorf("in-margin challenger displaced the group: demote = %v", d.Demote)
	}
	// Beyond the margin the group yields — atomically.
	cands[2].MedianPPS = 4000
	d = Decide(cfg, cands, offloaded)
	if len(d.Offload) != 1 || d.Offload[0] != pat(3) {
		t.Errorf("strong challenger lost: offload = %v", d.Offload)
	}
	if len(d.Demote) != 2 {
		t.Errorf("demote = %v, want both group members", d.Demote)
	}
}

// HysteresisRatio below 1 would turn the incumbent bonus into a penalty —
// a slightly weaker challenger could evict a hotter incumbent every
// interval, the exact thrashing hysteresis exists to prevent. The config
// must normalize it to 1 (no hysteresis, never anti-hysteresis).
func TestDecideHysteresisRatioBelowOneBehavesAsOne(t *testing.T) {
	offloaded := map[rules.Pattern]bool{pat(1): true}
	cands := []Candidate{
		cand(1, 4, 1000), // incumbent, hotter
		cand(2, 4, 900),  // challenger, cooler
	}
	d := Decide(Config{Budget: 1, HysteresisRatio: 0.25}, cands, offloaded)
	if len(d.Offload) != 1 || d.Offload[0] != pat(1) {
		t.Errorf("ratio<1 penalized the incumbent: offload = %v", d.Offload)
	}
	if len(d.Demote) != 0 {
		t.Errorf("hotter incumbent demoted: %v", d.Demote)
	}
}
