// Package decision implements FasTrak's Decision Engine (§4.3.2): rank
// flows/aggregates by the score S = n × m_pps × c (frequency × median pps
// × tenant priority), select the most-frequently-used high-pps set that
// fits the ToR's hardware rule budget, demote offloaded flows that no
// longer qualify, and split each VM's purchased rate limit across its two
// interfaces with FPS.
package decision

import (
	"sort"

	"repro/internal/fps"
	"repro/internal/openflow"
	"repro/internal/packet"
	"repro/internal/rules"
)

// Candidate is one flow/aggregate the DE considers.
type Candidate struct {
	Pattern rules.Pattern
	// ActiveEpochs is n, MedianPPS is m_pps (§4.3.2).
	ActiveEpochs uint32
	MedianPPS    float64
	MedianBPS    float64
	// Priority is c, the tenant preference multiplier (default 1).
	Priority float64
}

// Score computes S = n × m_pps × c.
func (c Candidate) Score() float64 {
	p := c.Priority
	if p <= 0 {
		p = 1
	}
	return float64(c.ActiveEpochs) * c.MedianPPS * p
}

// Config parameterizes the DE.
type Config struct {
	// Budget is the number of hardware rule entries available for
	// offloaded flows (the TOR ME's free fast-path memory reading plus
	// entries currently held by offloaded flows, §4.3.1).
	Budget int
	// MinScore filters noise: candidates scoring below it are never
	// offloaded. Zero admits everything active.
	MinScore float64
	// HysteresisRatio keeps an already-offloaded flow in hardware
	// unless a challenger beats it by this factor, avoiding rule
	// thrashing between near-equal flows. 1.0 disables hysteresis.
	HysteresisRatio float64
	// Groups lists all-or-nothing pattern sets (§4.3.2: "Certain
	// all-to-all or partition-aggregate applications may require that
	// all corresponding flows be handled in hardware, or none at all").
	// A group is offloaded only when every member fits the budget
	// together; displacing any member demotes the whole group.
	Groups [][]rules.Pattern
}

// Decision is one control interval's outcome.
type Decision struct {
	// Offload lists patterns to move (or keep) in hardware.
	Offload []rules.Pattern
	// Demote lists currently offloaded patterns to move back to
	// software.
	Demote []rules.Pattern
}

// unit is one schedulable offload decision: a lone candidate or an
// all-or-nothing group.
type unit struct {
	patterns []rules.Pattern
	score    float64
	eligible bool
}

// normalize clamps the config fields every entry point must agree on.
func (cfg Config) normalize() Config {
	if cfg.Budget < 0 {
		cfg.Budget = 0
	}
	if cfg.HysteresisRatio < 1 {
		cfg.HysteresisRatio = 1
	}
	return cfg
}

// Decide selects the hardware set. offloaded is the currently-offloaded
// pattern set.
func Decide(cfg Config, cands []Candidate, offloaded map[rules.Pattern]bool) Decision {
	cfg = cfg.normalize()
	// Deterministic ranking: score desc, pattern string as tie-break.
	ranked := append([]Candidate(nil), cands...)
	sort.Slice(ranked, func(i, j int) bool {
		si, sj := effectiveScore(cfg, ranked[i], offloaded), effectiveScore(cfg, ranked[j], offloaded)
		if si != sj {
			return si > sj
		}
		return ranked[i].Pattern.String() < ranked[j].Pattern.String()
	})
	return decideRanked(cfg, ranked, offloaded)
}

// decideRanked is the selection half of Decide: it takes candidates
// already in canonical rank order (effective score descending, pattern
// string ascending within ties) and produces the Decision. The Incremental
// engine maintains that order across cycles and calls this directly, so
// exact and incremental modes share one selection semantics by
// construction. cfg must already be normalized.
func decideRanked(cfg Config, ranked []Candidate, offloaded map[rules.Pattern]bool) Decision {
	// No groups: every unit is a single candidate, the stable unit sort is
	// the identity on an already-ranked input, and a full unit never fits
	// once the budget is reached — so the fold below degenerates to a
	// greedy prefix fill. Do that directly; it is the common case and
	// keeps the incremental engine's cycle O(n).
	if len(cfg.Groups) == 0 {
		var d Decision
		selected := make(map[rules.Pattern]bool, cfg.Budget)
		for _, c := range ranked {
			if len(d.Offload) >= cfg.Budget {
				break
			}
			if !(c.Score() > cfg.MinScore && c.ActiveEpochs > 0 && c.MedianPPS > 0) {
				continue
			}
			if selected[c.Pattern] {
				continue
			}
			selected[c.Pattern] = true
			d.Offload = append(d.Offload, c.Pattern)
		}
		d.Demote = demoteList(offloaded, selected)
		return d
	}

	// Fold candidates into units: group members merge into one
	// all-or-nothing unit whose score is the sum of its members'.
	groupOf := make(map[rules.Pattern]int)
	for gi, g := range cfg.Groups {
		for _, p := range g {
			groupOf[p] = gi
		}
	}
	groupUnits := make(map[int]*unit)
	var units []*unit
	for _, c := range ranked {
		ok := c.Score() > cfg.MinScore && c.ActiveEpochs > 0 && c.MedianPPS > 0
		if gi, grouped := groupOf[c.Pattern]; grouped {
			u, exists := groupUnits[gi]
			if !exists {
				u = &unit{eligible: true}
				groupUnits[gi] = u
				units = append(units, u)
			}
			u.patterns = append(u.patterns, c.Pattern)
			u.score += effectiveScore(cfg, c, offloaded)
			// One ineligible member poisons the whole group: all
			// or nothing.
			u.eligible = u.eligible && ok
			continue
		}
		units = append(units, &unit{
			patterns: []rules.Pattern{c.Pattern},
			score:    effectiveScore(cfg, c, offloaded),
			eligible: ok,
		})
	}
	sort.SliceStable(units, func(i, j int) bool { return units[i].score > units[j].score })

	var d Decision
	selected := make(map[rules.Pattern]bool)
	for _, u := range units {
		if !u.eligible {
			continue
		}
		if len(d.Offload)+len(u.patterns) > cfg.Budget {
			continue // a whole group must fit together
		}
		dup := false
		for _, p := range u.patterns {
			if selected[p] {
				dup = true
			}
		}
		if dup {
			continue
		}
		for _, p := range u.patterns {
			selected[p] = true
			d.Offload = append(d.Offload, p)
		}
	}
	d.Demote = demoteList(offloaded, selected)
	return d
}

// demoteList is the demotion half shared by both selection paths:
// anything offloaded but not selected is demoted ("already offloaded
// flows that have lower scores are demoted back").
func demoteList(offloaded, selected map[rules.Pattern]bool) []rules.Pattern {
	var demote []rules.Pattern
	for p := range offloaded {
		if !selected[p] {
			demote = append(demote, p)
		}
	}
	sort.Slice(demote, func(i, j int) bool { return demote[i].String() < demote[j].String() })
	return demote
}

// effectiveScore applies hysteresis: incumbents get their score scaled up
// so challengers must beat them by the configured ratio.
func effectiveScore(cfg Config, c Candidate, offloaded map[rules.Pattern]bool) float64 {
	s := c.Score()
	if offloaded[c.Pattern] {
		return s * cfg.HysteresisRatio
	}
	return s
}

// CandidatesFromReports merges demand reports (from local MEs) and
// hardware statistics (from the TOR ME) into the DE's candidate list.
// Flows active in hardware keep their measured rates even though the
// vswitch no longer sees them ("Flows active both in vswitch and hardware
// are scored in this fashion").
func CandidatesFromReports(reports []openflow.DemandReport, hwPPS map[rules.Pattern]float64, priorityOf func(packet.TenantID) float64) []Candidate {
	merged := make(map[rules.Pattern]Candidate)
	for _, rep := range reports {
		for _, e := range rep.Entries {
			c := merged[e.Pattern]
			c.Pattern = e.Pattern
			if e.ActiveEpochs > c.ActiveEpochs {
				c.ActiveEpochs = e.ActiveEpochs
			}
			if e.MedianPPS > c.MedianPPS {
				c.MedianPPS = e.MedianPPS
				c.MedianBPS = e.MedianBPS
			}
			merged[e.Pattern] = c
		}
	}
	for pat, pps := range hwPPS {
		c, ok := merged[pat]
		if !ok {
			c.Pattern = pat
		}
		if pps > c.MedianPPS {
			c.MedianPPS = pps
		}
		if c.ActiveEpochs == 0 {
			c.ActiveEpochs = 1
		}
		merged[pat] = c
	}
	out := make([]Candidate, 0, len(merged))
	for _, c := range merged {
		if priorityOf != nil {
			c.Priority = priorityOf(c.Pattern.Tenant)
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pattern.String() < out[j].Pattern.String() })
	return out
}

// SplitLimits runs FPS for one VM direction pair, producing the installed
// limits Rs/Rh per direction (§4.3.2). splitters persist across intervals
// for smoothing; callers keep one per (VM, direction).
type Limiter struct {
	Egress  *fps.Splitter
	Ingress *fps.Splitter
}

// NewLimiter builds FPS state for a VM with the given purchased aggregate
// rates.
func NewLimiter(egressBps, ingressBps float64) *Limiter {
	return &Limiter{
		Egress:  fps.NewSplitter(egressBps),
		Ingress: fps.NewSplitter(ingressBps),
	}
}

// Adjust computes the four installed limits from per-path demand.
func (l *Limiter) Adjust(egSoft, egHard, inSoft, inHard fps.Demand) openflow.RateSplit {
	eg := l.Egress.Adjust(egSoft, egHard)
	in := l.Ingress.Adjust(inSoft, inHard)
	return openflow.RateSplit{
		EgressSoftBps:  eg.SoftwareWithOverflow,
		EgressHardBps:  eg.HardwareWithOverflow,
		IngressSoftBps: in.SoftwareWithOverflow,
		IngressHardBps: in.HardwareWithOverflow,
	}
}
