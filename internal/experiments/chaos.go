package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/host"
	"repro/internal/measure"
	"repro/internal/model"
	"repro/internal/packet"
	"repro/internal/rules"
	"repro/internal/vswitch"
)

// The chaos experiment exercises FasTrak's recovery machinery: a steady
// two-tenant workload runs while internal/faults injects link flaps,
// packet loss, control-channel failures, TCAM install rejections and a
// TOR-controller crash/restart — and three invariants are checked:
//
//  1. No blackholes. Every lost packet is attributable to a physical
//     fault (link down/loss, queue overflow) or to rate enforcement;
//     the rule-divergence drop counters (hardware ACL misses, missing
//     VRF mappings, unrouted packets, VF steering misses, software
//     denials) stay at zero, and the conservation equation
//     sent = delivered + accounted drops closes exactly after a drain.
//  2. Tenant rate caps hold throughout recovery: the capped tenant's
//     delivered rate never exceeds its purchased aggregate in any
//     sampling window.
//  3. After the last fault clears, the hardware rule tables exactly
//     equal the decision engine's desired offload set.
type ChaosConfig struct {
	// Seed drives the cluster/engine RNG; FaultSeed the injector's.
	Seed      int64
	FaultSeed int64
	// Horizon is the active traffic phase (default 8s); all faults
	// clear comfortably before it ends.
	Horizon time.Duration
	// Drain runs fault-free with senders stopped so in-flight packets
	// settle before conservation accounting (default 2s).
	Drain time.Duration
	// Plan overrides DefaultChaosPlan.
	Plan *faults.Plan
	// SnapshotEvery paces the event-log snapshots (default 250ms).
	SnapshotEvery time.Duration
}

// ChaosResult carries the measured invariants and the deterministic
// event log.
type ChaosResult struct {
	// Conservation accounting (after drain).
	Sent           uint64
	Delivered      uint64
	LinkQueueDrops uint64
	LinkDownDrops  uint64
	LinkLossDrops  uint64
	ShapeDrops     uint64 // vswitch htb rate enforcement
	// UpcallQueueDrops and ClampDrops are the vswitch slow path's
	// overload-protection causes (bounded upcall queues, miss-rate clamp);
	// zero in this scenario's plans but part of conservation regardless.
	UpcallQueueDrops uint64
	ClampDrops       uint64
	RateDrops        uint64 // ToR VF rate enforcement
	// BlackholeDrops sums every rule-divergence counter: hardware ACL
	// misses, missing VRF mappings, ToR/vswitch unrouted, VF steering
	// misses and software denials. Must be zero.
	BlackholeDrops uint64
	// Unaccounted is Sent − Delivered − all accounted drops. Zero when
	// conservation closes.
	Unaccounted int64

	// Rate-cap invariant.
	CapLimitBps   float64
	PeakCappedBps float64
	CapViolations int

	// End-state reconciliation invariant (checked just before Horizon,
	// while traffic still flows and after every fault has cleared).
	HardwareMatchesDesired bool
	Desired                []string
	Hardware               []string

	// Recovery-machinery activity (sanity: the faults actually bit).
	InstallRejects uint64
	Retries        uint64
	GiveUps        uint64
	Repairs        uint64
	Orphans        uint64
	Crashes        uint64
	ChannelDrops   uint64

	// FaultLog is the injector's chronological record; Log is the full
	// deterministic event log (faults + periodic state snapshots) used
	// by the determinism harness.
	FaultLog []string
	Log      []string
}

// DefaultChaosPlan is the seeded scenario of the acceptance criteria:
// an access-link flap, a TCAM install-rejection window, control-channel
// loss/severing/delay, and a TOR-controller crash/restart mid-offload.
// All faults clear by 3h/4.
func DefaultChaosPlan(h time.Duration) faults.Plan {
	return faults.Plan{Events: []faults.Event{
		// Window opens before the first decision tick so the very first
		// install attempts are rejected and must retry/give up/re-propose.
		{At: h / 32, Kind: faults.TCAMReject, Target: "tor0", Duration: h / 4, Prob: 1.0},
		{At: h / 4, Kind: faults.LinkFlap, Target: "uplink1", Duration: h / 8, Period: h / 64},
		{At: 3 * h / 8, Kind: faults.PacketLoss, Target: "downlink1", Duration: h / 8, Prob: 0.03},
		// A full severing of server 0's control connection: every demand
		// report and RuleSync in the window is dropped and must be
		// absorbed by the periodic refresh after it lifts.
		{At: h / 2, Kind: faults.ChannelDown, Target: "local0-tor", Duration: h / 8},
		{At: 9 * h / 16, Kind: faults.ChannelDown, Target: "torctl0-switch", Duration: h / 32},
		{At: 5 * h / 8, Kind: faults.ControllerCrash, Target: "torctl0", Duration: h / 16},
		{At: 11 * h / 16, Kind: faults.ChannelDelay, Target: "torctl0-switch", Duration: h / 32, Delay: 2 * time.Millisecond},
	}}
}

// RunChaos builds the rig, applies the fault plan, runs the workload and
// measures the invariants.
func RunChaos(cfg ChaosConfig) (ChaosResult, error) {
	if cfg.Horizon <= 0 {
		cfg.Horizon = 8 * time.Second
	}
	if cfg.Drain <= 0 {
		cfg.Drain = 2 * time.Second
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 250 * time.Millisecond
	}
	plan := DefaultChaosPlan(cfg.Horizon)
	if cfg.Plan != nil {
		plan = *cfg.Plan
	}

	c := cluster.New(cluster.Config{
		Servers:      3,
		VSwitchCfg:   model.VSwitchConfig{Tunneling: true},
		TCAMCapacity: 32,
		Seed:         cfg.Seed,
	})
	eng := c.Eng

	// Tenant 3 (unlimited): two clients driving an echo service.
	svcIP := packet.MustParseIP("10.3.0.10")
	cl1IP := packet.MustParseIP("10.3.0.1")
	cl2IP := packet.MustParseIP("10.3.0.2")
	svc, err := c.AddVM(0, 3, svcIP, 4, nil)
	if err != nil {
		return ChaosResult{}, err
	}
	cl1, err := c.AddVM(1, 3, cl1IP, 4, nil)
	if err != nil {
		return ChaosResult{}, err
	}
	cl2, err := c.AddVM(2, 3, cl2IP, 4, nil)
	if err != nil {
		return ChaosResult{}, err
	}
	svc.BindApp(11211, host.AppFunc(func(vm *host.VM, p *packet.Packet) {
		vm.Send(p.IP.Src, 11211, p.TCP.SrcPort, 400, host.SendOptions{Seq: p.Meta.Seq}, nil)
	}))

	// Tenant 4 (rate-capped): a one-way stream offered well above the
	// purchased aggregate; enforcement must hold through every fault.
	capSrcIP := packet.MustParseIP("10.4.0.1")
	capDstIP := packet.MustParseIP("10.4.0.10")
	capSrc, err := c.AddVM(1, 4, capSrcIP, 4, nil)
	if err != nil {
		return ChaosResult{}, err
	}
	capDst, err := c.AddVM(0, 4, capDstIP, 4, nil)
	if err != nil {
		return ChaosResult{}, err
	}

	mcfg := core.DefaultConfig()
	mcfg.Measure = measure.Config{
		SampleGap:         50 * time.Millisecond,
		Epoch:             250 * time.Millisecond,
		EpochsPerInterval: 2,
		HistoryIntervals:  4,
		Aggregate:         true,
	}
	mcfg.MinScore = 100
	mgr := core.Attach(c, mcfg)

	const capLimitBps = 10e6
	mgr.SetVMLimit(4, capSrcIP, capLimitBps, 1e9)
	mgr.SetVMLimit(4, capDstIP, 1e9, 1e9)

	// Fault surfaces.
	inj := faults.NewInjector(eng, cfg.FaultSeed)
	c.RegisterFaults(inj)
	mgr.RegisterFaults(inj)
	if err := inj.Apply(plan); err != nil {
		return ChaosResult{}, err
	}

	// Traffic: echo requests at a few kpps, capped stream at ~16 Mbps
	// offered against the 10 Mbps cap. Each sender starts at a random
	// phase within its period (drawn from the engine RNG) so runs are
	// seed-sensitive, as the determinism harness requires.
	drive := func(vm *host.VM, dst packet.IP, srcPort, dstPort uint16, rate float64, size int) {
		period := time.Duration(float64(time.Second) / rate)
		offset := time.Duration(eng.Rand().Int63n(int64(period)))
		eng.After(offset, func() {
			tk := eng.Every(period, func() {
				vm.Send(dst, srcPort, dstPort, size, host.SendOptions{}, nil)
			})
			eng.At(cfg.Horizon, func() { tk.Stop() })
		})
	}
	drive(cl1, svcIP, 40001, 11211, 2500, 200)
	drive(cl2, svcIP, 40002, 11211, 1500, 200)
	drive(capSrc, capDstIP, 41000, 9000, 2000, 1000)

	mgr.Start()

	var log []string
	logf := func(format string, args ...interface{}) {
		log = append(log, fmt.Sprintf("%12s "+format, append([]interface{}{eng.Now()}, args...)...))
	}

	// Rate-cap sampler. Enforcement happens at the sender (VIF htb) or
	// the ToR (VF limiter); queues downstream of the enforcement point
	// can briefly drain above the cap after a link recovers, which is
	// not an enforcement failure. So the invariant is token-bucket
	// shaped: cumulative delivered payload never exceeds cap×t plus a
	// burst allowance sized to in-network queueing (well under one
	// second of the overage an actual enforcement failure would leak).
	// PeakCappedBps additionally records the per-window delivered rate
	// for reporting.
	res := ChaosResult{CapLimitBps: capLimitBps}
	const window = 100 * time.Millisecond
	const burstAllowance = 512 << 10 // bytes
	var lastCapRx uint64
	eng.Every(window, func() {
		_, _, _, rxb := capDst.Counters()
		bps := float64(rxb-lastCapRx) * 8 / window.Seconds()
		lastCapRx = rxb
		if bps > res.PeakCappedBps {
			res.PeakCappedBps = bps
		}
		budget := capLimitBps/8*eng.Now().Seconds() + burstAllowance
		if float64(rxb) > budget {
			res.CapViolations++
			logf("CAP VIOLATION cum=%dB budget=%.0fB window=%.1fMbps", rxb, budget, bps/1e6)
		}
	})

	// Periodic deterministic snapshots for the determinism harness.
	eng.Every(cfg.SnapshotEvery, func() {
		var tx, rx uint64
		for _, srv := range c.Servers {
			for _, key := range sortedVMKeys(srv) {
				t, r, _, _ := srv.VMs[key].Counters()
				tx += t
				rx += r
			}
		}
		acl, rate, noVRF, unrouted, _, _ := c.TOR.Counters()
		tc := mgr.TORCtl
		logf("snap tx=%d rx=%d tcam=%d off=%d acl=%d rate=%d novrf=%d unrouted=%d inst=%d retry=%d giveup=%d repair=%d orphan=%d crash=%d",
			tx, rx, c.TOR.TCAMUsed(), len(mgr.OffloadedPatterns()),
			acl, rate, noVRF, unrouted,
			tc.Installs, tc.Retries, tc.GiveUps, tc.Repairs, tc.Orphans, tc.Crashes)
	})

	// Invariant 3 check: just before the horizon — every fault has
	// cleared, traffic still flows, the offload set is steady.
	eng.At(cfg.Horizon-10*time.Millisecond, func() {
		desired := mgr.OffloadedPatterns()
		var hw []rules.Pattern
		for _, ri := range c.TOR.Rules() {
			if ri.Priority == 100 {
				hw = append(hw, ri.Pattern)
			}
		}
		sort.Slice(hw, func(i, j int) bool { return hw[i].String() < hw[j].String() })
		res.Desired = patternStrings(desired)
		res.Hardware = patternStrings(hw)
		res.HardwareMatchesDesired = equalStrings(res.Desired, res.Hardware)
		logf("reconcile-check desired=%d hardware=%d match=%v", len(desired), len(hw), res.HardwareMatchesDesired)
	})

	eng.RunUntil(cfg.Horizon + cfg.Drain)
	mgr.Stop()

	// Conservation accounting.
	for _, srv := range c.Servers {
		for _, key := range sortedVMKeys(srv) {
			t, r, _, _ := srv.VMs[key].Counters()
			res.Sent += t
			res.Delivered += r
		}
	}
	for i := range c.Servers {
		for _, l := range []interface {
			Stats() (uint64, uint64, uint64)
			FaultDrops() (uint64, uint64)
		}{c.Uplink(i), c.Downlink(i)} {
			_, _, q := l.Stats()
			d, lo := l.FaultDrops()
			res.LinkQueueDrops += q
			res.LinkDownDrops += d
			res.LinkLossDrops += lo
		}
	}
	aclDrops, rateDrops, noVRF, torUnrouted, _, _ := c.TOR.Counters()
	res.RateDrops = rateDrops
	var denied, swUnrouted, steerMiss uint64
	for _, srv := range c.Servers {
		tel := srv.VSwitch.Counters()
		denied += tel.Denied
		swUnrouted += tel.Unrouted
		res.ShapeDrops += tel.Drops.Shape
		res.UpcallQueueDrops += tel.Drops.UpcallQueue
		res.ClampDrops += tel.Drops.Clamp
		_, _, _, _, sm := srv.NIC.Counters()
		steerMiss += sm
	}
	res.BlackholeDrops = aclDrops + noVRF + torUnrouted + denied + swUnrouted + steerMiss
	res.Unaccounted = int64(res.Sent) - int64(res.Delivered) -
		int64(res.LinkQueueDrops+res.LinkDownDrops+res.LinkLossDrops) -
		int64(res.ShapeDrops+res.UpcallQueueDrops+res.ClampDrops+res.RateDrops) -
		int64(res.BlackholeDrops)

	tc := mgr.TORCtl
	res.InstallRejects = c.TOR.InstallRejects()
	res.Retries = tc.Retries
	res.GiveUps = tc.GiveUps
	res.Repairs = tc.Repairs
	res.Orphans = tc.Orphans
	res.Crashes = tc.Crashes
	_, chDrops := controlDrops(mgr)
	res.ChannelDrops = chDrops
	res.FaultLog = inj.Log()
	res.Log = append(append([]string{}, inj.Log()...), log...)
	return res, nil
}

// controlDrops totals control-channel sends and fault drops.
func controlDrops(mgr *core.Manager) (sent, dropped uint64) {
	msgs, _, _ := mgr.ControlStats()
	swMsgs, _ := mgr.SwitchStats()
	sent = msgs + swMsgs
	for _, tr := range mgr.Transports() {
		dropped += tr.Dropped
	}
	return
}

func patternStrings(ps []rules.Pattern) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.String()
	}
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sortedVMKeys iterates a server's VMs deterministically.
func sortedVMKeys(srv *host.Server) []vswitch.VMKey {
	out := make([]vswitch.VMKey, 0, len(srv.VMs))
	for k := range srv.VMs {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Tenant != out[j].Tenant {
			return out[i].Tenant < out[j].Tenant
		}
		return out[i].IP < out[j].IP
	})
	return out
}
