package experiments

import (
	"testing"
	"time"

	"repro/internal/faults"
)

// TestFailoverInvariants is the acceptance test for the default failover
// plan (leader crash, election-plane severing across a preempt, standby
// partitions, a paused standby): leadership moves, dueling leaders are
// fenced, and all four invariants hold — at most one leader acts per
// term, no blackholes, caps hold, and the run reconverges to a single
// leader whose desired set matches hardware and the never-faulted twin.
func TestFailoverInvariants(t *testing.T) {
	res, err := RunFailover(FailoverConfig{Seed: 7, FaultSeed: 11})
	if err != nil {
		t.Fatal(err)
	}

	// Sanity: the workload ran and the machinery actually exercised.
	if res.Sent == 0 || res.Delivered == 0 {
		t.Fatalf("no traffic: sent=%d delivered=%d", res.Sent, res.Delivered)
	}
	if res.Crashes == 0 {
		t.Error("controller crash fault never bit (Crashes == 0)")
	}
	if res.Pauses == 0 {
		t.Error("controller pause fault never bit (Pauses == 0)")
	}
	if res.Elections == 0 || res.StepDowns == 0 {
		t.Errorf("leadership never moved: elections=%d stepdowns=%d",
			res.Elections, res.StepDowns)
	}
	if res.FencedInstalls == 0 {
		t.Error("no stale-term message was ever fenced; the dueling-leaders window was vacuous")
	}
	if res.LeaseRefreshes == 0 {
		t.Error("leader never refreshed leases")
	}

	// Invariant 1: at most one leader acts per term.
	if res.TermConflicts != 0 {
		t.Errorf("split brain: %d terms saw two acting replicas", res.TermConflicts)
	}

	// Invariant 2: zero blackholes, conservation closes.
	if res.BlackholeDrops != 0 {
		t.Errorf("blackholed packets: %d (rule divergence)", res.BlackholeDrops)
	}
	if res.Unaccounted != 0 {
		t.Errorf("conservation violated: %d packets unaccounted (sent=%d delivered=%d)",
			res.Unaccounted, res.Sent, res.Delivered)
	}

	// Invariant 3: rate cap holds through every failover.
	if res.CapViolations != 0 {
		t.Errorf("tenant rate cap violated in %d windows (peak %.2f Mbps vs cap %.2f Mbps)",
			res.CapViolations, res.PeakCappedBps/1e6, res.CapLimitBps/1e6)
	}

	// Invariant 4: reconvergence to a single consistent leader.
	if res.Leaders != 1 {
		t.Errorf("want exactly 1 acting leader at the check, got %d", res.Leaders)
	}
	if !res.HardwareMatchesDesired {
		t.Errorf("hardware rules diverge from desired set:\n desired:  %v\n hardware: %v",
			res.Desired, res.Hardware)
	}
	if !res.LeaseConserved {
		t.Error("hardware rules without live leases at the check")
	}
	if !res.MatchesBaseline {
		t.Errorf("faulted run did not reconverge to the never-faulted desired set:\n faulted:  %v\n baseline: %v",
			res.Desired, res.BaselineDesired)
	}
	if len(res.Desired) == 0 {
		t.Error("no flows offloaded by end of run; reconvergence check is vacuous")
	}
}

// TestFailoverDuelingLeadersFenced manufactures the split-brain case
// directly: both of replica 0's election channels are severed while it
// leads, so replica 1 claims the next term and the deposed leader —
// unreachable by heartbeat or gossip — can only learn of its deposition
// through the switch agent's stale-term fence. The fence must bite
// (FencedInstalls > 0, FencedOut > 0) and must be sufficient: no term
// ever sees two acting replicas, and the run still reconverges.
func TestFailoverDuelingLeadersFenced(t *testing.T) {
	h := 8 * time.Second
	plan := faults.Plan{Events: []faults.Event{
		{At: 2200 * time.Millisecond, Kind: faults.ChannelDown, Target: "elect0.0-1", Duration: 3 * time.Second},
		{At: 2200 * time.Millisecond, Kind: faults.ChannelDown, Target: "elect0.0-2", Duration: 3 * time.Second},
	}}
	res, err := RunFailover(FailoverConfig{Seed: 3, FaultSeed: 1, Horizon: h, Plan: &plan})
	if err != nil {
		t.Fatal(err)
	}
	if res.FencedInstalls == 0 {
		t.Error("isolated leader was never fenced by the switch agent")
	}
	if res.FencedOut == 0 {
		t.Error("no deposed leader ever received a stale-term error")
	}
	if res.TermConflicts != 0 {
		t.Errorf("split brain: %d terms saw two acting replicas", res.TermConflicts)
	}
	if res.BlackholeDrops != 0 || res.Unaccounted != 0 {
		t.Errorf("traffic lost under dueling leaders: blackholes=%d unaccounted=%d",
			res.BlackholeDrops, res.Unaccounted)
	}
	if res.Leaders != 1 || !res.HardwareMatchesDesired || !res.MatchesBaseline {
		t.Errorf("no reconvergence: leaders=%d match=%v baseline=%v",
			res.Leaders, res.HardwareMatchesDesired, res.MatchesBaseline)
	}
}

// TestFailoverLeaseExpiry kills the entire replica group for longer than
// the lease TTL: flow placers must stop steering into the express lane
// after TTL/2 without leader contact, the orphaned TCAM rules must expire
// on their own, no packet may blackhole at any point, and the group must
// rebuild the express lane from scratch once it returns.
func TestFailoverLeaseExpiry(t *testing.T) {
	h := 14 * time.Second
	blackout := 11*time.Second - 3*time.Second // all replicas down 3s → 11s
	plan := faults.Plan{Events: []faults.Event{
		{At: 3 * time.Second, Kind: faults.ControllerCrash, Target: "torctl0", Duration: blackout},
		{At: 3 * time.Second, Kind: faults.ControllerCrash, Target: "torctl0.1", Duration: blackout},
		{At: 3 * time.Second, Kind: faults.ControllerCrash, Target: "torctl0.2", Duration: blackout},
	}}
	res, err := RunFailover(FailoverConfig{Seed: 5, FaultSeed: 1, Horizon: h, Plan: &plan})
	if err != nil {
		t.Fatal(err)
	}
	if res.PlacerExpiries == 0 {
		t.Error("placers never expired their placements during the controller blackout")
	}
	if res.TCAMLeaseExpiries == 0 {
		t.Error("orphaned TCAM rules never expired")
	}
	if res.BlackholeDrops != 0 || res.Unaccounted != 0 {
		t.Errorf("traffic lost across lease expiry: blackholes=%d unaccounted=%d",
			res.BlackholeDrops, res.Unaccounted)
	}
	if res.CapViolations != 0 {
		t.Errorf("rate cap violated during the blackout: %d windows", res.CapViolations)
	}
	if res.Leaders != 1 || !res.HardwareMatchesDesired || !res.LeaseConserved {
		t.Errorf("no recovery after the blackout: leaders=%d match=%v leases=%v",
			res.Leaders, res.HardwareMatchesDesired, res.LeaseConserved)
	}
	// Unlike the failover plans, a total state loss re-runs placement
	// from scratch, and hysteresis may settle on a different (equally
	// valid) fixpoint among overlapping aggregates — so the rebuilt lane
	// is only required to be non-empty and hardware-consistent, not
	// byte-equal to the never-faulted run's.
	if len(res.Desired) == 0 {
		t.Error("express lane never rebuilt after the blackout")
	}
}

// TestFailoverDeterminism: equal seeds reproduce a byte-identical event
// log (faults, election moves, lease counters and all); changing the
// fault seed changes it.
func TestFailoverDeterminism(t *testing.T) {
	cfg := FailoverConfig{Seed: 21, FaultSeed: 5, Horizon: 4 * time.Second, Drain: time.Second}
	a, err := RunFailover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFailover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Log) == 0 {
		t.Fatal("empty event log")
	}
	if !equalStrings(a.Log, b.Log) {
		for i := range a.Log {
			if i >= len(b.Log) || a.Log[i] != b.Log[i] {
				t.Fatalf("logs diverge at line %d:\n a: %q\n b: %q", i, a.Log[i], line(b.Log, i))
			}
		}
		t.Fatalf("log lengths differ: %d vs %d", len(a.Log), len(b.Log))
	}
	// The default failover plan is fully deterministic (no probabilistic
	// faults), so the fault seed is inert here; the engine seed moves
	// every sender phase and must change the log.
	cfg2 := cfg
	cfg2.Seed = 22
	c, err := RunFailover(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if equalStrings(a.Log, c.Log) {
		t.Error("different engine seeds produced identical event logs")
	}
}

// TestFailoverChaosProperty is the acceptance property test: ≥100 seeded
// random fault plans over every registered HA surface — replica crashes,
// pauses, symmetric and asymmetric partitions, control-, switch- and
// election-channel faults, TCAM rejection — must all preserve the
// leadership, no-blackhole, rate-cap and reconvergence invariants. Every
// plan clears by 0.9 × horizon/2, leaving well over the election timeout
// plus a reconcile period for recovery before the check.
func TestFailoverChaosProperty(t *testing.T) {
	seeds := int64(100)
	if testing.Short() {
		seeds = 10
	}
	horizon := 6 * time.Second
	ts := faults.TargetSet{
		Channels: []string{
			"local0-tor", "local1-tor", "local2-tor",
			"local0-tor.1", "local1-tor.2", "local2-tor.1",
			"torctl0-switch", "torctl0.1-switch", "torctl0.2-switch",
			"elect0.0-1", "elect0.0-2", "elect0.1-2",
		},
		Tables:      []string{"tor0"},
		Controllers: []string{"torctl0", "torctl0.1", "torctl0.2"},
		Partitions:  []string{"torctl0", "torctl0.1", "torctl0.2"},
		Pausables:   []string{"torctl0", "torctl0.1", "torctl0.2"},
	}
	for seed := int64(1); seed <= seeds; seed++ {
		plan := faults.RandomPlan(seed, horizon/2, ts)
		res, err := runFailover(FailoverConfig{
			Seed: seed, FaultSeed: seed,
			Horizon: horizon, Drain: time.Second, Plan: &plan,
		}, true)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.TermConflicts != 0 {
			t.Errorf("seed %d: split brain — %d terms saw two acting replicas", seed, res.TermConflicts)
		}
		if res.BlackholeDrops != 0 {
			t.Errorf("seed %d: %d blackholed packets", seed, res.BlackholeDrops)
		}
		if res.Unaccounted != 0 {
			t.Errorf("seed %d: conservation off by %d", seed, res.Unaccounted)
		}
		if res.CapViolations != 0 {
			t.Errorf("seed %d: %d rate-cap violations (peak %.2f Mbps)",
				seed, res.CapViolations, res.PeakCappedBps/1e6)
		}
		if res.Leaders != 1 {
			t.Errorf("seed %d: %d acting leaders at the check, want 1", seed, res.Leaders)
		}
		if !res.HardwareMatchesDesired {
			t.Errorf("seed %d: hardware diverges from desired set:\n desired:  %v\n hardware: %v",
				seed, res.Desired, res.Hardware)
		}
		if !res.LeaseConserved {
			t.Errorf("seed %d: hardware rules without live leases at the check", seed)
		}
	}
}
