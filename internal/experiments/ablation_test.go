package experiments

import (
	"testing"
	"time"
)

func TestAblationScoreFunction(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite")
	}
	pps, bps := AblationScoreFunction()
	// FasTrak's pps-ranked choice (offload the mice) must beat the
	// elephant-first choice on the latency-sensitive service (§4.3.2
	// footnote 3).
	if pps.MiceLatency >= bps.MiceLatency {
		t.Errorf("pps policy mice latency %v not below elephant policy %v",
			pps.MiceLatency, bps.MiceLatency)
	}
	if pps.MiceTPS <= bps.MiceTPS {
		t.Errorf("pps policy mice TPS %.0f not above elephant policy %.0f",
			pps.MiceTPS, bps.MiceTPS)
	}
}

func TestAblationTCAMCapacity(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite")
	}
	rows := AblationTCAMCapacity([]int{2, 8, 32})
	// More hardware rule space → more offloaded patterns → lower mean
	// latency, monotonically.
	for i := 1; i < len(rows); i++ {
		if rows[i].Offloaded < rows[i-1].Offloaded {
			t.Errorf("offload count regressed: cap %d → %d", rows[i-1].Capacity, rows[i].Capacity)
		}
		if rows[i].MeanLatency >= rows[i-1].MeanLatency {
			t.Errorf("latency did not improve from cap %d (%v) to %d (%v)",
				rows[i-1].Capacity, rows[i-1].MeanLatency, rows[i].Capacity, rows[i].MeanLatency)
		}
	}
	if rows[0].Offloaded > rows[0].Capacity {
		t.Errorf("offloaded %d exceeds capacity %d", rows[0].Offloaded, rows[0].Capacity)
	}
}

func TestAblationControlInterval(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite")
	}
	rows := AblationControlInterval([]time.Duration{10 * time.Millisecond, 100 * time.Millisecond})
	for _, r := range rows {
		if r.ReactionTime == 0 {
			t.Fatalf("epoch %v: never offloaded", r.Epoch)
		}
	}
	// Reaction time scales with the epoch (§4.3.2: the control interval
	// decides how soon FasTrak reacts).
	if rows[1].ReactionTime <= rows[0].ReactionTime {
		t.Errorf("reaction at epoch %v (%v) not slower than %v (%v)",
			rows[1].Epoch, rows[1].ReactionTime, rows[0].Epoch, rows[0].ReactionTime)
	}
}

func TestAblationFPSOverflow(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite")
	}
	rows := AblationFPSOverflow([]float64{0, 0.05, 0.15})
	for i := 1; i < len(rows); i++ {
		if rows[i].ThrottledFraction >= rows[i-1].ThrottledFraction {
			t.Errorf("throttling did not fall with overflow: O=%.2f→%.3f, O=%.2f→%.3f",
				rows[i-1].OverflowFraction, rows[i-1].ThrottledFraction,
				rows[i].OverflowFraction, rows[i].ThrottledFraction)
		}
		if rows[i].ConvergedHardBps < 0.85e9 {
			t.Errorf("O=%.2f did not converge: %.2e", rows[i].OverflowFraction, rows[i].ConvergedHardBps)
		}
	}
}

func TestAblationAggregation(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite")
	}
	agg, exact := AblationAggregation()
	// The per-VM/app rule of thumb compresses both control-plane and
	// hardware rule state by an order of magnitude (§4.3.1).
	if agg.HardwareRules*5 > exact.HardwareRules {
		t.Errorf("aggregation saved too little hardware state: %d vs %d",
			agg.HardwareRules, exact.HardwareRules)
	}
	if agg.PlacerRules*5 > exact.PlacerRules {
		t.Errorf("aggregation saved too little placer state: %d vs %d",
			agg.PlacerRules, exact.PlacerRules)
	}
}
