package experiments

import (
	"testing"
	"time"

	"repro/internal/faults"
)

// TestChaosInvariants is the acceptance property test: under the seeded
// default plan (link flap + packet loss + TCAM rejection + control-channel
// faults + controller crash/restart mid-offload), (1) no packet is
// blackholed and conservation closes exactly, (2) the capped tenant's
// delivered rate never exceeds its purchased aggregate, and (3) after the
// last fault clears the hardware rule table exactly equals the decision
// engine's desired offload set.
func TestChaosInvariants(t *testing.T) {
	res, err := RunChaos(ChaosConfig{Seed: 7, FaultSeed: 11})
	if err != nil {
		t.Fatal(err)
	}

	// Sanity: the workload and the faults actually did something.
	if res.Sent == 0 || res.Delivered == 0 {
		t.Fatalf("no traffic: sent=%d delivered=%d", res.Sent, res.Delivered)
	}
	if res.InstallRejects == 0 {
		t.Error("TCAM rejection fault never bit (InstallRejects == 0)")
	}
	if res.Crashes == 0 {
		t.Error("controller crash fault never bit (Crashes == 0)")
	}
	if res.ChannelDrops == 0 {
		t.Error("channel faults never dropped a control message")
	}
	if res.LinkDownDrops == 0 && res.LinkLossDrops == 0 {
		t.Error("link faults never dropped a packet")
	}

	// Invariant 1: zero blackholes, conservation closes.
	if res.BlackholeDrops != 0 {
		t.Errorf("blackholed packets: %d (rule divergence)", res.BlackholeDrops)
	}
	if res.Unaccounted != 0 {
		t.Errorf("conservation violated: %d packets unaccounted (sent=%d delivered=%d queue=%d down=%d loss=%d shape=%d rate=%d)",
			res.Unaccounted, res.Sent, res.Delivered,
			res.LinkQueueDrops, res.LinkDownDrops, res.LinkLossDrops,
			res.ShapeDrops, res.RateDrops)
	}

	// Invariant 2: rate cap holds in every window during recovery.
	if res.CapViolations != 0 {
		t.Errorf("tenant rate cap violated in %d windows (peak %.2f Mbps vs cap %.2f Mbps)",
			res.CapViolations, res.PeakCappedBps/1e6, res.CapLimitBps/1e6)
	}

	// Invariant 3: hardware table == desired offload set post-recovery.
	if !res.HardwareMatchesDesired {
		t.Errorf("hardware rules diverge from desired set:\n desired:  %v\n hardware: %v",
			res.Desired, res.Hardware)
	}
	if len(res.Desired) == 0 {
		t.Error("no flows offloaded by end of run; reconcile check is vacuous")
	}
}

// TestChaosDeterminism is the determinism harness (satellite 3): equal
// seeds reproduce a byte-identical event log; changing either seed
// produces a different one.
func TestChaosDeterminism(t *testing.T) {
	cfg := ChaosConfig{Seed: 21, FaultSeed: 5, Horizon: 3 * time.Second, Drain: time.Second}
	a, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Log) == 0 {
		t.Fatal("empty event log")
	}
	if !equalStrings(a.Log, b.Log) {
		for i := range a.Log {
			if i >= len(b.Log) || a.Log[i] != b.Log[i] {
				t.Fatalf("logs diverge at line %d:\n a: %q\n b: %q", i, a.Log[i], line(b.Log, i))
			}
		}
		t.Fatalf("log lengths differ: %d vs %d", len(a.Log), len(b.Log))
	}

	cfg2 := cfg
	cfg2.FaultSeed = 6
	c, err := RunChaos(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if equalStrings(a.Log, c.Log) {
		t.Error("different fault seeds produced identical event logs")
	}

	cfg3 := cfg
	cfg3.Seed = 22
	d, err := RunChaos(cfg3)
	if err != nil {
		t.Fatal(err)
	}
	if equalStrings(a.Log, d.Log) {
		t.Error("different engine seeds produced identical event logs")
	}
}

func line(s []string, i int) string {
	if i < len(s) {
		return s[i]
	}
	return "<missing>"
}

// TestChaosRandomPlansSurvive fuzzes the injector: several random plans,
// each a different seed, must all preserve the no-blackhole and rate-cap
// invariants (reconciliation is checked only when the last fault clears
// before the check point).
func TestChaosRandomPlansSurvive(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	horizon := 4 * time.Second
	for seed := int64(1); seed <= 3; seed++ {
		plan := faults.RandomPlan(seed, 3*horizon/4, faults.TargetSet{
			Links:       []string{"uplink0", "uplink1", "uplink2", "downlink0", "downlink1", "downlink2"},
			Channels:    []string{"local0-tor", "local1-tor", "local2-tor", "torctl0-switch"},
			Tables:      []string{"tor0"},
			Controllers: []string{"torctl0"},
		})
		res, err := RunChaos(ChaosConfig{Seed: seed, FaultSeed: seed, Horizon: horizon, Drain: time.Second, Plan: &plan})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.BlackholeDrops != 0 {
			t.Errorf("seed %d: %d blackholed packets", seed, res.BlackholeDrops)
		}
		if res.Unaccounted != 0 {
			t.Errorf("seed %d: conservation off by %d", seed, res.Unaccounted)
		}
		if res.CapViolations != 0 {
			t.Errorf("seed %d: %d rate-cap violations (peak %.2f Mbps)",
				seed, res.CapViolations, res.PeakCappedBps/1e6)
		}
		if faults.LastFaultClear(plan) <= horizon-20*time.Millisecond && !res.HardwareMatchesDesired {
			t.Errorf("seed %d: hardware diverges from desired set:\n desired:  %v\n hardware: %v",
				seed, res.Desired, res.Hardware)
		}
	}
}
