package experiments

import (
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/host"
	"repro/internal/measure"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/openflow"
	"repro/internal/packet"
	"repro/internal/rules"
	"repro/internal/workload"
)

// The Section 6 testbed: one physical server hosts the memcached VMs;
// five other servers run memslap clients (§6.1, Figures 10/11). Per the
// paper, "in each of the following experiments, we compare to baseline
// OVS, with no tunneling or rate limiting" — the software path is plain
// OVS over a flat single-tenant network, the hardware path the SR-IOV
// express lane.
const (
	evalServers   = 6
	serverMachine = 0 // index of the machine hosting memcached VMs
)

// EvalScale shrinks the paper's request counts to keep simulations fast;
// finish-time comparisons are ratios, which scaling preserves.
// Paper: 2M requests per client; default here: 20k per client.
var EvalScale = 100

// evalRig is the §6 testbed.
type evalRig struct {
	c       *cluster.Cluster
	servers []*host.VM // memcached VMs on the server machine
	clients []*host.VM // one client VM per client machine
	mcs     []*workload.Memcached
}

// newEvalRig builds nServers memcached VMs (alternating large/medium
// instances as in §6.1.2) and one client VM on each of the five client
// machines.
func newEvalRig(nServers int, seed int64) *evalRig {
	c := cluster.New(cluster.Config{
		Servers:    evalServers,
		VSwitchCfg: model.VSwitchConfig{}, // baseline OVS (§6.1)
		Seed:       seed,
	})
	r := &evalRig{c: c}
	for i := 0; i < nServers; i++ {
		ip := packet.MakeIP(10, 7, 0, byte(10+i))
		vcpus := 4 // EC2-large equivalent
		if i >= 2 {
			vcpus = 2 // EC2-medium equivalent (§6.1.2)
		}
		vm, err := c.AddVM(serverMachine, 7, ip, vcpus, nil)
		if err != nil {
			panic(err)
		}
		flatRoute(c, ip, serverMachine)
		mc := &workload.Memcached{VM: vm, ValueSize: 600}
		mc.Start()
		r.servers = append(r.servers, vm)
		r.mcs = append(r.mcs, mc)
	}
	for m := 1; m < evalServers; m++ {
		ip := packet.MakeIP(10, 7, 1, byte(10+m))
		vm, err := c.AddVM(m, 7, ip, 4, nil)
		if err != nil {
			panic(err)
		}
		flatRoute(c, ip, m)
		r.clients = append(r.clients, vm)
	}
	return r
}

// flatRoute routes a VM address directly at the ToR (the untunneled
// baseline-OVS network of §6).
func flatRoute(c *cluster.Cluster, vmIP packet.IP, serverIdx int) {
	if err := c.TOR.RouteLike(vmIP, cluster.ServerIP(serverIdx)); err != nil {
		panic(err)
	}
}

// steerToVF moves the given memcached VM's service traffic (both
// directions) onto the express lane, as the §6.1 experiments do
// statically.
func (r *evalRig) steerToVF(sv *host.VM) {
	ingress := rules.AggregatePattern(packet.AggregateKey{
		VMIP: sv.Key.IP, Port: workload.MemcachedPort, Tenant: sv.Key.Tenant, Dir: packet.Ingress,
	})
	egress := rules.AggregatePattern(packet.AggregateKey{
		VMIP: sv.Key.IP, Port: workload.MemcachedPort, Tenant: sv.Key.Tenant, Dir: packet.Egress,
	})
	for _, pat := range []rules.Pattern{ingress, egress} {
		mod := &openflow.FlowMod{Command: openflow.FlowAdd, Pattern: pat, Out: openflow.PathVF, Priority: 10}
		sv.Placer.HandleMessage(mod, 1, nil)
		for _, cl := range r.clients {
			cl.Placer.HandleMessage(mod, 1, nil)
		}
		if err := r.c.TOR.InstallACL(&rules.TCAMEntry{Pattern: pat, Action: rules.Allow, Priority: 5}); err != nil {
			panic(err)
		}
	}
}

// serverIPs lists the memcached service addresses.
func (r *evalRig) serverIPs() []packet.IP {
	out := make([]packet.IP, len(r.servers))
	for i, sv := range r.servers {
		out[i] = sv.Key.IP
	}
	return out
}

// Table1Row is one row of Table 1: sustained memcached TPS.
type Table1Row struct {
	Interface   string // "VIF" or "SR-IOV VF"
	Background  bool
	TPS         float64
	MeanLatency time.Duration
	CPUs        float64 // on the memcached server machine
}

// Table1Duration is the measurement window (paper: 90 s memslap runs).
var Table1Duration = 200 * time.Millisecond

// Table1 measures transaction throughput with 2 memcached VMs, VIF vs VF,
// optionally with an IOzone background VM (§6.1.1).
func Table1(background bool) []Table1Row {
	var out []Table1Row
	for _, useVF := range []bool{false, true} {
		r := newEvalRig(2, 601)
		if background {
			bg, err := r.c.AddVM(serverMachine, 7, packet.MustParseIP("10.7.0.99"), 4, nil)
			if err != nil {
				panic(err)
			}
			z := &workload.IOZone{VM: bg, Utilization: 0.6}
			z.Start(r.c.Eng)
		}
		if useVF {
			for _, sv := range r.servers {
				r.steerToVF(sv)
			}
		}
		lat := metrics.NewHistogram()
		var slaps []*workload.Memslap
		for _, cl := range r.clients {
			ms := &workload.Memslap{
				Client: cl, Servers: r.serverIPs(),
				Concurrency: 8, Latency: lat,
			}
			ms.Start(r.c.Eng)
			slaps = append(slaps, ms)
		}
		warm := 20 * time.Millisecond
		r.c.Eng.RunUntil(warm)
		r.c.Servers[serverMachine].ResetCPUAccounting()
		var warmCompleted uint64
		for _, ms := range slaps {
			warmCompleted += ms.Completed
		}
		r.c.Eng.RunUntil(warm + Table1Duration)
		var completed uint64
		for _, ms := range slaps {
			ms.Stop()
			completed += ms.Completed
		}
		name := "VIF"
		if useVF {
			name = "SR-IOV VF"
		}
		out = append(out, Table1Row{
			Interface:   name,
			Background:  background,
			TPS:         float64(completed-warmCompleted) / Table1Duration.Seconds(),
			MeanLatency: lat.Mean(),
			CPUs:        r.c.Servers[serverMachine].TotalCPUs(Table1Duration),
		})
	}
	return out
}

// Table2Row is one row of Table 2: finish times as servers shift to VF.
type Table2Row struct {
	PercentVIF  int
	MeanFinish  time.Duration
	MeanTPS     float64
	MeanLatency time.Duration
	CPUs        float64
}

// runFinishTime runs the 4-VM finish-time experiment with nVF of the four
// memcached servers steered to the VF, optionally with a background file
// transfer per server VM (Table 3), returning the aggregate row.
func runFinishTime(nVF int, background bool, seed int64) Table2Row {
	r := newEvalRig(4, seed)
	for i := 0; i < nVF; i++ {
		r.steerToVF(r.servers[i])
	}
	if background {
		// A disk-bound file transfer from each memcached VM to its
		// corresponding client machine, on the VIF (§6.1.2).
		for i, sv := range r.servers {
			cl := r.clients[i%len(r.clients)]
			f := &workload.FileTransfer{
				Sender: sv, Receiver: cl, Port: 22,
				DiskBps: 400e6,
				// The paper's 4 GB transfer, scaled with the
				// request counts.
				TotalBytes: 4 << 30 / uint64(EvalScale),
			}
			f.Start(r.c.Eng)
		}
	}
	perClient := uint64(2_000_000 / EvalScale)
	lat := metrics.NewHistogram()
	var slaps []*workload.Memslap
	for _, cl := range r.clients {
		ms := &workload.Memslap{
			Client: cl, Servers: r.serverIPs(),
			// Modest concurrency keeps the server machine below CPU
			// saturation, as in the paper's testbed, so partial
			// offload configurations are dominated by the slowest
			// (VIF) member rather than by contention relief.
			Concurrency: 2, TotalRequests: perClient, Latency: lat,
			Barrier: true,
		}
		ms.Start(r.c.Eng)
		slaps = append(slaps, ms)
	}
	r.c.Eng.RunUntil(120 * time.Second)
	var finishSum time.Duration
	var completed uint64
	var slowest time.Duration
	for _, ms := range slaps {
		fin := ms.FinishedAt
		if fin == 0 {
			fin = r.c.Eng.Now() // did not finish in budget
		}
		finishSum += fin
		completed += ms.Completed
		if fin > slowest {
			slowest = fin
		}
	}
	meanFinish := finishSum / time.Duration(len(slaps))
	return Table2Row{
		PercentVIF:  100 * (4 - nVF) / 4,
		MeanFinish:  meanFinish,
		MeanTPS:     float64(completed) / float64(len(slaps)) / meanFinish.Seconds(),
		MeanLatency: lat.Mean(),
		CPUs:        r.c.Servers[serverMachine].TotalCPUs(slowest),
	}
}

// Table2 sweeps the fraction of memcached servers on the VF: 100/75/50/
// 25/0 % of traffic through the VIF (§6.1.2).
func Table2() []Table2Row {
	var out []Table2Row
	for nVF := 0; nVF <= 4; nVF++ {
		out = append(out, runFinishTime(nVF, false, 602))
	}
	return out
}

// Table3 compares all-VIF vs all-VF with background disk-bound transfers.
func Table3() []Table2Row {
	return []Table2Row{
		runFinishTime(0, true, 603),
		runFinishTime(4, true, 603),
	}
}

// Table4Row is one row of Table 4: FasTrak's dynamic migration.
type Table4Row struct {
	Mode        string // "VIF only" or "VIF(then)+SR-IOV(rest)"
	MeanFinish  time.Duration
	MeanTPS     float64
	MeanLatency time.Duration
	CPUs        float64
	// OffloadedAt is when the controller first moved memcached flows
	// to hardware (zero for the static run).
	OffloadedAt time.Duration
}

// Table4 reproduces §6.2.1: memcached plus scp background; the flow
// placer starts everything on the VIF; FasTrak's ME observes memcached at
// thousands of pps vs scp at ~135 pps and offloads only memcached. The
// control interval is scaled with the workload so the offload lands a
// proportional fraction into the run (the paper's 10 s of a ~110 s run).
func Table4() []Table4Row {
	run := func(enable bool) Table4Row {
		r := newEvalRig(4, 604)
		for i, sv := range r.servers {
			cl := r.clients[i%len(r.clients)]
			f := &workload.FileTransfer{
				Sender: sv, Receiver: cl, Port: 22, DiskBps: 400e6,
				TotalBytes: 4 << 30 / uint64(EvalScale),
			}
			f.Start(r.c.Eng)
		}
		var mgr *core.Manager
		var offloadedAt time.Duration
		if enable {
			cfg := core.DefaultConfig()
			// The paper's T=5 s epoch against a ~110 s run means the
			// offload lands ~10%% into the workload; the control
			// timing scales with the scaled-down request counts to
			// keep that proportion.
			cfg.Measure = measure.Config{
				SampleGap:         4 * time.Millisecond,
				Epoch:             10 * time.Millisecond,
				EpochsPerInterval: 2,
				HistoryIntervals:  4,
				Aggregate:         true,
			}
			// The paper's run caps FasTrak to the memcached flows
			// (scp stays in software); 8 slots cover the four
			// services' two directions.
			cfg.MaxOffloads = 8
			cfg.MinScore = 1000 // scp's ~135 pps stays below
			mgr = core.Attach(r.c, cfg)
			mgr.Start()
		}
		perClient := uint64(2_000_000 / EvalScale)
		lat := metrics.NewHistogram()
		var slaps []*workload.Memslap
		for _, cl := range r.clients {
			// Same workload shape as Tables 2/3 ("We retain the same
			// test set up as the previous experiment", §6.2.1).
			ms := &workload.Memslap{
				Client: cl, Servers: r.serverIPs(),
				Concurrency: 2, TotalRequests: perClient, Latency: lat,
				Barrier: true,
			}
			ms.Start(r.c.Eng)
			slaps = append(slaps, ms)
		}
		if enable {
			// Watch for the first offload.
			r.c.Eng.Every(10*time.Millisecond, func() {
				if offloadedAt == 0 && len(mgr.OffloadedPatterns()) > 0 {
					offloadedAt = r.c.Eng.Now()
				}
			})
		}
		r.c.Eng.RunUntil(120 * time.Second)
		if mgr != nil {
			mgr.Stop()
		}
		var finishSum time.Duration
		var completed uint64
		var slowest time.Duration
		for _, ms := range slaps {
			fin := ms.FinishedAt
			if fin == 0 {
				fin = r.c.Eng.Now()
			}
			finishSum += fin
			completed += ms.Completed
			if fin > slowest {
				slowest = fin
			}
		}
		meanFinish := finishSum / time.Duration(len(slaps))
		mode := "VIF only"
		if enable {
			mode = "VIF(start)+SR-IOV(rest)"
		}
		return Table4Row{
			Mode:        mode,
			MeanFinish:  meanFinish,
			MeanTPS:     float64(completed) / float64(len(slaps)) / meanFinish.Seconds(),
			MeanLatency: lat.Mean(),
			CPUs:        r.c.Servers[serverMachine].TotalCPUs(slowest),
			OffloadedAt: offloadedAt,
		}
	}
	return []Table4Row{run(false), run(true)}
}

// ShuffleResult compares a disk-bound MapReduce shuffle on the two paths —
// the paper's §6 remark: "we also evaluated disk-bound applications such
// as file transfer and Hadoop MapReduce, and found that FasTrak improved
// their overall throughput and reduced their finishing times."
type ShuffleResult struct {
	Interface  string
	FinishedAt time.Duration
}

// ShuffleExperiment runs a 4×4 shuffle (mappers on the server machine,
// reducers spread over client machines) on the VIF and again with the
// shuffle ports steered onto the express lane.
func ShuffleExperiment() []ShuffleResult {
	run := func(useVF bool) ShuffleResult {
		r := newEvalRig(0, 606) // no memcached servers; we place our own VMs
		var mappers, reducers []*host.VM
		for i := 0; i < 4; i++ {
			m, err := r.c.AddVM(serverMachine, 7, packet.MakeIP(10, 7, 2, byte(10+i)), 2, nil)
			if err != nil {
				panic(err)
			}
			flatRoute(r.c, m.Key.IP, serverMachine)
			red, err := r.c.AddVM(1+i%len(r.c.Servers[1:]), 7, packet.MakeIP(10, 7, 2, byte(30+i)), 2, nil)
			if err != nil {
				panic(err)
			}
			flatRoute(r.c, red.Key.IP, 1+i%len(r.c.Servers[1:]))
			mappers = append(mappers, m)
			reducers = append(reducers, red)
		}
		sh := &workload.Shuffle{
			Mappers: mappers, Reducers: reducers,
			PartitionBytes: 2 << 20, DiskBps: 2e9, // network-stressing shuffle burst
		}
		if useVF {
			for ri, red := range reducers {
				agg := rules.AggregatePattern(packet.AggregateKey{
					VMIP: red.Key.IP, Port: 7100 + uint16(ri), Tenant: 7, Dir: packet.Ingress,
				})
				mod := &openflow.FlowMod{Command: openflow.FlowAdd, Pattern: agg, Out: openflow.PathVF, Priority: 10}
				for _, m := range mappers {
					m.Placer.HandleMessage(mod, 1, nil)
				}
				red.Placer.HandleMessage(mod, 1, nil)
				// Ack direction.
				ackAgg := rules.AggregatePattern(packet.AggregateKey{
					VMIP: red.Key.IP, Port: 7100 + uint16(ri), Tenant: 7, Dir: packet.Egress,
				})
				red.Placer.HandleMessage(&openflow.FlowMod{Command: openflow.FlowAdd, Pattern: ackAgg, Out: openflow.PathVF, Priority: 10}, 1, nil)
				for _, pat := range []rules.Pattern{agg, ackAgg} {
					if err := r.c.TOR.InstallACL(&rules.TCAMEntry{Pattern: pat, Action: rules.Allow, Priority: 5}); err != nil {
						panic(err)
					}
				}
			}
		}
		sh.Start(r.c.Eng)
		r.c.Eng.RunUntil(60 * time.Second)
		name := "VIF"
		if useVF {
			name = "SR-IOV VF"
		}
		fin := sh.FinishedAt
		if fin == 0 {
			fin = r.c.Eng.Now()
		}
		return ShuffleResult{Interface: name, FinishedAt: fin}
	}
	return []ShuffleResult{run(false), run(true)}
}
